package s2

// Benchmarks regenerating every figure of the paper's evaluation (§5,
// Figures 4–10) plus micro-benchmarks of the core subsystems. Figure
// benches run the corresponding experiments runner once per iteration and
// report the headline series as custom metrics; the full tables print via
// cmd/s2bench. Set S2_BENCH_FULL=1 for the default (larger) experiment
// scale instead of the quick one.

import (
	"os"
	"testing"

	"s2/internal/config"
	"s2/internal/experiments"
	"s2/internal/obs"
	"s2/internal/partition"
	"s2/internal/synth"
	"s2/internal/topology"
)

func benchConfig() experiments.Config {
	if os.Getenv("S2_BENCH_FULL") != "" {
		return experiments.Config{}.Defaults()
	}
	return experiments.Quick()
}

// reportRows surfaces each row's headline numbers as benchmark metrics.
func reportRows(b *testing.B, rows []experiments.Row) {
	b.Helper()
	for _, r := range rows {
		label := r.System
		if r.Variant != "" {
			label += "/" + r.Variant
		}
		label += "@" + r.Network
		if r.OOM {
			b.ReportMetric(1, label+":OOM")
			continue
		}
		b.ReportMetric(float64(r.Total.Microseconds()), label+":total-µs")
		b.ReportMetric(float64(r.PeakBytes)/1024, label+":peak-KiB")
	}
}

// BenchmarkFig4RealDCN — §5.3 / Figure 4: Batfish, Batfish+sharding, S2
// without sharding, and full S2 on the DCN-like workload under one
// calibrated memory budget.
func BenchmarkFig4RealDCN(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows)
		}
	}
}

// BenchmarkFig5FatTreeSweep — §5.4 / Figure 5: FatTree size sweep across
// Batfish, Bonsai, and S2 worker ladders.
func BenchmarkFig5FatTreeSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows)
		}
	}
}

// BenchmarkFig6ScaleOut — §5.5 / Figure 6: one FatTree across the worker
// ladder.
func BenchmarkFig6ScaleOut(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows)
		}
	}
}

// BenchmarkFig7Partition — §5.6 / Figure 7: partition schemes on FatTree
// and DCN.
func BenchmarkFig7Partition(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows)
		}
	}
}

// BenchmarkFig8Sharding — §5.7 / Figure 8: sharding on/off across FatTree
// sizes under a fixed per-worker budget.
func BenchmarkFig8Sharding(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows)
		}
	}
}

// BenchmarkFig9ShardCount — §5.7 / Figure 9: shard-count sweep on one
// FatTree.
func BenchmarkFig9ShardCount(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows)
		}
	}
}

// BenchmarkFig10DPV — §5.8 / Figure 10: all-pair and single-pair
// reachability, Batfish vs S2, with the predicate/forwarding phase split.
func BenchmarkFig10DPV(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows)
		}
	}
}

// --- Micro-benchmarks of the substrates ---

// BenchmarkParseFatTree measures the configuration parser over a full
// FatTree snapshot.
func BenchmarkParseFatTree(b *testing.B) {
	texts, err := synth.FatTree(synth.FatTreeOptions{K: 8})
	if err != nil {
		b.Fatal(err)
	}
	keyed := map[string]string{}
	for k, v := range texts {
		keyed[k+".cfg"] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := config.ParseTexts(keyed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopologyBuild measures adjacency and session derivation.
func BenchmarkTopologyBuild(b *testing.B) {
	texts, err := synth.FatTree(synth.FatTreeOptions{K: 8})
	if err != nil {
		b.Fatal(err)
	}
	keyed := map[string]string{}
	for k, v := range texts {
		keyed[k+".cfg"] = v
	}
	snap, err := config.ParseTexts(keyed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topology.Build(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionMetis measures the multilevel partitioner.
func BenchmarkPartitionMetis(b *testing.B) {
	texts, err := synth.FatTree(synth.FatTreeOptions{K: 10})
	if err != nil {
		b.Fatal(err)
	}
	keyed := map[string]string{}
	for k, v := range texts {
		keyed[k+".cfg"] = v
	}
	snap, err := config.ParseTexts(keyed)
	if err != nil {
		b.Fatal(err)
	}
	net, err := topology.Build(snap)
	if err != nil {
		b.Fatal(err)
	}
	g := net.Graph(partition.EstimateFatTreeLoad(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Partition(g, 8, partition.Metis, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControlPlaneFatTree measures one full distributed control plane
// simulation.
func BenchmarkControlPlaneFatTree(b *testing.B) {
	net, err := SynthesizeFatTree(FatTreeSpec{K: 6})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := NewVerifier(net, Options{Workers: 4, Shards: 4})
		if err != nil {
			b.Fatal(err)
		}
		if err := v.SimulateControlPlane(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControlPlaneObsOff / BenchmarkControlPlaneObsOn compare a full
// control plane simulation without and with observability (tracer plus
// metrics registry) to show the disabled path's nil-safe hooks cost
// nothing measurable.
func BenchmarkControlPlaneObsOff(b *testing.B) {
	benchControlPlaneObs(b, false)
}

func BenchmarkControlPlaneObsOn(b *testing.B) {
	benchControlPlaneObs(b, true)
}

func benchControlPlaneObs(b *testing.B, enabled bool) {
	net, err := SynthesizeFatTree(FatTreeSpec{K: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := Options{Workers: 3, Shards: 2}
		if enabled {
			opts.Tracer = obs.NewTracer()
			opts.Metrics = obs.NewRegistry()
		}
		v, err := NewVerifier(net, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := v.SimulateControlPlane(); err != nil {
			b.Fatal(err)
		}
		v.Close()
	}
}

// BenchmarkAllPairsFatTree measures the full pipeline including the
// distributed data plane verification.
func BenchmarkAllPairsFatTree(b *testing.B) {
	net, err := SynthesizeFatTree(FatTreeSpec{K: 6})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := NewVerifier(net, Options{Workers: 4, Shards: 4})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := v.CheckAllPairs()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatal(rep)
		}
	}
}
