// Package metrics provides the modelled resource accounting S2 uses to
// reproduce the paper's memory behaviour deterministically: each worker owns
// a Tracker with named byte gauges (RIB routes, Adj-RIB-In, BDD nodes, FIBs)
// and an optional budget. Exceeding the budget is the reproduction's "out of
// memory" condition — the same role the -Xmx100G JVM limit plays in the
// paper's testbed (§5.2).
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrOutOfMemory reports that a tracker's modelled usage exceeded its budget.
var ErrOutOfMemory = errors.New("metrics: modelled memory budget exceeded")

// Tracker accounts modelled memory for one worker. It is safe for concurrent
// use: node goroutines on a worker update gauges in parallel.
type Tracker struct {
	mu      sync.Mutex
	name    string
	gauges  map[string]int64
	current int64
	peak    int64
	budget  int64 // 0 = unlimited
}

// NewTracker returns a tracker with the given per-worker budget in bytes
// (0 = unlimited).
func NewTracker(name string, budget int64) *Tracker {
	return &Tracker{name: name, gauges: make(map[string]int64), budget: budget}
}

// Name returns the tracker's owner name.
func (t *Tracker) Name() string { return t.name }

// Budget returns the configured budget (0 = unlimited).
func (t *Tracker) Budget() int64 { return t.budget }

// Set assigns gauge g to v bytes, updating current and peak usage.
func (t *Tracker) Set(g string, v int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.current += v - t.gauges[g]
	t.gauges[g] = v
	if t.current > t.peak {
		t.peak = t.current
	}
}

// Add adjusts gauge g by delta bytes.
func (t *Tracker) Add(g string, delta int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gauges[g] += delta
	t.current += delta
	if t.current > t.peak {
		t.peak = t.current
	}
}

// Current returns the present modelled usage in bytes.
func (t *Tracker) Current() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.current
}

// Peak returns the highest modelled usage observed.
func (t *Tracker) Peak() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peak
}

// Gauge returns the present value of one gauge.
func (t *Tracker) Gauge(g string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.gauges[g]
}

// CheckBudget returns ErrOutOfMemory (wrapped with the worker name and
// usage) when current usage exceeds the budget.
func (t *Tracker) CheckBudget() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.budget > 0 && t.current > t.budget {
		return fmt.Errorf("%w: %s using %s of %s", ErrOutOfMemory,
			t.name, FormatBytes(t.current), FormatBytes(t.budget))
	}
	return nil
}

// Reset zeroes all gauges and current usage but PRESERVES the peak: the
// high-water mark is the run-level statistic the paper reports (§5.2), and
// freeing a shard's routes between rounds lowers live usage without erasing
// the observed maximum. The contract: after Reset, Current() == 0 and every
// gauge reads 0, while Peak() keeps its pre-Reset value; subsequent Set/Add
// raise the peak only when the new current usage exceeds that prior
// high-water mark.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gauges = make(map[string]int64)
	t.current = 0
}

// Snapshot returns a sorted, human-readable view of all gauges.
func (t *Tracker) Snapshot() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, len(t.gauges))
	for k := range t.gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s: current=%s peak=%s", t.name, FormatBytes(t.current), FormatBytes(t.peak))
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, FormatBytes(t.gauges[k]))
	}
	return b.String()
}

// FormatBytes renders a byte count with a binary unit suffix. Negative
// counts (deltas, e.g. memory freed between snapshots) format as the
// negated positive rendering: FormatBytes(-2048) == "-2.0KiB".
func FormatBytes(n int64) string {
	const unit = 1024
	if n < 0 {
		if n == math.MinInt64 {
			// -n overflows; one byte of slack is invisible at 8 EiB.
			n++
		}
		return "-" + FormatBytes(-n)
	}
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// FaultCounters accounts fault-tolerance events (RPC retries, timeouts,
// failures, heartbeat misses, worker deaths, recoveries) so the controller
// can export them alongside memory stats. All methods are nil-safe: a nil
// *FaultCounters is a no-op sink, which lets call sites skip wiring when
// fault accounting is off.
type FaultCounters struct {
	mu sync.Mutex
	c  map[string]int64
}

// NewFaultCounters returns an empty counter set.
func NewFaultCounters() *FaultCounters {
	return &FaultCounters{c: make(map[string]int64)}
}

// Inc adds 1 to counter name.
func (f *FaultCounters) Inc(name string) { f.Add(name, 1) }

// Add adds delta to counter name.
func (f *FaultCounters) Add(name string, delta int64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.c[name] += delta
	f.mu.Unlock()
}

// Get returns the current value of counter name.
func (f *FaultCounters) Get(name string) int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.c[name]
}

// Snapshot returns a copy of all non-zero counters.
func (f *FaultCounters) Snapshot() map[string]int64 {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, len(f.c))
	for k, v := range f.c {
		if v != 0 {
			out[k] = v
		}
	}
	return out
}

// String renders the counters sorted by name, e.g.
// "rpc.retries=2 worker.deaths=1".
func (f *FaultCounters) String() string {
	snap := f.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, snap[k])
	}
	return b.String()
}

// PhaseTimer records named wall-clock phases (parse, partition, control
// plane, data plane) for the experiment harness.
type PhaseTimer struct {
	mu     sync.Mutex
	phases []Phase
}

// Phase is one timed span. Start is the wall-clock begin time, recorded so
// trace exports can order phases and detect overlap between concurrently
// timed phases; Phases() still reports completion order.
type Phase struct {
	Name     string
	Start    time.Time
	Duration time.Duration
}

// NewPhaseTimer returns an empty timer.
func NewPhaseTimer() *PhaseTimer { return &PhaseTimer{} }

// Time runs fn and records its start timestamp and duration under name.
// Safe for concurrent use: overlapping Time calls append independent
// records (ordered by completion) without corrupting each other.
func (pt *PhaseTimer) Time(name string, fn func() error) error {
	start := time.Now()
	err := fn()
	pt.mu.Lock()
	pt.phases = append(pt.phases, Phase{Name: name, Start: start, Duration: time.Since(start)})
	pt.mu.Unlock()
	return err
}

// Phases returns recorded phases in execution order.
func (pt *PhaseTimer) Phases() []Phase {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return append([]Phase(nil), pt.phases...)
}

// Get returns the total duration recorded under name.
func (pt *PhaseTimer) Get(name string) time.Duration {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	var d time.Duration
	for _, p := range pt.phases {
		if p.Name == name {
			d += p.Duration
		}
	}
	return d
}

// Total returns the sum of all phase durations.
func (pt *PhaseTimer) Total() time.Duration {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	var d time.Duration
	for _, p := range pt.phases {
		d += p.Duration
	}
	return d
}
