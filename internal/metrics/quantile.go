package metrics

import (
	"sort"
	"sync"
	"time"
)

// DurationQuantiles tracks quantiles over a sliding window of duration
// samples — the worker-side accounting for GC pauses, where the interesting
// figures are the median and tail of *recent* collections, not a lifetime
// mean. The window is a fixed ring of the last Cap samples, so memory is
// bounded no matter how long a serving process runs.
//
// It is safe for concurrent use; Quantile sorts a copy.
type DurationQuantiles struct {
	mu    sync.Mutex
	ring  []time.Duration
	next  int
	count int64
}

// NewDurationQuantiles returns a tracker holding the last cap samples
// (cap <= 0 defaults to 512).
func NewDurationQuantiles(cap int) *DurationQuantiles {
	if cap <= 0 {
		cap = 512
	}
	return &DurationQuantiles{ring: make([]time.Duration, 0, cap)}
}

// Observe records one sample, evicting the oldest when the window is full.
func (q *DurationQuantiles) Observe(d time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.ring) < cap(q.ring) {
		q.ring = append(q.ring, d)
	} else {
		q.ring[q.next] = d
	}
	q.next = (q.next + 1) % cap(q.ring)
	q.count++
}

// Count returns the number of samples observed (including evicted ones).
func (q *DurationQuantiles) Count() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Quantile returns the f-quantile (0 ≤ f ≤ 1, nearest-rank) of the current
// window, or 0 with no samples. f is clamped into [0,1].
func (q *DurationQuantiles) Quantile(f float64) time.Duration {
	q.mu.Lock()
	sorted := make([]time.Duration, len(q.ring))
	copy(sorted, q.ring)
	q.mu.Unlock()
	if len(sorted) == 0 {
		return 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	idx := int(f*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
