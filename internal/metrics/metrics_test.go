package metrics

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTrackerGaugesAndPeak(t *testing.T) {
	tr := NewTracker("w0", 0)
	tr.Set("rib", 100)
	tr.Set("bdd", 50)
	if tr.Current() != 150 || tr.Peak() != 150 {
		t.Fatalf("current=%d peak=%d", tr.Current(), tr.Peak())
	}
	tr.Set("rib", 20)
	if tr.Current() != 70 {
		t.Fatalf("current=%d after lowering gauge", tr.Current())
	}
	if tr.Peak() != 150 {
		t.Fatal("peak must persist")
	}
	tr.Add("bdd", 30)
	if tr.Gauge("bdd") != 80 || tr.Current() != 100 {
		t.Fatal("Add")
	}
	if tr.Name() != "w0" {
		t.Fatal("Name")
	}
}

func TestTrackerBudget(t *testing.T) {
	tr := NewTracker("w1", 100)
	tr.Set("rib", 100)
	if err := tr.CheckBudget(); err != nil {
		t.Fatalf("at budget should pass: %v", err)
	}
	tr.Add("rib", 1)
	err := tr.CheckBudget()
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over budget: %v", err)
	}
	if !strings.Contains(err.Error(), "w1") {
		t.Errorf("error should name the worker: %v", err)
	}
	unlimited := NewTracker("w2", 0)
	unlimited.Set("x", 1<<40)
	if err := unlimited.CheckBudget(); err != nil {
		t.Fatal("unlimited tracker must never OOM")
	}
}

func TestTrackerResetPreservesPeak(t *testing.T) {
	tr := NewTracker("w", 0)
	tr.Set("rib", 500)
	tr.Reset()
	if tr.Current() != 0 {
		t.Fatal("Reset should zero current")
	}
	if tr.Peak() != 500 {
		t.Fatal("Reset must preserve peak")
	}
	tr.Set("rib", 10)
	if tr.Current() != 10 {
		t.Fatal("gauges usable after Reset")
	}
	// Post-Reset additions below the prior high-water mark must not lower
	// the recorded peak — the peak is a run-level maximum, not a per-round
	// one.
	if tr.Peak() != 500 {
		t.Fatalf("Reset-then-Add peak = %d, want prior peak 500", tr.Peak())
	}
	tr.Set("rib", 900)
	if tr.Peak() != 900 {
		t.Fatalf("peak must still rise past the prior maximum: %d", tr.Peak())
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker("w", 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tr.Add("g", 1)
			}
		}(i)
	}
	wg.Wait()
	if tr.Current() != 8000 {
		t.Fatalf("concurrent adds lost updates: %d", tr.Current())
	}
}

func TestSnapshotFormat(t *testing.T) {
	tr := NewTracker("w9", 0)
	tr.Set("rib", 2048)
	s := tr.Snapshot()
	for _, want := range []string{"w9", "rib=2.0KiB", "peak="} {
		if !strings.Contains(s, want) {
			t.Errorf("Snapshot %q missing %q", s, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"},
		{1, "1B"},
		{512, "512B"},
		{1023, "1023B"},
		// Exact unit boundaries.
		{1024, "1.0KiB"},
		{1 << 20, "1.0MiB"},
		{1 << 30, "1.0GiB"},
		{1 << 40, "1.0TiB"},
		{1 << 50, "1.0PiB"},
		{1 << 60, "1.0EiB"},
		{1536, "1.5KiB"},
		{3 << 30, "3.0GiB"},
		{5 << 40, "5.0TiB"},
		// Negative deltas mirror the positive rendering.
		{-1, "-1B"},
		{-512, "-512B"},
		{-1024, "-1.0KiB"},
		{-2048, "-2.0KiB"},
		{-(3 << 30), "-3.0GiB"},
		{math.MinInt64 + 1, "-8.0EiB"},
		{math.MinInt64, "-8.0EiB"},
		{math.MaxInt64, "8.0EiB"},
	}
	for _, tc := range cases {
		if got := FormatBytes(tc.in); got != tc.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestFaultCounters(t *testing.T) {
	fc := NewFaultCounters()
	fc.Inc("rpc.retries")
	fc.Inc("rpc.retries")
	fc.Add("worker.deaths", 3)
	if fc.Get("rpc.retries") != 2 || fc.Get("worker.deaths") != 3 {
		t.Fatalf("counters: %v", fc.Snapshot())
	}
	if fc.Get("unknown") != 0 {
		t.Fatal("missing counter must read 0")
	}
	snap := fc.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot should hold only non-zero counters: %v", snap)
	}
	snap["rpc.retries"] = 99
	if fc.Get("rpc.retries") != 2 {
		t.Fatal("Snapshot must be a copy")
	}
	s := fc.String()
	for _, want := range []string{"rpc.retries=2", "worker.deaths=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	if strings.Index(s, "rpc.retries") > strings.Index(s, "worker.deaths") {
		t.Errorf("String must sort keys: %q", s)
	}
}

func TestFaultCountersNilSafe(t *testing.T) {
	var fc *FaultCounters
	fc.Inc("x")
	fc.Add("x", 5)
	if fc.Get("x") != 0 {
		t.Fatal("nil counters must read 0")
	}
	if fc.Snapshot() != nil {
		t.Fatal("nil Snapshot")
	}
	if fc.String() != "" {
		t.Fatal("nil String")
	}
}

func TestFaultCountersConcurrent(t *testing.T) {
	fc := NewFaultCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				fc.Inc("n")
			}
		}()
	}
	wg.Wait()
	if fc.Get("n") != 8000 {
		t.Fatalf("lost increments: %d", fc.Get("n"))
	}
}

func TestPhaseTimer(t *testing.T) {
	pt := NewPhaseTimer()
	err := pt.Time("cp", func() error { time.Sleep(time.Millisecond); return nil })
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("boom")
	if err := pt.Time("dp", func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatal("Time must propagate errors")
	}
	if pt.Get("cp") <= 0 {
		t.Fatal("cp phase not recorded")
	}
	if len(pt.Phases()) != 2 {
		t.Fatal("phase count")
	}
	if pt.Total() < pt.Get("cp") {
		t.Fatal("total must include all phases")
	}
	// Repeated names accumulate.
	pt.Time("cp", func() error { time.Sleep(time.Millisecond); return nil })
	if pt.Get("cp") < 2*time.Millisecond {
		t.Fatal("repeated phases should accumulate")
	}
}

func TestPhaseTimerRecordsStart(t *testing.T) {
	pt := NewPhaseTimer()
	before := time.Now()
	pt.Time("cp", func() error { time.Sleep(time.Millisecond); return nil })
	pt.Time("dp", func() error { return nil })
	after := time.Now()
	phases := pt.Phases()
	if len(phases) != 2 {
		t.Fatalf("phases = %d", len(phases))
	}
	for _, p := range phases {
		if p.Start.Before(before) || p.Start.After(after) {
			t.Errorf("phase %q start %v outside [%v, %v]", p.Name, p.Start, before, after)
		}
	}
	// Start ordering reflects real execution order even though Phases()
	// appends in completion order.
	if phases[1].Start.Before(phases[0].Start) {
		t.Errorf("dp started before cp: %v < %v", phases[1].Start, phases[0].Start)
	}
	if end := phases[0].Start.Add(phases[0].Duration); end.After(after.Add(time.Millisecond)) {
		t.Errorf("cp end %v past test end %v", end, after)
	}
}

func TestPhaseTimerConcurrent(t *testing.T) {
	pt := NewPhaseTimer()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			pt.Time(fmt.Sprintf("p%d", n%4), func() error {
				time.Sleep(time.Duration(n%3) * time.Millisecond)
				return nil
			})
		}(i)
	}
	wg.Wait()
	phases := pt.Phases()
	if len(phases) != 16 {
		t.Fatalf("concurrent Time lost records: %d", len(phases))
	}
	for _, p := range phases {
		if p.Start.IsZero() || p.Duration < 0 {
			t.Errorf("corrupt record: %+v", p)
		}
	}
	if pt.Total() <= 0 {
		t.Fatal("total")
	}
}
