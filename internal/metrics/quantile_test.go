package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestDurationQuantilesEmpty(t *testing.T) {
	q := NewDurationQuantiles(0)
	if got := q.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	if q.Count() != 0 {
		t.Fatalf("empty count = %d", q.Count())
	}
}

func TestDurationQuantilesNearestRank(t *testing.T) {
	q := NewDurationQuantiles(16)
	for i := 1; i <= 10; i++ {
		q.Observe(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		f    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{0.5, 5 * time.Millisecond},
		{0.99, 10 * time.Millisecond},
		{1, 10 * time.Millisecond},
		{-1, 1 * time.Millisecond},   // clamped
		{2, 10 * time.Millisecond},   // clamped
		{0.25, 3 * time.Millisecond}, // rank round(2.5) = 3rd smallest
	}
	for _, c := range cases {
		if got := q.Quantile(c.f); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.f, got, c.want)
		}
	}
	if q.Count() != 10 {
		t.Fatalf("count = %d, want 10", q.Count())
	}
}

func TestDurationQuantilesEviction(t *testing.T) {
	q := NewDurationQuantiles(4)
	// Fill with large values, then push them all out with small ones: the
	// window must forget the old tail entirely.
	for i := 0; i < 4; i++ {
		q.Observe(time.Second)
	}
	for i := 0; i < 4; i++ {
		q.Observe(time.Millisecond)
	}
	if got := q.Quantile(1); got != time.Millisecond {
		t.Fatalf("max after eviction = %v, want 1ms", got)
	}
	if q.Count() != 8 {
		t.Fatalf("count = %d, want 8 (evicted samples still counted)", q.Count())
	}
}

func TestDurationQuantilesConcurrent(t *testing.T) {
	q := NewDurationQuantiles(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				q.Observe(time.Duration(g*100+i) * time.Microsecond)
				_ = q.Quantile(0.5)
			}
		}(g)
	}
	wg.Wait()
	if q.Count() != 800 {
		t.Fatalf("count = %d, want 800", q.Count())
	}
}
