package shard

import (
	"fmt"
	"testing"

	"s2/internal/config"
	"s2/internal/route"
)

func snapFrom(t *testing.T, texts map[string]string) *config.Snapshot {
	t.Helper()
	snap, err := config.ParseTexts(texts)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return snap
}

func TestCollectBGPPrefixes(t *testing.T) {
	snap := snapFrom(t, map[string]string{
		"r1.cfg": `hostname r1
interface vlan10
 ip address 10.8.0.1/24
interface lo0
 ip address 192.168.0.1/32
ip route 172.16.0.0/16 null0
router bgp 65001
 network 10.8.0.0/24
 aggregate-address 10.8.0.0/21 summary-only
 redistribute static
`,
		"r2.cfg": `hostname r2
interface lo0
 ip address 192.168.0.2/32
router bgp 65002
 redistribute connected
`,
	})
	got := CollectBGPPrefixes(snap)
	want := map[string]bool{
		"10.8.0.0/24":    true, // network
		"10.8.0.0/21":    true, // aggregate
		"172.16.0.0/16":  true, // redistribute static
		"192.168.0.2/32": true, // redistribute connected on r2
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want keys %v", got, want)
	}
	for _, p := range got {
		if !want[p.String()] {
			t.Errorf("unexpected prefix %v", p)
		}
	}
	// Sorted.
	for i := 1; i < len(got); i++ {
		if got[i-1].Compare(got[i]) >= 0 {
			t.Fatal("prefixes must be sorted")
		}
	}
}

func TestCollectOSPFAndRedistributionClosure(t *testing.T) {
	snap := snapFrom(t, map[string]string{
		"r1.cfg": `hostname r1
interface eth0
 ip address 10.0.0.0/31
interface lo0
 ip address 192.168.0.1/32
router ospf 1
router bgp 65001
 redistribute ospf
`,
	})
	ospf := CollectOSPFPrefixes(snap)
	if len(ospf) != 2 {
		t.Fatalf("ospf prefixes = %v", ospf)
	}
	bgp := CollectBGPPrefixes(snap)
	// The closure pulls OSPF's prefixes into BGP's set.
	if len(bgp) != 2 {
		t.Fatalf("bgp closure = %v", bgp)
	}
}

func TestDPDGAggregateDependencies(t *testing.T) {
	snap := snapFrom(t, map[string]string{
		"r1.cfg": `hostname r1
interface vlan10
 ip address 10.8.0.1/24
interface vlan11
 ip address 10.8.1.1/24
interface vlan20
 ip address 10.16.0.1/24
router bgp 65001
 network 10.8.0.0/24
 network 10.8.1.0/24
 network 10.16.0.0/24
 aggregate-address 10.8.0.0/21 summary-only
`,
	})
	d := BuildDPDG(snap)
	agg := route.MustParsePrefix("10.8.0.0/21")
	deps := d.Deps[agg]
	if len(deps) != 2 {
		t.Fatalf("aggregate deps = %v", deps)
	}
	for _, dep := range deps {
		if !agg.Covers(dep) {
			t.Errorf("dep %v not covered by aggregate", dep)
		}
	}
	if len(d.Deps[route.MustParsePrefix("10.16.0.0/24")]) != 0 {
		t.Error("independent prefix must have no deps")
	}
}

func TestMakeShardsKeepsDependenciesTogether(t *testing.T) {
	snap := snapFrom(t, map[string]string{
		"r1.cfg": `hostname r1
interface vlan10
 ip address 10.8.0.1/24
interface vlan11
 ip address 10.8.1.1/24
interface vlan20
 ip address 10.16.0.1/24
interface vlan21
 ip address 10.17.0.1/24
router bgp 65001
 network 10.8.0.0/24
 network 10.8.1.0/24
 network 10.16.0.0/24
 network 10.17.0.0/24
 aggregate-address 10.8.0.0/21 summary-only
`,
	})
	d := BuildDPDG(snap)
	shards, err := MakeShards(d, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	// The aggregate and both contributors must share one shard.
	group := []route.Prefix{
		route.MustParsePrefix("10.8.0.0/21"),
		route.MustParsePrefix("10.8.0.0/24"),
		route.MustParsePrefix("10.8.1.0/24"),
	}
	home := -1
	for i, s := range shards {
		if s.Contains(group[0]) {
			home = i
		}
	}
	if home < 0 {
		t.Fatal("aggregate not in any shard")
	}
	for _, p := range group {
		if !shards[home].Contains(p) {
			t.Errorf("dependent prefix %v not in aggregate's shard", p)
		}
	}
	// All prefixes covered exactly once.
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	if total != 5 {
		t.Fatalf("total sharded prefixes = %d, want 5", total)
	}
}

func TestMakeShardsBalance(t *testing.T) {
	// 100 independent prefixes → 10 shards of 10.
	cfg := "hostname r1\n"
	for i := 0; i < 100; i++ {
		cfg += fmt.Sprintf("interface vlan%d\n ip address 10.%d.%d.1/24\n", i, i/256, i%256)
	}
	cfg += "router bgp 65001\n"
	for i := 0; i < 100; i++ {
		cfg += fmt.Sprintf(" network 10.%d.%d.0/24\n", i/256, i%256)
	}
	snap := snapFrom(t, map[string]string{"r1.cfg": cfg})
	d := BuildDPDG(snap)
	shards, err := MakeShards(d, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 10 {
		t.Fatalf("shards = %d", len(shards))
	}
	for i, s := range shards {
		if s.Len() != 10 {
			t.Errorf("shard %d has %d prefixes, want 10", i, s.Len())
		}
	}
}

func TestMakeShardsShuffleDiffersBySeed(t *testing.T) {
	cfg := "hostname r1\n"
	for i := 0; i < 20; i++ {
		cfg += fmt.Sprintf("interface vlan%d\n ip address 10.0.%d.1/24\n", i, i)
	}
	cfg += "router bgp 65001\n"
	for i := 0; i < 20; i++ {
		cfg += fmt.Sprintf(" network 10.0.%d.0/24\n", i)
	}
	snap := snapFrom(t, map[string]string{"r1.cfg": cfg})
	d := BuildDPDG(snap)
	a, _ := MakeShards(d, 4, 1)
	b, _ := MakeShards(d, 4, 2)
	differs := false
	for i := range a {
		if len(a[i].Prefixes) != len(b[i].Prefixes) {
			differs = true
			break
		}
		for j := range a[i].Prefixes {
			if a[i].Prefixes[j] != b[i].Prefixes[j] {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("different seeds should shuffle equal-size components differently")
	}
	// Same seed → identical.
	c, _ := MakeShards(d, 4, 1)
	for i := range a {
		for j := range a[i].Prefixes {
			if a[i].Prefixes[j] != c[i].Prefixes[j] {
				t.Fatal("same seed must be deterministic")
			}
		}
	}
}

func TestMakeShardsEdgeCases(t *testing.T) {
	snap := snapFrom(t, map[string]string{"r1.cfg": `hostname r1
interface vlan10
 ip address 10.8.0.1/24
router bgp 65001
 network 10.8.0.0/24
`})
	d := BuildDPDG(snap)
	if _, err := MakeShards(d, 0, 1); err == nil {
		t.Error("zero shards should error")
	}
	// More shards than components: empties dropped.
	shards, err := MakeShards(d, 5, 1)
	if err != nil || len(shards) != 1 {
		t.Errorf("shards = %v, err = %v", shards, err)
	}
	// No prefixes at all.
	empty := snapFrom(t, map[string]string{"r1.cfg": "hostname r1\n"})
	if _, err := MakeShards(BuildDPDG(empty), 2, 1); err == nil {
		t.Error("no prefixes should error")
	}
}

func TestMerge(t *testing.T) {
	a := newShard()
	a.add([]route.Prefix{route.MustParsePrefix("10.0.0.0/24")})
	b := newShard()
	b.add([]route.Prefix{route.MustParsePrefix("10.0.1.0/24"), route.MustParsePrefix("10.0.0.0/24")})
	m := Merge(a, b)
	if m.Len() != 2 {
		t.Fatalf("merged len = %d", m.Len())
	}
	if !m.Contains(route.MustParsePrefix("10.0.0.0/24")) || !m.Contains(route.MustParsePrefix("10.0.1.0/24")) {
		t.Fatal("merge must contain both shards' prefixes")
	}
}

func TestRouteMapMayMatch(t *testing.T) {
	snap := snapFrom(t, map[string]string{"r.cfg": `hostname r
ip prefix-list PL_A seq 10 permit 10.0.0.0/8 le 32
ip prefix-list PL_B seq 10 permit 172.16.0.0/12 le 32
ip community-list standard CL permit 65000:1
route-map RM_PLAIN permit 10
 match ip address prefix-list PL_A
route-map RM_DENYFIRST deny 10
 match ip address prefix-list PL_A
route-map RM_DENYFIRST permit 20
route-map RM_COMM permit 10
 match community CL
route-map RM_MIXED permit 10
 match ip address prefix-list PL_B
 match community CL
`})
	dev := snap.Devices["r"]
	in10 := route.MustParsePrefix("10.1.0.0/16")
	in172 := route.MustParsePrefix("172.16.5.0/24")
	out := route.MustParsePrefix("192.168.0.0/16")

	if !routeMapMayMatch(dev, "RM_PLAIN", in10) {
		t.Error("plain prefix match should match")
	}
	if routeMapMayMatch(dev, "RM_PLAIN", out) {
		t.Error("non-matching prefix must not match (implicit deny)")
	}
	// A definite deny clause stops evaluation for matching prefixes...
	if routeMapMayMatch(dev, "RM_DENYFIRST", in10) {
		t.Error("definite deny must exclude")
	}
	// ...but other prefixes fall through to the catch-all permit.
	if !routeMapMayMatch(dev, "RM_DENYFIRST", out) {
		t.Error("fallthrough permit should match")
	}
	// Community matches are statically unknowable → conservative true.
	if !routeMapMayMatch(dev, "RM_COMM", out) {
		t.Error("community-only clause is a conservative maybe")
	}
	// Mixed clause: prefix-list decides the prefix dimension.
	if !routeMapMayMatch(dev, "RM_MIXED", in172) {
		t.Error("mixed clause with matching prefix is a maybe")
	}
	if routeMapMayMatch(dev, "RM_MIXED", out) {
		t.Error("mixed clause with non-matching prefix cannot match")
	}
	if routeMapMayMatch(dev, "GHOST", in10) {
		t.Error("undefined route-map matches nothing")
	}
}

func TestMergePrefixDeps(t *testing.T) {
	a := route.MustParsePrefix("10.0.0.0/24")
	b := route.MustParsePrefix("10.0.1.0/24")
	self := route.MustParsePrefix("10.0.2.0/24")
	got := mergePrefixDeps([]route.Prefix{a}, []route.Prefix{b, a, self}, self)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("merge = %v", got)
	}
}

func TestCollectOSPFNetworkScoped(t *testing.T) {
	snap := snapFrom(t, map[string]string{"r.cfg": `hostname r
interface e0
 ip address 10.0.0.0/31
interface lo0
 ip address 192.168.0.1/32
router ospf 1
 network 10.0.0.0/16 area 0
`})
	got := CollectOSPFPrefixes(snap)
	if len(got) != 1 || got[0] != route.MustParsePrefix("10.0.0.0/31") {
		t.Fatalf("scoped OSPF prefixes = %v", got)
	}
}
