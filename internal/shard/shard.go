// Package shard implements prefix sharding (§4.5): collecting the prefixes
// each protocol will compute, building the directed prefix dependency graph
// (DPDG), extracting weakly connected components, and distributing them
// into balanced shards so route computation can run in multiple
// lower-memory rounds.
package shard

import (
	"fmt"
	"math/rand"
	"sort"

	"s2/internal/config"
	"s2/internal/route"
)

// CollectBGPPrefixes gathers every prefix the BGP protocol can originate
// across the snapshot: network statements, redistribution sources
// (connected, static, and — via the redistribution closure — OSPF-enabled
// interface prefixes), and aggregate addresses. This is the §4.5 collection
// step: "first collect the self-originated prefixes for each protocol, then
// add the prefixes of protocol A to those of protocol B, if A is configured
// to redistribute its routes to B".
func CollectBGPPrefixes(snap *config.Snapshot) []route.Prefix {
	seen := map[route.Prefix]bool{}
	add := func(p route.Prefix) { seen[p] = true }

	for _, name := range snap.DeviceNames() {
		dev := snap.Devices[name]
		if dev.BGP == nil {
			continue
		}
		for _, p := range dev.BGP.Networks {
			add(p)
		}
		for _, a := range dev.BGP.Aggregates {
			add(a.Prefix)
		}
		for _, rd := range dev.BGP.Redistribute {
			switch rd.Source {
			case "connected":
				for _, p := range dev.ConnectedPrefixes() {
					add(p)
				}
			case "static":
				for _, sr := range dev.StaticRoutes {
					add(sr.Prefix)
				}
			case "ospf":
				// Redistribution closure: OSPF's prefixes become BGP's.
				for _, p := range CollectOSPFPrefixes(snap) {
					add(p)
				}
			}
		}
	}
	return sortedPrefixes(seen)
}

// CollectOSPFPrefixes gathers every prefix OSPF can originate: the
// OSPF-enabled interface subnets of every OSPF-speaking device.
func CollectOSPFPrefixes(snap *config.Snapshot) []route.Prefix {
	seen := map[route.Prefix]bool{}
	for _, name := range snap.DeviceNames() {
		dev := snap.Devices[name]
		if dev.OSPF == nil {
			continue
		}
		enabled := func(subnet route.Prefix) bool {
			if len(dev.OSPF.Networks) == 0 {
				return true
			}
			for _, n := range dev.OSPF.Networks {
				if n.Covers(subnet) {
					return true
				}
			}
			return false
		}
		for _, ifc := range dev.Interfaces {
			if ifc.Shutdown || ifc.IP == 0 || !enabled(ifc.Subnet) {
				continue
			}
			seen[ifc.Subnet] = true
		}
	}
	return sortedPrefixes(seen)
}

func sortedPrefixes(set map[route.Prefix]bool) []route.Prefix {
	out := make([]route.Prefix, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// DPDG is the directed prefix dependency graph: an edge p → q means
// computing routes for p depends on q (p is an aggregate covering q, or
// p's advertisement is conditioned on q).
type DPDG struct {
	Prefixes []route.Prefix
	// Deps maps each prefix to the prefixes it depends on, sorted.
	Deps map[route.Prefix][]route.Prefix
}

// DPDGOptions tunes dependency derivation.
type DPDGOptions struct {
	// IgnoreConditional skips conditional-advertisement dependencies,
	// deliberately producing the "unforeseen dependency" scenario of §7
	// that runtime detection and shard merging must recover from.
	IgnoreConditional bool
}

// BuildDPDG constructs the dependency graph for the snapshot's BGP
// prefixes with all known dependency sources.
func BuildDPDG(snap *config.Snapshot) *DPDG {
	return BuildDPDGOpts(snap, DPDGOptions{})
}

// BuildDPDGOpts constructs the dependency graph. Two dependency sources
// exist in our configuration language (§4.5): an aggregate-address depends
// on every collected prefix it strictly covers, and a conditionally
// advertised prefix depends on every prefix its exist-/non-exist-map can
// match.
func BuildDPDGOpts(snap *config.Snapshot, opts DPDGOptions) *DPDG {
	prefixes := CollectBGPPrefixes(snap)
	d := &DPDG{Prefixes: prefixes, Deps: make(map[route.Prefix][]route.Prefix)}

	// Index prefixes in a trie for covered-by queries.
	trie := route.NewTrie[route.Prefix]()
	for _, p := range prefixes {
		trie.Insert(p, p)
	}
	aggSeen := map[route.Prefix]bool{}
	for _, name := range snap.DeviceNames() {
		dev := snap.Devices[name]
		if dev.BGP == nil {
			continue
		}
		for _, agg := range dev.BGP.Aggregates {
			if aggSeen[agg.Prefix] {
				continue
			}
			aggSeen[agg.Prefix] = true
			var deps []route.Prefix
			for _, e := range trie.CoveredBy(agg.Prefix) {
				if e.Prefix != agg.Prefix {
					deps = append(deps, e.Prefix)
				}
			}
			sort.Slice(deps, func(i, j int) bool { return deps[i].Compare(deps[j]) < 0 })
			if len(deps) > 0 {
				d.Deps[agg.Prefix] = deps
			}
		}
	}

	if !opts.IgnoreConditional {
		for _, name := range snap.DeviceNames() {
			dev := snap.Devices[name]
			if dev.BGP == nil {
				continue
			}
			for _, nb := range dev.BGP.SortedNeighbors() {
				if nb.AdvertiseMap == "" || nb.ConditionList == "" {
					continue
				}
				pl := dev.PrefixLists[nb.ConditionList]
				if pl == nil {
					continue
				}
				var condPrefixes []route.Prefix
				for _, p := range prefixes {
					if pl.Permits(p) {
						condPrefixes = append(condPrefixes, p)
					}
				}
				if len(condPrefixes) == 0 {
					continue
				}
				for _, p := range prefixes {
					if !routeMapMayMatch(dev, nb.AdvertiseMap, p) {
						continue
					}
					d.Deps[p] = mergePrefixDeps(d.Deps[p], condPrefixes, p)
				}
			}
		}
	}
	return d
}

// routeMapMayMatch conservatively reports whether a route for pfx could
// match the named route-map with a permit disposition. Prefix-list matches
// are decided exactly; community/as-path matches are unknowable statically
// and treated as "maybe" (true), keeping the dependency graph a superset —
// the safe direction for sharding.
func routeMapMayMatch(dev *config.Device, name string, pfx route.Prefix) bool {
	rm, ok := dev.RouteMaps[name]
	if !ok {
		return false
	}
	for _, clause := range rm.Clauses {
		definite := true // all matches decided by prefix alone
		possible := true
		for _, m := range clause.Matches {
			if m.Kind != config.MatchPrefixList {
				definite = false
				continue
			}
			pl := dev.PrefixLists[m.Name]
			if pl == nil || !pl.Permits(pfx) {
				possible = false
				break
			}
		}
		if !possible {
			continue
		}
		if clause.Action == config.Permit {
			return true
		}
		// A deny clause that certainly matches stops evaluation.
		if definite {
			return false
		}
	}
	return false
}

// mergePrefixDeps unions deps into the slice, excluding self-dependencies,
// keeping it sorted and deduplicated.
func mergePrefixDeps(existing, add []route.Prefix, self route.Prefix) []route.Prefix {
	seen := map[route.Prefix]bool{self: true}
	var out []route.Prefix
	for _, p := range existing {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, p := range add {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Components returns the weakly connected components of the DPDG, each as a
// sorted prefix slice, ordered deterministically (by first prefix). The
// delta planner uses this to expand a set of changed prefixes to the full
// dependency closure that must re-simulate together.
func (d *DPDG) Components() [][]route.Prefix { return d.components() }

// components returns the weakly connected components of the DPDG, each as a
// sorted prefix slice, ordered deterministically (by first prefix).
func (d *DPDG) components() [][]route.Prefix {
	idx := make(map[route.Prefix]int, len(d.Prefixes))
	for i, p := range d.Prefixes {
		idx[p] = i
	}
	parent := make([]int, len(d.Prefixes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for p, deps := range d.Deps {
		for _, q := range deps {
			union(idx[p], idx[q])
		}
	}
	groups := map[int][]route.Prefix{}
	for i, p := range d.Prefixes {
		r := find(i)
		groups[r] = append(groups[r], p)
	}
	out := make([][]route.Prefix, 0, len(groups))
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i].Compare(g[j]) < 0 })
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Compare(out[j][0]) < 0 })
	return out
}

// Shard is one prefix shard usable as a simulation prefix filter.
type Shard struct {
	Prefixes []route.Prefix
	set      map[route.Prefix]bool
}

func newShard() *Shard { return &Shard{set: map[route.Prefix]bool{}} }

func (s *Shard) add(ps []route.Prefix) {
	for _, p := range ps {
		if !s.set[p] {
			s.set[p] = true
			s.Prefixes = append(s.Prefixes, p)
		}
	}
}

// Contains reports shard membership; it has the signature the simulation's
// prefix filters expect.
func (s *Shard) Contains(p route.Prefix) bool { return s.set[p] }

// Len returns the number of prefixes in the shard.
func (s *Shard) Len() int { return len(s.Prefixes) }

// MakeShards distributes the DPDG's weakly connected components into at
// most m shards with the paper's greedy algorithm: components in descending
// size order — shuffling equal-sized components with the seeded RNG to
// avoid worker-correlated skew (§4.5) — each assigned to the currently
// smallest shard. Empty shards are dropped.
func MakeShards(d *DPDG, m int, seed int64) ([]*Shard, error) {
	if m < 1 {
		return nil, fmt.Errorf("shard: shard count must be >= 1, got %d", m)
	}
	ccs := d.components()
	if len(ccs) == 0 {
		return nil, fmt.Errorf("shard: no prefixes to shard")
	}

	// Sort by descending size; shuffle ties.
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(ccs), func(i, j int) { ccs[i], ccs[j] = ccs[j], ccs[i] })
	sort.SliceStable(ccs, func(i, j int) bool { return len(ccs[i]) > len(ccs[j]) })

	shards := make([]*Shard, m)
	for i := range shards {
		shards[i] = newShard()
	}
	for _, cc := range ccs {
		smallest := 0
		for i := 1; i < m; i++ {
			if shards[i].Len() < shards[smallest].Len() {
				smallest = i
			}
		}
		shards[smallest].add(cc)
	}
	out := shards[:0]
	for _, s := range shards {
		if s.Len() > 0 {
			sort.Slice(s.Prefixes, func(i, j int) bool { return s.Prefixes[i].Compare(s.Prefixes[j]) < 0 })
			out = append(out, s)
		}
	}
	return out, nil
}

// Merge combines shards into one — the §7 recovery path for dependencies
// discovered only at simulation time: merge the affected shards and
// recompute.
func Merge(shards ...*Shard) *Shard {
	out := newShard()
	for _, s := range shards {
		out.add(s.Prefixes)
	}
	sort.Slice(out.Prefixes, func(i, j int) bool { return out.Prefixes[i].Compare(out.Prefixes[j]) < 0 })
	return out
}
