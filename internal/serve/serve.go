// Package serve is the verification-as-a-service layer: it wraps a
// resident s2.Verifier — booted once, converged state kept warm across
// requests — with an HTTP/JSON API for staging config deltas, triggering
// incremental re-verification, and answering queries from the resident
// state without re-running the pipeline.
//
// Endpoints:
//
//	POST /v1/configs        stage changes: {"set": {...}, "remove": [...]}
//	                        for per-device deltas, or {"snapshot": {...}} to
//	                        replace the whole config set (devices absent
//	                        from the snapshot are removed).
//	POST /v1/verify         apply staged changes and re-verify incrementally;
//	                        returns the delta report (mode, dirty shards,
//	                        epoch).
//	GET  /v1/queries        warm queries: ?type=allpairs|ribs|routecount
//	                        (&device=NAME filters ribs).
//	POST /v1/queries        batch reachability queries: {"queries": [...]};
//	                        compatible queries share symbolic passes, repeat
//	                        queries hit the epoch-keyed answer cache, and
//	                        every result carries the epoch it was answered
//	                        against.
//	GET  /v1/epoch          the verified-state epoch.
//	GET  /v1/status         epoch, device count, staged-change count, last
//	                        delta, audit and trace summary.
//	GET  /v1/audit          the delta audit journal (?limit=N for the
//	                        newest N entries).
//	GET  /debug/traces      recent per-request traces (summaries, newest
//	                        first).
//	GET  /debug/traces/<id> one request's span tree as Chrome trace JSON
//	                        (chrome://tracing, ui.perfetto.dev).
//	GET  /debug/dashboard   live fleet health dashboard (HTML; ?stream=1
//	                        for the raw SSE frame feed).
//	POST /debug/profile     pull a pprof profile from one worker:
//	                        ?worker=N&kind=cpu|heap[&seconds=S].
//	GET  /debug/profiles    stored worker profiles (JSON index;
//	                        /debug/profiles/<id> downloads the proto).
//	GET  /debug/pprof/      controller-process pprof handlers.
//	GET  /metrics           Prometheus text exposition (when wired with a
//	                        registry).
//
// Epoch semantics: the epoch advances once per completed verification —
// the boot run, every successful /v1/verify (even a semantic no-op), and
// nothing else. Query responses carry the epoch they were answered at;
// the all-pairs report is cached per epoch, so repeated queries between
// verifies are free.
//
// Observability (all optional, see Options): every request gets RED
// metrics (s2_http_* series), a structured log record, and — for the
// verifier-touching endpoints — its own span tree in a bounded trace store
// with tail-based retention. Every verification run leaves an audit entry
// recording the plan, the dirty-shard set, and per-stage wall time. With
// Options zero, the serve path adds no goroutines and no per-request
// allocations.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"s2"
	"s2/internal/obs"
)

// Metric names exported by the serving layer; see README "Observability".
const (
	MetricHTTPRequests   = "s2_http_requests_total"
	MetricHTTPLatency    = "s2_http_request_seconds"
	MetricHTTPInflight   = "s2_http_inflight_requests"
	MetricVerifyLatency  = "s2_verify_seconds"
	MetricStagedConfigs  = "s2_staged_configs"
	MetricResidentMemory = "s2_resident_memory_bytes"
)

// Options wires the serving layer's observability. The zero value disables
// all of it.
type Options struct {
	// Registry backs GET /metrics and the RED metric series.
	Registry *obs.Registry
	// Tracer enables per-request tracing: it must be the same tracer
	// passed to the verifier (s2.Options.Tracer), so pipeline spans land
	// in the request's tree. Requests are traced only when TraceCapacity
	// is also positive.
	Tracer *obs.Tracer
	// TraceCapacity bounds the in-memory trace store behind /debug/traces
	// (0 disables request tracing).
	TraceCapacity int
	// TraceKeepSlowest is the slowest-N always retained by eviction
	// (default 16 when tracing is on).
	TraceKeepSlowest int
	// Logger receives one structured record per request plus serve-layer
	// lifecycle events.
	Logger *obs.Logger
	// Audit receives one entry per verification; expose it on /v1/audit.
	Audit *Journal
}

// Server holds the resident verifier and the staged-but-unverified config
// changes. State-changing requests (/v1/configs, /v1/verify) serialize on
// s.mu; warm read-only queries (GET and POST /v1/queries) deliberately do
// NOT take it — the verifier's own readers/writer lock lets them run
// concurrently with each other while still excluding verifies. That is also
// why per-request span attribution stays on /v1/verify only: with reads in
// flight concurrently there is no single request a pipeline span could be
// attributed to.
type Server struct {
	mu sync.Mutex
	v  *s2.Verifier

	staged  map[string]string // device → replacement text
	removed map[string]bool   // device → staged removal

	// Single-flighted all-pairs cache: between verifies the report is
	// immutable, so concurrent cold requests collapse into one
	// CheckAllPairs with the waiters sharing the result. apMu guards the
	// three fields; apDone is closed when the in-flight computation ends.
	apMu     sync.Mutex
	apReport *s2.ReachabilityReport
	apBusy   bool
	apDone   chan struct{}

	lastDelta *s2.DeltaReport
	started   time.Time

	reg    *obs.Registry
	log    *obs.Logger
	tracer *obs.Tracer
	traces *obs.TraceStore
	audit  *Journal
	reqSeq atomic.Uint64

	httpReqs     *obs.Counter
	httpLatency  *obs.Histogram
	httpInflight *obs.Gauge
	verifySecs   *obs.Histogram
	stagedGauge  *obs.Gauge
	memPeak      atomic.Uint64
}

// New wraps a booted verifier. Pass a zero Options to disable all
// observability (the pre-serving-telemetry behavior).
func New(v *s2.Verifier, opts Options) *Server {
	s := &Server{
		v:       v,
		staged:  map[string]string{},
		removed: map[string]bool{},
		started: time.Now(),
		reg:     opts.Registry,
		log:     opts.Logger,
		audit:   opts.Audit,
	}
	if opts.Tracer != nil && opts.TraceCapacity > 0 {
		s.tracer = opts.Tracer
		keep := opts.TraceKeepSlowest
		if keep == 0 {
			keep = 16
		}
		s.traces = obs.NewTraceStore(opts.TraceCapacity, keep)
		// The tracer already holds the boot verification's spans; fold them
		// into a browsable "boot" trace so the store starts clean and the
		// first request doesn't inherit them.
		if events := s.tracer.DrainEvents(); len(events) > 0 {
			var minTS, maxEnd int64 = 1<<63 - 1, 0
			for _, e := range events {
				if e.TS < minTS {
					minTS = e.TS
				}
				if e.TS+e.Dur > maxEnd {
					maxEnd = e.TS + e.Dur
				}
			}
			dur := time.Duration(maxEnd-minTS) * time.Microsecond
			s.traces.Add(&obs.RequestTrace{
				ID:       "boot",
				Name:     "boot",
				Start:    time.Now().Add(-dur),
				Duration: dur,
				Status:   http.StatusOK,
				Events:   events,
			})
		}
	}
	if s.reg != nil {
		s.httpReqs = s.reg.Counter(MetricHTTPRequests,
			"HTTP requests served, by path, method, and status code.",
			"path", "method", "code")
		s.httpLatency = s.reg.Histogram(MetricHTTPLatency,
			"HTTP request latency in seconds, by path.", nil, "path")
		s.httpInflight = s.reg.Gauge(MetricHTTPInflight,
			"HTTP requests currently in flight, by path.", "path")
		s.verifySecs = s.reg.Histogram(MetricVerifyLatency,
			"End-to-end /v1/verify latency in seconds, by delta class.", nil, "class")
		s.stagedGauge = s.reg.Gauge(MetricStagedConfigs,
			"Staged-but-unverified config changes (sets plus removes).")
		mem := s.reg.Gauge(MetricResidentMemory,
			"Resident heap bytes of the serving process, current and watermark.", "kind")
		mem.SetFunc(func() float64 { return float64(s.heapBytes()) }, "current")
		mem.SetFunc(func() float64 { s.heapBytes(); return float64(s.memPeak.Load()) }, "watermark")
	}
	return s
}

// heapBytes samples the live heap and folds it into the watermark.
func (s *Server) heapBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		peak := s.memPeak.Load()
		if ms.HeapAlloc <= peak || s.memPeak.CompareAndSwap(peak, ms.HeapAlloc) {
			break
		}
	}
	return ms.HeapAlloc
}

// Handler returns the API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/configs", s.endpoint("/v1/configs", s.handleConfigs))
	mux.HandleFunc("/v1/verify", s.endpoint("/v1/verify", s.handleVerify))
	mux.HandleFunc("/v1/queries", s.endpoint("/v1/queries", s.handleQueries))
	mux.HandleFunc("/v1/epoch", s.endpoint("/v1/epoch", s.handleEpoch))
	mux.HandleFunc("/v1/status", s.endpoint("/v1/status", s.handleStatus))
	mux.HandleFunc("/v1/audit", s.endpoint("/v1/audit", s.handleAudit))
	mux.HandleFunc("/debug/traces", s.endpoint("/debug/traces", s.handleTraceList))
	mux.HandleFunc("/debug/traces/", s.endpoint("/debug/traces/", s.handleTraceGet))
	mux.HandleFunc("/healthz", s.endpoint("/healthz", func(*http.Request) (int, any) {
		return http.StatusOK, map[string]any{"status": "ok"}
	}))
	if s.reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			s.reg.WritePrometheus(w)
		})
	}
	// Controller-process pprof: the daemon previously exposed pprof only
	// via a separate obs.ServeIntrospection listener, leaving the API port
	// without it; register the standard handlers here too.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Fleet health plane: live dashboard, worker profile pulls, stored
	// profiles. All handlers are nil-safe — with the history/profile planes
	// disabled these routes answer 404/501 and cost nothing otherwise.
	dash := &obs.Dashboard{
		Health:  func() any { return s.v.FleetHealth() },
		History: s.v.History(),
	}
	obs.RegisterFleetHandlers(mux, dash, s.v.Profiles(),
		func(worker int, kind string, seconds int) (*obs.Profile, error) {
			return s.v.PullWorkerProfile(worker, kind, seconds)
		})
	return mux
}

// ctxKey carries the request id through the handler chain.
type ctxKey int

const ridKey ctxKey = 0

// requestID returns the id minted by endpoint ("" with observability off).
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(ridKey).(string)
	return id
}

// chromeTrace marks a handler body that must be written as a raw Chrome
// trace file instead of the ordinary JSON envelope.
type chromeTrace []obs.TraceEvent

// endpoint wraps a handler with the per-request observability: request id,
// in-flight gauge, request counter, latency histogram, and one structured
// log record. With no registry, logger, or trace store configured it calls
// the handler directly — no id, no context copy, no allocations.
func (s *Server) endpoint(path string, h func(*http.Request) (int, any)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.reg == nil && s.log == nil && s.traces == nil {
			status, body := h(r)
			writeBody(w, status, body)
			return
		}
		start := time.Now()
		if s.log != nil || s.traces != nil {
			rid := s.nextRequestID()
			r = r.WithContext(context.WithValue(r.Context(), ridKey, rid))
		}
		s.httpInflight.Add(1, path)
		status, body := h(r)
		s.httpInflight.Add(-1, path)
		took := time.Since(start)
		s.httpReqs.Inc(path, r.Method, codeString(status))
		s.httpLatency.Observe(took.Seconds(), path)
		s.logRequest(r, status, took)
		writeBody(w, status, body)
	}
}

func (s *Server) nextRequestID() string {
	id := strconv.FormatUint(s.reqSeq.Add(1), 10)
	for len(id) < 6 {
		id = "0" + id
	}
	return "r" + id
}

func (s *Server) logRequest(r *http.Request, status int, took time.Duration) {
	if s.log == nil {
		return
	}
	fields := []obs.Field{
		obs.FStr("id", requestID(r)),
		obs.FStr("method", r.Method),
		obs.FStr("path", r.URL.Path),
		obs.FInt("status", status),
		obs.FDur("took", took),
	}
	switch {
	case status >= 500:
		s.log.Error("http request", fields...)
	case status >= 400:
		s.log.Warn("http request", fields...)
	case r.Method == http.MethodGet || r.Method == http.MethodHead:
		s.log.Debug("http request", fields...)
	default:
		s.log.Info("http request", fields...)
	}
}

// beginTrace opens the per-request root span and points the verifier's
// span tree at it. Call with s.mu held — the lock is what guarantees every
// span drained at the end belongs to this request. The returned func ends
// the root, restores the previous span, and commits the tree to the trace
// store; it is nil when request tracing is off.
func (s *Server) beginTrace(r *http.Request, name string) func(status int) {
	if s.traces == nil {
		return nil
	}
	// Background spans accumulated since the last request (heartbeat
	// probes, span harvests) would otherwise be attributed to this one.
	s.tracer.DrainEvents()
	rid := requestID(r)
	start := time.Now()
	root := s.tracer.Start(name, obs.String("request", rid))
	prev := s.v.SetRequestSpan(root)
	return func(status int) {
		s.v.SetRequestSpan(prev)
		root.SetAttr("status", strconv.Itoa(status))
		root.End()
		s.traces.Add(&obs.RequestTrace{
			ID:       rid,
			Name:     name,
			Start:    start,
			Duration: time.Since(start),
			Status:   status,
			Err:      status >= 400,
			Events:   s.tracer.DrainEvents(),
		})
	}
}

// configsRequest stages config changes. Exactly one shape applies per
// request: snapshot replaces everything; set/remove are per-device deltas.
type configsRequest struct {
	// Set maps device names to replacement config texts (add or modify; a
	// text whose parsed hostname differs renames the device).
	Set map[string]string `json:"set"`
	// Remove lists devices to delete.
	Remove []string `json:"remove"`
	// Snapshot, when non-empty, replaces the entire config set: devices
	// absent from it are removed.
	Snapshot map[string]string `json:"snapshot"`
}

func (s *Server) handleConfigs(r *http.Request) (int, any) {
	if r.Method != http.MethodPost {
		return errBody(http.StatusMethodNotAllowed, "POST only")
	}
	var req configsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return errBody(http.StatusBadRequest, "bad JSON: %v", err)
	}
	if len(req.Snapshot) > 0 && (len(req.Set) > 0 || len(req.Remove) > 0) {
		return errBody(http.StatusBadRequest, "snapshot and set/remove are mutually exclusive")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(req.Snapshot) > 0 {
		// Full replacement: stage every snapshot device and the removal of
		// every current device the snapshot no longer has.
		s.staged = map[string]string{}
		s.removed = map[string]bool{}
		for name, text := range req.Snapshot {
			s.staged[name] = text
		}
		for _, name := range s.v.Devices() {
			if _, ok := req.Snapshot[name]; !ok {
				s.removed[name] = true
			}
		}
	} else {
		for name, text := range req.Set {
			delete(s.removed, name)
			s.staged[name] = text
		}
		for _, name := range req.Remove {
			delete(s.staged, name)
			s.removed[name] = true
		}
	}
	s.stagedGauge.Set(float64(len(s.staged) + len(s.removed)))
	return http.StatusOK, map[string]any{
		"staged":  len(s.staged),
		"removed": len(s.removed),
		"epoch":   s.v.Epoch(),
	}
}

func (s *Server) handleVerify(r *http.Request) (status int, body any) {
	if r.Method != http.MethodPost {
		return errBody(http.StatusMethodNotAllowed, "POST only")
	}
	// The request takes no parameters, but a malformed body is a client
	// error, not something to silently ignore (or 500 on).
	if raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<20)); err != nil {
		return errBody(http.StatusBadRequest, "reading body: %v", err)
	} else if trimmed := strings.TrimSpace(string(raw)); trimmed != "" {
		var ignored map[string]any
		if err := json.Unmarshal([]byte(trimmed), &ignored); err != nil {
			return errBody(http.StatusBadRequest, "bad JSON: %v", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if end := s.beginTrace(r, "POST /v1/verify"); end != nil {
		defer func() { end(status) }()
	}
	set := s.staged
	var remove []string
	for name := range s.removed {
		remove = append(remove, name)
	}
	sort.Strings(remove)
	start := time.Now()
	report, err := s.v.ApplyDelta(set, remove)
	took := time.Since(start)
	if err != nil {
		// Staged changes stay staged: the caller can fix and re-verify.
		s.audit.Record(AuditEntry{
			Epoch:     s.v.Epoch(),
			Time:      time.Now(),
			RequestID: requestID(r),
			Class:     "unknown",
			Seconds:   took.Seconds(),
			Outcome:   "error",
			Error:     err.Error(),
		})
		return errBody(http.StatusUnprocessableEntity, "verification failed: %v", err)
	}
	s.staged = map[string]string{}
	s.removed = map[string]bool{}
	s.stagedGauge.Set(0)
	s.lastDelta = report
	s.verifySecs.Observe(took.Seconds(), report.Class)
	s.audit.Record(AuditEntry{
		Epoch:        report.Epoch,
		Time:         time.Now(),
		RequestID:    requestID(r),
		Class:        report.Class,
		Mode:         report.Mode,
		Changed:      report.Changed,
		Added:        report.Added,
		Removed:      report.Removed,
		DirtyShards:  report.DirtyShardIDs,
		DirtyCount:   report.DirtyShards,
		TotalShards:  report.TotalShards,
		StageSeconds: report.StageSeconds,
		Seconds:      took.Seconds(),
		Outcome:      "ok",
	})
	if s.reg != nil {
		s.heapBytes() // fold the post-verify heap into the watermark
	}
	return http.StatusOK, report
}

func (s *Server) handleQueries(r *http.Request) (status int, body any) {
	switch r.Method {
	case http.MethodGet:
		return s.handleWarmQueries(r)
	case http.MethodPost:
		return s.handleBatchQueries(r)
	default:
		return errBody(http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// handleWarmQueries answers read-only queries from resident state. No s.mu:
// the verifier's readers/writer lock makes these safe to run concurrently
// with each other while excluding /v1/verify.
func (s *Server) handleWarmQueries(r *http.Request) (int, any) {
	kind := r.URL.Query().Get("type")
	switch kind {
	case "", "allpairs":
		report, err := s.allPairs()
		if err != nil {
			return errBody(http.StatusInternalServerError, "all-pairs: %v", err)
		}
		return http.StatusOK, map[string]any{
			"epoch":      report.Epoch,
			"ok":         report.OK(),
			"sources":    report.Sources,
			"dests":      report.Dests,
			"unreached":  report.Unreached,
			"violations": report.Violations,
		}
	case "ribs":
		epoch := s.v.Epoch()
		ribs, err := s.v.RIBs()
		if err != nil {
			return errBody(http.StatusInternalServerError, "ribs: %v", err)
		}
		if dev := r.URL.Query().Get("device"); dev != "" {
			routes, ok := ribs[dev]
			if !ok {
				return errBody(http.StatusNotFound, "unknown device %q", dev)
			}
			ribs = map[string][]string{dev: routes}
		}
		return http.StatusOK, map[string]any{"epoch": epoch, "ribs": ribs}
	case "routecount":
		epoch := s.v.Epoch()
		n, err := s.v.RouteCount()
		if err != nil {
			return errBody(http.StatusInternalServerError, "routecount: %v", err)
		}
		return http.StatusOK, map[string]any{"epoch": epoch, "routes": n}
	default:
		return errBody(http.StatusBadRequest, "unknown query type %q (want allpairs, ribs, or routecount)", kind)
	}
}

// allPairs returns the per-epoch all-pairs report, computing it at most
// once per epoch no matter how many cold requests arrive concurrently:
// the first takes the computation, the rest wait on it and share the
// result. The report's own Epoch field keys the cache, so a stale report
// can never be served for a newer epoch.
func (s *Server) allPairs() (*s2.ReachabilityReport, error) {
	for {
		epoch := s.v.Epoch()
		s.apMu.Lock()
		if s.apReport != nil && s.apReport.Epoch == epoch {
			report := s.apReport
			s.apMu.Unlock()
			return report, nil
		}
		if !s.apBusy {
			break
		}
		done := s.apDone
		s.apMu.Unlock()
		<-done
	}
	s.apBusy = true
	done := make(chan struct{})
	s.apDone = done
	s.apMu.Unlock()
	report, err := s.v.CheckAllPairs()
	s.apMu.Lock()
	s.apBusy = false
	if err == nil {
		s.apReport = report
	}
	s.apMu.Unlock()
	close(done)
	return report, err
}

// batchQuery is the wire form of one POST /v1/queries entry, mirroring
// s2.Query field for field.
type batchQuery struct {
	DstPrefix string   `json:"dst_prefix"`
	SrcPrefix string   `json:"src_prefix"`
	Protocol  uint8    `json:"protocol"`
	DstPort   uint16   `json:"dst_port"`
	Sources   []string `json:"sources"`
	Dests     []string `json:"dests"`
	Transits  []string `json:"transits"`
	MaxHops   int      `json:"max_hops"`
}

// handleBatchQueries answers a batch of reachability queries in one
// submission: compatible queries share symbolic passes, duplicates collapse,
// and repeats against an unchanged epoch hit the answer cache.
func (s *Server) handleBatchQueries(r *http.Request) (int, any) {
	var req struct {
		Queries []batchQuery `json:"queries"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return errBody(http.StatusBadRequest, "bad JSON: %v", err)
	}
	if len(req.Queries) == 0 {
		return errBody(http.StatusBadRequest, "no queries")
	}
	qs := make([]s2.Query, len(req.Queries))
	for i, q := range req.Queries {
		qs[i] = s2.Query{
			DstPrefix: q.DstPrefix,
			SrcPrefix: q.SrcPrefix,
			Protocol:  q.Protocol,
			DstPort:   q.DstPort,
			Sources:   q.Sources,
			Dests:     q.Dests,
			Transits:  q.Transits,
			MaxHops:   q.MaxHops,
		}
	}
	reports, err := s.v.CheckBatch(qs)
	if err != nil {
		return errBody(http.StatusBadRequest, "query batch: %v", err)
	}
	results := make([]map[string]any, len(reports))
	var epoch uint64
	for i, rep := range reports {
		epoch = rep.Epoch
		results[i] = map[string]any{
			"epoch":      rep.Epoch,
			"ok":         rep.OK(),
			"reached":    rep.ReachedDests,
			"violations": rep.Violations,
		}
	}
	return http.StatusOK, map[string]any{
		"epoch":   epoch,
		"count":   len(results),
		"results": results,
	}
}

func (s *Server) handleEpoch(r *http.Request) (int, any) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		return errBody(http.StatusMethodNotAllowed, "GET only")
	}
	return http.StatusOK, map[string]any{"epoch": s.v.Epoch()}
}

func (s *Server) handleStatus(r *http.Request) (int, any) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		return errBody(http.StatusMethodNotAllowed, "GET only")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	body := map[string]any{
		"epoch":          s.v.Epoch(),
		"devices":        len(s.v.Devices()),
		"staged":         len(s.staged),
		"staged_removes": len(s.removed),
		"last_delta":     s.lastDelta,
		"uptime_seconds": time.Since(s.started).Seconds(),
	}
	if s.audit != nil {
		body["audit_entries"] = s.audit.Total()
		body["last_audit"] = s.audit.Last()
	}
	if s.traces != nil {
		added, evicted := s.traces.Stats()
		body["traces"] = map[string]any{
			"stored": s.traces.Len(), "added": added, "evicted": evicted,
		}
	}
	return http.StatusOK, body
}

func (s *Server) handleAudit(r *http.Request) (int, any) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		return errBody(http.StatusMethodNotAllowed, "GET only")
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			return errBody(http.StatusBadRequest, "bad limit %q", q)
		}
		limit = n
	}
	entries := s.audit.Entries(limit)
	if entries == nil {
		entries = []AuditEntry{}
	}
	return http.StatusOK, map[string]any{
		"total":   s.audit.Total(),
		"entries": entries,
	}
}

// traceSummary is one /debug/traces listing row.
type traceSummary struct {
	ID      string    `json:"id"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	Seconds float64   `json:"seconds"`
	Status  int       `json:"status"`
	Error   bool      `json:"error"`
	Spans   int       `json:"spans"`
}

func (s *Server) handleTraceList(r *http.Request) (int, any) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		return errBody(http.StatusMethodNotAllowed, "GET only")
	}
	list := s.traces.Traces()
	out := make([]traceSummary, 0, len(list))
	for _, tr := range list {
		out = append(out, traceSummary{
			ID:      tr.ID,
			Name:    tr.Name,
			Start:   tr.Start,
			Seconds: tr.Duration.Seconds(),
			Status:  tr.Status,
			Error:   tr.Err,
			Spans:   tr.Spans,
		})
	}
	return http.StatusOK, map[string]any{"stored": len(out), "traces": out}
}

func (s *Server) handleTraceGet(r *http.Request) (int, any) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		return errBody(http.StatusMethodNotAllowed, "GET only")
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	if id == "" || strings.Contains(id, "/") {
		return errBody(http.StatusNotFound, "unknown trace %q", id)
	}
	tr := s.traces.Get(id)
	if tr == nil {
		return errBody(http.StatusNotFound, "unknown trace %q", id)
	}
	return http.StatusOK, chromeTrace(tr.Events)
}

// writeBody renders a handler result: Chrome trace JSON for chromeTrace
// bodies, the indented JSON envelope otherwise. Every response carries an
// explicit Content-Type.
func writeBody(w http.ResponseWriter, status int, body any) {
	if events, ok := body.(chromeTrace); ok {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(status)
		obs.WriteTraceEvents(w, events)
		return
	}
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(body)
}

// errBody builds an error-response pair for the endpoint wrapper.
func errBody(status int, format string, args ...any) (int, any) {
	return status, map[string]any{"error": fmt.Sprintf(format, args...)}
}

// codeString formats an HTTP status without allocating for the common ones.
func codeString(status int) string {
	switch status {
	case 200:
		return "200"
	case 400:
		return "400"
	case 404:
		return "404"
	case 405:
		return "405"
	case 422:
		return "422"
	case 500:
		return "500"
	}
	return strconv.Itoa(status)
}
