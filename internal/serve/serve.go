// Package serve is the verification-as-a-service layer: it wraps a
// resident s2.Verifier — booted once, converged state kept warm across
// requests — with an HTTP/JSON API for staging config deltas, triggering
// incremental re-verification, and answering queries from the resident
// state without re-running the pipeline.
//
// Endpoints:
//
//	POST /v1/configs  stage changes: {"set": {...}, "remove": [...]} for
//	                  per-device deltas, or {"snapshot": {...}} to replace
//	                  the whole config set (devices absent from the
//	                  snapshot are removed).
//	POST /v1/verify   apply staged changes and re-verify incrementally;
//	                  returns the delta report (mode, dirty shards, epoch).
//	GET  /v1/queries  warm queries: ?type=allpairs|ribs|routecount
//	                  (&device=NAME filters ribs).
//	GET  /v1/epoch    the verified-state epoch.
//	GET  /v1/status   epoch, device count, staged-change count, last delta.
//	GET  /metrics     Prometheus text exposition (when wired with a
//	                  registry).
//
// Epoch semantics: the epoch advances once per completed verification —
// the boot run, every successful /v1/verify (even a semantic no-op), and
// nothing else. Query responses carry the epoch they were answered at;
// the all-pairs report is cached per epoch, so repeated queries between
// verifies are free.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"s2"
	"s2/internal/obs"
)

// Server holds the resident verifier and the staged-but-unverified config
// changes. All verifier operations are serialized: the underlying pipeline
// orchestrates multi-step worker phases that must not interleave.
type Server struct {
	mu sync.Mutex
	v  *s2.Verifier

	staged  map[string]string // device → replacement text
	removed map[string]bool   // device → staged removal

	// Warm-query cache, keyed by epoch: between verifies the all-pairs
	// report is immutable.
	cacheEpoch  uint64
	cacheReport *s2.ReachabilityReport

	lastDelta *s2.DeltaReport
	reg       *obs.Registry
	started   time.Time
}

// New wraps a booted verifier. reg, when non-nil, backs GET /metrics.
func New(v *s2.Verifier, reg *obs.Registry) *Server {
	return &Server{
		v:       v,
		staged:  map[string]string{},
		removed: map[string]bool{},
		reg:     reg,
		started: time.Now(),
	}
}

// Handler returns the API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/configs", s.handleConfigs)
	mux.HandleFunc("/v1/verify", s.handleVerify)
	mux.HandleFunc("/v1/queries", s.handleQueries)
	mux.HandleFunc("/v1/epoch", s.handleEpoch)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	if s.reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			s.reg.WritePrometheus(w)
		})
	}
	return mux
}

// configsRequest stages config changes. Exactly one shape applies per
// request: snapshot replaces everything; set/remove are per-device deltas.
type configsRequest struct {
	// Set maps device names to replacement config texts (add or modify; a
	// text whose parsed hostname differs renames the device).
	Set map[string]string `json:"set"`
	// Remove lists devices to delete.
	Remove []string `json:"remove"`
	// Snapshot, when non-empty, replaces the entire config set: devices
	// absent from it are removed.
	Snapshot map[string]string `json:"snapshot"`
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req configsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Snapshot) > 0 && (len(req.Set) > 0 || len(req.Remove) > 0) {
		writeError(w, http.StatusBadRequest, "snapshot and set/remove are mutually exclusive")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(req.Snapshot) > 0 {
		// Full replacement: stage every snapshot device and the removal of
		// every current device the snapshot no longer has.
		s.staged = map[string]string{}
		s.removed = map[string]bool{}
		for name, text := range req.Snapshot {
			s.staged[name] = text
		}
		for _, name := range s.v.Devices() {
			if _, ok := req.Snapshot[name]; !ok {
				s.removed[name] = true
			}
		}
	} else {
		for name, text := range req.Set {
			delete(s.removed, name)
			s.staged[name] = text
		}
		for _, name := range req.Remove {
			delete(s.staged, name)
			s.removed[name] = true
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"staged":  len(s.staged),
		"removed": len(s.removed),
		"epoch":   s.v.Epoch(),
	})
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.staged
	var remove []string
	for name := range s.removed {
		remove = append(remove, name)
	}
	sort.Strings(remove)
	report, err := s.v.ApplyDelta(set, remove)
	if err != nil {
		// Staged changes stay staged: the caller can fix and re-verify.
		writeError(w, http.StatusUnprocessableEntity, "verification failed: %v", err)
		return
	}
	s.staged = map[string]string{}
	s.removed = map[string]bool{}
	s.lastDelta = report
	writeJSON(w, http.StatusOK, report)
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	kind := r.URL.Query().Get("type")
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch := s.v.Epoch()
	switch kind {
	case "", "allpairs":
		if s.cacheReport == nil || s.cacheEpoch != epoch {
			report, err := s.v.CheckAllPairs()
			if err != nil {
				writeError(w, http.StatusInternalServerError, "all-pairs: %v", err)
				return
			}
			s.cacheReport, s.cacheEpoch = report, epoch
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"epoch":      epoch,
			"ok":         s.cacheReport.OK(),
			"sources":    s.cacheReport.Sources,
			"dests":      s.cacheReport.Dests,
			"unreached":  s.cacheReport.Unreached,
			"violations": s.cacheReport.Violations,
		})
	case "ribs":
		ribs, err := s.v.RIBs()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "ribs: %v", err)
			return
		}
		if dev := r.URL.Query().Get("device"); dev != "" {
			routes, ok := ribs[dev]
			if !ok {
				writeError(w, http.StatusNotFound, "unknown device %q", dev)
				return
			}
			ribs = map[string][]string{dev: routes}
		}
		writeJSON(w, http.StatusOK, map[string]any{"epoch": epoch, "ribs": ribs})
	case "routecount":
		n, err := s.v.RouteCount()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "routecount: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"epoch": epoch, "routes": n})
	default:
		writeError(w, http.StatusBadRequest, "unknown query type %q (want allpairs, ribs, or routecount)", kind)
	}
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"epoch": s.v.Epoch()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":          s.v.Epoch(),
		"devices":        len(s.v.Devices()),
		"staged":         len(s.staged),
		"staged_removes": len(s.removed),
		"last_delta":     s.lastDelta,
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}
