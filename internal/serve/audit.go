// The delta audit journal: every verification epoch in serving mode leaves
// a durable record of what changed, which re-verification plan the planner
// chose, exactly which shards were re-simulated (each skipped shard is a
// soundness claim someone must be able to inspect), how long each pipeline
// stage took, and how it ended. Exposed at GET /v1/audit and summarized in
// /v1/status; -audit-log additionally appends each entry as a JSON line.

package serve

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// AuditEntry is one delta's audit record.
type AuditEntry struct {
	// Epoch is the verified-state epoch the delta produced (for failed
	// deltas: the epoch that stayed current).
	Epoch uint64 `json:"epoch"`
	// Time is when the verification finished.
	Time time.Time `json:"time"`
	// RequestID ties the entry to the request's trace in /debug/traces
	// ("" when tracing is off or the entry is the boot record).
	RequestID string `json:"request_id,omitempty"`
	// Class is the classified change ("none", "dp", "orig", "policy",
	// "topo"; "boot" for the boot record). Changed/Added/Removed carry the
	// per-device classification behind it.
	Class   string            `json:"class"`
	Mode    string            `json:"mode"`
	Changed map[string]string `json:"changed,omitempty"`
	Added   []string          `json:"added,omitempty"`
	Removed []string          `json:"removed,omitempty"`
	// DirtyShards lists the shard rounds that ran, in execution order;
	// DirtyCount and TotalShards give its size against the shard total.
	DirtyShards []int `json:"dirty_shards,omitempty"`
	DirtyCount  int   `json:"dirty_count"`
	TotalShards int   `json:"total_shards"`
	// StageSeconds maps pipeline stages to wall seconds spent in them.
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
	// Seconds is the end-to-end wall time of the verification request.
	Seconds float64 `json:"seconds"`
	// Outcome is "ok" or "error"; Error carries the message for the latter.
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
}

// Journal is a bounded append-only ring of audit entries, optionally
// mirrored to an io.Writer as JSON lines (the -audit-log file). A nil
// *Journal is a valid disabled journal.
type Journal struct {
	mu      sync.Mutex
	entries []AuditEntry
	max     int
	total   uint64
	sink    io.Writer
	sinkErr error
}

// NewJournal returns a journal keeping the last max entries in memory
// (max <= 0 defaults to 1024). sink, when non-nil, receives every entry as
// one JSON line at record time; write errors are remembered, not fatal.
func NewJournal(max int, sink io.Writer) *Journal {
	if max <= 0 {
		max = 1024
	}
	return &Journal{max: max, sink: sink}
}

// Record appends one entry, evicting the oldest past capacity.
func (j *Journal) Record(e AuditEntry) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.total++
	j.entries = append(j.entries, e)
	if len(j.entries) > j.max {
		n := copy(j.entries, j.entries[len(j.entries)-j.max:])
		j.entries = j.entries[:n]
	}
	if j.sink != nil {
		line, err := json.Marshal(e)
		if err == nil {
			line = append(line, '\n')
			_, err = j.sink.Write(line)
		}
		if err != nil {
			j.sinkErr = err
		}
	}
}

// Entries returns the resident entries, oldest first. limit > 0 restricts
// to the newest limit entries.
func (j *Journal) Entries(limit int) []AuditEntry {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := len(j.entries)
	if limit > 0 && limit < n {
		n = limit
	}
	return append([]AuditEntry(nil), j.entries[len(j.entries)-n:]...)
}

// Last returns the newest entry (nil when empty).
func (j *Journal) Last() *AuditEntry {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.entries) == 0 {
		return nil
	}
	e := j.entries[len(j.entries)-1]
	return &e
}

// Total returns the lifetime entry count (recorded, not resident).
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}
