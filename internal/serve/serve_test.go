package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"s2"
	"s2/internal/synth"
)

// bootServer builds a fat-tree verifier, runs the boot verification, and
// wraps it in a test HTTP server.
func bootServer(t *testing.T) (*httptest.Server, map[string]string) {
	t.Helper()
	texts, err := synth.FatTree(synth.FatTreeOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	network, err := s2.LoadConfigs(texts)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s2.NewVerifier(network, s2.Options{Workers: 2, Shards: 4, Seed: 5, KeepRIBs: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })
	if _, err := v.ComputeDataPlane(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(v, nil).Handler())
	t.Cleanup(ts.Close)
	return ts, texts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return body
}

func postJSON(t *testing.T, url string, req any, wantStatus int) map[string]any {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d (body %v)", url, resp.StatusCode, wantStatus, body)
	}
	return body
}

func TestServeDeltaLifecycle(t *testing.T) {
	ts, texts := bootServer(t)

	// Boot state: epoch 1, clean all-pairs, warm queries answer.
	if got := getJSON(t, ts.URL+"/v1/epoch", 200)["epoch"].(float64); got != 1 {
		t.Fatalf("boot epoch = %v, want 1", got)
	}
	ap := getJSON(t, ts.URL+"/v1/queries?type=allpairs", 200)
	if ap["ok"] != true || ap["epoch"].(float64) != 1 {
		t.Fatalf("boot all-pairs: %v", ap)
	}
	rc := getJSON(t, ts.URL+"/v1/queries?type=routecount", 200)
	if rc["routes"].(float64) <= 0 {
		t.Fatalf("routecount: %v", rc)
	}
	ribs := getJSON(t, ts.URL+"/v1/queries?type=ribs&device=edge-0-0", 200)
	if _, ok := ribs["ribs"].(map[string]any)["edge-0-0"]; !ok {
		t.Fatalf("ribs for edge-0-0 missing: %v", ribs)
	}

	// Stage a description-only delta and verify: dp mode, epoch advances.
	edited := strings.Replace(texts["agg-0-0"], "description link to", "description uplink to", 1)
	staged := postJSON(t, ts.URL+"/v1/configs",
		map[string]any{"set": map[string]string{"agg-0-0": edited}}, 200)
	if staged["staged"].(float64) != 1 {
		t.Fatalf("staged: %v", staged)
	}
	rep := postJSON(t, ts.URL+"/v1/verify", map[string]any{}, 200)
	if rep["Mode"] != "dp" || rep["Epoch"].(float64) != 2 {
		t.Fatalf("dp delta report: %v", rep)
	}

	// Status reflects the applied delta and empty staging area.
	st := getJSON(t, ts.URL+"/v1/status", 200)
	if st["staged"].(float64) != 0 || st["epoch"].(float64) != 2 {
		t.Fatalf("status: %v", st)
	}

	// Withdraw an origination: shards mode, answers still clean and warm.
	var netLine string
	for _, line := range strings.Split(texts["edge-1-0"], "\n") {
		if strings.HasPrefix(line, " network ") {
			netLine = line
			break
		}
	}
	if netLine == "" {
		t.Fatal("no network line in edge-1-0")
	}
	withdrawn := strings.Replace(texts["edge-1-0"], netLine+"\n", "", 1)
	postJSON(t, ts.URL+"/v1/configs",
		map[string]any{"set": map[string]string{"edge-1-0": withdrawn}}, 200)
	rep = postJSON(t, ts.URL+"/v1/verify", map[string]any{}, 200)
	if rep["Mode"] != "shards" || rep["Epoch"].(float64) != 3 {
		t.Fatalf("shards delta report: %v", rep)
	}
	ap = getJSON(t, ts.URL+"/v1/queries?type=allpairs", 200)
	if ap["ok"] != true || ap["epoch"].(float64) != 3 {
		t.Fatalf("post-delta all-pairs: %v", ap)
	}

	// Full-snapshot replacement removing one device: full mode.
	snapshot := map[string]string{}
	for name, text := range texts {
		snapshot[name] = text
	}
	snapshot["edge-1-0"] = withdrawn
	delete(snapshot, "edge-1-1")
	staged = postJSON(t, ts.URL+"/v1/configs", map[string]any{"snapshot": snapshot}, 200)
	if staged["removed"].(float64) != 1 {
		t.Fatalf("snapshot staging: %v", staged)
	}
	rep = postJSON(t, ts.URL+"/v1/verify", map[string]any{}, 200)
	if rep["Mode"] != "full" || fmt.Sprint(rep["Removed"]) != "[edge-1-1]" {
		t.Fatalf("snapshot delta report: %v", rep)
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	ts, _ := bootServer(t)

	// Wrong methods.
	resp, err := http.Get(ts.URL + "/v1/verify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/verify: %d", resp.StatusCode)
	}

	// Unknown query type and unknown device.
	getJSON(t, ts.URL+"/v1/queries?type=bogus", http.StatusBadRequest)
	getJSON(t, ts.URL+"/v1/queries?type=ribs&device=nope", http.StatusNotFound)

	// Bad JSON.
	br, err := http.Post(ts.URL+"/v1/configs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	br.Body.Close()
	if br.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", br.StatusCode)
	}

	// A config that fails to parse: verify fails, staging survives, and a
	// corrected re-verify succeeds.
	postJSON(t, ts.URL+"/v1/configs",
		map[string]any{"set": map[string]string{"edge-0-0": "hostname edge-0-0\ninterface"}}, 200)
	postJSON(t, ts.URL+"/v1/verify", map[string]any{}, http.StatusUnprocessableEntity)
	st := getJSON(t, ts.URL+"/v1/status", 200)
	if st["staged"].(float64) != 1 {
		t.Fatalf("failed verify must keep staging: %v", st)
	}
}
