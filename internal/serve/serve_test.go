package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"s2"
	"s2/internal/core"
	"s2/internal/obs"
	"s2/internal/synth"
)

// bootServer builds a fat-tree verifier, runs the boot verification, and
// wraps it in a test HTTP server with observability off.
func bootServer(t *testing.T) (*httptest.Server, map[string]string) {
	ts, texts, _ := bootServerOpts(t, func(*s2.Options) {}, Options{})
	return ts, texts
}

// bootObsServer is bootServer with the full telemetry stack wired: shared
// tracer, registry, logger (discarded), trace store, and audit journal.
func bootObsServer(t *testing.T) (*httptest.Server, map[string]string, Options) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	opts := Options{
		Registry:         reg,
		Tracer:           tracer,
		TraceCapacity:    64,
		TraceKeepSlowest: 4,
		Logger:           obs.NewLogger(io.Discard, obs.LevelDebug, true),
		Audit:            NewJournal(64, nil),
	}
	ts, texts, _ := bootServerOpts(t, func(o *s2.Options) {
		o.Metrics = reg
		o.Tracer = tracer
		o.Logger = opts.Logger
	}, opts)
	return ts, texts, opts
}

func bootServerOpts(t *testing.T, tweak func(*s2.Options), sopts Options) (*httptest.Server, map[string]string, *s2.Verifier) {
	t.Helper()
	texts, err := synth.FatTree(synth.FatTreeOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	network, err := s2.LoadConfigs(texts)
	if err != nil {
		t.Fatal(err)
	}
	vopts := s2.Options{Workers: 2, Shards: 4, Seed: 5, KeepRIBs: true}
	tweak(&vopts)
	v, err := s2.NewVerifier(network, vopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })
	if _, err := v.ComputeDataPlane(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(v, sopts).Handler())
	t.Cleanup(ts.Close)
	return ts, texts, v
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return body
}

func postJSON(t *testing.T, url string, req any, wantStatus int) map[string]any {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d (body %v)", url, resp.StatusCode, wantStatus, body)
	}
	return body
}

func TestServeDeltaLifecycle(t *testing.T) {
	ts, texts := bootServer(t)

	// Boot state: epoch 1, clean all-pairs, warm queries answer.
	if got := getJSON(t, ts.URL+"/v1/epoch", 200)["epoch"].(float64); got != 1 {
		t.Fatalf("boot epoch = %v, want 1", got)
	}
	ap := getJSON(t, ts.URL+"/v1/queries?type=allpairs", 200)
	if ap["ok"] != true || ap["epoch"].(float64) != 1 {
		t.Fatalf("boot all-pairs: %v", ap)
	}
	rc := getJSON(t, ts.URL+"/v1/queries?type=routecount", 200)
	if rc["routes"].(float64) <= 0 {
		t.Fatalf("routecount: %v", rc)
	}
	ribs := getJSON(t, ts.URL+"/v1/queries?type=ribs&device=edge-0-0", 200)
	if _, ok := ribs["ribs"].(map[string]any)["edge-0-0"]; !ok {
		t.Fatalf("ribs for edge-0-0 missing: %v", ribs)
	}

	// Stage a description-only delta and verify: dp mode, epoch advances.
	edited := strings.Replace(texts["agg-0-0"], "description link to", "description uplink to", 1)
	staged := postJSON(t, ts.URL+"/v1/configs",
		map[string]any{"set": map[string]string{"agg-0-0": edited}}, 200)
	if staged["staged"].(float64) != 1 {
		t.Fatalf("staged: %v", staged)
	}
	rep := postJSON(t, ts.URL+"/v1/verify", map[string]any{}, 200)
	if rep["Mode"] != "dp" || rep["Epoch"].(float64) != 2 {
		t.Fatalf("dp delta report: %v", rep)
	}

	// Status reflects the applied delta and empty staging area.
	st := getJSON(t, ts.URL+"/v1/status", 200)
	if st["staged"].(float64) != 0 || st["epoch"].(float64) != 2 {
		t.Fatalf("status: %v", st)
	}

	// Withdraw an origination: shards mode, answers still clean and warm.
	var netLine string
	for _, line := range strings.Split(texts["edge-1-0"], "\n") {
		if strings.HasPrefix(line, " network ") {
			netLine = line
			break
		}
	}
	if netLine == "" {
		t.Fatal("no network line in edge-1-0")
	}
	withdrawn := strings.Replace(texts["edge-1-0"], netLine+"\n", "", 1)
	postJSON(t, ts.URL+"/v1/configs",
		map[string]any{"set": map[string]string{"edge-1-0": withdrawn}}, 200)
	rep = postJSON(t, ts.URL+"/v1/verify", map[string]any{}, 200)
	if rep["Mode"] != "shards" || rep["Epoch"].(float64) != 3 {
		t.Fatalf("shards delta report: %v", rep)
	}
	ap = getJSON(t, ts.URL+"/v1/queries?type=allpairs", 200)
	if ap["ok"] != true || ap["epoch"].(float64) != 3 {
		t.Fatalf("post-delta all-pairs: %v", ap)
	}

	// Full-snapshot replacement removing one device: full mode.
	snapshot := map[string]string{}
	for name, text := range texts {
		snapshot[name] = text
	}
	snapshot["edge-1-0"] = withdrawn
	delete(snapshot, "edge-1-1")
	staged = postJSON(t, ts.URL+"/v1/configs", map[string]any{"snapshot": snapshot}, 200)
	if staged["removed"].(float64) != 1 {
		t.Fatalf("snapshot staging: %v", staged)
	}
	rep = postJSON(t, ts.URL+"/v1/verify", map[string]any{}, 200)
	if rep["Mode"] != "full" || fmt.Sprint(rep["Removed"]) != "[edge-1-1]" {
		t.Fatalf("snapshot delta report: %v", rep)
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	ts, _ := bootServer(t)

	// Wrong methods.
	resp, err := http.Get(ts.URL + "/v1/verify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/verify: %d", resp.StatusCode)
	}

	// Unknown query type and unknown device.
	getJSON(t, ts.URL+"/v1/queries?type=bogus", http.StatusBadRequest)
	getJSON(t, ts.URL+"/v1/queries?type=ribs&device=nope", http.StatusNotFound)

	// Bad JSON.
	br, err := http.Post(ts.URL+"/v1/configs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	br.Body.Close()
	if br.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", br.StatusCode)
	}

	// A config that fails to parse: verify fails, staging survives, and a
	// corrected re-verify succeeds.
	postJSON(t, ts.URL+"/v1/configs",
		map[string]any{"set": map[string]string{"edge-0-0": "hostname edge-0-0\ninterface"}}, 200)
	postJSON(t, ts.URL+"/v1/verify", map[string]any{}, http.StatusUnprocessableEntity)
	st := getJSON(t, ts.URL+"/v1/status", 200)
	if st["staged"].(float64) != 1 {
		t.Fatalf("failed verify must keep staging: %v", st)
	}
}

// TestServeStatusAndContentType is the table-driven handler audit: every
// endpoint answers with an explicit JSON Content-Type, malformed bodies are
// client errors (400, never 500), and wrong methods are 405.
func TestServeStatusAndContentType(t *testing.T) {
	ts, _ := bootServer(t)

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
	}{
		{"epoch get", "GET", "/v1/epoch", "", 200},
		{"epoch post rejected", "POST", "/v1/epoch", "", 405},
		{"status get", "GET", "/v1/status", "", 200},
		{"status delete rejected", "DELETE", "/v1/status", "", 405},
		{"healthz", "GET", "/healthz", "", 200},
		{"queries put rejected", "PUT", "/v1/queries?type=allpairs", "", 405},
		{"configs get rejected", "GET", "/v1/configs", "", 405},
		{"configs malformed body", "POST", "/v1/configs", "{not json", 400},
		{"configs snapshot plus set", "POST", "/v1/configs",
			`{"snapshot": {"a": "hostname a"}, "remove": ["b"]}`, 400},
		{"verify empty body ok", "POST", "/v1/verify", "", 200},
		{"verify object body ok", "POST", "/v1/verify", "{}", 200},
		{"verify malformed body", "POST", "/v1/verify", "{oops", 400},
		{"verify array body", "POST", "/v1/verify", "[1, 2]", 400},
		{"audit without journal", "GET", "/v1/audit", "", 200},
		{"audit bad limit", "GET", "/v1/audit?limit=nope", "", 400},
		{"trace list without store", "GET", "/debug/traces", "", 200},
		{"trace get unknown", "GET", "/debug/traces/r000042", "", 404},
		{"trace post rejected", "POST", "/debug/traces", "", 405},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				raw, _ := io.ReadAll(resp.Body)
				t.Fatalf("%s %s: status %d, want %d (body %s)",
					tc.method, tc.path, resp.StatusCode, tc.wantStatus, raw)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
				t.Fatalf("%s %s: Content-Type %q", tc.method, tc.path, ct)
			}
			var body any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("%s %s: response is not JSON: %v", tc.method, tc.path, err)
			}
			if tc.wantStatus >= 400 {
				if _, ok := body.(map[string]any)["error"]; !ok {
					t.Fatalf("%s %s: error response lacks error field: %v", tc.method, tc.path, body)
				}
			}
		})
	}
}

// TestServeAuditAndTraces drives a delta sequence on a fully instrumented
// server and checks the audit journal and per-request trace store.
func TestServeAuditAndTraces(t *testing.T) {
	ts, texts, opts := bootObsServer(t)

	// dp delta (epoch 2), then shards delta (epoch 3).
	edited := strings.Replace(texts["agg-0-0"], "description link to", "description uplink to", 1)
	postJSON(t, ts.URL+"/v1/configs",
		map[string]any{"set": map[string]string{"agg-0-0": edited}}, 200)
	postJSON(t, ts.URL+"/v1/verify", map[string]any{}, 200)
	var netLine string
	for _, line := range strings.Split(texts["edge-1-0"], "\n") {
		if strings.HasPrefix(line, " network ") {
			netLine = line
			break
		}
	}
	withdrawn := strings.Replace(texts["edge-1-0"], netLine+"\n", "", 1)
	postJSON(t, ts.URL+"/v1/configs",
		map[string]any{"set": map[string]string{"edge-1-0": withdrawn}}, 200)
	postJSON(t, ts.URL+"/v1/verify", map[string]any{}, 200)
	// Restore the origination: the re-announced prefix's dependency closure
	// is re-simulated, so this delta runs a non-empty strict shard subset
	// (the withdrawal itself only purges — 0 dirty shards).
	postJSON(t, ts.URL+"/v1/configs",
		map[string]any{"set": map[string]string{"edge-1-0": texts["edge-1-0"]}}, 200)
	postJSON(t, ts.URL+"/v1/verify", map[string]any{}, 200)

	// Audit journal: one ok entry per verify, classes and plans recorded,
	// the restore entry names the shards that ran.
	audit := getJSON(t, ts.URL+"/v1/audit", 200)
	entries, _ := audit["entries"].([]any)
	if len(entries) != 3 {
		t.Fatalf("audit entries = %d, want 3 (%v)", len(entries), audit)
	}
	first := entries[0].(map[string]any)
	if first["epoch"].(float64) != 2 || first["class"] != "dp" || first["mode"] != "dp" {
		t.Fatalf("first audit entry: %v", first)
	}
	if first["outcome"] != "ok" || first["seconds"].(float64) <= 0 {
		t.Fatalf("first audit entry outcome: %v", first)
	}
	restore := entries[2].(map[string]any)
	if restore["epoch"].(float64) != 4 || restore["class"] != "orig" || restore["mode"] != "shards" {
		t.Fatalf("restore audit entry: %v", restore)
	}
	dirty, _ := restore["dirty_shards"].([]any)
	if len(dirty) == 0 || restore["dirty_count"].(float64) != float64(len(dirty)) {
		t.Fatalf("restore entry dirty set: %v", restore)
	}
	if restore["dirty_count"].(float64) >= restore["total_shards"].(float64) {
		t.Fatalf("restore entry re-ran everything: %v", restore)
	}
	if stages, _ := restore["stage_seconds"].(map[string]any); len(stages) == 0 {
		t.Fatalf("restore entry has no stage timings: %v", restore)
	}
	if restore["request_id"] == "" {
		t.Fatalf("audit entry lacks request id: %v", restore)
	}

	// A failed verify is audited too.
	postJSON(t, ts.URL+"/v1/configs",
		map[string]any{"set": map[string]string{"edge-0-0": "hostname edge-0-0\ninterface"}}, 200)
	postJSON(t, ts.URL+"/v1/verify", map[string]any{}, http.StatusUnprocessableEntity)
	last := opts.Audit.Last()
	if last == nil || last.Outcome != "error" || last.Error == "" {
		t.Fatalf("failed verify not audited: %+v", last)
	}

	// Trace store: every verify (including the failed one) left a trace
	// named after the request; newest first.
	list := getJSON(t, ts.URL+"/debug/traces", 200)
	traces, _ := list["traces"].([]any)
	if len(traces) == 0 {
		t.Fatalf("no traces stored: %v", list)
	}
	var verifyTrace map[string]any
	for _, raw := range traces {
		tr := raw.(map[string]any)
		if tr["name"] == "POST /v1/verify" && tr["error"] == false {
			verifyTrace = tr
			break
		}
	}
	if verifyTrace == nil {
		t.Fatalf("no successful verify trace in %v", list)
	}

	// The trace body is Chrome trace JSON whose span names include the
	// controller-side RPC spans and the worker-side phase spans.
	resp, err := http.Get(ts.URL + "/debug/traces/" + verifyTrace["id"].(string))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("trace fetch: %d", resp.StatusCode)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("trace is not Chrome JSON: %v", err)
	}
	var sawRoot, sawRPC, sawWorkerPhase bool
	for _, e := range chrome.TraceEvents {
		switch {
		case e.Name == "POST /v1/verify":
			sawRoot = true
		case strings.HasPrefix(e.Name, "rpc:"):
			sawRPC = true
		case e.PID >= 1 && (e.Name == "apply-delta" || e.Name == "compute-dp" ||
			e.Name == "gather-bgp" || e.Name == "apply-bgp"):
			sawWorkerPhase = true
		}
	}
	if !sawRoot || !sawRPC || !sawWorkerPhase {
		t.Fatalf("verify trace incomplete: root=%v rpc=%v workerPhase=%v (%d events)",
			sawRoot, sawRPC, sawWorkerPhase, len(chrome.TraceEvents))
	}

	// Status surfaces the audit and trace summary.
	st := getJSON(t, ts.URL+"/v1/status", 200)
	if st["audit_entries"].(float64) != 4 {
		t.Fatalf("status audit summary: %v", st)
	}
	if st["traces"].(map[string]any)["stored"].(float64) == 0 {
		t.Fatalf("status trace summary: %v", st)
	}
}

// TestServeMetricsSurface checks the serving-layer metric series: staged
// gauge transitions, RED counters, and the delta-plan counter.
func TestServeMetricsSurface(t *testing.T) {
	ts, texts, _ := bootObsServer(t)

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	edited := strings.Replace(texts["agg-0-0"], "description link to", "description uplink to", 1)
	postJSON(t, ts.URL+"/v1/configs",
		map[string]any{"set": map[string]string{"agg-0-0": edited}}, 200)
	if m := scrape(); !strings.Contains(m, "s2_staged_configs 1") {
		t.Fatalf("staged gauge after staging:\n%s", m)
	}
	postJSON(t, ts.URL+"/v1/verify", map[string]any{}, 200)

	m := scrape()
	for _, want := range []string{
		"s2_staged_configs 0",
		`s2_delta_plan_total{class="dp"} 1`,
		`s2_http_requests_total{path="/v1/verify",method="POST",code="200"} 1`,
		`s2_http_requests_total{path="/v1/configs",method="POST",code="200"} 1`,
		`s2_verify_seconds_count{class="dp"} 1`,
		`s2_resident_memory_bytes{kind="watermark"}`,
		"s2_epoch_age_seconds",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q:\n%s", want, m)
		}
	}
}

func TestServeBatchQueries(t *testing.T) {
	ts, _ := bootServer(t)
	queries := []map[string]any{
		{"dst_prefix": "10.128.64.0/24", "sources": []string{"edge-0-0"}, "dests": []string{"edge-0-1"}},
		{"dst_prefix": "10.128.0.0/24", "dests": []string{"edge-0-0"}},
		{"dst_prefix": "10.128.64.0/24", "sources": []string{"edge-0-0"}, "dests": []string{"edge-0-1"}}, // duplicate of #0
	}
	body := postJSON(t, ts.URL+"/v1/queries", map[string]any{"queries": queries}, 200)
	if got := body["count"].(float64); got != 3 {
		t.Fatalf("count = %v", got)
	}
	if body["epoch"].(float64) < 1 {
		t.Fatalf("epoch = %v", body["epoch"])
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, raw := range results {
		res := raw.(map[string]any)
		if res["ok"] != true {
			t.Errorf("result %d: %v", i, res)
		}
		if res["epoch"] != body["epoch"] {
			t.Errorf("result %d: epoch %v != batch epoch %v", i, res["epoch"], body["epoch"])
		}
	}
	// Duplicate queries must agree exactly.
	if a, b := fmt.Sprint(results[0]), fmt.Sprint(results[2]); a != b {
		t.Errorf("duplicate queries answered differently:\n%s\n%s", a, b)
	}

	// Malformed inputs.
	postJSON(t, ts.URL+"/v1/queries", map[string]any{"queries": []any{}}, 400)
	postJSON(t, ts.URL+"/v1/queries",
		map[string]any{"queries": []map[string]any{{"dst_prefix": "bogus"}}}, 400)
	resp, err := http.Post(ts.URL+"/v1/queries", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad JSON: status %d", resp.StatusCode)
	}
}

// TestServeAllPairsSingleFlight fires a burst of cold all-pairs reads and
// checks that exactly one symbolic pass served them all: one flight
// computes, the rest wait and share, repeats hit the per-epoch cache.
func TestServeAllPairsSingleFlight(t *testing.T) {
	ts, _, sopts := bootObsServer(t)
	before := sopts.Registry.Snapshot()[core.MetricQueryPasses]

	const burst = 8
	var wg sync.WaitGroup
	epochs := make([]float64, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/queries?type=allpairs")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != 200 || body["ok"] != true {
				t.Errorf("allpairs %d: status %d body %v", i, resp.StatusCode, body)
				return
			}
			epochs[i] = body["epoch"].(float64)
		}(i)
	}
	wg.Wait()
	for i := 1; i < burst; i++ {
		if epochs[i] != epochs[0] {
			t.Fatalf("epoch drift across burst: %v", epochs)
		}
	}
	after := sopts.Registry.Snapshot()[core.MetricQueryPasses]
	if got := after - before; got != 1 {
		t.Fatalf("%v passes for a %d-wide cold burst, want exactly 1", got, burst)
	}
	// Warm repeat: no new pass at all.
	getJSON(t, ts.URL+"/v1/queries?type=allpairs", 200)
	if got := sopts.Registry.Snapshot()[core.MetricQueryPasses]; got != after {
		t.Fatalf("warm all-pairs repeat ran %v extra passes", got-after)
	}
}

// TestServeWarmReadsRunConcurrently mixes every warm read kind and batch
// posts in flight at once; all must succeed against the shared verifier.
func TestServeWarmReadsRunConcurrently(t *testing.T) {
	ts, _ := bootServer(t)
	urls := []string{
		ts.URL + "/v1/queries?type=allpairs",
		ts.URL + "/v1/queries?type=ribs&device=edge-0-0",
		ts.URL + "/v1/queries?type=routecount",
		ts.URL + "/v1/epoch",
	}
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for _, u := range urls {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				resp, err := http.Get(u)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("GET %s: %d", u, resp.StatusCode)
				}
			}(u)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload, _ := json.Marshal(map[string]any{"queries": []map[string]any{
				{"dst_prefix": "10.128.0.0/24", "dests": []string{"edge-0-0"}},
			}})
			resp, err := http.Post(ts.URL+"/v1/queries", "application/json", bytes.NewReader(payload))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("POST /v1/queries: %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
}
