package bdd

import (
	"math/rand"
	"testing"
)

// buildRandomFns builds n random functions over nvars variables on e.
func buildRandomFns(t *testing.T, e *Engine, nvars, n int, seed int64) []Ref {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]Ref, 0, n)
	for k := 0; k < n; k++ {
		f := True
		for i := 0; i < 8; i++ {
			v, err := e.Var(rng.Intn(nvars))
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				v, err = e.Not(v)
				if err != nil {
					t.Fatal(err)
				}
			}
			if rng.Intn(2) == 0 {
				f, err = e.And(f, v)
			} else {
				f, err = e.Or(f, v)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		out = append(out, f)
	}
	return out
}

// sameFn checks a-side f and b-side g agree on sampled assignments.
func sameFn(t *testing.T, a *Engine, f Ref, b *Engine, g Ref, nvars int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	asg := make([]bool, nvars)
	for trial := 0; trial < 500; trial++ {
		for i := range asg {
			asg[i] = rng.Intn(2) == 0
		}
		if a.Eval(f, asg) != b.Eval(g, asg) {
			t.Fatalf("functions differ at %v", asg)
		}
	}
}

func TestSerializeSetRoundTrip(t *testing.T) {
	const nvars = 16
	a := New(nvars, 0)
	b := New(nvars, 0)
	fns := buildRandomFns(t, a, nvars, 6, 11)
	// Include terminals and a duplicate: both must survive the set codec.
	refs := append([]Ref{False, True, fns[0]}, fns...)

	roots, err := b.DeserializeSet(a.SerializeSet(refs))
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != len(refs) {
		t.Fatalf("got %d roots for %d refs", len(roots), len(refs))
	}
	if roots[0] != False || roots[1] != True {
		t.Fatalf("terminals did not survive: %v", roots[:2])
	}
	if roots[2] != roots[3] {
		t.Fatal("duplicate refs must decode to the same local ref")
	}
	for i, r := range refs {
		sameFn(t, a, r, b, roots[i], nvars, int64(100+i))
	}
}

func TestSerializeSetSharesSubstrate(t *testing.T) {
	// Functions built from the same clauses share most of their nodes: one
	// set-encoded message must be substantially smaller than per-ref
	// serializations, which re-encode the shared sub-DAG every time.
	const nvars = 24
	e := New(nvars, 0)
	base := True
	for i := 0; i < nvars-1; i++ {
		v, _ := e.Var(i)
		var err error
		base, err = e.And(base, v)
		if err != nil {
			t.Fatal(err)
		}
	}
	last, _ := e.Var(nvars - 1)
	nlast, _ := e.Not(last)
	f1, _ := e.And(base, last)
	f2, _ := e.And(base, nlast)
	f3, _ := e.Or(f1, f2)
	refs := []Ref{f1, f2, f3, f1, f2, f3}

	perRef := 0
	for _, r := range refs {
		perRef += len(e.Serialize(r))
	}
	set := len(e.SerializeSet(refs))
	if set*2 >= perRef {
		t.Fatalf("set encoding %dB not < half of per-ref %dB", set, perRef)
	}
}

func TestSerializeSetEmpty(t *testing.T) {
	a := New(8, 0)
	b := New(8, 0)
	roots, err := b.DeserializeSet(a.SerializeSet(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 0 {
		t.Fatalf("empty set decoded %d roots", len(roots))
	}
}

func TestDeserializeSetRejectsGarbage(t *testing.T) {
	e := New(8, 0)
	x, _ := e.Var(2)
	y, _ := e.Var(5)
	f, _ := e.And(x, y)
	good := e.SerializeSet([]Ref{f})
	cases := [][]byte{nil, {1}, []byte("not a wire message"), good[:len(good)-1]}
	// A Serialize payload must not decode as a set message (distinct magic).
	cases = append(cases, e.Serialize(f))
	for _, data := range cases {
		if _, err := e.DeserializeSet(data); err == nil {
			t.Fatalf("garbage %v should fail", data)
		}
	}
	if _, err := New(16, 0).DeserializeSet(good); err == nil {
		t.Fatal("variable count mismatch must error")
	}
}

// deliver runs one sender→receiver message exchange: Accept then
// Materialize, returning the receiver-local refs for the roots.
func deliver(t *testing.T, recv *Engine, table *WireTable, wire []byte, roots []uint32) []Ref {
	t.Helper()
	ok, err := table.Accept(wire, recv.NumVars())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("delivery unexpectedly refused")
	}
	if err := table.Materialize(recv, wire); err != nil {
		t.Fatal(err)
	}
	out := make([]Ref, len(roots))
	for i, id := range roots {
		r, err := table.Resolve(id)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	return out
}

func TestWireSessionDelta(t *testing.T) {
	const nvars = 16
	a := New(nvars, 0)
	b := New(nvars, 0)
	fns := buildRandomFns(t, a, nvars, 4, 23)

	sess := NewWireSession()
	table := NewWireTable()

	// First message carries everything.
	wire1, roots1, new1, _ := a.EncodeDelta(sess, fns[:2])
	if new1 == 0 {
		t.Fatal("first message must carry nodes")
	}
	got := deliver(t, b, table, wire1, roots1)
	sameFn(t, a, fns[0], b, got[0], nvars, 1)
	sameFn(t, a, fns[1], b, got[1], nvars, 2)

	// Re-sending the same refs is pure dedup: zero new nodes, nonzero
	// dedup counter, same resolved functions.
	wire2, roots2, new2, dedup2 := a.EncodeDelta(sess, fns[:2])
	if new2 != 0 {
		t.Fatalf("re-send encoded %d new nodes", new2)
	}
	if dedup2 == 0 {
		t.Fatal("re-send must count deduped arrivals")
	}
	if len(wire2) >= len(wire1) {
		t.Fatalf("delta message %dB not smaller than first %dB", len(wire2), len(wire1))
	}
	got2 := deliver(t, b, table, wire2, roots2)
	if got2[0] != got[0] || got2[1] != got[1] {
		t.Fatal("dedup delivery resolved different refs")
	}

	// New functions extend the session incrementally.
	wire3, roots3, _, _ := a.EncodeDelta(sess, fns[2:])
	got3 := deliver(t, b, table, wire3, roots3)
	sameFn(t, a, fns[2], b, got3[0], nvars, 3)
	sameFn(t, a, fns[3], b, got3[1], nvars, 4)
}

func TestWireSessionEpochReset(t *testing.T) {
	const nvars = 12
	a := New(nvars, 0)
	b := New(nvars, 0)
	fns := buildRandomFns(t, a, nvars, 2, 31)

	sess := NewWireSession()
	table := NewWireTable()
	wire1, roots1, _, _ := a.EncodeDelta(sess, fns[:1])
	deliver(t, b, table, wire1, roots1)

	// The sender loses confidence (GC remap, delivery error): Reset bumps
	// the epoch and the next message is self-contained (base == 2), which
	// the receiver must accept unconditionally and rebuild from.
	epoch := sess.Epoch()
	sess.Reset()
	if sess.Epoch() <= epoch || sess.Known() != 0 {
		t.Fatalf("reset did not clear session: epoch %d→%d known %d", epoch, sess.Epoch(), sess.Known())
	}
	wire2, roots2, new2, _ := a.EncodeDelta(sess, fns)
	if new2 == 0 {
		t.Fatal("post-reset message must re-encode everything")
	}
	got := deliver(t, b, table, wire2, roots2)
	sameFn(t, a, fns[0], b, got[0], nvars, 5)
	sameFn(t, a, fns[1], b, got[1], nvars, 6)
}

func TestWireTableRefusesDivergedContinuation(t *testing.T) {
	const nvars = 12
	a := New(nvars, 0)
	b := New(nvars, 0)
	fns := buildRandomFns(t, a, nvars, 2, 47)

	sess := NewWireSession()
	wire1, _, _, _ := a.EncodeDelta(sess, fns[:1])
	wire2, roots2, _, _ := a.EncodeDelta(sess, fns[1:])

	// A fresh receiver (restart, recovery) sees the continuation without
	// its prefix: Accept must refuse rather than materialize bad splices.
	fresh := NewWireTable()
	ok, err := fresh.Accept(wire2, nvars)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("continuation onto an empty table must be refused")
	}
	// The handshake: sender resets and re-sends self-contained.
	sess.Reset()
	wire3, roots3, _, _ := a.EncodeDelta(sess, fns[1:])
	got := deliver(t, b, fresh, wire3, roots3)
	sameFn(t, a, fns[1], b, got[0], nvars, 7)

	// Materialize out of order (without Accept's rebase) errors loudly.
	if err := NewWireTable().Materialize(b, wire2); err == nil {
		t.Fatal("out-of-order materialize must error")
	}
	_ = roots2
	_ = wire1
}

func TestWireSessionSurvivesManyRounds(t *testing.T) {
	// Soak the protocol across rounds with overlapping working sets and
	// occasional resets, checking every resolved function.
	const nvars = 14
	a := New(nvars, 0)
	b := New(nvars, 0)
	fns := buildRandomFns(t, a, nvars, 12, 77)
	sess := NewWireSession()
	table := NewWireTable()
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 20; round++ {
		if round%7 == 6 {
			sess.Reset()
		}
		batch := make([]Ref, 0, 4)
		for i := 0; i < 4; i++ {
			batch = append(batch, fns[rng.Intn(len(fns))])
		}
		wire, roots, _, _ := a.EncodeDelta(sess, batch)
		got := deliver(t, b, table, wire, roots)
		for i, f := range batch {
			sameFn(t, a, f, b, got[i], nvars, int64(round*10+i))
		}
	}
}
