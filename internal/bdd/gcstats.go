package bdd

import "time"

// GCStats aggregates collection telemetry for one engine. Pauses are split
// into the three stop-the-world phases (mark / sweep / relocate) so pacing
// and dashboards can see where the time goes: mark shrinks with
// SetGCParallelism, sweep is proportional to live nodes, relocate to
// occupied cache slots.
type GCStats struct {
	// Runs counts completed collections.
	Runs int64
	// LastLive and LastFreed are the node counts surviving and reclaimed
	// by the most recent collection.
	LastLive  int
	LastFreed int
	// LastMarkProcs is the marker pool size the last collection used
	// (1 for small tables regardless of the configured parallelism).
	LastMarkProcs int
	// Phase durations of the most recent collection; LastPause is their
	// sum, TotalPause the lifetime sum across all collections.
	LastMark     time.Duration
	LastSweep    time.Duration
	LastRelocate time.Duration
	LastPause    time.Duration
	TotalPause   time.Duration
	// Op-cache relocation outcome: entries translated to the new id space
	// vs dropped because an operand or result died (last run / lifetime).
	LastCacheRelocated int
	LastCacheDropped   int
	CacheRelocated     int64
	CacheDropped       int64
}

// GCStats returns a snapshot of the engine's collection telemetry. Safe to
// call concurrently with operations (but, like everything else, a caller
// comparing it across a GC must provide the ordering).
func (e *Engine) GCStats() GCStats {
	e.gcMu.Lock()
	defer e.gcMu.Unlock()
	return e.gcStats
}

// SetGCParallelism bounds the goroutine pool the mark phase fans out over:
// 0 means GOMAXPROCS, 1 forces a fully sequential mark, and any value is
// capped at an internal limit past which the shared bitset stops scaling.
// Call it before issuing operations (it is not synchronized against GC).
func (e *Engine) SetGCParallelism(n int) { e.gcProcs = n }

// SetGCRelocation toggles op-cache relocation across collections. On (the
// default) surviving entries are translated through the remap; off restores
// the wipe-everything behavior of the original collector — kept as an A/B
// baseline for benchmarks, not for production use. Call it before issuing
// operations.
func (e *Engine) SetGCRelocation(on bool) { e.gcNoRelocate = !on }
