package bdd

import (
	"encoding/binary"
	"fmt"
)

// Serialization lets symbolic packets cross worker boundaries: the sender
// walks the reachable sub-DAG of a ref and emits a compact node list; the
// receiver re-encodes it into its own engine with Deserialize (③/⑤ in the
// paper's Figure 3). Because all engines share the global variable order,
// re-encoding preserves the packet set exactly.

// serialMagic guards against decoding garbage.
const serialMagic = 0x53324244 // "S2BD"

// topoVisit walks the sub-DAG under r with an explicit stack (children
// before parents) and assigns sequential ids, via *next, to every node not
// already present in ids, appending them to *order in assignment order.
// The traversal is iterative so pathologically deep BDDs (e.g. a cube over
// hundreds of thousands of variables) cannot blow the goroutine stack.
// When dedup is non-nil it counts every arrival at an already-identified
// non-terminal node — the sharing a per-node encoding would re-transmit.
func (e *Engine) topoVisit(r Ref, ids map[Ref]uint32, order *[]Ref, next *uint32, dedup *int) {
	type frame struct {
		ref      Ref
		expanded bool
	}
	stack := []frame{{ref: r}}
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.expanded {
			if _, ok := ids[top.ref]; !ok {
				ids[top.ref] = *next
				*next++
				*order = append(*order, top.ref)
			}
			stack = stack[:len(stack)-1]
			continue
		}
		if _, ok := ids[top.ref]; ok {
			if dedup != nil && top.ref != False && top.ref != True {
				*dedup++
			}
			stack = stack[:len(stack)-1]
			continue
		}
		top.expanded = true
		n := e.node(top.ref)
		// Push high first so low is discovered first, matching the
		// historical recursive visit order (low, high, self).
		stack = append(stack, frame{ref: n.high}, frame{ref: n.low})
	}
}

// Serialize encodes the function rooted at r as a byte string independent
// of this engine's node numbering.
func (e *Engine) Serialize(r Ref) []byte {
	// Topological order: children before parents. Index 0 = False,
	// 1 = True by convention, further indices follow discovery order.
	index := map[Ref]uint32{False: 0, True: 1}
	var order []Ref
	next := uint32(2)
	e.topoVisit(r, index, &order, &next, nil)

	buf := make([]byte, 0, 16+len(order)*12)
	buf = binary.AppendUvarint(buf, serialMagic)
	buf = binary.AppendUvarint(buf, uint64(e.numVars))
	buf = binary.AppendUvarint(buf, uint64(len(order)))
	for _, x := range order {
		n := e.node(x)
		buf = binary.AppendUvarint(buf, uint64(n.level))
		buf = binary.AppendUvarint(buf, uint64(index[n.low]))
		buf = binary.AppendUvarint(buf, uint64(index[n.high]))
	}
	buf = binary.AppendUvarint(buf, uint64(index[r]))
	return buf
}

// Deserialize re-encodes a serialized function into this engine, returning
// the local ref. The source engine must have used the same variable count.
func (e *Engine) Deserialize(data []byte) (Ref, error) {
	magic, n := binary.Uvarint(data)
	if n <= 0 || magic != serialMagic {
		return False, fmt.Errorf("bdd: bad serialization header")
	}
	data = data[n:]
	numVars, n := binary.Uvarint(data)
	if n <= 0 {
		return False, fmt.Errorf("bdd: truncated serialization")
	}
	if int(numVars) != e.numVars {
		return False, fmt.Errorf("bdd: variable count mismatch: encoded %d, engine %d", numVars, e.numVars)
	}
	data = data[n:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return False, fmt.Errorf("bdd: truncated serialization")
	}
	data = data[n:]

	refs := make([]Ref, count+2)
	refs[0], refs[1] = False, True
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("bdd: truncated serialization")
		}
		data = data[n:]
		return v, nil
	}
	for i := uint64(0); i < count; i++ {
		level, err := next()
		if err != nil {
			return False, err
		}
		lowIdx, err := next()
		if err != nil {
			return False, err
		}
		highIdx, err := next()
		if err != nil {
			return False, err
		}
		if int(level) >= e.numVars || lowIdx >= i+2 || highIdx >= i+2 {
			return False, fmt.Errorf("bdd: malformed serialization entry %d", i)
		}
		r, err := e.mk(int32(level), refs[lowIdx], refs[highIdx])
		if err != nil {
			return False, err
		}
		refs[i+2] = r
	}
	rootIdx, err := next()
	if err != nil {
		return False, err
	}
	if rootIdx >= uint64(len(refs)) {
		return False, fmt.Errorf("bdd: malformed serialization root")
	}
	return refs[rootIdx], nil
}
