package bdd

import (
	"encoding/binary"
	"fmt"
)

// Serialization lets symbolic packets cross worker boundaries: the sender
// walks the reachable sub-DAG of a ref and emits a compact node list; the
// receiver re-encodes it into its own engine with Deserialize (③/⑤ in the
// paper's Figure 3). Because all engines share the global variable order,
// re-encoding preserves the packet set exactly.

// serialMagic guards against decoding garbage.
const serialMagic = 0x53324244 // "S2BD"

// Serialize encodes the function rooted at r as a byte string independent
// of this engine's node numbering.
func (e *Engine) Serialize(r Ref) []byte {
	// Topological order: children before parents. Index 0 = False,
	// 1 = True by convention, further indices follow discovery order.
	index := map[Ref]uint32{False: 0, True: 1}
	var order []Ref
	var visit func(Ref)
	visit = func(x Ref) {
		if _, ok := index[x]; ok {
			return
		}
		n := e.node(x)
		visit(n.low)
		visit(n.high)
		index[x] = uint32(len(order) + 2)
		order = append(order, x)
	}
	visit(r)

	buf := make([]byte, 0, 16+len(order)*12)
	buf = binary.AppendUvarint(buf, serialMagic)
	buf = binary.AppendUvarint(buf, uint64(e.numVars))
	buf = binary.AppendUvarint(buf, uint64(len(order)))
	for _, x := range order {
		n := e.node(x)
		buf = binary.AppendUvarint(buf, uint64(n.level))
		buf = binary.AppendUvarint(buf, uint64(index[n.low]))
		buf = binary.AppendUvarint(buf, uint64(index[n.high]))
	}
	buf = binary.AppendUvarint(buf, uint64(index[r]))
	return buf
}

// Deserialize re-encodes a serialized function into this engine, returning
// the local ref. The source engine must have used the same variable count.
func (e *Engine) Deserialize(data []byte) (Ref, error) {
	magic, n := binary.Uvarint(data)
	if n <= 0 || magic != serialMagic {
		return False, fmt.Errorf("bdd: bad serialization header")
	}
	data = data[n:]
	numVars, n := binary.Uvarint(data)
	if n <= 0 {
		return False, fmt.Errorf("bdd: truncated serialization")
	}
	if int(numVars) != e.numVars {
		return False, fmt.Errorf("bdd: variable count mismatch: encoded %d, engine %d", numVars, e.numVars)
	}
	data = data[n:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return False, fmt.Errorf("bdd: truncated serialization")
	}
	data = data[n:]

	refs := make([]Ref, count+2)
	refs[0], refs[1] = False, True
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("bdd: truncated serialization")
		}
		data = data[n:]
		return v, nil
	}
	for i := uint64(0); i < count; i++ {
		level, err := next()
		if err != nil {
			return False, err
		}
		lowIdx, err := next()
		if err != nil {
			return False, err
		}
		highIdx, err := next()
		if err != nil {
			return False, err
		}
		if int(level) >= e.numVars || lowIdx >= i+2 || highIdx >= i+2 {
			return False, fmt.Errorf("bdd: malformed serialization entry %d", i)
		}
		r, err := e.mk(int32(level), refs[lowIdx], refs[highIdx])
		if err != nil {
			return False, err
		}
		refs[i+2] = r
	}
	rootIdx, err := next()
	if err != nil {
		return False, err
	}
	if rootIdx >= uint64(len(refs)) {
		return False, fmt.Errorf("bdd: malformed serialization root")
	}
	return refs[rootIdx], nil
}
