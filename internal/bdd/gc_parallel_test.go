package bdd

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestGCDeepChain mirrors TestSerializeDeepChain for the collector: a
// 200k-node chain is the deepest possible BDD, and the old recursive mark
// would blow the goroutine stack on it. The iterative marker must collect
// it — sequentially and in parallel — without losing the function.
func TestGCDeepChain(t *testing.T) {
	const nvars = 200_000
	for _, procs := range []int{1, 8} {
		e := New(nvars, 0)
		e.SetGCParallelism(procs)
		acc := True
		for i := nvars - 1; i >= 0; i-- { // bottom-up keeps construction linear
			v, err := e.Var(i)
			if err != nil {
				t.Fatal(err)
			}
			acc, err = e.And(v, acc)
			if err != nil {
				t.Fatal(err)
			}
		}
		// Some garbage so the sweep actually moves the chain.
		for i := 0; i < 64; i++ {
			v, _ := e.Var(i)
			w, _ := e.Var(nvars - 1 - i)
			if _, err := e.Or(v, w); err != nil {
				t.Fatal(err)
			}
		}
		before := e.NodeCount()
		remap := e.GC([]Ref{acc})
		acc = remap(acc)
		if e.NodeCount() >= before {
			t.Fatalf("procs=%d: GC freed nothing (%d -> %d)", procs, before, e.NodeCount())
		}
		// The chain must still be the conjunction of all variables.
		asg := make([]bool, nvars)
		for i := range asg {
			asg[i] = true
		}
		if !e.Eval(acc, asg) {
			t.Fatalf("procs=%d: all-true assignment no longer satisfies the chain", procs)
		}
		asg[nvars/2] = false
		if e.Eval(acc, asg) {
			t.Fatalf("procs=%d: chain satisfied with a false variable", procs)
		}
	}
}

// TestGCParallelMarkMatchesSequential collects identical workloads with a
// sequential and a maximally parallel marker: the surviving table, the
// remapped roots, and their serializations must be identical — the sweep's
// ascending-id order makes the result independent of mark interleaving.
func TestGCParallelMarkMatchesSequential(t *testing.T) {
	// Full 24-variable cubes are 24-node chains with little sharing, so a
	// couple thousand of them push the table past gcSeqThreshold and the
	// parallel marker actually engages.
	mkCube := func(e *Engine, i int) Ref {
		cube := True
		for v := 0; v < 24; v++ {
			// Low levels encode i directly (distinct cubes, distinct
			// suffixes, so sharing stays low and the table grows).
			h := i >> v
			if v >= 11 {
				h = (i * 2654435761) >> v
			}
			var lit Ref
			var err error
			if h&1 == 0 {
				lit, err = e.Var(v)
			} else {
				lit, err = e.NVar(v)
			}
			if err != nil {
				t.Fatal(err)
			}
			cube, err = e.And(cube, lit)
			if err != nil {
				t.Fatal(err)
			}
		}
		return cube
	}
	build := func(procs int) (*Engine, []Ref) {
		e := New(24, 0)
		e.SetGCParallelism(procs)
		var roots []Ref
		acc := False
		for i := 0; i < 2000; i++ {
			c := mkCube(e, i)
			var err error
			acc, err = e.Or(acc, c)
			if err != nil {
				t.Fatal(err)
			}
			if i%40 == 0 {
				roots = append(roots, acc)
			}
		}
		for i := 0; i < 10; i++ {
			r := buildWorkload(t, e, i)
			if i%2 == 0 {
				roots = append(roots, r)
			}
		}
		if e.NodeCount() < gcSeqThreshold {
			t.Fatalf("test workload too small to engage the parallel marker: %d nodes", e.NodeCount())
		}
		return e, roots
	}
	seq, seqRoots := build(1)
	par, parRoots := build(8)
	seqRemap := seq.GC(seqRoots)
	parRemap := par.GC(parRoots)
	if seq.NodeCount() != par.NodeCount() {
		t.Fatalf("NodeCount differs: sequential %d vs parallel %d", seq.NodeCount(), par.NodeCount())
	}
	for i := range seqRoots {
		sr, pr := seqRemap(seqRoots[i]), parRemap(parRoots[i])
		if sr != pr {
			t.Fatalf("root %d remapped differently: %d vs %d", i, sr, pr)
		}
		if !bytes.Equal(seq.Serialize(sr), par.Serialize(pr)) {
			t.Fatalf("root %d serialization differs across mark parallelism", i)
		}
	}
	if seq.GCStats().LastMarkProcs != 1 {
		t.Fatalf("sequential engine used %d mark procs", seq.GCStats().LastMarkProcs)
	}
	if p := par.GCStats().LastMarkProcs; p != 8 {
		t.Fatalf("parallel engine used %d mark procs, want 8", p)
	}
}

// TestGCRelocatedCacheCorrect verifies the relocation property directly:
// after a collection, operations answered from relocated cache entries must
// equal a from-scratch recomputation in a fresh engine.
func TestGCRelocatedCacheCorrect(t *testing.T) {
	e := New(24, 0)
	var roots []Ref
	for i := 0; i < 8; i++ {
		roots = append(roots, buildWorkload(t, e, i))
	}
	remap := e.GC(roots)
	st := e.GCStats()
	if st.CacheRelocated == 0 {
		t.Fatal("no cache entries were relocated — the workload certainly populated the cache")
	}
	for i := range roots {
		roots[i] = remap(roots[i])
	}
	// Redo pairwise ops post-GC (hitting relocated entries where they
	// survived) and compare against a cold engine.
	fresh := New(24, 0)
	var freshRoots []Ref
	for i := 0; i < 8; i++ {
		freshRoots = append(freshRoots, buildWorkload(t, fresh, i))
	}
	for i := 0; i < len(roots); i++ {
		for j := i + 1; j < len(roots); j++ {
			got, err := e.And(roots[i], roots[j])
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.And(freshRoots[i], freshRoots[j])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(e.Serialize(got), fresh.Serialize(want)) {
				t.Fatalf("And(%d,%d) wrong after cache relocation", i, j)
			}
			got, err = e.Xor(roots[i], roots[j])
			if err != nil {
				t.Fatal(err)
			}
			want, err = fresh.Xor(freshRoots[i], freshRoots[j])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(e.Serialize(got), fresh.Serialize(want)) {
				t.Fatalf("Xor(%d,%d) wrong after cache relocation", i, j)
			}
		}
		got, err := e.Exists(roots[i], i%24)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Exists(freshRoots[i], i%24)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(e.Serialize(got), fresh.Serialize(want)) {
			t.Fatalf("Exists(%d) wrong after cache relocation", i)
		}
	}
}

// TestGCWipeMode checks SetGCRelocation(false) restores the seed collector's
// cache behavior: nothing relocated, occupied slots counted as dropped.
func TestGCWipeMode(t *testing.T) {
	e := New(24, 0)
	e.SetGCRelocation(false)
	r := buildWorkload(t, e, 1)
	e.GC([]Ref{r})
	st := e.GCStats()
	if st.CacheRelocated != 0 {
		t.Fatalf("wipe mode relocated %d entries", st.CacheRelocated)
	}
	if st.CacheDropped == 0 {
		t.Fatal("wipe mode dropped nothing — cache was certainly populated")
	}
	if got, ok := e.cacheGet(opKey{op: opAnd, a: 2, b: 3}); ok {
		t.Fatalf("cache entry survived wipe mode: %v", got)
	}
}

// TestGCStatsPhases sanity-checks the exported telemetry: phases sum to the
// pause, counters accumulate across runs.
func TestGCStatsPhases(t *testing.T) {
	e := New(24, 0)
	r := buildWorkload(t, e, 2)
	e.GC([]Ref{r})
	st := e.GCStats()
	if st.Runs != 1 {
		t.Fatalf("Runs = %d, want 1", st.Runs)
	}
	if st.LastLive != e.NodeCount() {
		t.Fatalf("LastLive %d != NodeCount %d", st.LastLive, e.NodeCount())
	}
	if st.LastPause <= 0 || st.TotalPause != st.LastPause {
		t.Fatalf("pause accounting wrong: last %v total %v", st.LastPause, st.TotalPause)
	}
	sum := st.LastMark + st.LastSweep + st.LastRelocate
	if diff := st.LastPause - sum; diff < 0 || diff > time.Millisecond {
		t.Fatalf("phases (%v) do not sum to pause (%v)", sum, st.LastPause)
	}
	e.GC(nil)
	if st2 := e.GCStats(); st2.Runs != 2 || st2.TotalPause <= st.TotalPause {
		t.Fatalf("second collection not accumulated: %+v", st2)
	}
}

// BenchmarkGC measures a full collection (mark + sweep + relocate) over a
// large live table at several mark parallelism levels. After the first
// iteration nothing is garbage, so steady-state iterations time marking and
// sweeping a constant table — the pause a worker pays at a trigger site.
// On a single-core host the procs>1 rows show fan-out overhead, not a win;
// run on a multi-core machine to see the mark phase shrink (the sweep is
// single-threaded by design, so Amdahl caps the total-pause drop at the
// mark share).
func BenchmarkGC(b *testing.B) {
	build := func(procs int) (*Engine, []Ref) {
		e := New(24, 0)
		e.SetGCParallelism(procs)
		var roots []Ref
		acc := False
		for i := 0; i < 12000; i++ {
			cube := True
			for v := 0; v < 24; v++ {
				h := i >> v
				if v >= 14 {
					h = (i * 2654435761) >> v
				}
				var lit Ref
				if h&1 == 0 {
					lit, _ = e.Var(v)
				} else {
					lit, _ = e.NVar(v)
				}
				cube, _ = e.And(cube, lit)
			}
			var err error
			acc, err = e.Or(acc, cube)
			if err != nil {
				b.Fatal(err)
			}
			if i%100 == 0 {
				roots = append(roots, acc)
			}
		}
		return e, roots
	}
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			e, roots := build(procs)
			b.ReportMetric(float64(e.NodeCount()), "live-nodes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				remap := e.GC(roots)
				for j := range roots {
					roots[j] = remap(roots[j])
				}
			}
			b.StopTimer()
			st := e.GCStats()
			b.ReportMetric(st.LastMark.Seconds()*1e9, "mark-ns")
			b.ReportMetric(st.LastSweep.Seconds()*1e9, "sweep-ns")
		})
	}
}

// TestParallelMarkRaceHammer exercises the work-stealing marker under -race:
// repeated collections with a wide marker pool over a table built by many
// goroutines, interleaved with parallel rebuilds between collections (the
// engine contract: operations and GC never overlap).
func TestParallelMarkRaceHammer(t *testing.T) {
	e := New(24, 0)
	e.SetGCParallelism(8)
	const workers = 8
	refs := make([]Ref, workers)
	rebuild := func() {
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				refs[i] = buildWorkload(t, e, i)
			}(i)
		}
		wg.Wait()
	}
	rebuild()
	want := make([][]byte, workers)
	for i, r := range refs {
		want[i] = e.Serialize(r)
	}
	for round := 0; round < 6; round++ {
		// Alternate which roots survive so every collection both frees and
		// relocates.
		var roots []Ref
		for i := round % 2; i < workers; i += 2 {
			roots = append(roots, refs[i])
		}
		remap := e.GC(roots)
		for i := round % 2; i < workers; i += 2 {
			refs[i] = remap(refs[i])
			if !bytes.Equal(e.Serialize(refs[i]), want[i]) {
				t.Fatalf("round %d: function %d changed across parallel-mark GC", round, i)
			}
		}
		rebuild()
		for i := 0; i < workers; i++ {
			if !bytes.Equal(e.Serialize(refs[i]), want[i]) {
				t.Fatalf("round %d: rebuild %d differs after GC", round, i)
			}
		}
	}
	if st := e.GCStats(); st.Runs != 6 || st.CacheRelocated == 0 {
		t.Fatalf("hammer stats: %+v", st)
	}
}
