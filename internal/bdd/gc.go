package bdd

import (
	mathbits "math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Parallel-mark tuning. The marker is iterative (no recursion — deep chains
// such as a 200k-variable cube must not blow the goroutine stack) and
// work-stealing: each goroutine runs depth-first over a private stack and
// donates half of it to a shared pool whenever the stack grows past
// gcDonateAbove, so an unbalanced DAG (one giant root, many tiny ones)
// still keeps every marker busy.
const (
	// Tables smaller than this mark on one goroutine: the fork/steal
	// machinery costs more than it saves on a few thousand nodes.
	gcSeqThreshold = 1 << 14
	// Local stack depth that triggers donating half to the shared pool.
	gcDonateAbove = 1024
	// Donations queue at most this many pending batches per marker; beyond
	// that everyone is busy and donating is pure overhead.
	gcMaxShared = 4
	// More markers than this see diminishing returns against the shared
	// bitset's cache-line traffic.
	gcMaxMarkProcs = 16
)

// marker is the shared state of one parallel mark phase. Visited bits live
// in a flat atomic bitset indexed by ref; tryVisit wins or loses each node
// exactly once via CAS, so two markers can race on the same child and only
// one will push it.
type marker struct {
	at    func(Ref) node
	marks []uint64 // atomic bitset, bit r = node r is reachable
	procs int

	mu      sync.Mutex
	cond    *sync.Cond
	shared  [][]Ref // donated batches awaiting a thief
	waiting int     // markers blocked in steal()
	done    bool
}

// tryVisit sets node r's mark bit; it returns true iff this call was the
// one that set it (the caller then owns pushing r's children).
func (m *marker) tryVisit(r Ref) bool {
	w := &m.marks[uint32(r)>>6]
	bit := uint64(1) << (uint32(r) & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&bit != 0 {
			return false
		}
		// Go 1.22 has no atomic Or on uint64; CAS-loop the bit in.
		if atomic.CompareAndSwapUint64(w, old, old|bit) {
			return true
		}
	}
}

// donate moves the older (shallower, bushier) half of the local stack into
// the shared pool and keeps the newer half for depth-first locality.
func (m *marker) donate(local []Ref) []Ref {
	m.mu.Lock()
	if len(m.shared) >= m.procs*gcMaxShared {
		m.mu.Unlock()
		return local
	}
	half := len(local) / 2
	batch := make([]Ref, half)
	copy(batch, local[:half])
	m.shared = append(m.shared, batch)
	m.cond.Signal()
	m.mu.Unlock()
	n := copy(local, local[half:])
	return local[:n]
}

// steal blocks until a donated batch is available or every marker is idle
// (global termination: waiting == procs with an empty pool means no one can
// produce more work).
func (m *marker) steal() ([]Ref, bool) {
	m.mu.Lock()
	m.waiting++
	for {
		if len(m.shared) > 0 {
			batch := m.shared[len(m.shared)-1]
			m.shared = m.shared[:len(m.shared)-1]
			m.waiting--
			m.mu.Unlock()
			return batch, true
		}
		if m.done || m.waiting == m.procs {
			m.done = true
			m.cond.Broadcast()
			m.mu.Unlock()
			return nil, false
		}
		m.cond.Wait()
	}
}

// run drains a local stack depth-first, then steals until global
// termination. Only refs that won tryVisit are ever on a stack, so each
// node's children are expanded exactly once across all markers.
func (m *marker) run(local []Ref) {
	for {
		for len(local) > 0 {
			r := local[len(local)-1]
			local = local[:len(local)-1]
			n := m.at(r)
			if m.tryVisit(n.low) {
				local = append(local, n.low)
			}
			if m.tryVisit(n.high) {
				local = append(local, n.high)
			}
			if m.procs > 1 && len(local) >= gcDonateAbove {
				local = m.donate(local)
			}
		}
		if m.procs <= 1 {
			return
		}
		var ok bool
		local, ok = m.steal()
		if !ok {
			return
		}
	}
}

// markProcs picks the marker pool size for a table of oldCount nodes.
func (e *Engine) markProcs(oldCount int) int {
	if oldCount < gcSeqThreshold {
		return 1
	}
	p := e.gcProcs
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > gcMaxMarkProcs {
		p = gcMaxMarkProcs
	}
	if p < 1 {
		p = 1
	}
	return p
}

// GC performs a mark-sweep collection: every node unreachable from the
// given roots is discarded, the node table is compacted, and the operation
// cache is relocated (surviving entries are translated to the new refs;
// entries naming a dead node are dropped). It returns a remap function
// translating old refs of reachable nodes to their new values; passing an
// unreachable (collected) ref to the remap is a programming error and
// returns False.
//
// GC is stop-the-world: the caller must guarantee no concurrent operation
// is in flight (workers GC only between phases/rounds). Within that
// exclusive window the mark phase itself fans out over a bounded
// work-stealing goroutine pool (SetGCParallelism), so the pause shrinks as
// cores are added; the sweep stays single-threaded because it assigns new
// ids in ascending old-id order — the property that keeps results
// byte-identical at any parallelism and keeps the remap monotonic (which
// cache relocation relies on).
//
// Real BDD libraries collect dead nodes the same way; the paper leans on
// this twice: BDD node-table garbage collections are a major cost of the
// centralized design (§2.2), and per-worker tables reduce them (§4.3).
func (e *Engine) GC(roots []Ref) func(Ref) Ref {
	start := time.Now()
	old := *e.dir.Load()
	oldCount := int(e.count.Load())
	at := func(r Ref) node { return old[r>>chunkBits][r&chunkMask] }

	// --- Mark: parallel, iterative, shared atomic bitset. ---
	procs := e.markProcs(oldCount)
	m := &marker{
		at:    at,
		marks: make([]uint64, (oldCount+63)/64),
		procs: procs,
	}
	m.cond = sync.NewCond(&m.mu)
	m.marks[0] = 0b11 // terminals are always live
	seeds := make([]Ref, 0, len(roots))
	for _, r := range roots {
		if int(r) < oldCount && m.tryVisit(r) {
			seeds = append(seeds, r)
		}
	}
	if procs <= 1 {
		m.run(seeds)
	} else {
		// Deal the distinct roots round-robin; imbalance self-corrects
		// through donation.
		parts := make([][]Ref, procs)
		for i, r := range seeds {
			parts[i%procs] = append(parts[i%procs], r)
		}
		var wg sync.WaitGroup
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(local []Ref) {
				defer wg.Done()
				m.run(local)
			}(parts[i])
		}
		wg.Wait()
	}
	live := 0
	for _, w := range m.marks {
		live += mathbits.OnesCount64(w)
	}
	markDone := time.Now()

	// --- Sweep: compact the table in ascending old-id order. ---
	remap := make([]Ref, oldCount)
	for i := range remap {
		remap[i] = -1
	}
	remap[False], remap[True] = False, True
	reachable := func(i int) bool { return m.marks[i>>6]&(1<<(uint(i)&63)) != 0 }

	// Rebuild chunks and the unique table. Children precede parents in the
	// table (allocation order: a node's children exist before it is made),
	// so their remaps exist already. The live count from the mark bitset
	// pre-sizes both the chunk directory and the stripe maps so the sweep
	// never rehashes.
	first := new(chunk)
	first[False] = at(False)
	first[True] = at(True)
	newDir := make([]*chunk, 1, live>>chunkBits+1)
	newDir[0] = first
	newCount := 2
	put := func(n node) Ref {
		ci := newCount >> chunkBits
		if ci >= len(newDir) {
			newDir = append(newDir, new(chunk))
		}
		newDir[ci][newCount&chunkMask] = n
		newCount++
		return Ref(newCount - 1)
	}
	newUnique := make([]map[uniqueKey]Ref, numStripes)
	perStripe := live/numStripes + 8
	for i := range newUnique {
		newUnique[i] = make(map[uniqueKey]Ref, perStripe)
	}
	for i := 2; i < oldCount; i++ {
		if !reachable(i) {
			continue
		}
		n := at(Ref(i))
		nn := node{level: n.level, low: remap[n.low], high: remap[n.high]}
		id := put(nn)
		key := uniqueKey{nn.level, nn.low, nn.high}
		newUnique[stripeOf(key)][key] = id
		remap[i] = id
	}
	freed := oldCount - newCount
	sweepDone := time.Now()

	// --- Relocate: translate the op cache through the remap. ---
	var kept, dropped int
	if e.gcNoRelocate {
		for i := range e.cache {
			if e.cache[i].Load() != nil {
				dropped++
			}
			e.cache[i].Store(nil)
		}
	} else {
		kept, dropped = e.relocateCache(remap)
	}
	end := time.Now()

	e.dir.Store(&newDir)
	e.count.Store(int64(newCount))
	for i := range e.unique {
		e.unique[i].m = newUnique[i]
	}
	if e.onGrow != nil && freed > 0 {
		e.onGrow(-freed)
	}

	e.gcMu.Lock()
	e.gcStats.Runs++
	e.gcStats.LastLive = newCount
	e.gcStats.LastFreed = freed
	e.gcStats.LastMarkProcs = procs
	e.gcStats.LastMark = markDone.Sub(start)
	e.gcStats.LastSweep = sweepDone.Sub(markDone)
	e.gcStats.LastRelocate = end.Sub(sweepDone)
	e.gcStats.LastPause = end.Sub(start)
	e.gcStats.TotalPause += end.Sub(start)
	e.gcStats.LastCacheRelocated = kept
	e.gcStats.LastCacheDropped = dropped
	e.gcStats.CacheRelocated += int64(kept)
	e.gcStats.CacheDropped += int64(dropped)
	e.gcMu.Unlock()

	return func(r Ref) Ref {
		if int(r) >= len(remap) || remap[r] < 0 {
			return False
		}
		return remap[r]
	}
}

// relocateCache translates every surviving op-cache entry through the
// remap table into a fresh slot array, dropping entries that name a dead
// node. This preserves the hit rate across collections — the first rounds
// after a GC no longer recompute every result the cache already knew.
//
// Key translation is op-aware: for opExists the b field is a *variable
// index* stored as a Ref, not a node, and must pass through untouched.
// Commutative keys (And/Or/Xor) are normalized a ≤ b before caching; the
// sweep assigns new ids in ascending old-id order, so the remap is
// monotonic over survivors and normalization is preserved without
// re-sorting.
func (e *Engine) relocateCache(remap []Ref) (kept, dropped int) {
	fresh := make([]atomic.Pointer[cacheEntry], cacheSlots)
	mapRef := func(r Ref) (Ref, bool) {
		if r < 0 || int(r) >= len(remap) || remap[r] < 0 {
			return False, false
		}
		return remap[r], true
	}
	for i := range e.cache {
		ent := e.cache[i].Load()
		if ent == nil {
			continue
		}
		k := ent.key
		na, ok := mapRef(k.a)
		if !ok {
			dropped++
			continue
		}
		nb := k.b
		switch k.op {
		case opAnd, opOr, opXor, opDiff, opNot:
			nb, ok = mapRef(k.b)
		case opExists:
			// b is the quantified variable index; not a node ref.
		default:
			ok = false
		}
		if !ok {
			dropped++
			continue
		}
		nr, ok := mapRef(ent.r)
		if !ok {
			dropped++
			continue
		}
		nk := opKey{op: k.op, a: na, b: nb}
		fresh[cacheSlotOf(nk)].Store(&cacheEntry{key: nk, r: nr})
		kept++
	}
	e.cache = fresh
	return kept, dropped
}
