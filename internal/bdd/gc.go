package bdd

// GC performs a mark-sweep collection: every node unreachable from the
// given roots is discarded, the node table is compacted, and the operation
// cache is cleared. It returns a remap function translating old refs of
// reachable nodes to their new values; passing an unreachable (collected)
// ref to the remap is a programming error and returns False.
//
// GC is stop-the-world: the caller must guarantee no concurrent operation
// is in flight (workers GC only between phases/rounds). This is the one
// exclusion the engine's concurrency contract demands.
//
// Real BDD libraries collect dead nodes the same way; the paper leans on
// this twice: BDD node-table garbage collections are a major cost of the
// centralized design (§2.2), and per-worker tables reduce them (§4.3).
func (e *Engine) GC(roots []Ref) func(Ref) Ref {
	old := *e.dir.Load()
	oldCount := int(e.count.Load())
	at := func(r Ref) node { return old[r>>chunkBits][r&chunkMask] }

	reachable := make([]bool, oldCount)
	reachable[False], reachable[True] = true, true
	var mark func(Ref)
	mark = func(r Ref) {
		if reachable[r] {
			return
		}
		reachable[r] = true
		n := at(r)
		mark(n.low)
		mark(n.high)
	}
	for _, r := range roots {
		mark(r)
	}

	remap := make([]Ref, oldCount)
	for i := range remap {
		remap[i] = -1
	}
	remap[False], remap[True] = False, True

	// Rebuild chunks and the unique table from scratch. Children precede
	// parents in the table (allocation order: a node's children exist
	// before it is made), so their remaps exist already.
	first := new(chunk)
	first[False] = at(False)
	first[True] = at(True)
	newDir := []*chunk{first}
	newCount := 2
	put := func(n node) Ref {
		ci := newCount >> chunkBits
		if ci >= len(newDir) {
			newDir = append(newDir, new(chunk))
		}
		newDir[ci][newCount&chunkMask] = n
		newCount++
		return Ref(newCount - 1)
	}
	newUnique := make([]map[uniqueKey]Ref, numStripes)
	for i := range newUnique {
		newUnique[i] = make(map[uniqueKey]Ref)
	}
	for i := 2; i < oldCount; i++ {
		if !reachable[i] {
			continue
		}
		n := at(Ref(i))
		nn := node{level: n.level, low: remap[n.low], high: remap[n.high]}
		id := put(nn)
		key := uniqueKey{nn.level, nn.low, nn.high}
		newUnique[stripeOf(key)][key] = id
		remap[i] = id
	}
	freed := oldCount - newCount

	e.dir.Store(&newDir)
	e.count.Store(int64(newCount))
	for i := range e.unique {
		e.unique[i].m = newUnique[i]
	}
	for i := range e.cache {
		e.cache[i].Store(nil)
	}
	if e.onGrow != nil && freed > 0 {
		e.onGrow(-freed)
	}
	return func(r Ref) Ref {
		if int(r) >= len(remap) || remap[r] < 0 {
			return False
		}
		return remap[r]
	}
}
