package bdd

// GC performs a mark-sweep collection: every node unreachable from the
// given roots is discarded, the node table is compacted, and the operation
// cache is cleared. It returns a remap function translating old refs of
// reachable nodes to their new values; passing an unreachable (collected)
// ref to the remap is a programming error and returns False.
//
// Real BDD libraries collect dead nodes the same way; the paper leans on
// this twice: BDD node-table garbage collections are a major cost of the
// centralized design (§2.2), and per-worker tables reduce them (§4.3).
func (e *Engine) GC(roots []Ref) func(Ref) Ref {
	reachable := make([]bool, len(e.nodes))
	reachable[False], reachable[True] = true, true
	var mark func(Ref)
	mark = func(r Ref) {
		if reachable[r] {
			return
		}
		reachable[r] = true
		n := e.nodes[r]
		mark(n.low)
		mark(n.high)
	}
	for _, r := range roots {
		mark(r)
	}

	remap := make([]Ref, len(e.nodes))
	for i := range remap {
		remap[i] = -1
	}
	remap[False], remap[True] = False, True

	newNodes := e.nodes[:2:2]
	newUnique := make(map[uniqueKey]Ref)
	for i := 2; i < len(e.nodes); i++ {
		if !reachable[i] {
			continue
		}
		n := e.nodes[i]
		// Children precede parents in the table (mk appends), so their
		// remaps exist already.
		nn := node{level: n.level, low: remap[n.low], high: remap[n.high]}
		id := Ref(len(newNodes))
		newNodes = append(newNodes, nn)
		newUnique[uniqueKey{nn.level, nn.low, nn.high}] = id
		remap[i] = id
	}
	freed := len(e.nodes) - len(newNodes)
	e.nodes = newNodes
	e.unique = newUnique
	e.cache = make(map[opKey]Ref)
	if e.onGrow != nil && freed > 0 {
		e.onGrow(-freed)
	}
	return func(r Ref) Ref {
		if int(r) >= len(remap) || remap[r] < 0 {
			return False
		}
		return remap[r]
	}
}
