// Package bdd implements a reduced ordered binary decision diagram engine —
// the symbolic-packet substrate for data plane verification. It replaces the
// JDD library the paper's prototype uses (§5.1).
//
// Design points that matter for S2:
//
//   - Every worker owns a private Engine, so BDD operations on different
//     workers never contend (§4.3, "each worker has its own BDD node table").
//   - Symbolic packets crossing workers are serialized as reduced node lists
//     and re-encoded into the destination engine (Serialize/Deserialize).
//   - The node table is observable (NodeCount) so the metrics package can
//     charge modelled memory, and bounded (MaxNodes) so the paper's "BDD
//     node table overflow" failure mode is reproducible.
//
// # Concurrency contract
//
// Engine operations (Apply-family, Not, Exists, Var, Cube, Serialize,
// Deserialize, Eval, AnySat, SatCount, ClearCache) are safe to call from
// many goroutines against one engine: the unique table is lock-striped, the
// operation cache is a lock-free direct-mapped table, and node allocation
// is atomic over pointer-stable chunks. This is what lets a worker build FIB predicates
// and propagate symbolic packets for many nodes in parallel (one engine,
// NumCPU goroutines).
//
// GC is the exception: it is stop-the-world and must be called with no
// operation in flight (the callers' existing roots discipline — workers GC
// only between phases/rounds, never inside a parallel section). Refs
// returned before a GC are invalid afterwards unless remapped.
//
// The centralized baseline still wraps an engine in a SharedEngine whose
// single mutex reproduces the paper's coarse-lock parallelism bottleneck by
// serializing whole operations, not table accesses.
package bdd

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Ref is a node reference. The constants False and True are the terminal
// nodes; all other refs index the engine's node table. Refs are only
// meaningful within the engine that produced them.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

// ErrNodeTableFull reports that an engine exceeded its configured node
// limit — the analogue of overflowing the 2^32-bounded node table in §2.2.
var ErrNodeTableFull = errors.New("bdd: node table full")

type node struct {
	level     int32 // variable index; terminals use level = numVars
	low, high Ref
}

type uniqueKey struct {
	level     int32
	low, high Ref
}

type opKey struct {
	op   uint8
	a, b Ref
}

const (
	opAnd uint8 = iota
	opOr
	opXor
	opDiff
	opNot
	opExists
)

// Node storage is a directory of fixed-size chunks. Chunks are never moved
// or copied once published — growth copies only the directory slice — so a
// concurrent reader holding a valid ref can load the directory once and
// index into a stable array while another goroutine allocates.
const (
	chunkBits = 13
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

type chunk [chunkSize]node

// The stripe count trades memory for contention; 64 keeps 8–16 worker
// goroutines mostly collision-free while the per-engine overhead stays
// a few KiB.
const numStripes = 64

type uniqueStripe struct {
	mu sync.Mutex
	m  map[uniqueKey]Ref
}

// The operation cache is a direct-mapped, lock-free computed table: each
// slot holds an atomic pointer to an immutable entry. Lookups are one
// load plus a key compare, stores are one pointer swap — no mutex, no
// map probing, no goroutine parking on the hottest path in the engine.
// Collisions simply evict (classic BDD computed-table discipline:
// correctness never depends on a hit, only on never returning a wrong
// hit, which the full-key compare rules out).
const (
	cacheBits  = 17
	cacheSlots = 1 << cacheBits
)

type cacheEntry struct {
	key opKey
	r   Ref
}

// Engine is one BDD node table with its operation caches. See the package
// comment for the concurrency contract.
type Engine struct {
	numVars  int
	maxNodes int

	// count is the number of allocated nodes (including terminals);
	// allocation CASes it forward so a failed maxNodes check can never be
	// caused by a transient overshoot.
	count atomic.Int64
	// dir is the chunk directory. Growing replaces the slice (copy-on-write
	// under growMu); existing chunk pointers are stable forever.
	dir    atomic.Pointer[[]*chunk]
	growMu sync.Mutex

	unique [numStripes]uniqueStripe
	cache  []atomic.Pointer[cacheEntry]

	// onGrow, when set, observes node-table growth for memory modelling.
	// It may be invoked from many goroutines; observers must be
	// thread-safe. Set it before issuing concurrent operations.
	onGrow func(delta int)

	// GC configuration and telemetry (see gc.go / gcstats.go). gcProcs and
	// gcNoRelocate are set once before operations begin; gcStats is
	// guarded by gcMu because collections and stat readers may interleave.
	gcProcs      int
	gcNoRelocate bool
	gcMu         sync.Mutex
	gcStats      GCStats
}

// New creates an engine over numVars Boolean variables with an optional
// node limit (0 = unlimited).
func New(numVars, maxNodes int) *Engine {
	e := &Engine{
		numVars:  numVars,
		maxNodes: maxNodes,
	}
	for i := range e.unique {
		e.unique[i].m = make(map[uniqueKey]Ref)
	}
	e.cache = make([]atomic.Pointer[cacheEntry], cacheSlots)
	// Terminals at the bottom of the order, in the first chunk.
	c := new(chunk)
	c[False] = node{level: int32(numVars)}
	c[True] = node{level: int32(numVars)}
	dir := []*chunk{c}
	e.dir.Store(&dir)
	e.count.Store(2)
	return e
}

// NumVars returns the variable count.
func (e *Engine) NumVars() int { return e.numVars }

// NodeCount returns the number of live nodes including terminals.
func (e *Engine) NodeCount() int { return int(e.count.Load()) }

// NodeModelBytes is the modelled memory charged per BDD node, matching
// packed int-array node tables (level, low, high, hash link) as in JDD.
const NodeModelBytes = 24

// ModelBytes returns the engine's modelled memory footprint.
func (e *Engine) ModelBytes() int64 {
	return int64(e.NodeCount()) * NodeModelBytes
}

// SetGrowObserver registers a callback invoked with the node-count delta
// whenever the table grows. Used by workers to feed memory trackers. The
// callback must be safe for concurrent invocation.
func (e *Engine) SetGrowObserver(fn func(delta int)) { e.onGrow = fn }

// node loads node r. Safe concurrently with allocation: refs are only
// obtained through operations whose synchronization (stripe/shard mutexes)
// orders the node write before the ref's publication, and chunks are
// pointer-stable.
func (e *Engine) node(r Ref) node {
	d := *e.dir.Load()
	return d[r>>chunkBits][r&chunkMask]
}

func (e *Engine) level(r Ref) int32 { return e.node(r).level }

func stripeOf(k uniqueKey) uint32 {
	h := uint32(k.level)*0x9e3779b1 ^ uint32(k.low)*0x85ebca77 ^ uint32(k.high)*0xc2b2ae3d
	h ^= h >> 15
	return h % numStripes
}

func cacheSlotOf(k opKey) uint32 {
	h := uint32(k.op)*0x9e3779b1 ^ uint32(k.a)*0x85ebca77 ^ uint32(k.b)*0xc2b2ae3d
	h ^= h >> 15
	return h & (cacheSlots - 1)
}

// alloc claims the next table slot and writes n into it, growing the chunk
// directory as needed. Callers publish the returned ref only after alloc
// returns (mk does so under the unique-table stripe lock), which orders the
// node write before any cross-goroutine read.
func (e *Engine) alloc(n node) (Ref, error) {
	var idx int64
	for {
		c := e.count.Load()
		if e.maxNodes > 0 && c >= int64(e.maxNodes) {
			return False, fmt.Errorf("%w: %d nodes", ErrNodeTableFull, c)
		}
		if e.count.CompareAndSwap(c, c+1) {
			idx = c
			break
		}
	}
	ci := int(idx >> chunkBits)
	d := *e.dir.Load()
	if ci >= len(d) {
		e.growMu.Lock()
		d = *e.dir.Load()
		for ci >= len(d) {
			nd := make([]*chunk, len(d), len(d)+1)
			copy(nd, d)
			nd = append(nd, new(chunk))
			e.dir.Store(&nd)
			d = nd
		}
		e.growMu.Unlock()
	}
	d[ci][idx&chunkMask] = n
	return Ref(idx), nil
}

// mk returns the canonical node (level, low, high), applying the two ROBDD
// reduction rules. The stripe lock is held across allocation so a ref is
// never visible in the unique table before its node is written.
func (e *Engine) mk(level int32, low, high Ref) (Ref, error) {
	if low == high {
		return low, nil
	}
	key := uniqueKey{level, low, high}
	s := &e.unique[stripeOf(key)]
	s.mu.Lock()
	if r, ok := s.m[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	r, err := e.alloc(node{level: level, low: low, high: high})
	if err != nil {
		s.mu.Unlock()
		return False, err
	}
	s.m[key] = r
	s.mu.Unlock()
	if e.onGrow != nil {
		e.onGrow(1)
	}
	return r, nil
}

// bulkInserter amortizes unique-table locking across a whole batch of mk
// calls: begin acquires every stripe lock in ascending stripe order (the
// same total order everywhere, so it cannot deadlock against concurrent
// mk, which takes exactly one stripe then growMu), the batch runs lookup
// and allocation with zero per-node lock traffic, and end releases the
// stripes and reports growth once. Wire-substrate deserialization uses
// this to materialize an entire message in one pass.
type bulkInserter struct {
	e    *Engine
	grew int
}

func (e *Engine) beginBulk() *bulkInserter {
	for i := range e.unique {
		e.unique[i].mu.Lock()
	}
	return &bulkInserter{e: e}
}

// mk is the bulk-path twin of Engine.mk; the caller must hold the batch
// open (between beginBulk and end).
func (b *bulkInserter) mk(level int32, low, high Ref) (Ref, error) {
	if low == high {
		return low, nil
	}
	e := b.e
	key := uniqueKey{level, low, high}
	s := &e.unique[stripeOf(key)]
	if r, ok := s.m[key]; ok {
		return r, nil
	}
	r, err := e.alloc(node{level: level, low: low, high: high})
	if err != nil {
		return False, err
	}
	s.m[key] = r
	b.grew++
	return r, nil
}

// end releases the stripe locks and fires the grow observer. Safe to call
// exactly once, including on error paths (use defer).
func (b *bulkInserter) end() {
	e := b.e
	for i := range e.unique {
		e.unique[i].mu.Unlock()
	}
	if e.onGrow != nil && b.grew > 0 {
		e.onGrow(b.grew)
		b.grew = 0
	}
}

// cacheGet is safe concurrently with cachePut: entries are immutable once
// published, and the atomic pointer load orders the entry's construction
// (and the cached ref's node write, published before the put) before the
// read.
func (e *Engine) cacheGet(key opKey) (Ref, bool) {
	if ent := e.cache[cacheSlotOf(key)].Load(); ent != nil && ent.key == key {
		return ent.r, true
	}
	return False, false
}

func (e *Engine) cachePut(key opKey, r Ref) {
	e.cache[cacheSlotOf(key)].Store(&cacheEntry{key: key, r: r})
}

// Var returns the BDD for "variable i is 1".
func (e *Engine) Var(i int) (Ref, error) {
	if i < 0 || i >= e.numVars {
		return False, fmt.Errorf("bdd: variable %d out of range [0,%d)", i, e.numVars)
	}
	return e.mk(int32(i), False, True)
}

// NVar returns the BDD for "variable i is 0".
func (e *Engine) NVar(i int) (Ref, error) {
	if i < 0 || i >= e.numVars {
		return False, fmt.Errorf("bdd: variable %d out of range [0,%d)", i, e.numVars)
	}
	return e.mk(int32(i), True, False)
}

// apply evaluates a binary Boolean operation with memoization.
func (e *Engine) apply(op uint8, a, b Ref) (Ref, error) {
	switch op {
	case opAnd:
		if a == b {
			return a, nil
		}
		if a == False || b == False {
			return False, nil
		}
		if a == True {
			return b, nil
		}
		if b == True {
			return a, nil
		}
	case opOr:
		if a == b {
			return a, nil
		}
		if a == True || b == True {
			return True, nil
		}
		if a == False {
			return b, nil
		}
		if b == False {
			return a, nil
		}
	case opXor:
		if a == b {
			return False, nil
		}
		if a == False {
			return b, nil
		}
		if b == False {
			return a, nil
		}
	case opDiff: // a AND NOT b
		if a == False || b == True || a == b {
			return False, nil
		}
		if b == False {
			return a, nil
		}
	}
	// Normalize commutative operations for better cache hits.
	if (op == opAnd || op == opOr || op == opXor) && a > b {
		a, b = b, a
	}
	key := opKey{op, a, b}
	if r, ok := e.cacheGet(key); ok {
		return r, nil
	}
	na, nb := e.node(a), e.node(b)
	top := na.level
	if nb.level < top {
		top = nb.level
	}
	a0, a1 := a, a
	if na.level == top {
		a0, a1 = na.low, na.high
	}
	b0, b1 := b, b
	if nb.level == top {
		b0, b1 = nb.low, nb.high
	}
	low, err := e.apply(op, a0, b0)
	if err != nil {
		return False, err
	}
	high, err := e.apply(op, a1, b1)
	if err != nil {
		return False, err
	}
	r, err := e.mk(top, low, high)
	if err != nil {
		return False, err
	}
	e.cachePut(key, r)
	return r, nil
}

// And returns a ∧ b.
func (e *Engine) And(a, b Ref) (Ref, error) { return e.apply(opAnd, a, b) }

// Or returns a ∨ b.
func (e *Engine) Or(a, b Ref) (Ref, error) { return e.apply(opOr, a, b) }

// Xor returns a ⊕ b.
func (e *Engine) Xor(a, b Ref) (Ref, error) { return e.apply(opXor, a, b) }

// Diff returns a ∧ ¬b.
func (e *Engine) Diff(a, b Ref) (Ref, error) { return e.apply(opDiff, a, b) }

// Not returns ¬a.
func (e *Engine) Not(a Ref) (Ref, error) {
	switch a {
	case False:
		return True, nil
	case True:
		return False, nil
	}
	key := opKey{opNot, a, 0}
	if r, ok := e.cacheGet(key); ok {
		return r, nil
	}
	n := e.node(a)
	low, err := e.Not(n.low)
	if err != nil {
		return False, err
	}
	high, err := e.Not(n.high)
	if err != nil {
		return False, err
	}
	r, err := e.mk(n.level, low, high)
	if err != nil {
		return False, err
	}
	e.cachePut(key, r)
	return r, nil
}

// Exists existentially quantifies variable v out of a: the result is true
// for an assignment iff a is true under some value of v. Used to "clear" a
// header bit before setting it (waypoint write rules, §4.4).
func (e *Engine) Exists(a Ref, v int) (Ref, error) {
	if v < 0 || v >= e.numVars {
		return False, fmt.Errorf("bdd: variable %d out of range [0,%d)", v, e.numVars)
	}
	if a == False || a == True {
		return a, nil
	}
	n := e.node(a)
	if int(n.level) > v {
		// Levels increase downward, so v cannot appear in this sub-DAG.
		return a, nil
	}
	key := opKey{opExists, a, Ref(v)}
	if r, ok := e.cacheGet(key); ok {
		return r, nil
	}
	var r Ref
	var err error
	if int(n.level) == v {
		r, err = e.Or(n.low, n.high)
	} else {
		var low, high Ref
		low, err = e.Exists(n.low, v)
		if err != nil {
			return False, err
		}
		high, err = e.Exists(n.high, v)
		if err != nil {
			return False, err
		}
		r, err = e.mk(n.level, low, high)
	}
	if err != nil {
		return False, err
	}
	e.cachePut(key, r)
	return r, nil
}

// SetVar constrains variable v of a to the given value, overwriting any
// prior constraint: Exists(a, v) ∧ (v = value). This is the symbolic form
// of a header "write rule".
func (e *Engine) SetVar(a Ref, v int, value bool) (Ref, error) {
	q, err := e.Exists(a, v)
	if err != nil {
		return False, err
	}
	var lit Ref
	if value {
		lit, err = e.Var(v)
	} else {
		lit, err = e.NVar(v)
	}
	if err != nil {
		return False, err
	}
	return e.And(q, lit)
}

// AndAll folds And over refs; the empty conjunction is True.
func (e *Engine) AndAll(refs ...Ref) (Ref, error) {
	acc := True
	for _, r := range refs {
		var err error
		acc, err = e.And(acc, r)
		if err != nil {
			return False, err
		}
		if acc == False {
			return False, nil
		}
	}
	return acc, nil
}

// OrAll folds Or over refs; the empty disjunction is False.
func (e *Engine) OrAll(refs ...Ref) (Ref, error) {
	acc := False
	for _, r := range refs {
		var err error
		acc, err = e.Or(acc, r)
		if err != nil {
			return False, err
		}
		if acc == True {
			return True, nil
		}
	}
	return acc, nil
}

// Implies reports whether a ⇒ b (a ∧ ¬b is empty).
func (e *Engine) Implies(a, b Ref) (bool, error) {
	d, err := e.Diff(a, b)
	return d == False, err
}

// SatCount returns the number of satisfying assignments over all variables.
func (e *Engine) SatCount(r Ref) float64 {
	memo := map[Ref]float64{}
	var count func(Ref) float64
	count = func(r Ref) float64 {
		if r == False {
			return 0
		}
		if r == True {
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := e.node(r)
		low := count(n.low) * pow2(int(e.level(n.low)-n.level-1))
		high := count(n.high) * pow2(int(e.level(n.high)-n.level-1))
		v := low + high
		memo[r] = v
		return v
	}
	return count(r) * pow2(int(e.level(r)))
}

func pow2(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	return v
}

// AnySat returns one satisfying assignment as a map from variable index to
// value, or ok=false for the empty set. Variables absent from the map are
// don't-cares.
func (e *Engine) AnySat(r Ref) (map[int]bool, bool) {
	if r == False {
		return nil, false
	}
	out := map[int]bool{}
	for r != True {
		n := e.node(r)
		if n.high != False {
			out[int(n.level)] = true
			r = n.high
		} else {
			out[int(n.level)] = false
			r = n.low
		}
	}
	return out, true
}

// Eval evaluates the BDD under a complete assignment (indexed by variable).
func (e *Engine) Eval(r Ref, assignment []bool) bool {
	for r != True && r != False {
		n := e.node(r)
		if assignment[n.level] {
			r = n.high
		} else {
			r = n.low
		}
	}
	return r == True
}

// Cube builds the conjunction of the given literals (variable index →
// polarity).
func (e *Engine) Cube(literals map[int]bool) (Ref, error) {
	// Build bottom-up in descending level order for linear node count.
	vars := make([]int, 0, len(literals))
	for v := range literals {
		vars = append(vars, v)
	}
	// Insertion sort descending (small inputs).
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j] > vars[j-1]; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	acc := True
	for _, v := range vars {
		var err error
		var r Ref
		if literals[v] {
			r, err = e.mk(int32(v), False, acc)
		} else {
			r, err = e.mk(int32(v), acc, False)
		}
		if err != nil {
			return False, err
		}
		acc = r
	}
	return acc, nil
}

// ClearCache drops the operation cache (the unique table is kept). Workers
// call this between phases; the table is fixed-size, so this only frees
// the entries, not the slots. Safe concurrently with operations: slots
// are cleared with atomic stores.
func (e *Engine) ClearCache() {
	for i := range e.cache {
		e.cache[i].Store(nil)
	}
}
