// Package bdd implements a reduced ordered binary decision diagram engine —
// the symbolic-packet substrate for data plane verification. It replaces the
// JDD library the paper's prototype uses (§5.1).
//
// Design points that matter for S2:
//
//   - Every worker owns a private Engine, so BDD operations on different
//     workers never contend (§4.3, "each worker has its own BDD node table").
//   - Symbolic packets crossing workers are serialized as reduced node lists
//     and re-encoded into the destination engine (Serialize/Deserialize).
//   - The node table is observable (NodeCount) so the metrics package can
//     charge modelled memory, and bounded (MaxNodes) so the paper's "BDD
//     node table overflow" failure mode is reproducible.
//
// An Engine is not safe for concurrent use; the centralized baseline wraps
// one in a SharedEngine whose single mutex reproduces the paper's
// parallelism bottleneck.
package bdd

import (
	"errors"
	"fmt"
)

// Ref is a node reference. The constants False and True are the terminal
// nodes; all other refs index the engine's node table. Refs are only
// meaningful within the engine that produced them.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

// ErrNodeTableFull reports that an engine exceeded its configured node
// limit — the analogue of overflowing the 2^32-bounded node table in §2.2.
var ErrNodeTableFull = errors.New("bdd: node table full")

type node struct {
	level     int32 // variable index; terminals use level = numVars
	low, high Ref
}

type uniqueKey struct {
	level     int32
	low, high Ref
}

type opKey struct {
	op   uint8
	a, b Ref
}

const (
	opAnd uint8 = iota
	opOr
	opXor
	opDiff
	opNot
	opExists
)

// Engine is one BDD node table with its operation caches.
type Engine struct {
	numVars  int
	maxNodes int
	nodes    []node
	unique   map[uniqueKey]Ref
	cache    map[opKey]Ref

	// onGrow, when set, observes node-table growth for memory modelling.
	onGrow func(delta int)
}

// New creates an engine over numVars Boolean variables with an optional
// node limit (0 = unlimited).
func New(numVars, maxNodes int) *Engine {
	e := &Engine{
		numVars:  numVars,
		maxNodes: maxNodes,
		unique:   make(map[uniqueKey]Ref),
		cache:    make(map[opKey]Ref),
	}
	// Terminals at the bottom of the order.
	e.nodes = append(e.nodes,
		node{level: int32(numVars)}, // False
		node{level: int32(numVars)}, // True
	)
	return e
}

// NumVars returns the variable count.
func (e *Engine) NumVars() int { return e.numVars }

// NodeCount returns the number of live nodes including terminals.
func (e *Engine) NodeCount() int { return len(e.nodes) }

// NodeModelBytes is the modelled memory charged per BDD node, matching
// packed int-array node tables (level, low, high, hash link) as in JDD.
const NodeModelBytes = 24

// ModelBytes returns the engine's modelled memory footprint.
func (e *Engine) ModelBytes() int64 {
	return int64(e.NodeCount()) * NodeModelBytes
}

// SetGrowObserver registers a callback invoked with the node-count delta
// whenever the table grows. Used by workers to feed memory trackers.
func (e *Engine) SetGrowObserver(fn func(delta int)) { e.onGrow = fn }

// mk returns the canonical node (level, low, high), applying the two ROBDD
// reduction rules.
func (e *Engine) mk(level int32, low, high Ref) (Ref, error) {
	if low == high {
		return low, nil
	}
	key := uniqueKey{level, low, high}
	if r, ok := e.unique[key]; ok {
		return r, nil
	}
	if e.maxNodes > 0 && len(e.nodes) >= e.maxNodes {
		return False, fmt.Errorf("%w: %d nodes", ErrNodeTableFull, len(e.nodes))
	}
	r := Ref(len(e.nodes))
	e.nodes = append(e.nodes, node{level: level, low: low, high: high})
	e.unique[key] = r
	if e.onGrow != nil {
		e.onGrow(1)
	}
	return r, nil
}

// Var returns the BDD for "variable i is 1".
func (e *Engine) Var(i int) (Ref, error) {
	if i < 0 || i >= e.numVars {
		return False, fmt.Errorf("bdd: variable %d out of range [0,%d)", i, e.numVars)
	}
	return e.mk(int32(i), False, True)
}

// NVar returns the BDD for "variable i is 0".
func (e *Engine) NVar(i int) (Ref, error) {
	if i < 0 || i >= e.numVars {
		return False, fmt.Errorf("bdd: variable %d out of range [0,%d)", i, e.numVars)
	}
	return e.mk(int32(i), True, False)
}

func (e *Engine) level(r Ref) int32 { return e.nodes[r].level }

// apply evaluates a binary Boolean operation with memoization.
func (e *Engine) apply(op uint8, a, b Ref) (Ref, error) {
	switch op {
	case opAnd:
		if a == b {
			return a, nil
		}
		if a == False || b == False {
			return False, nil
		}
		if a == True {
			return b, nil
		}
		if b == True {
			return a, nil
		}
	case opOr:
		if a == b {
			return a, nil
		}
		if a == True || b == True {
			return True, nil
		}
		if a == False {
			return b, nil
		}
		if b == False {
			return a, nil
		}
	case opXor:
		if a == b {
			return False, nil
		}
		if a == False {
			return b, nil
		}
		if b == False {
			return a, nil
		}
	case opDiff: // a AND NOT b
		if a == False || b == True || a == b {
			return False, nil
		}
		if b == False {
			return a, nil
		}
	}
	// Normalize commutative operations for better cache hits.
	if (op == opAnd || op == opOr || op == opXor) && a > b {
		a, b = b, a
	}
	key := opKey{op, a, b}
	if r, ok := e.cache[key]; ok {
		return r, nil
	}
	la, lb := e.level(a), e.level(b)
	top := la
	if lb < top {
		top = lb
	}
	a0, a1 := a, a
	if la == top {
		a0, a1 = e.nodes[a].low, e.nodes[a].high
	}
	b0, b1 := b, b
	if lb == top {
		b0, b1 = e.nodes[b].low, e.nodes[b].high
	}
	low, err := e.apply(op, a0, b0)
	if err != nil {
		return False, err
	}
	high, err := e.apply(op, a1, b1)
	if err != nil {
		return False, err
	}
	r, err := e.mk(top, low, high)
	if err != nil {
		return False, err
	}
	e.cache[key] = r
	return r, nil
}

// And returns a ∧ b.
func (e *Engine) And(a, b Ref) (Ref, error) { return e.apply(opAnd, a, b) }

// Or returns a ∨ b.
func (e *Engine) Or(a, b Ref) (Ref, error) { return e.apply(opOr, a, b) }

// Xor returns a ⊕ b.
func (e *Engine) Xor(a, b Ref) (Ref, error) { return e.apply(opXor, a, b) }

// Diff returns a ∧ ¬b.
func (e *Engine) Diff(a, b Ref) (Ref, error) { return e.apply(opDiff, a, b) }

// Not returns ¬a.
func (e *Engine) Not(a Ref) (Ref, error) {
	switch a {
	case False:
		return True, nil
	case True:
		return False, nil
	}
	key := opKey{opNot, a, 0}
	if r, ok := e.cache[key]; ok {
		return r, nil
	}
	low, err := e.Not(e.nodes[a].low)
	if err != nil {
		return False, err
	}
	high, err := e.Not(e.nodes[a].high)
	if err != nil {
		return False, err
	}
	r, err := e.mk(e.nodes[a].level, low, high)
	if err != nil {
		return False, err
	}
	e.cache[key] = r
	return r, nil
}

// Exists existentially quantifies variable v out of a: the result is true
// for an assignment iff a is true under some value of v. Used to "clear" a
// header bit before setting it (waypoint write rules, §4.4).
func (e *Engine) Exists(a Ref, v int) (Ref, error) {
	if v < 0 || v >= e.numVars {
		return False, fmt.Errorf("bdd: variable %d out of range [0,%d)", v, e.numVars)
	}
	if a == False || a == True {
		return a, nil
	}
	n := e.nodes[a]
	if int(n.level) > v {
		// Levels increase downward, so v cannot appear in this sub-DAG.
		return a, nil
	}
	key := opKey{opExists, a, Ref(v)}
	if r, ok := e.cache[key]; ok {
		return r, nil
	}
	var r Ref
	var err error
	if int(n.level) == v {
		r, err = e.Or(n.low, n.high)
	} else {
		var low, high Ref
		low, err = e.Exists(n.low, v)
		if err != nil {
			return False, err
		}
		high, err = e.Exists(n.high, v)
		if err != nil {
			return False, err
		}
		r, err = e.mk(n.level, low, high)
	}
	if err != nil {
		return False, err
	}
	e.cache[key] = r
	return r, nil
}

// SetVar constrains variable v of a to the given value, overwriting any
// prior constraint: Exists(a, v) ∧ (v = value). This is the symbolic form
// of a header "write rule".
func (e *Engine) SetVar(a Ref, v int, value bool) (Ref, error) {
	q, err := e.Exists(a, v)
	if err != nil {
		return False, err
	}
	var lit Ref
	if value {
		lit, err = e.Var(v)
	} else {
		lit, err = e.NVar(v)
	}
	if err != nil {
		return False, err
	}
	return e.And(q, lit)
}

// AndAll folds And over refs; the empty conjunction is True.
func (e *Engine) AndAll(refs ...Ref) (Ref, error) {
	acc := True
	for _, r := range refs {
		var err error
		acc, err = e.And(acc, r)
		if err != nil {
			return False, err
		}
		if acc == False {
			return False, nil
		}
	}
	return acc, nil
}

// OrAll folds Or over refs; the empty disjunction is False.
func (e *Engine) OrAll(refs ...Ref) (Ref, error) {
	acc := False
	for _, r := range refs {
		var err error
		acc, err = e.Or(acc, r)
		if err != nil {
			return False, err
		}
		if acc == True {
			return True, nil
		}
	}
	return acc, nil
}

// Implies reports whether a ⇒ b (a ∧ ¬b is empty).
func (e *Engine) Implies(a, b Ref) (bool, error) {
	d, err := e.Diff(a, b)
	return d == False, err
}

// SatCount returns the number of satisfying assignments over all variables.
func (e *Engine) SatCount(r Ref) float64 {
	memo := map[Ref]float64{}
	var count func(Ref) float64
	count = func(r Ref) float64 {
		if r == False {
			return 0
		}
		if r == True {
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := e.nodes[r]
		low := count(n.low) * pow2(int(e.level(n.low)-n.level-1))
		high := count(n.high) * pow2(int(e.level(n.high)-n.level-1))
		v := low + high
		memo[r] = v
		return v
	}
	return count(r) * pow2(int(e.level(r)))
}

func pow2(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	return v
}

// AnySat returns one satisfying assignment as a map from variable index to
// value, or ok=false for the empty set. Variables absent from the map are
// don't-cares.
func (e *Engine) AnySat(r Ref) (map[int]bool, bool) {
	if r == False {
		return nil, false
	}
	out := map[int]bool{}
	for r != True {
		n := e.nodes[r]
		if n.high != False {
			out[int(n.level)] = true
			r = n.high
		} else {
			out[int(n.level)] = false
			r = n.low
		}
	}
	return out, true
}

// Eval evaluates the BDD under a complete assignment (indexed by variable).
func (e *Engine) Eval(r Ref, assignment []bool) bool {
	for r != True && r != False {
		n := e.nodes[r]
		if assignment[n.level] {
			r = n.high
		} else {
			r = n.low
		}
	}
	return r == True
}

// Cube builds the conjunction of the given literals (variable index →
// polarity).
func (e *Engine) Cube(literals map[int]bool) (Ref, error) {
	// Build bottom-up in descending level order for linear node count.
	vars := make([]int, 0, len(literals))
	for v := range literals {
		vars = append(vars, v)
	}
	// Insertion sort descending (small inputs).
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j] > vars[j-1]; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	acc := True
	for _, v := range vars {
		var err error
		var r Ref
		if literals[v] {
			r, err = e.mk(int32(v), False, acc)
		} else {
			r, err = e.mk(int32(v), acc, False)
		}
		if err != nil {
			return False, err
		}
		acc = r
	}
	return acc, nil
}

// ClearCache drops the operation cache (the unique table is kept). Workers
// call this between phases to bound cache growth.
func (e *Engine) ClearCache() {
	e.cache = make(map[opKey]Ref)
}
