package bdd

import (
	"math/rand"
	"sync"
	"testing"
)

func TestSerializeRoundTripSameEngine(t *testing.T) {
	e := New(8, 0)
	x, _ := e.Var(0)
	y, _ := e.Var(3)
	ny, _ := e.Not(y)
	f, _ := e.And(x, ny)
	g, _ := e.Or(f, y)

	for _, r := range []Ref{False, True, x, f, g} {
		data := e.Serialize(r)
		got, err := e.Deserialize(data)
		if err != nil {
			t.Fatalf("deserialize: %v", err)
		}
		if got != r {
			t.Fatalf("round trip changed ref: %d -> %d", r, got)
		}
	}
}

func TestSerializeAcrossEngines(t *testing.T) {
	// The cross-worker path: build in engine A, transfer to B, verify the
	// function is identical by truth-table sampling.
	const nvars = 16
	a := New(nvars, 0)
	b := New(nvars, 0)
	rng := rand.New(rand.NewSource(9))

	f := True
	for i := 0; i < 10; i++ {
		v, _ := a.Var(rng.Intn(nvars))
		if rng.Intn(2) == 0 {
			v, _ = a.Not(v)
		}
		if rng.Intn(2) == 0 {
			f, _ = a.And(f, v)
		} else {
			f, _ = a.Or(f, v)
		}
	}
	got, err := b.Deserialize(a.Serialize(f))
	if err != nil {
		t.Fatal(err)
	}
	if a.SatCount(f) != b.SatCount(got) {
		t.Fatalf("satcount mismatch: %v vs %v", a.SatCount(f), b.SatCount(got))
	}
	asg := make([]bool, nvars)
	for trial := 0; trial < 2000; trial++ {
		for i := range asg {
			asg[i] = rng.Intn(2) == 0
		}
		if a.Eval(f, asg) != b.Eval(got, asg) {
			t.Fatalf("functions differ at %v", asg)
		}
	}
}

func TestDeserializeVarMismatch(t *testing.T) {
	a := New(8, 0)
	b := New(16, 0)
	x, _ := a.Var(0)
	if _, err := b.Deserialize(a.Serialize(x)); err == nil {
		t.Fatal("variable count mismatch must error")
	}
}

func TestDeserializeGarbage(t *testing.T) {
	e := New(8, 0)
	for _, data := range [][]byte{nil, {1}, {0xff, 0xff, 0xff}, []byte("hello world")} {
		if _, err := e.Deserialize(data); err == nil {
			t.Fatalf("garbage %v should fail", data)
		}
	}
	// Truncated valid prefix.
	x, _ := e.Var(2)
	y, _ := e.Var(5)
	f, _ := e.And(x, y)
	data := e.Serialize(f)
	if _, err := e.Deserialize(data[:len(data)-2]); err == nil {
		t.Fatal("truncated serialization should fail")
	}
}

func TestSerializeDeepChain(t *testing.T) {
	// A conjunction of every variable is one chain of nvars nodes — the
	// deepest possible BDD. The traversal in Serialize/topoVisit is
	// iterative, so this must round-trip without exhausting the stack no
	// matter how deep the chain gets.
	const nvars = 200_000
	a := New(nvars, 0)
	acc := True
	for i := nvars - 1; i >= 0; i-- { // bottom-up keeps construction linear
		v, err := a.Var(i)
		if err != nil {
			t.Fatal(err)
		}
		acc, err = a.And(v, acc)
		if err != nil {
			t.Fatal(err)
		}
	}

	b := New(nvars, 0)
	got, err := b.Deserialize(a.Serialize(acc))
	if err != nil {
		t.Fatal(err)
	}
	asg := make([]bool, nvars)
	for i := range asg {
		asg[i] = true
	}
	if !b.Eval(got, asg) {
		t.Fatal("all-true assignment must satisfy the cube")
	}
	asg[nvars/2] = false
	if b.Eval(got, asg) {
		t.Fatal("assignment with a false variable must not satisfy the cube")
	}

	// The set codec shares the same traversal; make sure it survives the
	// chain too and agrees with the per-ref codec.
	roots, err := b.DeserializeSet(a.SerializeSet([]Ref{acc, acc}))
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 || roots[0] != got || roots[1] != got {
		t.Fatalf("set round trip diverged: %v vs %d", roots, got)
	}
}

func TestSharedEngineSerializesAccess(t *testing.T) {
	s := NewShared(New(32, 0))
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs <- s.Do(func(e *Engine) error {
				acc := True
				for i := 0; i < 32; i++ {
					v, err := e.Var(i)
					if err != nil {
						return err
					}
					if (g+i)%2 == 0 {
						acc, err = e.And(acc, v)
					} else {
						acc, err = e.Or(acc, v)
					}
					if err != nil {
						return err
					}
				}
				return nil
			})
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if s.NodeCount() < 32 || s.ModelBytes() <= 0 {
		t.Fatal("shared engine accounting")
	}
}
