package bdd

import (
	"encoding/binary"
	"fmt"
)

// The wire codec is the shared-substrate counterpart to Serialize: instead
// of encoding each packet's reachable sub-DAG independently, many refs are
// encoded against ONE topologically-ordered node table per message, so a
// node shared by a thousand forwarding predicates crosses the wire once.
// On top of that, WireSession/WireTable implement a per-peer delta
// protocol: the sender remembers which node ids the peer has already
// materialized (this query phase) and later messages reference them by
// stable remote id instead of re-encoding. Sessions are epoch-stamped —
// garbage collection remaps refs and worker recovery rebuilds state, so
// either side can unilaterally reset and the explicit epoch/reset
// handshake (a fresh base==2 message, or a "please reset" reply) restarts
// the stream cleanly instead of corrupting refs.
//
// Message layout (all varints):
//
//	wireMagic numVars epoch base count
//	count × (levelDelta[zigzag] lowBack highBack)
//
// where node i has remote id base+i, levelDelta is relative to the
// previous node's level (0 for the first), and lowBack/highBack are the
// positive distances id−lowID / id−highID. SerializeSet uses the same
// layout with epoch=0, base=2 and appends rootCount + root ids;
// session messages carry their root ids out of band (one per packet).

// wireMagic guards against decoding garbage; distinct from serialMagic so
// the two formats can never be confused.
const wireMagic = 0x53325753 // "S2WS"

// wireBase is the first non-terminal remote id: ids 0 and 1 are always
// False and True.
const wireBase = 2

type wireHeader struct {
	numVars uint64
	epoch   uint64
	base    uint64
	count   uint64
}

func parseWireHeader(data []byte) (h wireHeader, rest []byte, err error) {
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("bdd: truncated wire header")
		}
		data = data[n:]
		return v, nil
	}
	magic, err := next()
	if err != nil || magic != wireMagic {
		return h, nil, fmt.Errorf("bdd: bad wire magic")
	}
	if h.numVars, err = next(); err != nil {
		return h, nil, err
	}
	if h.epoch, err = next(); err != nil {
		return h, nil, err
	}
	if h.base, err = next(); err != nil {
		return h, nil, err
	}
	if h.base < wireBase {
		return h, nil, fmt.Errorf("bdd: malformed wire base %d", h.base)
	}
	if h.count, err = next(); err != nil {
		return h, nil, err
	}
	return h, data, nil
}

// appendWireNodes emits order (already topologically sorted, ids assigned)
// in delta encoding.
func (e *Engine) appendWireNodes(buf []byte, order []Ref, ids map[Ref]uint32) []byte {
	prevLevel := int64(0)
	for _, x := range order {
		n := e.node(x)
		buf = binary.AppendVarint(buf, int64(n.level)-prevLevel)
		prevLevel = int64(n.level)
		id := uint64(ids[x])
		buf = binary.AppendUvarint(buf, id-uint64(ids[n.low]))
		buf = binary.AppendUvarint(buf, id-uint64(ids[n.high]))
	}
	return buf
}

// decodeWireNodes decodes count delta-encoded nodes, appending the
// resulting local refs to refs (whose length must equal the message base).
// The whole substrate is materialized in one pass under a single
// stripe-ordered lock acquisition (beginBulk) rather than node-at-a-time.
// Child levels are validated strictly below the parent's, so a malformed
// message can never smuggle an order-violating node into the engine.
func (e *Engine) decodeWireNodes(data []byte, refs []Ref, count uint64) ([]Ref, []byte, error) {
	b := e.beginBulk()
	defer b.end()
	prevLevel := int64(0)
	for i := uint64(0); i < count; i++ {
		ld, n := binary.Varint(data)
		if n <= 0 {
			return refs, nil, fmt.Errorf("bdd: truncated wire node %d", i)
		}
		data = data[n:]
		level := prevLevel + ld
		if level < 0 || level >= int64(e.numVars) {
			return refs, nil, fmt.Errorf("bdd: wire node %d level %d out of range", i, level)
		}
		prevLevel = level
		lowBack, n := binary.Uvarint(data)
		if n <= 0 {
			return refs, nil, fmt.Errorf("bdd: truncated wire node %d", i)
		}
		data = data[n:]
		highBack, n := binary.Uvarint(data)
		if n <= 0 {
			return refs, nil, fmt.Errorf("bdd: truncated wire node %d", i)
		}
		data = data[n:]
		id := uint64(len(refs))
		if lowBack == 0 || lowBack > id || highBack == 0 || highBack > id {
			return refs, nil, fmt.Errorf("bdd: wire node %d child out of range", i)
		}
		low, high := refs[id-lowBack], refs[id-highBack]
		// The variable-order invariant: both children live strictly
		// below this node (terminals sit at level numVars).
		if int64(e.level(low)) <= level || int64(e.level(high)) <= level {
			return refs, nil, fmt.Errorf("bdd: wire node %d violates variable order", i)
		}
		r, err := b.mk(int32(level), low, high)
		if err != nil {
			return refs, nil, err
		}
		refs = append(refs, r)
	}
	return refs, data, nil
}

// SerializeSet encodes many refs against one shared node table: each node
// reachable from any of the refs is emitted exactly once. The result is
// decoded by DeserializeSet, which returns one local ref per input ref, in
// order. Duplicate refs cost four bytes, not a re-encoding.
func (e *Engine) SerializeSet(refs []Ref) []byte {
	ids := map[Ref]uint32{False: 0, True: 1}
	var order []Ref
	next := uint32(wireBase)
	for _, r := range refs {
		e.topoVisit(r, ids, &order, &next, nil)
	}
	buf := make([]byte, 0, 24+len(order)*6+len(refs)*4)
	buf = binary.AppendUvarint(buf, wireMagic)
	buf = binary.AppendUvarint(buf, uint64(e.numVars))
	buf = binary.AppendUvarint(buf, 0) // epoch 0: sessionless
	buf = binary.AppendUvarint(buf, wireBase)
	buf = binary.AppendUvarint(buf, uint64(len(order)))
	buf = e.appendWireNodes(buf, order, ids)
	buf = binary.AppendUvarint(buf, uint64(len(refs)))
	for _, r := range refs {
		buf = binary.AppendUvarint(buf, uint64(ids[r]))
	}
	return buf
}

// DeserializeSet decodes a SerializeSet message into this engine,
// returning one local ref per encoded root, in encoding order.
func (e *Engine) DeserializeSet(data []byte) ([]Ref, error) {
	h, rest, err := parseWireHeader(data)
	if err != nil {
		return nil, err
	}
	if int(h.numVars) != e.numVars {
		return nil, fmt.Errorf("bdd: variable count mismatch: encoded %d, engine %d", h.numVars, e.numVars)
	}
	if h.base != wireBase {
		return nil, fmt.Errorf("bdd: sessionless wire message must start at base %d, got %d", wireBase, h.base)
	}
	refs := make([]Ref, wireBase, wireBase+h.count)
	refs[0], refs[1] = False, True
	refs, rest, err = e.decodeWireNodes(rest, refs, h.count)
	if err != nil {
		return nil, err
	}
	rootCount, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("bdd: truncated wire roots")
	}
	rest = rest[n:]
	roots := make([]Ref, rootCount)
	for i := range roots {
		id, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("bdd: truncated wire roots")
		}
		rest = rest[n:]
		if id >= uint64(len(refs)) {
			return nil, fmt.Errorf("bdd: wire root %d out of range", i)
		}
		roots[i] = refs[id]
	}
	return roots, nil
}

// WireSession is the sender half of the per-peer delta protocol: it maps
// local refs to the remote ids the peer materialized earlier this epoch.
// Reset MUST be called whenever local refs are invalidated (GC remap) or
// the peer may have lost state (recovery re-setup, new query phase) — the
// epoch bump tells the receiver to discard its table. Not safe for
// concurrent use; a worker drives each session from its phase goroutine.
type WireSession struct {
	epoch uint64
	ids   map[Ref]uint32
	next  uint32
}

// NewWireSession starts a session at epoch 1.
func NewWireSession() *WireSession {
	s := &WireSession{}
	s.Reset()
	return s
}

// Epoch returns the current epoch.
func (s *WireSession) Epoch() uint64 { return s.epoch }

// Known returns how many non-terminal nodes the peer holds this epoch.
func (s *WireSession) Known() int { return int(s.next) - wireBase }

// Reset forgets everything the peer knows and bumps the epoch.
func (s *WireSession) Reset() {
	s.epoch++
	s.ids = map[Ref]uint32{False: 0, True: 1}
	s.next = wireBase
}

// EncodeDelta encodes refs against the session: nodes the peer already
// holds are referenced by remote id, only novel nodes are transmitted.
// It returns the substrate message (possibly containing zero new nodes),
// the remote id of each input ref, and counters: newNodes actually encoded
// and deduped arrivals at already-known non-terminals (the re-encodings a
// per-packet codec would have paid). The session optimistically records
// the transmitted nodes as known; if delivery fails the session must be
// Reset before the next encode.
func (e *Engine) EncodeDelta(s *WireSession, refs []Ref) (wire []byte, roots []uint32, newNodes, deduped int) {
	base := s.next
	var order []Ref
	for _, r := range refs {
		e.topoVisit(r, s.ids, &order, &s.next, &deduped)
	}
	buf := make([]byte, 0, 24+len(order)*6)
	buf = binary.AppendUvarint(buf, wireMagic)
	buf = binary.AppendUvarint(buf, uint64(e.numVars))
	buf = binary.AppendUvarint(buf, s.epoch)
	buf = binary.AppendUvarint(buf, uint64(base))
	buf = binary.AppendUvarint(buf, uint64(len(order)))
	buf = e.appendWireNodes(buf, order, s.ids)
	roots = make([]uint32, len(refs))
	for i, r := range refs {
		roots[i] = s.ids[r]
	}
	return buf, roots, len(order), deduped
}

// WireTable is the receiver half of the delta protocol: remote id → local
// ref for one sender. Acceptance (protocol continuity, cheap header-only
// bookkeeping, callable from RPC goroutines under the caller's lock) is
// deliberately split from materialization (engine writes, driven later by
// the worker's phase goroutine in arrival order), because deliveries land
// concurrently with rounds but engines must not be touched mid-GC.
type WireTable struct {
	// Accept-side cursor: epoch and next-expected id counting every
	// accepted message, materialized or not. Guarded by the caller.
	acceptEpoch uint64
	acceptNext  uint64
	accepted    bool

	// Materialize-side state, touched only by the owner's goroutine.
	epoch uint64
	refs  []Ref
}

// NewWireTable returns an empty receiver table.
func NewWireTable() *WireTable { return &WireTable{} }

// Accept validates a message header against the session cursor. A fresh
// start (base == 2) is always accepted and rebases the session on the
// message's epoch; a continuation must match the current epoch and splice
// exactly at the cursor. ok == false means the sender's view has diverged
// (e.g. this side lost state) and it must Reset and re-send — the reset
// half of the handshake. Nothing is materialized here.
func (t *WireTable) Accept(data []byte, numVars int) (ok bool, err error) {
	h, _, err := parseWireHeader(data)
	if err != nil {
		return false, err
	}
	if int(h.numVars) != numVars {
		return false, fmt.Errorf("bdd: variable count mismatch: encoded %d, engine %d", h.numVars, numVars)
	}
	switch {
	case h.base == wireBase:
		t.acceptEpoch, t.acceptNext, t.accepted = h.epoch, wireBase+h.count, true
		return true, nil
	case t.accepted && h.epoch == t.acceptEpoch && h.base == t.acceptNext:
		t.acceptNext += h.count
		return true, nil
	default:
		return false, nil
	}
}

// Materialize decodes an accepted message into e, extending (or, on a
// fresh start, rebuilding) the id table. Messages must be materialized in
// acceptance order.
func (t *WireTable) Materialize(e *Engine, data []byte) error {
	h, rest, err := parseWireHeader(data)
	if err != nil {
		return err
	}
	if h.base == wireBase {
		t.refs = append(t.refs[:0], False, True)
		t.epoch = h.epoch
	} else if h.epoch != t.epoch || h.base != uint64(len(t.refs)) {
		return fmt.Errorf("bdd: wire message out of order: epoch %d base %d, table at epoch %d size %d",
			h.epoch, h.base, t.epoch, len(t.refs))
	}
	t.refs, _, err = e.decodeWireNodes(rest, t.refs, h.count)
	return err
}

// Resolve maps a remote id from a materialized message to its local ref.
func (t *WireTable) Resolve(id uint32) (Ref, error) {
	if uint64(id) >= uint64(len(t.refs)) {
		return False, fmt.Errorf("bdd: wire root id %d beyond table size %d", id, len(t.refs))
	}
	return t.refs[id], nil
}

// Refs exposes the materialized local refs so the owner can root them
// across a GC; pair with Remap.
func (t *WireTable) Refs() []Ref { return t.refs }

// Remap rewrites the materialized refs through a GC remap function.
func (t *WireTable) Remap(f func(Ref) Ref) {
	for i, r := range t.refs {
		t.refs[i] = f(r)
	}
}
