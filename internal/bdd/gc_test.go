package bdd

import (
	"math/rand"
	"testing"
)

func TestGCCollectsGarbage(t *testing.T) {
	e := New(16, 0)
	x, _ := e.Var(0)
	y, _ := e.Var(1)
	keep, _ := e.And(x, y)
	// Create garbage: many dead intermediate results.
	for i := 2; i < 16; i++ {
		v, _ := e.Var(i)
		tmp, _ := e.Or(keep, v)
		_, _ = e.And(tmp, v)
	}
	before := e.NodeCount()
	remap := e.GC([]Ref{keep})
	after := e.NodeCount()
	if after >= before {
		t.Fatalf("GC freed nothing: %d -> %d", before, after)
	}
	nk := remap(keep)
	if e.SatCount(nk) != 1<<14 {
		t.Fatalf("kept function changed: satcount %v", e.SatCount(nk))
	}
	// Collected refs map to False rather than dangling.
	if remap(Ref(before-1)) != False && int(Ref(before-1)) >= after {
		t.Fatal("collected ref should remap to False")
	}
	// Terminals are stable.
	if remap(True) != True || remap(False) != False {
		t.Fatal("terminals must survive GC")
	}
}

func TestGCPreservesSemantics(t *testing.T) {
	const nvars = 10
	e := New(nvars, 0)
	rng := rand.New(rand.NewSource(4))

	// Build a set of live functions plus garbage.
	var live []Ref
	for i := 0; i < 8; i++ {
		f := True
		for j := 0; j < 5; j++ {
			v, _ := e.Var(rng.Intn(nvars))
			if rng.Intn(2) == 0 {
				v, _ = e.Not(v)
			}
			if rng.Intn(2) == 0 {
				f, _ = e.And(f, v)
			} else {
				f, _ = e.Or(f, v)
			}
		}
		live = append(live, f)
	}
	// Record truth tables before GC.
	tables := make([][]bool, len(live))
	asg := make([]bool, nvars)
	for i, f := range live {
		tables[i] = make([]bool, 1<<nvars)
		for a := 0; a < 1<<nvars; a++ {
			for v := 0; v < nvars; v++ {
				asg[v] = a&(1<<v) != 0
			}
			tables[i][a] = e.Eval(f, asg)
		}
	}

	remap := e.GC(live)
	for i, f := range live {
		nf := remap(f)
		for a := 0; a < 1<<nvars; a++ {
			for v := 0; v < nvars; v++ {
				asg[v] = a&(1<<v) != 0
			}
			if e.Eval(nf, asg) != tables[i][a] {
				t.Fatalf("function %d changed at assignment %d", i, a)
			}
		}
	}

	// The engine stays fully usable: new operations on remapped refs.
	a, b := remap(live[0]), remap(live[1])
	or, err := e.Or(a, b)
	if err != nil {
		t.Fatal(err)
	}
	and, err := e.And(or, a)
	if err != nil || and != a {
		t.Fatalf("absorption after GC: %v %v", and, err)
	}
}

func TestGCObserverSeesShrink(t *testing.T) {
	e := New(8, 0)
	total := 0
	e.SetGrowObserver(func(d int) { total += d })
	x, _ := e.Var(0)
	for i := 1; i < 8; i++ {
		v, _ := e.Var(i)
		_, _ = e.Xor(x, v)
	}
	e.GC([]Ref{x})
	if total != e.NodeCount()-2 {
		t.Fatalf("observer total %d vs table %d", total, e.NodeCount()-2)
	}
}

func TestGCEmptyRoots(t *testing.T) {
	e := New(8, 0)
	x, _ := e.Var(0)
	y, _ := e.Var(1)
	_, _ = e.And(x, y)
	e.GC(nil)
	if e.NodeCount() != 2 {
		t.Fatalf("GC with no roots keeps only terminals, got %d nodes", e.NodeCount())
	}
	// Rebuild after total collection works.
	x2, err := e.Var(0)
	if err != nil || x2 == False {
		t.Fatal("engine unusable after full GC")
	}
}

func TestGCIdempotent(t *testing.T) {
	e := New(8, 0)
	x, _ := e.Var(3)
	y, _ := e.Var(5)
	f, _ := e.Xor(x, y)
	r1 := e.GC([]Ref{f})
	f = r1(f)
	n1 := e.NodeCount()
	r2 := e.GC([]Ref{f})
	if e.NodeCount() != n1 {
		t.Fatal("second GC must not change a fully live table")
	}
	if r2(f) == False {
		t.Fatal("live ref lost")
	}
}
