package bdd

import "sync"

// SharedEngine serializes all operations on one Engine behind a single
// mutex. The centralized baseline ("Batfish") uses it to model the paper's
// observation that a single shared BDD node table allows only one operation
// at a time, limiting parallelism during data plane verification (§2.2).
type SharedEngine struct {
	mu sync.Mutex
	e  *Engine
}

// NewShared wraps an engine.
func NewShared(e *Engine) *SharedEngine { return &SharedEngine{e: e} }

// Do runs fn with exclusive access to the engine. All BDD work in callers
// must go through Do, making the serialization point explicit and
// measurable.
func (s *SharedEngine) Do(fn func(*Engine) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fn(s.e)
}

// NodeCount returns the wrapped engine's node count.
func (s *SharedEngine) NodeCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.NodeCount()
}

// ModelBytes returns the wrapped engine's modelled memory.
func (s *SharedEngine) ModelBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.ModelBytes()
}
