package bdd

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustVar(t *testing.T, e *Engine, i int) Ref {
	t.Helper()
	r, err := e.Var(i)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTerminalsAndVar(t *testing.T) {
	e := New(4, 0)
	if e.NumVars() != 4 || e.NodeCount() != 2 {
		t.Fatal("fresh engine")
	}
	x := mustVar(t, e, 0)
	if x == True || x == False {
		t.Fatal("var is not terminal")
	}
	x2 := mustVar(t, e, 0)
	if x != x2 {
		t.Fatal("unique table must canonicalize")
	}
	if _, err := e.Var(4); err == nil {
		t.Fatal("out of range var")
	}
	if _, err := e.NVar(-1); err == nil {
		t.Fatal("out of range nvar")
	}
}

func TestBooleanIdentities(t *testing.T) {
	e := New(3, 0)
	x, y := mustVar(t, e, 0), mustVar(t, e, 1)
	nx, err := e.Not(x)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, got, want Ref) {
		t.Helper()
		if got != want {
			t.Errorf("%s: got %d want %d", name, got, want)
		}
	}
	and, _ := e.And(x, nx)
	check("x∧¬x=⊥", and, False)
	or, _ := e.Or(x, nx)
	check("x∨¬x=⊤", or, True)
	xx, _ := e.And(x, x)
	check("x∧x=x", xx, x)
	xT, _ := e.And(x, True)
	check("x∧⊤=x", xT, x)
	xF, _ := e.Or(x, False)
	check("x∨⊥=x", xF, x)
	nnx, _ := e.Not(nx)
	check("¬¬x=x", nnx, x)
	xor, _ := e.Xor(x, x)
	check("x⊕x=⊥", xor, False)
	diff, _ := e.Diff(x, x)
	check("x∖x=⊥", diff, False)

	// De Morgan: ¬(x∧y) == ¬x∨¬y (canonical refs must be equal).
	xy, _ := e.And(x, y)
	nxy, _ := e.Not(xy)
	ny, _ := e.Not(y)
	demorgan, _ := e.Or(nx, ny)
	check("De Morgan", nxy, demorgan)

	// Commutativity through the cache normalization.
	ab, _ := e.And(x, y)
	ba, _ := e.And(y, x)
	check("commutative and", ab, ba)
}

func TestImplies(t *testing.T) {
	e := New(3, 0)
	x, y := mustVar(t, e, 0), mustVar(t, e, 1)
	xy, _ := e.And(x, y)
	ok, err := e.Implies(xy, x)
	if err != nil || !ok {
		t.Fatal("x∧y ⇒ x")
	}
	ok, _ = e.Implies(x, xy)
	if ok {
		t.Fatal("x does not imply x∧y")
	}
}

func TestSatCount(t *testing.T) {
	e := New(4, 0)
	if got := e.SatCount(True); got != 16 {
		t.Fatalf("SatCount(⊤) = %v over 4 vars", got)
	}
	if got := e.SatCount(False); got != 0 {
		t.Fatalf("SatCount(⊥) = %v", got)
	}
	x := mustVar(t, e, 0)
	if got := e.SatCount(x); got != 8 {
		t.Fatalf("SatCount(x0) = %v, want 8", got)
	}
	y := mustVar(t, e, 3)
	xy, _ := e.And(x, y)
	if got := e.SatCount(xy); got != 4 {
		t.Fatalf("SatCount(x0∧x3) = %v, want 4", got)
	}
	or, _ := e.Or(x, y)
	if got := e.SatCount(or); got != 12 {
		t.Fatalf("SatCount(x0∨x3) = %v, want 12", got)
	}
}

func TestAnySatAndEval(t *testing.T) {
	e := New(4, 0)
	x, _ := e.Var(1)
	ny, _ := e.NVar(2)
	f, _ := e.And(x, ny)
	asg, ok := e.AnySat(f)
	if !ok || asg[1] != true || asg[2] != false {
		t.Fatalf("AnySat = %v %v", asg, ok)
	}
	if _, ok := e.AnySat(False); ok {
		t.Fatal("AnySat(⊥) must fail")
	}
	full := []bool{false, true, false, false}
	if !e.Eval(f, full) {
		t.Fatal("Eval should satisfy")
	}
	full[2] = true
	if e.Eval(f, full) {
		t.Fatal("Eval should reject")
	}
}

func TestCube(t *testing.T) {
	e := New(8, 0)
	cube, err := e.Cube(map[int]bool{0: true, 3: false, 7: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.SatCount(cube); got != 32 { // 2^(8-3)
		t.Fatalf("cube satcount = %v", got)
	}
	asg, _ := e.AnySat(cube)
	if asg[0] != true || asg[3] != false || asg[7] != true {
		t.Fatalf("cube assignment = %v", asg)
	}
	empty, err := e.Cube(nil)
	if err != nil || empty != True {
		t.Fatal("empty cube is ⊤")
	}
}

func TestAndAllOrAll(t *testing.T) {
	e := New(4, 0)
	x, y, z := mustVar(t, e, 0), mustVar(t, e, 1), mustVar(t, e, 2)
	all, err := e.AndAll(x, y, z)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.SatCount(all); got != 2 {
		t.Fatalf("AndAll satcount = %v", got)
	}
	any, _ := e.OrAll(x, y, z)
	if got := e.SatCount(any); got != 14 {
		t.Fatalf("OrAll satcount = %v", got)
	}
	empty, _ := e.AndAll()
	if empty != True {
		t.Fatal("empty AndAll = ⊤")
	}
	none, _ := e.OrAll()
	if none != False {
		t.Fatal("empty OrAll = ⊥")
	}
}

func TestNodeTableLimit(t *testing.T) {
	e := New(64, 8)
	var err error
	for i := 0; i < 64 && err == nil; i++ {
		_, err = e.Var(i)
	}
	if !errors.Is(err, ErrNodeTableFull) {
		t.Fatalf("expected node table overflow, got %v", err)
	}
}

func TestGrowObserver(t *testing.T) {
	e := New(8, 0)
	total := 0
	e.SetGrowObserver(func(d int) { total += d })
	x, _ := e.Var(0)
	y, _ := e.Var(1)
	e.And(x, y)
	if total != e.NodeCount()-2 {
		t.Fatalf("observer saw %d, table has %d non-terminal", total, e.NodeCount()-2)
	}
}

// TestAgainstTruthTable cross-checks all operations against brute-force
// truth-table evaluation on random formulas.
func TestAgainstTruthTable(t *testing.T) {
	const nvars = 6
	e := New(nvars, 0)
	rng := rand.New(rand.NewSource(42))

	type formula struct {
		ref   Ref
		table [1 << nvars]bool
	}
	// Seed with literals.
	var pool []formula
	for i := 0; i < nvars; i++ {
		v := mustVar(t, e, i)
		var f formula
		f.ref = v
		for a := 0; a < 1<<nvars; a++ {
			f.table[a] = a&(1<<i) != 0
		}
		pool = append(pool, f)
	}
	for step := 0; step < 300; step++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		var f formula
		var err error
		switch step % 5 {
		case 0:
			f.ref, err = e.And(a.ref, b.ref)
			for i := range f.table {
				f.table[i] = a.table[i] && b.table[i]
			}
		case 1:
			f.ref, err = e.Or(a.ref, b.ref)
			for i := range f.table {
				f.table[i] = a.table[i] || b.table[i]
			}
		case 2:
			f.ref, err = e.Xor(a.ref, b.ref)
			for i := range f.table {
				f.table[i] = a.table[i] != b.table[i]
			}
		case 3:
			f.ref, err = e.Diff(a.ref, b.ref)
			for i := range f.table {
				f.table[i] = a.table[i] && !b.table[i]
			}
		case 4:
			f.ref, err = e.Not(a.ref)
			for i := range f.table {
				f.table[i] = !a.table[i]
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		// Verify against truth table via Eval and SatCount.
		count := 0.0
		asg := make([]bool, nvars)
		for i := 0; i < 1<<nvars; i++ {
			for v := 0; v < nvars; v++ {
				asg[v] = i&(1<<v) != 0
			}
			if e.Eval(f.ref, asg) != f.table[i] {
				t.Fatalf("step %d: Eval mismatch at assignment %06b", step, i)
			}
			if f.table[i] {
				count++
			}
		}
		if got := e.SatCount(f.ref); got != count {
			t.Fatalf("step %d: SatCount = %v, want %v", step, got, count)
		}
		pool = append(pool, f)
	}
}

func TestCanonicityQuick(t *testing.T) {
	// Property: two formulas with equal truth tables get identical refs.
	e := New(5, 0)
	f := func(aBits, bBits uint8) bool {
		// Build (a0∧a1)∨(b0∧¬b1) style formulas from bit patterns and
		// compare (p∨q) with ¬(¬p∧¬q).
		p, _ := e.Cube(map[int]bool{0: aBits&1 != 0, 1: aBits&2 != 0})
		q, _ := e.Cube(map[int]bool{2: bBits&1 != 0, 3: bBits&2 != 0})
		or, _ := e.Or(p, q)
		np, _ := e.Not(p)
		nq, _ := e.Not(q)
		nand, _ := e.And(np, nq)
		alt, _ := e.Not(nand)
		return or == alt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExists(t *testing.T) {
	e := New(4, 0)
	x, _ := e.Var(0)
	y, _ := e.Var(1)
	xy, _ := e.And(x, y)
	// ∃x.(x∧y) = y
	got, err := e.Exists(xy, 0)
	if err != nil || got != y {
		t.Fatalf("∃x.(x∧y) = %d, want y=%d (err %v)", got, y, err)
	}
	// ∃y over a formula not mentioning y is identity.
	got, _ = e.Exists(x, 1)
	if got != x {
		t.Fatal("quantifying an absent variable is identity")
	}
	// ∃x.(x∨y) = ⊤
	xoy, _ := e.Or(x, y)
	got, _ = e.Exists(xoy, 0)
	if got != True {
		t.Fatal("∃x.(x∨y) = ⊤")
	}
	if _, err := e.Exists(x, 9); err == nil {
		t.Fatal("out of range variable")
	}
	for _, term := range []Ref{True, False} {
		if got, _ := e.Exists(term, 0); got != term {
			t.Fatal("terminals are fixed points")
		}
	}
}

func TestSetVar(t *testing.T) {
	e := New(4, 0)
	x, _ := e.Var(0)
	nx, _ := e.Not(x)
	// Setting bit 0 to 1 on packets with bit0=0 yields packets with
	// bit0=1 (the write rule flips, not filters).
	got, err := e.SetVar(nx, 0, true)
	if err != nil || got != x {
		t.Fatalf("SetVar(¬x, x:=1) = %d, want x=%d", got, x)
	}
	// Count is preserved for full sets.
	if e.SatCount(got) != e.SatCount(nx) {
		t.Fatal("write rule must preserve the packet count")
	}
	// Setting preserves other constraints.
	y, _ := e.Var(1)
	f, _ := e.And(nx, y)
	got, _ = e.SetVar(f, 0, true)
	want, _ := e.And(x, y)
	if got != want {
		t.Fatalf("SetVar kept wrong constraints: %d want %d", got, want)
	}
}

func TestClearCachePreservesSemantics(t *testing.T) {
	e := New(4, 0)
	x, y := mustVar(t, e, 0), mustVar(t, e, 1)
	before, _ := e.And(x, y)
	e.ClearCache()
	after, _ := e.And(x, y)
	if before != after {
		t.Fatal("ClearCache must not change canonical results")
	}
}
