package bdd

import (
	"bytes"
	"testing"
)

// fuzzBuild interprets ops as a tiny stack program over an 8-variable
// engine, yielding a deterministic set of refs for round-trip fuzzing.
func fuzzBuild(t interface{ Skip(...any) }, e *Engine, ops []byte) []Ref {
	stack := []Ref{True}
	push := func(r Ref) {
		stack = append(stack, r)
		if len(stack) > 16 {
			stack = stack[1:]
		}
	}
	top := func() Ref { return stack[len(stack)-1] }
	for _, op := range ops {
		var err error
		var r Ref
		switch op % 4 {
		case 0:
			r, err = e.Var(int(op/4) % 8)
		case 1:
			r, err = e.Not(top())
		case 2:
			if len(stack) < 2 {
				continue
			}
			r, err = e.And(stack[len(stack)-1], stack[len(stack)-2])
		case 3:
			if len(stack) < 2 {
				continue
			}
			r, err = e.Or(stack[len(stack)-1], stack[len(stack)-2])
		}
		if err != nil {
			t.Skip("engine limit reached")
		}
		push(r)
	}
	return stack
}

// FuzzSerializeRoundTrip builds arbitrary functions, round-trips them
// through both the per-ref codec and the set codec into a second engine,
// and cross-checks the three decodings against each other.
func FuzzSerializeRoundTrip(f *testing.F) {
	f.Add([]byte{0, 4, 8, 2, 1, 3})
	f.Add([]byte{1, 1, 1, 1})
	f.Add(bytes.Repeat([]byte{0, 2}, 40))
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		a := New(8, 1<<16)
		refs := fuzzBuild(t, a, ops)

		b := New(8, 1<<16)
		roots, err := b.DeserializeSet(a.SerializeSet(refs))
		if err != nil {
			t.Fatalf("set round trip failed: %v", err)
		}
		if len(roots) != len(refs) {
			t.Fatalf("got %d roots for %d refs", len(roots), len(refs))
		}
		for i, r := range refs {
			one, err := b.Deserialize(a.Serialize(r))
			if err != nil {
				t.Fatalf("per-ref round trip failed: %v", err)
			}
			// Both codecs decode into the same engine, so canonicity makes
			// function equality ref equality.
			if one != roots[i] {
				t.Fatalf("codecs disagree on ref %d: %d vs %d", i, one, roots[i])
			}
		}
	})
}

// FuzzGCCacheRelocation is the relocation safety property: after a GC keeps
// an arbitrary subset of a fuzz-built ref set live, replaying the same
// program on the collected engine — where ops may be answered from
// relocated cache entries — must produce functions identical to a fresh
// engine that never collected. A wrong relocated hit would surface as a
// serialization mismatch.
func FuzzGCCacheRelocation(f *testing.F) {
	f.Add([]byte{0, 4, 8, 2, 1, 3}, uint8(1))
	f.Add(bytes.Repeat([]byte{0, 2, 3, 1}, 30), uint8(0b10101))
	f.Add([]byte{12, 1, 2, 16, 3, 1, 1, 2}, uint8(0xff))
	f.Fuzz(func(t *testing.T, ops []byte, keepMask uint8) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		e := New(8, 1<<16)
		refs := fuzzBuild(t, e, ops)
		var roots []Ref
		for i, r := range refs {
			if keepMask&(1<<(i%8)) != 0 {
				roots = append(roots, r)
			}
		}
		remap := e.GC(roots)
		for _, r := range roots {
			if remap(r) == False && r != False {
				// Only legal if the function itself is False.
				if e.SatCount(remap(r)) != 0 {
					t.Fatal("live root lost by GC")
				}
			}
		}
		// Replay on the collected engine (relocated cache in play) and on a
		// cold one; canonical serializations must agree ref-by-ref.
		got := fuzzBuild(t, e, ops)
		fresh := New(8, 1<<16)
		want := fuzzBuild(t, fresh, ops)
		if len(got) != len(want) {
			t.Fatalf("replay produced %d refs, fresh %d", len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(e.Serialize(got[i]), fresh.Serialize(want[i])) {
				t.Fatalf("ref %d differs after relocated-cache replay", i)
			}
		}
	})
}

// FuzzDeserializeSet throws arbitrary bytes at the wire decoder: it must
// reject corruption with an error, never panic or corrupt the engine.
func FuzzDeserializeSet(f *testing.F) {
	seed := New(8, 0)
	x, _ := seed.Var(1)
	y, _ := seed.Var(6)
	g, _ := seed.And(x, y)
	f.Add(seed.SerializeSet([]Ref{g, x}))
	f.Add(seed.Serialize(g))
	f.Add([]byte{})
	f.Add([]byte{0xd3, 0xea, 0xc9, 0x9a, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		e := New(8, 1<<16)
		v, err := e.Var(3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.DeserializeSet(data); err != nil {
			_ = err // corruption detected: fine
		}
		// Whatever the decoder did, the engine must still be sane.
		nv, err := e.Not(v)
		if err != nil {
			t.Fatal(err)
		}
		back, err := e.Not(nv)
		if err != nil {
			t.Fatal(err)
		}
		if back != v {
			t.Fatalf("engine corrupted after decode: !!v = %d, v = %d", back, v)
		}

		// The session path shares the decoder; Accept/Materialize must be
		// equally panic-free on garbage.
		table := NewWireTable()
		if ok, err := table.Accept(data, 8); err == nil && ok {
			_ = table.Materialize(e, data)
		}
	})
}
