package bdd

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// buildWorkload deterministically builds one moderately-sized predicate per
// worker index: a disjunction of cubes over a 24-variable space, mixed with
// Not/Exists/Xor so every cached operation type is exercised.
func buildWorkload(t testing.TB, e *Engine, worker int) Ref {
	acc := False
	for c := 0; c < 40; c++ {
		cube := True
		for v := 0; v < 24; v++ {
			// A cheap deterministic pseudo-random bit pattern.
			h := (worker*2654435761 + c*40503 + v*9973) >> 3
			switch h % 3 {
			case 0:
				lit, err := e.Var(v)
				if err != nil {
					t.Fatal(err)
				}
				cube, err = e.And(cube, lit)
				if err != nil {
					t.Fatal(err)
				}
			case 1:
				lit, err := e.NVar(v)
				if err != nil {
					t.Fatal(err)
				}
				cube, err = e.And(cube, lit)
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		var err error
		acc, err = e.Or(acc, cube)
		if err != nil {
			t.Fatal(err)
		}
	}
	neg, err := e.Not(acc)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := e.Exists(acc, worker%24)
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.Xor(neg, ex)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Or(acc, x)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestConcurrentHammer drives one shared engine from many goroutines — the
// exact pattern ComputeDP and DPRound use after the parallelization — and
// checks every result is byte-identical to a sequential single-goroutine
// build of the same function. Run under -race this also proves the striped
// unique table, sharded cache, and chunked allocation are data-race-free.
func TestConcurrentHammer(t *testing.T) {
	const workers = 12

	// Reference: sequential builds in a private engine each.
	want := make([][]byte, workers)
	for i := 0; i < workers; i++ {
		ref := New(24, 0)
		want[i] = ref.Serialize(buildWorkload(t, ref, i))
	}

	for round := 0; round < 4; round++ {
		e := New(24, 0)
		got := make([][]byte, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r := buildWorkload(t, e, i)
				got[i] = e.Serialize(r)
			}(i)
		}
		wg.Wait()
		for i := 0; i < workers; i++ {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("round %d worker %d: concurrent result differs from sequential build", round, i)
			}
		}
		// The set of nodes ever created is the union of the issued
		// operations' result DAGs — independent of interleaving.
		seq := New(24, 0)
		for i := 0; i < workers; i++ {
			buildWorkload(t, seq, i)
		}
		if e.NodeCount() != seq.NodeCount() {
			t.Fatalf("round %d: concurrent NodeCount %d != sequential %d", round, e.NodeCount(), seq.NodeCount())
		}
	}
}

// TestConcurrentDeserialize re-encodes serialized packets into one engine
// from many goroutines, as DeliverPackets/DPRound do.
func TestConcurrentDeserialize(t *testing.T) {
	src := New(24, 0)
	payloads := make([][]byte, 16)
	for i := range payloads {
		payloads[i] = src.Serialize(buildWorkload(t, src, i))
	}

	dst := New(24, 0)
	refs := make([]Ref, len(payloads))
	var wg sync.WaitGroup
	for i := range payloads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := dst.Deserialize(payloads[i])
			if err != nil {
				t.Error(err)
				return
			}
			refs[i] = r
		}(i)
	}
	wg.Wait()
	for i, r := range refs {
		if !bytes.Equal(dst.Serialize(r), payloads[i]) {
			t.Fatalf("payload %d: round trip through concurrent engine changed the function", i)
		}
	}
}

// TestConcurrentClearCache interleaves ClearCache with operations; results
// must stay correct because the unique table (canonicity) is untouched.
func TestConcurrentClearCache(t *testing.T) {
	e := New(24, 0)
	stop := make(chan struct{})
	clearerDone := make(chan struct{})
	go func() {
		defer close(clearerDone)
		for {
			select {
			case <-stop:
				return
			default:
				e.ClearCache()
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ref := New(24, 0)
			want := ref.Serialize(buildWorkload(t, ref, i))
			if got := e.Serialize(buildWorkload(t, e, i)); !bytes.Equal(got, want) {
				t.Errorf("worker %d: result changed under concurrent ClearCache", i)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	<-clearerDone
}

// TestConcurrentMaxNodes checks the node limit is enforced exactly under
// concurrent allocation: either an op errors with ErrNodeTableFull or the
// final count respects the cap — never an overshoot.
func TestConcurrentMaxNodes(t *testing.T) {
	const limit = 200
	e := New(24, limit)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for c := 0; c < 64; c++ {
				cube := True
				for v := 0; v < 24; v++ {
					if (i*64+c)>>(v%8)&1 == 1 {
						lit, err := e.Var(v)
						if err != nil {
							return // table full — expected
						}
						cube, err = e.And(cube, lit)
						if err != nil {
							return
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if e.NodeCount() > limit {
		t.Fatalf("NodeCount %d exceeds limit %d", e.NodeCount(), limit)
	}
}

// TestGCAfterConcurrentBuild runs a stop-the-world GC after a parallel
// build and checks the survivors are intact.
func TestGCAfterConcurrentBuild(t *testing.T) {
	e := New(24, 0)
	const workers = 8
	refs := make([]Ref, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			refs[i] = buildWorkload(t, e, i)
		}(i)
	}
	wg.Wait()

	before := make([][]byte, workers)
	for i, r := range refs {
		before[i] = e.Serialize(r)
	}
	// Keep only the even workers' roots.
	var roots []Ref
	for i := 0; i < workers; i += 2 {
		roots = append(roots, refs[i])
	}
	remap := e.GC(roots)
	for i := 0; i < workers; i += 2 {
		nr := remap(refs[i])
		if got := e.Serialize(nr); !bytes.Equal(got, before[i]) {
			t.Fatalf("worker %d: function changed across GC", i)
		}
	}

	// And the engine keeps working in parallel after the GC.
	wg = sync.WaitGroup{}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := buildWorkload(t, e, i)
			if got := e.Serialize(r); !bytes.Equal(got, before[i]) {
				t.Errorf("worker %d: post-GC rebuild differs", i)
			}
		}(i)
	}
	wg.Wait()
}

func BenchmarkParallelApply(b *testing.B) {
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", procs), func(b *testing.B) {
			e := New(24, 0)
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					buildWorkload(b, e, i%16)
					i++
				}
			})
		})
	}
}
