package synth

import (
	"testing"

	"s2/internal/config"
	"s2/internal/topology"
)

func TestFatTreeValidation(t *testing.T) {
	for _, k := range []int{0, 1, 3, -2} {
		if _, err := FatTree(FatTreeOptions{K: k}); err == nil {
			t.Errorf("k=%d should fail", k)
		}
	}
}

func TestFatTreeParsesAndConnects(t *testing.T) {
	texts, err := FatTree(FatTreeOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(texts) != FatTreeSize(4) {
		t.Fatalf("generated %d configs, want %d", len(texts), FatTreeSize(4))
	}
	snap, err := config.ParseTexts(texts)
	if err != nil {
		t.Fatalf("generated configs must parse cleanly: %v", err)
	}
	net, err := topology.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Warnings) != 0 {
		t.Fatalf("topology warnings: %v", net.Warnings)
	}
	// k=4: 4 cores, 8 aggs, 8 edges; 32 pod links + 16 core links.
	if net.EdgeCount() != 32 {
		t.Fatalf("edges = %d, want 32", net.EdgeCount())
	}
	// Degree checks: each edge switch has k/2=2 uplinks; aggs have 4.
	if got := len(net.Neighbors("edge-0-0")); got != 2 {
		t.Errorf("edge-0-0 degree = %d", got)
	}
	if got := len(net.Neighbors("agg-0-0")); got != 4 {
		t.Errorf("agg-0-0 degree = %d", got)
	}
	if got := len(net.Neighbors("core-0")); got != 4 {
		t.Errorf("core-0 degree = %d", got)
	}
	// Every edge announces exactly one network.
	dev := snap.Devices["edge-1-1"]
	if dev.BGP == nil || len(dev.BGP.Networks) != 1 || dev.BGP.MaxPaths != 64 {
		t.Fatalf("edge BGP config: %+v", dev.BGP)
	}
	// Unique ASNs.
	asns := map[uint32]bool{}
	for _, d := range snap.Devices {
		if asns[d.BGP.ASN] {
			t.Fatalf("duplicate ASN %d", d.BGP.ASN)
		}
		asns[d.BGP.ASN] = true
	}
}

func TestFatTreePrefixesPerEdge(t *testing.T) {
	texts, err := FatTree(FatTreeOptions{K: 4, PrefixesPerEdge: 3})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := config.ParseTexts(texts)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(snap.Devices["edge-0-0"].BGP.Networks); got != 3 {
		t.Fatalf("networks per edge = %d", got)
	}
	// Distinct prefixes across all edges.
	seen := map[string]bool{}
	for _, d := range snap.Devices {
		for _, p := range d.BGP.Networks {
			if seen[p.String()] {
				t.Fatalf("duplicate announced prefix %v", p)
			}
			seen[p.String()] = true
		}
	}
}

func TestFatTreeWithACL(t *testing.T) {
	texts, err := FatTree(FatTreeOptions{K: 4, WithACL: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := config.ParseTexts(texts)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, d := range snap.Devices {
		if len(d.ACLs) > 0 {
			found = true
			if d.Interfaces["vlan10"].OutACL == "" {
				t.Error("ACL must be applied to the host port")
			}
		}
	}
	if !found {
		t.Fatal("WithACL should add an ACL somewhere")
	}
}

func TestFatTreeSizeAndEstimate(t *testing.T) {
	if FatTreeSize(4) != 20 || FatTreeSize(40) != 2000 || FatTreeSize(90) != 10125 {
		t.Error("FatTreeSize formula (paper sizes: FatTree40=2000, FatTree90=10125)")
	}
	if FatTreeRouteEstimate(4, 1) != 8*20 {
		t.Errorf("route estimate = %d", FatTreeRouteEstimate(4, 1))
	}
}

func TestDCNValidation(t *testing.T) {
	if _, err := DCN(DCNOptions{}); err == nil {
		t.Error("zero options should fail")
	}
	if _, err := DCN(DCNOptions{Clusters: 121, TORsPerCluster: 1, FabricWidth: 1, CoreWidth: 1}); err == nil {
		t.Error("too many clusters should fail")
	}
}

func defaultDCN() DCNOptions {
	return DCNOptions{
		Clusters:        2,
		TORsPerCluster:  4,
		FabricWidth:     2,
		CoreWidth:       2,
		DeepClusters:    true,
		WithAggregation: true,
	}
}

func TestDCNParsesAndConnects(t *testing.T) {
	opts := defaultDCN()
	texts, err := DCN(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(texts) != DCNSize(opts) {
		t.Fatalf("generated %d configs, want %d", len(texts), DCNSize(opts))
	}
	snap, err := config.ParseTexts(texts)
	if err != nil {
		t.Fatalf("generated configs must parse cleanly: %v", err)
	}
	net, err := topology.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Warnings) != 0 {
		t.Fatalf("topology warnings: %v", net.Warnings)
	}

	// Cluster 0 is 3 layers; cluster 1 is 5 layers (DeepClusters).
	if _, ok := snap.Devices["c0-l2-s0"]; !ok {
		t.Fatal("cluster 0 should have layer 2")
	}
	if _, ok := snap.Devices["c0-l3-s0"]; ok {
		t.Fatal("cluster 0 should stop at layer 2")
	}
	if _, ok := snap.Devices["c1-l4-s0"]; !ok {
		t.Fatal("cluster 1 should have layer 4")
	}

	// Layer-shared ASNs.
	if snap.Devices["c0-l0-s0"].BGP.ASN != snap.Devices["c1-l0-s1"].BGP.ASN {
		t.Error("same-layer switches must share an ASN")
	}
	if snap.Devices["c0-l0-s0"].BGP.ASN == snap.Devices["c0-l1-s0"].BGP.ASN {
		t.Error("different layers must differ in ASN")
	}

	// Five vendors present.
	vendors := map[config.Vendor]bool{}
	for _, d := range snap.Devices {
		vendors[d.Vendor] = true
	}
	if len(vendors) != 5 {
		t.Errorf("vendors used = %v, want all 5", vendors)
	}

	// AS_PATH overwrite on non-TOR layers.
	mid := snap.Devices["c0-l1-s0"]
	if _, ok := mid.RouteMaps["DOWN_EXPORT"]; !ok {
		t.Error("fabric switches need the overwrite route-map")
	}
	// Aggregation at cluster tops only.
	top := snap.Devices["c0-l2-s0"]
	if len(top.BGP.Aggregates) == 0 || !top.BGP.Aggregates[0].SummaryOnly {
		t.Errorf("cluster top should aggregate: %+v", top.BGP.Aggregates)
	}
	if len(snap.Devices["c0-l0-s0"].BGP.Aggregates) != 0 {
		t.Error("TORs must not aggregate")
	}
	// Core community policy.
	core := snap.Devices["dcncore-s0"]
	if _, ok := core.RouteMaps["PREFER_AGG"]; !ok {
		t.Error("core needs the community import policy")
	}
	// Heterogeneous ECMP.
	if snap.Devices["c0-l0-s0"].BGP.MaxPaths == snap.Devices["c0-l1-s0"].BGP.MaxPaths {
		t.Error("ECMP limits should differ across layers")
	}
}

func TestDCNWithoutAggregation(t *testing.T) {
	opts := defaultDCN()
	opts.WithAggregation = false
	texts, err := DCN(opts)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := config.ParseTexts(texts)
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range snap.Devices {
		if len(d.BGP.Aggregates) != 0 {
			t.Fatalf("%s has aggregates with aggregation disabled", name)
		}
	}
}

func TestDCNUniquePrefixes(t *testing.T) {
	texts, err := DCN(defaultDCN())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := config.ParseTexts(texts)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for name, d := range snap.Devices {
		for _, p := range d.BGP.Networks {
			if prev, dup := seen[p.String()]; dup {
				t.Fatalf("prefix %v announced by both %s and %s", p, prev, name)
			}
			seen[p.String()] = name
		}
	}
}

func TestDCNLinkSubnetsUnique(t *testing.T) {
	texts, err := DCN(defaultDCN())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := config.ParseTexts(texts)
	if err != nil {
		t.Fatal(err)
	}
	// Each /31 appears on exactly two interfaces.
	count := map[string]int{}
	for _, d := range snap.Devices {
		for _, ifc := range d.Interfaces {
			if ifc.Subnet.Len == 31 {
				count[ifc.Subnet.String()]++
			}
		}
	}
	for subnet, c := range count {
		if c != 2 {
			t.Fatalf("subnet %s appears %d times, want 2", subnet, c)
		}
	}
}
