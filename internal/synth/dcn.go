package synth

import (
	"fmt"
	"strings"

	"s2/internal/config"
	"s2/internal/route"
)

// DCNOptions describes the "real DCN"-like workload of §2.3. The generated
// network is a set of Clos clusters of differing depth joined by a shared
// core layer, with:
//
//   - per-layer shared ASNs (65001 + layer), forcing AS_PATH overwrite
//     policies on downward exports so same-layer ASN repetition does not
//     drop routes;
//   - each TOR announcing one business VLAN /24 and one management
//     loopback /32;
//   - cluster-top switches aggregating their cluster's VLAN /16 and
//     loopback /24 (summary-only) and tagging the aggregates with
//     community 65000:100;
//   - core switches preferring tagged aggregates via a community-matched
//     import policy (local-preference 150);
//   - heterogeneous ECMP maximum-paths per layer; and
//   - the five vendor dialects assigned round-robin.
type DCNOptions struct {
	// Clusters is the number of Clos clusters (>= 1).
	Clusters int
	// TORsPerCluster is the layer-0 width of each cluster (>= 1).
	TORsPerCluster int
	// FabricWidth is the width of every intermediate layer (>= 1).
	FabricWidth int
	// CoreWidth is the width of the shared DCN core layer (>= 1).
	CoreWidth int
	// DeepClusters makes every second cluster 5 layers deep instead
	// of 3, reproducing the coexistence of generations (§2.3).
	DeepClusters bool
	// WithAggregation enables cluster-top route aggregation (default in
	// the real DCN; turning it off reproduces the FatTree-like route
	// explosion the paper contrasts against in §5.4).
	WithAggregation bool
	// VLANsPerTOR is the number of business /24s each TOR announces
	// (default 1). The real DCN carries ~12K routes per switch (§2.3);
	// raising this restores a route-dominated memory profile at small
	// switch counts.
	VLANsPerTOR int
}

// vendorCycle assigns the five dialects round-robin.
var vendorCycle = []config.Vendor{
	config.VendorAlpha, config.VendorBravo, config.VendorCharlie,
	config.VendorDelta, config.VendorEcho,
}

// maxPathsByLayer reproduces the heterogeneous ECMP configuration: TORs
// use wide multipath, upper layers progressively narrower (§2.3, "even for
// switches at the same layer, they may be configured with different
// maximum numbers of equal-cost paths" — we vary by layer and parity).
func maxPathsByLayer(layer, index int) int {
	base := []int{64, 32, 16, 16, 8}
	mp := 8
	if layer < len(base) {
		mp = base[layer]
	}
	if index%2 == 1 && mp > 4 {
		mp /= 2
	}
	return mp
}

// DCN synthesizes the DCN-like workload. Returns hostname → config text.
func DCN(opts DCNOptions) (map[string]string, error) {
	if opts.Clusters < 1 || opts.TORsPerCluster < 1 || opts.FabricWidth < 1 || opts.CoreWidth < 1 {
		return nil, fmt.Errorf("synth: DCN options must all be >= 1: %+v", opts)
	}
	if opts.Clusters > 120 {
		return nil, fmt.Errorf("synth: at most 120 clusters (addressing limit), got %d", opts.Clusters)
	}
	if opts.VLANsPerTOR == 0 {
		opts.VLANsPerTOR = 1
	}
	if opts.TORsPerCluster*opts.VLANsPerTOR > 256 {
		return nil, fmt.Errorf("synth: TORsPerCluster×VLANsPerTOR must be <= 256, got %d",
			opts.TORsPerCluster*opts.VLANsPerTOR)
	}

	b := newConfigBuilder()

	// Build the switch inventory: names[cluster][layer][i]; core layer is
	// cluster -1 in spirit, stored separately.
	type devInfo struct {
		name     string
		layer    int
		cluster  int
		index    int
		vendor   config.Vendor
		announce []route.Prefix // network statements (TORs)
		loopback route.Prefix
	}
	var devices []*devInfo
	byName := map[string]*devInfo{}
	devCount := 0
	newDev := func(name string, cluster, layer, index int) *devInfo {
		d := &devInfo{
			name: name, layer: layer, cluster: cluster, index: index,
			vendor:   vendorCycle[devCount%len(vendorCycle)],
			loopback: route.MakePrefix(route.MustParseAddr("192.168.0.0")+uint32(devCount)+1, 32),
		}
		devCount++
		devices = append(devices, d)
		byName[name] = d
		return d
	}

	clusters := make([][][]*devInfo, opts.Clusters)
	for c := 0; c < opts.Clusters; c++ {
		layers := 3
		if opts.DeepClusters && c%2 == 1 {
			layers = 5
		}
		clusters[c] = make([][]*devInfo, layers)
		for l := 0; l < layers; l++ {
			width := opts.FabricWidth
			if l == 0 {
				width = opts.TORsPerCluster
			}
			for i := 0; i < width; i++ {
				name := fmt.Sprintf("c%d-l%d-s%d", c, l, i)
				clusters[c][l] = append(clusters[c][l], newDev(name, c, l, i))
			}
		}
		// TOR announcements.
		for i, tor := range clusters[c][0] {
			for v := 0; v < opts.VLANsPerTOR; v++ {
				vlan := route.MakePrefix(route.MustParseAddr("10.128.0.0")+
					uint32(c)<<16+uint32(i*opts.VLANsPerTOR+v)<<8, 24)
				tor.announce = append(tor.announce, vlan)
			}
		}
		// Intra-cluster links: full bipartite between adjacent layers.
		for l := 0; l+1 < layers; l++ {
			for _, lo := range clusters[c][l] {
				for _, hi := range clusters[c][l+1] {
					b.link(lo.name, hi.name)
				}
			}
		}
	}
	// Core layer: the DCN-wide top; the core "layer number" is one above
	// the deepest cluster so layer ASNs stay unique.
	coreLayer := 3
	if opts.DeepClusters {
		coreLayer = 5
	}
	var coreDevs []*devInfo
	for i := 0; i < opts.CoreWidth; i++ {
		coreDevs = append(coreDevs, newDev(fmt.Sprintf("dcncore-s%d", i), -1, coreLayer, i))
	}
	for c := 0; c < opts.Clusters; c++ {
		top := clusters[c][len(clusters[c])-1]
		for _, t := range top {
			for _, core := range coreDevs {
				b.link(t.name, core.name)
			}
		}
	}

	asnOf := func(d *devInfo) uint32 { return 65001 + uint32(d.layer) }

	texts := make(map[string]string, len(devices))
	for _, d := range devices {
		var cfg strings.Builder
		fmt.Fprintf(&cfg, "! vendor: %s\nhostname %s\n!\n", d.vendor, d.name)
		for _, l := range b.linksOf(d.name) {
			fmt.Fprintf(&cfg, "interface %s\n ip address %s/31\n description link to %s\n",
				l.ifc, route.FormatAddr(l.ip), l.peer)
		}
		fmt.Fprintf(&cfg, "interface lo0\n ip address %s/32\n", route.FormatAddr(d.loopback.Addr))
		for v, pfx := range d.announce {
			fmt.Fprintf(&cfg, "interface vlan%d\n ip address %s/24\n", 10+v, route.FormatAddr(pfx.Addr+1))
		}

		isClusterTop := d.cluster >= 0 && d.layer == len(clusters[d.cluster])-1
		isCore := d.cluster < 0

		// Policy objects. The design follows production Clos practice:
		//
		//   - Down-exports carry the FROM_UP community (65000:999);
		//     non-core layers also AS_PATH-overwrite them (§2.3) so
		//     repeated per-layer ASNs do not drop routes.
		//   - Up-exports filter FROM_UP routes (valley-free enforcement:
		//     a route learned from above never goes back up).
		//   - Imports from below get local-preference 200 (prefer-down),
		//     so reflected routes can never tie with cluster-internal
		//     paths — without this the overwrite erases path length and
		//     the control plane oscillates.
		hasUp, hasDown := false, false
		for _, l := range b.linksOf(d.name) {
			if byName[l.peer].layer > d.layer {
				hasUp = true
			}
			if byName[l.peer].layer < d.layer {
				hasDown = true
			}
		}
		fmt.Fprintf(&cfg, "!\nip community-list standard CL_FROM_UP permit 65000:999\n")
		if hasDown {
			fmt.Fprintf(&cfg, "route-map DOWN_EXPORT permit 10\n")
			if !isCore {
				fmt.Fprintf(&cfg, " set as-path overwrite %d\n", asnOf(d))
			}
			fmt.Fprintf(&cfg, " set community 65000:999 additive\n")
			fmt.Fprintf(&cfg, "route-map PREFER_DOWN permit 10\n set local-preference 200\n")
		}
		if hasUp {
			fmt.Fprintf(&cfg, "route-map UP_EXPORT deny 10\n match community CL_FROM_UP\n")
			fmt.Fprintf(&cfg, "route-map UP_EXPORT permit 20\n")
		}
		if isClusterTop && opts.WithAggregation {
			fmt.Fprintf(&cfg, "route-map AGG_TAG permit 10\n set community 65000:100\n")
		}
		if isCore {
			fmt.Fprintf(&cfg, "ip community-list standard CL_AGG permit 65000:100\n")
			fmt.Fprintf(&cfg, "route-map PREFER_AGG permit 10\n match community CL_AGG\n set local-preference 250\n")
			fmt.Fprintf(&cfg, "route-map PREFER_AGG permit 20\n set local-preference 200\n")
		}

		fmt.Fprintf(&cfg, "!\nrouter bgp %d\n router-id %s\n maximum-paths %d\n",
			asnOf(d), route.FormatAddr(uint32(0x02000000)+d.loopback.Addr-route.MustParseAddr("192.168.0.0")), maxPathsByLayer(d.layer, d.index))
		if !isCore {
			// Core loopbacks stay out of the fabric: cores are not
			// interconnected, so a core-to-core loopback route cannot
			// exist under valley-free export filtering (cores are
			// managed out of band).
			fmt.Fprintf(&cfg, " network %s\n", d.loopback)
		}
		for _, pfx := range d.announce {
			fmt.Fprintf(&cfg, " network %s\n", pfx)
		}
		if isClusterTop && opts.WithAggregation {
			vlanAgg := route.MakePrefix(route.MustParseAddr("10.128.0.0")+uint32(d.cluster)<<16, 16)
			fmt.Fprintf(&cfg, " aggregate-address %s summary-only attribute-map AGG_TAG\n", vlanAgg)
		}
		for _, l := range b.linksOf(d.name) {
			peer := byName[l.peer]
			fmt.Fprintf(&cfg, " neighbor %s remote-as %d\n", route.FormatAddr(l.peerIP), asnOf(peer))
			if peer.layer < d.layer {
				// Downward session: tag (and, below the core,
				// AS_PATH-overwrite) exports; prefer what comes up.
				fmt.Fprintf(&cfg, " neighbor %s route-map DOWN_EXPORT out\n", route.FormatAddr(l.peerIP))
				if isCore {
					fmt.Fprintf(&cfg, " neighbor %s route-map PREFER_AGG in\n", route.FormatAddr(l.peerIP))
				} else {
					fmt.Fprintf(&cfg, " neighbor %s route-map PREFER_DOWN in\n", route.FormatAddr(l.peerIP))
				}
			}
			if peer.layer > d.layer {
				// Upward session: valley-free export filter, and
				// tolerate own-ASN paths (same-layer ASNs repeat
				// across clusters, §2.3).
				fmt.Fprintf(&cfg, " neighbor %s route-map UP_EXPORT out\n", route.FormatAddr(l.peerIP))
				fmt.Fprintf(&cfg, " neighbor %s allowas-in\n", route.FormatAddr(l.peerIP))
			}
		}
		texts[d.name] = cfg.String()
	}
	return texts, nil
}

// DCNSize returns the number of switches the options generate.
func DCNSize(opts DCNOptions) int {
	total := opts.CoreWidth
	for c := 0; c < opts.Clusters; c++ {
		layers := 3
		if opts.DeepClusters && c%2 == 1 {
			layers = 5
		}
		total += opts.TORsPerCluster + (layers-1)*opts.FabricWidth
	}
	return total
}
