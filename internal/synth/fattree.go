// Package synth generates the paper's two workloads as configuration text
// consumed by our own parser, so every experiment exercises the full
// pipeline from vendor syntax to verification:
//
//   - FatTree(k): the synthesized ACORN-style FatTrees of §5.2 — eBGP
//     everywhere, one ASN per switch, ECMP up to 64 paths, one /24
//     announced per edge switch.
//   - DCN(spec): a "real DCN"-like network per §2.3 — multi-layer Clos
//     clusters of differing depth, per-layer shared ASNs, AS_PATH overwrite
//     on downward exports, route aggregation with community tagging at the
//     cluster tops, heterogeneous ECMP limits, and five vendor dialects.
package synth

import (
	"fmt"
	"strings"

	"s2/internal/route"
)

// FatTreeOptions tunes the generator.
type FatTreeOptions struct {
	// K is the pod count (even, >= 2). Switch count is 5k²/4.
	K int
	// MaxPaths is the ECMP limit on every switch (paper: 64).
	MaxPaths int
	// PrefixesPerEdge is how many /24s each edge switch announces
	// (default 1).
	PrefixesPerEdge int
	// WithACL adds a deny ACL on one edge switch's host port, creating a
	// deliberate blackhole for property-checking demos.
	WithACL bool
}

// FatTree synthesizes configuration texts (hostname → config) for a k-pod
// FatTree. Naming follows core-<i>, agg-<pod>-<i>, edge-<pod>-<i>, which
// the expert partition scheme and the load estimator recognize.
func FatTree(opts FatTreeOptions) (map[string]string, error) {
	k := opts.K
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("synth: FatTree k must be even and >= 2, got %d", k)
	}
	if opts.MaxPaths == 0 {
		opts.MaxPaths = 64
	}
	if opts.PrefixesPerEdge == 0 {
		opts.PrefixesPerEdge = 1
	}
	half := k / 2

	// Switch inventory and ASN/router-id assignment.
	type sw struct {
		name string
		asn  uint32
		id   int
	}
	var cores, all []*sw
	aggs := make([][]*sw, k)
	edges := make([][]*sw, k)
	next := 0
	newSw := func(name string) *sw {
		s := &sw{name: name, asn: 1000000 + uint32(next), id: next}
		next++
		all = append(all, s)
		return s
	}
	for i := 0; i < half*half; i++ {
		cores = append(cores, newSw(fmt.Sprintf("core-%d", i)))
	}
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			aggs[p] = append(aggs[p], newSw(fmt.Sprintf("agg-%d-%d", p, i)))
		}
		for i := 0; i < half; i++ {
			edges[p] = append(edges[p], newSw(fmt.Sprintf("edge-%d-%d", p, i)))
		}
	}

	b := newConfigBuilder()
	// Pod-internal links: every edge to every agg in the pod.
	for p := 0; p < k; p++ {
		for _, e := range edges[p] {
			for _, a := range aggs[p] {
				b.link(e.name, a.name)
			}
		}
	}
	// Agg-to-core: agg i in each pod connects to cores [i*half, (i+1)*half).
	for p := 0; p < k; p++ {
		for i, a := range aggs[p] {
			for j := 0; j < half; j++ {
				b.link(a.name, cores[i*half+j].name)
			}
		}
	}

	asnOf := map[string]uint32{}
	for _, s := range all {
		asnOf[s.name] = s.asn
	}

	texts := make(map[string]string, len(all))
	edgeIdx := 0
	for _, s := range all {
		var cfg strings.Builder
		fmt.Fprintf(&cfg, "hostname %s\n!\n", s.name)
		for _, l := range b.linksOf(s.name) {
			fmt.Fprintf(&cfg, "interface %s\n ip address %s/31\n description link to %s\n",
				l.ifc, route.FormatAddr(l.ip), l.peer)
		}
		isEdge := strings.HasPrefix(s.name, "edge-")
		var announced []route.Prefix
		if isEdge {
			for v := 0; v < opts.PrefixesPerEdge; v++ {
				pfx := edgePrefix(edgeIdx, v)
				announced = append(announced, pfx)
				fmt.Fprintf(&cfg, "interface vlan%d\n ip address %s/24\n",
					10+v, route.FormatAddr(pfx.Addr+1))
			}
			if opts.WithACL && edgeIdx == 0 {
				// A deliberate misconfiguration: the first edge switch
				// drops traffic to its own prefix on the host port.
				fmt.Fprintf(&cfg, "ip access-list BLOCK_HOSTS\n deny ip any %s\n permit ip any any\n", announced[0])
				fmt.Fprintf(&cfg, "interface vlan10\n ip access-group BLOCK_HOSTS out\n")
			}
			edgeIdx++
		}
		fmt.Fprintf(&cfg, "!\nrouter bgp %d\n router-id %s\n maximum-paths %d\n",
			s.asn, route.FormatAddr(uint32(0x01000000+s.id)), opts.MaxPaths)
		for _, pfx := range announced {
			fmt.Fprintf(&cfg, " network %s\n", pfx)
		}
		for _, l := range b.linksOf(s.name) {
			fmt.Fprintf(&cfg, " neighbor %s remote-as %d\n", route.FormatAddr(l.peerIP), asnOf[l.peer])
		}
		texts[s.name] = cfg.String()
	}
	return texts, nil
}

// FatTreeSize returns the switch count of a k-pod FatTree (5k²/4).
func FatTreeSize(k int) int { return 5 * k * k / 4 }

// FatTreeRouteEstimate approximates the total route count of a k-pod
// FatTree with ECMP: each of the k²/2·prefixesPerEdge prefixes appears on
// nearly every one of the 5k²/4 switches.
func FatTreeRouteEstimate(k, prefixesPerEdge int) int64 {
	prefixes := int64(k) * int64(k) / 2 * int64(prefixesPerEdge)
	return prefixes * int64(FatTreeSize(k))
}

// edgePrefix allocates the v-th /24 announced by the globally e-th edge
// switch out of 10.128.0.0/9.
func edgePrefix(e, v int) route.Prefix {
	base := route.MustParseAddr("10.128.0.0")
	return route.MakePrefix(base+uint32(e*64+v)*256, 24)
}

// configBuilder allocates /31 link subnets and interface names.
type configBuilder struct {
	nextLink uint32
	links    map[string][]linkEnd
	ifCount  map[string]int
}

type linkEnd struct {
	ifc    string
	ip     uint32
	peer   string
	peerIP uint32
}

func newConfigBuilder() *configBuilder {
	return &configBuilder{links: map[string][]linkEnd{}, ifCount: map[string]int{}}
}

// link allocates a /31 between a and b out of 10.0.0.0/9.
func (b *configBuilder) link(a, c string) {
	base := route.MustParseAddr("10.0.0.0") + b.nextLink*2
	b.nextLink++
	ifa := fmt.Sprintf("eth%d", b.ifCount[a])
	ifc := fmt.Sprintf("eth%d", b.ifCount[c])
	b.ifCount[a]++
	b.ifCount[c]++
	b.links[a] = append(b.links[a], linkEnd{ifc: ifa, ip: base, peer: c, peerIP: base + 1})
	b.links[c] = append(b.links[c], linkEnd{ifc: ifc, ip: base + 1, peer: a, peerIP: base})
}

func (b *configBuilder) linksOf(name string) []linkEnd { return b.links[name] }
