package sim

import (
	"errors"
	"testing"

	"s2/internal/bgp"
	"s2/internal/config"
	"s2/internal/ospf"
	"s2/internal/route"
	"s2/internal/topology"
)

// fakePeer records relay calls, standing in for a sidecar RPC client.
type fakePeer struct {
	bgpCalls, lsaCalls int
	fail               bool
}

func (f *fakePeer) PullBGP(exporter, puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error) {
	f.bgpCalls++
	if f.fail {
		return nil, 0, false, errors.New("peer down")
	}
	return []bgp.Advertisement{}, 7, true, nil
}

func (f *fakePeer) PullLSAs(exporter, puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error) {
	f.lsaCalls++
	if f.fail {
		return nil, 0, false, errors.New("peer down")
	}
	return []*ospf.LSA{{Router: exporter}}, 3, true, nil
}

func TestShadowNodesRelayThroughPeer(t *testing.T) {
	peer := &fakePeer{}
	sb := ShadowBGPNode{Peer: peer, Name: "r9"}
	_, ver, fresh, err := sb.ExportsTo("r1", 0, false)
	if err != nil || !fresh || ver != 7 || peer.bgpCalls != 1 {
		t.Fatalf("shadow BGP relay: ver=%d fresh=%v calls=%d err=%v", ver, fresh, peer.bgpCalls, err)
	}
	so := ShadowOSPFNode{Peer: peer, Name: "r9"}
	lsas, ver, fresh, err := so.LSAsTo("r1", 0, false)
	if err != nil || !fresh || ver != 3 || len(lsas) != 1 || lsas[0].Router != "r9" {
		t.Fatalf("shadow OSPF relay: %v %d %v %v", lsas, ver, fresh, err)
	}
	// Errors propagate.
	peer.fail = true
	if _, _, _, err := sb.ExportsTo("r1", 0, false); err == nil {
		t.Fatal("shadow must propagate peer errors")
	}
	if _, _, _, err := so.LSAsTo("r1", 0, false); err == nil {
		t.Fatal("shadow must propagate peer errors")
	}
}

func TestRealNodesCallModelDirectly(t *testing.T) {
	dev, err := config.Parse("r1.cfg", `hostname r1
interface eth0
 ip address 10.0.0.0/31
interface vlan10
 ip address 10.8.0.1/24
router bgp 65001
 network 10.8.0.0/24
 neighbor 10.0.0.1 remote-as 65002
router ospf 1
`)
	if err != nil {
		t.Fatal(err)
	}
	sessions := []topology.BGPSession{{
		Local: "r1", Remote: "r2", LocalAS: 65001, RemoteAS: 65002,
		LocalIP:  route.MustParseAddr("10.0.0.0"),
		RemoteIP: route.MustParseAddr("10.0.0.1"),
	}}
	proc := bgp.NewProcess(dev, sessions, nil)
	proc.RunDecision()
	rn := RealBGPNode{P: proc}
	advs, _, fresh, err := rn.ExportsTo("r2", 0, false)
	if err != nil || !fresh || len(advs) != 1 {
		t.Fatalf("real BGP node: advs=%v fresh=%v err=%v", advs, fresh, err)
	}

	op := ospf.NewProcess(dev, nil, nil)
	ro := RealOSPFNode{P: op}
	lsas, _, fresh, err := ro.LSAsTo("r2", 0, false)
	if err != nil || !fresh || len(lsas) != 1 {
		t.Fatalf("real OSPF node: %v %v %v", lsas, fresh, err)
	}
}

func TestPullTracker(t *testing.T) {
	tr := NewPullTracker()
	st := tr.Get("a", "b")
	if st.Seen || st.Version != 0 {
		t.Fatal("fresh state")
	}
	st.Version, st.Seen = 5, true
	if got := tr.Get("a", "b"); got.Version != 5 || !got.Seen {
		t.Fatal("state must persist per pair")
	}
	if got := tr.Get("b", "a"); got.Seen {
		t.Fatal("pairs are directional")
	}
	tr.Reset()
	if got := tr.Get("a", "b"); got.Seen {
		t.Fatal("Reset must clear history")
	}
}
