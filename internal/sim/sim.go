// Package sim provides the node abstraction that decouples S2's
// distributed framework from the switch models (§3.1, "Decouple the
// distributed framework from the switch model"): the fixed-point engine
// pulls route updates through uniform exporter interfaces, and whether the
// exporter is a local ("real") process or a relay to another worker (a
// "shadow" node speaking through the sidecar) is invisible to the caller —
// the paper's Algorithm 1, lines 11–15.
package sim

import (
	"sync"

	"s2/internal/bgp"
	"s2/internal/ospf"
)

// BGPExporter is the pull surface of a BGP-speaking node: the same method
// set as *bgp.Process.ExportsTo, with an error channel for remote relays.
type BGPExporter interface {
	ExportsTo(puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error)
}

// LSAExporter is the pull surface of an OSPF-speaking node.
type LSAExporter interface {
	LSAsTo(puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error)
}

// PullPeer reaches the real node on another worker; the sidecar's RPC
// client implements it.
type PullPeer interface {
	PullBGP(exporter, puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error)
	PullLSAs(exporter, puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error)
}

// RealBGPNode wraps a local BGP process as an exporter.
type RealBGPNode struct{ P *bgp.Process }

// ExportsTo calls the wrapped model directly (Algorithm 1, line 13).
func (n RealBGPNode) ExportsTo(puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error) {
	advs, ver, fresh := n.P.ExportsTo(puller, since, seen)
	return advs, ver, fresh, nil
}

// ShadowBGPNode relays pulls to the real node on another worker
// (Algorithm 1, line 15).
type ShadowBGPNode struct {
	Peer PullPeer
	Name string // the real node's name
}

// ExportsTo relays the pull through the sidecar.
func (n ShadowBGPNode) ExportsTo(puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error) {
	return n.Peer.PullBGP(n.Name, puller, since, seen)
}

// RealOSPFNode wraps a local OSPF process as an LSA exporter.
type RealOSPFNode struct{ P *ospf.Process }

// LSAsTo calls the wrapped model directly.
func (n RealOSPFNode) LSAsTo(puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error) {
	lsas, ver, fresh := n.P.LSAsTo(puller, since, seen)
	return lsas, ver, fresh, nil
}

// ShadowOSPFNode relays LSA pulls to the real node on another worker.
type ShadowOSPFNode struct {
	Peer PullPeer
	Name string
}

// LSAsTo relays the pull through the sidecar.
func (n ShadowOSPFNode) LSAsTo(puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error) {
	return n.Peer.PullLSAs(n.Name, puller, since, seen)
}

// PullState tracks the last version a puller has seen from one exporter,
// enabling delta pulls.
type PullState struct {
	Version uint64
	Seen    bool
}

// PullTracker holds pull states keyed by (puller, exporter). It is safe
// for concurrent use: workers gather pulls for many local nodes in
// parallel, and Get's create-on-miss would otherwise race. Each PullState
// itself is only touched by the one (puller, exporter) pair's gather task,
// so the returned pointer needs no further locking.
type PullTracker struct {
	mu sync.Mutex
	m  map[[2]string]*PullState
}

// NewPullTracker returns an empty tracker.
func NewPullTracker() *PullTracker {
	return &PullTracker{m: make(map[[2]string]*PullState)}
}

// Get returns the state for (puller, exporter), creating it on first use.
func (t *PullTracker) Get(puller, exporter string) *PullState {
	key := [2]string{puller, exporter}
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.m[key]
	if !ok {
		st = &PullState{}
		t.m[key] = st
	}
	return st
}

// Reset forgets all pull history (between prefix shards).
func (t *PullTracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m = make(map[[2]string]*PullState)
}
