// Package policy evaluates routing policy — route-maps with their referenced
// prefix-lists, community-lists, and as-path lists — against candidate
// routes. It is the semantic core that Batfish implements per vendor; here
// a single evaluator consumes the vendor-independent model, with
// vendor-specific behaviours applied by the BGP process (see internal/bgp).
package policy

import (
	"s2/internal/config"
	"s2/internal/route"
)

// Result is the disposition of applying a policy to a route.
type Result uint8

const (
	// DenyRoute: the route is filtered.
	DenyRoute Result = iota
	// PermitRoute: the route passes, possibly transformed.
	PermitRoute
)

// Evaluator applies a device's route-maps. It is stateless and safe for
// concurrent use as long as the underlying device model is not mutated.
type Evaluator struct {
	dev *config.Device
}

// NewEvaluator returns an evaluator bound to a device's policy objects.
func NewEvaluator(dev *config.Device) *Evaluator {
	return &Evaluator{dev: dev}
}

// Apply evaluates the named route-map against r. The input route is never
// modified; when the route-map transforms the route, the returned route is
// a fresh copy. An empty name permits the route unchanged (no policy
// configured). A reference to an undefined route-map denies, matching the
// conservative behaviour verifiers adopt for broken references.
func (e *Evaluator) Apply(name string, r *route.Route) (*route.Route, Result) {
	if name == "" {
		return r, PermitRoute
	}
	rm, ok := e.dev.RouteMaps[name]
	if !ok {
		return nil, DenyRoute
	}
	for _, clause := range rm.Clauses {
		if !e.clauseMatches(clause, r) {
			continue
		}
		if clause.Action == config.Deny {
			return nil, DenyRoute
		}
		if len(clause.Sets) == 0 {
			return r, PermitRoute
		}
		out := r.Clone()
		for _, s := range clause.Sets {
			e.applySet(s, out)
		}
		return out, PermitRoute
	}
	// No clause matched: implicit deny.
	return nil, DenyRoute
}

// clauseMatches reports whether every match condition in the clause holds
// (AND semantics across match statements, as in IOS).
func (e *Evaluator) clauseMatches(c *config.RouteMapClause, r *route.Route) bool {
	for _, m := range c.Matches {
		switch m.Kind {
		case config.MatchPrefixList:
			pl, ok := e.dev.PrefixLists[m.Name]
			if !ok || !pl.Permits(r.Prefix) {
				return false
			}
		case config.MatchCommunityList:
			cl, ok := e.dev.CommunityLists[m.Name]
			if !ok || !cl.Permits(r.HasCommunity) {
				return false
			}
		case config.MatchASPathList:
			al, ok := e.dev.ASPathLists[m.Name]
			if !ok || !al.Permits(r.ASPath) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// applySet mutates out (a private copy) according to one set action.
func (e *Evaluator) applySet(s config.Set, out *route.Route) {
	switch s.Kind {
	case config.SetLocalPref:
		out.LocalPref = s.Value
	case config.SetMED:
		out.Metric = s.Value
	case config.SetCommunity:
		if s.Additive {
			for _, c := range s.Communities {
				if !out.HasCommunity(c) {
					out.Communities = append(out.Communities, c)
				}
			}
		} else {
			out.Communities = append([]route.Community(nil), s.Communities...)
		}
	case config.SetCommunityDelete:
		cl, ok := e.dev.CommunityLists[s.Name]
		if !ok {
			return
		}
		kept := out.Communities[:0:0]
		for _, c := range out.Communities {
			if !communityListMatchesOne(cl, c) {
				kept = append(kept, c)
			}
		}
		out.Communities = kept
	case config.SetASPathPrepend:
		out.ASPath = append(append([]uint32(nil), s.Prepend...), out.ASPath...)
	case config.SetASPathOverwrite:
		// The nonstandard AS_PATH overwrite from the paper's DCN (§2.3):
		// replace the whole path with the local ASN so repeated layer
		// ASNs do not cause route drops.
		out.ASPath = []uint32{s.Value}
	case config.SetOrigin:
		out.Origin = s.Origin
	}
}

// communityListMatchesOne reports whether a single community is permitted by
// the list when considered in isolation — the matching rule for
// "set comm-list NAME delete".
func communityListMatchesOne(cl *config.CommunityList, c route.Community) bool {
	has := func(x route.Community) bool { return x == c }
	for _, e := range cl.Entries {
		// Only single-community entries can match a single community.
		if len(e.Communities) == 1 && e.Matches(has) {
			return e.Action == config.Permit
		}
	}
	return false
}
