package policy

import (
	"testing"

	"s2/internal/config"
	"s2/internal/route"
)

// buildDevice parses a policy-only config for evaluator tests.
func buildDevice(t *testing.T, cfg string) *config.Device {
	t.Helper()
	dev, err := config.Parse("test.cfg", cfg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return dev
}

func candidate() *route.Route {
	return &route.Route{
		Prefix:      route.MustParsePrefix("10.8.0.0/24"),
		Protocol:    route.BGP,
		ASPath:      []uint32{65100, 65001},
		LocalPref:   100,
		Communities: []route.Community{route.MakeCommunity(65000, 100)},
	}
}

func TestApplyEmptyNamePermitsUnchanged(t *testing.T) {
	e := NewEvaluator(buildDevice(t, "hostname h\n"))
	r := candidate()
	out, res := e.Apply("", r)
	if res != PermitRoute || out != r {
		t.Fatal("empty policy must permit the identical route")
	}
}

func TestApplyUndefinedDenies(t *testing.T) {
	e := NewEvaluator(buildDevice(t, "hostname h\n"))
	if _, res := e.Apply("GHOST", candidate()); res != DenyRoute {
		t.Fatal("undefined route-map must deny")
	}
}

func TestFirstMatchWinsAndImplicitDeny(t *testing.T) {
	dev := buildDevice(t, `hostname h
ip prefix-list PL10 seq 10 permit 10.0.0.0/8 le 32
route-map RM permit 10
 match ip address prefix-list PL10
 set local-preference 300
route-map RM permit 20
 set local-preference 999
`)
	e := NewEvaluator(dev)
	out, res := e.Apply("RM", candidate())
	if res != PermitRoute || out.LocalPref != 300 {
		t.Fatalf("first clause should win: %v %v", out, res)
	}
	// A route outside 10/8 falls to clause 20 (no matches = match all).
	other := candidate()
	other.Prefix = route.MustParsePrefix("192.168.0.0/24")
	out, res = e.Apply("RM", other)
	if res != PermitRoute || out.LocalPref != 999 {
		t.Fatal("match-less clause should match everything")
	}

	devDeny := buildDevice(t, `hostname h
ip prefix-list PL10 seq 10 permit 10.0.0.0/8 le 32
route-map RM permit 10
 match ip address prefix-list PL10
`)
	e2 := NewEvaluator(devDeny)
	if _, res := e2.Apply("RM", other); res != DenyRoute {
		t.Fatal("route matching no clause must be denied")
	}
}

func TestDenyClause(t *testing.T) {
	dev := buildDevice(t, `hostname h
ip prefix-list PL10 seq 10 permit 10.0.0.0/8 le 32
route-map RM deny 10
 match ip address prefix-list PL10
route-map RM permit 20
`)
	e := NewEvaluator(dev)
	if _, res := e.Apply("RM", candidate()); res != DenyRoute {
		t.Fatal("deny clause")
	}
	other := candidate()
	other.Prefix = route.MustParsePrefix("192.168.0.0/24")
	if _, res := e.Apply("RM", other); res != PermitRoute {
		t.Fatal("non-matching route falls through deny clause")
	}
}

func TestMatchANDSemantics(t *testing.T) {
	dev := buildDevice(t, `hostname h
ip prefix-list PL10 seq 10 permit 10.0.0.0/8 le 32
ip community-list standard CL permit 65000:100
route-map RM permit 10
 match ip address prefix-list PL10
 match community CL
 set metric 7
`)
	e := NewEvaluator(dev)
	out, res := e.Apply("RM", candidate())
	if res != PermitRoute || out.Metric != 7 {
		t.Fatal("both matches hold → permit")
	}
	noComm := candidate()
	noComm.Communities = nil
	if _, res := e.Apply("RM", noComm); res != DenyRoute {
		t.Fatal("one failing match must deny (AND semantics)")
	}
}

func TestMatchASPath(t *testing.T) {
	dev := buildDevice(t, `hostname h
ip as-path access-list AP permit _65100_
route-map RM permit 10
 match as-path AP
`)
	e := NewEvaluator(dev)
	if _, res := e.Apply("RM", candidate()); res != PermitRoute {
		t.Fatal("as-path match")
	}
	r := candidate()
	r.ASPath = []uint32{1, 2}
	if _, res := e.Apply("RM", r); res != DenyRoute {
		t.Fatal("as-path non-match")
	}
}

func TestSetActionsDoNotMutateInput(t *testing.T) {
	dev := buildDevice(t, `hostname h
route-map RM permit 10
 set local-preference 500
 set metric 42
 set community 65000:500 additive
 set as-path prepend 65001 65001
 set origin egp
`)
	e := NewEvaluator(dev)
	in := candidate()
	out, res := e.Apply("RM", in)
	if res != PermitRoute {
		t.Fatal("permit expected")
	}
	if out == in {
		t.Fatal("transforming policy must copy the route")
	}
	if out.LocalPref != 500 || out.Metric != 42 || out.Origin != route.OriginEGP {
		t.Errorf("sets not applied: %+v", out)
	}
	if len(out.ASPath) != 4 || out.ASPath[0] != 65001 || out.ASPath[2] != 65100 {
		t.Errorf("prepend: %v", out.ASPath)
	}
	if len(out.Communities) != 2 || !out.HasCommunity(route.MakeCommunity(65000, 500)) {
		t.Errorf("additive community: %v", out.Communities)
	}
	// Input untouched.
	if in.LocalPref != 100 || len(in.ASPath) != 2 || len(in.Communities) != 1 {
		t.Fatal("input route was mutated")
	}
}

func TestSetCommunityReplace(t *testing.T) {
	dev := buildDevice(t, `hostname h
route-map RM permit 10
 set community 65000:1 65000:2
`)
	out, _ := NewEvaluator(dev).Apply("RM", candidate())
	if len(out.Communities) != 2 || out.HasCommunity(route.MakeCommunity(65000, 100)) {
		t.Fatalf("replace semantics: %v", out.Communities)
	}
}

func TestSetCommunityAdditiveNoDuplicate(t *testing.T) {
	dev := buildDevice(t, `hostname h
route-map RM permit 10
 set community 65000:100 additive
`)
	out, _ := NewEvaluator(dev).Apply("RM", candidate())
	if len(out.Communities) != 1 {
		t.Fatalf("additive must not duplicate: %v", out.Communities)
	}
}

func TestSetCommListDelete(t *testing.T) {
	dev := buildDevice(t, `hostname h
ip community-list standard CL permit 65000:100
route-map RM permit 10
 set comm-list CL delete
`)
	in := candidate()
	in.Communities = append(in.Communities, route.MakeCommunity(65000, 999))
	out, _ := NewEvaluator(dev).Apply("RM", in)
	if out.HasCommunity(route.MakeCommunity(65000, 100)) {
		t.Error("matched community should be deleted")
	}
	if !out.HasCommunity(route.MakeCommunity(65000, 999)) {
		t.Error("unmatched community should be kept")
	}
}

func TestSetASPathOverwrite(t *testing.T) {
	dev := buildDevice(t, `hostname h
route-map RM permit 10
 set as-path overwrite 65999
`)
	out, _ := NewEvaluator(dev).Apply("RM", candidate())
	if len(out.ASPath) != 1 || out.ASPath[0] != 65999 {
		t.Fatalf("overwrite: %v", out.ASPath)
	}
}

func TestClauseOrderBySeq(t *testing.T) {
	// Clauses declared out of order must evaluate by sequence number.
	dev := buildDevice(t, `hostname h
route-map RM permit 20
 set local-preference 222
route-map RM permit 10
 set local-preference 111
`)
	out, _ := NewEvaluator(dev).Apply("RM", candidate())
	if out.LocalPref != 111 {
		t.Fatalf("clause 10 should evaluate first, got lp=%d", out.LocalPref)
	}
}
