package fault

import (
	"fmt"
	"sync"
	"time"

	"s2/internal/bgp"
	"s2/internal/ospf"
	"s2/internal/route"
	"s2/internal/sidecar"
)

// Mode selects what an injection Plan does to the matched call.
type Mode int

const (
	// Drop fails the matched call with a transient error, as if the RPC
	// was lost in the network. The wrapped worker never sees the call.
	Drop Mode = iota
	// Fail fails the matched call with a fatal application error.
	Fail
	// Delay sleeps for Plan.Delay before passing the call through — a slow
	// worker, for exercising deadlines and heartbeat misses.
	Delay
	// Crash fails the matched call AND every subsequent call on any method
	// with a transient error: process death. Sticky until Revive.
	Crash
)

// Plan triggers one injection: the Nth invocation of Method ("*" matches
// any method, counting all calls) behaves per Mode. Nth ≤ 0 matches every
// invocation — a persistent fault, e.g. a permanently slow worker for
// straggler experiments.
type Plan struct {
	Method string
	Nth    int // 1-based count of matching calls; ≤ 0 = every call
	Mode   Mode
	Delay  time.Duration // only for Delay
}

// Injector wraps a sidecar.WorkerAPI and deterministically injects faults
// according to its plans, so controller recovery paths are testable
// in-process without real crashes. It implements sidecar.WorkerAPI itself
// and is safe for concurrent use (peer pulls and controller phases hit the
// same wrapper).
type Injector struct {
	inner sidecar.WorkerAPI

	mu      sync.Mutex
	plans   []Plan
	calls   map[string]int
	total   int
	crashed bool
}

// NewInjector wraps inner with the given plans.
func NewInjector(inner sidecar.WorkerAPI, plans ...Plan) *Injector {
	return &Injector{inner: inner, plans: plans, calls: map[string]int{}}
}

// Crashed reports whether a Crash plan has triggered.
func (j *Injector) Crashed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.crashed
}

// Revive clears the crashed state (for tests that model a restart).
func (j *Injector) Revive() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.crashed = false
}

// Calls returns how many times method has been invoked (including faulted
// invocations).
func (j *Injector) Calls(method string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.calls[method]
}

// before accounts the call and applies any matching plan.
func (j *Injector) before(method string) error {
	j.mu.Lock()
	if j.crashed {
		j.mu.Unlock()
		return TransientErr(method, ErrWorkerDown)
	}
	j.total++
	j.calls[method]++
	n := j.calls[method]
	var delay time.Duration
	var err error
	for _, p := range j.plans {
		if p.Method != method && p.Method != "*" {
			continue
		}
		cnt := n
		if p.Method == "*" {
			cnt = j.total
		}
		if p.Nth > 0 && cnt != p.Nth {
			continue
		}
		switch p.Mode {
		case Drop:
			err = TransientErr(method, ErrInjected)
		case Fail:
			err = fmt.Errorf("fault: injected %s failure: %w", method, ErrInjected)
		case Delay:
			delay = p.Delay
		case Crash:
			j.crashed = true
			err = TransientErr(method, ErrWorkerDown)
		}
	}
	j.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// The WorkerAPI surface: every method routes through before().

func (j *Injector) Ping() error {
	if err := j.before("Ping"); err != nil {
		return err
	}
	return j.inner.Ping()
}

func (j *Injector) Setup(req sidecar.SetupRequest) error {
	if err := j.before("Setup"); err != nil {
		return err
	}
	return j.inner.Setup(req)
}

func (j *Injector) BeginShard(req sidecar.BeginShardRequest) error {
	if err := j.before("BeginShard"); err != nil {
		return err
	}
	return j.inner.BeginShard(req)
}

func (j *Injector) GatherBGP() error {
	if err := j.before("GatherBGP"); err != nil {
		return err
	}
	return j.inner.GatherBGP()
}

func (j *Injector) ApplyBGP() (sidecar.ApplyReply, error) {
	if err := j.before("ApplyBGP"); err != nil {
		return sidecar.ApplyReply{}, err
	}
	return j.inner.ApplyBGP()
}

func (j *Injector) GatherOSPF() error {
	if err := j.before("GatherOSPF"); err != nil {
		return err
	}
	return j.inner.GatherOSPF()
}

func (j *Injector) ApplyOSPF() (sidecar.ApplyReply, error) {
	if err := j.before("ApplyOSPF"); err != nil {
		return sidecar.ApplyReply{}, err
	}
	return j.inner.ApplyOSPF()
}

func (j *Injector) EndShard() (sidecar.EndShardReply, error) {
	if err := j.before("EndShard"); err != nil {
		return sidecar.EndShardReply{}, err
	}
	return j.inner.EndShard()
}

func (j *Injector) PullBGP(exporter, puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error) {
	if err := j.before("PullBGP"); err != nil {
		return nil, 0, false, err
	}
	return j.inner.PullBGP(exporter, puller, since, seen)
}

func (j *Injector) PullLSAs(exporter, puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error) {
	if err := j.before("PullLSAs"); err != nil {
		return nil, 0, false, err
	}
	return j.inner.PullLSAs(exporter, puller, since, seen)
}

func (j *Injector) PullBGPBatch(reqs []sidecar.PullBGPRequest) ([]sidecar.PullBGPReply, error) {
	if err := j.before("PullBGPBatch"); err != nil {
		return nil, err
	}
	return j.inner.PullBGPBatch(reqs)
}

func (j *Injector) PullLSABatch(reqs []sidecar.PullLSAsRequest) ([]sidecar.PullLSAsReply, error) {
	if err := j.before("PullLSABatch"); err != nil {
		return nil, err
	}
	return j.inner.PullLSABatch(reqs)
}

func (j *Injector) PullBGPBatchWire(reqs []sidecar.PullBGPRequest) ([]sidecar.PullBGPReply, error) {
	if err := j.before("PullBGPBatchWire"); err != nil {
		return nil, err
	}
	return j.inner.PullBGPBatchWire(reqs)
}

func (j *Injector) PullLSABatchWire(reqs []sidecar.PullLSAsRequest) ([]sidecar.PullLSAsReply, error) {
	if err := j.before("PullLSABatchWire"); err != nil {
		return nil, err
	}
	return j.inner.PullLSABatchWire(reqs)
}

func (j *Injector) ApplyDelta(req sidecar.DeltaRequest) (sidecar.DeltaReply, error) {
	if err := j.before("ApplyDelta"); err != nil {
		return sidecar.DeltaReply{}, err
	}
	return j.inner.ApplyDelta(req)
}

func (j *Injector) ComputeDP() (sidecar.ComputeDPReply, error) {
	if err := j.before("ComputeDP"); err != nil {
		return sidecar.ComputeDPReply{}, err
	}
	return j.inner.ComputeDP()
}

func (j *Injector) BeginQuery(req sidecar.QueryRequest) error {
	if err := j.before("BeginQuery"); err != nil {
		return err
	}
	return j.inner.BeginQuery(req)
}

func (j *Injector) BeginQueryBatch(req sidecar.QueryBatchRequest) error {
	if err := j.before("BeginQueryBatch"); err != nil {
		return err
	}
	return j.inner.BeginQueryBatch(req)
}

func (j *Injector) Inject(req sidecar.InjectRequest) error {
	if err := j.before("Inject"); err != nil {
		return err
	}
	return j.inner.Inject(req)
}

func (j *Injector) DPRound() error {
	if err := j.before("DPRound"); err != nil {
		return err
	}
	return j.inner.DPRound()
}

func (j *Injector) HasWork() (bool, error) {
	if err := j.before("HasWork"); err != nil {
		return false, err
	}
	return j.inner.HasWork()
}

func (j *Injector) DeliverPackets(items []sidecar.PacketDelivery) error {
	if err := j.before("DeliverPackets"); err != nil {
		return err
	}
	return j.inner.DeliverPackets(items)
}

func (j *Injector) DeliverBatch(req sidecar.DeliverBatchRequest) (sidecar.DeliverBatchReply, error) {
	if err := j.before("DeliverBatch"); err != nil {
		return sidecar.DeliverBatchReply{}, err
	}
	return j.inner.DeliverBatch(req)
}

func (j *Injector) FinishQuery() (sidecar.OutcomeBatch, error) {
	if err := j.before("FinishQuery"); err != nil {
		return sidecar.OutcomeBatch{}, err
	}
	return j.inner.FinishQuery()
}

func (j *Injector) CollectRIBs() (map[string][]*route.Route, error) {
	if err := j.before("CollectRIBs"); err != nil {
		return nil, err
	}
	return j.inner.CollectRIBs()
}

func (j *Injector) Stats() (sidecar.WorkerStats, error) {
	if err := j.before("Stats"); err != nil {
		return sidecar.WorkerStats{}, err
	}
	return j.inner.Stats()
}

func (j *Injector) PullSpans(req sidecar.PullSpansRequest) (sidecar.PullSpansReply, error) {
	if err := j.before("PullSpans"); err != nil {
		return sidecar.PullSpansReply{}, err
	}
	return j.inner.PullSpans(req)
}

func (j *Injector) PullStats(req sidecar.PullStatsRequest) (sidecar.PullStatsReply, error) {
	if err := j.before("PullStats"); err != nil {
		return sidecar.PullStatsReply{}, err
	}
	return j.inner.PullStats(req)
}

func (j *Injector) PullProfile(req sidecar.PullProfileRequest) (sidecar.PullProfileReply, error) {
	if err := j.before("PullProfile"); err != nil {
		return sidecar.PullProfileReply{}, err
	}
	return j.inner.PullProfile(req)
}

// Interface conformance.
var _ sidecar.WorkerAPI = (*Injector)(nil)
