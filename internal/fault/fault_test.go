package fault

import (
	"errors"
	"fmt"
	"io"
	"net/rpc"
	"strings"
	"sync"
	"testing"
	"time"

	"s2/internal/bgp"
	"s2/internal/metrics"
	"s2/internal/ospf"
	"s2/internal/route"
	"s2/internal/sidecar"
)

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("bad config"), false},
		{fmt.Errorf("core: budget: %w", metrics.ErrOutOfMemory), false},
		{ErrTimeout, true},
		{ErrWorkerDown, true},
		{rpc.ErrShutdown, true},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{TransientErr("GatherBGP", errors.New("peer gone")), true},
		{fmt.Errorf("wrapped: %w", TransientErr("X", ErrWorkerDown)), true},
		// net/rpc flattens server-side errors to strings: the marker must
		// carry transience across the wire.
		{errors.New(TransientErr("PullBGP", ErrWorkerDown).Error()), true},
		{errors.New("dial tcp 127.0.0.1:9: connect: connection refused"), true},
		{errors.New("read tcp: use of closed network connection"), true},
		{errors.New("sidecar: server draining"), true},
		{&Error{Method: "ApplyBGP", Kind: Fatal, Err: errors.New("boom")}, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestErrorMessageCarriesAttempts(t *testing.T) {
	e := &Error{Method: "Setup", Attempts: 3, Kind: Transient, Err: ErrTimeout}
	msg := e.Error()
	if !errors.Is(e, ErrTimeout) {
		t.Error("Unwrap lost the cause")
	}
	for _, want := range []string{"Setup", "3 attempts", Marker} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func newTestCaller(p Policy, counters *metrics.FaultCounters) (*Caller, *[]time.Duration) {
	c := NewCaller(p, counters)
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	return c, &slept
}

func TestCallerRetriesTransient(t *testing.T) {
	counters := metrics.NewFaultCounters()
	c, slept := newTestCaller(Policy{Retries: 3, Backoff: 10 * time.Millisecond, Seed: 7}, counters)
	calls := 0
	err := c.Do("PullBGP", true, func() error {
		calls++
		if calls < 3 {
			return TransientErr("PullBGP", ErrWorkerDown)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retries should have recovered: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if counters.Get("rpc.retries") != 2 {
		t.Fatalf("rpc.retries = %d, want 2", counters.Get("rpc.retries"))
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	// Exponential base with bounded jitter: attempt n in [base/2, base].
	if (*slept)[0] < 5*time.Millisecond || (*slept)[0] > 10*time.Millisecond {
		t.Errorf("first backoff %v outside [5ms,10ms]", (*slept)[0])
	}
	if (*slept)[1] < 10*time.Millisecond || (*slept)[1] > 20*time.Millisecond {
		t.Errorf("second backoff %v outside [10ms,20ms]", (*slept)[1])
	}
}

func TestCallerBackoffDeterministic(t *testing.T) {
	run := func() []time.Duration {
		c, slept := newTestCaller(Policy{Retries: 4, Backoff: time.Millisecond, Seed: 42}, nil)
		c.Do("X", true, func() error { return ErrWorkerDown })
		return *slept
	}
	a, b := run(), run()
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("backoff counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different jitter: %v vs %v", a, b)
		}
	}
}

func TestCallerNoRetryNonIdempotent(t *testing.T) {
	counters := metrics.NewFaultCounters()
	c, _ := newTestCaller(Policy{Retries: 5}, counters)
	calls := 0
	err := c.Do("ApplyBGP", false, func() error {
		calls++
		return TransientErr("ApplyBGP", ErrWorkerDown)
	})
	if calls != 1 {
		t.Fatalf("non-idempotent call attempted %d times", calls)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != Transient {
		t.Fatalf("want typed transient error, got %v", err)
	}
	if counters.Get("rpc.failures") != 1 {
		t.Fatalf("rpc.failures = %d", counters.Get("rpc.failures"))
	}
}

func TestCallerFatalPassesThrough(t *testing.T) {
	c, _ := newTestCaller(Policy{Retries: 5}, nil)
	boom := errors.New("bad policy statement")
	calls := 0
	err := c.Do("Setup", true, func() error { calls++; return boom })
	if err != boom {
		t.Fatalf("fatal error must pass through unchanged, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("fatal error retried: %d calls", calls)
	}
}

func TestCallerTimeout(t *testing.T) {
	counters := metrics.NewFaultCounters()
	c := NewCaller(Policy{Timeout: 30 * time.Millisecond}, counters)
	block := make(chan struct{})
	defer close(block)
	start := time.Now()
	err := c.Do("DPRound", false, func() error { <-block; return nil })
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timeout did not bound the call: %v", elapsed)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if !IsTransient(err) {
		t.Fatal("timeout must classify transient")
	}
	if counters.Get("rpc.timeouts") != 1 {
		t.Fatalf("rpc.timeouts = %d", counters.Get("rpc.timeouts"))
	}
}

func pingErr(err error) func(int) error {
	return func(int) error { return err }
}

func TestDetectorDeclaresDeathAfterMisses(t *testing.T) {
	counters := metrics.NewFaultCounters()
	var mu sync.Mutex
	var deaths []int
	d := NewDetector(2, time.Hour, 2, func(id int) error {
		if id == 1 {
			return ErrTimeout
		}
		return nil
	}, counters)
	d.OnDead(func(id int) {
		mu.Lock()
		deaths = append(deaths, id)
		mu.Unlock()
	})

	d.Sweep()
	if s := d.State(1); s != Suspect {
		t.Fatalf("after 1 miss: state = %v, want suspect", s)
	}
	if s := d.State(0); s != Alive {
		t.Fatalf("healthy worker state = %v", s)
	}
	d.Sweep()
	if s := d.State(1); s != Dead {
		t.Fatalf("after 2 misses: state = %v, want dead", s)
	}
	d.Sweep() // dead workers are not pinged again; OnDead must not re-fire
	mu.Lock()
	got := append([]int(nil), deaths...)
	mu.Unlock()
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("OnDead fired %v, want exactly [1]", got)
	}
	if counters.Get("heartbeat.deaths") != 1 {
		t.Fatalf("heartbeat.deaths = %d", counters.Get("heartbeat.deaths"))
	}
	if counters.Get("heartbeat.misses") != 2 {
		t.Fatalf("heartbeat.misses = %d", counters.Get("heartbeat.misses"))
	}
	if alive := d.Alive(); len(alive) != 1 || alive[0] != 0 {
		t.Fatalf("Alive() = %v", alive)
	}
}

func TestDetectorRecoversSuspect(t *testing.T) {
	var fail bool
	d := NewDetector(1, time.Hour, 3, func(int) error {
		if fail {
			return ErrTimeout
		}
		return nil
	}, nil)
	fail = true
	d.Sweep()
	d.Sweep()
	if s := d.State(0); s != Suspect {
		t.Fatalf("state = %v, want suspect", s)
	}
	fail = false
	d.Sweep()
	if s := d.State(0); s != Alive {
		t.Fatalf("a successful heartbeat must clear suspicion, got %v", s)
	}
	// Miss counting restarts from zero.
	fail = true
	d.Sweep()
	d.Sweep()
	if s := d.State(0); s != Suspect {
		t.Fatalf("miss count was not reset: %v", s)
	}
}

func TestDetectorMarkDeadIsSticky(t *testing.T) {
	fired := 0
	d := NewDetector(1, time.Hour, 3, pingErr(nil), nil)
	d.OnDead(func(int) { fired++ })
	d.MarkDead(0)
	d.MarkDead(0)
	if fired != 1 {
		t.Fatalf("OnDead fired %d times", fired)
	}
	d.Sweep() // pings succeed, but death is sticky
	if s := d.State(0); s != Dead {
		t.Fatalf("dead worker resurrected: %v", s)
	}
}

func TestDetectorStartStop(t *testing.T) {
	var mu sync.Mutex
	pings := 0
	d := NewDetector(1, time.Millisecond, 3, func(int) error {
		mu.Lock()
		pings++
		mu.Unlock()
		return nil
	}, nil)
	d.Start()
	d.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := pings
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detector loop never pinged")
		}
		time.Sleep(time.Millisecond)
	}
	d.Stop()
	d.Stop() // idempotent
	mu.Lock()
	after := pings
	mu.Unlock()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	final := pings
	mu.Unlock()
	if final != after {
		t.Fatalf("detector kept pinging after Stop: %d → %d", after, final)
	}
}

// nullWorker is a minimal WorkerAPI for Injector tests.
type nullWorker struct{ pings, gathers int }

func (n *nullWorker) Ping() error                                { n.pings++; return nil }
func (n *nullWorker) Setup(sidecar.SetupRequest) error           { return nil }
func (n *nullWorker) BeginShard(sidecar.BeginShardRequest) error { return nil }
func (n *nullWorker) GatherBGP() error                           { n.gathers++; return nil }
func (n *nullWorker) ApplyBGP() (sidecar.ApplyReply, error)      { return sidecar.ApplyReply{}, nil }
func (n *nullWorker) GatherOSPF() error                          { return nil }
func (n *nullWorker) ApplyOSPF() (sidecar.ApplyReply, error)     { return sidecar.ApplyReply{}, nil }
func (n *nullWorker) EndShard() (sidecar.EndShardReply, error)   { return sidecar.EndShardReply{}, nil }
func (n *nullWorker) PullBGP(string, string, uint64, bool) ([]bgp.Advertisement, uint64, bool, error) {
	return nil, 0, false, nil
}
func (n *nullWorker) PullLSAs(string, string, uint64, bool) ([]*ospf.LSA, uint64, bool, error) {
	return nil, 0, false, nil
}
func (n *nullWorker) PullBGPBatch(reqs []sidecar.PullBGPRequest) ([]sidecar.PullBGPReply, error) {
	return make([]sidecar.PullBGPReply, len(reqs)), nil
}
func (n *nullWorker) PullLSABatch(reqs []sidecar.PullLSAsRequest) ([]sidecar.PullLSAsReply, error) {
	return make([]sidecar.PullLSAsReply, len(reqs)), nil
}
func (n *nullWorker) ComputeDP() (sidecar.ComputeDPReply, error) {
	return sidecar.ComputeDPReply{}, nil
}
func (n *nullWorker) BeginQuery(sidecar.QueryRequest) error           { return nil }
func (n *nullWorker) BeginQueryBatch(sidecar.QueryBatchRequest) error { return nil }
func (n *nullWorker) Inject(sidecar.InjectRequest) error              { return nil }
func (n *nullWorker) DPRound() error                                  { return nil }
func (n *nullWorker) HasWork() (bool, error)                          { return false, nil }
func (n *nullWorker) DeliverPackets([]sidecar.PacketDelivery) error   { return nil }
func (n *nullWorker) DeliverBatch(sidecar.DeliverBatchRequest) (sidecar.DeliverBatchReply, error) {
	return sidecar.DeliverBatchReply{}, nil
}
func (n *nullWorker) FinishQuery() (sidecar.OutcomeBatch, error)      { return sidecar.OutcomeBatch{}, nil }
func (n *nullWorker) CollectRIBs() (map[string][]*route.Route, error) { return nil, nil }
func (n *nullWorker) Stats() (sidecar.WorkerStats, error) {
	return sidecar.WorkerStats{}, nil
}
func (n *nullWorker) PullSpans(sidecar.PullSpansRequest) (sidecar.PullSpansReply, error) {
	return sidecar.PullSpansReply{}, nil
}
func (n *nullWorker) PullStats(sidecar.PullStatsRequest) (sidecar.PullStatsReply, error) {
	return sidecar.PullStatsReply{}, nil
}
func (n *nullWorker) PullProfile(sidecar.PullProfileRequest) (sidecar.PullProfileReply, error) {
	return sidecar.PullProfileReply{}, nil
}
func (n *nullWorker) PullBGPBatchWire(reqs []sidecar.PullBGPRequest) ([]sidecar.PullBGPReply, error) {
	return make([]sidecar.PullBGPReply, len(reqs)), nil
}
func (n *nullWorker) PullLSABatchWire(reqs []sidecar.PullLSAsRequest) ([]sidecar.PullLSAsReply, error) {
	return make([]sidecar.PullLSAsReply, len(reqs)), nil
}
func (n *nullWorker) ApplyDelta(sidecar.DeltaRequest) (sidecar.DeltaReply, error) {
	return sidecar.DeltaReply{}, nil
}

func TestInjectorNthCall(t *testing.T) {
	inner := &nullWorker{}
	j := NewInjector(inner, Plan{Method: "GatherBGP", Nth: 2, Mode: Drop})
	if err := j.GatherBGP(); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	err := j.GatherBGP()
	if err == nil || !IsTransient(err) {
		t.Fatalf("call 2 must fail transiently, got %v", err)
	}
	if err := j.GatherBGP(); err != nil {
		t.Fatalf("call 3: %v", err)
	}
	if inner.gathers != 2 {
		t.Fatalf("inner saw %d calls, want 2 (the dropped call must not reach it)", inner.gathers)
	}
	if j.Calls("GatherBGP") != 3 {
		t.Fatalf("Calls = %d", j.Calls("GatherBGP"))
	}
}

func TestInjectorCrashIsSticky(t *testing.T) {
	inner := &nullWorker{}
	j := NewInjector(inner, Plan{Method: "ApplyBGP", Nth: 1, Mode: Crash})
	if _, err := j.ApplyBGP(); err == nil {
		t.Fatal("crash call must fail")
	}
	if !j.Crashed() {
		t.Fatal("Crashed() = false")
	}
	// EVERY method now fails, like a dead process.
	if err := j.Ping(); err == nil || !IsTransient(err) {
		t.Fatalf("Ping after crash: %v", err)
	}
	if err := j.GatherBGP(); err == nil {
		t.Fatal("GatherBGP after crash must fail")
	}
	if inner.pings != 0 || inner.gathers != 0 {
		t.Fatal("calls reached the inner worker after crash")
	}
	j.Revive()
	if err := j.Ping(); err != nil {
		t.Fatalf("after Revive: %v", err)
	}
}

func TestInjectorFailModeIsFatal(t *testing.T) {
	j := NewInjector(&nullWorker{}, Plan{Method: "Setup", Nth: 1, Mode: Fail})
	err := j.Setup(sidecar.SetupRequest{})
	if err == nil {
		t.Fatal("want error")
	}
	if IsTransient(err) {
		t.Fatalf("Fail mode must be a fatal application error, got transient: %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestInjectorDelay(t *testing.T) {
	j := NewInjector(&nullWorker{}, Plan{Method: "Ping", Nth: 1, Mode: Delay, Delay: 50 * time.Millisecond})
	start := time.Now()
	if err := j.Ping(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("delay not applied: %v", elapsed)
	}
	// A delayed call under a Caller deadline times out.
	j2 := NewInjector(&nullWorker{}, Plan{Method: "Ping", Nth: 1, Mode: Delay, Delay: time.Second})
	c := NewCaller(Policy{Timeout: 20 * time.Millisecond}, nil)
	if err := c.Do("Ping", false, j2.Ping); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want deadline error, got %v", err)
	}
}

func TestInjectorPersistentPlan(t *testing.T) {
	// Nth ≤ 0 matches every invocation: a permanently slow worker.
	inner := &nullWorker{}
	j := NewInjector(inner, Plan{Method: "GatherBGP", Nth: 0, Mode: Delay, Delay: 10 * time.Millisecond})
	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := j.GatherBGP(); err != nil {
			t.Fatalf("call %d: %v", i+1, err)
		}
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("persistent delay applied only partially: %v for 3 calls", elapsed)
	}
	if inner.gathers != 3 {
		t.Fatalf("inner saw %d calls, want 3 (Delay passes through)", inner.gathers)
	}
	// Other methods are untouched.
	if err := j.Ping(); err != nil {
		t.Fatal(err)
	}

	// Persistent Drop: every matched call fails, forever.
	j2 := NewInjector(&nullWorker{}, Plan{Method: "Ping", Nth: -1, Mode: Drop})
	for i := 0; i < 4; i++ {
		if err := j2.Ping(); err == nil || !IsTransient(err) {
			t.Fatalf("call %d must drop transiently, got %v", i+1, err)
		}
	}
}

func TestInjectorWildcard(t *testing.T) {
	j := NewInjector(&nullWorker{}, Plan{Method: "*", Nth: 3, Mode: Drop})
	if err := j.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := j.GatherBGP(); err != nil {
		t.Fatal(err)
	}
	if err := j.DPRound(); err == nil {
		t.Fatal("3rd call overall must fail")
	}
}
