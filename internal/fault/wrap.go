package fault

import (
	"s2/internal/bgp"
	"s2/internal/ospf"
	"s2/internal/route"
	"s2/internal/sidecar"
)

// Wrap returns a WorkerAPI that routes every call through the Caller, so
// the controller gets uniform deadlines and retries whether the underlying
// transport is a RemoteWorker, an in-process core.Worker, or an Injector.
// The idempotency table mirrors sidecar.RemoteWorker: only calls that are
// reads or that fully reset the state they establish are retried.
func Wrap(api sidecar.WorkerAPI, c *Caller) sidecar.WorkerAPI {
	return &wrapped{api: api, c: c}
}

type wrapped struct {
	api sidecar.WorkerAPI
	c   *Caller
}

func (w *wrapped) Ping() error {
	return w.c.Do("Ping", true, w.api.Ping)
}

func (w *wrapped) Setup(req sidecar.SetupRequest) error {
	return w.c.Do("Setup", true, func() error { return w.api.Setup(req) })
}

func (w *wrapped) BeginShard(req sidecar.BeginShardRequest) error {
	return w.c.Do("BeginShard", true, func() error { return w.api.BeginShard(req) })
}

func (w *wrapped) GatherBGP() error {
	return w.c.Do("GatherBGP", false, w.api.GatherBGP)
}

func (w *wrapped) ApplyBGP() (sidecar.ApplyReply, error) {
	var reply sidecar.ApplyReply
	err := w.c.Do("ApplyBGP", false, func() error {
		var err error
		reply, err = w.api.ApplyBGP()
		return err
	})
	return reply, err
}

func (w *wrapped) GatherOSPF() error {
	return w.c.Do("GatherOSPF", false, w.api.GatherOSPF)
}

func (w *wrapped) ApplyOSPF() (sidecar.ApplyReply, error) {
	var reply sidecar.ApplyReply
	err := w.c.Do("ApplyOSPF", false, func() error {
		var err error
		reply, err = w.api.ApplyOSPF()
		return err
	})
	return reply, err
}

func (w *wrapped) EndShard() (sidecar.EndShardReply, error) {
	var reply sidecar.EndShardReply
	err := w.c.Do("EndShard", false, func() error {
		var err error
		reply, err = w.api.EndShard()
		return err
	})
	return reply, err
}

func (w *wrapped) PullBGP(exporter, puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error) {
	var advs []bgp.Advertisement
	var ver uint64
	var fresh bool
	err := w.c.Do("PullBGP", true, func() error {
		var err error
		advs, ver, fresh, err = w.api.PullBGP(exporter, puller, since, seen)
		return err
	})
	return advs, ver, fresh, err
}

func (w *wrapped) PullLSAs(exporter, puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error) {
	var lsas []*ospf.LSA
	var ver uint64
	var fresh bool
	err := w.c.Do("PullLSAs", true, func() error {
		var err error
		lsas, ver, fresh, err = w.api.PullLSAs(exporter, puller, since, seen)
		return err
	})
	return lsas, ver, fresh, err
}

func (w *wrapped) PullBGPBatch(reqs []sidecar.PullBGPRequest) ([]sidecar.PullBGPReply, error) {
	var replies []sidecar.PullBGPReply
	err := w.c.Do("PullBGPBatch", true, func() error {
		var err error
		replies, err = w.api.PullBGPBatch(reqs)
		return err
	})
	return replies, err
}

func (w *wrapped) PullLSABatch(reqs []sidecar.PullLSAsRequest) ([]sidecar.PullLSAsReply, error) {
	var replies []sidecar.PullLSAsReply
	err := w.c.Do("PullLSABatch", true, func() error {
		var err error
		replies, err = w.api.PullLSABatch(reqs)
		return err
	})
	return replies, err
}

func (w *wrapped) PullBGPBatchWire(reqs []sidecar.PullBGPRequest) ([]sidecar.PullBGPReply, error) {
	var replies []sidecar.PullBGPReply
	err := w.c.Do("PullBGPBatchWire", true, func() error {
		var err error
		replies, err = w.api.PullBGPBatchWire(reqs)
		return err
	})
	return replies, err
}

func (w *wrapped) PullLSABatchWire(reqs []sidecar.PullLSAsRequest) ([]sidecar.PullLSAsReply, error) {
	var replies []sidecar.PullLSAsReply
	err := w.c.Do("PullLSABatchWire", true, func() error {
		var err error
		replies, err = w.api.PullLSABatchWire(reqs)
		return err
	})
	return replies, err
}

func (w *wrapped) ApplyDelta(req sidecar.DeltaRequest) (sidecar.DeltaReply, error) {
	var reply sidecar.DeltaReply
	err := w.c.Do("ApplyDelta", true, func() error {
		var err error
		reply, err = w.api.ApplyDelta(req)
		return err
	})
	return reply, err
}

func (w *wrapped) ComputeDP() (sidecar.ComputeDPReply, error) {
	var reply sidecar.ComputeDPReply
	err := w.c.Do("ComputeDP", true, func() error {
		var err error
		reply, err = w.api.ComputeDP()
		return err
	})
	return reply, err
}

func (w *wrapped) BeginQuery(req sidecar.QueryRequest) error {
	return w.c.Do("BeginQuery", true, func() error { return w.api.BeginQuery(req) })
}

func (w *wrapped) BeginQueryBatch(req sidecar.QueryBatchRequest) error {
	return w.c.Do("BeginQueryBatch", true, func() error { return w.api.BeginQueryBatch(req) })
}

func (w *wrapped) Inject(req sidecar.InjectRequest) error {
	return w.c.Do("Inject", false, func() error { return w.api.Inject(req) })
}

func (w *wrapped) DPRound() error {
	return w.c.Do("DPRound", false, w.api.DPRound)
}

func (w *wrapped) HasWork() (bool, error) {
	var busy bool
	err := w.c.Do("HasWork", true, func() error {
		var err error
		busy, err = w.api.HasWork()
		return err
	})
	return busy, err
}

func (w *wrapped) DeliverPackets(items []sidecar.PacketDelivery) error {
	return w.c.Do("DeliverPackets", false, func() error { return w.api.DeliverPackets(items) })
}

func (w *wrapped) DeliverBatch(req sidecar.DeliverBatchRequest) (sidecar.DeliverBatchReply, error) {
	var reply sidecar.DeliverBatchReply
	err := w.c.Do("DeliverBatch", false, func() error {
		var err error
		reply, err = w.api.DeliverBatch(req)
		return err
	})
	return reply, err
}

func (w *wrapped) FinishQuery() (sidecar.OutcomeBatch, error) {
	var out sidecar.OutcomeBatch
	err := w.c.Do("FinishQuery", false, func() error {
		var err error
		out, err = w.api.FinishQuery()
		return err
	})
	return out, err
}

func (w *wrapped) CollectRIBs() (map[string][]*route.Route, error) {
	var routes map[string][]*route.Route
	err := w.c.Do("CollectRIBs", true, func() error {
		var err error
		routes, err = w.api.CollectRIBs()
		return err
	})
	return routes, err
}

func (w *wrapped) Stats() (sidecar.WorkerStats, error) {
	var st sidecar.WorkerStats
	err := w.c.Do("Stats", true, func() error {
		var err error
		st, err = w.api.Stats()
		return err
	})
	return st, err
}

func (w *wrapped) PullSpans(req sidecar.PullSpansRequest) (sidecar.PullSpansReply, error) {
	var reply sidecar.PullSpansReply
	err := w.c.Do("PullSpans", true, func() error {
		var err error
		reply, err = w.api.PullSpans(req)
		return err
	})
	return reply, err
}

func (w *wrapped) PullStats(req sidecar.PullStatsRequest) (sidecar.PullStatsReply, error) {
	var reply sidecar.PullStatsReply
	err := w.c.Do("PullStats", true, func() error {
		var err error
		reply, err = w.api.PullStats(req)
		return err
	})
	return reply, err
}

func (w *wrapped) PullProfile(req sidecar.PullProfileRequest) (sidecar.PullProfileReply, error) {
	var reply sidecar.PullProfileReply
	err := w.c.Do("PullProfile", true, func() error {
		var err error
		reply, err = w.api.PullProfile(req)
		return err
	})
	return reply, err
}

var _ sidecar.WorkerAPI = (*wrapped)(nil)
