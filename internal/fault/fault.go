// Package fault is the fault-tolerance layer of the distributed verifier:
// typed RPC errors that distinguish transient infrastructure failures from
// fatal application errors, a retrying/timing-out call wrapper (Caller), a
// heartbeat-based failure detector (Detector), and a deterministic
// fault-injection harness (Injector) so recovery paths are testable
// in-process without real crashes.
//
// The paper's deployment (§5) runs workers on separate servers; a hung or
// crashed worker must not wedge the controller. Every controller→worker and
// worker→worker RPC is bounded by a deadline, idempotent calls are retried
// with exponential backoff + jitter, and errors that indicate the remote
// side is unreachable are marked transient so the controller can re-partition
// the dead worker's segment onto survivors and re-execute the phase.
package fault

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"strings"
	"syscall"
)

// Marker is embedded in the message of every transient fault error. net/rpc
// flattens server-side errors to strings (rpc.ServerError), so transience
// must survive as text: a worker's "peer unreachable" error still classifies
// as transient after crossing a second RPC hop.
const Marker = "[s2:transient]"

// ErrTimeout reports that an RPC exceeded its per-attempt deadline.
var ErrTimeout = errors.New("fault: rpc deadline exceeded")

// ErrWorkerDown reports that a worker was declared dead (by the failure
// detector or a crash injection).
var ErrWorkerDown = errors.New("fault: worker down")

// ErrInjected is the cause recorded by Injector-produced failures.
var ErrInjected = errors.New("fault: injected failure")

// Kind classifies a fault error.
type Kind int

const (
	// Transient failures are infrastructure-level: the remote side may be
	// slow, unreachable, or dead. The call may not have executed. Recovery
	// (retry, or re-execution on surviving workers) is appropriate.
	Transient Kind = iota
	// Fatal failures are application-level: the remote side executed the
	// call and returned an error (bad config, budget exceeded). Retrying
	// cannot help.
	Fatal
)

// Error is a typed RPC failure.
type Error struct {
	Method   string // RPC method (or phase) that failed
	Attempts int    // attempts made (0 means "not retried")
	Kind     Kind
	Err      error // underlying cause
}

// Error implements error; transient errors carry the Marker so the
// classification survives net/rpc string flattening.
func (e *Error) Error() string {
	mark := ""
	if e.Kind == Transient {
		mark = " " + Marker
	}
	if e.Attempts > 1 {
		return fmt.Sprintf("fault: %s failed after %d attempts%s: %v", e.Method, e.Attempts, mark, e.Err)
	}
	return fmt.Sprintf("fault: %s failed%s: %v", e.Method, mark, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// TransientErr wraps err as a transient fault of the given method.
func TransientErr(method string, err error) *Error {
	return &Error{Method: method, Kind: Transient, Err: err}
}

// transientStrings are substrings of stdlib error texts that indicate the
// transport (not the application) failed. String matching is the pragmatic
// fallback for errors that crossed an RPC boundary or were wrapped without
// %w.
var transientStrings = []string{
	Marker,
	"connection refused",
	"connection reset",
	"broken pipe",
	"use of closed network connection",
	"connection is shut down", // rpc.ErrShutdown
	"server draining",         // sidecar.ErrDraining, possibly via rpc.ServerError
	"unexpected EOF",
	"i/o timeout",
}

// IsTransient reports whether err indicates a transient infrastructure
// failure (timeout, dead peer, broken connection) rather than an
// application error. It understands typed *Error values, stdlib net/rpc and
// syscall errors, and the Marker convention for errors flattened to strings
// by net/rpc.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Kind == Transient
	}
	if errors.Is(err, ErrTimeout) || errors.Is(err, ErrWorkerDown) ||
		errors.Is(err, rpc.ErrShutdown) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	msg := err.Error()
	for _, s := range transientStrings {
		if strings.Contains(msg, s) {
			return true
		}
	}
	return false
}
