package fault

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"s2/internal/metrics"
)

// Policy configures per-RPC deadlines and retry behavior.
type Policy struct {
	// Timeout bounds each attempt (0 = no deadline, the pre-fault-tolerance
	// behavior).
	Timeout time.Duration
	// Retries is the number of EXTRA attempts for idempotent calls that
	// fail transiently. Non-idempotent calls are never retried: a timed-out
	// attempt may still execute on the remote side, and re-executing a
	// state-mutating phase call would break the round barrier. Recovery for
	// those is re-execution from a clean re-Setup, not a blind retry.
	Retries int
	// Backoff is the base delay before the first retry (default 10ms);
	// attempt n waits Backoff·2ⁿ⁻¹ (capped at MaxBackoff) plus jitter.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 2s).
	MaxBackoff time.Duration
	// Seed makes the jitter deterministic (0 = 1).
	Seed int64
}

func (p Policy) backoff() time.Duration {
	if p.Backoff <= 0 {
		return 10 * time.Millisecond
	}
	return p.Backoff
}

func (p Policy) maxBackoff() time.Duration {
	if p.MaxBackoff <= 0 {
		return 2 * time.Second
	}
	return p.MaxBackoff
}

// Caller executes RPCs under a Policy: each attempt is bounded by the
// timeout, transient failures of idempotent calls are retried with
// exponential backoff and seeded jitter, and the final failure is a typed
// transient *Error. Fatal (application) errors pass through unchanged on
// the first attempt.
type Caller struct {
	policy   Policy
	counters *metrics.FaultCounters

	mu  sync.Mutex
	rng *rand.Rand

	// sleep is swappable for tests.
	sleep func(time.Duration)

	// notify, when set, observes fault events ("timeout", "retry",
	// "failure") as they happen — the flight-recorder feed. Stored
	// atomically so SetNotify is safe while calls are in flight.
	notify atomic.Value // func(event, method string, err error)
}

// SetNotify installs an observer for fault events. The callback must be
// cheap and non-blocking (it runs on the RPC path); nil is not allowed —
// pass a no-op func to clear.
func (c *Caller) SetNotify(fn func(event, method string, err error)) {
	if fn != nil {
		c.notify.Store(fn)
	}
}

func (c *Caller) emit(event, method string, err error) {
	if fn, _ := c.notify.Load().(func(event, method string, err error)); fn != nil {
		fn(event, method, err)
	}
}

// NewCaller builds a Caller; counters may be nil.
func NewCaller(p Policy, counters *metrics.FaultCounters) *Caller {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &Caller{
		policy:   p,
		counters: counters,
		rng:      rand.New(rand.NewSource(seed)),
		sleep:    time.Sleep,
	}
}

// Policy returns the caller's configuration.
func (c *Caller) Policy() Policy { return c.policy }

// Do runs call under the policy. method is used for error reporting;
// idempotent gates retries.
func (c *Caller) Do(method string, idempotent bool, call func() error) error {
	attempts := 1
	if idempotent {
		attempts += c.policy.Retries
	}
	var last error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.counters.Inc("rpc.retries")
			c.emit("retry", method, last)
			c.sleep(c.backoffFor(i))
		}
		err := c.attempt(method, call)
		if err == nil {
			return nil
		}
		if !IsTransient(err) {
			return err // application error: the call executed and failed
		}
		last = err
	}
	c.counters.Inc("rpc.failures")
	c.emit("failure", method, last)
	if fe, ok := last.(*Error); ok {
		fe.Attempts = attempts
		return fe
	}
	return &Error{Method: method, Attempts: attempts, Kind: Transient, Err: last}
}

// Wrap adapts Do to the sidecar.CallWrapper signature.
func (c *Caller) Wrap() func(method string, idempotent bool, call func() error) error {
	return c.Do
}

// attempt runs call once, bounded by the policy timeout. On timeout the
// in-flight goroutine is abandoned: net/rpc correlates late replies safely,
// and a genuinely hung worker is the failure detector's problem.
func (c *Caller) attempt(method string, call func() error) error {
	if c.policy.Timeout <= 0 {
		return call()
	}
	done := make(chan error, 1)
	go func() { done <- call() }()
	timer := time.NewTimer(c.policy.Timeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		c.counters.Inc("rpc.timeouts")
		c.emit("timeout", method, ErrTimeout)
		return &Error{Method: method, Kind: Transient, Err: ErrTimeout}
	}
}

// backoffFor returns the delay before retry attempt n (1-based): the capped
// exponential base, half fixed and half jittered.
func (c *Caller) backoffFor(n int) time.Duration {
	base := c.policy.backoff() << uint(n-1)
	if max := c.policy.maxBackoff(); base > max || base <= 0 {
		base = max
	}
	c.mu.Lock()
	j := c.rng.Int63n(int64(base)/2 + 1)
	c.mu.Unlock()
	return base/2 + time.Duration(j)
}
