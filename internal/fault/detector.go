package fault

import (
	"sync"
	"time"

	"s2/internal/metrics"
)

// State is a worker's liveness as seen by the Detector.
type State int

const (
	// Alive: the last heartbeat succeeded.
	Alive State = iota
	// Suspect: at least one heartbeat missed, not yet enough to declare
	// death.
	Suspect
	// Dead: the miss threshold was reached (or MarkDead was called). Death
	// is sticky — a worker that answers again after being declared dead is
	// NOT resurrected, because the controller has already re-partitioned
	// its segment away.
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	default:
		return "dead"
	}
}

// Detector is the controller's heartbeat failure detector: a background
// goroutine pings every worker each interval; a worker missing `misses`
// consecutive heartbeats is declared dead and the OnDead callback fires
// (once per worker). The ping function must itself be bounded (wrap it in a
// Caller with a timeout) — the detector does not time out pings itself, it
// only counts their failures.
type Detector struct {
	interval time.Duration
	misses   int
	ping     func(id int) error
	counters *metrics.FaultCounters
	onDead   func(id int)

	mu    sync.Mutex
	miss  []int
	state []State

	stop chan struct{}
	done chan struct{}
}

// NewDetector builds a detector for n workers. misses <= 0 defaults to 3.
// counters may be nil.
func NewDetector(n int, interval time.Duration, misses int, ping func(id int) error, counters *metrics.FaultCounters) *Detector {
	if misses <= 0 {
		misses = 3
	}
	return &Detector{
		interval: interval,
		misses:   misses,
		ping:     ping,
		counters: counters,
		miss:     make([]int, n),
		state:    make([]State, n),
	}
}

// OnDead registers the death callback; set it before Start. It runs on the
// detector goroutine (or the MarkDead caller) exactly once per worker.
func (d *Detector) OnDead(fn func(id int)) { d.onDead = fn }

// Start launches the heartbeat loop. No-op if already started.
func (d *Detector) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stop != nil {
		return
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go d.run(d.stop, d.done)
}

// Stop halts the heartbeat loop and waits for the in-flight sweep to
// finish. Safe to call multiple times and before Start.
func (d *Detector) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (d *Detector) run(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			d.Sweep()
		}
	}
}

// Sweep performs one heartbeat round: all non-dead workers are pinged
// concurrently and their miss counts updated. Exported so tests (and a
// probe) can drive the detector synchronously.
func (d *Detector) Sweep() {
	d.mu.Lock()
	var ids []int
	for i, s := range d.state {
		if s != Dead {
			ids = append(ids, i)
		}
	}
	d.mu.Unlock()

	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d.record(id, d.ping(id))
		}(id)
	}
	wg.Wait()
}

func (d *Detector) record(id int, err error) {
	var dead bool
	d.mu.Lock()
	if d.state[id] == Dead {
		d.mu.Unlock()
		return
	}
	if err == nil {
		d.miss[id] = 0
		d.state[id] = Alive
	} else {
		d.counters.Inc("heartbeat.misses")
		d.miss[id]++
		if d.miss[id] >= d.misses {
			d.state[id] = Dead
			dead = true
		} else {
			d.state[id] = Suspect
		}
	}
	d.mu.Unlock()
	if dead {
		d.counters.Inc("heartbeat.deaths")
		if d.onDead != nil {
			d.onDead(id)
		}
	}
}

// State returns worker id's current liveness.
func (d *Detector) State(id int) State {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || id >= len(d.state) {
		return Dead
	}
	return d.state[id]
}

// MarkDead declares a worker dead out-of-band (e.g. the controller observed
// a failed probe); fires OnDead if the worker was not already dead.
func (d *Detector) MarkDead(id int) {
	d.mu.Lock()
	if id < 0 || id >= len(d.state) || d.state[id] == Dead {
		d.mu.Unlock()
		return
	}
	d.state[id] = Dead
	d.mu.Unlock()
	if d.onDead != nil {
		d.onDead(id)
	}
}

// Alive lists the ids not declared dead.
func (d *Detector) Alive() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []int
	for i, s := range d.state {
		if s != Dead {
			out = append(out, i)
		}
	}
	return out
}
