// Span harvesting: remote workers buffer completed spans in a bounded
// export ring (obs.Tracer in export mode); the controller drains them over
// the PullSpans RPC and merges them into its own trace. Each drain doubles
// as a clock-skew sample — the reply carries the worker's wall clock, and
// the Dapper/NTP midpoint of the request's send/receive timestamps estimates
// the offset to apply before the remote spans land on the controller's
// timeline. Harvests piggyback on stage boundaries (EndShard, ComputeDP,
// query finish), run periodically in the background for long stages, drain
// one final time in Close, and make a bounded best-effort capture — spans
// plus the last flight-recorder page — from workers about to be evicted.

package core

import (
	"encoding/json"
	"fmt"
	"time"

	"s2/internal/obs"
	"s2/internal/sidecar"
)

// harvestBatch bounds one PullSpans round trip; the drain loop keeps going
// while the worker reports more.
const harvestBatch = 2048

// harvestInterval is the background harvester period when no heartbeat
// interval is configured.
const harvestInterval = 5 * time.Second

// evictCaptureTimeout bounds the best-effort pull from a worker that just
// failed liveness probing: it may answer (probe raced a stall) or hang.
const evictCaptureTimeout = time.Second

// skewFor returns (creating on demand) the clock-offset estimator for one
// remote client. Keyed by client identity, not worker index: eviction
// compacts the directory, and an estimator must follow its connection.
func (c *Controller) skewFor(client *sidecar.RemoteWorker) *obs.SkewEstimator {
	c.skewMu.Lock()
	defer c.skewMu.Unlock()
	e := c.skews[client]
	if e == nil {
		e = &obs.SkewEstimator{}
		c.skews[client] = e
	}
	return e
}

func (c *Controller) lacksPullSpans(client *sidecar.RemoteWorker) bool {
	c.skewMu.Lock()
	defer c.skewMu.Unlock()
	return c.noPullSpans[client]
}

func (c *Controller) markNoPullSpans(client *sidecar.RemoteWorker) {
	c.skewMu.Lock()
	c.noPullSpans[client] = true
	c.skewMu.Unlock()
}

// HarvestSpans drains every remote worker's span export ring into the
// controller's tracer now. Safe to call at any time (the exporter ring and
// the worker-side PullSpans handler are lock-cheap and phase-independent);
// a no-op in local mode, where in-process workers share the tracer.
func (c *Controller) HarvestSpans() { c.harvestAll() }

func (c *Controller) harvestAll() {
	if c.tracer == nil {
		return
	}
	c.wmu.RLock()
	workers := append([]sidecar.WorkerAPI(nil), c.workers...)
	clients := append([]*sidecar.RemoteWorker(nil), c.clients...)
	c.wmu.RUnlock()
	for i := range workers {
		if i < len(clients) && clients[i] != nil {
			c.harvestWorker(workers[i], clients[i])
		}
	}
}

// harvestWorker drains one worker's ring to empty, feeding the skew
// estimator from every round trip and ingesting with the best offset so
// far. Errors are swallowed: harvesting is telemetry, never a run failure.
func (c *Controller) harvestWorker(w sidecar.WorkerAPI, client *sidecar.RemoteWorker) {
	if c.lacksPullSpans(client) {
		return
	}
	est := c.skewFor(client)
	for {
		sent := time.Now()
		reply, err := w.PullSpans(sidecar.PullSpansRequest{Max: harvestBatch})
		received := time.Now()
		if err != nil {
			if isNoBatchErr(err) {
				// Older worker binary: remember and stop asking.
				c.markNoPullSpans(client)
			}
			return
		}
		est.Observe(sent, received, reply.NowUnixMicro)
		if reply.Dropped > 0 {
			c.flight.Record("harvest", "worker export ring dropped %d spans (addr %s)",
				reply.Dropped, client.Addr())
		}
		c.tracer.Ingest(reply.Spans, est.Offset())
		if !reply.More {
			return
		}
	}
}

// evictCapture makes one bounded attempt per dying worker to pull its
// remaining spans and last flight page before the connection closes. The
// flight page is preserved as an "evict:worker<N>" span attribute in the
// controller's trace — post-mortem evidence that survives the eviction.
func (c *Controller) evictCapture(dead []int) {
	if c.tracer == nil {
		return
	}
	c.wmu.RLock()
	workers := append([]sidecar.WorkerAPI(nil), c.workers...)
	clients := append([]*sidecar.RemoteWorker(nil), c.clients...)
	c.wmu.RUnlock()
	for _, id := range dead {
		if id >= len(workers) || id >= len(clients) || clients[id] == nil {
			continue
		}
		reply, ok := pullSpansBounded(workers[id], evictCaptureTimeout)
		if !ok {
			c.flight.Record("evict", "worker %d unreachable, trace tail lost", id)
			continue
		}
		est := c.skewFor(clients[id])
		c.tracer.Ingest(reply.Spans, est.Offset())
		span := c.tracer.Start(fmt.Sprintf("evict:worker%d", id),
			obs.Int("worker", id),
			obs.Int("spans_salvaged", len(reply.Spans)))
		if len(reply.Flight) > 0 {
			span.SetAttr("flight", marshalFlight(reply.Flight))
		}
		span.End()
		c.flight.Record("evict", "worker %d: salvaged %d spans, %d flight events",
			id, len(reply.Spans), len(reply.Flight))
	}
}

// pullSpansBounded issues one PullSpans with its own deadline, independent
// of the transport's policy: the target just failed a liveness probe, and a
// hung call here would stall the whole recovery. The abandoned goroutine
// unblocks when evict closes the client.
func pullSpansBounded(w sidecar.WorkerAPI, d time.Duration) (sidecar.PullSpansReply, bool) {
	type res struct {
		reply sidecar.PullSpansReply
		err   error
	}
	ch := make(chan res, 1)
	go func() {
		reply, err := w.PullSpans(sidecar.PullSpansRequest{Max: 2 * harvestBatch, WithFlight: true})
		ch <- res{reply, err}
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.reply, r.err == nil
	case <-timer.C:
		return sidecar.PullSpansReply{}, false
	}
}

// startHarvester launches the periodic background drain for remote runs
// with tracing: long convergence stages would otherwise overflow the
// workers' export rings before the next stage-boundary harvest.
func (c *Controller) startHarvester() {
	if c.tracer == nil || len(c.opts.WorkerAddrs) == 0 || c.harvestStop != nil {
		return
	}
	interval := c.opts.HeartbeatInterval
	if interval <= 0 {
		interval = harvestInterval
	}
	c.harvestStop = make(chan struct{})
	stop := c.harvestStop
	c.harvestWG.Add(1)
	go func() {
		defer c.harvestWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.harvestAll()
			}
		}
	}()
}

func (c *Controller) stopHarvester() {
	if c.harvestStop == nil {
		return
	}
	close(c.harvestStop)
	c.harvestWG.Wait()
	c.harvestStop = nil
}

// marshalFlight renders captured flight events as compact JSON for storage
// in a span attribute.
func marshalFlight(events []obs.FlightEvent) string {
	b, err := json.Marshal(events)
	if err != nil {
		return "[]"
	}
	return string(b)
}
