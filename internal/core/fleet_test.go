// Fleet health plane tests: straggler analytics must flag exactly the
// slowed worker, the vitals sampler must fill the history ring and the
// fleet snapshot, profile harvest must round-trip a parseable pprof proto,
// and — the PR 7 contract — a run with the plane disabled must issue no
// probe RPC and start no sampler.

package core

import (
	"sync/atomic"
	"testing"
	"time"

	"s2/internal/fault"
	"s2/internal/obs"
	"s2/internal/sidecar"
)

// slowPhaseMethods mirrors the s2-level straggler knob: every phase RPC,
// never Ping (the failure detector must stay clean) and never the
// probe-class pulls (they measure the straggler).
var slowPhaseMethods = []string{
	"BeginShard", "GatherBGP", "ApplyBGP", "GatherOSPF", "ApplyOSPF",
	"EndShard", "ComputeDP", "BeginQuery", "BeginQueryBatch", "DPRound",
	"FinishQuery",
}

// slowWorkerHook wraps one worker's transport with a persistent per-call
// delay on every phase method.
func slowWorkerHook(slow int, delay time.Duration) func(int, sidecar.WorkerAPI) sidecar.WorkerAPI {
	return func(id int, w sidecar.WorkerAPI) sidecar.WorkerAPI {
		if id != slow {
			return w
		}
		plans := make([]fault.Plan, 0, len(slowPhaseMethods))
		for _, m := range slowPhaseMethods {
			plans = append(plans, fault.Plan{Method: m, Mode: fault.Delay, Delay: delay})
		}
		return fault.NewInjector(w, plans...)
	}
}

func TestStragglerAnalyticsFlagsSlowWorker(t *testing.T) {
	reg := obs.NewRegistry()
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{
		Workers: 3, Shards: 2, Seed: 5,
		Metrics:        reg,
		HistorySamples: 64,
		// Long interval: this test exercises the per-round skew scoring,
		// not the sampler cadence.
		HistoryInterval: time.Hour,
		WrapWorker:      slowWorkerHook(1, 15*time.Millisecond),
	})
	defer c.Close()
	res := runFull(t, c)
	if len(res.Unreached) != 0 || len(res.Violations) != 0 {
		t.Fatalf("slowed run must still verify: %+v", res)
	}

	scores := c.StragglerScores()
	if len(scores) == 0 {
		t.Fatal("no straggler scores recorded")
	}
	if scores[1] <= 0 {
		t.Fatalf("slowed worker 1 score = %v, want > 0 (scores %v)", scores[1], scores)
	}
	// Only the injected straggler accumulates a material score: the others
	// sit at or near the round median.
	for _, id := range []int{0, 2} {
		if scores[id] >= scores[1] {
			t.Errorf("worker %d score %v >= slowed worker's %v", id, scores[id], scores[1])
		}
		if scores[id] > scores[1]/2 {
			t.Errorf("worker %d score %v too close to the straggler's %v", id, scores[id], scores[1])
		}
	}

	// The scores ride the registry and the fleet snapshot.
	snapMetrics := reg.Snapshot()
	if v := snapMetrics[`s2_straggler_score{worker="1"}`]; v <= 0 {
		t.Errorf(`s2_straggler_score{worker="1"} = %v, want > 0`, v)
	}
	foundSkew := false
	for k, v := range snapMetrics {
		if len(k) > len(MetricRoundSkew) && k[:len(MetricRoundSkew)] == MetricRoundSkew && v > 0 {
			foundSkew = true
		}
	}
	if !foundSkew {
		t.Error("no positive s2_round_skew_seconds series in the registry")
	}
	health := c.FleetHealth()
	if len(health.RoundSkewSeconds) == 0 {
		t.Error("FleetHealth.RoundSkewSeconds empty after a skewed run")
	}

	// The -report table carries the score on the straggler's row only.
	rep := c.AttributionReport()
	for _, w := range rep.Workers {
		if w.Worker == 1 && w.StragglerScore <= 0 {
			t.Errorf("report row for worker 1 missing straggler score: %+v", w)
		}
	}
}

func TestFleetSamplerHistoryAndHealth(t *testing.T) {
	reg := obs.NewRegistry()
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{
		Workers: 3, Seed: 6,
		Metrics:         reg,
		HistorySamples:  128,
		HistoryInterval: 10 * time.Millisecond,
	})
	defer c.Close()
	runFull(t, c)

	h := c.History()
	if h == nil {
		t.Fatal("History() = nil with HistorySamples set")
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.Rounds() < 5 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if h.Rounds() < 5 {
		t.Fatalf("history rounds = %d after 5s, want >= 5", h.Rounds())
	}
	// Per-worker vitals gauges land in the registry snapshot, and from
	// there in the history ring.
	if pts := h.Series(`s2_worker_goroutines{worker="0"}`, 0); len(pts) == 0 {
		t.Errorf("no worker-0 goroutines series; have %v", h.Names()[:min(len(h.Names()), 10)])
	}

	health := c.FleetHealth()
	if len(health.Workers) != 3 {
		t.Fatalf("fleet health has %d workers, want 3: %+v", len(health.Workers), health)
	}
	for _, w := range health.Workers {
		if w.Goroutines <= 0 {
			t.Errorf("worker %d goroutines = %d, want > 0", w.Worker, w.Goroutines)
		}
		if w.HeapBytes <= 0 {
			t.Errorf("worker %d heap = %d, want > 0", w.Worker, w.HeapBytes)
		}
	}
	if health.Epoch == 0 || health.HistoryRounds < 5 {
		t.Errorf("health epoch=%d rounds=%d, want epoch>0 rounds>=5", health.Epoch, health.HistoryRounds)
	}

	// Close stops the sampler; the ring must go quiet.
	c.Close()
	rounds := h.Rounds()
	time.Sleep(50 * time.Millisecond)
	if h.Rounds() != rounds {
		t.Error("sampler kept recording after Close")
	}
}

func TestPullWorkerProfile(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{
		Workers: 2, Seed: 7,
		ProfileCapacity: 4,
		ProfileInterval: -1, // on-demand only
	})
	defer c.Close()
	runCP(t, c)

	p, err := c.PullWorkerProfile(0, "heap", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Worker != 0 || p.Kind != "heap" || p.ID == "" {
		t.Fatalf("profile = %+v", p)
	}
	// runtime/pprof writes gzip-framed protos; the magic is the cheap
	// "go tool pprof can read this" check.
	if len(p.Data) < 2 || p.Data[0] != 0x1f || p.Data[1] != 0x8b {
		t.Fatalf("profile data not gzip-framed: % x...", p.Data[:min(len(p.Data), 4)])
	}
	if c.Profiles().Len() != 1 || c.Profiles().Get(p.ID) == nil {
		t.Error("profile not stored in the ring")
	}

	if _, err := c.PullWorkerProfile(0, "bogus", 0); err == nil {
		t.Error("unknown kind must error")
	}
	if _, err := c.PullWorkerProfile(99, "heap", 0); err == nil {
		t.Error("out-of-range worker must error")
	}

	// CPU capture blocks for the sampling window and still lands.
	cp, err := c.PullWorkerProfile(1, "cpu", 1)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Kind != "cpu" || len(cp.Data) == 0 {
		t.Fatalf("cpu profile = %+v", cp)
	}
}

// countingWorker counts probe-class RPCs that reach the transport.
type countingWorker struct {
	sidecar.WorkerAPI
	statsPulls   *atomic.Int64
	profilePulls *atomic.Int64
}

func (w countingWorker) PullStats(req sidecar.PullStatsRequest) (sidecar.PullStatsReply, error) {
	w.statsPulls.Add(1)
	return w.WorkerAPI.PullStats(req)
}

func (w countingWorker) PullProfile(req sidecar.PullProfileRequest) (sidecar.PullProfileReply, error) {
	w.profilePulls.Add(1)
	return w.WorkerAPI.PullProfile(req)
}

func TestFleetPlaneZeroOverheadWhenDisabled(t *testing.T) {
	var stats, profiles atomic.Int64
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{
		Workers: 2, Seed: 8,
		WrapWorker: func(_ int, w sidecar.WorkerAPI) sidecar.WorkerAPI {
			return countingWorker{WorkerAPI: w, statsPulls: &stats, profilePulls: &profiles}
		},
	})
	defer c.Close()
	runFull(t, c)

	if c.History() != nil || c.Profiles() != nil {
		t.Error("disabled plane must expose nil history and profile store")
	}
	if c.statsStop != nil {
		t.Error("disabled plane must not start the sampler goroutine")
	}
	if n := stats.Load(); n != 0 {
		t.Errorf("disabled plane issued %d PullStats RPCs, want 0", n)
	}
	if n := profiles.Load(); n != 0 {
		t.Errorf("disabled plane issued %d PullProfile RPCs, want 0", n)
	}
	if len(c.StragglerScores()) != 0 {
		t.Error("disabled plane must not accumulate straggler scores")
	}
	if _, err := c.PullWorkerProfile(0, "heap", 0); err == nil {
		t.Error("PullWorkerProfile must error when the store is disabled")
	}
	if h := c.FleetHealth(); len(h.Workers) != 0 || h.HistoryRounds != 0 {
		t.Errorf("disabled plane fleet health = %+v, want empty", h)
	}
}

// TestFleetSamplerTCP covers the remote path: PullStats over the sidecar
// wire feeds the fleet snapshot for TCP workers too.
func TestFleetSamplerTCP(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	addrs, _, _ := startTracedRemoteWorkers(t, 2)
	c := newS2(t, snap, texts, Options{
		WorkerAddrs: addrs, Seed: 9,
		HistorySamples:  64,
		HistoryInterval: 10 * time.Millisecond,
	})
	defer c.Close()
	runCP(t, c)

	deadline := time.Now().Add(5 * time.Second)
	for len(c.FleetHealth().Workers) < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	health := c.FleetHealth()
	if len(health.Workers) != 2 {
		t.Fatalf("fleet health has %d workers, want 2", len(health.Workers))
	}
	for _, w := range health.Workers {
		if w.RSSBytes <= 0 && w.HeapBytes <= 0 {
			t.Errorf("worker %d reported no memory vitals: %+v", w.Worker, w)
		}
	}
	// Without a registry the history falls back to vitals-only series.
	if pts := c.History().Series(`s2_worker_heap_bytes{worker="0"}`, 0); len(pts) == 0 {
		t.Errorf("no fallback heap series; have %v", c.History().Names())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
