package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"s2/internal/bdd"
	"s2/internal/config"
	"s2/internal/dataplane"
	"s2/internal/fault"
	"s2/internal/metrics"
	"s2/internal/obs"
	"s2/internal/partition"
	"s2/internal/route"
	"s2/internal/shard"
	"s2/internal/sidecar"
	"s2/internal/topology"
)

// Options configures a verification run.
type Options struct {
	// Workers is the worker count for the in-process transport (ignored
	// when WorkerAddrs is set).
	Workers int
	// WorkerAddrs, when non-empty, are the sidecar RPC addresses of
	// pre-started worker processes (cmd/s2worker).
	WorkerAddrs []string
	// Scheme selects the partitioner (default metis).
	Scheme partition.Scheme
	// Shards is the prefix-shard count (≤1 disables sharding).
	Shards int
	// Seed makes partitioning and shard shuffling reproducible.
	Seed int64
	// MetaBits sizes the packet metadata field (waypoint bits).
	MetaBits int
	// MemoryBudget is the modelled per-worker memory budget in bytes
	// (0 = unlimited); exceeding it aborts the run with an OOM error,
	// reproducing the paper's -Xmx worker limit.
	MemoryBudget int64
	// MaxBDDNodes bounds each worker's BDD node table (0 = unlimited).
	MaxBDDNodes int
	// SpillDir enables writing shard results to disk between rounds.
	SpillDir string
	// KeepRIBs retains full RIBs for CollectRIBs (equivalence testing).
	KeepRIBs bool
	// MaxRounds guards against non-converging control planes (§7
	// limitation). Default 128.
	MaxRounds int
	// LoadOf estimates per-node simulation load for the partitioner
	// (§4.1); nil means uniform.
	LoadOf func(device string) int64
	// IgnoreConditionalDeps builds the prefix dependency graph WITHOUT
	// conditional-advertisement edges, deliberately creating the §7
	// "unforeseen dependency" scenario so the runtime detector's shard
	// merge-and-recompute path is exercised. Results are still correct —
	// only the number of shard rounds changes.
	IgnoreConditionalDeps bool
	// Sequential executes each orchestration round's worker calls one at
	// a time instead of concurrently. Results are identical (rounds are
	// barrier-synchronized either way); experiments use it so per-worker
	// durations — and thus the critical-path metric — are not inflated
	// by CPU contention on hosts with fewer cores than workers.
	Sequential bool
	// Parallelism is the per-worker goroutine pool for the per-node loops
	// of the simulation phases (gather/apply, FIB compile, symbolic
	// forwarding). 0 means runtime.NumCPU(); 1 is strictly sequential and
	// reproduces the single-threaded results byte-for-byte. Propagated to
	// every worker via SetupRequest.
	Parallelism int
	// DisableBatchPulls turns off cross-worker pull coalescing: shadow-node
	// pulls go back to one RPC per (node, neighbor) pair as before.
	DisableBatchPulls bool
	// DisableWireDedup turns off the shared-substrate wire codec for
	// boundary-crossing packets and outcome harvests: every packet goes
	// back to an independently serialized BDD as before.
	DisableWireDedup bool
	// DisableQuerySlicing turns off intent-based slicing: every query pass
	// involves every worker instead of only the workers whose nodes the
	// query's sources can possibly reach within its hop budget.
	DisableQuerySlicing bool
	// DisableQueryCache turns off the epoch-keyed query outcome cache:
	// every SubmitQuery runs a fresh symbolic pass.
	DisableQueryCache bool
	// GCStress makes every worker's BDD GC pacer collect at each safe
	// point where the node table grew at all — maximizing collection count
	// to exercise relocation and remapping (results stay byte-identical;
	// CI's gc-smoke uses it).
	GCStress bool
	// GCWipe reverts the workers' engines to the seed collector's
	// behavior — single-goroutine mark and the op cache wiped on every
	// collection — as the A/B baseline for GC benchmarks.
	GCWipe bool

	// RPCTimeout bounds every controller→worker call attempt (0 = no
	// deadline, the pre-fault-tolerance behavior). It also bounds worker
	// peer-to-peer calls (propagated via SetupRequest) and the TCP dial.
	RPCTimeout time.Duration
	// RPCRetries is the number of extra attempts for idempotent RPCs that
	// fail transiently; non-idempotent phase calls are never retried.
	RPCRetries int
	// HeartbeatInterval enables the failure detector: workers are pinged
	// at this interval and declared dead after HeartbeatMisses consecutive
	// failures (0 disables heartbeats).
	HeartbeatInterval time.Duration
	// HeartbeatMisses is the consecutive-miss death threshold (default 3).
	HeartbeatMisses int
	// Recover re-partitions a dead worker's segment onto the survivors and
	// re-executes the in-flight phase. Without it, a worker failure
	// surfaces as a typed transient error.
	Recover bool
	// MaxRecoveries bounds repair attempts per controller (default 8).
	MaxRecoveries int
	// WrapWorker, when set, wraps each worker transport as it is created —
	// the hook fault-injection tests use to interpose fault.Injector.
	WrapWorker func(id int, w sidecar.WorkerAPI) sidecar.WorkerAPI

	// Tracer, when set, records the whole run as hierarchical spans:
	// controller stages, prefix shards, convergence rounds, and every RPC.
	// In-process workers share it, so one exported Chrome trace holds the
	// controller and all worker timelines (the -trace flag of cmd/s2).
	Tracer *obs.Tracer
	// Metrics, when set, receives the run's counters/gauges/histograms
	// (RPC latency, routes exchanged, BDD and modelled-memory stats); serve
	// it with obs.ServeIntrospection (the -obs-addr flag).
	Metrics *obs.Registry
	// Logger, when set, receives leveled structured logs from the
	// controller, delta planner, and in-process workers (stage progress,
	// delta classifications, recovery events). A nil logger makes every
	// site a nil-check no-op.
	Logger *obs.Logger

	// HistorySamples sizes the fleet health time-series ring: every
	// registry metric plus per-worker vitals sampled each HistoryInterval.
	// 0 disables the ring, the background sampler, and the dashboard's
	// sparklines (the PR 7 zero-overhead contract).
	HistorySamples int
	// HistoryInterval is the vitals sampling cadence (default:
	// HeartbeatInterval, else 5s).
	HistoryInterval time.Duration
	// ProfileCapacity bounds the ring of harvested pprof profiles
	// (PullWorkerProfile and the periodic heap harvest). 0 disables the
	// store and the harvest.
	ProfileCapacity int
	// ProfileInterval paces the periodic heap-profile harvest when the
	// store is enabled (default 60s; < 0 disables the periodic harvest,
	// keeping on-demand pulls only).
	ProfileInterval time.Duration
}

func (o Options) maxRounds() int {
	if o.MaxRounds <= 0 {
		return 128
	}
	return o.MaxRounds
}

func (o Options) maxRecoveries() int {
	if o.MaxRecoveries <= 0 {
		return 8
	}
	return o.MaxRecoveries
}

// probeTimeout bounds each liveness probe. With no RPC deadline configured
// probes still need one, otherwise a hung worker would also hang the
// failure detector meant to catch it.
func (o Options) probeTimeout() time.Duration {
	if o.RPCTimeout > 0 {
		return o.RPCTimeout
	}
	return 2 * time.Second
}

func (o Options) faultPolicy() fault.Policy {
	return fault.Policy{Timeout: o.RPCTimeout, Retries: o.RPCRetries, Seed: o.Seed}
}

// Controller is S2's controller (§3.2): parser, partitioner, and the two
// orchestrators (CPO and DPO).
type Controller struct {
	snap       *config.Snapshot
	net        *topology.Network
	opts       Options
	texts      map[string]string
	assignment *partition.Assignment
	shards     []*shard.Shard
	engine     *bdd.Engine
	layout     dataplane.Layout
	timer      *metrics.PhaseTimer

	// wmu guards the live worker directory below: repair swaps it while
	// the failure detector reads it from its own goroutine.
	wmu     sync.RWMutex
	workers []sidecar.WorkerAPI
	locals  []*Worker               // in-process workers (nil entries in remote mode)
	clients []*sidecar.RemoteWorker // raw RPC clients (nil entries in local mode)
	addrs   []string                // live worker addresses (remote mode)

	faults   *metrics.FaultCounters
	detector *fault.Detector

	// Observability (see observability.go). curSpan holds the innermost
	// open stage/shard/round *obs.Span; RPC hooks sample it concurrently.
	// clientHook builds the per-worker traced RPC hook (nil with obs off).
	tracer     *obs.Tracer
	reg        *obs.Registry
	log        *obs.Logger
	curSpan    atomic.Value
	clientHook func(workerID int) sidecar.TraceHook
	pmu        sync.Mutex
	prog       Progress

	// flight is the controller's always-on flight recorder (see harvest.go
	// for the distributed-trace plumbing it accompanies). skewMu guards the
	// per-client clock-offset estimators and the legacy-peer memo below;
	// harvestStop/harvestWG manage the background span harvester.
	flight      *obs.FlightRecorder
	skewMu      sync.Mutex
	skews       map[*sidecar.RemoteWorker]*obs.SkewEstimator
	noPullSpans map[*sidecar.RemoteWorker]bool
	harvestStop chan struct{}
	harvestWG   sync.WaitGroup

	// Fleet health plane (fleet.go): the metric/vitals time-series ring,
	// the harvested-profile store, the latest per-worker vitals, and the
	// per-worker straggler scores. noPullStats memoizes workers that
	// predate the PullStats RPC (guarded by skewMu like noPullSpans);
	// statsStop/statsWG manage the background vitals sampler.
	history     *obs.History
	profiles    *obs.ProfileStore
	fleetMu     sync.Mutex
	fleetVitals map[int]fleetVital
	stragglers  map[int]float64
	lastSkew    map[string]float64
	noPullStats map[*sidecar.RemoteWorker]bool
	statsStop   chan struct{}
	statsWG     sync.WaitGroup

	// Stage flags drive recovery: repair re-Setups the survivors and
	// clears cpDone/dpDone, so each internal runner re-establishes exactly
	// the stages the caller had already requested (the *Wanted flags) —
	// never more, preserving "query before ComputeDP fails" semantics.
	provisioned bool
	setupDone   bool
	cpWanted    bool
	cpDone      bool
	dpWanted    bool
	dpDone      bool
	recoveries  int

	// closed is atomic so in-flight recoverable loops (queries, deltas)
	// observe a concurrent Close without racing; closeMu serializes the
	// teardown body itself so concurrent Close calls are safe and
	// idempotent.
	closed  atomic.Bool
	closeMu sync.Mutex

	// Query plane (queryplane.go): qpMu guards the coalescing window and
	// leader flag; qcMu guards the epoch-keyed answer cache.
	qpMu      sync.Mutex
	qpPending []*queryJob
	qpLeader  bool
	qcMu      sync.Mutex
	qcEpoch   uint64
	qcache    map[uint64]*dataplane.Collector

	// epoch counts successfully verified states: it advances once per
	// completed data-plane compute (cold runs and deltas alike) and once
	// per accepted no-op delta. Serving layers key warm query caches on it.
	// epochAt is the UnixNano timestamp of the last advance, behind the
	// s2_epoch_age_seconds gauge (staleness SLO for serving mode).
	epoch   atomic.Uint64
	epochAt atomic.Int64

	cpRounds   int
	dpRounds   int
	shardMerge []string

	// critical accumulates, per phase, the sum over orchestration rounds
	// of the slowest worker's duration — the elapsed time an ideally
	// parallel deployment would observe. On a single-CPU host the wall
	// clock serializes workers, so experiments report this instead.
	critical map[string]time.Duration
}

// NewController parses nothing itself — it receives the parsed snapshot
// plus the raw texts (workers re-parse their own segment, keeping the
// setup payload simple and the parser exercised end to end).
func NewController(snap *config.Snapshot, texts map[string]string, opts Options) (*Controller, error) {
	if opts.Workers < 1 && len(opts.WorkerAddrs) == 0 {
		return nil, fmt.Errorf("core: need at least one worker")
	}
	net, err := topology.Build(snap)
	if err != nil {
		return nil, err
	}
	layout := dataplane.Layout{MetaBits: opts.MetaBits}
	c := &Controller{
		snap:        snap,
		net:         net,
		opts:        opts,
		texts:       texts,
		engine:      layout.NewEngine(0),
		layout:      layout,
		timer:       metrics.NewPhaseTimer(),
		faults:      metrics.NewFaultCounters(),
		flight:      obs.NewFlightRecorder(0),
		skews:       map[*sidecar.RemoteWorker]*obs.SkewEstimator{},
		noPullSpans: map[*sidecar.RemoteWorker]bool{},
		noPullStats: map[*sidecar.RemoteWorker]bool{},
		history:     obs.NewHistory(opts.HistorySamples),
		profiles:    obs.NewProfileStore(opts.ProfileCapacity),
	}
	c.initObs()
	return c, nil
}

// FlightRecorder exposes the controller's always-on flight recorder for
// SIGQUIT/panic dumps and the /debug/flightrecorder endpoint.
func (c *Controller) FlightRecorder() *obs.FlightRecorder { return c.flight }

// FaultCounters exposes retry/failure/recovery accounting.
func (c *Controller) FaultCounters() *metrics.FaultCounters { return c.faults }

// Close stops the failure detector and tears down remote connections. The
// controller is unusable afterwards. Close is idempotent and safe to call
// concurrently — with itself and with in-flight queries: the closed flag
// flips atomically (recoverable loops stop retrying), the body is
// serialized, and in-flight RPCs on a torn-down client surface as ordinary
// transport errors.
func (c *Controller) Close() error {
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	alreadyClosed := c.closed.Swap(true)
	c.stopStatsSampler()
	c.stopHarvester()
	// Final span drain: whatever the workers' export rings still hold must
	// land in the merged trace before the connections go away.
	if !alreadyClosed {
		c.harvestAll()
	}
	c.stopDetector()
	c.wmu.Lock()
	clients := c.clients
	c.clients = nil
	c.workers = nil
	c.locals = nil
	c.wmu.Unlock()
	for _, cl := range clients {
		if cl != nil {
			cl.Close()
		}
	}
	return nil
}

// Network exposes the derived topology (warnings included).
func (c *Controller) Network() *topology.Network { return c.net }

// Assignment exposes the partition (valid after Setup).
func (c *Controller) Assignment() *partition.Assignment { return c.assignment }

// Shards exposes the prefix shards (valid after RunControlPlane).
func (c *Controller) Shards() []*shard.Shard { return c.shards }

// Timer exposes recorded phase durations.
func (c *Controller) Timer() *metrics.PhaseTimer { return c.timer }

// Epoch returns the verified-state epoch: 0 until the first data plane is
// computed, then +1 per completed verification (full or delta). Safe from
// any goroutine.
func (c *Controller) Epoch() uint64 { return c.epoch.Load() }

// ShardCount returns the prefix-shard count of the resident verified state
// (0 before the control plane has run).
func (c *Controller) ShardCount() int { return len(c.shards) }

// SetRequestSpan points the controller's span tree at root: stages, shard
// rounds, and RPC spans opened while it is current parent under it, so a
// serving layer can give each request its own span tree instead of one
// process-lifetime trace. It returns the previous current span, which the
// caller must restore when the request completes. Only call between
// pipeline operations (the serving layer serializes requests around the
// verifier, so there is never an open stage when it switches roots).
func (c *Controller) SetRequestSpan(root *obs.Span) *obs.Span {
	prev, _ := c.curSpan.Load().(*obs.Span)
	c.curSpan.Store(root)
	return prev
}

// Resident reports whether converged control- and data-plane state is
// resident across the workers — the precondition for answering queries
// without re-running the pipeline and for incremental delta paths.
func (c *Controller) Resident() bool { return c.setupDone && c.cpDone && c.dpDone }

// DeviceNames lists the devices of the current snapshot, sorted.
func (c *Controller) DeviceNames() []string { return c.snap.DeviceNames() }

// ConfigText returns the raw config text for one device ("" if unknown).
func (c *Controller) ConfigText(device string) string { return c.texts[device] }

// CPRounds and DPRounds expose orchestration round counts.
func (c *Controller) CPRounds() int { return c.cpRounds }

// DPRounds returns the total data-plane rounds across queries.
func (c *Controller) DPRounds() int { return c.dpRounds }

// Setup partitions the network and initializes the workers.
func (c *Controller) Setup() error {
	return c.recoverable(c.setup)
}

// setup establishes the transport directory once, then (re)configures it.
func (c *Controller) setup() error {
	if !c.provisioned {
		if err := c.provision(); err != nil {
			return err
		}
		c.provisioned = true
	}
	if err := c.configure(); err != nil {
		return err
	}
	c.startDetector()
	c.startHarvester()
	c.startStatsSampler()
	return nil
}

// newWorkerTransport assembles one worker's call stack: the base transport,
// the test injection hook, the RPC telemetry layer, then the fault policy
// (deadlines + retries). Telemetry sits inside the fault layer so each
// retry attempt is recorded as its own RPC span, re-armed with a fresh
// TraceContext — the server-side span parents under the attempt that
// actually reached it.
func (c *Controller) newWorkerTransport(id int, base sidecar.WorkerAPI) sidecar.WorkerAPI {
	w := base
	if c.opts.WrapWorker != nil {
		w = c.opts.WrapWorker(id, w)
	}
	if c.clientHook != nil {
		w = sidecar.ObserveTraced(w, c.clientHook(id))
	}
	if p := c.opts.faultPolicy(); p.Timeout > 0 || p.Retries > 0 {
		caller := fault.NewCaller(p, c.faults)
		caller.SetNotify(func(event, method string, err error) {
			c.flight.Record("rpc", "worker %d %s %s: %v", id, event, method, err)
		})
		w = fault.Wrap(w, caller)
	}
	return w
}

// provision creates the worker transports: RPC clients for WorkerAddrs, or
// in-process Workers otherwise.
func (c *Controller) provision() error {
	if len(c.opts.WorkerAddrs) > 0 {
		n := len(c.opts.WorkerAddrs)
		workers := make([]sidecar.WorkerAPI, n)
		clients := make([]*sidecar.RemoteWorker, n)
		for i, addr := range c.opts.WorkerAddrs {
			client, err := sidecar.DialWrapped(addr, c.opts.RPCTimeout, nil)
			if err != nil {
				return err
			}
			clients[i] = client
			workers[i] = c.newWorkerTransport(i, client)
		}
		c.wmu.Lock()
		c.workers, c.clients = workers, clients
		c.locals = make([]*Worker, n)
		c.addrs = append([]string(nil), c.opts.WorkerAddrs...)
		c.wmu.Unlock()
		return nil
	}
	n := c.opts.Workers
	workers := make([]sidecar.WorkerAPI, n)
	locals := make([]*Worker, n)
	for i := range workers {
		locals[i] = NewWorker()
		locals[i].SetObservability(c.tracer, c.reg)
		locals[i].SetLogger(c.log)
		workers[i] = c.newWorkerTransport(i, locals[i])
	}
	c.wmu.Lock()
	c.workers, c.locals = workers, locals
	c.clients = make([]*sidecar.RemoteWorker, n)
	c.wmu.Unlock()
	return nil
}

// configure partitions the network across the CURRENT worker directory and
// re-Setups every worker from scratch; recovery calls it again after an
// eviction, with fewer workers. All downstream stage flags reset: the
// control and data planes must re-run against the new partition.
func (c *Controller) configure() error {
	return c.timer.Time("partition+setup", func() error {
		return c.stage("partition+setup", c.configureBody)
	})
}

func (c *Controller) configureBody() error {
	{
		c.wmu.RLock()
		workers := append([]sidecar.WorkerAPI(nil), c.workers...)
		locals := append([]*Worker(nil), c.locals...)
		addrs := append([]string(nil), c.addrs...)
		c.wmu.RUnlock()

		graph := c.net.Graph(c.opts.LoadOf)
		asg, err := partition.Partition(graph, len(workers), c.opts.Scheme, c.opts.Seed)
		if err != nil {
			return err
		}
		c.assignment = asg
		for _, lw := range locals {
			if lw != nil {
				lw.SetPeers(workers)
			}
		}

		procs := c.opts.Parallelism
		if procs <= 0 {
			procs = runtime.NumCPU()
		}
		err = c.each(func(id int, w sidecar.WorkerAPI) error {
			req := sidecar.SetupRequest{
				WorkerID:          id,
				Assignment:        c.assignment.Of,
				Configs:           map[string]string{},
				Adjacencies:       map[string][]topology.Adjacency{},
				Sessions:          map[string][]topology.BGPSession{},
				MetaBits:          c.opts.MetaBits,
				MaxBDDNodes:       c.opts.MaxBDDNodes,
				MemoryBudget:      c.opts.MemoryBudget,
				PeerAddrs:         addrs,
				SpillDir:          c.opts.SpillDir,
				KeepRIBs:          c.opts.KeepRIBs,
				RPCTimeout:        c.opts.RPCTimeout,
				RPCRetries:        c.opts.RPCRetries,
				Parallelism:       procs,
				DisableBatchPulls: c.opts.DisableBatchPulls,
				DisableWireDedup:  c.opts.DisableWireDedup,
				GCStress:          c.opts.GCStress,
				GCWipe:            c.opts.GCWipe,
			}
			for _, name := range c.assignment.Segment(id) {
				req.Configs[name+".cfg"] = c.texts[name]
				req.Adjacencies[name] = c.net.Adjacencies[name]
				req.Sessions[name] = c.net.Sessions[name]
			}
			return w.Setup(req)
		})
		if err != nil {
			return err
		}
		c.setupDone = true
		c.cpDone, c.dpDone = false, false
		return nil
	}
}

// startDetector launches the heartbeat failure detector over the current
// worker directory (no-op when HeartbeatInterval is 0). On death the
// worker's RPC client is closed so calls hung on it return immediately.
func (c *Controller) startDetector() {
	if c.opts.HeartbeatInterval <= 0 {
		return
	}
	c.stopDetector()
	probe := fault.NewCaller(fault.Policy{Timeout: c.opts.probeTimeout()}, nil)
	c.wmu.RLock()
	n := len(c.workers)
	c.wmu.RUnlock()
	d := fault.NewDetector(n, c.opts.HeartbeatInterval, c.opts.HeartbeatMisses, func(id int) error {
		c.wmu.RLock()
		var w sidecar.WorkerAPI
		if id < len(c.workers) {
			w = c.workers[id]
		}
		c.wmu.RUnlock()
		if w == nil {
			return fault.ErrWorkerDown
		}
		return probe.Do("Ping", false, w.Ping)
	}, c.faults)
	d.OnDead(func(id int) {
		c.flight.Record("detector", "worker %d declared dead after missed heartbeats", id)
		c.log.Warn("worker declared dead", obs.FInt("worker", id))
		c.wmu.RLock()
		var client *sidecar.RemoteWorker
		if id < len(c.clients) {
			client = c.clients[id]
		}
		c.wmu.RUnlock()
		if client != nil {
			client.Close()
		}
	})
	c.detector = d
	d.Start()
}

func (c *Controller) stopDetector() {
	if c.detector != nil {
		c.detector.Stop()
		c.detector = nil
	}
}

// recoverable runs body; on a transient failure with recovery enabled it
// repairs the worker pool (probe → evict the dead → re-partition →
// re-Setup) and re-runs body, which re-establishes any stages the repair
// invalidated. Fatal errors and recovery-disabled runs return immediately.
func (c *Controller) recoverable(body func() error) error {
	for {
		err := body()
		if err == nil || c.closed.Load() || !c.opts.Recover || !fault.IsTransient(err) {
			return err
		}
		if rerr := c.repair(); rerr != nil {
			return fmt.Errorf("core: run failed (%v) and recovery failed: %w", err, rerr)
		}
	}
}

// repair recovers from a worker failure: stop heartbeats, probe everyone,
// evict the dead, re-partition the network over the survivors and re-Setup
// them, then restart heartbeats. Returns an error when no capacity remains
// or the recovery budget is exhausted — the caller fails cleanly instead
// of retrying forever.
func (c *Controller) repair() error {
	c.recoveries++
	c.flight.Record("recovery", "attempt %d/%d", c.recoveries, c.opts.maxRecoveries())
	c.log.Warn("recovery attempt",
		obs.FInt("attempt", c.recoveries), obs.FInt("budget", c.opts.maxRecoveries()))
	if c.recoveries > c.opts.maxRecoveries() {
		return fmt.Errorf("core: recovery budget exhausted after %d attempts", c.opts.maxRecoveries())
	}
	c.stopDetector()
	dead := c.probe()
	if err := c.evict(dead); err != nil {
		return err
	}
	if err := c.configure(); err != nil {
		return err
	}
	c.startDetector()
	c.faults.Inc("recoveries")
	return nil
}

// probe pings every current worker once (bounded) and returns the ids that
// failed. The error that triggered recovery cannot be trusted to name the
// dead worker — a healthy worker surfaces its dead PEER's failure when a
// route pull fails — so liveness is established directly.
func (c *Controller) probe() []int {
	c.wmu.RLock()
	workers := append([]sidecar.WorkerAPI(nil), c.workers...)
	c.wmu.RUnlock()
	probe := fault.NewCaller(fault.Policy{Timeout: c.opts.probeTimeout()}, nil)
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w sidecar.WorkerAPI) {
			defer wg.Done()
			errs[i] = probe.Do("Ping", false, w.Ping)
		}(i, w)
	}
	wg.Wait()
	var dead []int
	for i, err := range errs {
		if err != nil {
			dead = append(dead, i)
		}
	}
	return dead
}

// evict removes the dead workers from the directory, closing their RPC
// clients. Failing with no survivors is the clean-abort path. Before a dead
// worker's client closes, a bounded best-effort PullSpans salvages whatever
// spans its export ring still holds plus its last flight-recorder page —
// the pre-crash evidence the merged trace would otherwise lose.
func (c *Controller) evict(dead []int) error {
	if len(dead) == 0 {
		return nil
	}
	c.flight.Record("evict", "evicting workers %v", dead)
	c.log.Warn("evicting dead workers", obs.FStr("workers", fmt.Sprint(dead)))
	c.evictCapture(dead)
	isDead := map[int]bool{}
	for _, id := range dead {
		isDead[id] = true
	}
	c.wmu.Lock()
	var workers []sidecar.WorkerAPI
	var locals []*Worker
	var clients []*sidecar.RemoteWorker
	var addrs []string
	var closing []*sidecar.RemoteWorker
	for i := range c.workers {
		if isDead[i] {
			c.faults.Inc("worker.deaths")
			if c.clients[i] != nil {
				closing = append(closing, c.clients[i])
			}
			continue
		}
		workers = append(workers, c.workers[i])
		locals = append(locals, c.locals[i])
		clients = append(clients, c.clients[i])
		if len(c.addrs) > 0 {
			addrs = append(addrs, c.addrs[i])
		}
	}
	survivors := len(workers)
	if survivors > 0 {
		c.workers, c.locals, c.clients, c.addrs = workers, locals, clients, addrs
	}
	c.wmu.Unlock()
	for _, cl := range closing {
		cl.Close()
	}
	if survivors == 0 {
		return fmt.Errorf("core: all %d workers failed, no capacity to recover", len(dead))
	}
	return nil
}

// each runs fn on every worker concurrently, charges the slowest worker's
// duration to the phase's critical path, and returns the first error.
func (c *Controller) each(fn func(id int, w sidecar.WorkerAPI) error) error {
	_, err := c.eachPhase("", func(id int, w sidecar.WorkerAPI) (bool, error) {
		return false, fn(id, w)
	})
	return err
}

// eachChanged is each() for phase-2 calls that report change.
func (c *Controller) eachChanged(fn func(w sidecar.WorkerAPI) (bool, error)) (bool, error) {
	return c.eachPhase("", func(_ int, w sidecar.WorkerAPI) (bool, error) { return fn(w) })
}

// eachPhase runs fn on every worker concurrently; when phase is non-empty
// the slowest worker's duration is charged to that phase's critical path.
func (c *Controller) eachPhase(phase string, fn func(id int, w sidecar.WorkerAPI) (bool, error)) (bool, error) {
	return c.eachPhaseIDs(phase, nil, fn)
}

// eachSubset is each() restricted to the given worker ids (nil = all).
func (c *Controller) eachSubset(ids []int, fn func(id int, w sidecar.WorkerAPI) error) error {
	_, err := c.eachPhaseIDs("", ids, func(id int, w sidecar.WorkerAPI) (bool, error) {
		return false, fn(id, w)
	})
	return err
}

// eachPhaseIDs is eachPhase restricted to the given worker ids (nil = all
// workers). fn always receives the worker's position in the live directory,
// so harvest ordering and assignment lookups stay consistent with each().
func (c *Controller) eachPhaseIDs(phase string, ids []int, fn func(id int, w sidecar.WorkerAPI) (bool, error)) (bool, error) {
	c.wmu.RLock()
	all := append([]sidecar.WorkerAPI(nil), c.workers...)
	c.wmu.RUnlock()
	sel := ids
	if sel == nil {
		sel = make([]int, len(all))
		for i := range all {
			sel[i] = i
		}
	}
	workers := make([]sidecar.WorkerAPI, 0, len(sel))
	idOf := make([]int, 0, len(sel))
	for _, id := range sel {
		if id >= 0 && id < len(all) {
			workers = append(workers, all[id])
			idOf = append(idOf, id)
		}
	}
	changed := make([]bool, len(workers))
	errs := make([]error, len(workers))
	durs := make([]time.Duration, len(workers))
	if c.opts.Sequential {
		for i, w := range workers {
			start := time.Now()
			changed[i], errs[i] = fn(idOf[i], w)
			durs[i] = time.Since(start)
		}
	} else {
		var wg sync.WaitGroup
		for i, w := range workers {
			wg.Add(1)
			go func(i int, w sidecar.WorkerAPI) {
				defer wg.Done()
				start := time.Now()
				changed[i], errs[i] = fn(idOf[i], w)
				durs[i] = time.Since(start)
			}(i, w)
		}
		wg.Wait()
	}
	if phase != "" {
		var max time.Duration
		for _, d := range durs {
			if d > max {
				max = d
			}
		}
		if c.critical == nil {
			c.critical = map[string]time.Duration{}
		}
		c.critical[phase] += max
		c.observeRoundSkew(phase, idOf, durs)
	}
	// A dead worker makes several workers error at once (healthy ones
	// report failed pulls from it). Prefer a transient error so the
	// recovery layer sees the signal it can act on.
	var firstErr error
	any := false
	for i := range workers {
		if errs[i] != nil {
			if fault.IsTransient(errs[i]) {
				return false, errs[i]
			}
			if firstErr == nil {
				firstErr = errs[i]
			}
		}
		any = any || changed[i]
	}
	if firstErr != nil {
		return false, firstErr
	}
	return any, nil
}

// CriticalPath returns the per-phase simulated parallel elapsed time: the
// sum over rounds of the slowest worker's round duration. Keys: "cp"
// (control plane rounds), "dp-compute", "dp-forward".
func (c *Controller) CriticalPath() map[string]time.Duration {
	out := map[string]time.Duration{}
	for k, v := range c.critical {
		out[k] = v
	}
	return out
}

// CriticalTotal sums all critical-path phases.
func (c *Controller) CriticalTotal() time.Duration {
	var t time.Duration
	for _, v := range c.critical {
		t += v
	}
	return t
}

// RunControlPlane executes the CPO workflow: OSPF flooding to convergence,
// then the round-based BGP fixed point once per prefix shard (§4.2, §4.5).
func (c *Controller) RunControlPlane() error {
	c.cpWanted = true
	return c.recoverable(c.runControlPlane)
}

func (c *Controller) runControlPlane() error {
	if !c.setupDone {
		if err := c.setup(); err != nil {
			return err
		}
	}
	// IGP before EGP (§4.2).
	hasOSPF, hasBGP := false, false
	for _, dev := range c.snap.Devices {
		if dev.OSPF != nil {
			hasOSPF = true
		}
		if dev.BGP != nil {
			hasBGP = true
		}
	}
	if hasOSPF {
		err := c.timer.Time("cp-ospf", func() error {
			return c.stage("cp-ospf", func() error {
				for round := 0; ; round++ {
					if round > c.opts.maxRounds() {
						return fmt.Errorf("core: OSPF did not converge in %d rounds", c.opts.maxRounds())
					}
					endRound := c.startSpan("round", obs.Int("round", round))
					if _, err := c.eachPhase("cp", func(_ int, w sidecar.WorkerAPI) (bool, error) { return false, w.GatherOSPF() }); err != nil {
						endRound()
						return err
					}
					changed, err := c.applyRound("ospf", 0, round,
						func(w sidecar.WorkerAPI) (sidecar.ApplyReply, error) { return w.ApplyOSPF() })
					endRound()
					if err != nil {
						return err
					}
					c.cpRounds++
					if !changed {
						return nil
					}
				}
			})
		})
		if err != nil {
			return err
		}
	}
	if !hasBGP {
		c.cpDone = true
		return nil
	}

	// Prefix sharding (§4.5).
	var shards []*shard.Shard
	if c.opts.Shards > 1 {
		var err error
		shards, err = shard.MakeShards(
			shard.BuildDPDGOpts(c.snap, shard.DPDGOptions{IgnoreConditional: c.opts.IgnoreConditionalDeps}),
			c.opts.Shards, c.opts.Seed)
		if err != nil {
			return err
		}
	} else {
		shards = []*shard.Shard{nil} // single unfiltered round
	}
	c.shards = shards

	err := c.timer.Time("cp-bgp", func() error {
		return c.stage("cp-bgp", c.runBGPShards)
	})
	if err != nil {
		return err
	}
	c.cpDone = true
	return nil
}

// runBGPShards is the body of the cp-bgp stage: the shard loop with
// runtime dependency merges (§7). A full run treats every shard as dirty.
func (c *Controller) runBGPShards() error {
	dirty := make([]bool, len(c.shards))
	for i := range dirty {
		dirty[i] = true
	}
	_, err := c.runDirtyShards(dirty)
	return err
}

// runDirtyShards executes exactly the shards marked dirty (with §7 runtime
// dependency merges — a merged-in shard is recomputed as part of the merged
// whole) and returns the shard ids that actually ran, in execution order (a
// §7 merge recompute repeats the absorbing shard's id). Clean shards keep
// their resident per-prefix results: every shard round is cold and
// self-contained, so results accumulate per prefix and skipping a shard
// whose prefixes are untouched is sound.
func (c *Controller) runDirtyShards(dirty []bool) ([]int, error) {
	shards := c.shards
	var runs []int
	var globalPrefixes []route.Prefix
	if len(shards) > 1 {
		globalPrefixes = shard.CollectBGPPrefixes(c.snap)
	}
	skipped := make([]bool, len(shards))
	for i := 0; i < len(shards); i++ {
		if skipped[i] || !dirty[i] {
			continue
		}
		reports, err := c.runShard(i, shards[i])
		if err != nil {
			return runs, err
		}
		runs = append(runs, i)
		if len(shards) <= 1 || shards[i] == nil {
			continue
		}
		// Runtime dependency detection (§7): a condition consulted
		// during this round may reference prefixes living in other
		// shards — merge those shards into this one and recompute.
		missing := c.unforeseenDeps(reports, shards[i], globalPrefixes)
		if len(missing) == 0 {
			continue
		}
		merged := shards[i]
		mergedAny := false
		for j := range shards {
			if j == i || skipped[j] || shards[j] == nil {
				continue
			}
			if containsAny(shards[j], missing) {
				merged = shard.Merge(merged, shards[j])
				skipped[j] = true
				mergedAny = true
				c.shardMerge = append(c.shardMerge,
					fmt.Sprintf("shard %d merged into shard %d (unforeseen conditional dependency)", j, i))
				c.log.Warn("shard merged on unforeseen dependency",
					obs.FInt("shard", j), obs.FInt("into", i))
			}
		}
		if mergedAny {
			shards[i] = merged
			i-- // recompute the merged shard in place
		}
	}
	return runs, nil
}

// runShard executes one full shard round (reset, fixed point, harvest) and
// returns the workers' condition reports.
func (c *Controller) runShard(i int, sh *shard.Shard) (reports []sidecar.ConditionReport, err error) {
	req := sidecar.BeginShardRequest{Index: i}
	if sh != nil {
		req.Prefixes = sh.Prefixes
	}
	endShard := c.startSpan("shard", obs.Int("shard", i), obs.Int("prefixes", len(req.Prefixes)))
	defer endShard()
	if err := c.each(func(_ int, w sidecar.WorkerAPI) error { return w.BeginShard(req) }); err != nil {
		return nil, err
	}
	for round := 0; ; round++ {
		if round > c.opts.maxRounds() {
			return nil, fmt.Errorf("core: BGP shard %d did not converge in %d rounds (the network may oscillate, §7)", i, c.opts.maxRounds())
		}
		endRound := c.startSpan("round", obs.Int("round", round))
		if _, err := c.eachPhase("cp", func(_ int, w sidecar.WorkerAPI) (bool, error) { return false, w.GatherBGP() }); err != nil {
			endRound()
			return nil, err
		}
		changed, err := c.applyRound("bgp", i, round,
			func(w sidecar.WorkerAPI) (sidecar.ApplyReply, error) { return w.ApplyBGP() })
		endRound()
		if err != nil {
			return nil, err
		}
		c.cpRounds++
		if !changed {
			break
		}
	}
	var mu sync.Mutex
	if _, err := c.eachPhase("cp", func(_ int, w sidecar.WorkerAPI) (bool, error) {
		reply, err := w.EndShard()
		if err != nil {
			return false, err
		}
		mu.Lock()
		reports = append(reports, reply.Conditions...)
		mu.Unlock()
		return false, nil
	}); err != nil {
		return nil, err
	}
	// Piggyback a span harvest on the shard boundary: the workers just
	// finished EndShard, so their export rings hold the whole shard round.
	c.harvestAll()
	return reports, nil
}

// unforeseenDeps returns prefixes referenced by this round's conditional
// advertisements that live outside the current shard.
func (c *Controller) unforeseenDeps(reports []sidecar.ConditionReport, cur *shard.Shard, global []route.Prefix) []route.Prefix {
	seen := map[route.Prefix]bool{}
	var out []route.Prefix
	for _, rep := range reports {
		dev := c.snap.Devices[rep.Device]
		if dev == nil {
			continue
		}
		pl := dev.PrefixLists[rep.PrefixList]
		if pl == nil {
			continue
		}
		for _, p := range global {
			if !seen[p] && pl.Permits(p) && !cur.Contains(p) {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

func containsAny(sh *shard.Shard, prefixes []route.Prefix) bool {
	for _, p := range prefixes {
		if sh.Contains(p) {
			return true
		}
	}
	return false
}

// ShardMergeLog describes runtime shard merges performed during the last
// control plane run (§7's recovery path for unforeseen dependencies).
func (c *Controller) ShardMergeLog() []string {
	return append([]string(nil), c.shardMerge...)
}

// ComputeDataPlane has every worker build FIBs and port predicates (the
// first DPO stage, §3.3). FIB resolution problems are returned as warnings.
func (c *Controller) ComputeDataPlane() ([]string, error) {
	c.dpWanted = true
	var warnings []string
	err := c.recoverable(func() error {
		var err error
		warnings, err = c.computeDataPlane()
		return err
	})
	return warnings, err
}

func (c *Controller) computeDataPlane() ([]string, error) {
	if c.cpWanted && !c.cpDone {
		if err := c.runControlPlane(); err != nil {
			return nil, err
		}
	}
	var mu sync.Mutex
	var warnings []string
	err := c.timer.Time("dp-compute", func() error {
		return c.stage("dp-compute", func() error {
			_, err := c.eachPhase("dp-compute", func(_ int, w sidecar.WorkerAPI) (bool, error) {
				reply, err := w.ComputeDP()
				if err != nil {
					return false, err
				}
				mu.Lock()
				warnings = append(warnings, reply.Errors...)
				mu.Unlock()
				return false, nil
			})
			return err
		})
	})
	if err != nil {
		return nil, err
	}
	c.dpDone = true
	c.bumpEpoch()
	c.harvestAll()
	sort.Strings(warnings)
	return warnings, nil
}

// bumpEpoch advances the verified-state epoch and publishes it as a gauge.
func (c *Controller) bumpEpoch() {
	e := c.epoch.Add(1)
	c.epochAt.Store(time.Now().UnixNano())
	c.purgeQueryCache()
	if c.reg != nil {
		c.reg.Gauge(MetricEpoch, "Verified-state epoch (advances per completed verification).").
			Set(float64(e))
	}
	c.log.Debug("epoch advanced", obs.FUint64("epoch", e))
}

// OwnedPrefixes returns the prefixes a node originates (its BGP network
// statements) — the paper's notion of the node "holding" a destination
// prefix.
func (c *Controller) OwnedPrefixes(node string) []route.Prefix {
	dev := c.snap.Devices[node]
	if dev == nil || dev.BGP == nil {
		return nil
	}
	return dev.BGP.Networks
}

// PrefixOwners lists nodes that originate at least one prefix, sorted.
func (c *Controller) PrefixOwners() []string {
	var out []string
	for _, name := range c.snap.DeviceNames() {
		if len(c.OwnedPrefixes(name)) > 0 {
			out = append(out, name)
		}
	}
	return out
}

// RunQuery executes one property query (§4.4): inject the header space at
// every source, orchestrate wavefront rounds across workers until all
// packets reach final states or the TTL expires, then aggregate outcomes
// into a Collector on the controller's engine.
//
// When constrainSrc is true, each source's injected packet is additionally
// constrained to carry a source address from that node's owned prefixes,
// which lets a single traversal serve per-source attribution (all-pair
// checks); sources without owned prefixes are injected unconstrained.
func (c *Controller) RunQuery(q *dataplane.Query, constrainSrc bool) (*dataplane.Collector, error) {
	cols, err := c.RunQueryBatch([]*dataplane.Query{q}, constrainSrc)
	if err != nil {
		return nil, err
	}
	return cols[0], nil
}

// RunQueryBatch executes up to N batch-compatible queries (§ query plane)
// in ONE symbolic pass: a single injection phase carries every query's
// header-space predicate, each tagged with its batch index, and the shared
// wavefront rounds advance all of them together. Per-query outcomes are
// split apart at harvest, so each returned Collector is byte-identical to
// the one a solo RunQuery of that query would have produced (tags keep the
// packets in distinct wavefront slots; canonical BDD serialization makes
// the per-query harvests independent of their co-travellers).
//
// A batch of one takes the legacy single-query arming RPC — older workers
// that predate BeginQueryBatch keep answering solo queries; multi-query
// batches against such a fleet fail with errLegacyNoBatch, which the query
// scheduler turns into a sequential fallback.
func (c *Controller) RunQueryBatch(qs []*dataplane.Query, constrainSrc bool) ([]*dataplane.Collector, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("core: controller is closed")
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("core: empty query batch")
	}
	for i, q := range qs {
		if err := q.Validate(c.layout); err != nil {
			return nil, err
		}
		if i > 0 && !dataplane.BatchCompatible(qs[0], q) {
			return nil, fmt.Errorf("core: query %d is not batch-compatible with query 0", i)
		}
	}
	var cols []*dataplane.Collector
	err := c.recoverable(func() error {
		var err error
		cols, err = c.runQueryBatch(qs, constrainSrc)
		return err
	})
	if err != nil {
		return nil, err
	}
	return cols, nil
}

// runQueryBatch is one attempt; recovery re-runs it whole so fresh
// Collectors never mix outcomes from a failed attempt.
func (c *Controller) runQueryBatch(qs []*dataplane.Query, constrainSrc bool) ([]*dataplane.Collector, error) {
	if c.dpWanted && !c.dpDone {
		if _, err := c.computeDataPlane(); err != nil {
			return nil, err
		}
	}
	sources := make([][]string, len(qs))
	for i, q := range qs {
		sources[i] = q.Sources
		if len(sources[i]) == 0 {
			sources[i] = c.PrefixOwners()
		}
	}
	cols := make([]*dataplane.Collector, len(qs))
	for i, q := range qs {
		cols[i] = dataplane.NewCollector(c.engine, q)
	}
	err := c.timer.Time("dp-forward", func() error {
		return c.stage("dp-forward", func() error { return c.forwardQueryBatch(qs, sources, constrainSrc, cols) })
	})
	if err != nil {
		return nil, err
	}
	c.harvestAll()
	return cols, nil
}

// forwardQueryBatch is the body of the dp-forward stage: inject every
// query's predicate at its sources (tagged by batch index when there is
// more than one query), run wavefront rounds to quiescence, then split the
// harvest back into per-query outcome streams.
func (c *Controller) forwardQueryBatch(qs []*dataplane.Query, sources [][]string, constrainSrc bool, cols []*dataplane.Collector) error {
	// Intent-based slicing: only the workers owning nodes the sources can
	// possibly reach within the hop budget take part in the pass. nil means
	// every worker (slicing disabled or nothing to prune).
	ids, err := c.sliceWorkers(sources, qs[0].EffectiveMaxHops())
	if err != nil {
		return err
	}

	if len(qs) == 1 {
		if err := c.eachSubset(ids, func(_ int, w sidecar.WorkerAPI) error {
			return w.BeginQuery(sidecar.QueryRequest{Query: *qs[0]})
		}); err != nil {
			return err
		}
	} else {
		reqQs := make([]dataplane.Query, len(qs))
		for i, q := range qs {
			reqQs[i] = *q
		}
		if err := c.eachSubset(ids, func(_ int, w sidecar.WorkerAPI) error {
			return w.BeginQueryBatch(sidecar.QueryBatchRequest{Queries: reqQs})
		}); err != nil {
			if isNoBatchErr(err) {
				return errLegacyNoBatch
			}
			return err
		}
	}
	// Count the pass only once arming succeeded: an aborted legacy-fleet
	// attempt never injects, so it is not an injection phase.
	c.observeQueryPass(len(qs), ids)

	for i, q := range qs {
		base, err := q.Header.Compile(c.engine)
		if err != nil {
			return err
		}
		tag := ""
		if len(qs) > 1 {
			tag = dataplane.QueryTag(i)
		}
		for _, src := range sources[i] {
			pkt := base
			if constrainSrc {
				srcSet, err := c.prefixSetMatch(dataplane.OffSrcIP, c.OwnedPrefixes(src))
				if err != nil {
					return err
				}
				if srcSet != bdd.False {
					pkt, err = c.engine.And(base, srcSet)
					if err != nil {
						return err
					}
				}
			}
			if pkt == bdd.False {
				continue
			}
			owner, ok := c.assignment.Of[src]
			if !ok {
				return fmt.Errorf("core: unknown source node %q", src)
			}
			c.wmu.RLock()
			var w sidecar.WorkerAPI
			if owner < len(c.workers) {
				w = c.workers[owner]
			}
			c.wmu.RUnlock()
			if w == nil {
				// A concurrent Close emptied the directory mid-query.
				return fmt.Errorf("core: controller closed while querying (worker %d unavailable)", owner)
			}
			if err := w.Inject(sidecar.InjectRequest{
				Source: src,
				Tag:    tag,
				Packet: c.engine.Serialize(pkt),
			}); err != nil {
				return err
			}
		}
	}

	for hop := 0; hop <= qs[0].EffectiveMaxHops(); hop++ {
		endHop := c.startSpan("hop", obs.Int("hop", hop))
		if _, err := c.eachPhaseIDs("dp-forward", ids, func(_ int, w sidecar.WorkerAPI) (bool, error) { return false, w.DPRound() }); err != nil {
			endHop()
			return err
		}
		c.dpRounds++
		c.pmu.Lock()
		c.prog.Round = hop
		c.pmu.Unlock()
		busy, err := c.eachPhaseIDs("", ids, func(_ int, w sidecar.WorkerAPI) (bool, error) { return w.HasWork() })
		endHop()
		if err != nil {
			return err
		}
		if !busy {
			break
		}
	}

	var mu sync.Mutex
	batches := map[int]sidecar.OutcomeBatch{}
	if err := c.eachSubset(ids, func(id int, w sidecar.WorkerAPI) error {
		batch, err := w.FinishQuery()
		if err != nil {
			return err
		}
		mu.Lock()
		batches[id] = batch
		mu.Unlock()
		return nil
	}); err != nil {
		return err
	}
	// Decode per worker (set-encoded harvests materialize their shared
	// substrate once), then absorb per query in a global deterministic
	// order. With more than one query in flight each outcome's source
	// carries its query tag: split on it, strip it, and route the outcome
	// to its own collector.
	workerIDs := make([]int, 0, len(batches))
	for id := range batches {
		workerIDs = append(workerIDs, id)
	}
	sort.Ints(workerIDs)
	perQuery := make([][]dataplane.Outcome, len(qs))
	route := func(workerID int, o dataplane.Outcome) error {
		qi := 0
		if len(qs) > 1 {
			idx, rest, ok := dataplane.SplitQueryTag(o.Source)
			if !ok || idx >= len(qs) {
				return fmt.Errorf("core: harvest from worker %d: outcome source %q carries no valid query tag", workerID, o.Source)
			}
			qi, o.Source = idx, rest
		}
		perQuery[qi] = append(perQuery[qi], o)
		return nil
	}
	for _, id := range workerIDs {
		batch := batches[id]
		if len(batch.Wire) > 0 {
			outs, err := dataplane.DecodeOutcomes(c.engine, batch.Wire, batch.Outcomes)
			if err != nil {
				return fmt.Errorf("core: harvest from worker %d: %w", id, err)
			}
			for _, o := range outs {
				if err := route(id, o); err != nil {
					return err
				}
			}
			continue
		}
		for _, o := range batch.Outcomes {
			pkt, err := c.engine.Deserialize(o.Packet)
			if err != nil {
				return fmt.Errorf("core: harvest from worker %d: outcome %s@%s: %w", id, o.Source, o.Node, err)
			}
			if err := route(id, dataplane.Outcome{Source: o.Source, Node: o.Node, State: o.State, Packet: pkt}); err != nil {
				return err
			}
		}
	}
	for qi := range qs {
		all := perQuery[qi]
		sort.SliceStable(all, func(i, j int) bool {
			if all[i].Node != all[j].Node {
				return all[i].Node < all[j].Node
			}
			return all[i].Source < all[j].Source
		})
		for _, o := range all {
			if err := cols[qi].Add(o); err != nil {
				return err
			}
		}
	}
	return nil
}

// sliceWorkers computes the worker subset a pass must involve: breadth-
// first search over the topology adjacencies from every effective source,
// bounded by maxHops+1 edges — a packet advances one adjacency per
// wavefront round and the hop loop runs maxHops+1 rounds, so nodes beyond
// that horizon can never hold a packet of this pass. Returns nil (= all
// workers) when slicing is disabled or nothing can be pruned, keeping the
// full-fleet path byte-identical to the pre-slicing code.
func (c *Controller) sliceWorkers(sources [][]string, maxHops int) ([]int, error) {
	if c.opts.DisableQuerySlicing {
		return nil, nil
	}
	c.wmu.RLock()
	n := len(c.workers)
	c.wmu.RUnlock()
	if n <= 1 {
		return nil, nil
	}
	seen := map[string]int{}
	var frontier []string
	for _, srcs := range sources {
		for _, s := range srcs {
			if _, ok := seen[s]; !ok {
				seen[s] = 0
				frontier = append(frontier, s)
			}
		}
	}
	for depth := 0; depth <= maxHops && len(frontier) > 0; depth++ {
		var next []string
		for _, node := range frontier {
			for _, adj := range c.net.Adjacencies[node] {
				if _, ok := seen[adj.Neighbor]; !ok {
					seen[adj.Neighbor] = depth + 1
					next = append(next, adj.Neighbor)
				}
			}
		}
		frontier = next
	}
	inSlice := make([]bool, n)
	for node := range seen {
		if id, ok := c.assignment.Of[node]; ok && id >= 0 && id < n {
			inSlice[id] = true
		}
	}
	var ids []int
	for id, in := range inSlice {
		if in {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 || len(ids) == n {
		return nil, nil
	}
	return ids, nil
}

// prefixSetMatch ORs prefix cubes at the given field offset.
func (c *Controller) prefixSetMatch(offset int, prefixes []route.Prefix) (bdd.Ref, error) {
	acc := bdd.False
	for _, p := range prefixes {
		m, err := dataplane.PrefixMatch(c.engine, offset, p)
		if err != nil {
			return bdd.False, err
		}
		acc, err = c.engine.Or(acc, m)
		if err != nil {
			return bdd.False, err
		}
	}
	return acc, nil
}

// AllPairsResult reports the all-pair reachability check (the paper's
// default property, §5.2).
type AllPairsResult struct {
	Collector *dataplane.Collector
	// Unreached lists destinations with missing (source, destination
	// address) coverage.
	Unreached []string
	// Violations are the generic §4.4 checks (loops, blackholes,
	// multipath consistency).
	Violations []dataplane.Violation
	Sources    int
	Dests      int
	// Epoch is the verified-state epoch the traversal ran against.
	Epoch uint64
}

// CheckAllPairs runs all-pair reachability in one symbolic traversal:
// every prefix owner injects packets destined to the union of all owned
// prefixes, with source addresses constrained per owner; a destination is
// fully reached when its arrive-set covers every (source, destination
// address) combination.
func (c *Controller) CheckAllPairs() (*AllPairsResult, error) {
	owners := c.PrefixOwners()
	if len(owners) == 0 {
		return nil, fmt.Errorf("core: no prefix owners to check")
	}
	// Traffic is scoped to owned destinations: packets to unowned space
	// are out of the all-pair property (they would trivially blackhole).
	var allOwned []route.Prefix
	for _, o := range owners {
		allOwned = append(allOwned, c.OwnedPrefixes(o)...)
	}
	q := &dataplane.Query{
		Header:  &dataplane.HeaderSpace{DstIn: allOwned},
		Sources: owners,
		Dests:   owners,
	}
	col, epoch, err := c.SubmitQuery(q, true)
	if err != nil {
		return nil, err
	}
	res := &AllPairsResult{Collector: col, Sources: len(owners), Dests: len(owners), Epoch: epoch}
	srcUnion, err := c.prefixSetMatch(dataplane.OffSrcIP, allOwned)
	if err != nil {
		return nil, err
	}
	for _, d := range owners {
		dstSet, err := c.prefixSetMatch(dataplane.OffDstIP, c.OwnedPrefixes(d))
		if err != nil {
			return nil, err
		}
		expected, err := c.engine.And(dstSet, srcUnion)
		if err != nil {
			return nil, err
		}
		covered, err := c.engine.Implies(expected, col.Arrived(d))
		if err != nil {
			return nil, err
		}
		if !covered {
			res.Unreached = append(res.Unreached, d)
		}
	}
	res.Violations, err = col.Report()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// CollectRIBs merges the per-worker RIBs (requires Options.KeepRIBs).
func (c *Controller) CollectRIBs() (map[string]*route.RIB, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("core: controller is closed")
	}
	var out map[string]*route.RIB
	err := c.recoverable(func() error {
		var err error
		out, err = c.collectRIBs()
		return err
	})
	return out, err
}

func (c *Controller) collectRIBs() (map[string]*route.RIB, error) {
	if c.cpWanted && !c.cpDone {
		if err := c.runControlPlane(); err != nil {
			return nil, err
		}
	}
	var mu sync.Mutex
	out := map[string]*route.RIB{}
	err := c.each(func(_ int, w sidecar.WorkerAPI) error {
		routes, err := w.CollectRIBs()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		for node, rs := range routes {
			rib := route.NewRIB()
			byPrefix := map[route.Prefix][]*route.Route{}
			for _, r := range rs {
				byPrefix[r.Prefix] = append(byPrefix[r.Prefix], r)
			}
			for p, set := range byPrefix {
				rib.SetRoutes(p, set)
			}
			out[node] = rib
		}
		return nil
	})
	return out, err
}

// Stats gathers every worker's resource accounting.
func (c *Controller) Stats() ([]sidecar.WorkerStats, error) {
	c.wmu.RLock()
	n := len(c.workers)
	c.wmu.RUnlock()
	stats := make([]sidecar.WorkerStats, n)
	err := c.each(func(i int, w sidecar.WorkerAPI) error {
		st, err := w.Stats()
		stats[i] = st
		return err
	})
	return stats, err
}

// MaxPeakBytes returns the highest per-worker modelled peak (the paper's
// "per-worker peak memory usage", §5.2).
func MaxPeakBytes(stats []sidecar.WorkerStats) int64 {
	var max int64
	for _, s := range stats {
		if s.PeakBytes > max {
			max = s.PeakBytes
		}
	}
	return max
}
