package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"s2/internal/config"
	"s2/internal/sidecar"
)

// convergeCP drives the workers' Gather/Apply fixed point directly —
// BeginShard, then rounds until quiescent — WITHOUT the controller's
// EndShard, which strips the full-attribute RIBs the exporters serve
// from. The cursor tests probe exporters in their converged, still-live
// state, exactly what a mid-iteration pull sees.
func convergeCP(t *testing.T, c *Controller, gather func(*Worker) error, apply func(*Worker) (sidecar.ApplyReply, error)) {
	t.Helper()
	if err := c.Setup(); err != nil {
		t.Fatal(err)
	}
	for _, w := range c.locals {
		if err := w.BeginShard(sidecar.BeginShardRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; ; round++ {
		if round > 64 {
			t.Fatal("control plane did not converge in 64 rounds")
		}
		for _, w := range c.locals {
			if err := gather(w); err != nil {
				t.Fatal(err)
			}
		}
		changed := false
		for _, w := range c.locals {
			reply, err := apply(w)
			if err != nil {
				t.Fatal(err)
			}
			changed = changed || reply.Changed
		}
		if !changed {
			return
		}
	}
}

// pullCursorWorker converges a 2-worker FatTree BGP control plane and
// returns a local worker plus one (exporter, puller) pair that exports
// at least one advertisement: the cursor tests need a real BGP session,
// because ExportsTo only speaks to configured neighbors.
func pullCursorWorker(t *testing.T) (*Worker, string, string) {
	t.Helper()
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{Workers: 2, Seed: 1, Parallelism: 1})
	t.Cleanup(func() { c.Close() })
	convergeCP(t, c,
		func(w *Worker) error { return w.GatherBGP() },
		func(w *Worker) (sidecar.ApplyReply, error) { return w.ApplyBGP() })
	for _, w := range c.locals {
		if w == nil {
			continue
		}
		for exporter := range w.bgpProcs {
			for _, dest := range w.adjIndex[exporter] {
				advs, _, fresh, err := w.PullBGP(exporter, dest.Node, 0, false)
				if err != nil {
					t.Fatal(err)
				}
				if fresh && len(advs) > 0 {
					return w, exporter, dest.Node
				}
			}
		}
	}
	t.Fatal("no exporting (exporter, puller) pair found")
	return nil, "", ""
}

// TestPullBGPCursorSemantics pins the since/seen delta-pull contract the
// batched and per-pull paths both rely on: a pull at the current version
// with seen=true is a cheap no-op, any stale or unseen cursor re-exports.
func TestPullBGPCursorSemantics(t *testing.T) {
	w, exporter, puller := pullCursorWorker(t)

	advs, ver, fresh, err := w.PullBGP(exporter, puller, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh || len(advs) == 0 || ver == 0 {
		t.Fatalf("initial pull: fresh=%v advs=%d ver=%d, want a fresh export", fresh, len(advs), ver)
	}

	// Up-to-date cursor: nothing changed, so no payload and no freshness.
	got, ver2, fresh2, err := w.PullBGP(exporter, puller, ver, true)
	if err != nil {
		t.Fatal(err)
	}
	if fresh2 || got != nil || ver2 != ver {
		t.Fatalf("up-to-date pull: fresh=%v advs=%d ver=%d, want stale no-op at %d", fresh2, len(got), ver2, ver)
	}

	// seen=false means the puller lost its state (shard reset, worker
	// recovery): the exporter must re-send even at the current version.
	got, _, fresh3, err := w.PullBGP(exporter, puller, ver, false)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh3 || len(got) != len(advs) {
		t.Fatalf("seen=false pull: fresh=%v advs=%d, want full re-export of %d", fresh3, len(got), len(advs))
	}

	// A stale cursor (older version) re-exports too.
	got, _, fresh4, err := w.PullBGP(exporter, puller, ver-1, true)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh4 || len(got) != len(advs) {
		t.Fatalf("stale-cursor pull: fresh=%v advs=%d, want full re-export of %d", fresh4, len(got), len(advs))
	}

	if _, _, _, err := w.PullBGP("no-such-node", puller, 0, false); err == nil {
		t.Fatal("pull from a non-hosted exporter must error")
	}
}

// TestPullBGPBatchMatchesSingles pins the batch RPC's contract: each
// entry is served exactly like the equivalent individual PullBGP, in
// request order, including the cursor semantics.
func TestPullBGPBatchMatchesSingles(t *testing.T) {
	w, exporter, puller := pullCursorWorker(t)
	advs, ver, _, err := w.PullBGP(exporter, puller, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []sidecar.PullBGPRequest{
		{Exporter: exporter, Puller: puller, Since: 0, Seen: false},
		{Exporter: exporter, Puller: puller, Since: ver, Seen: true},
		{Exporter: exporter, Puller: puller, Since: ver - 1, Seen: true},
	}
	replies, err := w.PullBGPBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != len(reqs) {
		t.Fatalf("got %d replies for %d requests", len(replies), len(reqs))
	}
	if !replies[0].Fresh || !reflect.DeepEqual(replies[0].Advs, advs) {
		t.Fatalf("batch[0] should match the initial single pull")
	}
	if replies[1].Fresh || replies[1].Advs != nil || replies[1].Version != ver {
		t.Fatalf("batch[1] should be a stale no-op, got fresh=%v ver=%d", replies[1].Fresh, replies[1].Version)
	}
	if !replies[2].Fresh || len(replies[2].Advs) != len(advs) {
		t.Fatalf("batch[2] should re-export for the stale cursor")
	}
	if _, err := w.PullBGPBatch([]sidecar.PullBGPRequest{{Exporter: "no-such-node", Puller: puller}}); err == nil {
		t.Fatal("batch with a non-hosted exporter must error")
	}
}

// TestPullBGPConcurrentPullers hammers one exporter from many goroutines,
// each maintaining its own version cursor the way per-node gather tasks
// do. The contract under concurrency: versions never move backwards, a
// fresh reply always carries the advancing version, and a converged
// exporter eventually answers every cursor with a stale no-op. Run under
// -race this also proves the exporter-side locking.
func TestPullBGPConcurrentPullers(t *testing.T) {
	w, exporter, _ := pullCursorWorker(t)
	pullers := make([]string, 0, 4)
	for _, dest := range w.adjIndex[exporter] {
		pullers = append(pullers, dest.Node)
	}
	if len(pullers) == 0 {
		t.Fatal("exporter has no neighbors")
	}

	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			puller := pullers[g%len(pullers)]
			var ver uint64
			seen := false
			freshCount := 0
			for i := 0; i < iters; i++ {
				// Mix single and batch pulls on the same cursor.
				var advs int
				var nv uint64
				var fresh bool
				if i%3 == 2 {
					replies, err := w.PullBGPBatch([]sidecar.PullBGPRequest{
						{Exporter: exporter, Puller: puller, Since: ver, Seen: seen},
					})
					if err != nil {
						errs <- err
						return
					}
					advs, nv, fresh = len(replies[0].Advs), replies[0].Version, replies[0].Fresh
				} else {
					a, v, f, err := w.PullBGP(exporter, puller, ver, seen)
					if err != nil {
						errs <- err
						return
					}
					advs, nv, fresh = len(a), v, f
				}
				if nv < ver {
					errs <- fmt.Errorf("goroutine %d: version moved backwards: %d -> %d", g, ver, nv)
					return
				}
				if fresh {
					freshCount++
					if advs == 0 {
						errs <- fmt.Errorf("goroutine %d: fresh reply with no advertisements", g)
						return
					}
					ver, seen = nv, true
				} else if advs != 0 {
					errs <- fmt.Errorf("goroutine %d: stale reply carried %d advertisements", g, advs)
					return
				}
			}
			// The control plane is converged, so after the first fresh
			// export this cursor must have gone quiet.
			if freshCount != 1 {
				errs <- fmt.Errorf("goroutine %d: %d fresh replies from a converged exporter, want 1", g, freshCount)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// ospfLineTexts is a 3-router OSPF chain (r1 - r2 - r3), the smallest
// topology whose LSA flooding crosses a worker boundary when split two
// ways.
func ospfLineTexts() map[string]string {
	return map[string]string{
		"r1": `hostname r1
interface eth0
 ip address 10.0.0.0/31
interface lo0
 ip address 192.168.0.1/32
router ospf 1
 router-id 0.0.0.1
`,
		"r2": `hostname r2
interface eth0
 ip address 10.0.0.1/31
interface eth1
 ip address 10.0.1.0/31
router ospf 1
 router-id 0.0.0.2
`,
		"r3": `hostname r3
interface eth0
 ip address 10.0.1.1/31
interface lo0
 ip address 192.168.0.3/32
router ospf 1
 router-id 0.0.0.3
`,
	}
}

// TestPullLSACursorSemantics is the OSPF analogue: LSAsTo floods the full
// LSDB on a stale or unseen cursor and no-ops on an up-to-date one, for
// single pulls and batches alike, under concurrent pullers.
func TestPullLSACursorSemantics(t *testing.T) {
	texts := ospfLineTexts()
	snap, err := config.ParseTexts(withCfgSuffix(texts))
	if err != nil {
		t.Fatal(err)
	}
	c := newS2(t, snap, texts, Options{Workers: 2, Seed: 1, Parallelism: 1})
	defer c.Close()
	convergeCP(t, c,
		func(w *Worker) error { return w.GatherOSPF() },
		func(w *Worker) (sidecar.ApplyReply, error) { return w.ApplyOSPF() })

	var w *Worker
	for _, lw := range c.locals {
		if lw != nil && lw.ospfProcs["r2"] != nil {
			w = lw
		}
	}
	if w == nil {
		t.Fatal("no local worker hosts r2")
	}

	lsas, ver, fresh, err := w.PullLSAs("r2", "r1", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// r2's converged LSDB holds all three routers' LSAs.
	if !fresh || len(lsas) != 3 || ver == 0 {
		t.Fatalf("initial LSA pull: fresh=%v lsas=%d ver=%d, want full 3-LSA flood", fresh, len(lsas), ver)
	}
	got, ver2, fresh2, err := w.PullLSAs("r2", "r1", ver, true)
	if err != nil {
		t.Fatal(err)
	}
	if fresh2 || got != nil || ver2 != ver {
		t.Fatalf("up-to-date LSA pull: fresh=%v lsas=%d, want stale no-op", fresh2, len(got))
	}
	if _, _, _, err := w.PullLSAs("no-such-node", "r1", 0, false); err == nil {
		t.Fatal("LSA pull from a non-hosted exporter must error")
	}

	replies, err := w.PullLSABatch([]sidecar.PullLSAsRequest{
		{Exporter: "r2", Puller: "r1", Since: 0, Seen: false},
		{Exporter: "r2", Puller: "r1", Since: ver, Seen: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !replies[0].Fresh || len(replies[0].LSAs) != 3 {
		t.Fatalf("LSA batch[0]: fresh=%v lsas=%d, want full flood", replies[0].Fresh, len(replies[0].LSAs))
	}
	if replies[1].Fresh || replies[1].LSAs != nil {
		t.Fatalf("LSA batch[1]: fresh=%v, want stale no-op", replies[1].Fresh)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var ver uint64
			seen := false
			for i := 0; i < 100; i++ {
				lsas, nv, fresh, err := w.PullLSAs("r2", "r1", ver, seen)
				if err != nil {
					errs <- err
					return
				}
				if nv < ver {
					errs <- fmt.Errorf("goroutine %d: LSA version moved backwards", g)
					return
				}
				if fresh {
					if len(lsas) != 3 {
						errs <- fmt.Errorf("goroutine %d: fresh flood had %d LSAs", g, len(lsas))
						return
					}
					ver, seen = nv, true
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
