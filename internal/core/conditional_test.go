package core

import (
	"strings"
	"testing"

	"s2/internal/config"
	"s2/internal/route"
	"s2/internal/shard"
)

// conditionalTexts builds the classic conditional-advertisement scenario
// (the paper's reference [1]): r2 advertises the backup prefix
// 172.16.0.0/16 to r3 only while the primary prefix 10.8.0.0/24 is ABSENT
// from its BGP table. r1 announces the primary, so normally the backup is
// withheld. Several independent filler prefixes force multiple shards.
func conditionalTexts(withPrimary bool) map[string]string {
	r1 := `hostname r1
interface eth0
 ip address 10.0.0.0/31
interface vlan10
 ip address 10.8.0.1/24
interface vlan11
 ip address 10.9.0.1/24
interface vlan12
 ip address 10.10.0.1/24
interface vlan13
 ip address 10.11.0.1/24
router bgp 65001
 router-id 0.0.0.1
`
	if withPrimary {
		r1 += " network 10.8.0.0/24\n"
	}
	r1 += ` network 10.9.0.0/24
 network 10.10.0.0/24
 network 10.11.0.0/24
 neighbor 10.0.0.1 remote-as 65002
`
	return map[string]string{
		"r1": r1,
		"r2": `hostname r2
interface eth0
 ip address 10.0.0.1/31
interface eth1
 ip address 10.0.1.0/31
ip route 172.16.0.0/16 null0
ip prefix-list PL_BACKUP seq 10 permit 172.16.0.0/16
ip prefix-list PL_PRIMARY seq 10 permit 10.8.0.0/24
route-map ADV_BACKUP permit 10
 match ip address prefix-list PL_BACKUP
router bgp 65002
 router-id 0.0.0.2
 network 172.16.0.0/16
 neighbor 10.0.0.0 remote-as 65001
 neighbor 10.0.1.1 remote-as 65003
 neighbor 10.0.1.1 advertise-map ADV_BACKUP non-exist-map PL_PRIMARY
`,
		"r3": `hostname r3
interface eth0
 ip address 10.0.1.1/31
router bgp 65003
 router-id 0.0.0.3
 neighbor 10.0.1.0 remote-as 65002
`,
	}
}

func condSnap(t *testing.T, withPrimary bool) (*config.Snapshot, map[string]string) {
	t.Helper()
	texts := conditionalTexts(withPrimary)
	snap, err := config.ParseTexts(withCfgSuffix(texts))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return snap, texts
}

func TestConditionalAdvertisementSemantics(t *testing.T) {
	backup := route.MustParsePrefix("172.16.0.0/16")
	primary := route.MustParsePrefix("10.8.0.0/24")

	// Primary present: backup withheld from r3.
	snap, texts := condSnap(t, true)
	c := newS2(t, snap, texts, Options{Workers: 2, KeepRIBs: true, Seed: 1})
	runCP(t, c)
	ribs, err := c.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}
	if got := ribs["r3"].Get(backup); len(got) != 0 {
		t.Fatalf("backup must be withheld while the primary exists: %v", got)
	}
	if got := ribs["r3"].Get(primary); len(got) != 1 {
		t.Fatalf("primary should reach r3: %v", got)
	}

	// Primary absent: backup advertised.
	snap2, texts2 := condSnap(t, false)
	c2 := newS2(t, snap2, texts2, Options{Workers: 2, KeepRIBs: true, Seed: 1})
	runCP(t, c2)
	ribs2, err := c2.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}
	if got := ribs2["r3"].Get(backup); len(got) != 1 {
		t.Fatalf("backup must appear once the primary is gone: %v", ribs2["r3"].All())
	}
}

func TestConditionalDependencyInDPDG(t *testing.T) {
	snap, _ := condSnap(t, true)
	d := shard.BuildDPDG(snap)
	backup := route.MustParsePrefix("172.16.0.0/16")
	primary := route.MustParsePrefix("10.8.0.0/24")
	found := false
	for _, dep := range d.Deps[backup] {
		if dep == primary {
			found = true
		}
	}
	if !found {
		t.Fatalf("DPDG must record backup→primary dependency: %v", d.Deps[backup])
	}
	// Ignoring conditional deps removes the edge (the §7 scenario).
	d2 := shard.BuildDPDGOpts(snap, shard.DPDGOptions{IgnoreConditional: true})
	if len(d2.Deps[backup]) != 0 {
		t.Fatalf("IgnoreConditional must drop the edge: %v", d2.Deps[backup])
	}
	// With the full DPDG, sharding keeps them together.
	shards, err := shard.MakeShards(d, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		if sh.Contains(backup) != sh.Contains(primary) {
			t.Fatal("dependent prefixes split across shards")
		}
	}
}

// TestRuntimeShardMerge is §7's recovery path end to end: shards built
// WITHOUT conditional dependencies split the backup from the primary; the
// runtime detector notices the consulted condition references an
// out-of-shard prefix, merges the shards, recomputes, and the final RIBs
// match the unsharded run.
func TestRuntimeShardMerge(t *testing.T) {
	snap, texts := condSnap(t, true)
	ref := newS2(t, snap, texts, Options{Workers: 2, Shards: 1, KeepRIBs: true, Seed: 1})
	runCP(t, ref)
	want, err := ref.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}

	snap2, _ := condSnap(t, true)
	c := newS2(t, snap2, texts, Options{
		Workers: 2, Shards: 5, KeepRIBs: true, Seed: 1,
		IgnoreConditionalDeps: true,
	})
	runCP(t, c)
	got, err := c.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}
	merges := c.ShardMergeLog()
	if len(merges) == 0 {
		t.Fatal("expected a runtime shard merge; did the shards land together by luck? lower the seed variety")
	}
	for _, m := range merges {
		if !strings.Contains(m, "unforeseen conditional dependency") {
			t.Errorf("merge log entry: %q", m)
		}
	}
	for node, rib := range want {
		if !rib.Equal(got[node]) {
			t.Fatalf("%s differs after runtime merge: %v", node, rib.Diff(got[node]))
		}
	}
}

// TestRuntimeMergeNotNeededWithFullDPDG: when the static DPDG already
// co-locates the dependent prefixes, no runtime merge happens.
func TestRuntimeMergeNotNeededWithFullDPDG(t *testing.T) {
	snap, texts := condSnap(t, true)
	c := newS2(t, snap, texts, Options{Workers: 2, Shards: 5, KeepRIBs: true, Seed: 1})
	runCP(t, c)
	if merges := c.ShardMergeLog(); len(merges) != 0 {
		t.Fatalf("static DPDG should prevent runtime merges: %v", merges)
	}
}
