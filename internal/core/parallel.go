package core

import (
	"sync"
	"sync/atomic"
)

// runIndexed runs fn(0) … fn(n-1) on up to procs goroutines. procs<=1 (or
// n<=1) degenerates to a plain in-order loop with fail-fast semantics — the
// sequential reference behavior. In the parallel case every index still
// runs at most once; on error the pool stops handing out new indexes and
// the error with the lowest index among those observed is returned, so the
// reported failure is stable across schedules whenever errors are not
// racing each other.
func runIndexed(procs, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if procs <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if procs > n {
		procs = n
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
