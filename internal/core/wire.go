// The worker half of the shared-substrate wire protocol (see
// internal/bdd/wire.go for the codec): boundary-crossing packets are
// coalesced per destination worker and shipped as one DeliverBatch
// message — a single topologically-ordered node table plus per-packet
// roots — with a per-peer bdd.WireSession so nodes the peer already
// materialized this phase are referenced by remote id instead of being
// re-encoded. Peers that predate the RPC, and runs with -no-wire-dedup,
// fall back to one independently serialized BDD per packet (the PR 3
// pull-batch fallback pattern).

package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"s2/internal/bdd"
	"s2/internal/sidecar"
)

// wireItem is one boundary-crossing packet awaiting shipment: delivery
// coordinates plus the live engine ref (serialization is deferred to ship
// time so a whole chunk can share one substrate).
type wireItem struct {
	source, node, inPort string
	out                  bdd.Ref
}

// wireDelivery is one accepted DeliverBatch message parked until the next
// inbox drain: the engine must not be touched from peer RPC goroutines
// (the receiver's own round may be mid-GC), so materialization waits for
// the worker's phase goroutine, in arrival order.
type wireDelivery struct {
	from  int
	wire  []byte
	items []sidecar.WirePacket
	round int
}

// peerLacksWire reports whether peer owner rejected DeliverBatch before.
func (w *Worker) peerLacksWire(owner int) bool {
	w.noBatchMu.Lock()
	defer w.noBatchMu.Unlock()
	return w.noWire[owner]
}

// markNoWire records that peer owner does not serve DeliverBatch, so later
// rounds skip straight to per-packet deliveries.
func (w *Worker) markNoWire(owner int) {
	w.noBatchMu.Lock()
	w.noWire[owner] = true
	w.noBatchMu.Unlock()
}

// DeliverBatch implements sidecar.WorkerAPI: accept a shared-substrate
// packet batch from a peer. Like DeliverPackets, only the inbox side is
// touched — Accept is header-only bookkeeping — and the substrate is
// materialized at the next drain. A Reset reply tells the sender this
// worker no longer holds the session state the message splices onto.
func (w *Worker) DeliverBatch(req sidecar.DeliverBatchRequest) (sidecar.DeliverBatchReply, error) {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	if w.engine == nil || w.recvTables == nil {
		return sidecar.DeliverBatchReply{}, fmt.Errorf("core: worker %d: no active query for batch delivery", w.id)
	}
	t := w.recvTables[req.From]
	if t == nil {
		t = bdd.NewWireTable()
		w.recvTables[req.From] = t
	}
	ok, err := t.Accept(req.Wire, w.engine.NumVars())
	if err != nil {
		return sidecar.DeliverBatchReply{}, fmt.Errorf("core: worker %d: batch from %d: %w", w.id, req.From, err)
	}
	if !ok {
		return sidecar.DeliverBatchReply{Reset: true}, nil
	}
	w.wireInbox = append(w.wireInbox, wireDelivery{from: req.From, wire: req.Wire, items: req.Items, round: req.Round})
	w.statsPackets += int64(len(req.Items))
	return sidecar.DeliverBatchReply{}, nil
}

// drainInbox moves queued deliveries stamped for rounds <= upTo into cur,
// Or-merging per slot: legacy per-packet payloads deserialize individually;
// wire substrates materialize in arrival order — each message bulk-inserts
// its node table into the engine in one pass under a single stripe-ordered
// lock acquisition — and resolve packet roots against the sender's table.
// Deliveries stamped for later rounds stay parked so that a packet crosses
// exactly one adjacency per wavefront round no matter how peer DPRounds
// interleave; the phase barrier guarantees every round-r shipment has
// arrived before any round-r drain begins, and rounds arrive monotonically
// per sender, so the kept prefix preserves per-sender wire session order.
func (w *Worker) drainInbox(cur map[packetSlot]bdd.Ref, upTo int) error {
	w.qmu.Lock()
	var inbox, parked []sidecar.PacketDelivery
	for _, d := range w.inbox {
		if d.Round > upTo {
			parked = append(parked, d)
		} else {
			inbox = append(inbox, d)
		}
	}
	w.inbox = parked
	var wireIn, wireParked []wireDelivery
	for _, wd := range w.wireInbox {
		if wd.round > upTo {
			wireParked = append(wireParked, wd)
		} else {
			wireIn = append(wireIn, wd)
		}
	}
	w.wireInbox = wireParked
	// Snapshot the table pointers for the senders being drained: peers keep
	// delivering (and inserting sessions for new senders) under qmu while
	// this drain runs, so the shared map must not leave the lock. The tables
	// themselves are safe to use outside it — accept-side and
	// materialize-side state are disjoint by design (see bdd.WireTable).
	tables := make(map[int]*bdd.WireTable, len(wireIn))
	for _, wd := range wireIn {
		tables[wd.from] = w.recvTables[wd.from]
	}
	w.qmu.Unlock()

	merge := func(slot packetSlot, pkt bdd.Ref) error {
		if prev, ok := cur[slot]; ok {
			merged, err := w.engine.Or(prev, pkt)
			if err != nil {
				return err
			}
			cur[slot] = merged
			return nil
		}
		cur[slot] = pkt
		return nil
	}
	for _, d := range inbox {
		pkt, err := w.engine.Deserialize(d.Packet)
		if err != nil {
			return fmt.Errorf("core: worker %d deserializing packet for %s: %w", w.id, d.Node, err)
		}
		if err := merge(packetSlot{source: d.Source, node: d.Node, inPort: d.InPort}, pkt); err != nil {
			return err
		}
	}
	for _, wd := range wireIn {
		t := tables[wd.from]
		if t == nil {
			return fmt.Errorf("core: worker %d: wire delivery from %d without a session", w.id, wd.from)
		}
		if err := t.Materialize(w.engine, wd.wire); err != nil {
			return fmt.Errorf("core: worker %d materializing batch from %d: %w", w.id, wd.from, err)
		}
		for _, it := range wd.items {
			pkt, err := t.Resolve(it.Root)
			if err != nil {
				return fmt.Errorf("core: worker %d resolving packet for %s: %w", w.id, it.Node, err)
			}
			if err := merge(packetSlot{source: it.Source, node: it.Node, inPort: it.InPort}, pkt); err != nil {
				return err
			}
		}
	}
	return nil
}

// wireBytesOf models the payload cost of one batch message: the substrate
// plus each packet's varint root reference. Delivery coordinates are
// excluded in both encoding modes, keeping the wire/packet byte
// comparison honest.
func wireBytesOf(wire []byte, roots []uint32) int {
	n := len(wire)
	var scratch [binary.MaxVarintLen64]byte
	for _, r := range roots {
		n += binary.PutUvarint(scratch[:], uint64(r))
	}
	return n
}

// deliverWire ships items to peer over the shared-substrate path. ok ==
// false (with nil error) means the peer does not serve DeliverBatch and
// the caller must fall back to per-packet delivery. A Reset reply runs
// the handshake once: reset the session and re-send self-contained.
func (w *Worker) deliverWire(peer sidecar.WorkerAPI, owner int, items []wireItem, next int) (ok bool, err error) {
	sess := w.sendSessions[owner]
	if sess == nil {
		sess = bdd.NewWireSession()
		w.sendSessions[owner] = sess
	}
	refs := make([]bdd.Ref, len(items))
	for i, it := range items {
		refs[i] = it.out
	}
	req := sidecar.DeliverBatchRequest{From: w.id, Items: make([]sidecar.WirePacket, len(items)), Round: next}
	for attempt := 0; attempt < 2; attempt++ {
		wire, roots, _, deduped := w.engine.EncodeDelta(sess, refs)
		req.Wire = wire
		for i, it := range items {
			req.Items[i] = sidecar.WirePacket{Source: it.source, Node: it.node, InPort: it.inPort, Root: roots[i]}
		}
		reply, err := peer.DeliverBatch(req)
		if err != nil {
			// Either way the peer did not materialize this message, so the
			// session's optimistic bookkeeping is wrong: start clean.
			sess.Reset()
			w.flight.Record("wire", "session to peer %d reset after delivery error: %v", owner, err)
			if isNoBatchErr(err) {
				w.markNoWire(owner)
				return false, nil
			}
			return false, fmt.Errorf("core: worker %d delivering batch to %d: %w", w.id, owner, err)
		}
		if !reply.Reset {
			w.obsWireBytes("wire", wireBytesOf(wire, roots))
			w.obsWireDeduped(deduped)
			return true, nil
		}
		// The peer lost the session (restart, recovery, new phase): bump
		// the epoch and re-send everything from scratch. A fresh message
		// is always acceptable, so a second Reset means a broken peer.
		sess.Reset()
		w.flight.Record("wire", "peer %d requested a fresh session, resending", owner)
	}
	return false, fmt.Errorf("core: worker %d: peer %d refused a fresh wire session", w.id, owner)
}

// shipRemote delivers the round's (or chunk's) boundary crossings in
// deterministic owner order, one message per destination worker on the
// wire path, falling back per packet for peers without DeliverBatch or
// when wire dedup is disabled. next is the wavefront round the crossings
// belong to at the receiver (the shipping round plus one).
func (w *Worker) shipRemote(remote map[int][]wireItem, next int) error {
	owners := make([]int, 0, len(remote))
	for o := range remote {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	for _, o := range owners {
		items := remote[o]
		if len(items) == 0 {
			continue
		}
		peer := w.peers[o]
		if peer == nil {
			return fmt.Errorf("core: worker %d has no peer %d", w.id, o)
		}
		if w.wireDedup && !w.peerLacksWire(o) {
			ok, err := w.deliverWire(peer, o, items, next)
			if err != nil {
				return err
			}
			if ok {
				continue
			}
		}
		out := make([]sidecar.PacketDelivery, len(items))
		bytes := 0
		for i, it := range items {
			pkt := w.engine.Serialize(it.out)
			bytes += len(pkt)
			out[i] = sidecar.PacketDelivery{Source: it.source, Node: it.node, InPort: it.inPort, Packet: pkt, Round: next}
		}
		if err := peer.DeliverPackets(out); err != nil {
			return fmt.Errorf("core: worker %d delivering to %d: %w", w.id, o, err)
		}
		w.obsWireBytes("packet", bytes)
	}
	return nil
}
