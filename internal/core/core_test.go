package core

import (
	"errors"
	"net"
	"strings"
	"testing"

	"s2/internal/baseline"
	"s2/internal/config"
	"s2/internal/dataplane"
	"s2/internal/metrics"
	"s2/internal/partition"
	"s2/internal/route"
	"s2/internal/sidecar"
	"s2/internal/synth"
)

func fatTreeSnap(t *testing.T, k int) (*config.Snapshot, map[string]string) {
	t.Helper()
	texts, err := synth.FatTree(synth.FatTreeOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := config.ParseTexts(withCfgSuffix(texts))
	if err != nil {
		t.Fatal(err)
	}
	return snap, texts
}

func withCfgSuffix(texts map[string]string) map[string]string {
	out := make(map[string]string, len(texts))
	for name, text := range texts {
		out[name+".cfg"] = text
	}
	return out
}

func newS2(t *testing.T, snap *config.Snapshot, texts map[string]string, opts Options) *Controller {
	t.Helper()
	c, err := NewController(snap, texts, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runCP(t *testing.T, c *Controller) {
	t.Helper()
	if err := c.RunControlPlane(); err != nil {
		t.Fatal(err)
	}
}

func runFull(t *testing.T, c *Controller) *AllPairsResult {
	t.Helper()
	runCP(t, c)
	warnings, err := c.ComputeDataPlane()
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("FIB warnings: %v", warnings)
	}
	res, err := c.CheckAllPairs()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestS2MatchesBatfishRIBs is §5.3's equivalence claim: S2 and the
// centralized baseline output the same set of RIBs.
func TestS2MatchesBatfishRIBs(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{Workers: 4, Shards: 1, KeepRIBs: true, Seed: 1})
	runCP(t, c)
	s2RIBs, err := c.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}

	snap2, _ := fatTreeSnap(t, 4)
	bf, err := baseline.NewBatfish(snap2, baseline.BatfishOptions{KeepRIBs: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := bf.RunControlPlane(); err != nil {
		t.Fatal(err)
	}
	bfRIBs, err := bf.RIBs()
	if err != nil {
		t.Fatal(err)
	}

	if len(s2RIBs) != len(bfRIBs) {
		t.Fatalf("node counts differ: %d vs %d", len(s2RIBs), len(bfRIBs))
	}
	total := 0
	for node, rib := range s2RIBs {
		other := bfRIBs[node]
		if other == nil {
			t.Fatalf("baseline missing node %s", node)
		}
		if !rib.Equal(other) {
			t.Fatalf("%s RIBs differ at prefixes %v", node, rib.Diff(other))
		}
		total += rib.RouteCount()
	}
	if total == 0 {
		t.Fatal("no routes computed at all")
	}
}

// TestShardingPreservesRIBs is §4.5's correctness claim: sharded and
// unsharded runs produce identical RIBs, including with aggregation
// dependencies (the DCN workload).
func TestShardingPreservesRIBs(t *testing.T) {
	texts, err := synth.DCN(synth.DCNOptions{
		Clusters: 2, TORsPerCluster: 3, FabricWidth: 2, CoreWidth: 2,
		DeepClusters: true, WithAggregation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	snapA, err := config.ParseTexts(withCfgSuffix(texts))
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := config.ParseTexts(withCfgSuffix(texts))
	if err != nil {
		t.Fatal(err)
	}

	un := newS2(t, snapA, texts, Options{Workers: 3, Shards: 1, KeepRIBs: true, Seed: 2})
	runCP(t, un)
	unRIBs, err := un.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}

	sh := newS2(t, snapB, texts, Options{Workers: 3, Shards: 6, KeepRIBs: true, Seed: 2})
	runCP(t, sh)
	if len(sh.Shards()) < 2 {
		t.Fatalf("expected multiple shards, got %d", len(sh.Shards()))
	}
	shRIBs, err := sh.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}

	for node, rib := range unRIBs {
		if !rib.Equal(shRIBs[node]) {
			t.Fatalf("%s differs: %v", node, rib.Diff(shRIBs[node]))
		}
	}
}

// TestAllPairsFatTree checks the paper's default property end to end on
// the distributed path: a healthy FatTree has full all-pair reachability
// and no violations.
func TestAllPairsFatTree(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{Workers: 4, Shards: 2, Seed: 3})
	res := runFull(t, c)
	if len(res.Unreached) != 0 {
		t.Fatalf("unreached destinations: %v", res.Unreached)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Sources != 8 || res.Dests != 8 {
		t.Fatalf("FatTree4 has 8 edges; got %d/%d", res.Sources, res.Dests)
	}
}

// TestS2MatchesBatfishReachability cross-checks the distributed DPV
// against the centralized one on a network WITH a deliberate ACL
// blackhole.
func TestS2MatchesBatfishReachability(t *testing.T) {
	texts, err := synth.FatTree(synth.FatTreeOptions{K: 4, WithACL: true})
	if err != nil {
		t.Fatal(err)
	}
	snapA, err := config.ParseTexts(withCfgSuffix(texts))
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := config.ParseTexts(withCfgSuffix(texts))
	if err != nil {
		t.Fatal(err)
	}

	c := newS2(t, snapA, texts, Options{Workers: 4, Seed: 4})
	s2res := runFull(t, c)

	bf, err := baseline.NewBatfish(snapB, baseline.BatfishOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bf.RunControlPlane(); err != nil {
		t.Fatal(err)
	}
	if _, err := bf.ComputeDataPlane(); err != nil {
		t.Fatal(err)
	}
	bfres, err := bf.CheckAllPairs()
	if err != nil {
		t.Fatal(err)
	}

	// The ACL drops traffic to edge 0's prefix on its host port: both
	// systems must report that destination unreached and a blackhole.
	if len(s2res.Unreached) != 1 || len(bfres.Unreached) != 1 || s2res.Unreached[0] != bfres.Unreached[0] {
		t.Fatalf("unreached mismatch: s2=%v batfish=%v", s2res.Unreached, bfres.Unreached)
	}
	s2HasBH, bfHasBH := false, false
	for _, v := range s2res.Violations {
		if v.Kind == "blackhole" {
			s2HasBH = true
		}
	}
	for _, v := range bfres.Violations {
		if v.Kind == "blackhole" {
			bfHasBH = true
		}
	}
	if !s2HasBH || !bfHasBH {
		t.Fatalf("blackhole must be flagged by both: s2=%v batfish=%v", s2res.Violations, bfres.Violations)
	}
}

// TestDCNEndToEnd runs the DCN-like workload (aggregation, AS_PATH
// overwrite, VSBs, mixed-depth clusters) through the full distributed
// pipeline.
func TestDCNEndToEnd(t *testing.T) {
	texts, err := synth.DCN(synth.DCNOptions{
		Clusters: 2, TORsPerCluster: 3, FabricWidth: 2, CoreWidth: 2,
		DeepClusters: true, WithAggregation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := config.ParseTexts(withCfgSuffix(texts))
	if err != nil {
		t.Fatal(err)
	}
	c := newS2(t, snap, texts, Options{Workers: 4, Shards: 4, Seed: 5})
	res := runFull(t, c)
	if len(res.Unreached) != 0 {
		t.Fatalf("unreached: %v", res.Unreached)
	}
	for _, v := range res.Violations {
		if v.Kind == "loop" {
			t.Fatalf("unexpected loop: %v", v)
		}
	}
}

func TestMemoryBudgetOOM(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{Workers: 2, MemoryBudget: 2048, Seed: 6})
	err := c.RunControlPlane()
	if !errors.Is(err, metrics.ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestPartitionSchemesAgree(t *testing.T) {
	// Different partition schemes must not change verification results
	// (§5.6 compares only their performance).
	var reference map[string]*route.RIB
	for _, scheme := range []partition.Scheme{partition.Metis, partition.Random, partition.Expert, partition.CommHeavy} {
		snap, texts := fatTreeSnap(t, 4)
		c := newS2(t, snap, texts, Options{Workers: 4, Scheme: scheme, KeepRIBs: true, Seed: 7})
		runCP(t, c)
		ribs, err := c.CollectRIBs()
		if err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = ribs
			continue
		}
		for node, rib := range reference {
			if !rib.Equal(ribs[node]) {
				t.Fatalf("scheme %s changes %s RIB", scheme, node)
			}
		}
	}
}

func TestSpillToDisk(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{Workers: 2, Shards: 4, SpillDir: t.TempDir(), Seed: 8})
	res := runFull(t, c)
	if len(res.Unreached) != 0 || len(res.Violations) != 0 {
		t.Fatalf("spilled run differs: %v %v", res.Unreached, res.Violations)
	}
}

func TestWaypointQueryDistributed(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{Workers: 4, MetaBits: 2, Seed: 9})
	runCP(t, c)
	if _, err := c.ComputeDataPlane(); err != nil {
		t.Fatal(err)
	}
	// Traffic from edge-0-0 to edge-1-0's prefix transits some core; ask
	// for an impossible waypoint (an edge in pod 2) and a plausible
	// waypoint query structure.
	dst := c.OwnedPrefixes("edge-1-0")[0]
	q := &dataplane.Query{
		Header:   &dataplane.HeaderSpace{DstPrefix: &dst},
		Sources:  []string{"edge-0-0"},
		Dests:    []string{"edge-1-0"},
		Transits: []string{"edge-2-0"},
	}
	col, err := c.RunQuery(q, false)
	if err != nil {
		t.Fatal(err)
	}
	vios, err := col.Report()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range vios {
		if v.Kind == "waypoint" {
			found = true
		}
	}
	if !found {
		t.Fatalf("waypoint through edge-2-0 is impossible; expected violation, got %v", vios)
	}
}

func TestSingleWorkerEqualsMany(t *testing.T) {
	snap1, texts := fatTreeSnap(t, 4)
	one := newS2(t, snap1, texts, Options{Workers: 1, KeepRIBs: true, Seed: 10})
	runCP(t, one)
	oneRIBs, err := one.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}
	snap8, _ := fatTreeSnap(t, 4)
	many := newS2(t, snap8, texts, Options{Workers: 8, KeepRIBs: true, Seed: 10})
	runCP(t, many)
	manyRIBs, err := many.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}
	for node, rib := range oneRIBs {
		if !rib.Equal(manyRIBs[node]) {
			t.Fatalf("worker count changes %s RIB: %v", node, rib.Diff(manyRIBs[node]))
		}
	}
}

func TestStatsAndCommunication(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{Workers: 4, Seed: 11})
	res := runFull(t, c)
	if res == nil {
		t.Fatal("no result")
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("stats for %d workers", len(stats))
	}
	totalNodes, pulls, packets := 0, int64(0), int64(0)
	for _, s := range stats {
		totalNodes += s.Nodes
		pulls += s.RoutePulls
		packets += s.PacketsIn
		if s.PeakBytes <= 0 {
			t.Errorf("worker %d has no peak memory", s.WorkerID)
		}
	}
	if totalNodes != 20 {
		t.Fatalf("FatTree4 has 20 switches; workers host %d", totalNodes)
	}
	if pulls == 0 {
		t.Fatal("multi-worker run must have cross-worker route pulls")
	}
	if packets == 0 {
		t.Fatal("multi-worker DPV must ship packets across workers")
	}
	if MaxPeakBytes(stats) <= 0 {
		t.Fatal("MaxPeakBytes")
	}
	if c.CPRounds() == 0 || c.DPRounds() == 0 {
		t.Fatal("round counters")
	}
}

// TestTCPTransport runs the full pipeline with workers serving the real
// sidecar RPC protocol over TCP listeners, exactly as cmd/s2worker does.
func TestTCPTransport(t *testing.T) {
	const workers = 2
	addrs := make([]string, workers)
	for i := 0; i < workers; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer lis.Close()
		addrs[i] = lis.Addr().String()
		go sidecar.Serve(NewWorker(), lis)
	}

	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{WorkerAddrs: addrs, KeepRIBs: true, Shards: 2, Seed: 12})
	res := runFull(t, c)
	if len(res.Unreached) != 0 || len(res.Violations) != 0 {
		t.Fatalf("TCP run: unreached=%v violations=%v", res.Unreached, res.Violations)
	}

	// RIBs over the wire match an in-process run.
	tcpRIBs, err := c.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}
	snap2, _ := fatTreeSnap(t, 4)
	local := newS2(t, snap2, texts, Options{Workers: 2, KeepRIBs: true, Shards: 2, Seed: 12})
	runCP(t, local)
	localRIBs, err := local.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}
	for node, rib := range localRIBs {
		if !rib.Equal(tcpRIBs[node]) {
			t.Fatalf("TCP and inproc RIBs differ at %s", node)
		}
	}
}

func TestControllerValidation(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	if _, err := NewController(snap, texts, Options{}); err == nil {
		t.Fatal("zero workers must fail")
	}
	c := newS2(t, snap, texts, Options{Workers: 2})
	runCP(t, c)
	if _, err := c.ComputeDataPlane(); err != nil {
		t.Fatal(err)
	}
	// Query with more transits than metadata bits.
	q := &dataplane.Query{Transits: []string{"a", "b", "c"}}
	if _, err := c.RunQuery(q, false); err == nil {
		t.Fatal("transit overflow must fail")
	}
	// CollectRIBs without KeepRIBs.
	if _, err := c.CollectRIBs(); err == nil {
		t.Fatal("CollectRIBs without KeepRIBs must fail")
	}
}

func TestQueryBeforeComputeDPFails(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{Workers: 2})
	runCP(t, c)
	q := &dataplane.Query{Sources: []string{"edge-0-0"}}
	if _, err := c.RunQuery(q, false); err == nil ||
		!strings.Contains(err.Error(), "ComputeDP") {
		t.Fatal("query before ComputeDP must fail cleanly")
	}
}

func TestScaleK6MultiWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	snap, texts := fatTreeSnap(t, 6)
	c := newS2(t, snap, texts, Options{Workers: 6, Shards: 4, Seed: 13,
		LoadOf: partition.EstimateFatTreeLoad(6)})
	res := runFull(t, c)
	if len(res.Unreached) != 0 || len(res.Violations) != 0 {
		t.Fatalf("k=6: unreached=%v violations=%d", res.Unreached, len(res.Violations))
	}
}

func TestBDDNodeTableOverflow(t *testing.T) {
	// §2.2's DPV failure mode: the BDD node table is bounded; a tiny
	// limit must surface as a clean error, not a hang or corruption.
	snap, texts := fatTreeSnap(t, 4)
	c, err := NewController(snap, texts, Options{Workers: 2, MaxBDDNodes: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunControlPlane(); err != nil {
		t.Fatal(err)
	}
	_, err = c.ComputeDataPlane()
	if err == nil {
		_, err = c.CheckAllPairs()
	}
	if err == nil || !strings.Contains(err.Error(), "node table full") {
		t.Fatalf("expected node table overflow, got %v", err)
	}
}

// TestFigure11FanOut reproduces the paper's Figure 11 observation: checking
// single-pair reachability between two edge switches in different pods
// still triggers packet forwarding on ALL workers, because the core fans
// the symbolic packet out to every pod to find all paths.
func TestFigure11FanOut(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{
		Workers: 4, Scheme: partition.Expert, Seed: 1,
	})
	runCP(t, c)
	if _, err := c.ComputeDataPlane(); err != nil {
		t.Fatal(err)
	}
	// Expert partitioning puts each pod on one worker (4 pods, 4
	// workers), so cross-worker packet deliveries measure the fan-out.
	dst := c.OwnedPrefixes("edge-3-0")[0]
	q := &dataplane.Query{
		Header:  &dataplane.HeaderSpace{DstPrefix: &dst},
		Sources: []string{"edge-0-0"},
		Dests:   []string{"edge-3-0"},
	}
	col, err := c.RunQuery(q, false)
	if err != nil {
		t.Fatal(err)
	}
	if col.Arrived("edge-3-0") == 0 {
		t.Fatal("single pair must be reachable")
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	receiving := 0
	for _, st := range stats {
		if st.PacketsIn > 0 {
			receiving++
		}
	}
	// The source's worker injects locally; every OTHER worker must have
	// received packets (the copy-to-all-pods fan-out at the core).
	if receiving < 3 {
		t.Fatalf("single-pair check should fan out across workers; only %d of 4 received packets (stats %+v)",
			receiving, stats)
	}
}
