// Attribution report: a per-worker × per-stage accounting table rendered
// from the merged trace (controller spans + harvested worker spans), the
// telemetry registry, and per-connection transport counters. It answers
// "where did the run's time go, and on which worker" without opening the
// Chrome trace: wall time per stage, RPC count and time, transport bytes,
// BDD engine size, and GC pauses.

package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"s2/internal/sidecar"
)

// reportStages fixes the column order of the per-stage table.
var reportStages = []string{"setup", "cp-bgp", "cp-ospf", "dp-compute", "dp-forward", "gc"}

// stageOfSpan maps a span name from the merged trace to a report stage.
// Container spans ("shard" wraps the per-phase spans and would double-count)
// and bookkeeping spans map to "". Controller stage spans arrive as
// "stage:<name>".
func stageOfSpan(name string) string {
	name = strings.TrimPrefix(name, "stage:")
	switch name {
	case "setup", "partition+setup":
		return "setup"
	case "gather-bgp", "apply-bgp", "end-shard", "cp-bgp":
		return "cp-bgp"
	case "gather-ospf", "apply-ospf", "cp-ospf":
		return "cp-ospf"
	case "compute-dp", "dp-compute":
		return "dp-compute"
	case "begin-query", "dp-round", "finish-query", "dp-forward":
		return "dp-forward"
	case "gc":
		return "gc"
	}
	return ""
}

// StageTime accumulates wall time over the spans attributed to one stage.
type StageTime struct {
	Spans  int   `json:"spans"`
	Micros int64 `json:"micros"`
}

// WorkerAttribution is one worker's row of the report.
type WorkerAttribution struct {
	Worker       int                  `json:"worker"`
	Stages       map[string]StageTime `json:"stages"`
	RPCCount     int64                `json:"rpc_count"`
	RPCMicros    int64                `json:"rpc_micros"`
	BytesRead    int64                `json:"bytes_read,omitempty"`
	BytesWritten int64                `json:"bytes_written,omitempty"`
	BDDNodes     int                  `json:"bdd_nodes"`
	PeakBytes    int64                `json:"peak_bytes"`
	GCPauses     int                  `json:"gc_pauses"`
	GCMicros     int64                `json:"gc_micros"`
	// GC phase split and cache-relocation outcome, summed over the worker's
	// collections (from the gc spans' mark_us/sweep_us/relocate_us and
	// relocated attributes; zero when tracing is off).
	GCMarkMicros     int64 `json:"gc_mark_micros,omitempty"`
	GCSweepMicros    int64 `json:"gc_sweep_micros,omitempty"`
	GCRelocateMicros int64 `json:"gc_relocate_micros,omitempty"`
	GCRelocated      int64 `json:"gc_cache_relocated,omitempty"`
	// StragglerScore is the fleet plane's per-worker progress-skew EWMA
	// (fleet.go); zero when the worker kept pace or the plane was off.
	StragglerScore float64 `json:"straggler_score,omitempty"`
}

// argInt64 parses an integer span attribute, tolerating absence.
func argInt64(args map[string]string, key string) int64 {
	if args == nil {
		return 0
	}
	v, err := strconv.ParseInt(args[key], 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// AttributionReport is the whole table plus the controller's own stage
// timeline. Stages lists the column order for renderers.
type AttributionReport struct {
	Stages     []string             `json:"stages"`
	Controller map[string]StageTime `json:"controller"`
	Workers    []WorkerAttribution  `json:"workers"`
	// SpanCount is how many trace spans the report was distilled from; zero
	// means tracing was off and only stats-derived columns are filled.
	SpanCount int `json:"span_count"`
}

// AttributionReport harvests any outstanding remote spans and distills the
// merged trace into the per-worker accounting table. Works in degraded form
// without a tracer (stage columns empty, stats columns still filled).
func (c *Controller) AttributionReport() *AttributionReport {
	c.harvestAll()

	rep := &AttributionReport{
		Stages:     append([]string(nil), reportStages...),
		Controller: map[string]StageTime{},
	}

	c.wmu.RLock()
	n := len(c.workers)
	clients := append([]*sidecar.RemoteWorker(nil), c.clients...)
	c.wmu.RUnlock()

	rows := make(map[int]*WorkerAttribution, n)
	row := func(id int) *WorkerAttribution {
		r := rows[id]
		if r == nil {
			r = &WorkerAttribution{Worker: id, Stages: map[string]StageTime{}}
			rows[id] = r
		}
		return r
	}
	for i := 0; i < n; i++ {
		row(i) // every live worker gets a row even with zero spans
	}

	if c.tracer != nil {
		events := c.tracer.Events()
		rep.SpanCount = len(events)
		for _, ev := range events {
			if ev.PID >= 1 {
				// Worker-side span: pid is worker id + 1 (pid 0 is the
				// controller's own process lane).
				r := row(ev.PID - 1)
				if ev.Name == "gc" {
					r.GCPauses++
					r.GCMicros += ev.Dur
					r.GCMarkMicros += argInt64(ev.Args, "mark_us")
					r.GCSweepMicros += argInt64(ev.Args, "sweep_us")
					r.GCRelocateMicros += argInt64(ev.Args, "relocate_us")
					r.GCRelocated += argInt64(ev.Args, "relocated")
				}
				if stage := stageOfSpan(ev.Name); stage != "" {
					st := r.Stages[stage]
					st.Spans++
					st.Micros += ev.Dur
					r.Stages[stage] = st
				}
				continue
			}
			// Controller-side spans: client RPC spans attribute to the
			// target worker; stage spans fill the controller timeline.
			if strings.HasPrefix(ev.Name, "rpc:") {
				if ws, ok := ev.Args["worker"]; ok {
					if id, err := strconv.Atoi(ws); err == nil {
						r := row(id)
						r.RPCCount++
						r.RPCMicros += ev.Dur
					}
				}
				continue
			}
			if stage := stageOfSpan(ev.Name); stage != "" {
				st := rep.Controller[stage]
				st.Spans++
				st.Micros += ev.Dur
				rep.Controller[stage] = st
			}
		}
	}

	// Resource columns from the workers' own accounting; best effort — a
	// dead worker keeps whatever the trace attributed to it.
	if stats, err := c.Stats(); err == nil {
		for _, st := range stats {
			r := row(st.WorkerID)
			r.BDDNodes = st.BDDNodes
			r.PeakBytes = st.PeakBytes
		}
	}
	for i, cl := range clients {
		if cl != nil && i < n {
			r := row(i)
			r.BytesRead = cl.BytesRead()
			r.BytesWritten = cl.BytesWritten()
		}
	}
	for id, score := range c.StragglerScores() {
		if id < n {
			row(id).StragglerScore = score
		}
	}

	ids := make([]int, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rep.Workers = append(rep.Workers, *rows[id])
	}
	return rep
}

// JSON renders the report as indented JSON.
func (r *AttributionReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func fmtMicros(us int64) string {
	switch {
	case us == 0:
		return "-"
	case us < 10_000:
		return fmt.Sprintf("%.2fms", float64(us)/1000)
	case us < 10_000_000:
		return fmt.Sprintf("%.1fms", float64(us)/1000)
	default:
		return fmt.Sprintf("%.1fs", float64(us)/1_000_000)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b == 0:
		return "-"
	case b < 10*1024:
		return fmt.Sprintf("%dB", b)
	case b < 10*1024*1024:
		return fmt.Sprintf("%.1fKiB", float64(b)/1024)
	default:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1024*1024))
	}
}

// String renders the per-worker × per-stage table as aligned text. Stage
// columns show total wall time attributed to that worker in that stage.
func (r *AttributionReport) String() string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)

	header := []string{"worker"}
	header = append(header, r.Stages...)
	header = append(header, "rpcs", "rpc-time", "rx", "tx", "bdd-nodes", "gc-pauses", "gc-mark/sweep/reloc", "gc-cache-kept", "straggler")
	fmt.Fprintln(tw, strings.Join(header, "\t"))

	writeRow := func(name string, stages map[string]StageTime, w *WorkerAttribution) {
		cols := []string{name}
		for _, s := range r.Stages {
			cols = append(cols, fmtMicros(stages[s].Micros))
		}
		if w != nil {
			gc := "-"
			phases := "-"
			kept := "-"
			if w.GCPauses > 0 {
				gc = fmt.Sprintf("%d (%s)", w.GCPauses, fmtMicros(w.GCMicros))
				phases = fmt.Sprintf("%s/%s/%s",
					fmtMicros(w.GCMarkMicros), fmtMicros(w.GCSweepMicros), fmtMicros(w.GCRelocateMicros))
				kept = strconv.FormatInt(w.GCRelocated, 10)
			}
			straggler := "-"
			if w.StragglerScore > 0 {
				straggler = fmt.Sprintf("%.2f", w.StragglerScore)
			}
			cols = append(cols,
				strconv.FormatInt(w.RPCCount, 10),
				fmtMicros(w.RPCMicros),
				fmtBytes(w.BytesRead),
				fmtBytes(w.BytesWritten),
				strconv.Itoa(w.BDDNodes),
				gc, phases, kept, straggler)
		} else {
			cols = append(cols, "-", "-", "-", "-", "-", "-", "-", "-", "-")
		}
		fmt.Fprintln(tw, strings.Join(cols, "\t"))
	}

	writeRow("ctrl", r.Controller, nil)
	for i := range r.Workers {
		w := &r.Workers[i]
		writeRow(fmt.Sprintf("w%d", w.Worker), w.Stages, w)
	}
	tw.Flush()
	return sb.String()
}
