package core

// The concurrent query plane: a coalescing scheduler that folds a window of
// in-flight queries into one multi-query symbolic pass (RunQueryBatch), in
// front of an epoch-keyed answer cache. Callers go through SubmitQuery;
// RunQuery remains the uncached single-query path underneath.
//
// Concurrency model: passes themselves are serialized — the first submitter
// whose window has no leader becomes the leader, drains the pending window
// (repeatedly, so queries arriving during a pass form the next batch), and
// signals every waiter. The controller's phase pipeline is not concurrent-
// safe, so one pass at a time is a correctness requirement, not a tuning
// choice; throughput comes from batching, slicing, and the cache. Epoch
// advances (ApplyDelta / ComputeDataPlane) must not overlap submitted
// queries — the public s2.Verifier enforces that with an RWMutex.

import (
	"errors"
	"strconv"
	"strings"

	"s2/internal/dataplane"
)

// errLegacyNoBatch reports a fleet with workers that predate the
// BeginQueryBatch RPC; the scheduler falls back to sequential passes.
var errLegacyNoBatch = errors.New("core: fleet has workers without multi-query support")

// maxQueryBatch bounds the queries folded into one symbolic pass, keeping
// the per-worker wavefront (one slot per tagged source) from ballooning
// under pathological bursts. Overflow simply becomes another pass.
const maxQueryBatch = 32

// queryJob is one submitted query waiting on the scheduler.
type queryJob struct {
	q            *dataplane.Query
	constrainSrc bool
	fp           uint64

	// Results, valid once done is closed.
	col   *dataplane.Collector
	epoch uint64
	err   error
	done  chan struct{}
}

// SubmitQuery answers q through the concurrent query plane: epoch-keyed
// cache first, then the coalescing window. The returned collector is
// byte-identical (under serialization) to a cold solo RunQuery of the same
// query, and the returned epoch is the verified-state epoch the answer was
// computed against. Cached answers share one Collector — safe, because
// Collector reads and the controller engine's operations are concurrent-
// safe, and the controller engine is never garbage-collected.
func (c *Controller) SubmitQuery(q *dataplane.Query, constrainSrc bool) (*dataplane.Collector, uint64, error) {
	cols, epochs, err := c.SubmitQueryBatch([]*dataplane.Query{q}, constrainSrc)
	if err != nil {
		return nil, 0, err
	}
	return cols[0], epochs[0], nil
}

// SubmitQueryBatch submits a set of queries into one scheduling window:
// cache hits answer immediately, the rest enter the window together so the
// scheduler can fold the batch-compatible ones into shared passes. Answers
// come back positionally with the epoch each was computed against.
func (c *Controller) SubmitQueryBatch(qs []*dataplane.Query, constrainSrc bool) ([]*dataplane.Collector, []uint64, error) {
	if c.closed.Load() {
		return nil, nil, errors.New("core: controller is closed")
	}
	if len(qs) == 0 {
		return nil, nil, errors.New("core: empty query batch")
	}
	for _, q := range qs {
		if err := q.Validate(c.layout); err != nil {
			return nil, nil, err
		}
	}
	cols := make([]*dataplane.Collector, len(qs))
	epochs := make([]uint64, len(qs))
	jobs := make([]*queryJob, len(qs))
	var pending []*queryJob
	for i, q := range qs {
		fp := q.Fingerprint(constrainSrc)
		if col, epoch, ok := c.cachedQuery(fp); ok {
			cols[i], epochs[i] = col, epoch
			continue
		}
		j := &queryJob{q: q, constrainSrc: constrainSrc, fp: fp, done: make(chan struct{})}
		jobs[i] = j
		pending = append(pending, j)
	}
	if len(pending) > 0 {
		c.qpMu.Lock()
		c.qpPending = append(c.qpPending, pending...)
		lead := !c.qpLeader
		if lead {
			c.qpLeader = true
		}
		c.qpMu.Unlock()
		if lead {
			c.runQueryWindows()
		}
	}
	var firstErr error
	for i, j := range jobs {
		if j == nil {
			continue
		}
		<-j.done
		if j.err != nil && firstErr == nil {
			firstErr = j.err
		}
		cols[i], epochs[i] = j.col, j.epoch
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return cols, epochs, nil
}

// runQueryWindows is the leader loop: drain the pending window, run it,
// repeat until no queries arrived during the last pass.
func (c *Controller) runQueryWindows() {
	for {
		c.qpMu.Lock()
		window := c.qpPending
		c.qpPending = nil
		if len(window) == 0 {
			c.qpLeader = false
			c.qpMu.Unlock()
			return
		}
		c.qpMu.Unlock()
		c.runQueryWindow(window)
	}
}

// runQueryWindow partitions one window into batch-compatible groups (same
// transit set, hop budget, and source-constraint mode) and runs each group
// as a single pass, in first-arrival order.
func (c *Controller) runQueryWindow(window []*queryJob) {
	groups := map[string][]*queryJob{}
	var order []string
	for _, j := range window {
		key := queryCompatKey(j.q, j.constrainSrc)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], j)
	}
	for _, key := range order {
		c.runQueryGroup(groups[key])
	}
}

// queryCompatKey buckets queries that RunQueryBatch may share a pass:
// dataplane.BatchCompatible (hop budget + transit sequence) plus the
// injection-side constrainSrc mode.
func queryCompatKey(q *dataplane.Query, constrainSrc bool) string {
	return strconv.FormatBool(constrainSrc) + "|" +
		strconv.Itoa(q.EffectiveMaxHops()) + "|" +
		strings.Join(q.Transits, "\x1f")
}

// runQueryGroup collapses identical fingerprints inside the group (one
// representative runs, duplicates share its answer), then executes the
// representatives in maxQueryBatch-sized passes.
func (c *Controller) runQueryGroup(jobs []*queryJob) {
	var reps []*queryJob
	repOf := map[uint64]*queryJob{}
	var dups []*queryJob
	for _, j := range jobs {
		if repOf[j.fp] != nil {
			dups = append(dups, j)
			continue
		}
		repOf[j.fp] = j
		reps = append(reps, j)
	}
	for start := 0; start < len(reps); start += maxQueryBatch {
		end := min(start+maxQueryBatch, len(reps))
		c.runQueryChunk(reps[start:end])
	}
	for _, j := range dups {
		r := repOf[j.fp]
		j.col, j.epoch, j.err = r.col, r.epoch, r.err
		close(j.done)
	}
}

// runQueryChunk runs one pass for up to maxQueryBatch representatives,
// stores the answers in the epoch cache, and wakes the waiters. A fleet
// rejecting the batch RPC degrades to one sequential pass per query.
func (c *Controller) runQueryChunk(jobs []*queryJob) {
	// A prior window may have cached an identical query meanwhile.
	live := jobs[:0:0]
	for _, j := range jobs {
		if col, epoch, ok := c.cachedQuery(j.fp); ok {
			j.col, j.epoch = col, epoch
			close(j.done)
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	epoch := c.Epoch()
	qs := make([]*dataplane.Query, len(live))
	for i, j := range live {
		qs[i] = j.q
	}
	cols, err := c.RunQueryBatch(qs, live[0].constrainSrc)
	if errors.Is(err, errLegacyNoBatch) {
		cols = make([]*dataplane.Collector, len(live))
		err = nil
		for i, j := range live {
			if cols[i], err = c.RunQuery(j.q, j.constrainSrc); err != nil {
				break
			}
		}
	}
	for i, j := range live {
		if err != nil {
			j.err = err
		} else {
			j.col, j.epoch = cols[i], epoch
			c.storeCachedQuery(j.fp, epoch, cols[i])
		}
		close(j.done)
	}
}

// cachedQuery looks up a query answer for the CURRENT epoch. A stale map
// (first lookup after an epoch advance) is dropped on sight, so a hit can
// never serve a pre-delta answer.
func (c *Controller) cachedQuery(fp uint64) (*dataplane.Collector, uint64, bool) {
	if c.opts.DisableQueryCache {
		return nil, 0, false
	}
	epoch := c.Epoch()
	c.qcMu.Lock()
	defer c.qcMu.Unlock()
	if c.qcEpoch != epoch {
		c.qcache = nil
		c.qcEpoch = epoch
		return nil, 0, false
	}
	col, ok := c.qcache[fp]
	if !ok {
		return nil, 0, false
	}
	if c.reg != nil {
		c.reg.Counter(MetricQueryCacheHits,
			"Query answers served from the epoch-keyed outcome cache.").Inc()
	}
	return col, epoch, true
}

// storeCachedQuery records an answer under the epoch it was computed
// against; if the cache has moved to a newer epoch the answer is stale and
// silently dropped.
func (c *Controller) storeCachedQuery(fp uint64, epoch uint64, col *dataplane.Collector) {
	if c.opts.DisableQueryCache || col == nil {
		return
	}
	c.qcMu.Lock()
	defer c.qcMu.Unlock()
	if c.qcEpoch != epoch {
		return
	}
	if c.qcache == nil {
		c.qcache = map[uint64]*dataplane.Collector{}
	}
	c.qcache[fp] = col
}

// purgeQueryCache drops every cached answer; bumpEpoch calls it so the
// drop is atomic with the epoch advance.
func (c *Controller) purgeQueryCache() {
	c.qcMu.Lock()
	c.qcache = nil
	c.qcEpoch = c.epoch.Load()
	c.qcMu.Unlock()
}

// queryCountBuckets suit small-integer distributions (batch sizes, worker
// counts) better than the default latency buckets.
var queryCountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// observeQueryPass records one symbolic pass: the pass counter (the
// denominator proving batching executes fewer injection phases than
// sequential), the coalesced batch size, and the post-slicing worker count.
func (c *Controller) observeQueryPass(batch int, ids []int) {
	if c.reg == nil {
		return
	}
	c.reg.Counter(MetricQueryPasses,
		"Symbolic query passes (injection phases) executed.").Inc()
	c.reg.Histogram(MetricQueryBatchSize,
		"Queries coalesced into one symbolic pass.", queryCountBuckets).
		Observe(float64(batch))
	sliced := len(ids)
	if ids == nil {
		c.wmu.RLock()
		sliced = len(c.workers)
		c.wmu.RUnlock()
	}
	c.reg.Histogram(MetricQuerySlicedWorkers,
		"Workers involved per query pass after intent-based slicing.", queryCountBuckets).
		Observe(float64(sliced))
}
