package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"s2/internal/bdd"
	"s2/internal/dataplane"
	"s2/internal/obs"
	"s2/internal/sidecar"
)

// queryColFingerprint renders one collector canonically: per-state packet
// sets plus every device's arrival set, all through the engine's canonical
// serialization (byte-identical for equal sets regardless of internal ref
// numbering).
func queryColFingerprint(c *Controller, col *dataplane.Collector) string {
	var b strings.Builder
	for _, st := range []dataplane.FinalState{dataplane.Arrive, dataplane.Exit, dataplane.Blackhole, dataplane.Loop} {
		fmt.Fprintf(&b, "state %d %x\n", st, c.engine.Serialize(col.StateSet(st)))
	}
	for _, dev := range c.snap.DeviceNames() {
		if r := col.Arrived(dev); r != bdd.False {
			fmt.Fprintf(&b, "arrived %s %x\n", dev, c.engine.Serialize(r))
		}
	}
	return b.String()
}

// queryMix builds a deterministic mix of batch-compatible queries over the
// fat-tree's prefix owners: per-destination reachability, restricted
// sources, and a port/protocol-constrained header.
func queryMix(c *Controller) []*dataplane.Query {
	owners := c.PrefixOwners()
	var qs []*dataplane.Query
	for i, o := range owners {
		if i >= 5 {
			break
		}
		p := c.OwnedPrefixes(o)[0]
		qs = append(qs, &dataplane.Query{
			Header: &dataplane.HeaderSpace{DstPrefix: &p},
			Dests:  []string{o},
		})
	}
	qs = append(qs, &dataplane.Query{
		Header:  &dataplane.HeaderSpace{},
		Sources: owners[:2],
	})
	qs = append(qs, &dataplane.Query{
		Header: &dataplane.HeaderSpace{Proto: 6, DstPortLo: 80, DstPortHi: 80},
	})
	return qs
}

// TestBatchedQueriesByteIdenticalToSequential is the query-plane
// determinism contract: a mix of queries answered through one multi-query
// pass (tagged predicates, shared wavefront, split harvest) must produce
// collectors byte-identical to cold solo RunQuery passes — at sequential
// and parallel per-worker pools alike. A second submission must be served
// entirely from the epoch cache, returning the same collectors.
func TestBatchedQueriesByteIdenticalToSequential(t *testing.T) {
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			reg := obs.NewRegistry()
			snap, texts := fatTreeSnap(t, 4)
			c := newS2(t, snap, texts, Options{
				Workers: 3, Shards: 2, Seed: 1, Parallelism: procs, Metrics: reg,
			})
			defer c.Close()
			runCP(t, c)
			if _, err := c.ComputeDataPlane(); err != nil {
				t.Fatal(err)
			}
			qs := queryMix(c)

			// Cold solo baselines (RunQuery bypasses the cache).
			want := make([]string, len(qs))
			for i, q := range qs {
				col, err := c.RunQuery(q, false)
				if err != nil {
					t.Fatalf("solo query %d: %v", i, err)
				}
				want[i] = queryColFingerprint(c, col)
				if want[i] == "" {
					t.Fatalf("solo query %d: empty fingerprint", i)
				}
			}
			passesBefore := reg.Snapshot()[MetricQueryPasses]

			// One submission: the whole mix shares a single symbolic pass.
			cols, epochs, err := c.SubmitQueryBatch(qs, false)
			if err != nil {
				t.Fatal(err)
			}
			for i := range qs {
				if got := queryColFingerprint(c, cols[i]); got != want[i] {
					t.Errorf("query %d: batched answer differs from solo:\nsolo:\n%s\nbatched:\n%s", i, want[i], got)
				}
				if epochs[i] != c.Epoch() {
					t.Errorf("query %d: epoch %d, want %d", i, epochs[i], c.Epoch())
				}
			}
			snap1 := reg.Snapshot()
			if got := snap1[MetricQueryPasses] - passesBefore; got != 1 {
				t.Errorf("batched submission ran %v passes, want exactly 1", got)
			}
			if got := snap1[MetricQueryBatchSize+"_sum"]; got < float64(len(qs)) {
				t.Errorf("batch-size sum %v, want >= %d", got, len(qs))
			}

			// Warm repeat: all answers from the cache, same collectors.
			cols2, _, err := c.SubmitQueryBatch(qs, false)
			if err != nil {
				t.Fatal(err)
			}
			for i := range qs {
				if cols2[i] != cols[i] {
					t.Errorf("query %d: warm repeat rebuilt the collector", i)
				}
			}
			snap2 := reg.Snapshot()
			if got := snap2[MetricQueryPasses]; got != snap1[MetricQueryPasses] {
				t.Errorf("warm repeat ran %v extra passes", got-snap1[MetricQueryPasses])
			}
			if hits := snap2[MetricQueryCacheHits]; hits < float64(len(qs)) {
				t.Errorf("cache hits %v, want >= %d", hits, len(qs))
			}
		})
	}
}

// TestQuerySlicingMatchesUnsliced runs narrow-source queries with
// intent-based slicing on and off and demands byte-identical answers:
// pruned workers must be provably irrelevant, never load-bearing. It also
// checks that slicing actually prunes for a hop-bounded single-source
// query on a multi-worker fat-tree.
func TestQuerySlicingMatchesUnsliced(t *testing.T) {
	run := func(disable bool) []string {
		snap, texts := fatTreeSnap(t, 4)
		c := newS2(t, snap, texts, Options{
			Workers: 4, Shards: 2, Seed: 1, DisableQuerySlicing: disable,
		})
		defer c.Close()
		runCP(t, c)
		if _, err := c.ComputeDataPlane(); err != nil {
			t.Fatal(err)
		}
		owners := c.PrefixOwners()
		qs := []*dataplane.Query{
			{Header: &dataplane.HeaderSpace{}, Sources: owners[:1], MaxHops: 1},
			{Header: &dataplane.HeaderSpace{}, Sources: owners[:1], MaxHops: 2},
			{Header: &dataplane.HeaderSpace{}, Sources: owners[1:2], Dests: owners[2:3], MaxHops: 4},
		}
		var fps []string
		for i, q := range qs {
			col, err := c.RunQuery(q, false)
			if err != nil {
				t.Fatalf("query %d (slicing disabled=%v): %v", i, disable, err)
			}
			fps = append(fps, queryColFingerprint(c, col))
		}
		if !disable {
			// Hop budget 1 from one edge node cannot cross the whole
			// fat-tree: the slice must be a strict subset.
			ids, err := c.sliceWorkers([][]string{owners[:1]}, 1)
			if err != nil {
				t.Fatal(err)
			}
			if ids == nil || len(ids) >= 4 {
				t.Errorf("sliceWorkers pruned nothing for a 1-hop query: %v", ids)
			}
		}
		return fps
	}

	sliced := run(false)
	unsliced := run(true)
	for i := range sliced {
		if sliced[i] != unsliced[i] {
			t.Errorf("query %d: sliced answer differs from unsliced:\nsliced:\n%s\nunsliced:\n%s",
				i, sliced[i], unsliced[i])
		}
	}
}

// TestQueryCacheEpochInvalidation pins the cache key semantics: hits within
// an epoch return the same collector; an epoch advance atomically drops the
// cache so the next submission recomputes (to an equal answer when the
// state is unchanged).
func TestQueryCacheEpochInvalidation(t *testing.T) {
	reg := obs.NewRegistry()
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{Workers: 2, Shards: 2, Seed: 1, Metrics: reg})
	defer c.Close()
	runCP(t, c)
	if _, err := c.ComputeDataPlane(); err != nil {
		t.Fatal(err)
	}
	q := &dataplane.Query{Header: &dataplane.HeaderSpace{}}

	col1, e1, err := c.SubmitQuery(q, false)
	if err != nil {
		t.Fatal(err)
	}
	col2, e2, err := c.SubmitQuery(q, false)
	if err != nil {
		t.Fatal(err)
	}
	if col2 != col1 || e2 != e1 {
		t.Fatalf("second submission missed the cache (col equal=%v, epochs %d/%d)", col2 == col1, e1, e2)
	}
	if hits := reg.Snapshot()[MetricQueryCacheHits]; hits != 1 {
		t.Fatalf("cache hits = %v, want 1", hits)
	}

	c.bumpEpoch()
	col3, e3, err := c.SubmitQuery(q, false)
	if err != nil {
		t.Fatal(err)
	}
	if e3 != e1+1 {
		t.Fatalf("post-advance epoch = %d, want %d", e3, e1+1)
	}
	if col3 == col1 {
		t.Fatal("epoch advance did not drop the cache")
	}
	if a, b := queryColFingerprint(c, col1), queryColFingerprint(c, col3); a != b {
		t.Fatalf("unchanged state produced a different answer after epoch advance:\n%s\nvs\n%s", a, b)
	}
}

// noBatchWorker simulates a legacy fleet member that predates the
// multi-query RPC: BeginQueryBatch answers like net/rpc's unknown-method
// rejection, everything else passes through.
type noBatchWorker struct {
	sidecar.WorkerAPI
}

func (w *noBatchWorker) BeginQueryBatch(sidecar.QueryBatchRequest) error {
	return errors.New("rpc: can't find method Sidecar.BeginQueryBatch")
}

// TestLegacyFleetFallsBackToSequential: against workers without the batch
// RPC, a multi-query submission must degrade to one pass per query with
// identical answers — and a direct RunQueryBatch must surface the typed
// sentinel the scheduler keys the fallback on.
func TestLegacyFleetFallsBackToSequential(t *testing.T) {
	reg := obs.NewRegistry()
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{
		Workers: 2, Shards: 2, Seed: 1, Metrics: reg,
		WrapWorker: func(_ int, w sidecar.WorkerAPI) sidecar.WorkerAPI {
			return &noBatchWorker{WorkerAPI: w}
		},
	})
	defer c.Close()
	runCP(t, c)
	if _, err := c.ComputeDataPlane(); err != nil {
		t.Fatal(err)
	}
	owners := c.PrefixOwners()
	qs := []*dataplane.Query{
		{Header: &dataplane.HeaderSpace{}, Dests: owners[:1]},
		{Header: &dataplane.HeaderSpace{}, Dests: owners[1:2]},
		{Header: &dataplane.HeaderSpace{}, Dests: owners[2:3]},
	}

	if _, err := c.RunQueryBatch(qs, false); !errors.Is(err, errLegacyNoBatch) {
		t.Fatalf("RunQueryBatch on a legacy fleet: err = %v, want errLegacyNoBatch", err)
	}

	want := make([]string, len(qs))
	for i, q := range qs {
		col, err := c.RunQuery(q, false)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = queryColFingerprint(c, col)
	}
	passesBefore := reg.Snapshot()[MetricQueryPasses]
	cols, _, err := c.SubmitQueryBatch(qs, false)
	if err != nil {
		t.Fatalf("SubmitQueryBatch must fall back, got %v", err)
	}
	for i := range qs {
		if got := queryColFingerprint(c, cols[i]); got != want[i] {
			t.Errorf("query %d: fallback answer differs from solo", i)
		}
	}
	if got := reg.Snapshot()[MetricQueryPasses] - passesBefore; got != float64(len(qs)) {
		t.Errorf("fallback ran %v passes, want %d (one per query)", got, len(qs))
	}
}

// TestConcurrentSubmitQueryCoalesces hammers SubmitQuery from many
// goroutines (the serving layer's shape) and checks every answer against
// its solo baseline; with identical fingerprints in flight the scheduler
// must also collapse duplicates rather than run one pass each.
func TestConcurrentSubmitQueryCoalesces(t *testing.T) {
	reg := obs.NewRegistry()
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{Workers: 2, Shards: 2, Seed: 1, Metrics: reg, Parallelism: 2})
	defer c.Close()
	runCP(t, c)
	if _, err := c.ComputeDataPlane(); err != nil {
		t.Fatal(err)
	}
	owners := c.PrefixOwners()
	distinct := []*dataplane.Query{
		{Header: &dataplane.HeaderSpace{}, Dests: owners[:1]},
		{Header: &dataplane.HeaderSpace{}, Dests: owners[1:2]},
		{Header: &dataplane.HeaderSpace{}, Dests: owners[2:3]},
		{Header: &dataplane.HeaderSpace{}, Dests: owners[3:4]},
	}
	want := make([]string, len(distinct))
	for i, q := range distinct {
		col, err := c.RunQuery(q, false)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = queryColFingerprint(c, col)
	}
	c.purgeQueryCache() // RunQuery does not cache, but start clean anyway

	const loops = 3
	passesBefore := reg.Snapshot()[MetricQueryPasses]
	var wg sync.WaitGroup
	errs := make(chan error, loops*len(distinct))
	for l := 0; l < loops; l++ {
		for i, q := range distinct {
			wg.Add(1)
			go func(i int, q *dataplane.Query) {
				defer wg.Done()
				col, _, err := c.SubmitQuery(q, false)
				if err != nil {
					errs <- err
					return
				}
				if got := queryColFingerprint(c, col); got != want[i] {
					errs <- fmt.Errorf("query %d: concurrent answer differs from solo", i)
				}
			}(i, q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// 12 submissions over 4 distinct fingerprints: dedup + cache bound the
	// pass count by the number of distinct queries.
	if got := reg.Snapshot()[MetricQueryPasses] - passesBefore; got > float64(len(distinct)) {
		t.Errorf("%v passes for %d distinct queries, want <= %d", got, len(distinct), len(distinct))
	}
}
