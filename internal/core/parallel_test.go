package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"s2/internal/dataplane"
	"s2/internal/route"
)

func TestRunIndexedCoversAllIndices(t *testing.T) {
	for _, procs := range []int{1, 2, 8, 100} {
		var hits [57]atomic.Int32
		if err := runIndexed(procs, len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("procs=%d: index %d ran %d times", procs, i, got)
			}
		}
	}
}

func TestRunIndexedSequentialOrder(t *testing.T) {
	var order []int
	if err := runIndexed(1, 5, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("procs=1 must run in index order, got %v", order)
		}
	}
}

func TestRunIndexedErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	// Sequential: fail-fast at the first failing index.
	ran := 0
	err := runIndexed(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if ran != 4 {
		t.Fatalf("sequential fail-fast should stop after index 3, ran %d tasks", ran)
	}
	// Parallel: the lowest-index error observed wins, so a deterministic
	// single failure reports the same error regardless of pool size.
	err = runIndexed(8, 100, func(i int) error {
		if i == 42 {
			return fmt.Errorf("failed at %d: %w", i, boom)
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("want wrapped boom, got %v", err)
	}
	if !strings.Contains(err.Error(), "failed at 42") {
		t.Fatalf("want the index-42 error, got %v", err)
	}
	if err := runIndexed(4, 0, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0 must be a no-op, got %v", err)
	}
}

// ribsFingerprint renders RIBs into one canonical byte string: nodes
// sorted, prefixes in Walk (sorted) order, routes in installed order.
func ribsFingerprint(ribs map[string]*route.RIB) string {
	names := make([]string, 0, len(ribs))
	for n := range ribs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "node %s\n", n)
		ribs[n].Walk(func(p route.Prefix, rs []*route.Route) {
			fmt.Fprintf(&b, "  %s\n", p)
			for _, r := range rs {
				fmt.Fprintf(&b, "    %s\n", r)
			}
		})
	}
	return b.String()
}

// checkFingerprint renders an all-pairs verification result into a
// canonical byte string: reachability coverage, every violation's full
// detail, the per-state packet sets, and each destination's arrival set
// (serialized — the engine's canonical encoding is byte-identical for
// equal sets regardless of internal ref numbering). The raw outcome
// *count* is deliberately absent: cross-worker delivery timing decides
// whether a wavefront arrives as one event or several, so the count
// varies run to run even though the merged sets never do.
func checkFingerprint(c *Controller, res *AllPairsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sources=%d dests=%d\n", res.Sources, res.Dests)
	for _, st := range []dataplane.FinalState{dataplane.Arrive, dataplane.Exit, dataplane.Blackhole, dataplane.Loop} {
		fmt.Fprintf(&b, "state %d %x\n", st, c.engine.Serialize(res.Collector.StateSet(st)))
	}
	for _, dest := range c.PrefixOwners() {
		fmt.Fprintf(&b, "arrived %s %x\n", dest, c.engine.Serialize(res.Collector.Arrived(dest)))
	}
	unreached := append([]string(nil), res.Unreached...)
	sort.Strings(unreached)
	fmt.Fprintf(&b, "unreached=%v\n", unreached)
	vios := make([]string, 0, len(res.Violations))
	for _, v := range res.Violations {
		vios = append(vios, v.String())
	}
	sort.Strings(vios)
	for _, v := range vios {
		fmt.Fprintf(&b, "violation %s\n", v)
	}
	return b.String()
}

// TestParallelRunIsByteIdentical is the determinism contract for the
// multi-core hot path: a run with per-worker goroutine pools and batched
// cross-worker pulls must produce byte-identical RIBs and verification
// outcomes to the sequential, per-pull configuration it replaced. FIB
// equality is observed through the all-pairs symbolic traversal: every
// forwarding entry participates in the outcome sets the fingerprints
// cover.
func TestParallelRunIsByteIdentical(t *testing.T) {
	run := func(procs int, noBatch bool, shards int) (string, string) {
		snap, texts := fatTreeSnap(t, 4)
		c := newS2(t, snap, texts, Options{
			Workers:           3,
			Shards:            shards,
			Seed:              1,
			KeepRIBs:          true,
			Parallelism:       procs,
			DisableBatchPulls: noBatch,
		})
		defer c.Close()
		res := runFull(t, c)
		ribs, err := c.CollectRIBs()
		if err != nil {
			t.Fatal(err)
		}
		return ribsFingerprint(ribs), checkFingerprint(c, res)
	}

	for _, shards := range []int{1, 2} {
		seqRIBs, seqCheck := run(1, true, shards)
		if !strings.Contains(seqRIBs, "node edge-0-0") || !strings.Contains(seqRIBs, "/") {
			t.Fatalf("shards=%d: sequential fingerprint looks empty:\n%.200s", shards, seqRIBs)
		}
		parRIBs, parCheck := run(8, false, shards)
		if seqRIBs != parRIBs {
			t.Errorf("shards=%d: RIBs differ between procs=1 (batch off) and procs=8 (batch on)", shards)
		}
		if seqCheck != parCheck {
			t.Errorf("shards=%d: verification outcomes differ:\nseq:\n%s\npar:\n%s", shards, seqCheck, parCheck)
		}
	}
}

// TestGCStressRunIsByteIdentical extends the determinism contract to the
// collector: results must be byte-identical whether GCs are rare (adaptive
// pacing), constant (stress mode forces a collection at nearly every
// trigger site), relocating in parallel, or wiping sequentially like the
// seed collector. GC placement and cache policy may change *when* nodes are
// rebuilt, never *what* the verification computes.
func TestGCStressRunIsByteIdentical(t *testing.T) {
	run := func(procs int, stress, wipe bool) (string, string) {
		snap, texts := fatTreeSnap(t, 4)
		c := newS2(t, snap, texts, Options{
			Workers:     3,
			Shards:      2,
			Seed:        1,
			KeepRIBs:    true,
			Parallelism: procs,
			GCStress:    stress,
			GCWipe:      wipe,
		})
		defer c.Close()
		res := runFull(t, c)
		ribs, err := c.CollectRIBs()
		if err != nil {
			t.Fatal(err)
		}
		return ribsFingerprint(ribs), checkFingerprint(c, res)
	}

	baseRIBs, baseCheck := run(1, false, false)
	if !strings.Contains(baseRIBs, "node edge-0-0") {
		t.Fatalf("baseline fingerprint looks empty:\n%.200s", baseRIBs)
	}
	for _, cfg := range []struct {
		name   string
		procs  int
		stress bool
		wipe   bool
	}{
		{"stress procs=1", 1, true, false},
		{"stress procs=8", 8, true, false},
		{"stress+wipe procs=8", 8, true, true},
		{"wipe procs=1", 1, false, true},
	} {
		ribs, check := run(cfg.procs, cfg.stress, cfg.wipe)
		if ribs != baseRIBs {
			t.Errorf("%s: RIBs differ from the default-collector baseline", cfg.name)
		}
		if check != baseCheck {
			t.Errorf("%s: verification outcomes differ:\nbase:\n%s\ngot:\n%s", cfg.name, baseCheck, check)
		}
	}
}
