package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"s2/internal/obs"
	"s2/internal/sidecar"
)

// startTracedRemoteWorkers starts n TCP workers the way cmd/s2worker does:
// each with its own export-mode tracer and always-on flight recorder, so the
// controller can harvest their spans over PullSpans.
func startTracedRemoteWorkers(t *testing.T, n int) ([]string, []*sidecar.Server, []*Worker) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*sidecar.Server, n)
	workers := make([]*Worker, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = lis.Addr().String()
		workers[i] = NewWorker()
		tr := obs.NewTracer()
		tr.SetExportLimit(4096)
		workers[i].SetObservability(tr, nil)
		servers[i] = sidecar.NewServer(workers[i])
		go servers[i].Serve(lis)
		t.Cleanup(func() { servers[i].Shutdown(0) })
	}
	return addrs, servers, workers
}

// TestDistributedTraceTCPRun is the tentpole acceptance check for the
// distributed trace plane: a three-worker TCP run with tracing must merge
// every worker's shard/phase spans into the controller's single Chrome
// trace, parented (via args.parent) under the controller RPC span that
// triggered them, with no child escaping its parent's interval after skew
// correction.
func TestDistributedTraceTCPRun(t *testing.T) {
	tracer := obs.NewTracer()
	snap, texts := fatTreeSnap(t, 4)
	addrs, _, _ := startTracedRemoteWorkers(t, 3)
	c := newS2(t, snap, texts, Options{
		WorkerAddrs: addrs, Shards: 2, Seed: 3,
		Tracer: tracer,
	})
	defer c.Close()
	res := runFull(t, c)
	if len(res.Unreached) != 0 || len(res.Violations) != 0 {
		t.Fatalf("traced run must verify: unreached=%v violations=%v", res.Unreached, res.Violations)
	}

	events := tracer.Events()
	byID := map[string]obs.TraceEvent{}
	for _, e := range events {
		byID[e.Args["span"]] = e
	}

	// Every worker contributed phase spans on its own pid lane, and each
	// phase span parents under a controller rpc span for the same method.
	phaseByPID := map[int]map[string]int{}
	rpcParented := 0
	for _, e := range events {
		if e.PID < 1 {
			continue
		}
		if phaseByPID[e.PID] == nil {
			phaseByPID[e.PID] = map[string]int{}
		}
		phaseByPID[e.PID][e.Name]++
		p, ok := e.Args["parent"]
		if !ok {
			continue
		}
		pe, ok := byID[p]
		if !ok {
			t.Fatalf("worker span %q (pid %d) has unknown parent %s", e.Name, e.PID, p)
		}
		if pe.PID == 0 {
			if !strings.HasPrefix(pe.Name, "rpc:") {
				t.Errorf("worker span %q parents under controller span %q, want an rpc span", e.Name, pe.Name)
			}
			rpcParented++
			if pe.TID != e.TID {
				t.Errorf("worker span %q tid %d != originating rpc span tid %d", e.Name, e.TID, pe.TID)
			}
		}
	}
	for pid := 1; pid <= 3; pid++ {
		phases := phaseByPID[pid]
		if len(phases) == 0 {
			t.Fatalf("no harvested spans on worker lane pid=%d; lanes: %v", pid, phaseByPID)
		}
		for _, want := range []string{"shard", "gather-bgp", "apply-bgp", "end-shard", "compute-dp"} {
			if phases[want] == 0 {
				t.Errorf("worker pid=%d missing %q span: %v", pid, want, phases)
			}
		}
	}
	if rpcParented == 0 {
		t.Fatal("no worker span is parented under a controller rpc span")
	}

	// Time containment after skew correction, for every parented span.
	for _, e := range events {
		p, ok := e.Args["parent"]
		if !ok {
			continue
		}
		pe, ok := byID[p]
		if !ok {
			continue
		}
		if e.TS < pe.TS || e.TS+e.Dur > pe.TS+pe.Dur {
			t.Errorf("span %q [%d,%d] escapes parent %q [%d,%d] after skew correction",
				e.Name, e.TS, e.TS+e.Dur, pe.Name, pe.TS, pe.TS+pe.Dur)
		}
	}

	// The merged trace is one valid Chrome trace_event file.
	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("merged trace is not valid Chrome JSON: %v", err)
	}
	if len(f.TraceEvents) != len(events) {
		t.Fatalf("JSON round-trip lost events: %d vs %d", len(f.TraceEvents), len(events))
	}

	// The attribution report distills the same trace: every worker row shows
	// control-plane wall time, RPC traffic, and transport bytes.
	rep := c.AttributionReport()
	if len(rep.Workers) != 3 {
		t.Fatalf("report has %d worker rows, want 3", len(rep.Workers))
	}
	for _, w := range rep.Workers {
		if w.Stages["cp-bgp"].Micros <= 0 {
			t.Errorf("worker %d: no cp-bgp wall time: %+v", w.Worker, w.Stages)
		}
		if w.RPCCount == 0 {
			t.Errorf("worker %d: no RPCs attributed", w.Worker)
		}
		if w.BytesRead == 0 || w.BytesWritten == 0 {
			t.Errorf("worker %d: transport bytes missing", w.Worker)
		}
	}
	text := rep.String()
	for _, want := range []string{"worker", "cp-bgp", "w0", "w1", "w2"} {
		if !strings.Contains(text, want) {
			t.Errorf("report table missing %q:\n%s", want, text)
		}
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back AttributionReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(back.Workers) != 3 {
		t.Fatalf("JSON report lost workers: %d", len(back.Workers))
	}
}

// TestDeadWorkerTraceSurvives kills one of three TCP workers in the middle
// of the BGP phase (with recovery on). The merged trace must keep the dead
// worker's pre-crash spans — everything harvested before the kill — and the
// survivors' full timelines, and the controller's flight recorder must hold
// the eviction evidence.
func TestDeadWorkerTraceSurvives(t *testing.T) {
	tracer := obs.NewTracer()
	snap, texts := fatTreeSnap(t, 4)
	addrs, servers, _ := startTracedRemoteWorkers(t, 3)

	var ctrl *Controller
	hook := func(id int, w sidecar.WorkerAPI) sidecar.WorkerAPI {
		if id != 2 {
			return w
		}
		return &killSwitch{WorkerAPI: w, nth: 2, kill: func() {
			// Model a crash after the last periodic harvest: drain what the
			// worker exported so far, then drop its server mid-phase.
			ctrl.HarvestSpans()
			servers[2].Shutdown(0)
		}}
	}
	c := newS2(t, snap, texts, Options{
		WorkerAddrs: addrs, Seed: 25, Tracer: tracer,
		RPCTimeout: 5 * time.Second, Recover: true, WrapWorker: hook,
	})
	ctrl = c
	defer c.Close()
	runCP(t, c)
	if c.FaultCounters().Get("worker.deaths") != 1 {
		t.Fatalf("counters: %s", c.FaultCounters())
	}
	c.HarvestSpans()

	events := tracer.Events()
	spansByPID := map[int]map[string]int{}
	for _, e := range events {
		if e.PID < 1 {
			continue
		}
		if spansByPID[e.PID] == nil {
			spansByPID[e.PID] = map[string]int{}
		}
		spansByPID[e.PID][e.Name]++
	}
	// Dead worker (id 2, pid lane 3): pre-crash spans survived the eviction.
	dead := spansByPID[3]
	if dead["setup"] == 0 || dead["gather-bgp"] == 0 {
		t.Errorf("dead worker's pre-crash spans missing from merged trace: %v", dead)
	}
	// Survivors (pids 1 and 2) have their full control-plane timelines.
	for pid := 1; pid <= 2; pid++ {
		got := spansByPID[pid]
		for _, want := range []string{"setup", "gather-bgp", "apply-bgp", "end-shard"} {
			if got[want] == 0 {
				t.Errorf("survivor pid=%d missing %q span: %v", pid, want, got)
			}
		}
	}

	// The controller flight recorder narrates the failure.
	var sawRPC, sawEvict, sawRecovery bool
	for _, ev := range c.FlightRecorder().Events() {
		switch ev.Kind {
		case "rpc":
			sawRPC = true
		case "evict":
			sawEvict = true
		case "recovery":
			sawRecovery = true
		}
	}
	if !sawRPC || !sawEvict || !sawRecovery {
		t.Errorf("flight recorder missing failure narrative (rpc=%v evict=%v recovery=%v):\n%v",
			sawRPC, sawEvict, sawRecovery, c.FlightRecorder().Events())
	}
}

// TestPhaseClass pins the trace-parent propagation surface: phase RPCs
// carry the one-shot parent, probes and peer traffic never do.
func TestPhaseClass(t *testing.T) {
	for _, m := range []string{"Setup", "BeginShard", "GatherBGP", "ApplyBGP",
		"GatherOSPF", "ApplyOSPF", "EndShard", "ComputeDP", "BeginQuery",
		"Inject", "DPRound", "FinishQuery"} {
		if !sidecar.PhaseClass(m) {
			t.Errorf("%s must be a phase call", m)
		}
	}
	for _, m := range []string{"Ping", "HasWork", "Stats", "PullSpans",
		"PullStats", "PullProfile",
		"PullBGP", "PullLSAs", "PullBGPBatch", "PullLSABatch",
		"DeliverPackets", "DeliverBatch", "CollectRIBs", "Bogus"} {
		if sidecar.PhaseClass(m) {
			t.Errorf("%s must not be a phase call", m)
		}
	}
}

// TestEvictCaptureFlightPage: when the dying worker is still reachable at
// eviction time, the controller salvages its remaining spans AND its last
// flight-recorder page into an evict span's attrs.
func TestEvictCaptureFlightPage(t *testing.T) {
	tracer := obs.NewTracer()
	snap, texts := fatTreeSnap(t, 4)
	addrs, _, _ := startTracedRemoteWorkers(t, 3)

	// Crash via injector on the controller-side transport: the worker
	// process itself stays up and answers PullSpans, so eviction can pull
	// its last flight page.
	hook := func(id int, w sidecar.WorkerAPI) sidecar.WorkerAPI {
		if id != 2 {
			return w
		}
		return &alwaysFail{WorkerAPI: w, method: "ApplyBGP", nth: 2}
	}
	c := newS2(t, snap, texts, Options{
		WorkerAddrs: addrs, Seed: 26, Tracer: tracer,
		RPCTimeout: 5 * time.Second, Recover: true, WrapWorker: hook,
	})
	defer c.Close()
	runCP(t, c)
	if c.FaultCounters().Get("worker.deaths") != 1 {
		t.Fatalf("counters: %s", c.FaultCounters())
	}

	var evictSpan *obs.TraceEvent
	for _, e := range tracer.Events() {
		if strings.HasPrefix(e.Name, "evict:worker") {
			e := e
			evictSpan = &e
		}
	}
	if evictSpan == nil {
		t.Fatal("no evict span in controller trace")
	}
	flightJSON, ok := evictSpan.Args["flight"]
	if !ok {
		t.Fatalf("evict span carries no flight page: %v", evictSpan.Args)
	}
	var page []obs.FlightEvent
	if err := json.Unmarshal([]byte(flightJSON), &page); err != nil || len(page) == 0 {
		t.Fatalf("evict flight attr not a JSON event page: %v (%d events)", err, len(page))
	}
	var sawPhase bool
	for _, ev := range page {
		if ev.Kind == "phase" {
			sawPhase = true
		}
	}
	if !sawPhase {
		t.Errorf("captured flight page has no phase events: %v", page)
	}
}

// alwaysFail makes one worker's transport look dead from the Nth ApplyBGP
// onward — ApplyBGP and the liveness probe both fail, but the worker process
// stays alive, so the eviction path can still pull its spans and flight page.
type alwaysFail struct {
	sidecar.WorkerAPI
	mu      sync.Mutex
	method  string
	nth     int
	calls   int
	tripped bool
}

func (a *alwaysFail) ApplyBGP() (sidecar.ApplyReply, error) {
	a.mu.Lock()
	a.calls++
	if a.calls >= a.nth {
		a.tripped = true
	}
	tripped := a.tripped
	a.mu.Unlock()
	if tripped {
		return sidecar.ApplyReply{}, errTransientApply
	}
	return a.WorkerAPI.ApplyBGP()
}

func (a *alwaysFail) Ping() error {
	a.mu.Lock()
	tripped := a.tripped
	a.mu.Unlock()
	if tripped {
		return errTransientApply
	}
	return a.WorkerAPI.Ping()
}

// errTransientApply reads as a dead transport to fault.IsTransient.
var errTransientApply = errors.New("injected: connection reset")
