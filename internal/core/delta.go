// Delta re-verification: the controller keeps the converged per-worker
// RIB/BDD state resident between runs and, on a config delta, re-runs the
// pipeline only where the change can matter. The planner diffs per-device
// config fingerprints (internal/config), classifies the delta, and picks
// the cheapest sound path:
//
//	none   — nothing semantic changed (comments, whitespace): adopt the new
//	         texts and bump the epoch.
//	dp     — only data-plane filters changed (ACLs, descriptions): ship the
//	         new device models to their owners and recompute FIBs/predicates;
//	         the control plane stays resident.
//	shards — origination or routing policy changed: ship models, purge
//	         globally-retired prefixes, rebuild the prefix shards from the
//	         new snapshot, and re-run only the dirty shards' dependency
//	         closure. Clean shards keep their per-prefix resident results —
//	         sound because every shard round is cold and self-contained.
//	full   — topology-class changes (interfaces, OSPF, BGP sessions, device
//	         add/remove/rename), or no resident state to build on: the
//	         ordinary re-partition + full pipeline.
package core

import (
	"fmt"
	"sort"
	"time"

	"s2/internal/config"
	"s2/internal/obs"
	"s2/internal/route"
	"s2/internal/shard"
	"s2/internal/sidecar"
	"s2/internal/topology"
)

// DeltaResult reports what one ApplyDelta run did.
type DeltaResult struct {
	// Class is the most invasive per-device change class in the delta.
	Class config.DeltaClass
	// Mode is the re-verification path taken: noop, dp, shards, or full.
	Mode string
	// Changed maps modified devices to their change class; Added and
	// Removed list devices that appeared or disappeared (renames are a
	// remove plus an add).
	Changed map[string]config.DeltaClass
	Added   []string
	Removed []string
	// DirtyShards is how many shard rounds actually ran (including §7
	// merge recomputes); TotalShards is the shard count of the new state.
	DirtyShards int
	TotalShards int
	// DirtyShardIDs lists the shard rounds that ran, in execution order (a
	// §7 merge recompute repeats the absorbing shard's id) — the audit
	// trail for every skipped shard's soundness claim. Empty for noop and
	// dp deltas; all shards for full.
	DirtyShardIDs []int
	// Stages maps pipeline stage names (partition+setup, cp-ospf, cp-bgp,
	// dp-compute, dp-forward) to the wall time this delta spent in them.
	Stages map[string]time.Duration
	// Epoch is the verified-state epoch after the delta.
	Epoch uint64
	// Warnings are FIB resolution warnings from the data-plane compute.
	Warnings []string
}

// ApplyDelta applies per-device config changes to the resident verified
// state: set maps device names to replacement config texts (a text whose
// parsed hostname differs renames the device), remove lists devices to
// delete. On return the controller's state is converged for the new
// configs, exactly as if they had been verified from cold, and the epoch
// has advanced.
func (c *Controller) ApplyDelta(set map[string]string, remove []string) (*DeltaResult, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("core: controller is closed")
	}
	newTexts := make(map[string]string, len(c.texts))
	for k, v := range c.texts {
		newTexts[k] = v
	}
	for _, name := range remove {
		if _, ok := newTexts[name]; !ok {
			return nil, fmt.Errorf("core: delta removes unknown device %q", name)
		}
		delete(newTexts, name)
	}
	for key, text := range set {
		one, err := config.ParseTexts(map[string]string{key + ".cfg": text})
		if err != nil {
			return nil, fmt.Errorf("core: delta config %q: %w", key, err)
		}
		names := one.DeviceNames()
		if len(names) != 1 {
			return nil, fmt.Errorf("core: delta config %q defines %d devices, want 1", key, len(names))
		}
		if names[0] != key {
			delete(newTexts, key) // rename: the parsed hostname wins
		}
		newTexts[names[0]] = text
	}
	files := make(map[string]string, len(newTexts))
	for name, text := range newTexts {
		files[name+".cfg"] = text
	}
	newSnap, err := config.ParseTexts(files)
	if err != nil {
		return nil, err
	}
	diff := config.DiffSnapshots(c.snap, newSnap)
	res := &DeltaResult{
		Class:   diff.Class(),
		Changed: diff.Changed,
		Added:   diff.Added,
		Removed: diff.Removed,
	}
	c.cpWanted, c.dpWanted = true, true
	end := c.startSpan("delta",
		obs.Attr{Key: "class", Value: diff.Class().String()},
		obs.Int("changed", len(diff.Changed)),
		obs.Int("added", len(diff.Added)),
		obs.Int("removed", len(diff.Removed)))
	defer end()
	c.flight.Record("delta", "class=%s changed=%d added=%d removed=%d",
		diff.Class(), len(diff.Changed), len(diff.Added), len(diff.Removed))
	c.log.Info("delta classified",
		obs.FStr("class", diff.Class().String()),
		obs.FInt("changed", len(diff.Changed)),
		obs.FInt("added", len(diff.Added)),
		obs.FInt("removed", len(diff.Removed)))
	started := time.Now()
	phasesBefore := len(c.timer.Phases())
	err = c.timer.Time("delta", func() error {
		return c.recoverable(func() error { return c.applyDeltaBody(newSnap, newTexts, diff, res) })
	})
	// Attribute per-stage wall time from the phase timer: every stage a
	// recoverable attempt ran landed between the two snapshots. Recovery
	// re-runs accumulate into the same stage — the audit records what this
	// delta actually cost, not just the successful attempt.
	res.Stages = map[string]time.Duration{}
	for _, p := range c.timer.Phases()[phasesBefore:] {
		if p.Name != "delta" {
			res.Stages[p.Name] += p.Duration
		}
	}
	if err != nil {
		c.log.Error("delta failed",
			obs.FStr("class", diff.Class().String()),
			obs.FStr("mode", res.Mode),
			obs.FDur("took", time.Since(started)),
			obs.FErr(err))
		return nil, err
	}
	res.Epoch = c.epoch.Load()
	c.flight.Record("delta", "done mode=%s dirty=%d/%d epoch=%d",
		res.Mode, res.DirtyShards, res.TotalShards, res.Epoch)
	c.log.Info("delta applied",
		obs.FStr("class", res.Class.String()),
		obs.FStr("mode", res.Mode),
		obs.FInt("dirty_shards", res.DirtyShards),
		obs.FInt("total_shards", res.TotalShards),
		obs.FUint64("epoch", res.Epoch),
		obs.FDur("took", time.Since(started)))
	c.recordDeltaMetrics(res)
	return res, nil
}

// applyDeltaBody is one recoverable attempt: a repair re-Setups the workers
// (wiping resident results), after which Resident() is false and the
// re-entry falls through to the full path.
func (c *Controller) applyDeltaBody(newSnap *config.Snapshot, newTexts map[string]string, diff *config.SnapshotDiff, res *DeltaResult) error {
	res.Mode, res.DirtyShards, res.TotalShards, res.Warnings = "", 0, 0, nil
	res.DirtyShardIDs = nil
	if diff.Empty() {
		res.Mode = "noop"
		if err := c.adopt(newSnap, newTexts); err != nil {
			return err
		}
		c.bumpEpoch() // an accepted no-op is still a new verified epoch
		return nil
	}
	class := diff.Class()
	if !c.Resident() || class == config.DeltaTopo {
		res.Mode = "full"
		return c.deltaFull(newSnap, newTexts, res)
	}
	if class == config.DeltaDP {
		res.Mode = "dp"
		return c.deltaDP(newSnap, newTexts, diff, res)
	}
	res.Mode = "shards"
	return c.deltaShards(newSnap, newTexts, diff, res, class)
}

// adopt swaps in the new snapshot/texts and rebuilds the derived topology.
func (c *Controller) adopt(newSnap *config.Snapshot, newTexts map[string]string) error {
	net, err := topology.Build(newSnap)
	if err != nil {
		return err
	}
	c.snap, c.net, c.texts = newSnap, net, newTexts
	return nil
}

// deltaFull runs the ordinary cold pipeline against the new snapshot:
// re-partition, re-Setup every worker, control plane, data plane.
func (c *Controller) deltaFull(newSnap *config.Snapshot, newTexts map[string]string, res *DeltaResult) error {
	if err := c.adopt(newSnap, newTexts); err != nil {
		return err
	}
	if err := c.setup(); err != nil {
		return err
	}
	if err := c.runControlPlane(); err != nil {
		return err
	}
	warnings, err := c.computeDataPlane()
	if err != nil {
		return err
	}
	res.Warnings = warnings
	res.TotalShards = len(c.shards)
	res.DirtyShards = len(c.shards)
	res.DirtyShardIDs = make([]int, len(c.shards))
	for i := range res.DirtyShardIDs {
		res.DirtyShardIDs[i] = i
	}
	return nil
}

// deltaDP handles pure data-plane deltas (ACLs, descriptions): update the
// owners' device models and recompute FIBs/predicates from the resident
// RIBs. Zero shard rounds re-run.
func (c *Controller) deltaDP(newSnap *config.Snapshot, newTexts map[string]string, diff *config.SnapshotDiff, res *DeltaResult) error {
	if err := c.adopt(newSnap, newTexts); err != nil {
		return err
	}
	if err := c.pushDelta(changedNames(diff), nil); err != nil {
		if isNoBatchErr(err) { // legacy worker without ApplyDelta: go full
			res.Mode = "full"
			return c.deltaFull(newSnap, newTexts, res)
		}
		c.dpDone = false
		return err
	}
	res.TotalShards = len(c.shards)
	c.dpDone = false
	warnings, err := c.computeDataPlane()
	if err != nil {
		return err
	}
	res.Warnings = warnings
	return nil
}

// deltaShards handles origination and policy deltas with the control plane
// resident: update device models, purge retired prefixes, rebuild the
// shards from the new snapshot, and re-run only the dirty ones.
func (c *Controller) deltaShards(newSnap *config.Snapshot, newTexts map[string]string, diff *config.SnapshotDiff, res *DeltaResult, class config.DeltaClass) error {
	oldSnap := c.snap
	oldGlobal := shard.CollectBGPPrefixes(oldSnap)
	dpdgOpts := shard.DPDGOptions{IgnoreConditional: c.opts.IgnoreConditionalDeps}

	// Origination deltas dirty only the changed devices' owned prefixes,
	// expanded through the dependency closure of BOTH the old and the new
	// prefix dependency graphs — a prefix whose component splits or merges
	// is recomputed either way.
	var affected map[route.Prefix]bool
	if class == config.DeltaOrig {
		affected = map[route.Prefix]bool{}
		for name, cl := range diff.Changed {
			if cl != config.DeltaOrig {
				continue
			}
			for _, p := range originatedBy(oldSnap, name) {
				affected[p] = true
			}
			for _, p := range originatedBy(newSnap, name) {
				affected[p] = true
			}
		}
		expandComponents(affected, shard.BuildDPDGOpts(oldSnap, dpdgOpts).Components())
		expandComponents(affected, shard.BuildDPDGOpts(newSnap, dpdgOpts).Components())
	}

	if err := c.adopt(newSnap, newTexts); err != nil {
		return err
	}

	// Prefixes no longer originated anywhere must be purged from every
	// worker's resident RIBs: no new shard round will overwrite them.
	newGlobal := shard.CollectBGPPrefixes(newSnap)
	inNew := make(map[route.Prefix]bool, len(newGlobal))
	for _, p := range newGlobal {
		inNew[p] = true
	}
	var purge []route.Prefix
	for _, p := range oldGlobal {
		if !inNew[p] {
			purge = append(purge, p)
		}
	}

	if err := c.pushDelta(changedNames(diff), purge); err != nil {
		if isNoBatchErr(err) { // legacy worker without ApplyDelta: go full
			res.Mode = "full"
			return c.deltaFull(newSnap, newTexts, res)
		}
		// Models and purges may be half-applied; force a clean re-Setup
		// before anything else trusts the resident state.
		c.setupDone, c.cpDone, c.dpDone = false, false, false
		return err
	}

	// Rebuild the shards from the new snapshot. Resident results are keyed
	// per prefix, so results for prefixes that land in clean new shards
	// remain valid regardless of how shard boundaries moved.
	var shards []*shard.Shard
	if c.opts.Shards > 1 {
		var err error
		shards, err = shard.MakeShards(shard.BuildDPDGOpts(newSnap, dpdgOpts), c.opts.Shards, c.opts.Seed)
		if err != nil {
			return err
		}
	} else {
		shards = []*shard.Shard{nil}
	}
	c.shards = shards

	dirty := make([]bool, len(shards))
	for i, sh := range shards {
		switch {
		case class == config.DeltaPolicy, sh == nil:
			// Policy changes can reroute any prefix a route-map or filter
			// touches; dirty everything rather than model policy reach.
			dirty[i] = true
		default:
			for p := range affected {
				if sh.Contains(p) {
					dirty[i] = true
					break
				}
			}
		}
	}
	nDirty := 0
	for _, d := range dirty {
		if d {
			nDirty++
		}
	}
	res.TotalShards = len(shards)
	res.DirtyShards = nDirty
	c.flight.Record("delta", "dirty shards %d/%d, purging %d prefixes", nDirty, len(shards), len(purge))

	err := c.timer.Time("cp-bgp", func() error {
		return c.stage("cp-bgp", func() error {
			runs, err := c.runDirtyShards(dirty)
			res.DirtyShardIDs = runs
			if len(runs) > res.DirtyShards {
				res.DirtyShards = len(runs) // §7 merges pulled in clean shards
			}
			return err
		})
	})
	if err != nil {
		c.cpDone = false // a failed shard round leaves partial CP state
		return err
	}
	c.dpDone = false
	warnings, err := c.computeDataPlane()
	if err != nil {
		return err
	}
	res.Warnings = warnings
	return nil
}

// pushDelta ships changed device configs to their owning workers and the
// purge list to every worker; workers with nothing to do are skipped.
func (c *Controller) pushDelta(changed []string, purge []route.Prefix) error {
	perWorker := map[int]map[string]string{}
	for _, name := range changed {
		id, ok := c.assignment.Of[name]
		if !ok {
			return fmt.Errorf("core: delta device %q not in the current partition", name)
		}
		if perWorker[id] == nil {
			perWorker[id] = map[string]string{}
		}
		perWorker[id][name] = c.texts[name]
	}
	return c.each(func(id int, w sidecar.WorkerAPI) error {
		req := sidecar.DeltaRequest{Configs: perWorker[id], PurgePrefixes: purge}
		if len(req.Configs) == 0 && len(req.PurgePrefixes) == 0 {
			return nil
		}
		_, err := w.ApplyDelta(req)
		return err
	})
}

func (c *Controller) recordDeltaMetrics(res *DeltaResult) {
	if c.reg == nil {
		return
	}
	c.reg.Counter(MetricDeltas, "Config deltas applied, by re-verification mode.", "mode").
		Inc(res.Mode)
	c.reg.Counter(MetricDeltaPlans, "Delta re-verification plans chosen, by change class.", "class").
		Inc(res.Class.String())
	c.reg.Gauge(MetricDeltaDirty, "Shard rounds re-run by the last delta.").
		Set(float64(res.DirtyShards))
	c.reg.Gauge(MetricDeltaTotal, "Total prefix shards at the last delta.").
		Set(float64(res.TotalShards))
}

// originatedBy returns the prefixes a device originates into BGP (network
// statements plus aggregates) — the origination surface the Orig
// fingerprint class covers.
func originatedBy(snap *config.Snapshot, name string) []route.Prefix {
	dev := snap.Devices[name]
	if dev == nil || dev.BGP == nil {
		return nil
	}
	out := append([]route.Prefix(nil), dev.BGP.Networks...)
	for _, a := range dev.BGP.Aggregates {
		out = append(out, a.Prefix)
	}
	return out
}

// expandComponents closes the affected set over dependency components: a
// component with one affected prefix is affected whole.
func expandComponents(affected map[route.Prefix]bool, comps [][]route.Prefix) {
	for _, comp := range comps {
		hit := false
		for _, p := range comp {
			if affected[p] {
				hit = true
				break
			}
		}
		if hit {
			for _, p := range comp {
				affected[p] = true
			}
		}
	}
}

func changedNames(diff *config.SnapshotDiff) []string {
	names := make([]string, 0, len(diff.Changed))
	for name := range diff.Changed {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
