// This file is the observability wiring for the controller and in-process
// workers: stage and shard spans in a shared obs.Tracer, RPC telemetry on
// every worker transport, per-iteration convergence progress streamed from
// ApplyReply, and Prometheus-style metrics bridging the modelled-memory
// trackers. All of it is nil-safe: with Options.Tracer and Options.Metrics
// unset, every hook below degrades to a no-op.

package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"s2/internal/bdd"
	"s2/internal/metrics"
	"s2/internal/obs"
	"s2/internal/sidecar"
)

// Metric names exported by the core layer; see README "Observability".
const (
	MetricRoutesExchanged = "s2_routes_exchanged_total"
	MetricCPIterations    = "s2_cp_iterations_total"
	MetricCPRoutesSettled = "s2_cp_routes_settled"
	MetricCPChangedNodes  = "s2_cp_changed_nodes"
	MetricBDDNodes        = "s2_bdd_nodes"
	MetricBDDGCRuns       = "s2_bdd_gc_runs_total"
	MetricBDDGCPause      = "s2_bdd_gc_pause_seconds"
	MetricBDDGCFreed      = "s2_bdd_gc_freed_total"
	MetricBDDCacheReloc   = "s2_bdd_cache_relocated_total"
	MetricBDDCacheDropped = "s2_bdd_cache_dropped_total"
	MetricSpillBytes      = "s2_spill_bytes_total"
	MetricModelMemory     = "s2_model_memory_bytes"
	MetricFaultEvents     = "s2_fault_events_total"
	MetricWorkersAlive    = "s2_workers_alive"
	MetricWireBytes       = "s2_wire_packet_bytes_total"
	MetricWireDeduped     = "s2_wire_nodes_deduped_total"
	MetricEpoch           = "s2_epoch"
	MetricEpochAge        = "s2_epoch_age_seconds"
	MetricDeltas          = "s2_deltas_total"
	MetricDeltaPlans      = "s2_delta_plan_total"
	MetricDeltaDirty      = "s2_delta_dirty_shards"
	MetricDeltaTotal      = "s2_delta_total_shards"

	// Query-plane metrics (see queryplane.go).
	MetricQueryCacheHits     = "s2_query_cache_hits_total"
	MetricQueryPasses        = "s2_query_passes_total"
	MetricQueryBatchSize     = "s2_query_batch_size"
	MetricQuerySlicedWorkers = "s2_query_sliced_workers"

	// Fleet health metrics (see fleet.go).
	MetricStragglerScore   = "s2_straggler_score"
	MetricRoundSkew        = "s2_round_skew_seconds"
	MetricWorkerShard      = "s2_worker_shard"
	MetricWorkerRound      = "s2_worker_round"
	MetricWorkerQueueLen   = "s2_worker_queue_len"
	MetricWorkerRSS        = "s2_worker_rss_bytes"
	MetricWorkerHeap       = "s2_worker_heap_bytes"
	MetricWorkerGoroutines = "s2_worker_goroutines"
	MetricWorkerGCPauseP99 = "s2_worker_gc_pause_p99_seconds"
	MetricProfilesStored   = "s2_profiles_stored"
)

// faultEventKeys are the metrics.FaultCounters keys bridged to
// s2_fault_events_total. FaultCounters has no key enumeration that is safe
// to call at scrape time without allocating, so the bridge names the known
// event vocabulary explicitly.
var faultEventKeys = []string{
	"rpc.retries", "rpc.timeouts", "rpc.failures",
	"heartbeat.misses", "heartbeat.deaths", "worker.deaths", "recoveries",
}

// Progress is the controller's live run view: which stage is executing and
// how far the current convergence loop has come. It backs the /progress
// endpoint of cmd/s2 and is rebuilt from the per-iteration ApplyReply
// counts the workers stream back.
type Progress struct {
	// Stage is the currently executing stage (partition+setup, cp-ospf,
	// cp-bgp, dp-compute, dp-forward), empty before Setup and after Close.
	Stage string `json:"stage"`
	// Shard is the prefix shard the control plane is converging (cp-bgp).
	Shard int `json:"shard"`
	// Round is the current convergence iteration within the stage/shard.
	Round int `json:"round"`
	// RoutesSettled is the route count installed across all workers after
	// the last Apply iteration.
	RoutesSettled int `json:"routes_settled"`
	// ChangedNodes is how many nodes changed state in the last iteration;
	// it reaches 0 exactly when the loop converges.
	ChangedNodes int `json:"changed_nodes"`
	CPRounds     int `json:"cp_rounds"`
	DPRounds     int `json:"dp_rounds"`
	Recoveries   int `json:"recoveries"`
	WorkersAlive int `json:"workers_alive"`
}

// Progress returns a snapshot of the live run view. Safe to call from any
// goroutine (the -obs-addr HTTP handler calls it during a run).
func (c *Controller) Progress() Progress {
	c.pmu.Lock()
	p := c.prog
	c.pmu.Unlock()
	c.wmu.RLock()
	p.WorkersAlive = len(c.workers)
	c.wmu.RUnlock()
	p.CPRounds = c.cpRounds
	p.DPRounds = c.dpRounds
	p.Recoveries = c.recoveries
	return p
}

// initObs wires the controller's observability surface from Options: the
// shared tracer/registry, the per-worker client RPC hooks, and the
// scrape-time bridges (fault events, workers alive, client transport bytes).
func (c *Controller) initObs() {
	c.tracer = c.opts.Tracer
	c.reg = c.opts.Metrics
	c.log = c.opts.Logger
	var parent func() *obs.Span
	if c.tracer != nil {
		parent = c.curStageSpan
	}
	if c.reg != nil || parent != nil {
		reg := c.reg
		c.clientHook = func(id int) sidecar.TraceHook {
			return sidecar.TraceHook(obs.RPCInstrumentTraced(reg, "client", parent, obs.Int("worker", id)))
		}
	}
	if c.reg == nil {
		return
	}
	events := c.reg.Counter(MetricFaultEvents,
		"Fault-tolerance events (retries, timeouts, deaths, recoveries) by kind.",
		"event")
	for _, key := range faultEventKeys {
		key := key
		events.SetFunc(func() float64 { return float64(c.faults.Get(key)) }, key)
	}
	c.reg.Gauge(MetricWorkersAlive, "Workers currently in the controller's directory.").
		SetFunc(func() float64 {
			c.wmu.RLock()
			defer c.wmu.RUnlock()
			return float64(len(c.workers))
		})
	c.reg.Gauge(MetricEpochAge, "Seconds since the verified-state epoch last advanced.").
		SetFunc(func() float64 {
			at := c.epochAt.Load()
			if at == 0 {
				return 0
			}
			return time.Since(time.Unix(0, at)).Seconds()
		})
	bytes := c.reg.Counter(obs.MetricRPCBytes,
		"Transport bytes moved by sidecar RPC, by role and direction.",
		"role", "dir")
	bytes.SetFunc(func() float64 { return float64(c.clientBytes(false)) }, "client", "in")
	bytes.SetFunc(func() float64 { return float64(c.clientBytes(true)) }, "client", "out")
	obs.RegisterProcessVitals(c.reg)
	if c.profiles != nil {
		c.reg.Gauge(MetricProfilesStored, "Harvested pprof profiles currently held in the store.").
			SetFunc(func() float64 { return float64(c.profiles.Len()) })
	}
}

// clientBytes sums transport bytes across the live remote clients.
func (c *Controller) clientBytes(written bool) int64 {
	c.wmu.RLock()
	defer c.wmu.RUnlock()
	var total int64
	for _, cl := range c.clients {
		if cl == nil {
			continue
		}
		if written {
			total += cl.BytesWritten()
		} else {
			total += cl.BytesRead()
		}
	}
	return total
}

// curStageSpan is the parent provider for client RPC spans: RPCs nest under
// whatever stage/shard/round span the orchestrator holds open when the call
// is issued.
func (c *Controller) curStageSpan() *obs.Span {
	s, _ := c.curSpan.Load().(*obs.Span)
	return s
}

// startSpan opens a span under the current one (or a root span), makes it
// current, and returns the closure that ends it and restores its parent.
// The orchestrators are sequential, so a plain save-and-restore is enough;
// the atomic only protects the concurrent reads from RPC hooks.
func (c *Controller) startSpan(name string, attrs ...obs.Attr) func() {
	if c.tracer == nil {
		return func() {}
	}
	parent := c.curStageSpan()
	var s *obs.Span
	if parent != nil {
		s = parent.Child(name, attrs...)
	} else {
		s = c.tracer.Start(name, attrs...)
	}
	c.curSpan.Store(s)
	return func() {
		s.End()
		c.curSpan.Store(parent)
	}
}

// stage opens a stage span named "stage:<name>", publishes the stage to the
// progress view, runs fn, and closes the span.
func (c *Controller) stage(name string, fn func() error) error {
	end := c.startSpan("stage:" + name)
	c.flight.Record("stage", "enter %s", name)
	c.log.Debug("stage enter", obs.FStr("stage", name))
	c.pmu.Lock()
	c.prog.Stage = name
	c.pmu.Unlock()
	start := time.Now()
	err := fn()
	end()
	if err != nil {
		c.flight.Record("stage", "leave %s: %v", name, err)
		c.log.Warn("stage failed", obs.FStr("stage", name),
			obs.FDur("took", time.Since(start)), obs.FErr(err))
	} else {
		c.flight.Record("stage", "leave %s", name)
		c.log.Debug("stage leave", obs.FStr("stage", name),
			obs.FDur("took", time.Since(start)))
	}
	return err
}

// applyRound runs one Apply iteration on every worker, aggregates the
// per-worker ApplyReply progress, streams it to the progress view, and
// records the iteration metrics.
func (c *Controller) applyRound(protocol string, shardIdx, round int,
	apply func(w sidecar.WorkerAPI) (sidecar.ApplyReply, error)) (bool, error) {
	var mu sync.Mutex
	var agg sidecar.ApplyReply
	changed, err := c.eachPhase("cp", func(_ int, w sidecar.WorkerAPI) (bool, error) {
		r, err := apply(w)
		if err != nil {
			return false, err
		}
		mu.Lock()
		agg.ChangedNodes += r.ChangedNodes
		agg.Routes += r.Routes
		mu.Unlock()
		return r.Changed, nil
	})
	if err != nil {
		return false, err
	}
	c.pmu.Lock()
	c.prog.Shard = shardIdx
	c.prog.Round = round
	c.prog.RoutesSettled = agg.Routes
	c.prog.ChangedNodes = agg.ChangedNodes
	c.pmu.Unlock()
	if c.reg != nil {
		c.reg.Counter(MetricCPIterations,
			"Control plane convergence iterations by protocol.", "protocol").
			Inc(protocol)
		c.reg.Gauge(MetricCPRoutesSettled,
			"Routes installed across all workers after the last iteration.", "protocol").
			Set(float64(agg.Routes), protocol)
		c.reg.Gauge(MetricCPChangedNodes,
			"Nodes that changed state in the last iteration.", "protocol").
			Set(float64(agg.ChangedNodes), protocol)
	}
	return changed, nil
}

// --- Worker side ---

// workerObs is the observability handle of one in-process worker. It is
// run-independent infrastructure: Setup's full reset leaves it alone, and
// every instrument is nil-safe so an unwired worker pays only nil checks.
type workerObs struct {
	tracer *obs.Tracer
	reg    *obs.Registry
	// tracker mirrors Worker.tracker for scrape-time reads: Setup replaces
	// the tracker under phaseMu, which a /metrics scrape must not wait on.
	tracker atomic.Pointer[metrics.Tracker]
	// shardSpan covers BeginShard..EndShard; phase spans nest under it.
	shardSpan *obs.Span
	// pendingTC is the one-shot trace parent propagated by the controller's
	// last phase-class RPC (sidecar.Service → AcceptTraceParent); the next
	// phase span consumes it and parents under the controller's client rpc
	// span instead of the local shard span. Atomic because the RPC layer
	// stores it from the serving goroutine.
	pendingTC atomic.Pointer[obs.TraceContext]
	// cur is the TraceContext of the most recently opened phase/shard span,
	// sampled by peer-bound requests (RemoteWorker.SetTraceSource) so peer
	// pulls carry the phase they were issued from.
	cur atomic.Value // obs.TraceContext
}

// takeTC consumes the pending cross-process trace parent (zero when the
// current phase call arrived without one — the in-process transport).
func (o *workerObs) takeTC() obs.TraceContext {
	if p := o.pendingTC.Swap(nil); p != nil {
		return *p
	}
	return obs.TraceContext{}
}

func (o *workerObs) setCur(tc obs.TraceContext) { o.cur.Store(tc) }

func (o *workerObs) curTC() obs.TraceContext {
	tc, _ := o.cur.Load().(obs.TraceContext)
	return tc
}

// AcceptTraceParent implements sidecar.TraceParentAcceptor: the RPC service
// hands over the TraceContext stamped on an incoming request before invoking
// the method. Only controller-issued phase-class calls may re-parent worker
// spans — peer pulls and probes carry contexts too, but consuming those
// would steal the parent armed for the phase in flight.
func (w *Worker) AcceptTraceParent(method string, tc sidecar.TraceContext) {
	if w.obs == nil || w.obs.tracer == nil || !tc.Valid() || !sidecar.PhaseClass(method) {
		return
	}
	t := tc
	w.obs.pendingTC.Store(&t)
}

// SetNextTraceParent implements the sidecar traceCarrier slot for the
// in-process transport: ObserveTraced arms it with the client rpc span's
// context immediately before each phase-class call, so local workers'
// phase spans parent under the exact rpc span that triggered them — the
// same tree shape remote workers get from the wire's TraceContext. The
// caller (the observed transport wrapper) has already filtered to
// phase-class methods and valid contexts.
func (w *Worker) SetNextTraceParent(tc sidecar.TraceContext) {
	if w.obs == nil || w.obs.tracer == nil || !tc.Valid() {
		return
	}
	t := tc
	w.obs.pendingTC.Store(&t)
}

// SetObservability attaches a tracer and metrics registry to the worker.
// Call before Setup; in-process controllers pass their own tracer/registry
// so one trace holds the whole distributed run, while cmd/s2worker passes a
// process-local pair served on -obs-addr. The handles survive Setup's full
// reset (recovery re-Setups workers that keep their telemetry).
func (w *Worker) SetObservability(tracer *obs.Tracer, reg *obs.Registry) {
	if tracer == nil && reg == nil {
		return
	}
	w.obs = &workerObs{tracer: tracer, reg: reg}
}

// obsSetupDone publishes the freshly built tracker and registers the
// worker-labelled instruments; called at the end of Worker.Setup with the
// worker id known.
func (w *Worker) obsSetupDone() {
	if w.obs == nil {
		return
	}
	if s := w.obs.shardSpan; s != nil {
		s.End() // recovery re-Setup can interrupt an open shard
		w.obs.shardSpan = nil
	}
	// Export mode (remote workers): claim a disjoint span-id range so ids
	// minted here never collide with the controller's or other workers' when
	// the harvested spans merge into one trace.
	if w.obs.tracer.Exporting() {
		w.obs.tracer.EnsureIDBase(uint64(w.id+1) << 40)
	}
	w.obs.tracker.Store(w.tracker)
	if w.obs.reg == nil {
		return
	}
	lbl := fmt.Sprint(w.id)
	mem := w.obs.reg.Gauge(MetricModelMemory,
		"Modelled memory per worker in bytes (current and peak).",
		"worker", "kind")
	get := func(peak bool) func() float64 {
		return func() float64 {
			t := w.obs.tracker.Load()
			if t == nil {
				return 0
			}
			if peak {
				return float64(t.Peak())
			}
			return float64(t.Current())
		}
	}
	mem.SetFunc(get(false), lbl, "current")
	mem.SetFunc(get(true), lbl, "peak")
}

// obsWorkerSpan opens a span on the worker's timeline. Parent precedence:
// the controller's propagated rpc span when the current phase call carried a
// TraceContext (remote mode — the span lands under the exact client RPC that
// triggered it after harvesting), else the open shard span, else a root.
// Returns nil (a no-op span) when tracing is off.
func (w *Worker) obsWorkerSpan(name string, attrs ...obs.Attr) *obs.Span {
	if w.obs == nil || w.obs.tracer == nil {
		return nil
	}
	var span *obs.Span
	if tc := w.obs.takeTC(); tc.Valid() {
		span = w.obs.tracer.StartRemote(name, tc, attrs...).SetWorker(w.id)
	} else if w.obs.shardSpan != nil {
		span = w.obs.shardSpan.Child(name, attrs...)
	} else {
		span = w.obs.tracer.Start(name, attrs...).SetWorker(w.id)
	}
	w.obs.setCur(span.TC())
	return span
}

// obsBeginShard opens the shard span covering one BeginShard..EndShard
// round; obsEndShard closes it. With a propagated parent the shard span
// nests under the controller's rpc:BeginShard client span.
func (w *Worker) obsBeginShard(index, prefixes int) {
	if w.obs == nil || w.obs.tracer == nil {
		return
	}
	if s := w.obs.shardSpan; s != nil {
		s.End()
	}
	attrs := []obs.Attr{obs.Int("shard", index), obs.Int("prefixes", prefixes)}
	if tc := w.obs.takeTC(); tc.Valid() {
		w.obs.shardSpan = w.obs.tracer.StartRemote("shard", tc, attrs...).SetWorker(w.id)
	} else {
		w.obs.shardSpan = w.obs.tracer.Start("shard", attrs...).SetWorker(w.id)
	}
	w.obs.setCur(w.obs.shardSpan.TC())
}

func (w *Worker) obsEndShard() {
	if w.obs == nil || w.obs.shardSpan == nil {
		return
	}
	w.obs.shardSpan.End()
	w.obs.shardSpan = nil
}

// obsRoutesExchanged counts routes pulled across the simulation fabric
// (BGP advertisements or OSPF LSAs) during a Gather phase.
func (w *Worker) obsRoutesExchanged(protocol string, n int) {
	if w.obs == nil || w.obs.reg == nil || n == 0 {
		return
	}
	w.obs.reg.Counter(MetricRoutesExchanged,
		"Routes exchanged (pulled) during control plane simulation.",
		"worker", "protocol").
		Add(float64(n), fmt.Sprint(w.id), protocol)
}

// obsBDD records the engine's node count after compilation or GC, and GC
// runs as they happen.
func (w *Worker) obsBDD(nodes int, gcRun bool) {
	if w.obs == nil || w.obs.reg == nil {
		return
	}
	lbl := fmt.Sprint(w.id)
	w.obs.reg.Gauge(MetricBDDNodes,
		"Live BDD nodes in the worker's engine.", "worker").
		Set(float64(nodes), lbl)
	if gcRun {
		w.obs.reg.Counter(MetricBDDGCRuns,
			"BDD garbage collections run.", "worker").
			Inc(lbl)
	}
}

// gcPauseBuckets resolve the engine's µs-scale stop-the-world pauses:
// 5µs .. 250ms, roughly ×2–×2.5 steps. DefLatencyBuckets start at 100µs,
// which would flatten every healthy collection into the first bucket.
var gcPauseBuckets = []float64{
	0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
}

// obsGC records one completed collection: the pause distribution split by
// phase (mark/sweep/relocate labels plus a "total" series), nodes freed,
// and the op-cache relocation outcome.
func (w *Worker) obsGC(st bdd.GCStats) {
	if w.obs == nil || w.obs.reg == nil {
		return
	}
	lbl := fmt.Sprint(w.id)
	pause := w.obs.reg.Histogram(MetricBDDGCPause,
		"BDD GC stop-the-world pause by phase (total = whole collection).",
		gcPauseBuckets, "worker", "phase")
	pause.Observe(st.LastPause.Seconds(), lbl, "total")
	pause.Observe(st.LastMark.Seconds(), lbl, "mark")
	pause.Observe(st.LastSweep.Seconds(), lbl, "sweep")
	pause.Observe(st.LastRelocate.Seconds(), lbl, "relocate")
	w.obs.reg.Counter(MetricBDDGCFreed,
		"BDD nodes reclaimed by garbage collection.", "worker").
		Add(float64(st.LastFreed), lbl)
	w.obs.reg.Counter(MetricBDDCacheReloc,
		"Op-cache entries relocated (translated to new refs) across GCs.",
		"worker").
		Add(float64(st.LastCacheRelocated), lbl)
	w.obs.reg.Counter(MetricBDDCacheDropped,
		"Op-cache entries dropped at GC because an operand or result died.",
		"worker").
		Add(float64(st.LastCacheDropped), lbl)
}

// obsWireBytes counts data-plane packet payload bytes shipped across
// worker boundaries (forwarding fan-out and outcome harvest). mode is
// "wire" for shared-substrate DeliverBatch messages and "packet" for
// independently serialized per-packet payloads (legacy peers or
// -no-wire-dedup), so the dedup ratio is observable per run.
func (w *Worker) obsWireBytes(mode string, n int) {
	if w.obs == nil || w.obs.reg == nil || n == 0 {
		return
	}
	w.obs.reg.Counter(MetricWireBytes,
		"Cross-worker data-plane payload bytes by encoding mode.",
		"worker", "mode").
		Add(float64(n), fmt.Sprint(w.id), mode)
}

// obsWireDeduped counts node references resolved from already-transmitted
// wire-session state — the re-encodings a per-packet codec would have paid.
func (w *Worker) obsWireDeduped(n int) {
	if w.obs == nil || w.obs.reg == nil || n == 0 {
		return
	}
	w.obs.reg.Counter(MetricWireDeduped,
		"BDD nodes deduplicated by the shared-substrate wire codec.", "worker").
		Add(float64(n), fmt.Sprint(w.id))
}

// obsSpill counts bytes written to the spill directory between shards.
func (w *Worker) obsSpill(bytes int64) {
	if w.obs == nil || w.obs.reg == nil {
		return
	}
	w.obs.reg.Counter(MetricSpillBytes,
		"Bytes of shard results spilled to disk.", "worker").
		Add(float64(bytes), fmt.Sprint(w.id))
}
