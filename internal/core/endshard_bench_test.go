package core

import (
	"fmt"
	"testing"

	"s2/internal/route"
)

// benchRIB builds a synthetic converged LocRIB: prefixes from a /16 pool,
// routesPer ECMP routes each, with the heavyweight attributes a real BGP
// route carries into the harvest.
func benchRIB(prefixes, routesPer int) *route.RIB {
	rib := route.NewRIB()
	for i := 0; i < prefixes; i++ {
		p := route.MakePrefix(uint32(10<<24|i<<8), 24)
		rs := make([]*route.Route, routesPer)
		for j := 0; j < routesPer; j++ {
			rs[j] = &route.Route{
				Prefix:      p,
				Protocol:    route.BGP,
				NextHop:     uint32(j + 1),
				NextHopNode: fmt.Sprintf("peer-%d", j),
				ASPath:      []uint32{65000, 65001, uint32(65100 + j)},
				Communities: []route.Community{0xFDE80001, 0xFDE80002},
			}
		}
		rib.SetRoutes(p, rs)
	}
	return rib
}

// BenchmarkEndShardHarvest compares the two harvest strategies for one
// shard's routes (the per-shard hot loop of EndShard):
//
//   - naive: what EndShard used to do — a fresh []*route.Route per prefix
//     and a fresh stripped Route per entry (liteRoute), so every shard
//     round costs prefixes + prefixes×routes allocations per node;
//   - prealloc: the current code — one RouteCount-sized backing array of
//     stripped copies plus one pointer array per node, subsliced per
//     prefix, so every shard round costs two allocations per node.
//
// Run with -benchmem: allocs/op is the point of the comparison.
func BenchmarkEndShardHarvest(b *testing.B) {
	const prefixes, routesPer = 1000, 4
	rib := benchRIB(prefixes, routesPer)
	// The installed per-prefix slices go here in both variants, standing in
	// for fibRIBs.SetRoutes (whose cost is identical on both sides).
	out := make([][]*route.Route, prefixes)

	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k := 0
			rib.Walk(func(p route.Prefix, rs []*route.Route) {
				lites := make([]*route.Route, 0, len(rs))
				for _, r := range rs {
					lites = append(lites, liteRoute(r))
				}
				out[k], k = lites, k+1
			})
		}
	})

	b.Run("prealloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			total := rib.RouteCount()
			backing := make([]route.Route, total)
			ptrs := make([]*route.Route, total)
			off, k := 0, 0
			rib.Walk(func(p route.Prefix, rs []*route.Route) {
				lites := ptrs[off : off+len(rs) : off+len(rs)]
				for j, r := range rs {
					backing[off+j] = route.Route{Prefix: r.Prefix, Protocol: r.Protocol, NextHop: r.NextHop, NextHopNode: r.NextHopNode}
					lites[j] = &backing[off+j]
				}
				off += len(rs)
				out[k], k = lites, k+1
			})
		}
	})

	// Spill mode's variant: the scratch block survives across shards, so
	// the steady state allocates nothing at all for the stripped copies.
	b.Run("spill-scratch", func(b *testing.B) {
		b.ReportAllocs()
		var scratchBlock []route.Route
		for i := 0; i < b.N; i++ {
			scratchOff := 0
			scratch := func(n int) []route.Route {
				if scratchOff+n > len(scratchBlock) {
					scratchBlock = make([]route.Route, 2*(scratchOff+n))
					scratchOff = 0
				}
				s := scratchBlock[scratchOff : scratchOff+n : scratchOff+n]
				scratchOff += n
				return s
			}
			lites := make([]*route.Route, 0, rib.RouteCount())
			rib.Walk(func(p route.Prefix, rs []*route.Route) {
				backing := scratch(len(rs))
				for j, r := range rs {
					backing[j] = route.Route{Prefix: r.Prefix, Protocol: r.Protocol, NextHop: r.NextHop, NextHopNode: r.NextHopNode}
					lites = append(lites, &backing[j])
				}
			})
			if len(lites) != prefixes*routesPer {
				b.Fatalf("harvested %d routes", len(lites))
			}
		}
	})
}
