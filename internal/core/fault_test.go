package core

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"s2/internal/fault"
	"s2/internal/sidecar"
)

// injectOn returns a WrapWorker hook that interposes a fault.Injector on one
// worker id, leaving the others untouched, and reports the injector back.
func injectOn(id int, plans ...fault.Plan) (func(int, sidecar.WorkerAPI) sidecar.WorkerAPI, **fault.Injector) {
	var inj *fault.Injector
	hook := func(wid int, w sidecar.WorkerAPI) sidecar.WorkerAPI {
		if wid != id {
			return w
		}
		inj = fault.NewInjector(w, plans...)
		return inj
	}
	return hook, &inj
}

// TestCrashDuringBGPRecovers is the ISSUE's acceptance test: crash 1 of 3
// workers in the middle of the BGP phase; the run must complete on the 2
// survivors and produce reachability answers and RIBs identical to a
// fault-free run. Determinism across partitionings (proved by
// TestShardingPreservesRIBs et al.) is exactly what makes
// re-partition-and-re-execute a sound recovery strategy.
func TestCrashDuringBGPRecovers(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	hook, _ := injectOn(2, fault.Plan{Method: "ApplyBGP", Nth: 2, Mode: fault.Crash})
	c := newS2(t, snap, texts, Options{
		Workers: 3, KeepRIBs: true, Seed: 21,
		Recover: true, WrapWorker: hook,
	})
	defer c.Close()
	res := runFull(t, c)
	if len(res.Unreached) != 0 || len(res.Violations) != 0 {
		t.Fatalf("recovered run must verify clean: unreached=%v violations=%v",
			res.Unreached, res.Violations)
	}

	fc := c.FaultCounters()
	if fc.Get("worker.deaths") != 1 {
		t.Fatalf("worker.deaths = %d, want 1 (counters: %s)", fc.Get("worker.deaths"), fc)
	}
	if fc.Get("recoveries") < 1 {
		t.Fatalf("recoveries = %d, want >= 1", fc.Get("recoveries"))
	}

	// Answers are byte-identical to a fault-free run: same RIBs everywhere.
	gotRIBs, err := c.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}
	snap2, _ := fatTreeSnap(t, 4)
	clean := newS2(t, snap2, texts, Options{Workers: 3, KeepRIBs: true, Seed: 21})
	cleanRes := runFull(t, clean)
	if len(cleanRes.Unreached) != 0 || len(cleanRes.Violations) != 0 {
		t.Fatalf("fault-free baseline dirty: %v %v", cleanRes.Unreached, cleanRes.Violations)
	}
	wantRIBs, err := clean.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRIBs) != len(wantRIBs) {
		t.Fatalf("node counts differ: %d vs %d", len(gotRIBs), len(wantRIBs))
	}
	for node, want := range wantRIBs {
		if !want.Equal(gotRIBs[node]) {
			t.Fatalf("recovered RIB differs at %s: %v", node, want.Diff(gotRIBs[node]))
		}
	}
}

// TestCrashDuringQueryRecovers kills a worker during packet forwarding; the
// controller must rewind through every invalidated stage (re-partition,
// re-run CP and DP on survivors) and still answer the all-pairs check
// identically.
func TestCrashDuringQueryRecovers(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	hook, _ := injectOn(1, fault.Plan{Method: "DPRound", Nth: 1, Mode: fault.Crash})
	c := newS2(t, snap, texts, Options{
		Workers: 3, Seed: 22,
		Recover: true, WrapWorker: hook,
	})
	defer c.Close()
	res := runFull(t, c)
	if len(res.Unreached) != 0 || len(res.Violations) != 0 {
		t.Fatalf("recovered query differs: unreached=%v violations=%v",
			res.Unreached, res.Violations)
	}
	if c.FaultCounters().Get("worker.deaths") != 1 {
		t.Fatalf("counters: %s", c.FaultCounters())
	}
}

// TestCrashDuringQueryWithWireSessions extends the recovery matrix to the
// shared-substrate wire protocol: the crash fires on the SECOND DPRound,
// after round one has established per-peer wire sessions between the
// workers, so recovery must discard mid-flight delta state (sender epochs,
// receiver tables, parked wireInbox deliveries) and still produce results
// byte-identical to a fault-free run.
func TestCrashDuringQueryWithWireSessions(t *testing.T) {
	run := func(hook func(int, sidecar.WorkerAPI) sidecar.WorkerAPI, recover bool) (string, string) {
		snap, texts := fatTreeSnap(t, 4)
		c := newS2(t, snap, texts, Options{
			Workers: 3, Seed: 22, KeepRIBs: true,
			Recover: recover, WrapWorker: hook,
		})
		defer c.Close()
		res := runFull(t, c)
		if len(res.Unreached) != 0 || len(res.Violations) != 0 {
			t.Fatalf("run must verify clean: unreached=%v violations=%v", res.Unreached, res.Violations)
		}
		ribs, err := c.CollectRIBs()
		if err != nil {
			t.Fatal(err)
		}
		if recover && c.FaultCounters().Get("worker.deaths") != 1 {
			t.Fatalf("counters: %s", c.FaultCounters())
		}
		return ribsFingerprint(ribs), checkFingerprint(c, res)
	}

	cleanRIBs, cleanCheck := run(nil, false)
	hook, _ := injectOn(1, fault.Plan{Method: "DPRound", Nth: 2, Mode: fault.Crash})
	gotRIBs, gotCheck := run(hook, true)
	if gotRIBs != cleanRIBs {
		t.Error("RIBs differ between recovered and fault-free wire-dedup runs")
	}
	if gotCheck != cleanCheck {
		t.Errorf("verification outcomes differ:\nclean:\n%s\nrecovered:\n%s", cleanCheck, gotCheck)
	}
}

// TestCrashWithoutRecoveryFailsTyped: with Recover off a worker death must
// surface promptly as a typed transient error — never a hang, never a
// misclassified application error.
func TestCrashWithoutRecoveryFailsTyped(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	hook, _ := injectOn(2, fault.Plan{Method: "ApplyBGP", Nth: 2, Mode: fault.Crash})
	c := newS2(t, snap, texts, Options{Workers: 3, Seed: 23, WrapWorker: hook})
	defer c.Close()
	start := time.Now()
	err := c.RunControlPlane()
	if err == nil {
		t.Fatal("crashed worker must fail the run when recovery is off")
	}
	if !fault.IsTransient(err) {
		t.Fatalf("error must classify transient for callers to act on: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("failure took %v; must not hang", elapsed)
	}
}

// TestAllWorkersCrashNoCapacity: when every worker dies the controller must
// abort cleanly with a capacity error instead of retrying forever.
func TestAllWorkersCrashNoCapacity(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	var mu sync.Mutex
	injectors := map[int]*fault.Injector{}
	hook := func(id int, w sidecar.WorkerAPI) sidecar.WorkerAPI {
		inj := fault.NewInjector(w, fault.Plan{Method: "ApplyBGP", Nth: 1, Mode: fault.Crash})
		mu.Lock()
		injectors[id] = inj
		mu.Unlock()
		return inj
	}
	c := newS2(t, snap, texts, Options{
		Workers: 2, Seed: 24, Recover: true, WrapWorker: hook,
	})
	defer c.Close()
	err := c.RunControlPlane()
	if err == nil {
		t.Fatal("run with zero surviving workers must fail")
	}
	if !strings.Contains(err.Error(), "no capacity") {
		t.Fatalf("want clean no-capacity error, got: %v", err)
	}
}

// killSwitch wraps one remote worker's transport and abruptly shuts its
// server down right before the Nth ApplyBGP, modelling a worker process
// killed mid-run.
type killSwitch struct {
	sidecar.WorkerAPI
	mu      sync.Mutex
	applies int
	nth     int
	kill    func()
}

func (k *killSwitch) ApplyBGP() (sidecar.ApplyReply, error) {
	k.mu.Lock()
	k.applies++
	fire := k.applies == k.nth
	k.mu.Unlock()
	if fire {
		k.kill()
	}
	return k.WorkerAPI.ApplyBGP()
}

func startRemoteWorkers(t *testing.T, n int) ([]string, []*sidecar.Server) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*sidecar.Server, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = lis.Addr().String()
		servers[i] = sidecar.NewServer(NewWorker())
		go servers[i].Serve(lis)
		t.Cleanup(func() { servers[i].Shutdown(0) })
	}
	return addrs, servers
}

// TestRemoteWorkerKilledMidRun kills a real TCP worker's server in the
// middle of the BGP phase. Without recovery the run fails with a typed
// transient error; with recovery it completes and matches an in-process
// fault-free run.
func TestRemoteWorkerKilledMidRun(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)

	t.Run("NoRecovery", func(t *testing.T) {
		addrs, servers := startRemoteWorkers(t, 3)
		hook := func(id int, w sidecar.WorkerAPI) sidecar.WorkerAPI {
			if id != 2 {
				return w
			}
			return &killSwitch{WorkerAPI: w, nth: 2, kill: func() { servers[2].Shutdown(0) }}
		}
		c := newS2(t, snap, texts, Options{
			WorkerAddrs: addrs, Seed: 25,
			RPCTimeout: 5 * time.Second, WrapWorker: hook,
		})
		defer c.Close()
		err := c.RunControlPlane()
		if err == nil {
			t.Fatal("killed worker must fail the run")
		}
		if !fault.IsTransient(err) {
			t.Fatalf("want typed transient error, got: %v", err)
		}
	})

	t.Run("Recovery", func(t *testing.T) {
		snapR, _ := fatTreeSnap(t, 4)
		addrs, servers := startRemoteWorkers(t, 3)
		hook := func(id int, w sidecar.WorkerAPI) sidecar.WorkerAPI {
			if id != 2 {
				return w
			}
			return &killSwitch{WorkerAPI: w, nth: 2, kill: func() { servers[2].Shutdown(0) }}
		}
		c := newS2(t, snapR, texts, Options{
			WorkerAddrs: addrs, KeepRIBs: true, Seed: 25,
			RPCTimeout: 5 * time.Second, Recover: true, WrapWorker: hook,
		})
		defer c.Close()
		runCP(t, c)
		gotRIBs, err := c.CollectRIBs()
		if err != nil {
			t.Fatal(err)
		}
		if c.FaultCounters().Get("worker.deaths") != 1 {
			t.Fatalf("counters: %s", c.FaultCounters())
		}

		snapC, _ := fatTreeSnap(t, 4)
		clean := newS2(t, snapC, texts, Options{Workers: 3, KeepRIBs: true, Seed: 25})
		runCP(t, clean)
		wantRIBs, err := clean.CollectRIBs()
		if err != nil {
			t.Fatal(err)
		}
		for node, want := range wantRIBs {
			if !want.Equal(gotRIBs[node]) {
				t.Fatalf("recovered remote RIB differs at %s", node)
			}
		}
	})
}

// TestRPCDeadlinesBoundAllCalls is the ISSUE's companion acceptance test:
// against a worker that accepts connections but never answers, EVERY RPC in
// the WorkerAPI surface must return within the configured deadline.
func TestRPCDeadlinesBoundAllCalls(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() { // accept and hold: an unresponsive worker
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	const deadline = 100 * time.Millisecond
	caller := fault.NewCaller(fault.Policy{Timeout: deadline}, nil)
	rw, err := sidecar.DialWrapped(lis.Addr().String(), time.Second, caller.Wrap())
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()

	calls := map[string]func() error{
		"Ping":       rw.Ping,
		"Setup":      func() error { return rw.Setup(sidecar.SetupRequest{}) },
		"BeginShard": func() error { return rw.BeginShard(sidecar.BeginShardRequest{}) },
		"GatherBGP":  rw.GatherBGP,
		"ApplyBGP":   func() error { _, err := rw.ApplyBGP(); return err },
		"GatherOSPF": rw.GatherOSPF,
		"ApplyOSPF":  func() error { _, err := rw.ApplyOSPF(); return err },
		"EndShard":   func() error { _, err := rw.EndShard(); return err },
		"PullBGP":    func() error { _, _, _, err := rw.PullBGP("a", "b", 0, false); return err },
		"PullLSAs":   func() error { _, _, _, err := rw.PullLSAs("a", "b", 0, false); return err },
		"ComputeDP":  func() error { _, err := rw.ComputeDP(); return err },
		"BeginQuery": func() error { return rw.BeginQuery(sidecar.QueryRequest{}) },
		"Inject":     func() error { return rw.Inject(sidecar.InjectRequest{}) },
		"DPRound":    rw.DPRound,
		"HasWork":    func() error { _, err := rw.HasWork(); return err },
		"DeliverPackets": func() error {
			return rw.DeliverPackets([]sidecar.PacketDelivery{})
		},
		"FinishQuery": func() error { _, err := rw.FinishQuery(); return err },
		"CollectRIBs": func() error { _, err := rw.CollectRIBs(); return err },
		"Stats":       func() error { _, err := rw.Stats(); return err },
	}
	for name, call := range calls {
		start := time.Now()
		err := call()
		elapsed := time.Since(start)
		if err == nil {
			t.Errorf("%s against a silent worker must fail", name)
		}
		if !fault.IsTransient(err) {
			t.Errorf("%s: want transient deadline error, got %v", name, err)
		}
		if elapsed > 2*time.Second {
			t.Errorf("%s took %v; the %v deadline did not bound it", name, elapsed, deadline)
		}
	}
}

// TestControllerDeadlineOnUnresponsiveWorker drives the same property
// through the controller: with one silent worker in the pool, Setup must
// fail within the deadline budget rather than hang.
func TestControllerDeadlineOnUnresponsiveWorker(t *testing.T) {
	addrs, _ := startRemoteWorkers(t, 1)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	addrs = append(addrs, lis.Addr().String())

	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{
		WorkerAddrs: addrs, Seed: 26,
		RPCTimeout: 100 * time.Millisecond, RPCRetries: 1,
	})
	defer c.Close()
	start := time.Now()
	err = c.Setup()
	if err == nil {
		t.Fatal("Setup with a silent worker must fail")
	}
	if !fault.IsTransient(err) {
		t.Fatalf("want transient error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Setup took %v; deadlines did not bound it", elapsed)
	}
}

// hungWorker serves normally until its 2nd ApplyBGP, then blocks every
// subsequent call forever — a wedged process, not a dead one. Only the
// heartbeat detector can catch this when no RPC deadline is configured.
type hungWorker struct {
	sidecar.WorkerAPI
	mu      sync.Mutex
	applies int
	hung    bool
	block   chan struct{}
}

func (h *hungWorker) stalled() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hung
}

func (h *hungWorker) Ping() error {
	if h.stalled() {
		<-h.block
	}
	return h.WorkerAPI.Ping()
}

func (h *hungWorker) ApplyBGP() (sidecar.ApplyReply, error) {
	h.mu.Lock()
	h.applies++
	if h.applies == 2 {
		h.hung = true
	}
	hung := h.hung
	h.mu.Unlock()
	if hung {
		<-h.block
	}
	return h.WorkerAPI.ApplyBGP()
}

// TestHeartbeatRescuesHungWorker runs with NO RPC deadline: a worker that
// wedges mid-phase would hang the controller forever, except the failure
// detector declares it dead and closes its connection, unblocking the
// in-flight call so recovery can proceed.
func TestHeartbeatRescuesHungWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("heartbeat timers")
	}
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })

	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis0.Close()
	go sidecar.Serve(NewWorker(), lis0)

	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis1.Close()
	hung := &hungWorker{WorkerAPI: NewWorker(), block: block}
	go sidecar.Serve(hung, lis1)

	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{
		WorkerAddrs: []string{lis0.Addr().String(), lis1.Addr().String()},
		KeepRIBs:    true, Seed: 27,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatMisses:   1,
		Recover:           true,
	})
	defer c.Close()

	done := make(chan error, 1)
	go func() { done <- c.RunControlPlane() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("recovery after heartbeat death failed: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("controller hung on a wedged worker despite heartbeats")
	}
	fc := c.FaultCounters()
	if fc.Get("heartbeat.deaths") < 1 || fc.Get("worker.deaths") < 1 {
		t.Fatalf("heartbeat death not recorded: %s", fc)
	}

	// The survivors' answers are still correct.
	gotRIBs, err := c.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}
	snap2, _ := fatTreeSnap(t, 4)
	clean := newS2(t, snap2, texts, Options{Workers: 2, KeepRIBs: true, Seed: 27})
	runCP(t, clean)
	wantRIBs, err := clean.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}
	for node, want := range wantRIBs {
		if !want.Equal(gotRIBs[node]) {
			t.Fatalf("post-recovery RIB differs at %s", node)
		}
	}
}
