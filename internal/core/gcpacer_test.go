package core

import (
	"testing"
	"time"

	"s2/internal/bdd"
)

func TestGCPacerSeedEnvelope(t *testing.T) {
	p := newGCPacer(false, false)
	p.lastNodes = 100_000
	// Initial factors reproduce the seed heuristic exactly: post at 1.25×,
	// mid at 2× plus the fixed headrooms.
	if got, want := p.postThreshold(), 125_000+gcPacerPostHeadroom; got != want {
		t.Fatalf("initial postThreshold = %d, want %d", got, want)
	}
	if got, want := p.midThreshold(), 200_000+gcPacerMidHeadroom; got != want {
		t.Fatalf("initial midThreshold = %d, want %d", got, want)
	}
}

func TestGCPacerAdaptsToUnproductiveCollections(t *testing.T) {
	p := newGCPacer(false, false)
	start := p.factor
	// A collection that reclaimed almost nothing backs the factor off.
	p.observe(bdd.GCStats{LastLive: 100_000, LastFreed: 100, LastPause: time.Millisecond})
	if p.factor <= start {
		t.Fatalf("factor did not grow after an unproductive collection: %v", p.factor)
	}
	for i := 0; i < 20; i++ {
		p.observe(bdd.GCStats{LastLive: 100_000, LastFreed: 100, LastPause: time.Millisecond})
	}
	if p.factor > gcPacerMaxFactor {
		t.Fatalf("factor escaped the clamp: %v", p.factor)
	}
}

func TestGCPacerBudgetCapsAtSeedTrigger(t *testing.T) {
	p := newGCPacer(false, true)
	// Drive the factor to its ceiling with unproductive collections.
	for i := 0; i < 20; i++ {
		p.observe(bdd.GCStats{LastLive: 100_000, LastFreed: 100, LastPause: time.Millisecond})
	}
	if p.factor <= gcPacerInitFactor {
		t.Fatalf("adaptation should still track internally: %v", p.factor)
	}
	// Under a budget the thresholds never loosen beyond the seed trigger.
	if got, max := p.midThreshold(), 2*p.lastNodes+gcPacerMidHeadroom; got > max {
		t.Fatalf("budgeted midThreshold %d exceeds seed envelope %d", got, max)
	}
	if got, max := p.postThreshold(), int(1.25*float64(p.lastNodes))+gcPacerPostHeadroom; got > max {
		t.Fatalf("budgeted postThreshold %d exceeds seed envelope %d", got, max)
	}
}

func TestGCPacerStressMode(t *testing.T) {
	p := newGCPacer(true, false)
	p.lastNodes = 1_000_000
	if got := p.postThreshold(); got != 1_000_000+gcPacerStressHeadroom {
		t.Fatalf("stress postThreshold = %d", got)
	}
	if got := p.midThreshold(); got != 1_000_000+4*gcPacerStressHeadroom {
		t.Fatalf("stress midThreshold = %d", got)
	}
	// Stress mode never adapts.
	p.observe(bdd.GCStats{LastLive: 1_000_000, LastFreed: 1, LastPause: time.Second})
	if p.factor != gcPacerInitFactor {
		t.Fatalf("stress mode adapted: %v", p.factor)
	}
}
