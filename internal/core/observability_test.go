package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"s2/internal/obs"
	"s2/internal/sidecar"
)

// TestTraceThreeWorkerRun is the tentpole acceptance check: a three-worker
// run with tracing enabled must produce a valid Chrome trace with
// controller stage spans, per-worker shard spans, and RPC spans whose
// parent/child nesting is time-consistent.
func TestTraceThreeWorkerRun(t *testing.T) {
	tracer := obs.NewTracer()
	reg := obs.NewRegistry()
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{
		Workers: 3, Shards: 2, Seed: 1,
		Tracer: tracer, Metrics: reg,
	})
	res := runFull(t, c)
	if len(res.Unreached) != 0 || len(res.Violations) != 0 {
		t.Fatalf("traced run must still verify: unreached=%v violations=%v", res.Unreached, res.Violations)
	}

	events := tracer.Events()
	if len(events) == 0 {
		t.Fatal("traced run produced no events")
	}
	byID := map[string]obs.TraceEvent{}
	names := map[string]int{}
	shardPIDs := map[int]bool{}
	rpcSpans := 0
	for _, e := range events {
		byID[e.Args["span"]] = e
		names[e.Name]++
		if e.Name == "shard" {
			shardPIDs[e.PID] = true
		}
		if strings.HasPrefix(e.Name, "rpc:") {
			rpcSpans++
		}
	}
	for _, stage := range []string{"stage:partition+setup", "stage:cp-bgp", "stage:dp-compute", "stage:dp-forward"} {
		if names[stage] == 0 {
			t.Errorf("missing controller stage span %q; have %v", stage, names)
		}
	}
	// Two shards on three workers: every worker opens one shard span per
	// shard round it participates in, on its own pid lane.
	if len(shardPIDs) < 2 {
		t.Errorf("shard spans on %d pid lanes, want >= 2 workers: %v", len(shardPIDs), shardPIDs)
	}
	if rpcSpans == 0 {
		t.Error("no rpc spans recorded")
	}
	// Every child is time-contained in its parent and shares its lane.
	for _, e := range events {
		p, ok := e.Args["parent"]
		if !ok {
			continue
		}
		pe, ok := byID[p]
		if !ok {
			t.Fatalf("span %s (%q) has unknown parent %s", e.Args["span"], e.Name, p)
		}
		if e.TS < pe.TS || e.TS+e.Dur > pe.TS+pe.Dur {
			t.Errorf("span %q [%d,%d] escapes parent %q [%d,%d]",
				e.Name, e.TS, e.TS+e.Dur, pe.Name, pe.TS, pe.TS+pe.Dur)
		}
		if e.TID != pe.TID {
			t.Errorf("span %q tid %d != parent %q tid %d", e.Name, e.TID, pe.Name, pe.TID)
		}
	}

	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace output is not valid Chrome trace JSON: %v", err)
	}
	if len(f.TraceEvents) != len(events) {
		t.Fatalf("JSON round-trip lost events: %d vs %d", len(f.TraceEvents), len(events))
	}

	// The shared registry saw the run too: convergence iterations, route
	// exchanges, client RPC latencies, and per-worker modelled memory.
	var text bytes.Buffer
	if err := reg.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		MetricCPIterations + `{protocol="bgp"}`,
		MetricRoutesExchanged,
		MetricModelMemory + `{worker="0",kind="current"}`,
		obs.MetricRPCLatency + `_bucket{role="client",method="ApplyBGP"`,
		obs.MetricRPCCalls + `{role="client",method="ApplyBGP",code="ok"}`,
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("registry exposition missing %q", want)
		}
	}
	if err := checkPromText(text.String()); err != nil {
		t.Fatalf("unparseable exposition: %v\n%s", err, text.String())
	}
}

// TestMetricsEndpointLiveWorker mirrors cmd/s2worker: a TCP worker with a
// process-local registry, server-side RPC hook, and a live /metrics
// endpoint that must expose RPC latency histograms, route-exchange
// counters, and modelled-memory gauges in parseable Prometheus text.
func TestMetricsEndpointLiveWorker(t *testing.T) {
	reg := obs.NewRegistry()
	w := NewWorker()
	w.SetObservability(nil, reg)
	srv := sidecar.NewServer(w)
	srv.SetRPCHook(sidecar.RPCHook(obs.RPCInstrument(reg, "server", nil)))
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go srv.Serve(lis)

	isrv, err := obs.ServeIntrospection("127.0.0.1:0", obs.ServerOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer isrv.Close()

	// Second worker keeps the run distributed (cross-worker route pulls).
	lis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis2.Close()
	go sidecar.Serve(NewWorker(), lis2)

	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{
		WorkerAddrs: []string{lis.Addr().String(), lis2.Addr().String()},
		Shards:      2, Seed: 7,
	})
	res := runFull(t, c)
	if len(res.Unreached) != 0 || len(res.Violations) != 0 {
		t.Fatalf("run failed: unreached=%v violations=%v", res.Unreached, res.Violations)
	}

	resp, err := http.Get("http://" + isrv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE " + obs.MetricRPCLatency + " histogram",
		obs.MetricRPCLatency + `_bucket{role="server",method="ApplyBGP"`,
		obs.MetricRPCLatency + `_count{role="server",method="Setup"}`,
		MetricRoutesExchanged + `{worker="0",protocol="bgp"}`,
		MetricModelMemory + `{worker="0",kind="peak"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if err := checkPromText(text); err != nil {
		t.Fatalf("unparseable /metrics body: %v\n%s", err, text)
	}
}

// TestObsDisabledAddsNothing is the zero-cost claim: with no tracer and no
// registry the controller wires no hooks, the workers carry no obs handle,
// and the run neither spawns nor leaks goroutines for observability.
func TestObsDisabledAddsNothing(t *testing.T) {
	before := runtime.NumGoroutine()
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{Workers: 3, Shards: 2, Seed: 1})
	if c.tracer != nil || c.reg != nil {
		t.Fatal("obs handles must stay nil when unset")
	}
	if c.clientHook != nil {
		t.Fatal("client RPC hook must stay nil when obs is off")
	}
	for _, w := range c.locals {
		if w.obs != nil {
			t.Fatal("workers must carry no obs handle when unset")
		}
	}
	res := runFull(t, c)
	if len(res.Unreached) != 0 || len(res.Violations) != 0 {
		t.Fatalf("run failed: unreached=%v violations=%v", res.Unreached, res.Violations)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Goroutines settle after Close; poll briefly before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines grew from %d to %d with observability off", before, after)
	}
	// Progress stays readable (zero value) even with obs off.
	if p := c.Progress(); p.Stage == "" && p.RoutesSettled == 0 {
		// Stage is set by stage() even without a tracer; a fully zero view
		// would mean the progress plumbing is gated on obs by mistake.
		t.Errorf("progress view empty after a run: %+v", p)
	}
}

// checkPromText is a minimal Prometheus text-format validator: every series
// line must be `name{labels} value` with a parseable float, and every
// series must belong to a TYPE-declared family.
func checkPromText(text string) error {
	typed := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			return fmt.Errorf("line %d: empty", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("line %d: malformed TYPE", ln+1)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(name, suffix); fam != name && typed[fam] {
				base = fam
			}
		}
		if !typed[base] {
			return fmt.Errorf("line %d: series %q lacks a TYPE declaration", ln+1, name)
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf("line %d: no value", ln+1)
		}
		var f float64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &f); err != nil {
			return fmt.Errorf("line %d: bad value %q", ln+1, fields[len(fields)-1])
		}
	}
	return nil
}
