// Fleet health plane: the controller samples every registry metric plus
// per-worker vitals (shard/round progress, BDD nodes, GC pause p99, RSS,
// goroutines) into a bounded time-series ring on the heartbeat cadence,
// scores per-round progress skew to flag stragglers — the sensor the
// ROADMAP's work-stealing item will act on — and harvests pprof profiles
// from workers into a TraceStore-style bounded ring, periodically and on
// demand. Everything here is gated on the observability options
// (HistorySamples, ProfileCapacity, Metrics): with all of them off no
// goroutine starts, no RPC is issued, and no allocation happens (the
// PR 7 zero-overhead contract).

package core

import (
	"fmt"
	"sort"
	"time"

	"s2/internal/obs"
	"s2/internal/sidecar"
)

// profileHarvestInterval is the default cadence of the periodic heap
// harvest when the profile store is enabled.
const profileHarvestInterval = time.Minute

// stragglerAlpha is the EWMA weight of the newest round's skew sample in
// a worker's straggler score.
const stragglerAlpha = 0.3

// stragglerLogThreshold gates the structured-event/flight path: rounds
// where the slowest worker is under 2x the median, or the absolute skew
// is under this floor, are normal jitter and not worth an event.
const stragglerLogThreshold = 10 * time.Millisecond

// fleetVital is the latest vitals snapshot for one directory slot.
type fleetVital struct {
	v  sidecar.WorkerVitals
	at time.Time
}

// FleetWorker is one worker's row in the fleet health snapshot.
type FleetWorker struct {
	Worker           int     `json:"worker"`
	Shard            int     `json:"shard"`
	Round            int     `json:"round"`
	QueueLen         int     `json:"queue"`
	BDDNodes         int64   `json:"bdd_nodes"`
	GCPauseP99Micros int64   `json:"gc_pause_p99_us"`
	RSSBytes         int64   `json:"rss_bytes"`
	HeapBytes        int64   `json:"heap_bytes"`
	Goroutines       int     `json:"goroutines"`
	StragglerScore   float64 `json:"straggler_score"`
	// AgeMillis is how stale this row is (time since the vitals pull).
	AgeMillis int64 `json:"age_ms"`
}

// FleetHealth is the controller's live fleet snapshot: the dashboard's
// fleet table and the /healthz detail of serving mode.
type FleetHealth struct {
	Epoch            uint64             `json:"epoch"`
	EpochAgeSeconds  float64            `json:"epoch_age_seconds"`
	Workers          []FleetWorker      `json:"workers"`
	RoundSkewSeconds map[string]float64 `json:"round_skew_seconds,omitempty"`
	HistoryRounds    uint64             `json:"history_rounds"`
}

// History exposes the fleet health time-series ring (nil when
// HistorySamples is 0).
func (c *Controller) History() *obs.History { return c.history }

// Profiles exposes the harvested-profile store (nil when ProfileCapacity
// is 0).
func (c *Controller) Profiles() *obs.ProfileStore { return c.profiles }

// FleetHealth assembles the live fleet snapshot from the latest sampled
// vitals and straggler scores. Cheap and safe from any goroutine.
func (c *Controller) FleetHealth() FleetHealth {
	h := FleetHealth{Epoch: c.epoch.Load(), HistoryRounds: c.history.Rounds()}
	if at := c.epochAt.Load(); at != 0 {
		h.EpochAgeSeconds = time.Since(time.Unix(0, at)).Seconds()
	}
	now := time.Now()
	c.fleetMu.Lock()
	ids := make([]int, 0, len(c.fleetVitals))
	for id := range c.fleetVitals {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fv := c.fleetVitals[id]
		h.Workers = append(h.Workers, FleetWorker{
			Worker:           id,
			Shard:            fv.v.Shard,
			Round:            fv.v.Round,
			QueueLen:         fv.v.QueueLen,
			BDDNodes:         fv.v.BDDNodes,
			GCPauseP99Micros: fv.v.GCPauseP99Micros,
			RSSBytes:         fv.v.RSSBytes,
			HeapBytes:        fv.v.HeapBytes,
			Goroutines:       fv.v.Goroutines,
			StragglerScore:   c.stragglers[id],
			AgeMillis:        now.Sub(fv.at).Milliseconds(),
		})
	}
	if len(c.lastSkew) > 0 {
		h.RoundSkewSeconds = make(map[string]float64, len(c.lastSkew))
		for phase, skew := range c.lastSkew {
			h.RoundSkewSeconds[phase] = skew
		}
	}
	c.fleetMu.Unlock()
	return h
}

// StragglerScores returns the per-worker straggler EWMA (directory index →
// score; 0 = keeping pace with the round median).
func (c *Controller) StragglerScores() map[int]float64 {
	c.fleetMu.Lock()
	defer c.fleetMu.Unlock()
	out := make(map[int]float64, len(c.stragglers))
	for id, s := range c.stragglers {
		out[id] = s
	}
	return out
}

func (c *Controller) lacksPullStats(client *sidecar.RemoteWorker) bool {
	c.skewMu.Lock()
	defer c.skewMu.Unlock()
	return c.noPullStats[client]
}

func (c *Controller) markNoPullStats(client *sidecar.RemoteWorker) {
	c.skewMu.Lock()
	c.noPullStats[client] = true
	c.skewMu.Unlock()
}

// startStatsSampler launches the background vitals loop when the history
// ring is enabled. It rides the heartbeat cadence unless HistoryInterval
// overrides it, and additionally drives the periodic heap-profile harvest
// when the profile store is on.
func (c *Controller) startStatsSampler() {
	if c.history == nil || c.statsStop != nil || c.closed.Load() {
		return
	}
	interval := c.opts.HistoryInterval
	if interval <= 0 {
		interval = c.opts.HeartbeatInterval
	}
	if interval <= 0 {
		interval = harvestInterval
	}
	profEvery := 0
	if c.profiles != nil && c.opts.ProfileInterval >= 0 {
		pi := c.opts.ProfileInterval
		if pi == 0 {
			pi = profileHarvestInterval
		}
		profEvery = int(pi / interval)
		if profEvery < 1 {
			profEvery = 1
		}
	}
	c.statsStop = make(chan struct{})
	stop := c.statsStop
	c.statsWG.Add(1)
	go func() {
		defer c.statsWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		c.sampleFleet()
		ticks := 0
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.sampleFleet()
				ticks++
				if profEvery > 0 && ticks%profEvery == 0 {
					c.harvestHeapProfiles()
				}
			}
		}
	}()
}

func (c *Controller) stopStatsSampler() {
	if c.statsStop == nil {
		return
	}
	close(c.statsStop)
	c.statsWG.Wait()
	c.statsStop = nil
}

// sampleFleet pulls vitals from every worker, refreshes the per-worker
// gauges, and records one history round spanning the whole registry (or
// just the vitals when no registry is wired). Errors are swallowed —
// sampling is telemetry, never a run failure.
func (c *Controller) sampleFleet() {
	c.wmu.RLock()
	workers := append([]sidecar.WorkerAPI(nil), c.workers...)
	clients := append([]*sidecar.RemoteWorker(nil), c.clients...)
	c.wmu.RUnlock()
	now := time.Now()
	fresh := make(map[int]fleetVital, len(workers))
	for i, w := range workers {
		if w == nil {
			continue
		}
		var client *sidecar.RemoteWorker
		if i < len(clients) {
			client = clients[i]
		}
		if client != nil && c.lacksPullStats(client) {
			continue
		}
		sent := time.Now()
		reply, err := w.PullStats(sidecar.PullStatsRequest{})
		if err != nil {
			if client != nil && isNoBatchErr(err) {
				// Older worker binary: remember and stop asking.
				c.markNoPullStats(client)
			}
			continue
		}
		if client != nil {
			c.skewFor(client).Observe(sent, time.Now(), reply.Vitals.NowUnixMicro)
		}
		fresh[i] = fleetVital{v: reply.Vitals, at: now}
		c.setWorkerGauges(i, reply.Vitals)
	}
	c.fleetMu.Lock()
	if c.fleetVitals == nil {
		c.fleetVitals = make(map[int]fleetVital, len(fresh))
	}
	for id, fv := range fresh {
		c.fleetVitals[id] = fv
	}
	c.fleetMu.Unlock()
	c.history.Record(now, c.historySample(fresh))
}

// setWorkerGauges mirrors one worker's vitals into the registry so they
// ride /metrics and the registry-wide history snapshot alike.
func (c *Controller) setWorkerGauges(id int, v sidecar.WorkerVitals) {
	if c.reg == nil {
		return
	}
	lbl := fmt.Sprint(id)
	c.reg.Gauge(MetricWorkerShard, "Current shard index per worker (fleet sampler).", "worker").Set(float64(v.Shard), lbl)
	c.reg.Gauge(MetricWorkerRound, "Current wavefront round per worker (fleet sampler).", "worker").Set(float64(v.Round), lbl)
	c.reg.Gauge(MetricWorkerQueueLen, "Parked symbolic packets per worker (fleet sampler).", "worker").Set(float64(v.QueueLen), lbl)
	c.reg.Gauge(MetricBDDNodes, "Live BDD nodes per worker.", "worker").Set(float64(v.BDDNodes), lbl)
	c.reg.Gauge(MetricWorkerGCPauseP99, "p99 BDD GC stop-the-world pause per worker (fleet sampler).", "worker").
		Set(float64(v.GCPauseP99Micros)/1e6, lbl)
	c.reg.Gauge(MetricWorkerRSS, "Resident set size per worker process (fleet sampler).", "worker").Set(float64(v.RSSBytes), lbl)
	c.reg.Gauge(MetricWorkerHeap, "Go heap in use per worker process (fleet sampler).", "worker").Set(float64(v.HeapBytes), lbl)
	c.reg.Gauge(MetricWorkerGoroutines, "Goroutines per worker process (fleet sampler).", "worker").Set(float64(v.Goroutines), lbl)
}

// historySample builds one history round. With a registry wired the whole
// Snapshot (which already includes the per-worker gauges) is recorded;
// otherwise a minimal vitals-only map keeps the ring useful.
func (c *Controller) historySample(fresh map[int]fleetVital) map[string]float64 {
	if c.reg != nil {
		return c.reg.Snapshot()
	}
	out := make(map[string]float64, len(fresh)*8)
	for id, fv := range fresh {
		suffix := fmt.Sprintf(`{worker="%d"}`, id)
		out[MetricWorkerShard+suffix] = float64(fv.v.Shard)
		out[MetricWorkerRound+suffix] = float64(fv.v.Round)
		out[MetricWorkerQueueLen+suffix] = float64(fv.v.QueueLen)
		out[MetricBDDNodes+suffix] = float64(fv.v.BDDNodes)
		out[MetricWorkerGCPauseP99+suffix] = float64(fv.v.GCPauseP99Micros) / 1e6
		out[MetricWorkerRSS+suffix] = float64(fv.v.RSSBytes)
		out[MetricWorkerHeap+suffix] = float64(fv.v.HeapBytes)
		out[MetricWorkerGoroutines+suffix] = float64(fv.v.Goroutines)
	}
	c.fleetMu.Lock()
	for id, s := range c.stragglers {
		out[fmt.Sprintf(`%s{worker="%d"}`, MetricStragglerScore, id)] = s
	}
	c.fleetMu.Unlock()
	return out
}

// observeRoundSkew scores one orchestration round's progress skew: each
// worker's duration relative to the round median feeds a per-worker EWMA
// (the straggler score), and the max-minus-median spread becomes the
// per-phase round skew. Called from eachPhaseIDs on every phase-attributed
// round; returns immediately when the fleet plane is off so the hot loop
// pays one branch.
func (c *Controller) observeRoundSkew(phase string, ids []int, durs []time.Duration) {
	if (c.reg == nil && c.history == nil) || len(durs) < 2 {
		return
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	med := sorted[len(sorted)/2]
	max := sorted[len(sorted)-1]
	skew := max - med

	var worstID int
	var worstScore float64
	c.fleetMu.Lock()
	if c.stragglers == nil {
		c.stragglers = map[int]float64{}
	}
	for i, d := range durs {
		var inst float64
		if med > 0 {
			inst = float64(d)/float64(med) - 1
			if inst < 0 {
				inst = 0
			}
		}
		id := ids[i]
		score := c.stragglers[id]*(1-stragglerAlpha) + inst*stragglerAlpha
		c.stragglers[id] = score
		if score > worstScore {
			worstScore, worstID = score, id
		}
	}
	if c.lastSkew == nil {
		c.lastSkew = map[string]float64{}
	}
	c.lastSkew[phase] = skew.Seconds()
	scores := make(map[int]float64, len(ids))
	for _, id := range ids {
		scores[id] = c.stragglers[id]
	}
	c.fleetMu.Unlock()

	if c.reg != nil {
		c.reg.Gauge(MetricRoundSkew,
			"Per-phase progress skew of the last orchestration round (slowest minus median worker).",
			"phase").Set(skew.Seconds(), phase)
		g := c.reg.Gauge(MetricStragglerScore,
			"EWMA of each worker's round-duration excess over the round median (0 = keeping pace).",
			"worker")
		for id, score := range scores {
			g.Set(score, fmt.Sprint(id))
		}
	}
	if med > 0 && max > 2*med && skew > stragglerLogThreshold {
		c.flight.Record("straggler", "%s round skew %s: worker %d at %.2fx median (score %.2f)",
			phase, skew.Round(time.Microsecond), worstID, float64(max)/float64(med), worstScore)
		if c.log != nil {
			c.log.Warn("straggler detected",
				obs.FStr("phase", phase),
				obs.FInt("worker", worstID),
				obs.FDur("skew", skew),
				obs.FStr("score", fmt.Sprintf("%.3f", worstScore)))
		}
	}
}

// harvestHeapProfiles is the periodic arm of continuous profiling: one
// cheap heap capture per worker into the bounded store.
func (c *Controller) harvestHeapProfiles() {
	c.wmu.RLock()
	n := len(c.workers)
	c.wmu.RUnlock()
	for i := 0; i < n; i++ {
		_, _ = c.PullWorkerProfile(i, "heap", 0)
	}
}

// PullWorkerProfile captures one pprof profile from the given worker over
// the PullProfile RPC and stores it in the bounded profile ring. The call
// uses the raw transport, bypassing the fault policy's per-RPC deadline —
// a CPU capture legitimately blocks for its whole sampling window.
func (c *Controller) PullWorkerProfile(worker int, kind string, seconds int) (*obs.Profile, error) {
	if c.profiles == nil {
		return nil, fmt.Errorf("core: profile store disabled (ProfileCapacity is 0)")
	}
	if c.closed.Load() {
		return nil, fmt.Errorf("core: controller is closed")
	}
	c.wmu.RLock()
	var local *Worker
	var client *sidecar.RemoteWorker
	ok := worker >= 0 && worker < len(c.workers)
	if ok {
		if worker < len(c.locals) {
			local = c.locals[worker]
		}
		if worker < len(c.clients) {
			client = c.clients[worker]
		}
	}
	c.wmu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: no worker %d", worker)
	}
	req := sidecar.PullProfileRequest{Kind: kind, Seconds: seconds}
	var reply sidecar.PullProfileReply
	var err error
	switch {
	case local != nil:
		reply, err = local.PullProfile(req)
	case client != nil:
		reply, err = client.PullProfile(req)
	default:
		return nil, fmt.Errorf("core: worker %d has no transport", worker)
	}
	if err != nil {
		return nil, err
	}
	p := &obs.Profile{Worker: worker, Kind: reply.Kind, Taken: time.Now(), Data: reply.Profile}
	c.profiles.Add(p)
	c.flight.Record("profile", "harvested %s profile from worker %d: %s (%d bytes)",
		reply.Kind, worker, p.ID, len(p.Data))
	return p, nil
}
