package core

import (
	"time"

	"s2/internal/bdd"
)

// gcPacer decides when a worker collects its BDD engine. The seed heuristic
// was a pair of fixed growth factors (collect mid-round at 2× the last live
// count, post-round at 1.25×); the pacer keeps those as its starting point
// but adapts the factor from measured collections — the engine's GCStats —
// so heavy rounds pick thresholds from observed pause cost and reclaim
// yield rather than a constant:
//
//   - Collections that reclaim almost nothing are pure pause; the factor
//     backs off hard so the table is allowed to grow further before the
//     next attempt.
//   - When GC overhead (pause time as a fraction of elapsed time) runs
//     above target, the factor grows; when overhead is negligible and
//     collections are productive, it shrinks back toward the floor so
//     memory stays bounded.
//
// GC *placement* never affects results — PR 3 proved byte-identical output
// with collections at arbitrary safe points — so time-based pacing is safe
// for determinism; only the safe points themselves are fixed.
const (
	gcPacerInitFactor = 1.25 // seed post-round growth factor (matches old /4 heuristic)
	gcPacerMinFactor  = 1.10
	gcPacerMaxFactor  = 6.0
	// Mid-round collections interrupt the forward hot path, so their
	// threshold runs this much above the post-round factor (the seed
	// heuristic's 2× vs 1.25× spread).
	gcPacerMidBoost = 0.75
	// Fixed headrooms keep tiny tables from thrashing (seed constants).
	gcPacerPostHeadroom = 2048
	gcPacerMidHeadroom  = 16384
	// Target GC overhead: pause time as a fraction of wall time since the
	// previous collection.
	gcPacerTargetOverhead = 0.05
	// Reclaim ratio below which a collection is judged unproductive.
	gcPacerMinReclaim = 0.10
	// Stress mode (test/CI knob) collects at every safe point the table
	// grew at all, maximizing collection count to surface relocation and
	// pacing bugs.
	gcPacerStressHeadroom = 512
)

type gcPacer struct {
	lastNodes int     // live nodes after the previous collection
	factor    float64 // adaptive growth factor
	lastEnd   time.Time
	stress    bool
	budgeted  bool // finite memory budget: never loosen beyond the seed trigger
}

func newGCPacer(stress, budgeted bool) gcPacer {
	return gcPacer{factor: gcPacerInitFactor, lastEnd: time.Now(), stress: stress, budgeted: budgeted}
}

// pacedFactor is the factor thresholds actually use. Under a modelled
// memory budget the pacer may only tighten the seed trigger, never loosen
// it: peak-bounded runs are exactly the ones where trading memory headroom
// for fewer pauses is wrong (the per-worker peak staying far below a
// centralized run is a paper-level property — Figure 4).
func (p *gcPacer) pacedFactor() float64 {
	if p.budgeted && p.factor > gcPacerInitFactor {
		return gcPacerInitFactor
	}
	return p.factor
}

// postThreshold is the node count past which the worker collects at a
// between-round safe point.
func (p *gcPacer) postThreshold() int {
	if p.stress {
		return p.lastNodes + gcPacerStressHeadroom
	}
	return int(float64(p.lastNodes)*p.pacedFactor()) + gcPacerPostHeadroom
}

// midThreshold is the (higher) node count past which the worker collects
// mid-round, with pending wavefront refs as extra roots.
func (p *gcPacer) midThreshold() int {
	if p.stress {
		return p.lastNodes + 4*gcPacerStressHeadroom
	}
	return int(float64(p.lastNodes)*(p.pacedFactor()+gcPacerMidBoost)) + gcPacerMidHeadroom
}

// observe digests one completed collection and adapts the growth factor.
func (p *gcPacer) observe(st bdd.GCStats) {
	now := time.Now()
	p.lastNodes = st.LastLive
	if p.stress {
		p.lastEnd = now
		return
	}
	pause := st.LastPause.Seconds()
	elapsed := now.Sub(p.lastEnd).Seconds()
	if elapsed < pause {
		elapsed = pause
	}
	overhead := 1.0
	if elapsed > 0 {
		overhead = pause / elapsed
	}
	before := st.LastLive + st.LastFreed
	reclaim := 0.0
	if before > 0 {
		reclaim = float64(st.LastFreed) / float64(before)
	}
	switch {
	case reclaim < gcPacerMinReclaim:
		p.factor *= 1.5
	case overhead > gcPacerTargetOverhead:
		p.factor *= 1.25
	case overhead < gcPacerTargetOverhead/4 && reclaim > 0.5:
		p.factor *= 0.9
	}
	if p.factor < gcPacerMinFactor {
		p.factor = gcPacerMinFactor
	}
	if p.factor > gcPacerMaxFactor {
		p.factor = gcPacerMaxFactor
	}
	p.lastEnd = now
}
