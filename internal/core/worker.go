// Package core is S2 itself: the distributed configuration verifier. A
// Controller partitions the parsed network into segments, hands each to a
// Worker, and orchestrates distributed control plane simulation (per prefix
// shard) followed by distributed data plane verification (§3).
//
// Workers implement sidecar.WorkerAPI, so the same controller drives
// in-process workers (goroutines with isolated state — the default) and
// remote workers (separate OS processes serving the sidecar RPC protocol,
// started with cmd/s2worker).
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"s2/internal/bdd"
	"s2/internal/bgp"
	"s2/internal/config"
	"s2/internal/dataplane"
	"s2/internal/fault"
	"s2/internal/metrics"
	"s2/internal/obs"
	"s2/internal/ospf"
	"s2/internal/route"
	"s2/internal/sidecar"
	"s2/internal/sim"
	"s2/internal/topology"
)

// Worker hosts one segment of the network: real nodes for its own switches
// and shadow relays for everyone else's. All heavy state — RIBs, the BDD
// engine, compiled data planes — is private to the worker.
type Worker struct {
	id         int
	assignment map[string]int
	peers      []sidecar.WorkerAPI
	tracker    *metrics.Tracker
	layout     dataplane.Layout
	maxBDD     int
	spillDir   string
	keepRIBs   bool

	// dialedPeers are the RPC clients this worker opened itself (remote
	// mode); a re-Setup closes them before redialing the new directory.
	dialedPeers []*sidecar.RemoteWorker
	// defPolicy is the fault policy for peer-to-peer calls when the
	// SetupRequest doesn't carry one (s2worker flags).
	defPolicy fault.Policy

	// phaseMu serializes the controller-phase methods (Setup, shard and
	// query rounds). The controller normally issues them one at a time, but
	// a retried idempotent RPC can race its own timed-out first attempt, and
	// recovery can re-Setup while a stale phase call is still draining.
	// Peer-facing methods (Pull*, DeliverPackets) and probes (Ping, HasWork,
	// Stats) do NOT take it: a phase holding phaseMu calls into peers, so
	// gating those would deadlock two workers against each other.
	phaseMu sync.Mutex

	// procs bounds intra-phase parallelism: the per-node loops of the
	// gather/apply/compute/forward phases run on up to procs goroutines.
	// procs<=1 is strictly sequential and reproduces the single-threaded
	// behavior exactly. defProcs is the worker-process default (s2worker
	// -procs) used when SetupRequest.Parallelism is unset.
	procs    int
	defProcs int
	// batchPull coalesces all shadow-node pulls bound for the same remote
	// worker in one gather phase into a single batch RPC. noBatch remembers
	// peers that don't serve the batch methods (older binaries); pulls to
	// them fall back to one RPC each.
	batchPull bool
	noBatchMu sync.Mutex
	noBatch   map[int]bool
	// wireDedup enables the shared-substrate DeliverBatch path for
	// boundary-crossing packets (see wire.go); noWire remembers peers that
	// don't serve the RPC (older binaries), guarded by noBatchMu alongside
	// noBatch. sendSessions is the sender half of the per-peer delta
	// protocol, touched only by the phase goroutine; recvTables is the
	// receiver half (map and accept cursors guarded by qmu, materialized
	// refs touched only by the phase goroutine); wireInbox parks accepted
	// batch deliveries until the next drain (guarded by qmu).
	wireDedup bool
	noWire    map[int]bool
	// noWirePull remembers peers that don't serve the varint-encoded batch
	// pull RPCs (PullBGPBatchWire/PullLSABatchWire); pulls to them fall
	// back to the gob batch, then to per-pull calls. Guarded by noBatchMu.
	noWirePull   map[int]bool
	sendSessions map[int]*bdd.WireSession
	recvTables   map[int]*bdd.WireTable
	wireInbox    []wireDelivery

	devices     map[string]*config.Device
	adjacencies map[string][]topology.Adjacency
	sessions    map[string][]topology.BGPSession
	localNames  []string // sorted local device names

	// Control plane.
	bgpProcs    map[string]*bgp.Process
	ospfProcs   map[string]*ospf.Process
	bgpPulls    *sim.PullTracker
	ospfPulls   *sim.PullTracker
	pendingBGP  map[string]map[string][]bgp.Advertisement
	pendingLSAs map[string][]*ospf.LSA
	needsRun    map[string]bool
	shardIndex  int
	// shardPrefixes is the current shard's prefix set (nil = unfiltered);
	// EndShard clears these from accumulated results before harvesting so
	// a merged-shard recompute (§7) replaces stale entries.
	shardPrefixes []route.Prefix

	// Results accumulated across shards.
	fibRIBs   map[string]*route.RIB // attribute-stripped routes for FIB building
	finalRIBs map[string]*route.RIB // full routes (only when keepRIBs)
	spills    []string
	// liteScratch backs the attribute-stripped route copies of spill-mode
	// EndShard harvests. The copies are dead once the shard is encoded to
	// disk, so the buffer is reused across shards (it converges to the
	// largest shard's size after the first few harvests).
	liteScratch []route.Route

	// Data plane.
	engine   *bdd.Engine
	nodesDP  map[string]*dataplane.NodeDP
	adjIndex dataplane.AdjacencyIndex
	query    *dataplane.Query
	destSet  map[string]bool
	// batchDests holds the per-query dest sets of a multi-query pass
	// (BeginQueryBatch), indexed by the query's tag index; nil outside a
	// batch pass. A nil entry means "any delivery counts" for that query.
	batchDests []map[string]bool

	// qmu guards the cross-RPC mutable state below: peers deliver packets
	// concurrently with the controller's round barrier.
	qmu      sync.Mutex
	inbox    []sidecar.PacketDelivery
	queue    map[packetSlot]bdd.Ref
	queueLen int
	outcomes []dataplane.Outcome
	// qround is the wavefront round the next DPRound will process. Peer
	// deliveries stamped for a later round stay parked in the inbox, so a
	// packet advances exactly one adjacency per round no matter how the
	// concurrently-running workers' deliveries interleave with the drain.
	qround int

	statsPulls   int64
	statsPackets int64
	// vitals mirrors phase-guarded state behind atomics so the PullStats
	// probe (fleet health sampler) never touches phaseMu: writers update
	// it at phase boundaries (Setup, BeginShard, ComputeDP, GC) while
	// holding phaseMu; PullStats reads it lock-free.
	vitals workerVitals
	// profileMu single-flights CPU captures — runtime/pprof allows one
	// active CPU profile per process.
	profileMu sync.Mutex
	// pacer schedules BDD collections from measured GCStats (gcpacer.go);
	// gcPauses windows recent pause durations for WorkerStats percentiles.
	pacer    gcPacer
	gcStress bool
	gcWipe   bool
	gcPauses *metrics.DurationQuantiles

	// obs is the worker's observability handle (see observability.go).
	// Infrastructure, not run state: Setup's full reset leaves it alone.
	obs *workerObs
	// log receives the worker's structured logs (nil-safe). Like obs it is
	// infrastructure and survives Setup's full reset.
	log *obs.Logger
	// flight is the worker's always-on flight recorder: phase transitions,
	// GC, wire-session resets, and peer RPC faults land here regardless of
	// whether tracing/metrics are wired. Like obs, it survives Setup.
	flight *obs.FlightRecorder
}

// spillPayload is one shard round's on-disk result: the shard's prefix
// set plus the attribute-stripped routes per node.
type spillPayload struct {
	Prefixes []route.Prefix
	Routes   map[string][]*route.Route
}

type packetSlot struct {
	source string
	node   string
	inPort string
}

// NewWorker creates an unconfigured worker; Setup must be called before
// any phase method.
func NewWorker() *Worker {
	return &Worker{flight: obs.NewFlightRecorder(0)}
}

// FlightRecorder exposes the worker's always-on flight recorder (SIGQUIT
// dumps, /debug/flightrecorder, and the controller's eviction capture).
func (w *Worker) FlightRecorder() *obs.FlightRecorder { return w.flight }

// SetPeers wires the in-process peer directory (the controller calls this
// for local transports; remote workers dial PeerAddrs during Setup).
func (w *Worker) SetPeers(peers []sidecar.WorkerAPI) { w.peers = peers }

// SetDefaultPolicy sets the fault policy used for peer-to-peer calls when
// Setup doesn't carry one (the s2worker -rpc-timeout/-retries flags).
func (w *Worker) SetDefaultPolicy(p fault.Policy) { w.defPolicy = p }

// SetDefaultParallelism sets the pool size used when Setup doesn't carry
// one (the s2worker -procs flag). Values <= 0 mean sequential.
func (w *Worker) SetDefaultParallelism(n int) { w.defProcs = n }

// SetLogger attaches a structured logger (nil disables). Like the obs
// handle it is infrastructure: Setup's full reset leaves it alone, so
// recovery re-Setups keep their logging.
func (w *Worker) SetLogger(l *obs.Logger) { w.log = l }

// Ping implements sidecar.WorkerAPI: the liveness probe. It deliberately
// avoids phaseMu — a worker busy in a long phase is alive, not dead.
func (w *Worker) Ping() error { return nil }

// Setup implements sidecar.WorkerAPI. It fully resets the worker: recovery
// re-partitions segments onto survivors and re-runs Setup on workers that
// already hold state from the failed attempt.
func (w *Worker) Setup(req sidecar.SetupRequest) error {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	// Claim this worker's disjoint span-id range before minting the setup
	// span: w.id is not assigned until later in Setup, and ids minted from
	// the counter's initial value would collide with the controller's when
	// the harvested spans merge (obsSetupDone re-asserts the base, which is
	// then a no-op). SetWorker pins the pid lane for the same reason.
	if w.obs != nil && w.obs.tracer != nil && w.obs.tracer.Exporting() {
		w.obs.tracer.EnsureIDBase(uint64(req.WorkerID+1) << 40)
	}
	span := w.obsWorkerSpan("setup").SetWorker(req.WorkerID)
	defer span.End()
	w.flight.Record("phase", "setup: worker %d, %d configs, %d peers",
		req.WorkerID, len(req.Configs), len(req.PeerAddrs))

	// Drop every remnant of a previous Setup.
	for _, c := range w.dialedPeers {
		c.Close()
	}
	w.dialedPeers = nil
	if len(req.PeerAddrs) > 0 {
		w.peers = nil // force a redial against the new directory
	}
	w.pendingBGP, w.pendingLSAs = nil, nil
	w.needsRun = nil
	w.shardIndex, w.shardPrefixes = 0, nil
	for _, p := range w.spills {
		os.Remove(p)
	}
	w.spills = nil
	w.engine, w.nodesDP, w.query, w.destSet, w.batchDests = nil, nil, nil, nil, nil
	w.gcStress, w.gcWipe = req.GCStress, req.GCWipe
	w.pacer = newGCPacer(req.GCStress, req.MemoryBudget > 0)
	w.gcPauses = metrics.NewDurationQuantiles(0)
	w.qmu.Lock()
	w.inbox, w.queue, w.queueLen, w.outcomes = nil, nil, 0, nil
	w.qround = 0
	w.wireInbox, w.recvTables = nil, map[int]*bdd.WireTable{}
	w.statsPulls, w.statsPackets = 0, 0
	w.qmu.Unlock()
	w.sendSessions = map[int]*bdd.WireSession{}

	w.id = req.WorkerID
	w.vitals.reset(req.WorkerID)
	w.assignment = req.Assignment
	w.layout = dataplane.Layout{MetaBits: req.MetaBits}
	w.maxBDD = req.MaxBDDNodes
	w.spillDir = req.SpillDir
	w.keepRIBs = req.KeepRIBs
	w.tracker = metrics.NewTracker(fmt.Sprintf("worker%d", req.WorkerID), req.MemoryBudget)
	w.adjacencies = req.Adjacencies
	w.sessions = req.Sessions
	w.procs = req.Parallelism
	if w.procs <= 0 {
		w.procs = w.defProcs
	}
	if w.procs <= 0 {
		w.procs = 1
	}
	w.batchPull = !req.DisableBatchPulls
	w.wireDedup = !req.DisableWireDedup
	w.noBatchMu.Lock()
	w.noBatch = map[int]bool{}
	w.noWire = map[int]bool{}
	w.noWirePull = map[int]bool{}
	w.noBatchMu.Unlock()

	snap, err := config.ParseTexts(req.Configs)
	if err != nil {
		return fmt.Errorf("core: worker %d parsing configs: %w", w.id, err)
	}
	w.devices = snap.Devices
	w.localNames = snap.DeviceNames()

	// Dial peers when running as a separate process, wrapping each client
	// with the fault policy so peer pulls and packet deliveries get the
	// same deadlines/retries as controller calls.
	if len(req.PeerAddrs) > 0 {
		policy := w.defPolicy
		if req.RPCTimeout > 0 || req.RPCRetries > 0 {
			policy = fault.Policy{Timeout: req.RPCTimeout, Retries: req.RPCRetries}
		}
		var wrap sidecar.CallWrapper
		if policy.Timeout > 0 || policy.Retries > 0 {
			caller := fault.NewCaller(policy, nil)
			caller.SetNotify(func(event, method string, err error) {
				w.flight.Record("rpc", "peer %s %s: %v", event, method, err)
			})
			wrap = caller.Wrap()
		}
		w.peers = make([]sidecar.WorkerAPI, len(req.PeerAddrs))
		for i, addr := range req.PeerAddrs {
			if i == w.id || addr == "" {
				continue
			}
			client, err := sidecar.DialWrapped(addr, policy.Timeout, wrap)
			if err != nil {
				return fmt.Errorf("core: worker %d dialing peer %d: %w", w.id, i, err)
			}
			// Peer-bound requests carry the phase span they were issued
			// from, so harvested traces attribute peer traffic to phases.
			if w.obs != nil && w.obs.tracer != nil {
				client.SetTraceSource(w.obs.curTC)
			}
			w.peers[i] = client
			w.dialedPeers = append(w.dialedPeers, client)
		}
	}

	w.bgpProcs = map[string]*bgp.Process{}
	w.ospfProcs = map[string]*ospf.Process{}
	for name, dev := range w.devices {
		if dev.BGP != nil {
			w.bgpProcs[name] = bgp.NewProcess(dev, w.sessions[name], w.tracker)
		}
		if dev.OSPF != nil {
			w.ospfProcs[name] = ospf.NewProcess(dev, w.adjacencies[name], w.tracker)
		}
	}
	w.bgpPulls = sim.NewPullTracker()
	w.ospfPulls = sim.NewPullTracker()
	w.fibRIBs = map[string]*route.RIB{}
	w.finalRIBs = map[string]*route.RIB{}
	for name := range w.devices {
		w.fibRIBs[name] = route.NewRIB()
		if w.keepRIBs {
			w.finalRIBs[name] = route.NewRIB()
		}
	}
	w.adjIndex = dataplane.AdjacencyIndex{}
	for dev, adjs := range w.adjacencies {
		m := map[string]dataplane.PortDest{}
		for _, a := range adjs {
			m[a.LocalIfc] = dataplane.PortDest{Node: a.Neighbor, Port: a.RemoteIfc}
		}
		w.adjIndex[dev] = m
	}
	w.obsSetupDone()
	w.log.Info("worker setup",
		obs.FInt("worker", w.id),
		obs.FInt("devices", len(w.localNames)),
		obs.FInt("procs", w.procs))
	return nil
}

// bgpExporter resolves a neighbor name to its exporter: the real local
// process or a shadow relay to the owning worker.
func (w *Worker) bgpExporter(neighbor string) sim.BGPExporter {
	if w.assignment[neighbor] == w.id {
		if p, ok := w.bgpProcs[neighbor]; ok {
			return sim.RealBGPNode{P: p}
		}
		return nil
	}
	peer := w.peers[w.assignment[neighbor]]
	if peer == nil {
		return nil
	}
	return sim.ShadowBGPNode{Peer: peerAdapter{peer}, Name: neighbor}
}

func (w *Worker) ospfExporter(neighbor string) sim.LSAExporter {
	if w.assignment[neighbor] == w.id {
		if p, ok := w.ospfProcs[neighbor]; ok {
			return sim.RealOSPFNode{P: p}
		}
		return nil
	}
	peer := w.peers[w.assignment[neighbor]]
	if peer == nil {
		return nil
	}
	return sim.ShadowOSPFNode{Peer: peerAdapter{peer}, Name: neighbor}
}

// peerAdapter narrows a sidecar.WorkerAPI to the sim.PullPeer interface.
type peerAdapter struct{ w sidecar.WorkerAPI }

func (p peerAdapter) PullBGP(exporter, puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error) {
	return p.w.PullBGP(exporter, puller, since, seen)
}

func (p peerAdapter) PullLSAs(exporter, puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error) {
	return p.w.PullLSAs(exporter, puller, since, seen)
}

// PullBGP implements sidecar.WorkerAPI: it serves shadow-node pulls from
// other workers (Algorithm 1, line 15 arriving at the real node).
func (w *Worker) PullBGP(exporter, puller string, since uint64, seen bool) ([]bgp.Advertisement, uint64, bool, error) {
	proc, ok := w.bgpProcs[exporter]
	if !ok {
		return nil, 0, false, fmt.Errorf("core: worker %d does not host %q", w.id, exporter)
	}
	w.qmu.Lock()
	w.statsPulls++
	w.qmu.Unlock()
	advs, ver, fresh := proc.ExportsTo(puller, since, seen)
	return advs, ver, fresh, nil
}

// PullLSAs implements sidecar.WorkerAPI.
func (w *Worker) PullLSAs(exporter, puller string, since uint64, seen bool) ([]*ospf.LSA, uint64, bool, error) {
	proc, ok := w.ospfProcs[exporter]
	if !ok {
		return nil, 0, false, fmt.Errorf("core: worker %d does not host %q", w.id, exporter)
	}
	w.qmu.Lock()
	w.statsPulls++
	w.qmu.Unlock()
	lsas, ver, fresh := proc.LSAsTo(puller, since, seen)
	return lsas, ver, fresh, nil
}

// PullBGPBatch implements sidecar.WorkerAPI: it serves a whole iteration's
// worth of shadow-node pulls from one peer in a single round trip. Each
// entry is served exactly like an individual PullBGP (statsPulls counts
// logical pulls, so batching shows up as fewer RPCs, not fewer pulls).
func (w *Worker) PullBGPBatch(reqs []sidecar.PullBGPRequest) ([]sidecar.PullBGPReply, error) {
	replies := make([]sidecar.PullBGPReply, len(reqs))
	for i, q := range reqs {
		advs, ver, fresh, err := w.PullBGP(q.Exporter, q.Puller, q.Since, q.Seen)
		if err != nil {
			return nil, err
		}
		replies[i] = sidecar.PullBGPReply{Advs: advs, Version: ver, Fresh: fresh}
	}
	return replies, nil
}

// PullLSABatch implements sidecar.WorkerAPI (the OSPF analogue of
// PullBGPBatch).
func (w *Worker) PullLSABatch(reqs []sidecar.PullLSAsRequest) ([]sidecar.PullLSAsReply, error) {
	replies := make([]sidecar.PullLSAsReply, len(reqs))
	for i, q := range reqs {
		lsas, ver, fresh, err := w.PullLSAs(q.Exporter, q.Puller, q.Since, q.Seen)
		if err != nil {
			return nil, err
		}
		replies[i] = sidecar.PullLSAsReply{LSAs: lsas, Version: ver, Fresh: fresh}
	}
	return replies, nil
}

// PullBGPBatchWire implements sidecar.WorkerAPI. In-process there is no
// wire, so it is the gob batch; the varint encoding happens in the sidecar
// Service/RemoteWorker pair when the call actually crosses a process
// boundary.
func (w *Worker) PullBGPBatchWire(reqs []sidecar.PullBGPRequest) ([]sidecar.PullBGPReply, error) {
	return w.PullBGPBatch(reqs)
}

// PullLSABatchWire implements sidecar.WorkerAPI.
func (w *Worker) PullLSABatchWire(reqs []sidecar.PullLSAsRequest) ([]sidecar.PullLSAsReply, error) {
	return w.PullLSABatch(reqs)
}

// peerLacksBatch reports whether peer owner is known to predate the batch
// pull RPCs.
func (w *Worker) peerLacksBatch(owner int) bool {
	w.noBatchMu.Lock()
	defer w.noBatchMu.Unlock()
	return w.noBatch[owner]
}

// markNoBatch records that peer owner rejected a batch pull RPC, so later
// gathers skip straight to per-pull calls.
func (w *Worker) markNoBatch(owner int) {
	w.noBatchMu.Lock()
	w.noBatch[owner] = true
	w.noBatchMu.Unlock()
}

// peerLacksWirePull reports whether peer owner is known to predate the
// varint-encoded batch pull RPCs.
func (w *Worker) peerLacksWirePull(owner int) bool {
	w.noBatchMu.Lock()
	defer w.noBatchMu.Unlock()
	return w.noWirePull[owner]
}

// markNoWirePull records that peer owner rejected a wire batch pull, so
// later gathers go straight to the gob batch.
func (w *Worker) markNoWirePull(owner int) {
	w.noBatchMu.Lock()
	w.noWirePull[owner] = true
	w.noBatchMu.Unlock()
}

// pullBGPBatchTiered issues one owner's coalesced BGP pulls through the
// preferred encodings in order: varint wire batch (when wire dedup is on
// and the peer serves it), then the gob batch. A method-not-found rejection
// demotes the peer one tier and retries within the same gather; other
// errors surface unchanged.
func (w *Worker) pullBGPBatchTiered(owner int, peer sidecar.WorkerAPI, reqs []sidecar.PullBGPRequest) ([]sidecar.PullBGPReply, error) {
	if w.wireDedup && !w.peerLacksWirePull(owner) {
		replies, err := peer.PullBGPBatchWire(reqs)
		if err == nil {
			return replies, nil
		}
		if !isNoBatchErr(err) {
			return nil, err
		}
		w.markNoWirePull(owner)
	}
	return peer.PullBGPBatch(reqs)
}

// pullLSABatchTiered is the OSPF analogue of pullBGPBatchTiered.
func (w *Worker) pullLSABatchTiered(owner int, peer sidecar.WorkerAPI, reqs []sidecar.PullLSAsRequest) ([]sidecar.PullLSAsReply, error) {
	if w.wireDedup && !w.peerLacksWirePull(owner) {
		replies, err := peer.PullLSABatchWire(reqs)
		if err == nil {
			return replies, nil
		}
		if !isNoBatchErr(err) {
			return nil, err
		}
		w.markNoWirePull(owner)
	}
	return peer.PullLSABatch(reqs)
}

// isNoBatchErr matches net/rpc's rejection of an unregistered method —
// what an older worker binary answers to PullBGPBatch/PullLSABatch.
func isNoBatchErr(err error) bool {
	if err == nil {
		return false
	}
	msg := err.Error()
	return strings.Contains(msg, "can't find method") || strings.Contains(msg, "can't find service")
}

// BeginShard implements sidecar.WorkerAPI: reset BGP state for the shard's
// prefix filter and wire OSPF redistribution.
func (w *Worker) BeginShard(req sidecar.BeginShardRequest) error {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	w.obsBeginShard(req.Index, len(req.Prefixes))
	w.flight.Record("phase", "begin-shard %d: %d prefixes", req.Index, len(req.Prefixes))
	w.shardIndex = req.Index
	w.vitals.shard.Store(int64(req.Index))
	w.shardPrefixes = req.Prefixes
	var filter bgp.PrefixFilter
	if len(req.Prefixes) > 0 {
		set := make(map[route.Prefix]bool, len(req.Prefixes))
		for _, p := range req.Prefixes {
			set[p] = true
		}
		filter = func(p route.Prefix) bool { return set[p] }
	}
	w.bgpPulls.Reset()
	w.pendingBGP = nil
	w.needsRun = map[string]bool{}
	for name, proc := range w.bgpProcs {
		proc.ResetForShard(filter)
		if op, ok := w.ospfProcs[name]; ok {
			proc.SetExternalRoutes("ospf", op.Routes().All())
		}
		w.needsRun[name] = true
	}
	return nil
}

// pullSlot is one (node, neighbor) pull's result, filled either directly
// (local exporters, per-pull RPCs) or by a batched round trip. A nil st
// means the pull was skipped (no exporter).
type pullSlot struct {
	st    *sim.PullState
	ver   uint64
	fresh bool
	advs  []bgp.Advertisement // BGP gathers
	lsas  []*ospf.LSA         // OSPF gathers
}

// batchRef addresses a pullSlot awaiting a batched reply.
type batchRef struct{ i, j int }

// GatherBGP implements sidecar.WorkerAPI: phase 1 of one round — every
// local node pulls route deltas from all neighbors (real or shadow), with
// no writes to any node state, so all workers gather concurrently against
// the quiesced previous round. Within the worker the per-node pulls run on
// up to procs goroutines, and pulls bound for the same remote worker are
// coalesced into one batch RPC; at procs=1 with batching disabled the
// original sequential path runs unchanged.
func (w *Worker) GatherBGP() error {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	span := w.obsWorkerSpan("gather-bgp")
	defer span.End()
	if w.procs <= 1 && !w.batchPull {
		return w.gatherBGPSeq()
	}
	names := w.localNames
	nbLists := make([][]string, len(names))
	slots := make([][]pullSlot, len(names))
	var batchMu sync.Mutex
	batch := map[int][]batchRef{}

	// Phase A: per-node pulls. Local exporters and per-pull peers resolve
	// inline; batch-capable remote pulls only record their cursor.
	err := runIndexed(w.procs, len(names), func(i int) error {
		name := names[i]
		proc, ok := w.bgpProcs[name]
		if !ok {
			return nil
		}
		nbs := proc.NeighborNames()
		nbLists[i] = nbs
		ss := make([]pullSlot, len(nbs))
		slots[i] = ss
		for j, nb := range nbs {
			owner := w.assignment[nb]
			if owner == w.id {
				p, ok := w.bgpProcs[nb]
				if !ok {
					continue
				}
				st := w.bgpPulls.Get(name, nb)
				advs, ver, fresh := p.ExportsTo(name, st.Version, st.Seen)
				ss[j] = pullSlot{st: st, ver: ver, fresh: fresh, advs: advs}
				continue
			}
			peer := w.peers[owner]
			if peer == nil {
				continue
			}
			st := w.bgpPulls.Get(name, nb)
			if w.batchPull && !w.peerLacksBatch(owner) {
				ss[j].st = st
				batchMu.Lock()
				batch[owner] = append(batch[owner], batchRef{i, j})
				batchMu.Unlock()
				continue
			}
			advs, ver, fresh, err := peer.PullBGP(nb, name, st.Version, st.Seen)
			if err != nil {
				return fmt.Errorf("core: worker %d pulling %s→%s: %w", w.id, nb, name, err)
			}
			ss[j] = pullSlot{st: st, ver: ver, fresh: fresh, advs: advs}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Phase B: one round trip per remote owner, concurrently across owners.
	owners := make([]int, 0, len(batch))
	for o := range batch {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	err = runIndexed(w.procs, len(owners), func(oi int) error {
		owner := owners[oi]
		refs := batch[owner]
		peer := w.peers[owner]
		reqs := make([]sidecar.PullBGPRequest, len(refs))
		for k, ref := range refs {
			st := slots[ref.i][ref.j].st
			reqs[k] = sidecar.PullBGPRequest{
				Exporter: nbLists[ref.i][ref.j], Puller: names[ref.i],
				Since: st.Version, Seen: st.Seen,
			}
		}
		replies, err := w.pullBGPBatchTiered(owner, peer, reqs)
		if err != nil && isNoBatchErr(err) {
			// Old peer binary: remember and fall back to per-pull calls.
			w.markNoBatch(owner)
			for k, ref := range refs {
				s := &slots[ref.i][ref.j]
				advs, ver, fresh, err := peer.PullBGP(reqs[k].Exporter, reqs[k].Puller, reqs[k].Since, reqs[k].Seen)
				if err != nil {
					return fmt.Errorf("core: worker %d pulling %s→%s: %w", w.id, reqs[k].Exporter, reqs[k].Puller, err)
				}
				s.ver, s.fresh, s.advs = ver, fresh, advs
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: worker %d batch-pulling %d exports from worker %d: %w", w.id, len(reqs), owner, err)
		}
		if len(replies) != len(reqs) {
			return fmt.Errorf("core: worker %d: batch pull from worker %d returned %d replies for %d requests", w.id, owner, len(replies), len(reqs))
		}
		for k, ref := range refs {
			s := &slots[ref.i][ref.j]
			s.ver, s.fresh, s.advs = replies[k].Version, replies[k].Fresh, replies[k].Advs
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Phase C: deterministic assembly in (node, neighbor) order — identical
	// to the sequential walk.
	exchanged := 0
	pending := map[string]map[string][]bgp.Advertisement{}
	for i, name := range names {
		for j := range slots[i] {
			s := &slots[i][j]
			if s.st == nil || !s.fresh {
				continue
			}
			s.st.Version, s.st.Seen = s.ver, true
			if pending[name] == nil {
				pending[name] = map[string][]bgp.Advertisement{}
			}
			pending[name][nbLists[i][j]] = s.advs
			exchanged += len(s.advs)
		}
	}
	w.pendingBGP = pending
	w.obsRoutesExchanged("bgp", exchanged)
	return nil
}

// gatherBGPSeq is the original single-threaded gather, kept verbatim as
// the -procs=1 -no-batch-pulls reference path.
func (w *Worker) gatherBGPSeq() error {
	exchanged := 0
	pending := map[string]map[string][]bgp.Advertisement{}
	for _, name := range w.localNames {
		proc, ok := w.bgpProcs[name]
		if !ok {
			continue
		}
		for _, nb := range proc.NeighborNames() {
			exp := w.bgpExporter(nb)
			if exp == nil {
				continue
			}
			st := w.bgpPulls.Get(name, nb)
			advs, ver, fresh, err := exp.ExportsTo(name, st.Version, st.Seen)
			if err != nil {
				return fmt.Errorf("core: worker %d pulling %s→%s: %w", w.id, nb, name, err)
			}
			if !fresh {
				continue
			}
			st.Version, st.Seen = ver, true
			if pending[name] == nil {
				pending[name] = map[string][]bgp.Advertisement{}
			}
			pending[name][nb] = advs
			exchanged += len(advs)
		}
	}
	w.pendingBGP = pending
	w.obsRoutesExchanged("bgp", exchanged)
	return nil
}

// ApplyBGP implements sidecar.WorkerAPI: phase 2 — apply the gathered
// imports and rerun decisions. The reply carries per-iteration progress:
// how many local nodes changed and how many Loc-RIB routes are settled.
// Each node mutates only its own process, so the per-node work runs on the
// pool; the needsRun map is read-only during the tasks (every node ends the
// phase with needsRun=false, applied in the sequential merge).
func (w *Worker) ApplyBGP() (sidecar.ApplyReply, error) {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	span := w.obsWorkerSpan("apply-bgp")
	defer span.End()
	var reply sidecar.ApplyReply
	names := w.localNames
	type applyRes struct {
		isProc, ran, changed bool
		routes               int
	}
	res := make([]applyRes, len(names))
	err := runIndexed(w.procs, len(names), func(i int) error {
		proc, ok := w.bgpProcs[names[i]]
		if !ok {
			return nil
		}
		res[i].isProc = true
		imported := false
		for nb, advs := range w.pendingBGP[names[i]] {
			if proc.ImportFrom(nb, advs) {
				imported = true
			}
		}
		if w.needsRun[names[i]] || imported {
			res[i].ran = true
			res[i].changed = proc.RunDecision()
		}
		res[i].routes = proc.LocRIB().RouteCount()
		return nil
	})
	if err != nil {
		return reply, err
	}
	for i, name := range names {
		if !res[i].isProc {
			continue
		}
		w.needsRun[name] = false
		if res[i].ran && res[i].changed {
			reply.Changed = true
			reply.ChangedNodes++
		}
		reply.Routes += res[i].routes
	}
	w.pendingBGP = nil
	if err := w.tracker.CheckBudget(); err != nil {
		return reply, err
	}
	return reply, nil
}

// GatherOSPF implements sidecar.WorkerAPI (phase 1 for LSA flooding).
// Parallel/batched exactly like GatherBGP; the flat per-node LSA list is
// reassembled in neighbor order, which MergeLSAs depends on (a later LSA
// from the same router supersedes an earlier one).
func (w *Worker) GatherOSPF() error {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	span := w.obsWorkerSpan("gather-ospf")
	defer span.End()
	if w.procs <= 1 && !w.batchPull {
		return w.gatherOSPFSeq()
	}
	names := w.localNames
	nbLists := make([][]string, len(names))
	slots := make([][]pullSlot, len(names))
	var batchMu sync.Mutex
	batch := map[int][]batchRef{}

	err := runIndexed(w.procs, len(names), func(i int) error {
		name := names[i]
		proc, ok := w.ospfProcs[name]
		if !ok {
			return nil
		}
		nbs := proc.NeighborNames()
		nbLists[i] = nbs
		ss := make([]pullSlot, len(nbs))
		slots[i] = ss
		for j, nb := range nbs {
			owner := w.assignment[nb]
			if owner == w.id {
				p, ok := w.ospfProcs[nb]
				if !ok {
					continue
				}
				st := w.ospfPulls.Get(name, nb)
				lsas, ver, fresh := p.LSAsTo(name, st.Version, st.Seen)
				ss[j] = pullSlot{st: st, ver: ver, fresh: fresh, lsas: lsas}
				continue
			}
			peer := w.peers[owner]
			if peer == nil {
				continue
			}
			st := w.ospfPulls.Get(name, nb)
			if w.batchPull && !w.peerLacksBatch(owner) {
				ss[j].st = st
				batchMu.Lock()
				batch[owner] = append(batch[owner], batchRef{i, j})
				batchMu.Unlock()
				continue
			}
			lsas, ver, fresh, err := peer.PullLSAs(nb, name, st.Version, st.Seen)
			if err != nil {
				return fmt.Errorf("core: worker %d pulling LSAs %s→%s: %w", w.id, nb, name, err)
			}
			ss[j] = pullSlot{st: st, ver: ver, fresh: fresh, lsas: lsas}
		}
		return nil
	})
	if err != nil {
		return err
	}

	owners := make([]int, 0, len(batch))
	for o := range batch {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	err = runIndexed(w.procs, len(owners), func(oi int) error {
		owner := owners[oi]
		refs := batch[owner]
		peer := w.peers[owner]
		reqs := make([]sidecar.PullLSAsRequest, len(refs))
		for k, ref := range refs {
			st := slots[ref.i][ref.j].st
			reqs[k] = sidecar.PullLSAsRequest{
				Exporter: nbLists[ref.i][ref.j], Puller: names[ref.i],
				Since: st.Version, Seen: st.Seen,
			}
		}
		replies, err := w.pullLSABatchTiered(owner, peer, reqs)
		if err != nil && isNoBatchErr(err) {
			w.markNoBatch(owner)
			for k, ref := range refs {
				s := &slots[ref.i][ref.j]
				lsas, ver, fresh, err := peer.PullLSAs(reqs[k].Exporter, reqs[k].Puller, reqs[k].Since, reqs[k].Seen)
				if err != nil {
					return fmt.Errorf("core: worker %d pulling LSAs %s→%s: %w", w.id, reqs[k].Exporter, reqs[k].Puller, err)
				}
				s.ver, s.fresh, s.lsas = ver, fresh, lsas
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: worker %d batch-pulling %d LSA exports from worker %d: %w", w.id, len(reqs), owner, err)
		}
		if len(replies) != len(reqs) {
			return fmt.Errorf("core: worker %d: batch pull from worker %d returned %d replies for %d requests", w.id, owner, len(replies), len(reqs))
		}
		for k, ref := range refs {
			s := &slots[ref.i][ref.j]
			s.ver, s.fresh, s.lsas = replies[k].Version, replies[k].Fresh, replies[k].LSAs
		}
		return nil
	})
	if err != nil {
		return err
	}

	exchanged := 0
	pending := map[string][]*ospf.LSA{}
	for i, name := range names {
		for j := range slots[i] {
			s := &slots[i][j]
			if s.st == nil || !s.fresh {
				continue
			}
			s.st.Version, s.st.Seen = s.ver, true
			pending[name] = append(pending[name], s.lsas...)
			exchanged += len(s.lsas)
		}
	}
	w.pendingLSAs = pending
	w.obsRoutesExchanged("ospf", exchanged)
	return nil
}

// gatherOSPFSeq is the original single-threaded gather, kept verbatim as
// the -procs=1 -no-batch-pulls reference path.
func (w *Worker) gatherOSPFSeq() error {
	exchanged := 0
	pending := map[string][]*ospf.LSA{}
	for _, name := range w.localNames {
		proc, ok := w.ospfProcs[name]
		if !ok {
			continue
		}
		for _, nb := range proc.NeighborNames() {
			exp := w.ospfExporter(nb)
			if exp == nil {
				continue
			}
			st := w.ospfPulls.Get(name, nb)
			lsas, ver, fresh, err := exp.LSAsTo(name, st.Version, st.Seen)
			if err != nil {
				return fmt.Errorf("core: worker %d pulling LSAs %s→%s: %w", w.id, nb, name, err)
			}
			if !fresh {
				continue
			}
			st.Version, st.Seen = ver, true
			pending[name] = append(pending[name], lsas...)
			exchanged += len(lsas)
		}
	}
	w.pendingLSAs = pending
	w.obsRoutesExchanged("ospf", exchanged)
	return nil
}

// ApplyOSPF implements sidecar.WorkerAPI (phase 2 for LSA merge + SPF).
// Per-node LSDB merges and SPF runs are independent, so they run on the
// pool with a deterministic sequential merge of the reply counters.
func (w *Worker) ApplyOSPF() (sidecar.ApplyReply, error) {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	span := w.obsWorkerSpan("apply-ospf")
	defer span.End()
	var reply sidecar.ApplyReply
	names := w.localNames
	type applyRes struct {
		isProc, changed bool
		routes          int
	}
	res := make([]applyRes, len(names))
	err := runIndexed(w.procs, len(names), func(i int) error {
		proc, ok := w.ospfProcs[names[i]]
		if !ok {
			return nil
		}
		res[i].isProc = true
		merged := proc.MergeLSAs(w.pendingLSAs[names[i]])
		if merged || proc.Routes().Len() == 0 {
			if proc.RunSPF() {
				res[i].changed = true
			}
		}
		if merged {
			res[i].changed = true
		}
		res[i].routes = proc.Routes().RouteCount()
		return nil
	})
	if err != nil {
		return reply, err
	}
	for i := range names {
		if !res[i].isProc {
			continue
		}
		if res[i].changed {
			reply.Changed = true
			reply.ChangedNodes++
		}
		reply.Routes += res[i].routes
	}
	w.pendingLSAs = nil
	if err := w.tracker.CheckBudget(); err != nil {
		return reply, err
	}
	return reply, nil
}

// liteRoute strips heavyweight path attributes, keeping only what FIB
// construction needs. This is what lets prefix sharding lower the live
// footprint: the full attribute set is freed with the shard.
func liteRoute(r *route.Route) *route.Route {
	return &route.Route{
		Prefix:      r.Prefix,
		Protocol:    r.Protocol,
		NextHop:     r.NextHop,
		NextHopNode: r.NextHopNode,
	}
}

// EndShard implements sidecar.WorkerAPI: harvest the shard's routes into
// the FIB-building state (or spill them to disk) and free the shard's
// full-attribute RIBs.
func (w *Worker) EndShard() (sidecar.EndShardReply, error) {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	span := w.obsWorkerSpan("end-shard")
	defer func() {
		span.End()
		w.obsEndShard()
	}()
	w.flight.Record("phase", "end-shard %d", w.shardIndex)
	reply := sidecar.EndShardReply{}
	// Drop any previously harvested results for this shard's prefixes: a
	// merged-shard recompute must replace them wholesale, including
	// prefixes the recompute decided NOT to install.
	for _, name := range w.localNames {
		for _, p := range w.shardPrefixes {
			w.fibRIBs[name].Remove(p)
			if w.keepRIBs {
				w.finalRIBs[name].Remove(p)
			}
		}
		if w.shardPrefixes == nil {
			w.fibRIBs[name].Clear()
			if w.keepRIBs {
				w.finalRIBs[name].Clear()
			}
		}
	}
	// Harvest with one backing array of stripped copies per node (plus one
	// pointer array) instead of a fresh slice per prefix and a fresh Route
	// per entry — the dominant allocation churn of the shard loop (see
	// BenchmarkEndShardHarvest). Spill mode reuses w.liteScratch across
	// shards: the copies are dead once the shard hits disk.
	shardLite := map[string][]*route.Route{}
	scratchOff := 0
	scratch := func(n int) []route.Route {
		if scratchOff+n > len(w.liteScratch) {
			// A fresh, larger block. Pointers already handed out keep
			// referencing the old block, which stays correct; the new block
			// is what future shards reuse.
			size := 2 * (scratchOff + n)
			w.liteScratch = make([]route.Route, size)
			scratchOff = 0
		}
		s := w.liteScratch[scratchOff : scratchOff+n : scratchOff+n]
		scratchOff += n
		return s
	}
	for _, name := range w.localNames {
		proc, ok := w.bgpProcs[name]
		if !ok {
			continue
		}
		for _, list := range proc.UsedConditions() {
			reply.Conditions = append(reply.Conditions, sidecar.ConditionReport{Device: name, PrefixList: list})
		}
		rib := proc.LocRIB()
		total := rib.RouteCount()
		reply.Routes += total
		if w.spillDir != "" {
			lites := make([]*route.Route, 0, total)
			rib.Walk(func(p route.Prefix, rs []*route.Route) {
				backing := scratch(len(rs))
				for i, r := range rs {
					backing[i] = route.Route{Prefix: r.Prefix, Protocol: r.Protocol, NextHop: r.NextHop, NextHopNode: r.NextHopNode}
					lites = append(lites, &backing[i])
				}
				if w.keepRIBs {
					w.finalRIBs[name].SetRoutes(p, rs)
				}
			})
			shardLite[name] = lites
		} else {
			backing := make([]route.Route, total)
			ptrs := make([]*route.Route, total)
			off := 0
			rib.Walk(func(p route.Prefix, rs []*route.Route) {
				lites := ptrs[off : off+len(rs) : off+len(rs)]
				for i, r := range rs {
					backing[off+i] = route.Route{Prefix: r.Prefix, Protocol: r.Protocol, NextHop: r.NextHop, NextHopNode: r.NextHopNode}
					lites[i] = &backing[off+i]
				}
				off += len(rs)
				w.fibRIBs[name].SetRoutes(p, lites)
				if w.keepRIBs {
					w.finalRIBs[name].SetRoutes(p, rs)
				}
			})
		}
		// Free the shard's full-attribute state now; the next BeginShard
		// would do it anyway, but the paper's point is that the peak
		// drops when the shard's routes leave memory.
		proc.ResetForShard(nil)
	}
	if w.spillDir != "" {
		path := filepath.Join(w.spillDir, fmt.Sprintf("w%d-shard%d-run%d.gob", w.id, w.shardIndex, len(w.spills)))
		f, err := os.Create(path)
		if err != nil {
			return reply, fmt.Errorf("core: worker %d spilling shard %d: %w", w.id, w.shardIndex, err)
		}
		payload := spillPayload{Prefixes: w.shardPrefixes, Routes: shardLite}
		// On any failure, close AND remove the partial file: a truncated
		// .gob left behind would fail to decode at ComputeDP reload time.
		if err := gob.NewEncoder(f).Encode(payload); err != nil {
			f.Close()
			os.Remove(path)
			return reply, fmt.Errorf("core: worker %d spilling shard %d: %w", w.id, w.shardIndex, err)
		}
		if err := f.Close(); err != nil {
			os.Remove(path)
			return reply, fmt.Errorf("core: worker %d spilling shard %d: %w", w.id, w.shardIndex, err)
		}
		if st, err := os.Stat(path); err == nil {
			w.obsSpill(st.Size())
		}
		w.spills = append(w.spills, path)
	} else {
		var bytes int64
		for _, rib := range w.fibRIBs {
			bytes += int64(rib.RouteCount()) * route.LiteModelBytes
		}
		w.tracker.Set("fib.accum", bytes)
	}
	reply.ModelBytes = w.tracker.Current()
	return reply, w.tracker.CheckBudget()
}

// ApplyDelta implements sidecar.WorkerAPI: swap changed local device
// models into resident state after a converged run, without the full reset
// of Setup. Changed devices get their BGP processes rebuilt (every shard
// round cold-resets them anyway, so a fresh process is indistinguishable
// from a reset one), and prefixes no device originates any more are purged
// from the accumulated per-node results. OSPF processes are deliberately
// left alone: any delta that could change OSPF behaviour classifies as a
// topology change on the controller and takes the full Setup path instead.
func (w *Worker) ApplyDelta(req sidecar.DeltaRequest) (sidecar.DeltaReply, error) {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	span := w.obsWorkerSpan("apply-delta")
	defer span.End()
	w.flight.Record("phase", "apply-delta: %d configs, %d purged prefixes",
		len(req.Configs), len(req.PurgePrefixes))
	w.log.Debug("apply-delta",
		obs.FInt("worker", w.id),
		obs.FInt("configs", len(req.Configs)),
		obs.FInt("purge_prefixes", len(req.PurgePrefixes)))
	var reply sidecar.DeltaReply
	if len(req.Configs) > 0 {
		files := make(map[string]string, len(req.Configs))
		for name, text := range req.Configs {
			files[name+".cfg"] = text
		}
		snap, err := config.ParseTexts(files)
		if err != nil {
			return reply, fmt.Errorf("core: worker %d parsing delta configs: %w", w.id, err)
		}
		for name, dev := range snap.Devices {
			if _, ok := w.devices[name]; !ok {
				return reply, fmt.Errorf("core: worker %d received delta for non-local device %q", w.id, name)
			}
			w.devices[name] = dev
			if dev.BGP != nil {
				w.bgpProcs[name] = bgp.NewProcess(dev, w.sessions[name], w.tracker)
			} else {
				delete(w.bgpProcs, name)
			}
			reply.Devices++
		}
	}
	if len(req.PurgePrefixes) > 0 {
		for _, name := range w.localNames {
			for _, p := range req.PurgePrefixes {
				w.fibRIBs[name].Remove(p)
				if w.keepRIBs {
					w.finalRIBs[name].Remove(p)
				}
			}
		}
		// In spill mode the in-memory removal above is not enough: ComputeDP
		// replays every spill file in write order, which would resurrect the
		// purged prefixes. Append a purge record — non-nil Prefixes (nil
		// means clear-all) with no routes — so the replay forgets them too.
		if w.spillDir != "" && len(w.spills) > 0 {
			path := filepath.Join(w.spillDir, fmt.Sprintf("w%d-delta-purge-run%d.gob", w.id, len(w.spills)))
			f, err := os.Create(path)
			if err != nil {
				return reply, fmt.Errorf("core: worker %d spilling delta purge: %w", w.id, err)
			}
			payload := spillPayload{Prefixes: req.PurgePrefixes, Routes: map[string][]*route.Route{}}
			if err := gob.NewEncoder(f).Encode(payload); err != nil {
				f.Close()
				os.Remove(path)
				return reply, fmt.Errorf("core: worker %d spilling delta purge: %w", w.id, err)
			}
			if err := f.Close(); err != nil {
				os.Remove(path)
				return reply, fmt.Errorf("core: worker %d spilling delta purge: %w", w.id, err)
			}
			w.spills = append(w.spills, path)
		}
	}
	return reply, nil
}

// ComputeDP implements sidecar.WorkerAPI: build FIBs and per-port
// predicates for every local node on this worker's private BDD engine.
func (w *Worker) ComputeDP() (sidecar.ComputeDPReply, error) {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	span := w.obsWorkerSpan("compute-dp")
	defer span.End()
	reply := sidecar.ComputeDPReply{}
	// Reload spilled shard results in write order: each file first clears
	// its shard's prefixes so a merged-shard recompute supersedes earlier
	// stale spills.
	for _, path := range w.spills {
		f, err := os.Open(path)
		if err != nil {
			return reply, fmt.Errorf("core: worker %d loading spill: %w", w.id, err)
		}
		var payload spillPayload
		err = gob.NewDecoder(f).Decode(&payload)
		f.Close()
		if err != nil {
			return reply, fmt.Errorf("core: worker %d decoding spill: %w", w.id, err)
		}
		for _, name := range w.localNames {
			for _, p := range payload.Prefixes {
				w.fibRIBs[name].Remove(p)
			}
			if payload.Prefixes == nil {
				w.fibRIBs[name].Clear()
			}
		}
		for name, routes := range payload.Routes {
			byPrefix := map[route.Prefix][]*route.Route{}
			for _, r := range routes {
				byPrefix[r.Prefix] = append(byPrefix[r.Prefix], r)
			}
			for p, rs := range byPrefix {
				w.fibRIBs[name].SetRoutes(p, rs)
			}
		}
	}
	if w.spillDir != "" {
		var bytes int64
		for _, rib := range w.fibRIBs {
			bytes += int64(rib.RouteCount()) * route.LiteModelBytes
		}
		w.tracker.Set("fib.accum", bytes)
	}

	w.engine = w.layout.NewEngine(w.maxBDD)
	w.engine.SetGrowObserver(func(delta int) {
		w.tracker.Add("bdd", int64(delta)*bdd.NodeModelBytes)
	})
	// The marker pool reuses the worker's phase parallelism; at -procs 1
	// the mark stays fully sequential. GCWipe (benchmark A/B knob) reverts
	// the whole collector to seed behavior: one mark goroutine and the op
	// cache wiped on every collection.
	if w.gcWipe {
		w.engine.SetGCParallelism(1)
		w.engine.SetGCRelocation(false)
	} else {
		w.engine.SetGCParallelism(w.procs)
		w.engine.SetGCRelocation(true)
	}
	// Per-node FIB builds and BDD compiles are independent given the
	// concurrent engine, so they run on the pool; the reply counters and
	// error list merge sequentially in name order.
	w.nodesDP = map[string]*dataplane.NodeDP{}
	var fibBytes int64
	type dpRes struct {
		errs    []string
		entries int
		bytes   int64
		node    *dataplane.NodeDP
	}
	names := w.localNames
	res := make([]dpRes, len(names))
	err := runIndexed(w.procs, len(names), func(i int) error {
		name := names[i]
		dev := w.devices[name]
		var ribs []*route.RIB
		ribs = append(ribs, w.fibRIBs[name])
		if op, ok := w.ospfProcs[name]; ok {
			ribs = append(ribs, op.Routes())
		}
		fib, errs := dataplane.BuildFIB(dev, ribs...)
		for _, e := range errs {
			res[i].errs = append(res[i].errs, e.Error())
		}
		res[i].entries = len(fib.Entries)
		res[i].bytes = fib.ModelBytes()
		n, err := dataplane.CompileNode(w.engine, dev, fib)
		if err != nil {
			return err
		}
		res[i].node = n
		return nil
	})
	if err != nil {
		return reply, err
	}
	for i, name := range names {
		reply.Errors = append(reply.Errors, res[i].errs...)
		reply.FIBEntries += res[i].entries
		fibBytes += res[i].bytes
		w.nodesDP[name] = res[i].node
	}
	w.tracker.Set("fib.compiled", fibBytes)
	reply.BDDNodes = w.engine.NodeCount()
	w.vitals.bddNodes.Store(int64(reply.BDDNodes))
	w.obsBDD(reply.BDDNodes, false)
	return reply, w.tracker.CheckBudget()
}

// BeginQuery implements sidecar.WorkerAPI: arm a query, wiring waypoint
// write rules and the destination set for Arrive/Exit classification.
func (w *Worker) BeginQuery(req sidecar.QueryRequest) error {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	span := w.obsWorkerSpan("begin-query")
	defer span.End()
	if w.nodesDP == nil {
		return fmt.Errorf("core: worker %d: ComputeDP must run before queries", w.id)
	}
	w.flight.Record("phase", "begin-query: %d sources, %d dests", len(req.Query.Sources), len(req.Query.Dests))
	q := req.Query
	if err := q.Validate(w.layout); err != nil {
		return err
	}
	w.query = &q
	w.destSet = nil
	w.batchDests = nil
	if len(q.Dests) > 0 {
		w.destSet = map[string]bool{}
		for _, d := range q.Dests {
			w.destSet[d] = true
		}
	}
	w.resetQueryState()
	return nil
}

// BeginQueryBatch implements sidecar.WorkerAPI: arm one multi-query pass.
// Pass-wide state (transit metadata bits, TTL) comes from the first query —
// the controller only batches BatchCompatible queries, and the worker
// re-checks. Per-query dest sets are kept by tag index; injected packets
// carry dataplane.QueryTag(i) source prefixes so the wavefront never merges
// packets across queries (packetSlot keys on the tagged source).
func (w *Worker) BeginQueryBatch(req sidecar.QueryBatchRequest) error {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	span := w.obsWorkerSpan("begin-query-batch")
	defer span.End()
	if w.nodesDP == nil {
		return fmt.Errorf("core: worker %d: ComputeDP must run before queries", w.id)
	}
	if len(req.Queries) == 0 {
		return fmt.Errorf("core: worker %d: empty query batch", w.id)
	}
	w.flight.Record("phase", "begin-query-batch: %d queries", len(req.Queries))
	qs := req.Queries
	for i := range qs {
		if err := qs[i].Validate(w.layout); err != nil {
			return err
		}
		if !dataplane.BatchCompatible(&qs[0], &qs[i]) {
			return fmt.Errorf("core: worker %d: query %d is not batch-compatible", w.id, i)
		}
	}
	w.query = &qs[0]
	w.destSet = nil
	w.batchDests = make([]map[string]bool, len(qs))
	for i := range qs {
		if len(qs[i].Dests) == 0 {
			continue
		}
		ds := make(map[string]bool, len(qs[i].Dests))
		for _, d := range qs[i].Dests {
			ds[d] = true
		}
		w.batchDests[i] = ds
	}
	w.resetQueryState()
	return nil
}

// resetQueryState is the shared tail of BeginQuery/BeginQueryBatch: stamp
// the transit metadata bits, clear the wavefront, and GC the previous
// query's garbage. Call with phaseMu held and w.query set.
func (w *Worker) resetQueryState() {
	for name, n := range w.nodesDP {
		n.MetaBit = w.query.MetaBitFor(name)
	}
	w.qmu.Lock()
	w.inbox = nil
	w.queue = map[packetSlot]bdd.Ref{}
	w.queueLen = 0
	w.outcomes = nil
	w.qround = 0
	// Wire sessions are per phase: drop receive state and start the send
	// sessions over so every peer's first message is self-contained.
	w.wireInbox = nil
	w.recvTables = map[int]*bdd.WireTable{}
	w.qmu.Unlock()
	w.sendSessions = map[int]*bdd.WireSession{}
	// Collect the previous query's garbage before this one starts.
	w.gcEngine()
}

// Inject implements sidecar.WorkerAPI: queue a symbolic packet at a local
// source node.
func (w *Worker) Inject(req sidecar.InjectRequest) error {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	if w.assignment[req.Source] != w.id {
		return fmt.Errorf("core: worker %d does not host source %q", w.id, req.Source)
	}
	w.qmu.Lock()
	defer w.qmu.Unlock()
	// In a batch pass the packet circulates under its tagged source, which
	// keeps per-query packets in distinct wavefront slots end to end.
	w.inbox = append(w.inbox, sidecar.PacketDelivery{Source: req.Tag + req.Source, Node: req.Source, Packet: req.Packet})
	return nil
}

// DeliverPackets implements sidecar.WorkerAPI: accept packets crossing the
// worker boundary. Only the inbox is touched; deserialization waits for the
// worker's own round (the BDD engine is single-threaded).
func (w *Worker) DeliverPackets(items []sidecar.PacketDelivery) error {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	w.inbox = append(w.inbox, items...)
	w.statsPackets += int64(len(items))
	return nil
}

// DPRound implements sidecar.WorkerAPI: process one wavefront hop for all
// queued packets on local nodes (Figure 3's per-worker forwarding), sending
// boundary-crossing packets to peer sidecars. At procs>1 the per-slot
// Forward calls run concurrently against the shared engine (see
// dpRoundParallel); procs<=1 keeps the original sequential body, including
// its mid-round adaptive GC.
func (w *Worker) DPRound() error {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	if w.query == nil {
		return fmt.Errorf("core: worker %d: no active query", w.id)
	}
	span := w.obsWorkerSpan("dp-round")
	defer span.End()
	if w.procs > 1 {
		return w.dpRoundParallel()
	}
	// Drain the inbox into the queue (deserializing on our goroutine).
	// Only deliveries stamped for this round or earlier materialize;
	// later-stamped ones park until their round.
	w.qmu.Lock()
	cur := w.queue
	w.queue = map[packetSlot]bdd.Ref{}
	w.queueLen = 0
	round := w.qround
	w.qround++
	w.qmu.Unlock()
	if err := w.drainInbox(cur, round); err != nil {
		return err
	}
	if len(cur) == 0 {
		return nil
	}

	// Deterministic processing order.
	slots := make([]packetSlot, 0, len(cur))
	for s := range cur {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool {
		a, b := slots[i], slots[j]
		if a.node != b.node {
			return a.node < b.node
		}
		if a.inPort != b.inPort {
			return a.inPort < b.inPort
		}
		return a.source < b.source
	})

	nextLocal := map[packetSlot]bdd.Ref{}
	remote := map[int][]wireItem{}
	for si, s := range slots {
		// Mid-round adaptive GC: heavy rounds create garbage faster than
		// the between-round collection can bound. Pending slots, the
		// partial next wavefront, and packets awaiting shipment to other
		// workers (live refs until ship time, when the whole round shares
		// one substrate per peer) are extra roots.
		if w.engine.NodeCount() > w.pacer.midThreshold() {
			remap := w.gcWithExtraRoots(func(add func(bdd.Ref)) {
				for _, rest := range slots[si:] {
					add(cur[rest])
				}
				for _, r := range nextLocal {
					add(r)
				}
				for _, items := range remote {
					for _, it := range items {
						add(it.out)
					}
				}
			})
			for _, rest := range slots[si:] {
				cur[rest] = remap(cur[rest])
			}
			for k, r := range nextLocal {
				nextLocal[k] = remap(r)
			}
			for _, items := range remote {
				for i := range items {
					items[i].out = remap(items[i].out)
				}
			}
		}
		n, ok := w.nodesDP[s.node]
		if !ok {
			return fmt.Errorf("core: worker %d received packet for non-local node %q", w.id, s.node)
		}
		res, err := n.Forward(w.engine, cur[s], s.inPort)
		if err != nil {
			return err
		}
		w.classify(s.source, s.node, dataplane.Arrive, res.Local)
		w.classify(s.source, s.node, dataplane.Blackhole, res.Dropped)
		for port, out := range res.Out {
			dest, ok := w.adjIndex[s.node][port]
			if !ok {
				// Edge port: leaves the network here.
				state := dataplane.Exit
				if w.isDest(s.source, s.node) {
					state = dataplane.Arrive
				}
				w.classify(s.source, s.node, state, out)
				continue
			}
			owner := w.assignment[dest.Node]
			if owner == w.id {
				slot := packetSlot{source: s.source, node: dest.Node, inPort: dest.Port}
				if prev, ok := nextLocal[slot]; ok {
					merged, err := w.engine.Or(prev, out)
					if err != nil {
						return err
					}
					nextLocal[slot] = merged
				} else {
					nextLocal[slot] = out
				}
			} else {
				remote[owner] = append(remote[owner], wireItem{
					source: s.source,
					node:   dest.Node,
					inPort: dest.Port,
					out:    out,
				})
			}
		}
	}

	// Ship boundary crossings (③→④→⑤ in Figure 3): one shared-substrate
	// message per destination worker, per-packet for legacy peers. The
	// crossings belong to the next round.
	if err := w.shipRemote(remote, round+1); err != nil {
		return err
	}

	w.qmu.Lock()
	w.queue = nextLocal
	w.queueLen = len(nextLocal)
	w.qmu.Unlock()

	// Adaptive BDD garbage collection: intermediate packet sets from
	// this round are dead; only predicates, queued packets, and recorded
	// outcomes stay live. Per-worker engines keep these collections small
	// and un-contended (§4.3). The grow observer has already charged the
	// intra-round high water to the tracker, so the peak is preserved.
	// The pacer picks the growth threshold from measured pause cost and
	// reclaim yield (see gcpacer.go).
	if w.engine.NodeCount() > w.pacer.postThreshold() {
		w.gcEngine()
	}
	return w.tracker.CheckBudget()
}

// dpRoundParallel is DPRound's multi-core body: the slots' Forward calls
// (and the serialization of boundary-crossing packets) run on the pool
// against the concurrent engine, then classification, next-wavefront
// merging, and peer delivery happen sequentially in slot order so outcomes
// and deliveries stay deterministic. The mid-round adaptive GC runs at
// chunk boundaries (see below) — the engine's collector is stop-the-world
// and must not run under the pool.
func (w *Worker) dpRoundParallel() error {
	w.qmu.Lock()
	cur := w.queue
	w.queue = map[packetSlot]bdd.Ref{}
	w.queueLen = 0
	round := w.qround
	w.qround++
	w.qmu.Unlock()
	if err := w.drainInbox(cur, round); err != nil {
		return err
	}
	if len(cur) == 0 {
		return nil
	}

	// Deterministic processing order.
	slots := make([]packetSlot, 0, len(cur))
	for s := range cur {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool {
		a, b := slots[i], slots[j]
		if a.node != b.node {
			return a.node < b.node
		}
		if a.inPort != b.inPort {
			return a.inPort < b.inPort
		}
		return a.source < b.source
	})

	type portOut struct {
		out    bdd.Ref
		edge   bool
		dest   dataplane.PortDest
		owner  int
		packet []byte // pre-serialized when bound for a non-wire peer
	}
	type fwdRes struct {
		local, dropped bdd.Ref
		ports          []portOut
	}
	// useWire snapshots, per round, which peers take the shared-substrate
	// path: their packets stay refs until the chunk flush; everything else
	// pre-serializes on the pool exactly as before.
	useWire := func(owner int) bool { return false }
	if w.wireDedup {
		w.noBatchMu.Lock()
		lacks := make(map[int]bool, len(w.noWire))
		for o := range w.noWire {
			lacks[o] = true
		}
		w.noBatchMu.Unlock()
		useWire = func(owner int) bool { return !lacks[owner] }
	}
	nextLocal := map[packetSlot]bdd.Ref{}
	remote := map[int][]sidecar.PacketDelivery{}
	legacyBytes := 0
	res := make([]fwdRes, len(slots))
	// Slots are processed in chunks: each chunk's Forward calls (and remote
	// serialization) run on the pool, then classification and next-wavefront
	// merging happen sequentially in slot order. Chunk boundaries are the
	// safe points for the mid-round adaptive GC the sequential path does per
	// slot — the collector is stop-the-world, so it cannot run under the
	// pool, but heavy rounds still need garbage bounded mid-round.
	chunk := 64 * w.procs
	for lo := 0; lo < len(slots); lo += chunk {
		hi := lo + chunk
		if hi > len(slots) {
			hi = len(slots)
		}
		if w.engine.NodeCount() > w.pacer.midThreshold() {
			remap := w.gcWithExtraRoots(func(add func(bdd.Ref)) {
				for _, rest := range slots[lo:] {
					add(cur[rest])
				}
				for _, r := range nextLocal {
					add(r)
				}
			})
			for _, rest := range slots[lo:] {
				cur[rest] = remap(cur[rest])
			}
			for k, r := range nextLocal {
				nextLocal[k] = remap(r)
			}
		}
		err := runIndexed(w.procs, hi-lo, func(i int) error {
			si := lo + i
			s := slots[si]
			n, ok := w.nodesDP[s.node]
			if !ok {
				return fmt.Errorf("core: worker %d received packet for non-local node %q", w.id, s.node)
			}
			r, err := n.Forward(w.engine, cur[s], s.inPort)
			if err != nil {
				return err
			}
			res[si].local, res[si].dropped = r.Local, r.Dropped
			ports := make([]string, 0, len(r.Out))
			for port := range r.Out {
				ports = append(ports, port)
			}
			sort.Strings(ports)
			for _, port := range ports {
				po := portOut{out: r.Out[port]}
				dest, ok := w.adjIndex[s.node][port]
				if !ok {
					po.edge = true
				} else {
					po.dest = dest
					po.owner = w.assignment[dest.Node]
					if po.owner != w.id && !useWire(po.owner) {
						po.packet = w.engine.Serialize(po.out)
					}
				}
				res[si].ports = append(res[si].ports, po)
			}
			return nil
		})
		if err != nil {
			return err
		}

		// chunkWire coalesces every wire-path packet of this chunk per
		// destination worker; it is flushed before the next chunk so the
		// refs never have to survive a chunk-boundary GC.
		chunkWire := map[int][]wireItem{}
		for si := lo; si < hi; si++ {
			s := slots[si]
			w.classify(s.source, s.node, dataplane.Arrive, res[si].local)
			w.classify(s.source, s.node, dataplane.Blackhole, res[si].dropped)
			for _, po := range res[si].ports {
				if po.edge {
					// Edge port: leaves the network here.
					state := dataplane.Exit
					if w.isDest(s.source, s.node) {
						state = dataplane.Arrive
					}
					w.classify(s.source, s.node, state, po.out)
					continue
				}
				if po.owner == w.id {
					slot := packetSlot{source: s.source, node: po.dest.Node, inPort: po.dest.Port}
					if prev, ok := nextLocal[slot]; ok {
						merged, err := w.engine.Or(prev, po.out)
						if err != nil {
							return err
						}
						nextLocal[slot] = merged
					} else {
						nextLocal[slot] = po.out
					}
				} else if useWire(po.owner) {
					chunkWire[po.owner] = append(chunkWire[po.owner], wireItem{
						source: s.source,
						node:   po.dest.Node,
						inPort: po.dest.Port,
						out:    po.out,
					})
				} else {
					legacyBytes += len(po.packet)
					remote[po.owner] = append(remote[po.owner], sidecar.PacketDelivery{
						Source: s.source,
						Node:   po.dest.Node,
						InPort: po.dest.Port,
						Packet: po.packet,
						Round:  round + 1,
					})
				}
			}
		}
		// Ship this chunk's wire-path crossings: one substrate message per
		// destination worker (③→④→⑤ in Figure 3, batched).
		if err := w.shipRemote(chunkWire, round+1); err != nil {
			return err
		}
	}

	// Ship the per-packet crossings for peers outside the wire path.
	owners := make([]int, 0, len(remote))
	for o := range remote {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	for _, o := range owners {
		peer := w.peers[o]
		if peer == nil {
			return fmt.Errorf("core: worker %d has no peer %d", w.id, o)
		}
		if err := peer.DeliverPackets(remote[o]); err != nil {
			return fmt.Errorf("core: worker %d delivering to %d: %w", w.id, o, err)
		}
	}
	w.obsWireBytes("packet", legacyBytes)

	w.qmu.Lock()
	w.queue = nextLocal
	w.queueLen = len(nextLocal)
	w.qmu.Unlock()

	if w.engine.NodeCount() > w.pacer.postThreshold() {
		w.gcEngine()
	}
	return w.tracker.CheckBudget()
}

// gcEngine collects the worker's BDD engine, remapping every live ref.
func (w *Worker) gcEngine() {
	w.gcWithExtraRoots(nil)
}

// gcWithExtraRoots collects with the standard roots plus caller-provided
// extras; the caller must remap any extra refs itself using the returned
// function.
func (w *Worker) gcWithExtraRoots(extra func(add func(bdd.Ref))) func(bdd.Ref) bdd.Ref {
	if w.engine == nil {
		return func(r bdd.Ref) bdd.Ref { return r }
	}
	gcStart := time.Now()
	nodesBefore := w.engine.NodeCount()
	// GC spans are created directly rather than through obsWorkerSpan: the
	// pending remote trace parent belongs to the phase span of the RPC in
	// flight, and a collection is an implementation detail inside it.
	var gcSpan *obs.Span
	if w.obs != nil && w.obs.tracer != nil {
		if w.obs.shardSpan != nil {
			gcSpan = w.obs.shardSpan.Child("gc", obs.Int("nodes_before", nodesBefore))
		} else {
			gcSpan = w.obs.tracer.Start("gc", obs.Int("nodes_before", nodesBefore)).SetWorker(w.id)
		}
	}
	var roots []bdd.Ref
	if extra != nil {
		extra(func(r bdd.Ref) { roots = append(roots, r) })
	}
	for _, n := range w.nodesDP {
		roots = append(roots, n.RootRefs()...)
	}
	w.qmu.Lock()
	for _, r := range w.queue {
		roots = append(roots, r)
	}
	// Materialized wire tables stay live across a GC: parked deliveries in
	// wireInbox may still splice onto them, so their refs are roots and are
	// remapped in place below.
	for _, t := range w.recvTables {
		roots = append(roots, t.Refs()...)
	}
	w.qmu.Unlock()
	for _, o := range w.outcomes {
		roots = append(roots, o.Packet)
	}
	remap := w.engine.GC(roots)
	for _, n := range w.nodesDP {
		n.Remap(remap)
	}
	w.qmu.Lock()
	for k, r := range w.queue {
		w.queue[k] = remap(r)
	}
	for _, t := range w.recvTables {
		t.Remap(remap)
	}
	w.qmu.Unlock()
	for i := range w.outcomes {
		w.outcomes[i].Packet = remap(w.outcomes[i].Packet)
	}
	// Send sessions key on local refs, which the collection just renumbered:
	// every delta session starts over at the next ship.
	for _, s := range w.sendSessions {
		s.Reset()
	}
	if len(w.sendSessions) > 0 {
		w.flight.Record("wire", "reset %d send sessions after gc", len(w.sendSessions))
	}
	st := w.engine.GCStats()
	w.pacer.observe(st)
	if w.gcPauses != nil {
		w.gcPauses.Observe(st.LastPause)
		w.vitals.gcPauseP99.Store(w.gcPauses.Quantile(0.99).Microseconds())
	}
	nodesAfter := w.engine.NodeCount()
	w.vitals.bddNodes.Store(int64(nodesAfter))
	w.obsBDD(nodesAfter, true)
	w.obsGC(st)
	gcSpan.SetAttr("nodes_after", fmt.Sprint(nodesAfter))
	gcSpan.SetAttr("mark_us", fmt.Sprint(st.LastMark.Microseconds()))
	gcSpan.SetAttr("sweep_us", fmt.Sprint(st.LastSweep.Microseconds()))
	gcSpan.SetAttr("relocate_us", fmt.Sprint(st.LastRelocate.Microseconds()))
	gcSpan.SetAttr("relocated", fmt.Sprint(st.LastCacheRelocated))
	gcSpan.SetAttr("mark_procs", fmt.Sprint(st.LastMarkProcs))
	gcSpan.End()
	w.flight.Record("gc", "%d -> %d nodes in %s (mark %s/%d, sweep %s, relocate %s, cache %d kept / %d dropped)",
		nodesBefore, nodesAfter, time.Since(gcStart).Round(time.Microsecond),
		st.LastMark.Round(time.Microsecond), st.LastMarkProcs,
		st.LastSweep.Round(time.Microsecond), st.LastRelocate.Round(time.Microsecond),
		st.LastCacheRelocated, st.LastCacheDropped)
	return remap
}

// isDest reports whether delivery at node counts as Arrive for the query
// that owns source. In a batch pass the source's tag index selects the
// query's dest set; solo passes use the single destSet.
func (w *Worker) isDest(source, node string) bool {
	if w.batchDests != nil {
		if i, _, ok := dataplane.SplitQueryTag(source); ok && i < len(w.batchDests) {
			ds := w.batchDests[i]
			return ds == nil || ds[node]
		}
	}
	return w.destSet == nil || w.destSet[node]
}

func (w *Worker) classify(source, node string, state dataplane.FinalState, pkt bdd.Ref) {
	if pkt == bdd.False {
		return
	}
	if state == dataplane.Arrive && !w.isDest(source, node) {
		state = dataplane.Exit
	}
	w.outcomes = append(w.outcomes, dataplane.Outcome{Source: source, Node: node, State: state, Packet: pkt})
}

// HasWork implements sidecar.WorkerAPI.
func (w *Worker) HasWork() (bool, error) {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	return len(w.inbox) > 0 || len(w.wireInbox) > 0 || w.queueLen > 0, nil
}

// FinishQuery implements sidecar.WorkerAPI: whatever still circulates has
// exceeded the TTL (Loop); serialize and return all outcomes. With wire
// dedup on, all outcome packets share one set-encoded substrate (root i
// pairs with Outcomes[i]); otherwise each outcome carries its own packet.
func (w *Worker) FinishQuery() (sidecar.OutcomeBatch, error) {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	span := w.obsWorkerSpan("finish-query")
	defer span.End()
	w.qmu.Lock()
	stragglers := w.queue
	w.queue = map[packetSlot]bdd.Ref{}
	w.queueLen = 0
	w.qmu.Unlock()
	// Deliveries that raced the controller's convergence check are loops
	// too, whatever round they were stamped for; drainInbox also
	// materializes any parked wire batches.
	if err := w.drainInbox(stragglers, math.MaxInt); err != nil {
		return sidecar.OutcomeBatch{}, err
	}
	slots := make([]packetSlot, 0, len(stragglers))
	for s := range stragglers {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool {
		a, b := slots[i], slots[j]
		if a.node != b.node {
			return a.node < b.node
		}
		if a.inPort != b.inPort {
			return a.inPort < b.inPort
		}
		return a.source < b.source
	})
	for _, s := range slots {
		w.outcomes = append(w.outcomes, dataplane.Outcome{Source: s.source, Node: s.node, State: dataplane.Loop, Packet: stragglers[s]})
	}

	batch := sidecar.OutcomeBatch{Outcomes: make([]dataplane.RawOutcome, 0, len(w.outcomes))}
	if w.wireDedup {
		refs := make([]bdd.Ref, len(w.outcomes))
		for i, o := range w.outcomes {
			refs[i] = o.Packet
			batch.Outcomes = append(batch.Outcomes, dataplane.RawOutcome{Source: o.Source, Node: o.Node, State: o.State})
		}
		batch.Wire = w.engine.SerializeSet(refs)
		w.obsWireBytes("wire", len(batch.Wire))
	} else {
		total := 0
		for _, o := range w.outcomes {
			pkt := w.engine.Serialize(o.Packet)
			total += len(pkt)
			batch.Outcomes = append(batch.Outcomes, dataplane.RawOutcome{
				Source: o.Source,
				Node:   o.Node,
				State:  o.State,
				Packet: pkt,
			})
		}
		w.obsWireBytes("packet", total)
	}
	w.outcomes = nil
	return batch, nil
}

// CollectRIBs implements sidecar.WorkerAPI: the merged full RIBs of local
// nodes (requires KeepRIBs).
func (w *Worker) CollectRIBs() (map[string][]*route.Route, error) {
	w.phaseMu.Lock()
	defer w.phaseMu.Unlock()
	if !w.keepRIBs {
		return nil, fmt.Errorf("core: worker %d was set up with KeepRIBs=false", w.id)
	}
	out := map[string][]*route.Route{}
	for name, rib := range w.finalRIBs {
		out[name] = rib.All()
	}
	return out, nil
}

// PullSpans implements sidecar.WorkerAPI: drain a batch of completed spans
// from the export ring, stamping the reply with the local wall clock so the
// controller can estimate this worker's offset. Deliberately does NOT take
// phaseMu — the controller's background harvester must be able to drain the
// ring while a long phase (convergence, DP compute) holds the phase lock.
func (w *Worker) PullSpans(req sidecar.PullSpansRequest) (sidecar.PullSpansReply, error) {
	reply := sidecar.PullSpansReply{NowUnixMicro: time.Now().UnixMicro()}
	if req.WithFlight {
		reply.Flight = w.flight.Page(0)
	}
	if w.obs == nil || w.obs.tracer == nil {
		return reply, nil
	}
	max := req.Max
	if max <= 0 {
		max = 2048
	}
	reply.Spans, reply.Dropped, reply.More = w.obs.tracer.DrainExport(max)
	return reply, nil
}

// Stats implements sidecar.WorkerAPI.
func (w *Worker) Stats() (sidecar.WorkerStats, error) {
	w.qmu.Lock()
	pulls, packets := w.statsPulls, w.statsPackets
	w.qmu.Unlock()
	st := sidecar.WorkerStats{
		WorkerID:   w.id,
		Nodes:      len(w.devices),
		PeakBytes:  w.tracker.Peak(),
		NowBytes:   w.tracker.Current(),
		RoutePulls: pulls,
		PacketsIn:  packets,
	}
	if w.engine != nil {
		st.BDDNodes = w.engine.NodeCount()
		gs := w.engine.GCStats()
		st.GCRuns = gs.Runs
		st.GCPauseMicros = gs.TotalPause.Microseconds()
		st.GCCacheRelocated = gs.CacheRelocated
	}
	if w.gcPauses != nil {
		st.GCPauseP50Micros = w.gcPauses.Quantile(0.50).Microseconds()
		st.GCPauseP99Micros = w.gcPauses.Quantile(0.99).Microseconds()
	}
	return st, nil
}

// workerVitals mirrors phase-guarded worker state behind atomics so the
// PullStats probe reads a consistent-enough snapshot without phaseMu.
// Writers hold phaseMu (phase boundaries are the only mutation points);
// readers are lock-free.
type workerVitals struct {
	id         atomic.Int64
	shard      atomic.Int64
	bddNodes   atomic.Int64
	gcPauseP99 atomic.Int64 // microseconds
}

// reset re-arms the mirror for a (re-)Setup. Caller holds phaseMu.
func (v *workerVitals) reset(workerID int) {
	v.id.Store(int64(workerID))
	v.shard.Store(0)
	v.bddNodes.Store(0)
	v.gcPauseP99.Store(0)
}

// PullStats implements sidecar.WorkerAPI: the fleet health sampler's
// vitals probe. Like Ping/Stats/PullSpans it never takes phaseMu — the
// controller polls it at heartbeat cadence while phases run — so all
// phase-owned state arrives via the atomic vitals mirror.
func (w *Worker) PullStats(_ sidecar.PullStatsRequest) (sidecar.PullStatsReply, error) {
	w.qmu.Lock()
	round := w.qround
	queued := w.queueLen + len(w.inbox) + len(w.wireInbox)
	w.qmu.Unlock()
	return sidecar.PullStatsReply{Vitals: sidecar.WorkerVitals{
		WorkerID:         int(w.vitals.id.Load()),
		Shard:            int(w.vitals.shard.Load()),
		Round:            round,
		QueueLen:         queued,
		BDDNodes:         w.vitals.bddNodes.Load(),
		GCPauseP99Micros: w.vitals.gcPauseP99.Load(),
		RSSBytes:         obs.ProcessRSSBytes(),
		HeapBytes:        obs.HeapBytes(),
		Goroutines:       runtime.NumGoroutine(),
		NowUnixMicro:     time.Now().UnixMicro(),
	}}, nil
}

// PullProfile implements sidecar.WorkerAPI: capture one pprof profile for
// the centralized harvest. No phaseMu — profiling a wedged phase is the
// whole point. A cpu capture blocks the caller for the capture window and
// single-flights per process (runtime/pprof allows one active CPU
// profile); in-process fleets therefore profile the whole process, not
// one worker goroutine set.
func (w *Worker) PullProfile(req sidecar.PullProfileRequest) (sidecar.PullProfileReply, error) {
	reply := sidecar.PullProfileReply{WorkerID: int(w.vitals.id.Load()), Kind: req.Kind}
	var buf bytes.Buffer
	switch req.Kind {
	case "cpu":
		secs := req.Seconds
		if secs <= 0 {
			secs = 2
		}
		if secs > 30 {
			secs = 30
		}
		w.profileMu.Lock()
		defer w.profileMu.Unlock()
		if err := pprof.StartCPUProfile(&buf); err != nil {
			return reply, fmt.Errorf("core: worker %d cpu profile: %w", reply.WorkerID, err)
		}
		time.Sleep(time.Duration(secs) * time.Second)
		pprof.StopCPUProfile()
	case "heap":
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
			return reply, fmt.Errorf("core: worker %d heap profile: %w", reply.WorkerID, err)
		}
	default:
		return reply, fmt.Errorf("core: unknown profile kind %q (want cpu or heap)", req.Kind)
	}
	w.flight.Record("profile", "%s profile captured: %d bytes", req.Kind, buf.Len())
	reply.Profile = buf.Bytes()
	return reply, nil
}
