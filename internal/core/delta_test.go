package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"s2/internal/config"
	"s2/internal/fault"
)

func copyTexts(texts map[string]string) map[string]string {
	out := make(map[string]string, len(texts))
	for k, v := range texts {
		out[k] = v
	}
	return out
}

// findLine returns the first line of text starting with prefix.
func findLine(t *testing.T, text, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	t.Fatalf("no line with prefix %q in:\n%s", prefix, text)
	return ""
}

// assertColdEquivalent verifies the warm controller's resident state —
// RIBs, route counts, and all-pair answers — is identical to a cold full
// verification of the same texts.
func assertColdEquivalent(t *testing.T, step string, warm *Controller, texts map[string]string, coldOpts Options) {
	t.Helper()
	warmRIBs, err := warm.CollectRIBs()
	if err != nil {
		t.Fatalf("%s: warm RIBs: %v", step, err)
	}
	warmRes, err := warm.CheckAllPairs()
	if err != nil {
		t.Fatalf("%s: warm all-pairs: %v", step, err)
	}
	snap, err := config.ParseTexts(withCfgSuffix(texts))
	if err != nil {
		t.Fatalf("%s: %v", step, err)
	}
	cold := newS2(t, snap, copyTexts(texts), coldOpts)
	defer cold.Close()
	runCP(t, cold)
	if _, err := cold.ComputeDataPlane(); err != nil {
		t.Fatalf("%s: cold compute: %v", step, err)
	}
	coldRIBs, err := cold.CollectRIBs()
	if err != nil {
		t.Fatalf("%s: cold RIBs: %v", step, err)
	}
	coldRes, err := cold.CheckAllPairs()
	if err != nil {
		t.Fatalf("%s: cold all-pairs: %v", step, err)
	}
	if len(warmRIBs) != len(coldRIBs) {
		t.Fatalf("%s: warm has %d RIBs, cold has %d", step, len(warmRIBs), len(coldRIBs))
	}
	for name, coldRIB := range coldRIBs {
		warmRIB := warmRIBs[name]
		if warmRIB == nil {
			t.Fatalf("%s: warm state missing RIB for %s", step, name)
		}
		if !warmRIB.Equal(coldRIB) {
			t.Fatalf("%s: RIB mismatch at %s:\n%s", step, name, coldRIB.Diff(warmRIB))
		}
	}
	if fmt.Sprint(warmRes.Unreached) != fmt.Sprint(coldRes.Unreached) {
		t.Fatalf("%s: unreached mismatch: warm=%v cold=%v", step, warmRes.Unreached, coldRes.Unreached)
	}
	if len(warmRes.Violations) != len(coldRes.Violations) {
		t.Fatalf("%s: violation count mismatch: warm=%d cold=%d",
			step, len(warmRes.Violations), len(coldRes.Violations))
	}
}

// TestDeltaEquivalence is the serving-mode soundness claim: after any
// sequence of deltas — semantic no-ops, data-plane-only edits, origination
// add/remove/revert, policy changes, topology changes, and a device rename
// — the resident state is identical to a cold full verification of the
// final configs, at per-worker parallelism 1 and N.
func TestDeltaEquivalence(t *testing.T) {
	for _, procs := range []int{1, 4} {
		procs := procs
		t.Run(fmt.Sprintf("procs-%d", procs), func(t *testing.T) {
			snap, texts := fatTreeSnap(t, 4)
			opts := Options{Workers: 2, Shards: 4, KeepRIBs: true, Seed: 7, Parallelism: procs}
			warm := newS2(t, snap, copyTexts(texts), opts)
			defer warm.Close()
			runCP(t, warm)
			if _, err := warm.ComputeDataPlane(); err != nil {
				t.Fatal(err)
			}
			if got := warm.Epoch(); got != 1 {
				t.Fatalf("epoch after cold run = %d, want 1", got)
			}

			cur := copyTexts(texts)
			apply := func(step string, set map[string]string, remove []string, wantMode string) *DeltaResult {
				t.Helper()
				before := warm.Epoch()
				res, err := warm.ApplyDelta(set, remove)
				if err != nil {
					t.Fatalf("%s: ApplyDelta: %v", step, err)
				}
				if res.Mode != wantMode {
					t.Fatalf("%s: mode = %q, want %q (result %+v)", step, res.Mode, wantMode, res)
				}
				if res.Epoch <= before {
					t.Fatalf("%s: epoch %d did not advance past %d", step, res.Epoch, before)
				}
				if !warm.Resident() {
					t.Fatalf("%s: state not resident after delta", step)
				}
				assertColdEquivalent(t, step, warm, cur, opts)
				return res
			}

			// 1. Comment-only edit: a semantic no-op, nothing re-runs.
			cur["edge-0-0"] = cur["edge-0-0"] + "!\n! audited\n"
			res := apply("noop", map[string]string{"edge-0-0": cur["edge-0-0"]}, nil, "noop")
			if res.DirtyShards != 0 {
				t.Fatalf("noop: dirty shards = %d, want 0", res.DirtyShards)
			}

			// 2. Description edit: data-plane only, zero shard rounds.
			cur["agg-0-0"] = strings.Replace(cur["agg-0-0"], "description link to", "description uplink to", 1)
			res = apply("dp", map[string]string{"agg-0-0": cur["agg-0-0"]}, nil, "dp")
			if res.DirtyShards != 0 {
				t.Fatalf("dp: dirty shards = %d, want 0", res.DirtyShards)
			}

			// 3. Withdraw an origination: the retired prefix must be purged
			// from every worker's resident RIBs.
			origEdge10 := cur["edge-1-0"]
			netLine := findLine(t, origEdge10, " network ")
			cur["edge-1-0"] = strings.Replace(origEdge10, netLine+"\n", "", 1)
			apply("orig-remove", map[string]string{"edge-1-0": cur["edge-1-0"]}, nil, "shards")

			// 4. Revert it: only the shard holding the re-announced prefix's
			// dependency closure re-runs.
			cur["edge-1-0"] = origEdge10
			res = apply("orig-revert", map[string]string{"edge-1-0": cur["edge-1-0"]}, nil, "shards")
			if res.DirtyShards == 0 || res.DirtyShards >= res.TotalShards {
				t.Fatalf("orig-revert: dirty=%d total=%d, want strict subset > 0",
					res.DirtyShards, res.TotalShards)
			}

			// 5. Policy edit (ECMP limit): every shard is dirty, but the
			// workers are not re-Setup.
			cur["edge-0-1"] = strings.Replace(cur["edge-0-1"], "maximum-paths 64", "maximum-paths 2", 1)
			res = apply("policy", map[string]string{"edge-0-1": cur["edge-0-1"]}, nil, "shards")
			if res.DirtyShards != res.TotalShards {
				t.Fatalf("policy: dirty=%d total=%d, want all dirty", res.DirtyShards, res.TotalShards)
			}

			// 6. Topology edit (new interface + origination): full pipeline.
			netLine00 := findLine(t, cur["edge-0-0"], " network ")
			withIfc := strings.Replace(cur["edge-0-0"],
				"!\nrouter bgp", "interface vlan90\n ip address 10.202.0.1/24\n!\nrouter bgp", 1)
			cur["edge-0-0"] = strings.Replace(withIfc,
				netLine00+"\n", netLine00+"\n network 10.202.0.0/24\n", 1)
			apply("topo", map[string]string{"edge-0-0": cur["edge-0-0"]}, nil, "full")

			// 7. Rename a device: remove + add, full pipeline.
			renamed := strings.Replace(cur["edge-1-1"], "hostname edge-1-1\n", "hostname edge-9-9\n", 1)
			delete(cur, "edge-1-1")
			cur["edge-9-9"] = renamed
			res = apply("rename", map[string]string{"edge-1-1": renamed}, nil, "full")
			if fmt.Sprint(res.Removed) != "[edge-1-1]" || fmt.Sprint(res.Added) != "[edge-9-9]" {
				t.Fatalf("rename: added=%v removed=%v", res.Added, res.Removed)
			}
		})
	}
}

// TestDeltaWorkerCrashRecovers kills one worker mid-delta (on its
// ApplyDelta push); recovery must evict it, re-partition, and fall back to
// a full re-verification whose answers match a cold run.
func TestDeltaWorkerCrashRecovers(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	hook, injp := injectOn(1, fault.Plan{Method: "ApplyDelta", Nth: 1, Mode: fault.Crash})
	opts := Options{
		Workers: 3, Shards: 4, KeepRIBs: true, Seed: 21,
		Recover: true, WrapWorker: hook,
	}
	warm := newS2(t, snap, copyTexts(texts), opts)
	defer warm.Close()
	runCP(t, warm)
	if _, err := warm.ComputeDataPlane(); err != nil {
		t.Fatal(err)
	}

	// A policy edit on every device guarantees every worker — including the
	// doomed one — receives an ApplyDelta push.
	cur := copyTexts(texts)
	set := map[string]string{}
	for name, text := range cur {
		nt := strings.Replace(text, "maximum-paths 64", "maximum-paths 2", 1)
		if nt != text {
			set[name] = nt
			cur[name] = nt
		}
	}
	res, err := warm.ApplyDelta(set, nil)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if *injp == nil || !(*injp).Crashed() {
		t.Fatal("injected crash never triggered")
	}
	if res.Mode != "full" {
		t.Fatalf("mode after mid-delta crash = %q, want full (recovery wipes resident state)", res.Mode)
	}
	fc := warm.FaultCounters()
	if fc.Get("worker.deaths") != 1 {
		t.Fatalf("worker.deaths = %d, want 1 (counters: %s)", fc.Get("worker.deaths"), fc)
	}
	coldOpts := Options{Workers: 3, Shards: 4, KeepRIBs: true, Seed: 21}
	assertColdEquivalent(t, "crash", warm, cur, coldOpts)
}

// TestCloseIdempotentConcurrent: Close must be callable repeatedly and
// concurrently — with itself and with in-flight queries — without panics,
// and a post-Close query must fail cleanly.
func TestCloseIdempotentConcurrent(t *testing.T) {
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{Workers: 2, Shards: 2, KeepRIBs: true, Seed: 3})
	runCP(t, c)
	if _, err := c.ComputeDataPlane(); err != nil {
		t.Fatal(err)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			// Racing a concurrent Close: any error is fine, panics are not.
			c.CheckAllPairs()
			c.CollectRIBs()
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := c.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Errorf("Close after Close: %v", err)
	}
	if _, err := c.CheckAllPairs(); err == nil {
		t.Error("query after Close should fail")
	}
	if _, err := c.ApplyDelta(nil, nil); err == nil {
		t.Error("delta after Close should fail")
	}
}
