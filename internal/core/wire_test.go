package core

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"s2/internal/obs"
	"s2/internal/sidecar"
)

// wireRun executes a full 3-worker fat-tree run and returns the two
// determinism fingerprints plus the metrics snapshot.
func wireRun(t *testing.T, procs int, noWire bool, hook func(int, sidecar.WorkerAPI) sidecar.WorkerAPI) (string, string, map[string]float64) {
	t.Helper()
	reg := obs.NewRegistry()
	snap, texts := fatTreeSnap(t, 4)
	c := newS2(t, snap, texts, Options{
		Workers: 3, Seed: 1, KeepRIBs: true,
		Parallelism:      procs,
		DisableWireDedup: noWire,
		WrapWorker:       hook,
		Metrics:          reg,
	})
	defer c.Close()
	res := runFull(t, c)
	ribs, err := c.CollectRIBs()
	if err != nil {
		t.Fatal(err)
	}
	return ribsFingerprint(ribs), checkFingerprint(c, res), reg.Snapshot()
}

// wireByteSum totals s2_wire_packet_bytes_total across workers for one
// encoding mode.
func wireByteSum(snap map[string]float64, mode string) float64 {
	total := 0.0
	for k, v := range snap {
		if strings.HasPrefix(k, MetricWireBytes) && strings.Contains(k, `mode="`+mode+`"`) {
			total += v
		}
	}
	return total
}

func wireDedupSum(snap map[string]float64) float64 {
	total := 0.0
	for k, v := range snap {
		if strings.HasPrefix(k, MetricWireDeduped) {
			total += v
		}
	}
	return total
}

// TestWireDedupRunIsByteIdentical is the determinism contract for the
// shared-substrate wire codec: runs with and without dedup — sequential
// and pooled — must produce byte-identical RIBs and verification
// outcomes, while the dedup runs move strictly fewer payload bytes.
func TestWireDedupRunIsByteIdentical(t *testing.T) {
	baseRIBs, baseCheck, offSnap := wireRun(t, 1, true, nil)
	if !strings.Contains(baseRIBs, "node edge-0-0") {
		t.Fatalf("baseline fingerprint looks empty:\n%.200s", baseRIBs)
	}
	offBytes := wireByteSum(offSnap, "packet")
	if offBytes == 0 {
		t.Fatal("dedup-off run recorded no packet-mode bytes")
	}
	if got := wireByteSum(offSnap, "wire"); got != 0 {
		t.Fatalf("dedup-off run recorded %v wire-mode bytes", got)
	}

	for _, procs := range []int{1, 8} {
		ribs, check, snap := wireRun(t, procs, false, nil)
		if ribs != baseRIBs {
			t.Errorf("procs=%d: RIBs differ between dedup on and off", procs)
		}
		if check != baseCheck {
			t.Errorf("procs=%d: verification outcomes differ:\noff:\n%s\non:\n%s", procs, baseCheck, check)
		}
		onBytes := wireByteSum(snap, "wire")
		if onBytes == 0 {
			t.Errorf("procs=%d: dedup-on run recorded no wire-mode bytes", procs)
		}
		if got := wireByteSum(snap, "packet"); got != 0 {
			t.Errorf("procs=%d: dedup-on run fell back to packet mode for %v bytes", procs, got)
		}
		if onBytes >= offBytes {
			t.Errorf("procs=%d: wire encoding moved %v bytes, not fewer than per-packet %v", procs, onBytes, offBytes)
		}
		if wireDedupSum(snap) == 0 {
			t.Errorf("procs=%d: dedup counter never moved", procs)
		}
	}
}

// noWirePeer simulates an older worker binary: DeliverBatch answers with
// net/rpc's unknown-method error, everything else passes through.
type noWirePeer struct {
	sidecar.WorkerAPI
	mu    *sync.Mutex
	calls *int
}

func (n *noWirePeer) DeliverBatch(sidecar.DeliverBatchRequest) (sidecar.DeliverBatchReply, error) {
	n.mu.Lock()
	*n.calls++
	n.mu.Unlock()
	return sidecar.DeliverBatchReply{}, errors.New("rpc: can't find method Sidecar.DeliverBatch")
}

// TestWireFallbackToLegacyPeer: when a peer predates DeliverBatch, the
// sender must detect the rejection once, mark the peer, and fall back to
// per-packet deliveries without changing any result.
func TestWireFallbackToLegacyPeer(t *testing.T) {
	baseRIBs, baseCheck, _ := wireRun(t, 1, true, nil)

	var mu sync.Mutex
	calls := 0
	hook := func(_ int, w sidecar.WorkerAPI) sidecar.WorkerAPI {
		return &noWirePeer{WorkerAPI: w, mu: &mu, calls: &calls}
	}
	ribs, check, snap := wireRun(t, 1, false, hook)
	if ribs != baseRIBs {
		t.Error("RIBs differ after legacy-peer fallback")
	}
	if check != baseCheck {
		t.Errorf("verification outcomes differ after fallback:\nwant:\n%s\ngot:\n%s", baseCheck, check)
	}
	mu.Lock()
	attempts := calls
	mu.Unlock()
	if attempts == 0 {
		t.Fatal("DeliverBatch was never attempted")
	}
	// One rejection per (sender, peer) pair at most: the mark sticks.
	if attempts > 3*2 {
		t.Errorf("DeliverBatch attempted %d times; peers were not marked as legacy", attempts)
	}
	if got := wireByteSum(snap, "packet"); got == 0 {
		t.Error("fallback run recorded no packet-mode bytes")
	}
}

// resetOncePeer refuses the first DeliverBatch with a Reset reply — the
// receiver claiming it lost the session — without delivering it. The
// sender must bump its epoch and re-send self-contained; no packet may be
// lost and no result may change.
type resetOncePeer struct {
	sidecar.WorkerAPI
	mu    *sync.Mutex
	fired *bool
}

func (p *resetOncePeer) DeliverBatch(req sidecar.DeliverBatchRequest) (sidecar.DeliverBatchReply, error) {
	p.mu.Lock()
	first := !*p.fired
	*p.fired = true
	p.mu.Unlock()
	if first {
		return sidecar.DeliverBatchReply{Reset: true}, nil
	}
	return p.WorkerAPI.DeliverBatch(req)
}

func TestWireSessionResetHandshakeEndToEnd(t *testing.T) {
	baseRIBs, baseCheck, _ := wireRun(t, 1, true, nil)

	var mu sync.Mutex
	fired := false
	hook := func(_ int, w sidecar.WorkerAPI) sidecar.WorkerAPI {
		return &resetOncePeer{WorkerAPI: w, mu: &mu, fired: &fired}
	}
	ribs, check, _ := wireRun(t, 1, false, hook)
	mu.Lock()
	hit := fired
	mu.Unlock()
	if !hit {
		t.Fatal("the resetting peer never saw a DeliverBatch")
	}
	if ribs != baseRIBs || check != baseCheck {
		t.Error("results changed after a forced wire-session reset")
	}
}
