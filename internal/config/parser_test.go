package config

import (
	"strings"
	"testing"

	"s2/internal/route"
)

const sampleConfig = `! vendor: bravo
hostname edge-0-0
!
interface eth0
 description link to agg-0-0
 ip address 10.0.0.1/31
 ip ospf cost 10
 ip access-group ACL_IN in
!
interface eth1
 ip address 10.0.0.3/31
 shutdown
!
interface lo0
 ip address 192.168.0.1/32
!
ip route 0.0.0.0/0 10.0.0.0
ip route 10.99.0.0/24 null0
!
router bgp 65001
 router-id 1.0.0.1
 maximum-paths 64
 network 10.8.0.0/24
 aggregate-address 10.8.0.0/21 summary-only attribute-map AGG_MAP
 redistribute connected route-map RED_CONN
 neighbor 10.0.0.0 remote-as 65100
 neighbor 10.0.0.0 route-map IMPORT in
 neighbor 10.0.0.0 route-map EXPORT out
 neighbor 10.0.0.0 remove-private-as
 neighbor 10.0.0.2 remote-as 65101
 neighbor 10.0.0.2 allowas-in
!
router ospf 1
 router-id 1.0.0.1
 maximum-paths 8
 network 10.0.0.0/31 area 0
 passive-interface lo0
!
ip prefix-list PL_LOOP seq 10 permit 192.168.0.0/16 ge 32
ip prefix-list PL_LOOP seq 20 deny 0.0.0.0/0 le 32
!
ip community-list standard CL_AGG permit 65000:100
!
ip as-path access-list AP_PRIV permit _65001_
!
route-map IMPORT permit 10
 match ip address prefix-list PL_LOOP
 set local-preference 200
route-map IMPORT permit 20
!
route-map EXPORT permit 10
 match community CL_AGG
 match as-path AP_PRIV
 set community 65000:100 65000:200 additive
 set metric 50
 set as-path prepend 65001 65001
route-map EXPORT deny 99
!
route-map AGG_MAP permit 10
 set community 65000:300
 set origin igp
!
route-map RED_CONN permit 10
 set as-path overwrite 65001
 set comm-list CL_AGG delete
!
ip access-list ACL_IN
 permit tcp 10.0.0.0/8 any eq 80
 permit ip any 10.8.0.0/24
 deny ip any any
`

func parseSample(t *testing.T) *Device {
	t.Helper()
	dev, err := Parse("edge-0-0.cfg", sampleConfig)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return dev
}

func TestParseBasics(t *testing.T) {
	dev := parseSample(t)
	if dev.Hostname != "edge-0-0" {
		t.Errorf("hostname = %q", dev.Hostname)
	}
	if dev.Vendor != VendorBravo {
		t.Errorf("vendor = %q", dev.Vendor)
	}
	if len(dev.Interfaces) != 3 {
		t.Fatalf("interfaces = %d, want 3", len(dev.Interfaces))
	}
	eth0 := dev.Interfaces["eth0"]
	if eth0.IP != route.MustParseAddr("10.0.0.1") {
		t.Error("eth0 IP")
	}
	if eth0.Subnet != route.MustParsePrefix("10.0.0.0/31") {
		t.Errorf("eth0 subnet = %v", eth0.Subnet)
	}
	if eth0.OSPFCost != 10 || eth0.InACL != "ACL_IN" || eth0.Description != "link to agg-0-0" {
		t.Error("eth0 attributes")
	}
	if !dev.Interfaces["eth1"].Shutdown {
		t.Error("eth1 should be shutdown")
	}
	if len(dev.StaticRoutes) != 2 || !dev.StaticRoutes[1].Drop {
		t.Errorf("static routes = %+v", dev.StaticRoutes)
	}
}

func TestParseBGP(t *testing.T) {
	b := parseSample(t).BGP
	if b == nil {
		t.Fatal("no BGP config")
	}
	if b.ASN != 65001 || b.RouterID != route.MustParseAddr("1.0.0.1") || b.MaxPaths != 64 {
		t.Error("BGP process attributes")
	}
	if len(b.Networks) != 1 || b.Networks[0] != route.MustParsePrefix("10.8.0.0/24") {
		t.Error("networks")
	}
	if len(b.Aggregates) != 1 {
		t.Fatal("aggregates")
	}
	agg := b.Aggregates[0]
	if agg.Prefix != route.MustParsePrefix("10.8.0.0/21") || !agg.SummaryOnly || agg.AttributeMap != "AGG_MAP" {
		t.Errorf("aggregate = %+v", agg)
	}
	if len(b.Redistribute) != 1 || b.Redistribute[0].Source != "connected" || b.Redistribute[0].RouteMap != "RED_CONN" {
		t.Error("redistribute")
	}
	if len(b.Neighbors) != 2 {
		t.Fatal("neighbors")
	}
	n := b.Neighbors[route.MustParseAddr("10.0.0.0")]
	if n.RemoteAS != 65100 || n.ImportPolicy != "IMPORT" || n.ExportPolicy != "EXPORT" || !n.RemovePrivateAS {
		t.Errorf("neighbor = %+v", n)
	}
	n2 := b.Neighbors[route.MustParseAddr("10.0.0.2")]
	if !n2.AllowASIn || n2.RemoteAS != 65101 {
		t.Errorf("neighbor2 = %+v", n2)
	}
	sorted := b.SortedNeighbors()
	if len(sorted) != 2 || sorted[0].PeerIP > sorted[1].PeerIP {
		t.Error("SortedNeighbors ordering")
	}
}

func TestParseOSPF(t *testing.T) {
	o := parseSample(t).OSPF
	if o == nil {
		t.Fatal("no OSPF config")
	}
	if o.ProcessID != 1 || o.MaxPaths != 8 || len(o.Networks) != 1 || !o.Passive["lo0"] {
		t.Errorf("ospf = %+v", o)
	}
}

func TestParsePolicyObjects(t *testing.T) {
	dev := parseSample(t)
	pl := dev.PrefixLists["PL_LOOP"]
	if pl == nil || len(pl.Entries) != 2 {
		t.Fatal("prefix list")
	}
	if !pl.Permits(route.MustParsePrefix("192.168.0.1/32")) {
		t.Error("PL_LOOP should permit /32 loopback")
	}
	if pl.Permits(route.MustParsePrefix("192.168.0.0/24")) {
		t.Error("PL_LOOP should deny /24 (ge 32)")
	}
	if pl.Permits(route.MustParsePrefix("10.0.0.0/8")) {
		t.Error("fallthrough entry denies")
	}

	cl := dev.CommunityLists["CL_AGG"]
	has := func(c route.Community) bool { return c == route.MakeCommunity(65000, 100) }
	if !cl.Permits(has) {
		t.Error("community list should permit")
	}
	if cl.Permits(func(route.Community) bool { return false }) {
		t.Error("community list implicit deny")
	}

	ap := dev.ASPathLists["AP_PRIV"]
	if !ap.Permits([]uint32{65100, 65001}) || ap.Permits([]uint32{65100}) {
		t.Error("as-path list")
	}

	rm := dev.RouteMaps["EXPORT"]
	if len(rm.Clauses) != 2 || rm.Clauses[0].Seq != 10 || rm.Clauses[1].Action != Deny {
		t.Fatal("EXPORT clauses")
	}
	c0 := rm.Clauses[0]
	if len(c0.Matches) != 2 || len(c0.Sets) != 3 {
		t.Fatalf("EXPORT clause 10: %d matches %d sets", len(c0.Matches), len(c0.Sets))
	}
	if c0.Sets[0].Kind != SetCommunity || !c0.Sets[0].Additive || len(c0.Sets[0].Communities) != 2 {
		t.Error("set community additive")
	}
	if c0.Sets[2].Kind != SetASPathPrepend || len(c0.Sets[2].Prepend) != 2 {
		t.Error("set as-path prepend")
	}
	red := dev.RouteMaps["RED_CONN"].Clauses[0]
	if red.Sets[0].Kind != SetASPathOverwrite || red.Sets[0].Value != 65001 {
		t.Error("set as-path overwrite")
	}
	if red.Sets[1].Kind != SetCommunityDelete || red.Sets[1].Name != "CL_AGG" {
		t.Error("set comm-list delete")
	}
}

func TestParseACL(t *testing.T) {
	acl := parseSample(t).ACLs["ACL_IN"]
	if acl == nil || len(acl.Entries) != 3 {
		t.Fatal("acl entries")
	}
	e0 := acl.Entries[0]
	if e0.Proto != 6 || e0.Src != route.MustParsePrefix("10.0.0.0/8") ||
		e0.DstPortLo != 80 || e0.DstPortHi != 80 || e0.Dst.Len != 0 {
		t.Errorf("tcp entry = %+v", e0)
	}
	if !acl.Entries[2].MatchesAny() || acl.Entries[2].Action != Deny {
		t.Error("final deny ip any any")
	}
	if acl.Entries[1].MatchesAny() {
		t.Error("constrained entry must not MatchesAny")
	}
}

func TestParseErrorsCollected(t *testing.T) {
	bad := `hostname h
bogus command here
interface eth0
 ip address notanip/24
router bgp abc
ip prefix-list X seq y permit 10.0.0.0/8
`
	dev, err := Parse("h.cfg", bad)
	if err == nil {
		t.Fatal("expected errors")
	}
	es, ok := err.(ParseErrors)
	if !ok || len(es) < 4 {
		t.Fatalf("want >=4 collected errors, got %v", err)
	}
	if dev.Hostname != "h" {
		t.Error("good lines should still parse")
	}
	if !strings.Contains(es.Error(), "more errors") {
		t.Errorf("aggregate error message: %q", es.Error())
	}
	for _, e := range es {
		if e.File != "h.cfg" || e.Line == 0 {
			t.Errorf("error missing location: %+v", e)
		}
	}
}

func TestValidateUndefinedReferences(t *testing.T) {
	cfg := `hostname h
router bgp 65000
 neighbor 10.0.0.1 remote-as 65001
 neighbor 10.0.0.1 route-map NOPE in
route-map RM permit 10
 match ip address prefix-list MISSING
`
	_, err := Parse("h.cfg", cfg)
	if err == nil {
		t.Fatal("expected validation errors")
	}
	msg := err.(ParseErrors).Error()
	if !strings.Contains(msg, "NOPE") && !strings.Contains(msg, "MISSING") {
		t.Errorf("validation errors should name the missing object: %v", err)
	}
}

func TestParseTexts(t *testing.T) {
	snap, err := ParseTexts(map[string]string{
		"a.cfg": "hostname a\n",
		"b.cfg": "hostname b\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.DeviceNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("DeviceNames = %v", got)
	}
	// Duplicate hostname across files is an error.
	_, err = ParseTexts(map[string]string{"a.cfg": "hostname x\n", "b.cfg": "hostname x\n"})
	if err == nil || !strings.Contains(err.Error(), "duplicate hostname") {
		t.Errorf("duplicate hostnames should fail: %v", err)
	}
}

func TestParseDirectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDirectory(dir, map[string]string{"r1": "hostname r1\n", "r2": "hostname r2\n"}); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseDirectory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Devices) != 2 {
		t.Fatalf("devices = %d", len(snap.Devices))
	}
	if _, err := ParseDirectory(t.TempDir()); err == nil {
		t.Error("empty directory should error")
	}
}

func TestInterfaceForAddr(t *testing.T) {
	dev := parseSample(t)
	ifc := dev.InterfaceForAddr(route.MustParseAddr("10.0.0.0"))
	if ifc == nil || ifc.Name != "eth0" {
		t.Fatalf("InterfaceForAddr = %v", ifc)
	}
	// Shutdown interface must not resolve.
	if got := dev.InterfaceForAddr(route.MustParseAddr("10.0.0.2")); got != nil {
		t.Errorf("shutdown interface resolved: %v", got)
	}
	if dev.InterfaceForAddr(route.MustParseAddr("99.99.99.99")) != nil {
		t.Error("unconnected address resolved")
	}
}

func TestConnectedPrefixes(t *testing.T) {
	dev := parseSample(t)
	got := dev.ConnectedPrefixes()
	// eth1 is shutdown, so only eth0's /31 and lo0's /32.
	if len(got) != 2 {
		t.Fatalf("ConnectedPrefixes = %v", got)
	}
	if got[0] != route.MustParsePrefix("10.0.0.0/31") || got[1] != route.MustParsePrefix("192.168.0.1/32") {
		t.Errorf("ConnectedPrefixes = %v", got)
	}
}

func TestParseConditionalAdvertisement(t *testing.T) {
	cfg := `hostname r2
interface eth0
 ip address 10.0.0.0/31
ip prefix-list PL_B seq 10 permit 172.16.0.0/16
ip prefix-list PL_P seq 10 permit 10.8.0.0/24
route-map ADV permit 10
 match ip address prefix-list PL_B
router bgp 65002
 neighbor 10.0.0.1 remote-as 65003
 neighbor 10.0.0.1 advertise-map ADV non-exist-map PL_P
`
	dev, err := Parse("r2.cfg", cfg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n := dev.BGP.Neighbors[route.MustParseAddr("10.0.0.1")]
	if n.AdvertiseMap != "ADV" || n.ConditionList != "PL_P" || !n.ConditionAbsence {
		t.Fatalf("neighbor = %+v", n)
	}

	// exist-map variant.
	cfg2 := strings.Replace(cfg, "non-exist-map", "exist-map", 1)
	dev2, err := Parse("r2.cfg", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if dev2.BGP.Neighbors[route.MustParseAddr("10.0.0.1")].ConditionAbsence {
		t.Fatal("exist-map must not set ConditionAbsence")
	}

	// Undefined references are validation errors.
	bad := strings.Replace(cfg, "PL_P\n", "MISSING\n", 1)
	if _, err := Parse("r2.cfg", bad); err == nil {
		t.Fatal("undefined condition prefix-list must fail validation")
	}
	// Bad syntax.
	worse := strings.Replace(cfg, "non-exist-map", "sometimes-map", 1)
	if _, err := Parse("r2.cfg", worse); err == nil {
		t.Fatal("bad advertise-map syntax must fail")
	}
}
