package config

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Snapshot is a parsed set of device configurations keyed by hostname —
// the vendor-independent network model the controller's parser produces.
type Snapshot struct {
	Devices map[string]*Device
}

// DeviceNames returns hostnames in sorted order.
func (s *Snapshot) DeviceNames() []string {
	names := make([]string, 0, len(s.Devices))
	for n := range s.Devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseTexts parses a set of configuration texts keyed by filename. All
// files are parsed even when some fail; the error aggregates every problem.
func ParseTexts(texts map[string]string) (*Snapshot, error) {
	snap := &Snapshot{Devices: make(map[string]*Device, len(texts))}
	var all ParseErrors
	names := make([]string, 0, len(texts))
	for n := range texts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		dev, err := Parse(name, texts[name])
		if err != nil {
			if es, ok := err.(ParseErrors); ok {
				all = append(all, es...)
			} else {
				all = append(all, &ParseError{File: name, Msg: err.Error()})
			}
		}
		if dev == nil {
			continue
		}
		if prev, dup := snap.Devices[dev.Hostname]; dup {
			all = append(all, &ParseError{File: name,
				Msg: fmt.Sprintf("duplicate hostname %q (also defined in another file: %v)", dev.Hostname, prev.Hostname)})
			continue
		}
		snap.Devices[dev.Hostname] = dev
	}
	if len(all) > 0 {
		return snap, all
	}
	return snap, nil
}

// ParseDirectory parses every *.cfg file in dir.
func ParseDirectory(dir string) (*Snapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("config: reading %s: %w", dir, err)
	}
	texts := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".cfg") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("config: reading %s: %w", e.Name(), err)
		}
		texts[e.Name()] = string(data)
	}
	if len(texts) == 0 {
		return nil, fmt.Errorf("config: no .cfg files in %s", dir)
	}
	return ParseTexts(texts)
}

// WriteDirectory writes configuration texts (hostname → config text) as
// hostname.cfg files under dir, creating it if needed. Synthesis tools use
// this so generated networks round-trip through the real parser.
func WriteDirectory(dir string, texts map[string]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, text := range texts {
		if err := os.WriteFile(filepath.Join(dir, name+".cfg"), []byte(text), 0o644); err != nil {
			return err
		}
	}
	return nil
}
