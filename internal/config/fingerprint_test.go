package config

import (
	"testing"
)

const fpBase = `hostname r1
!
interface eth0
 ip address 10.0.0.0/31
 description link to r2
interface vlan10
 ip address 10.128.0.1/24
!
router bgp 65001
 router-id 1.0.0.1
 maximum-paths 4
 network 10.128.0.0/24
 neighbor 10.0.0.1 remote-as 65002
`

func parseOne(t *testing.T, text string) *Device {
	t.Helper()
	dev, err := Parse("r1.cfg", text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return dev
}

func TestFingerprintStable(t *testing.T) {
	a := DeviceFingerprint(parseOne(t, fpBase))
	b := DeviceFingerprint(parseOne(t, fpBase))
	if !a.Equal(b) {
		t.Fatalf("same text fingerprinted differently: %+v vs %+v", a, b)
	}
}

func TestFingerprintIgnoresCommentsAndWhitespace(t *testing.T) {
	noisy := "! leading comment\nhostname r1\n!\n! another comment\ninterface eth0\n ip address 10.0.0.0/31\n description link to r2\n\n\ninterface vlan10\n ip address 10.128.0.1/24\n!\nrouter bgp 65001\n router-id 1.0.0.1\n maximum-paths 4\n network 10.128.0.0/24\n neighbor 10.0.0.1 remote-as 65002\n!\n"
	a := DeviceFingerprint(parseOne(t, fpBase))
	b := DeviceFingerprint(parseOne(t, noisy))
	if !a.Equal(b) {
		t.Fatalf("comment/whitespace edit changed fingerprint: %+v vs %+v", a, b)
	}
}

// TestFingerprintClassification drives one edit per section and checks the
// resulting class.
func TestFingerprintClassification(t *testing.T) {
	cases := []struct {
		name string
		edit string // replacement full config text
		want DeltaClass
	}{
		{
			name: "identical",
			edit: fpBase,
			want: DeltaNone,
		},
		{
			name: "description-only is dp",
			edit: "hostname r1\n!\ninterface eth0\n ip address 10.0.0.0/31\n description RENAMED LINK\ninterface vlan10\n ip address 10.128.0.1/24\n!\nrouter bgp 65001\n router-id 1.0.0.1\n maximum-paths 4\n network 10.128.0.0/24\n neighbor 10.0.0.1 remote-as 65002\n",
			want: DeltaDP,
		},
		{
			name: "acl binding is dp",
			edit: "hostname r1\n!\ninterface eth0\n ip address 10.0.0.0/31\n description link to r2\ninterface vlan10\n ip address 10.128.0.1/24\n ip access-group BLOCK out\n!\nip access-list BLOCK\n deny ip any 10.128.0.0/24\n permit ip any any\n!\nrouter bgp 65001\n router-id 1.0.0.1\n maximum-paths 4\n network 10.128.0.0/24\n neighbor 10.0.0.1 remote-as 65002\n",
			want: DeltaDP,
		},
		{
			name: "network statement is orig",
			edit: "hostname r1\n!\ninterface eth0\n ip address 10.0.0.0/31\n description link to r2\ninterface vlan10\n ip address 10.128.0.1/24\n!\nrouter bgp 65001\n router-id 1.0.0.1\n maximum-paths 4\n network 10.128.0.0/25\n neighbor 10.0.0.1 remote-as 65002\n",
			want: DeltaOrig,
		},
		{
			name: "maximum-paths is policy",
			edit: "hostname r1\n!\ninterface eth0\n ip address 10.0.0.0/31\n description link to r2\ninterface vlan10\n ip address 10.128.0.1/24\n!\nrouter bgp 65001\n router-id 1.0.0.1\n maximum-paths 8\n network 10.128.0.0/24\n neighbor 10.0.0.1 remote-as 65002\n",
			want: DeltaPolicy,
		},
		{
			name: "interface address is topo",
			edit: "hostname r1\n!\ninterface eth0\n ip address 10.0.0.2/31\n description link to r2\ninterface vlan10\n ip address 10.128.0.1/24\n!\nrouter bgp 65001\n router-id 1.0.0.1\n maximum-paths 4\n network 10.128.0.0/24\n neighbor 10.0.0.1 remote-as 65002\n",
			want: DeltaTopo,
		},
		{
			name: "neighbor remote-as is topo",
			edit: "hostname r1\n!\ninterface eth0\n ip address 10.0.0.0/31\n description link to r2\ninterface vlan10\n ip address 10.128.0.1/24\n!\nrouter bgp 65001\n router-id 1.0.0.1\n maximum-paths 4\n network 10.128.0.0/24\n neighbor 10.0.0.1 remote-as 65003\n",
			want: DeltaTopo,
		},
	}
	base := DeviceFingerprint(parseOne(t, fpBase))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Classify(base, DeviceFingerprint(parseOne(t, tc.edit)))
			if got != tc.want {
				t.Fatalf("class = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestDiffSnapshots covers add/modify/remove/rename at the snapshot level.
func TestDiffSnapshots(t *testing.T) {
	mk := func(texts map[string]string) *Snapshot {
		t.Helper()
		files := map[string]string{}
		for n, txt := range texts {
			files[n+".cfg"] = txt
		}
		snap, err := ParseTexts(files)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return snap
	}
	r1 := fpBase
	r2 := "hostname r2\n!\ninterface eth0\n ip address 10.0.0.1/31\n!\nrouter bgp 65002\n router-id 1.0.0.2\n neighbor 10.0.0.0 remote-as 65001\n"
	r2mod := "hostname r2\n!\ninterface eth0\n ip address 10.0.0.1/31\n!\nrouter bgp 65002\n router-id 1.0.0.2\n maximum-paths 2\n neighbor 10.0.0.0 remote-as 65001\n"
	r3 := "hostname r3\n!\ninterface eth0\n ip address 10.0.2.1/31\n"

	old := mk(map[string]string{"r1": r1, "r2": r2})

	t.Run("no change", func(t *testing.T) {
		d := DiffSnapshots(old, mk(map[string]string{"r1": r1, "r2": r2}))
		if !d.Empty() || d.Class() != DeltaNone {
			t.Fatalf("expected empty diff, got %+v", d)
		}
	})
	t.Run("modify", func(t *testing.T) {
		d := DiffSnapshots(old, mk(map[string]string{"r1": r1, "r2": r2mod}))
		if len(d.Added)+len(d.Removed) != 0 || d.Changed["r2"] != DeltaPolicy {
			t.Fatalf("expected r2 policy change, got %+v", d)
		}
		if d.Class() != DeltaPolicy {
			t.Fatalf("class = %v, want policy", d.Class())
		}
	})
	t.Run("add", func(t *testing.T) {
		d := DiffSnapshots(old, mk(map[string]string{"r1": r1, "r2": r2, "r3": r3}))
		if len(d.Added) != 1 || d.Added[0] != "r3" || len(d.Removed) != 0 {
			t.Fatalf("expected r3 added, got %+v", d)
		}
		if d.Class() != DeltaTopo {
			t.Fatalf("device add must classify topo, got %v", d.Class())
		}
	})
	t.Run("remove", func(t *testing.T) {
		d := DiffSnapshots(old, mk(map[string]string{"r1": r1}))
		if len(d.Removed) != 1 || d.Removed[0] != "r2" {
			t.Fatalf("expected r2 removed, got %+v", d)
		}
		if d.Class() != DeltaTopo {
			t.Fatalf("device remove must classify topo, got %v", d.Class())
		}
	})
	t.Run("rename", func(t *testing.T) {
		renamed := "hostname r9\n!\ninterface eth0\n ip address 10.0.0.1/31\n!\nrouter bgp 65002\n router-id 1.0.0.2\n neighbor 10.0.0.0 remote-as 65001\n"
		d := DiffSnapshots(old, mk(map[string]string{"r1": r1, "r9": renamed}))
		if len(d.Added) != 1 || d.Added[0] != "r9" || len(d.Removed) != 1 || d.Removed[0] != "r2" {
			t.Fatalf("expected rename as remove+add, got %+v", d)
		}
	})
}
