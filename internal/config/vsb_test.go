package config

import (
	"reflect"
	"testing"
)

func TestParseVendor(t *testing.T) {
	for _, v := range []string{"alpha", "bravo", "charlie", "delta", "echo"} {
		got, err := ParseVendor(v)
		if err != nil || string(got) != v {
			t.Errorf("ParseVendor(%q) = %v, %v", v, got, err)
		}
	}
	if _, err := ParseVendor("cisco"); err == nil {
		t.Error("unknown vendor should error")
	}
}

func TestVendorBehavioursDiffer(t *testing.T) {
	// The whole point of VSBs: at least two vendors must disagree on
	// remove-private-as semantics (the paper's example).
	if VendorAlpha.Behaviours().RemovePrivateASAll == VendorBravo.Behaviours().RemovePrivateASAll {
		t.Error("alpha and bravo should differ on remove-private-as")
	}
	if Vendor("unknown").Behaviours() != VendorAlpha.Behaviours() {
		t.Error("unknown vendor defaults to alpha semantics")
	}
}

func TestIsPrivateASN(t *testing.T) {
	cases := map[uint32]bool{
		64511:      false,
		64512:      true,
		65534:      true,
		65535:      false,
		65001:      true,
		100:        false,
		4199999999: false,
		4200000000: true,
		4294967294: true,
		4294967295: false,
	}
	for asn, want := range cases {
		if IsPrivateASN(asn) != want {
			t.Errorf("IsPrivateASN(%d) = %v, want %v", asn, !want, want)
		}
	}
}

func TestStripPrivateASNs(t *testing.T) {
	path := []uint32{65001, 65002, 100, 65003, 200}
	gotAll := StripPrivateASNs(path, true)
	if !reflect.DeepEqual(gotAll, []uint32{100, 200}) {
		t.Errorf("all: %v", gotAll)
	}
	gotLeading := StripPrivateASNs(path, false)
	if !reflect.DeepEqual(gotLeading, []uint32{100, 65003, 200}) {
		t.Errorf("leading: %v", gotLeading)
	}
	// Input must be unmodified.
	if path[0] != 65001 {
		t.Error("input mutated")
	}
	// All-private path.
	if got := StripPrivateASNs([]uint32{65001, 65002}, false); len(got) != 0 {
		t.Errorf("all-private leading: %v", got)
	}
	if got := StripPrivateASNs(nil, true); len(got) != 0 {
		t.Errorf("nil path: %v", got)
	}
}
