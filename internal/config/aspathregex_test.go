package config

import "testing"

func TestASPathRegexMatch(t *testing.T) {
	cases := []struct {
		expr string
		path []uint32
		want bool
	}{
		{"_65001_", []uint32{65001}, true},
		{"_65001_", []uint32{100, 65001, 200}, true},
		{"_65001_", []uint32{165001}, false},
		{"_65001_", []uint32{65001100}, false},
		{"^65001", []uint32{65001, 200}, true},
		{"^65001", []uint32{200, 65001}, false},
		{"65001$", []uint32{200, 65001}, true},
		{"65001$", []uint32{65001, 200}, false},
		{"^$", nil, true},
		{"^$", []uint32{1}, false},
		{".*", []uint32{1, 2, 3}, true},
		{"_6500[0-9]_", []uint32{65007}, true},
		{"_6500[0-9]_", []uint32{65017}, false},
		{"^65001 65002$", []uint32{65001, 65002}, true},
		{"_65001_65002_", []uint32{65001, 65002}, true},
		{"_65001_65002_", []uint32{65001, 99, 65002}, false},
	}
	for _, c := range cases {
		re, err := CompileASPathRegex(c.expr)
		if err != nil {
			t.Fatalf("compile %q: %v", c.expr, err)
		}
		if got := re.Match(c.path); got != c.want {
			t.Errorf("%q on %v = %v, want %v", c.expr, c.path, got, c.want)
		}
		if re.String() != c.expr {
			t.Errorf("String() = %q", re.String())
		}
	}
}

func TestASPathRegexCompileError(t *testing.T) {
	if _, err := CompileASPathRegex("[unclosed"); err == nil {
		t.Error("invalid regex should fail to compile")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCompileASPathRegex should panic on bad input")
		}
	}()
	MustCompileASPathRegex("[unclosed")
}

func TestFormatASPath(t *testing.T) {
	if got := FormatASPath(nil); got != "" {
		t.Errorf("empty path = %q", got)
	}
	if got := FormatASPath([]uint32{65001, 100}); got != "65001 100" {
		t.Errorf("path = %q", got)
	}
}
