package config

import "fmt"

// Vendor identifies a synthetic vendor dialect. The paper's DCN mixes
// switches from 5+ vendors whose protocol implementations differ (§2.3);
// we model five vendors whose shared syntax hides diverging semantics.
type Vendor string

const (
	VendorAlpha   Vendor = "alpha"
	VendorBravo   Vendor = "bravo"
	VendorCharlie Vendor = "charlie"
	VendorDelta   Vendor = "delta"
	VendorEcho    Vendor = "echo"
)

// ParseVendor validates a vendor name.
func ParseVendor(s string) (Vendor, error) {
	switch Vendor(s) {
	case VendorAlpha, VendorBravo, VendorCharlie, VendorDelta, VendorEcho:
		return Vendor(s), nil
	}
	return "", fmt.Errorf("config: unknown vendor %q", s)
}

// VSB captures the vendor-specific behaviours that change routing semantics
// without changing configuration syntax. The remove-private-as divergence is
// the paper's own example (§2.1): "switches of some vendors will remove all
// private AS numbers, while those of other vendors only remove those private
// AS numbers preceding the first non-private one".
type VSB struct {
	// RemovePrivateASAll removes every private ASN from the AS path on
	// export; when false only the leading run of private ASNs is removed.
	RemovePrivateASAll bool
	// MissingMEDWorst treats a missing (zero) MED as the worst value
	// during best-path selection instead of the best.
	MissingMEDWorst bool
	// ECMPRequiresSameNeighborAS restricts BGP multipath to routes
	// learned from the same neighbouring AS.
	ECMPRequiresSameNeighborAS bool
	// DefaultOriginIncomplete marks redistributed routes with origin
	// INCOMPLETE instead of IGP.
	DefaultOriginIncomplete bool
}

// vsbTable fixes each vendor's behaviours.
var vsbTable = map[Vendor]VSB{
	VendorAlpha:   {RemovePrivateASAll: true, MissingMEDWorst: false, ECMPRequiresSameNeighborAS: false, DefaultOriginIncomplete: true},
	VendorBravo:   {RemovePrivateASAll: false, MissingMEDWorst: false, ECMPRequiresSameNeighborAS: false, DefaultOriginIncomplete: true},
	VendorCharlie: {RemovePrivateASAll: true, MissingMEDWorst: true, ECMPRequiresSameNeighborAS: false, DefaultOriginIncomplete: false},
	VendorDelta:   {RemovePrivateASAll: false, MissingMEDWorst: true, ECMPRequiresSameNeighborAS: true, DefaultOriginIncomplete: true},
	VendorEcho:    {RemovePrivateASAll: true, MissingMEDWorst: false, ECMPRequiresSameNeighborAS: true, DefaultOriginIncomplete: false},
}

// Behaviours returns the vendor's VSB set; unknown vendors get alpha
// semantics.
func (v Vendor) Behaviours() VSB {
	if b, ok := vsbTable[v]; ok {
		return b
	}
	return vsbTable[VendorAlpha]
}

// IsPrivateASN reports whether asn is in a private range (16-bit
// 64512-65534 or 32-bit 4200000000-4294967294).
func IsPrivateASN(asn uint32) bool {
	return (asn >= 64512 && asn <= 65534) || (asn >= 4200000000 && asn <= 4294967294)
}

// StripPrivateASNs applies the vendor's remove-private-as semantics to an AS
// path, returning a new slice (the input is never modified).
func StripPrivateASNs(path []uint32, all bool) []uint32 {
	out := make([]uint32, 0, len(path))
	if all {
		for _, a := range path {
			if !IsPrivateASN(a) {
				out = append(out, a)
			}
		}
		return out
	}
	// Leading-only: drop private ASNs preceding the first non-private one.
	i := 0
	for i < len(path) && IsPrivateASN(path[i]) {
		i++
	}
	return append(out, path[i:]...)
}
