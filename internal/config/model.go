// Package config defines the vendor-independent (VI) device model and a
// parser for a Cisco-IOS-like configuration language with several synthetic
// vendor dialects.
//
// In the paper, S2 reuses Batfish's parsers to convert vendor-specific
// configuration files into vendor-independent models (§3.2, "Controller /
// Parser"). This package is the from-scratch substitute: a single surface
// syntax whose semantics vary by vendor through declared vendor-specific
// behaviours (VSBs), reproducing the paper's motivation that VSBs make
// hyper-scale DCNs error-prone (§2.1).
package config

import (
	"fmt"
	"sort"

	"s2/internal/route"
)

// Device is the vendor-independent model of one switch/router.
type Device struct {
	Hostname string
	Vendor   Vendor

	Interfaces map[string]*Interface

	BGP  *BGPConfig
	OSPF *OSPFConfig

	StaticRoutes []StaticRoute

	PrefixLists    map[string]*PrefixList
	CommunityLists map[string]*CommunityList
	ASPathLists    map[string]*ASPathList
	RouteMaps      map[string]*RouteMap
	ACLs           map[string]*ACL
}

// NewDevice returns an empty device with initialized maps.
func NewDevice(hostname string) *Device {
	return &Device{
		Hostname:       hostname,
		Vendor:         VendorAlpha,
		Interfaces:     make(map[string]*Interface),
		PrefixLists:    make(map[string]*PrefixList),
		CommunityLists: make(map[string]*CommunityList),
		ASPathLists:    make(map[string]*ASPathList),
		RouteMaps:      make(map[string]*RouteMap),
		ACLs:           make(map[string]*ACL),
	}
}

// InterfaceNames returns interface names in sorted order.
func (d *Device) InterfaceNames() []string {
	names := make([]string, 0, len(d.Interfaces))
	for n := range d.Interfaces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ConnectedPrefixes returns the subnets of all non-shutdown addressed
// interfaces, deduplicated and sorted.
func (d *Device) ConnectedPrefixes() []route.Prefix {
	seen := map[route.Prefix]bool{}
	var out []route.Prefix
	for _, ifc := range d.Interfaces {
		if ifc.Shutdown || ifc.Subnet.Len == 0 && ifc.IP == 0 {
			continue
		}
		if !seen[ifc.Subnet] {
			seen[ifc.Subnet] = true
			out = append(out, ifc.Subnet)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// InterfaceForAddr returns the interface whose subnet contains addr, if any.
// This is how next-hop IPs resolve to egress ports.
func (d *Device) InterfaceForAddr(addr uint32) *Interface {
	var best *Interface
	for _, ifc := range d.Interfaces {
		if ifc.Shutdown || ifc.IP == 0 {
			continue
		}
		if ifc.Subnet.Contains(addr) && (best == nil || ifc.Subnet.Len > best.Subnet.Len ||
			(ifc.Subnet.Len == best.Subnet.Len && ifc.Name < best.Name)) {
			best = ifc
		}
	}
	return best
}

// Validate performs semantic checks after parsing: referenced policies,
// prefix lists, and ACLs must exist. It returns all problems found.
func (d *Device) Validate() []error {
	var errs []error
	check := func(kind, name string, ok bool) {
		if name != "" && !ok {
			errs = append(errs, fmt.Errorf("%s: undefined %s %q", d.Hostname, kind, name))
		}
	}
	for _, ifc := range d.Interfaces {
		_, inOK := d.ACLs[ifc.InACL]
		_, outOK := d.ACLs[ifc.OutACL]
		check("acl", ifc.InACL, inOK)
		check("acl", ifc.OutACL, outOK)
	}
	if d.BGP != nil {
		for _, n := range d.BGP.SortedNeighbors() {
			_, inOK := d.RouteMaps[n.ImportPolicy]
			_, outOK := d.RouteMaps[n.ExportPolicy]
			check("route-map", n.ImportPolicy, inOK)
			check("route-map", n.ExportPolicy, outOK)
			_, advOK := d.RouteMaps[n.AdvertiseMap]
			check("route-map", n.AdvertiseMap, advOK)
			_, condOK := d.PrefixLists[n.ConditionList]
			check("prefix-list", n.ConditionList, condOK)
		}
		for _, a := range d.BGP.Aggregates {
			_, ok := d.RouteMaps[a.AttributeMap]
			check("route-map", a.AttributeMap, ok)
		}
		for _, rd := range d.BGP.Redistribute {
			_, ok := d.RouteMaps[rd.RouteMap]
			check("route-map", rd.RouteMap, ok)
		}
	}
	for _, rm := range d.RouteMaps {
		for _, cl := range rm.Clauses {
			for _, m := range cl.Matches {
				switch m.Kind {
				case MatchPrefixList:
					_, ok := d.PrefixLists[m.Name]
					check("prefix-list", m.Name, ok)
				case MatchCommunityList:
					_, ok := d.CommunityLists[m.Name]
					check("community-list", m.Name, ok)
				case MatchASPathList:
					_, ok := d.ASPathLists[m.Name]
					check("as-path access-list", m.Name, ok)
				}
			}
		}
	}
	return errs
}

// Interface is a routed port.
type Interface struct {
	Name        string
	Description string
	// IP is the interface's own address; Subnet the connected prefix.
	IP     uint32
	Subnet route.Prefix
	// OSPFCost is the interface cost when OSPF is enabled (default 1).
	OSPFCost uint32
	// InACL and OutACL name ACLs applied to packets entering/leaving.
	InACL, OutACL string
	Shutdown      bool
}

// StaticRoute is an "ip route" statement.
type StaticRoute struct {
	Prefix  route.Prefix
	NextHop uint32
	// Drop marks a discard route (next-hop Null0) — a deliberate blackhole.
	Drop bool
}

// BGPConfig is the device's BGP process.
type BGPConfig struct {
	ASN      uint32
	RouterID uint32
	// MaxPaths is the ECMP limit (maximum-paths); 1 disables multipath.
	MaxPaths int
	// Networks are locally originated prefixes ("network" statements).
	Networks []route.Prefix
	// Aggregates are "aggregate-address" statements.
	Aggregates []Aggregate
	// Neighbors keyed by peer IP.
	Neighbors map[uint32]*Neighbor
	// Redistribute imports routes from other protocols into BGP.
	Redistribute []Redistribution
}

// SortedNeighbors returns neighbors ordered by peer IP for deterministic
// iteration.
func (b *BGPConfig) SortedNeighbors() []*Neighbor {
	out := make([]*Neighbor, 0, len(b.Neighbors))
	for _, n := range b.Neighbors {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PeerIP < out[j].PeerIP })
	return out
}

// Aggregate is a BGP aggregate-address: it activates when at least one more
// specific contributor is present in the BGP RIB, and with SummaryOnly the
// contributors are suppressed from advertisement (§4.5's prefix-dependency
// source).
type Aggregate struct {
	Prefix      route.Prefix
	SummaryOnly bool
	// AttributeMap names a route-map applied to the generated aggregate
	// (the DCN uses this to tag aggregates with communities, §2.3).
	AttributeMap string
}

// Neighbor is one BGP peering.
type Neighbor struct {
	PeerIP   uint32
	RemoteAS uint32
	// ImportPolicy/ExportPolicy name route-maps applied to received/sent
	// routes ("neighbor X route-map NAME in|out").
	ImportPolicy, ExportPolicy string
	// RemovePrivateAS strips private ASNs on export; which ASNs are
	// stripped is a vendor-specific behaviour (§2.1).
	RemovePrivateAS bool
	// NextHopSelf rewrites the next hop to the local peering address on
	// export (default behaviour on eBGP sessions regardless).
	NextHopSelf bool
	// AllowASIn accepts routes whose AS path already contains the local
	// ASN (disables loop rejection), as used with AS_PATH overwrite
	// deployments.
	AllowASIn bool
	// Conditional advertisement ("neighbor X advertise-map M exist-map P"
	// / "non-exist-map P"): routes matching the AdvertiseMap route-map
	// are advertised to this neighbor only while some route matching the
	// ConditionList prefix-list exists (exist-map) or is absent
	// (non-exist-map) in the BGP table. This is the paper's example of a
	// prefix dependency beyond aggregation (§4.5, citing the Cisco
	// conditional advertisement feature).
	AdvertiseMap     string
	ConditionList    string
	ConditionAbsence bool // true for non-exist-map
}

// Redistribution imports routes from a source protocol into BGP.
type Redistribution struct {
	// Source is "connected", "static", or "ospf".
	Source   string
	RouteMap string
}

// OSPFConfig is a single-area OSPF process.
type OSPFConfig struct {
	ProcessID uint32
	RouterID  uint32
	// Networks lists the interface subnets OSPF is enabled on; empty
	// means all addressed interfaces.
	Networks []route.Prefix
	// MaxPaths is the ECMP limit.
	MaxPaths int
	// Passive interfaces advertise their subnet but form no adjacency.
	Passive map[string]bool
}

// Action is a permit/deny disposition shared by lists, maps, and ACLs.
type Action uint8

const (
	Deny Action = iota
	Permit
)

func (a Action) String() string {
	if a == Permit {
		return "permit"
	}
	return "deny"
}

// PrefixList is an ordered ip prefix-list.
type PrefixList struct {
	Name    string
	Entries []PrefixListEntry
}

// PrefixListEntry matches prefixes covered by Prefix with length in [Ge,Le].
// Ge/Le of 0 default to the prefix's own length.
type PrefixListEntry struct {
	Seq    int
	Action Action
	Prefix route.Prefix
	Ge, Le uint8
}

// Matches reports whether entry e matches prefix p.
func (e PrefixListEntry) Matches(p route.Prefix) bool {
	lo := e.Prefix.Len
	hi := e.Prefix.Len
	if e.Ge > 0 {
		lo = e.Ge
	}
	if e.Le > 0 {
		hi = e.Le
	}
	if e.Ge > 0 && e.Le == 0 {
		hi = 32
	}
	return e.Prefix.Covers(p) && p.Len >= lo && p.Len <= hi
}

// Permits evaluates the list against p: first matching entry wins; an
// unmatched prefix is denied (implicit deny).
func (l *PrefixList) Permits(p route.Prefix) bool {
	for _, e := range l.Entries {
		if e.Matches(p) {
			return e.Action == Permit
		}
	}
	return false
}

// CommunityList is a standard community list.
type CommunityList struct {
	Name    string
	Entries []CommunityListEntry
}

// CommunityListEntry matches a route that carries all listed communities.
type CommunityListEntry struct {
	Action      Action
	Communities []route.Community
}

// Matches reports whether the route's communities satisfy the entry.
func (e CommunityListEntry) Matches(has func(route.Community) bool) bool {
	for _, c := range e.Communities {
		if !has(c) {
			return false
		}
	}
	return true
}

// Permits evaluates the list; first match wins, default deny.
func (l *CommunityList) Permits(has func(route.Community) bool) bool {
	for _, e := range l.Entries {
		if e.Matches(has) {
			return e.Action == Permit
		}
	}
	return false
}

// ASPathList is an as-path access-list of regex entries.
type ASPathList struct {
	Name    string
	Entries []ASPathListEntry
}

// ASPathListEntry matches AS paths against a Cisco-style regex (see
// aspathregex.go for the supported subset).
type ASPathListEntry struct {
	Action Action
	Regex  *ASPathRegex
}

// Permits evaluates the list against an AS path; first match wins, default
// deny.
func (l *ASPathList) Permits(path []uint32) bool {
	for _, e := range l.Entries {
		if e.Regex.Match(path) {
			return e.Action == Permit
		}
	}
	return false
}

// ACL is a named IP access list applied to interfaces.
type ACL struct {
	Name    string
	Entries []ACLEntry
}

// ACLEntry matches on the 5-tuple. Proto 0 matches any protocol; port
// ranges [0,65535] match any port.
type ACLEntry struct {
	Action               Action
	Proto                uint8 // 0 = any
	Src, Dst             route.Prefix
	SrcPortLo, SrcPortHi uint16
	DstPortLo, DstPortHi uint16
}

// MatchesAny reports whether the entry constrains nothing (permit ip any
// any), which the data plane fast-paths.
func (e ACLEntry) MatchesAny() bool {
	return e.Proto == 0 && e.Src.Len == 0 && e.Dst.Len == 0 &&
		e.SrcPortLo == 0 && e.SrcPortHi == 65535 &&
		e.DstPortLo == 0 && e.DstPortHi == 65535
}

// MatchKind discriminates route-map match clauses.
type MatchKind uint8

const (
	MatchPrefixList MatchKind = iota
	MatchCommunityList
	MatchASPathList
)

// Match is one route-map match condition.
type Match struct {
	Kind MatchKind
	Name string
}

// SetKind discriminates route-map set actions.
type SetKind uint8

const (
	SetLocalPref SetKind = iota
	SetMED
	SetCommunity       // replace or add communities
	SetCommunityDelete // delete communities matching a community-list
	SetASPathPrepend
	SetASPathOverwrite // nonstandard: replace the whole AS path (§2.3)
	SetOrigin
)

// Set is one route-map set action.
type Set struct {
	Kind        SetKind
	Value       uint32            // local-pref, MED, overwrite ASN
	Communities []route.Community // for SetCommunity
	Additive    bool              // for SetCommunity
	Name        string            // community-list name for SetCommunityDelete
	Prepend     []uint32          // for SetASPathPrepend
	Origin      route.Origin      // for SetOrigin
}

// RouteMap is an ordered list of clauses with first-match semantics.
type RouteMap struct {
	Name    string
	Clauses []*RouteMapClause
}

// RouteMapClause is one numbered permit/deny block.
type RouteMapClause struct {
	Seq     int
	Action  Action
	Matches []Match
	Sets    []Set
}
