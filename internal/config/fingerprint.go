package config

import (
	"encoding/binary"
	"hash"
	"hash/fnv"
	"sort"

	"s2/internal/route"
)

// Fingerprint is a stable hash of one device's parsed model, split into
// sections by how a change to the section affects resident verification
// state. Hashing the model rather than the raw text means comment and
// whitespace edits fingerprint identically and are no-ops for the delta
// planner.
//
//   - Topo covers everything that shapes the control-plane graph itself:
//     addressed interfaces, OSPF, BGP session endpoints. A change here
//     invalidates the topology and forces a full re-verification.
//   - Policy covers route filtering and rewriting: route-maps and the lists
//     they reference, per-neighbor policy attachments, ECMP limits,
//     redistribution, and static routes. A change can affect any prefix the
//     device touches in transit, so every shard re-simulates.
//   - Orig covers locally originated BGP prefixes (network and
//     aggregate-address statements). Only shards containing the affected
//     prefixes — expanded through the prefix dependency graph — re-simulate.
//   - DP covers data-plane-only state: ACL definitions and interface ACL
//     bindings, plus cosmetic fields (interface descriptions). No shard
//     re-simulates; the data plane recomputes from the resident RIBs.
type Fingerprint struct {
	Topo   uint64
	Policy uint64
	Orig   uint64
	DP     uint64
}

// Equal reports whether two fingerprints match in every section.
func (f Fingerprint) Equal(o Fingerprint) bool { return f == o }

// DeviceFingerprint computes the sectioned fingerprint of a parsed device.
// Iteration over every map is sorted, so the hash is deterministic across
// processes.
func DeviceFingerprint(d *Device) Fingerprint {
	return Fingerprint{
		Topo:   hashTopo(d),
		Policy: hashPolicy(d),
		Orig:   hashOrig(d),
		DP:     hashDP(d),
	}
}

// Fingerprints computes fingerprints for every device in the snapshot.
func Fingerprints(snap *Snapshot) map[string]Fingerprint {
	out := make(map[string]Fingerprint, len(snap.Devices))
	for name, dev := range snap.Devices {
		out[name] = DeviceFingerprint(dev)
	}
	return out
}

// hasher wraps FNV-64a with typed append helpers. Every variable-length
// field is length-prefixed so adjacent fields cannot alias.
type hasher struct{ h hash.Hash64 }

func newHasher() *hasher { return &hasher{h: fnv.New64a()} }

func (h *hasher) sum() uint64 { return h.h.Sum64() }

func (h *hasher) u8(v uint8) { h.h.Write([]byte{v}) }

func (h *hasher) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	h.h.Write(b[:])
}

func (h *hasher) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	h.h.Write(b[:])
}

func (h *hasher) boolean(v bool) {
	if v {
		h.u8(1)
	} else {
		h.u8(0)
	}
}

func (h *hasher) str(s string) {
	h.u32(uint32(len(s)))
	h.h.Write([]byte(s))
}

func (h *hasher) prefix(p route.Prefix) {
	h.u32(p.Addr)
	h.u8(p.Len)
}

func hashTopo(d *Device) uint64 {
	h := newHasher()
	h.str(d.Hostname)
	h.str(string(d.Vendor))
	names := d.InterfaceNames()
	h.u32(uint32(len(names)))
	for _, n := range names {
		ifc := d.Interfaces[n]
		h.str(ifc.Name)
		h.u32(ifc.IP)
		h.prefix(ifc.Subnet)
		h.u32(ifc.OSPFCost)
		h.boolean(ifc.Shutdown)
	}
	if d.OSPF == nil {
		h.boolean(false)
	} else {
		h.boolean(true)
		h.u32(d.OSPF.ProcessID)
		h.u32(d.OSPF.RouterID)
		h.u32(uint32(d.OSPF.MaxPaths))
		h.u32(uint32(len(d.OSPF.Networks)))
		for _, p := range d.OSPF.Networks {
			h.prefix(p)
		}
		passive := make([]string, 0, len(d.OSPF.Passive))
		for n, on := range d.OSPF.Passive {
			if on {
				passive = append(passive, n)
			}
		}
		sort.Strings(passive)
		h.u32(uint32(len(passive)))
		for _, n := range passive {
			h.str(n)
		}
	}
	if d.BGP == nil {
		h.boolean(false)
	} else {
		h.boolean(true)
		h.u32(d.BGP.ASN)
		h.u32(d.BGP.RouterID)
		ns := d.BGP.SortedNeighbors()
		h.u32(uint32(len(ns)))
		for _, n := range ns {
			h.u32(n.PeerIP)
			h.u32(n.RemoteAS)
		}
	}
	return h.sum()
}

func hashPolicy(d *Device) uint64 {
	h := newHasher()
	if d.BGP != nil {
		h.u32(uint32(d.BGP.MaxPaths))
		h.u32(uint32(len(d.BGP.Redistribute)))
		for _, rd := range d.BGP.Redistribute {
			h.str(rd.Source)
			h.str(rd.RouteMap)
		}
		ns := d.BGP.SortedNeighbors()
		h.u32(uint32(len(ns)))
		for _, n := range ns {
			h.u32(n.PeerIP)
			h.str(n.ImportPolicy)
			h.str(n.ExportPolicy)
			h.boolean(n.RemovePrivateAS)
			h.boolean(n.NextHopSelf)
			h.boolean(n.AllowASIn)
			h.str(n.AdvertiseMap)
			h.str(n.ConditionList)
			h.boolean(n.ConditionAbsence)
		}
	}
	h.u32(uint32(len(d.StaticRoutes)))
	for _, sr := range d.StaticRoutes {
		h.prefix(sr.Prefix)
		h.u32(sr.NextHop)
		h.boolean(sr.Drop)
	}
	hashSortedMap(h, d.PrefixLists, func(l *PrefixList) {
		h.str(l.Name)
		h.u32(uint32(len(l.Entries)))
		for _, e := range l.Entries {
			h.u32(uint32(e.Seq))
			h.u8(uint8(e.Action))
			h.prefix(e.Prefix)
			h.u8(e.Ge)
			h.u8(e.Le)
		}
	})
	hashSortedMap(h, d.CommunityLists, func(l *CommunityList) {
		h.str(l.Name)
		h.u32(uint32(len(l.Entries)))
		for _, e := range l.Entries {
			h.u8(uint8(e.Action))
			h.u32(uint32(len(e.Communities)))
			for _, c := range e.Communities {
				h.u32(uint32(c))
			}
		}
	})
	hashSortedMap(h, d.ASPathLists, func(l *ASPathList) {
		h.str(l.Name)
		h.u32(uint32(len(l.Entries)))
		for _, e := range l.Entries {
			h.u8(uint8(e.Action))
			h.str(e.Regex.String())
		}
	})
	hashSortedMap(h, d.RouteMaps, func(rm *RouteMap) {
		h.str(rm.Name)
		h.u32(uint32(len(rm.Clauses)))
		for _, cl := range rm.Clauses {
			h.u32(uint32(cl.Seq))
			h.u8(uint8(cl.Action))
			h.u32(uint32(len(cl.Matches)))
			for _, m := range cl.Matches {
				h.u8(uint8(m.Kind))
				h.str(m.Name)
			}
			h.u32(uint32(len(cl.Sets)))
			for _, s := range cl.Sets {
				h.u8(uint8(s.Kind))
				h.u32(s.Value)
				h.u32(uint32(len(s.Communities)))
				for _, c := range s.Communities {
					h.u32(uint32(c))
				}
				h.boolean(s.Additive)
				h.str(s.Name)
				h.u32(uint32(len(s.Prepend)))
				for _, a := range s.Prepend {
					h.u32(a)
				}
				h.u8(uint8(s.Origin))
			}
		}
	})
	return h.sum()
}

func hashOrig(d *Device) uint64 {
	h := newHasher()
	if d.BGP != nil {
		h.u32(uint32(len(d.BGP.Networks)))
		for _, p := range d.BGP.Networks {
			h.prefix(p)
		}
		h.u32(uint32(len(d.BGP.Aggregates)))
		for _, a := range d.BGP.Aggregates {
			h.prefix(a.Prefix)
			h.boolean(a.SummaryOnly)
			h.str(a.AttributeMap)
		}
	}
	return h.sum()
}

func hashDP(d *Device) uint64 {
	h := newHasher()
	names := d.InterfaceNames()
	h.u32(uint32(len(names)))
	for _, n := range names {
		ifc := d.Interfaces[n]
		h.str(ifc.Name)
		h.str(ifc.Description)
		h.str(ifc.InACL)
		h.str(ifc.OutACL)
	}
	hashSortedMap(h, d.ACLs, func(a *ACL) {
		h.str(a.Name)
		h.u32(uint32(len(a.Entries)))
		for _, e := range a.Entries {
			h.u8(uint8(e.Action))
			h.u8(e.Proto)
			h.prefix(e.Src)
			h.prefix(e.Dst)
			h.u32(uint32(e.SrcPortLo)<<16 | uint32(e.SrcPortHi))
			h.u32(uint32(e.DstPortLo)<<16 | uint32(e.DstPortHi))
		}
	})
	return h.sum()
}

func hashSortedMap[V any](h *hasher, m map[string]V, each func(V)) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h.u32(uint32(len(keys)))
	for _, k := range keys {
		h.str(k)
		each(m[k])
	}
}

// DeltaClass ranks how invasive a per-device change is for resident state.
// Higher values strictly subsume the re-verification work of lower ones.
type DeltaClass uint8

const (
	// DeltaNone: fingerprints identical — comment/whitespace-only edit.
	DeltaNone DeltaClass = iota
	// DeltaDP: only data-plane state changed (ACLs, bindings,
	// descriptions); RIBs stay valid, FIBs recompute.
	DeltaDP
	// DeltaOrig: locally originated BGP prefixes changed; only shards
	// containing affected prefixes (plus dependency closure) re-simulate.
	DeltaOrig
	// DeltaPolicy: route filtering/rewriting changed; every shard
	// re-simulates but the topology and partition inputs other than the
	// policy stay warm.
	DeltaPolicy
	// DeltaTopo: the control-plane graph changed (interfaces, OSPF, BGP
	// sessions, device add/remove/rename); full cold re-verification.
	DeltaTopo
)

func (c DeltaClass) String() string {
	switch c {
	case DeltaNone:
		return "none"
	case DeltaDP:
		return "dp"
	case DeltaOrig:
		return "orig"
	case DeltaPolicy:
		return "policy"
	case DeltaTopo:
		return "topo"
	}
	return "unknown"
}

// Classify compares two fingerprints of the same device and returns the
// most invasive class of change between them.
func Classify(old, new Fingerprint) DeltaClass {
	switch {
	case old.Topo != new.Topo:
		return DeltaTopo
	case old.Policy != new.Policy:
		return DeltaPolicy
	case old.Orig != new.Orig:
		return DeltaOrig
	case old.DP != new.DP:
		return DeltaDP
	}
	return DeltaNone
}

// SnapshotDiff is the per-device outcome of diffing two parsed snapshots.
type SnapshotDiff struct {
	// Changed maps device name → class for devices present in both
	// snapshots whose fingerprints differ (class > DeltaNone).
	Changed map[string]DeltaClass
	// Added and Removed list device names present in only one snapshot,
	// sorted. A rename appears as one Removed plus one Added.
	Added, Removed []string
}

// Class returns the most invasive class across the whole diff: device
// add/remove is DeltaTopo; otherwise the max over changed devices.
func (d *SnapshotDiff) Class() DeltaClass {
	if len(d.Added) > 0 || len(d.Removed) > 0 {
		return DeltaTopo
	}
	max := DeltaNone
	for _, c := range d.Changed {
		if c > max {
			max = c
		}
	}
	return max
}

// Empty reports whether the diff contains no semantic change.
func (d *SnapshotDiff) Empty() bool {
	return len(d.Changed) == 0 && len(d.Added) == 0 && len(d.Removed) == 0
}

// DiffSnapshots fingerprints both snapshots and classifies every device.
func DiffSnapshots(old, new *Snapshot) *SnapshotDiff {
	diff := &SnapshotDiff{Changed: map[string]DeltaClass{}}
	for name, dev := range old.Devices {
		nd, ok := new.Devices[name]
		if !ok {
			diff.Removed = append(diff.Removed, name)
			continue
		}
		if c := Classify(DeviceFingerprint(dev), DeviceFingerprint(nd)); c != DeltaNone {
			diff.Changed[name] = c
		}
	}
	for name := range new.Devices {
		if _, ok := old.Devices[name]; !ok {
			diff.Added = append(diff.Added, name)
		}
	}
	sort.Strings(diff.Added)
	sort.Strings(diff.Removed)
	return diff
}
