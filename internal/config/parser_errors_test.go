package config

import (
	"testing"

	"s2/internal/route"
)

// TestParserRejectsMalformedLines sweeps the parser's error branches: every
// case is a single bad line (with whatever scaffolding it needs) that must
// produce a ParseError rather than silently misconfiguring the device.
func TestParserRejectsMalformedLines(t *testing.T) {
	cases := []struct {
		name string
		cfg  string
	}{
		{"hostname-arity", "hostname a b\n"},
		{"interface-arity", "interface\n"},
		{"vendor-unknown", "! vendor: juniper\n"},
		{"ip-address-arity", "interface e0\n ip address\n"},
		{"ip-address-no-slash", "interface e0\n ip address 10.0.0.1\n"},
		{"ip-address-bad-ip", "interface e0\n ip address x.y.z.w/24\n"},
		{"ip-address-bad-len", "interface e0\n ip address 10.0.0.1/99\n"},
		{"ospf-cost-bad", "interface e0\n ip ospf cost ten\n"},
		{"ospf-cmd-bad", "interface e0\n ip ospf hello 5\n"},
		{"access-group-dir", "interface e0\n ip access-group A sideways\n"},
		{"iface-unknown-cmd", "interface e0\n mtu 9000\n"},
		{"iface-no-bad", "interface e0\n no mtu\n"},
		{"router-arity", "router bgp\n"},
		{"router-bad-asn", "router bgp many\n"},
		{"router-bad-proto", "router rip 1\n"},
		{"bgp-routerid-bad", "router bgp 1\n router-id nope\n"},
		{"bgp-maxpaths-bad", "router bgp 1\n maximum-paths zero\n"},
		{"bgp-maxpaths-neg", "router bgp 1\n maximum-paths 0\n"},
		{"bgp-network-bad", "router bgp 1\n network 10.0.0.0\n"},
		{"bgp-agg-bad-prefix", "router bgp 1\n aggregate-address nope\n"},
		{"bgp-agg-bad-opt", "router bgp 1\n aggregate-address 10.0.0.0/8 always\n"},
		{"bgp-agg-map-arity", "router bgp 1\n aggregate-address 10.0.0.0/8 attribute-map\n"},
		{"bgp-redist-bad-src", "router bgp 1\n redistribute rip\n"},
		{"bgp-redist-syntax", "router bgp 1\n redistribute connected with map\n"},
		{"bgp-unknown", "router bgp 1\n synchronization\n"},
		{"neighbor-arity", "router bgp 1\n neighbor 10.0.0.1\n"},
		{"neighbor-bad-ip", "router bgp 1\n neighbor ten remote-as 1\n"},
		{"neighbor-bad-as", "router bgp 1\n neighbor 10.0.0.1 remote-as x\n"},
		{"neighbor-rm-dir", "router bgp 1\n neighbor 10.0.0.1 route-map RM sideways\n"},
		{"neighbor-unknown", "router bgp 1\n neighbor 10.0.0.1 weight 5\n"},
		{"neighbor-advmap-arity", "router bgp 1\n neighbor 10.0.0.1 advertise-map M\n"},
		{"ospf-routerid-bad", "router ospf 1\n router-id nah\n"},
		{"ospf-maxpaths-bad", "router ospf 1\n maximum-paths none\n"},
		{"ospf-network-area", "router ospf 1\n network 10.0.0.0/8 area 5\n"},
		{"ospf-passive-arity", "router ospf 1\n passive-interface\n"},
		{"ospf-unknown", "router ospf 1\n default-information originate\n"},
		{"ip-incomplete", "ip\n"},
		{"ip-unknown", "ip nat inside\n"},
		{"route-arity", "ip route 10.0.0.0/8\n"},
		{"route-bad-prefix", "ip route ten 10.0.0.1\n"},
		{"route-bad-nh", "ip route 10.0.0.0/8 nexthop\n"},
		{"pl-no-seq", "ip prefix-list P permit 10.0.0.0/8\n"},
		{"pl-bad-seq", "ip prefix-list P seq x permit 10.0.0.0/8\n"},
		{"pl-bad-action", "ip prefix-list P seq 5 allow 10.0.0.0/8\n"},
		{"pl-bad-prefix", "ip prefix-list P seq 5 permit ten\n"},
		{"pl-bad-ge", "ip prefix-list P seq 5 permit 10.0.0.0/8 ge 40\n"},
		{"pl-bad-opt", "ip prefix-list P seq 5 permit 10.0.0.0/8 eq 24\n"},
		{"pl-trailing", "ip prefix-list P seq 5 permit 10.0.0.0/8 ge 16 24\n"},
		{"cl-not-standard", "ip community-list expanded C permit 1:2\n"},
		{"cl-bad-action", "ip community-list standard C allow 1:2\n"},
		{"cl-bad-comm", "ip community-list standard C permit one:two\n"},
		{"ap-not-accesslist", "ip as-path list A permit _1_\n"},
		{"ap-bad-action", "ip as-path access-list A allow _1_\n"},
		{"ap-bad-regex", "ip as-path access-list A permit [oops\n"},
		{"rm-arity", "route-map RM permit\n"},
		{"rm-bad-action", "route-map RM maybe 10\n"},
		{"rm-bad-seq", "route-map RM permit x\n"},
		{"rm-bad-match", "route-map RM permit 10\n match metric 5\n"},
		{"rm-bad-cmd", "route-map RM permit 10\n describe me\n"},
		{"set-incomplete", "route-map RM permit 10\n set metric\n"},
		{"set-lp-bad", "route-map RM permit 10\n set local-preference high\n"},
		{"set-metric-bad", "route-map RM permit 10\n set metric low\n"},
		{"set-comm-bad", "route-map RM permit 10\n set community nope\n"},
		{"set-comm-empty", "route-map RM permit 10\n set community additive\n"},
		{"set-commlist-bad", "route-map RM permit 10\n set comm-list C keep\n"},
		{"set-prepend-bad", "route-map RM permit 10\n set as-path prepend x\n"},
		{"set-overwrite-bad", "route-map RM permit 10\n set as-path overwrite x\n"},
		{"set-aspath-bad", "route-map RM permit 10\n set as-path reverse\n"},
		{"set-origin-bad", "route-map RM permit 10\n set origin unknown\n"},
		{"set-unknown", "route-map RM permit 10\n set weight 5\n"},
		{"acl-name-arity", "ip access-list\n"},
		{"acl-bad-action", "ip access-list A\n allow ip any any\n"},
		{"acl-too-short", "ip access-list A\n permit ip any\n"},
		{"acl-bad-proto", "ip access-list A\n permit 300 any any\n"},
		{"acl-proto-zero", "ip access-list A\n permit 0 any any\n"},
		{"acl-bad-src", "ip access-list A\n permit ip ten any\n"},
		{"acl-eq-noport", "ip access-list A\n permit tcp any eq\n"},
		{"acl-eq-badport", "ip access-list A\n permit tcp any eq http any\n"},
		{"acl-range-short", "ip access-list A\n permit tcp any range 1 any\n"},
		{"acl-range-inverted", "ip access-list A\n permit tcp any range 9 1 any\n"},
		{"acl-trailing", "ip access-list A\n permit ip any any log\n"},
		{"sub-without-mode", " shutdown\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("x.cfg", "hostname x\n"+c.cfg)
			if err == nil {
				t.Fatalf("config accepted:\n%s", c.cfg)
			}
			if _, ok := err.(ParseErrors); !ok {
				t.Fatalf("unexpected error type %T: %v", err, err)
			}
		})
	}
}

// TestParserAcceptsEdgeForms covers accepted-but-unusual inputs.
func TestParserAcceptsEdgeForms(t *testing.T) {
	cfg := `hostname edge
interface e0
 ip address 10.0.0.1/31
 shutdown
 no shutdown
ip prefix-list P seq 5 permit 10.0.0.0/8 ge 16
ip access-list A
 permit udp 10.0.0.1 range 1000 2000 10.0.0.0/8 eq 53
 deny 47 any any
router ospf 1
 network 10.0.0.0/31 area 0
`
	dev, err := Parse("edge.cfg", cfg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if dev.Interfaces["e0"].Shutdown {
		t.Error("no shutdown should re-enable")
	}
	// ge without le extends to /32.
	if !dev.PrefixLists["P"].Permits(route.MustParsePrefix("10.1.1.1/32")) {
		t.Error("ge-only entry should admit /32s")
	}
	e := dev.ACLs["A"].Entries[0]
	if e.Proto != 17 || e.SrcPortLo != 1000 || e.SrcPortHi != 2000 || e.DstPortLo != 53 || e.Src.Len != 32 {
		t.Errorf("udp entry = %+v", e)
	}
	if dev.ACLs["A"].Entries[1].Proto != 47 {
		t.Error("numeric protocol")
	}
}
