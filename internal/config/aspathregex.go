package config

import (
	"regexp"
	"strconv"
	"strings"
)

// ASPathRegex is a Cisco-style AS-path regular expression. The supported
// syntax is the practical subset used in datacenter policies: literal ASNs,
// character classes ([0-9]), '.', '*', '+', '?', alternation, grouping, the
// anchors '^' and '$', and '_' which matches a boundary (start, end, or the
// separator between ASNs).
//
// Matching renders the AS path as a space-separated decimal string
// ("65001 65100") and evaluates a translated stdlib regexp against it, the
// same strategy production implementations use.
type ASPathRegex struct {
	src string
	re  *regexp.Regexp
}

// CompileASPathRegex translates and compiles a Cisco-style expression.
func CompileASPathRegex(expr string) (*ASPathRegex, error) {
	var b strings.Builder
	b.Grow(len(expr) + 8)
	for _, r := range expr {
		if r == '_' {
			// Boundary: start of string, end of string, or a space.
			b.WriteString(`(?:^|$| )`)
			continue
		}
		b.WriteRune(r)
	}
	re, err := regexp.Compile(b.String())
	if err != nil {
		return nil, err
	}
	return &ASPathRegex{src: expr, re: re}, nil
}

// MustCompileASPathRegex panics on compile failure; for tests and synthesis.
func MustCompileASPathRegex(expr string) *ASPathRegex {
	r, err := CompileASPathRegex(expr)
	if err != nil {
		panic(err)
	}
	return r
}

// String returns the original Cisco-style expression.
func (r *ASPathRegex) String() string { return r.src }

// Match reports whether the AS path satisfies the expression.
func (r *ASPathRegex) Match(path []uint32) bool {
	return r.re.MatchString(FormatASPath(path))
}

// FormatASPath renders an AS path as the space-separated decimal string the
// regex engine matches against.
func FormatASPath(path []uint32) string {
	if len(path) == 0 {
		return ""
	}
	var b strings.Builder
	b.Grow(len(path) * 6)
	for i, a := range path {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(uint64(a), 10))
	}
	return b.String()
}
