package config

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"s2/internal/route"
)

// ParseError records one problem found while parsing a configuration file.
type ParseError struct {
	File string
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// ParseErrors aggregates all problems in a file.
type ParseErrors []*ParseError

func (es ParseErrors) Error() string {
	switch len(es) {
	case 0:
		return "no errors"
	case 1:
		return es[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (and %d more errors)", es[0].Error(), len(es)-1)
	return b.String()
}

// Parse converts one vendor-style configuration file into the
// vendor-independent device model. All syntax errors are collected; the
// returned device reflects every line that parsed cleanly.
func Parse(filename, text string) (*Device, error) {
	p := &parser{file: filename, dev: NewDevice(deviceNameFromFile(filename))}
	for i, raw := range strings.Split(text, "\n") {
		p.line = i + 1
		p.parseLine(raw)
	}
	if errs := p.dev.Validate(); len(errs) > 0 {
		for _, e := range errs {
			p.errs = append(p.errs, &ParseError{File: filename, Msg: e.Error()})
		}
	}
	if len(p.errs) > 0 {
		return p.dev, p.errs
	}
	return p.dev, nil
}

func deviceNameFromFile(filename string) string {
	name := filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return strings.TrimSuffix(name, ".cfg")
}

// parser holds mode state while scanning lines.
type parser struct {
	file string
	line int
	dev  *Device
	errs ParseErrors

	// Current sub-mode targets; at most one is non-nil.
	curIfc    *Interface
	curClause *RouteMapClause
	curACL    *ACL
	curBGP    *BGPConfig
	curOSPF   *OSPFConfig
}

func (p *parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, &ParseError{File: p.file, Line: p.line, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) resetMode() {
	p.curIfc, p.curClause, p.curACL, p.curBGP, p.curOSPF = nil, nil, nil, nil, nil
}

func (p *parser) parseLine(raw string) {
	line := strings.TrimSpace(raw)
	if line == "" {
		return
	}
	if strings.HasPrefix(line, "!") {
		// "! vendor: <name>" is a directive; other comments reset mode
		// (the conventional IOS block separator).
		rest := strings.TrimSpace(strings.TrimPrefix(line, "!"))
		if v, ok := strings.CutPrefix(rest, "vendor:"); ok {
			vendor, err := ParseVendor(strings.TrimSpace(v))
			if err != nil {
				p.errorf("%v", err)
				return
			}
			p.dev.Vendor = vendor
			return
		}
		p.resetMode()
		return
	}
	f := strings.Fields(line)

	// Top-level commands switch modes.
	switch f[0] {
	case "hostname":
		p.resetMode()
		if len(f) != 2 {
			p.errorf("hostname takes one argument")
			return
		}
		p.dev.Hostname = f[1]
		return
	case "interface":
		p.resetMode()
		if len(f) != 2 {
			p.errorf("interface takes one argument")
			return
		}
		ifc, ok := p.dev.Interfaces[f[1]]
		if !ok {
			ifc = &Interface{Name: f[1], OSPFCost: 1}
			p.dev.Interfaces[f[1]] = ifc
		}
		p.curIfc = ifc
		return
	case "router":
		p.resetMode()
		p.parseRouter(f)
		return
	case "route-map":
		p.resetMode()
		p.parseRouteMapHeader(f)
		return
	case "ip":
		if p.curIfc != nil && len(f) >= 2 && (f[1] == "address" || f[1] == "ospf" || f[1] == "access-group") {
			p.parseInterfaceIP(f)
			return
		}
		p.resetMode()
		p.parseTopLevelIP(f)
		return
	}

	// Sub-mode commands.
	switch {
	case p.curIfc != nil:
		p.parseInterfaceLine(f, line)
	case p.curBGP != nil:
		p.parseBGPLine(f)
	case p.curOSPF != nil:
		p.parseOSPFLine(f)
	case p.curClause != nil:
		p.parseRouteMapLine(f)
	case p.curACL != nil:
		p.parseACLLine(f)
	default:
		p.errorf("unrecognized top-level command %q", f[0])
	}
}

func (p *parser) parseInterfaceIP(f []string) {
	switch f[1] {
	case "address":
		if len(f) != 3 {
			p.errorf("ip address takes addr/len")
			return
		}
		slash := strings.IndexByte(f[2], '/')
		if slash < 0 {
			p.errorf("ip address %q missing /length", f[2])
			return
		}
		addr, err := route.ParseAddr(f[2][:slash])
		if err != nil {
			p.errorf("%v", err)
			return
		}
		l, err := strconv.ParseUint(f[2][slash+1:], 10, 8)
		if err != nil || l > 32 {
			p.errorf("invalid prefix length %q", f[2][slash+1:])
			return
		}
		p.curIfc.IP = addr
		p.curIfc.Subnet = route.MakePrefix(addr, uint8(l))
	case "ospf":
		if len(f) == 4 && f[2] == "cost" {
			v, err := strconv.ParseUint(f[3], 10, 32)
			if err != nil {
				p.errorf("invalid ospf cost %q", f[3])
				return
			}
			p.curIfc.OSPFCost = uint32(v)
			return
		}
		p.errorf("unsupported interface ospf command")
	case "access-group":
		if len(f) != 4 || (f[3] != "in" && f[3] != "out") {
			p.errorf("ip access-group takes NAME in|out")
			return
		}
		if f[3] == "in" {
			p.curIfc.InACL = f[2]
		} else {
			p.curIfc.OutACL = f[2]
		}
	}
}

func (p *parser) parseInterfaceLine(f []string, line string) {
	switch f[0] {
	case "description":
		p.curIfc.Description = strings.TrimSpace(strings.TrimPrefix(line, "description"))
	case "shutdown":
		p.curIfc.Shutdown = true
	case "no":
		if len(f) == 2 && f[1] == "shutdown" {
			p.curIfc.Shutdown = false
			return
		}
		p.errorf("unsupported interface command %q", strings.Join(f, " "))
	default:
		p.errorf("unsupported interface command %q", f[0])
	}
}

func (p *parser) parseRouter(f []string) {
	if len(f) != 3 {
		p.errorf("router takes protocol and process/AS number")
		return
	}
	id, err := strconv.ParseUint(f[2], 10, 32)
	if err != nil {
		p.errorf("invalid process/AS number %q", f[2])
		return
	}
	switch f[1] {
	case "bgp":
		if p.dev.BGP == nil {
			p.dev.BGP = &BGPConfig{ASN: uint32(id), MaxPaths: 1, Neighbors: make(map[uint32]*Neighbor)}
		}
		p.curBGP = p.dev.BGP
	case "ospf":
		if p.dev.OSPF == nil {
			p.dev.OSPF = &OSPFConfig{ProcessID: uint32(id), MaxPaths: 1, Passive: make(map[string]bool)}
		}
		p.curOSPF = p.dev.OSPF
	default:
		p.errorf("unsupported routing protocol %q", f[1])
	}
}

func (p *parser) parseBGPLine(f []string) {
	b := p.curBGP
	switch f[0] {
	case "router-id":
		if len(f) != 2 {
			p.errorf("router-id takes one address")
			return
		}
		id, err := route.ParseAddr(f[1])
		if err != nil {
			p.errorf("%v", err)
			return
		}
		b.RouterID = id
	case "maximum-paths":
		if len(f) != 2 {
			p.errorf("maximum-paths takes one number")
			return
		}
		n, err := strconv.Atoi(f[1])
		if err != nil || n < 1 {
			p.errorf("invalid maximum-paths %q", f[1])
			return
		}
		b.MaxPaths = n
	case "network":
		if len(f) != 2 {
			p.errorf("network takes one prefix")
			return
		}
		pfx, err := route.ParsePrefix(f[1])
		if err != nil {
			p.errorf("%v", err)
			return
		}
		b.Networks = append(b.Networks, pfx)
	case "aggregate-address":
		p.parseAggregate(f)
	case "redistribute":
		if len(f) < 2 {
			p.errorf("redistribute takes a source protocol")
			return
		}
		src := f[1]
		if src != "connected" && src != "static" && src != "ospf" {
			p.errorf("unsupported redistribute source %q", src)
			return
		}
		rd := Redistribution{Source: src}
		if len(f) == 4 && f[2] == "route-map" {
			rd.RouteMap = f[3]
		} else if len(f) != 2 {
			p.errorf("redistribute syntax: redistribute SRC [route-map NAME]")
			return
		}
		b.Redistribute = append(b.Redistribute, rd)
	case "neighbor":
		p.parseNeighbor(f)
	default:
		p.errorf("unsupported bgp command %q", f[0])
	}
}

func (p *parser) parseAggregate(f []string) {
	if len(f) < 2 {
		p.errorf("aggregate-address takes a prefix")
		return
	}
	pfx, err := route.ParsePrefix(f[1])
	if err != nil {
		p.errorf("%v", err)
		return
	}
	agg := Aggregate{Prefix: pfx}
	rest := f[2:]
	for len(rest) > 0 {
		switch rest[0] {
		case "summary-only":
			agg.SummaryOnly = true
			rest = rest[1:]
		case "attribute-map":
			if len(rest) < 2 {
				p.errorf("attribute-map takes a route-map name")
				return
			}
			agg.AttributeMap = rest[1]
			rest = rest[2:]
		default:
			p.errorf("unsupported aggregate-address option %q", rest[0])
			return
		}
	}
	p.curBGP.Aggregates = append(p.curBGP.Aggregates, agg)
}

func (p *parser) parseNeighbor(f []string) {
	if len(f) < 3 {
		p.errorf("neighbor takes an address and a command")
		return
	}
	ip, err := route.ParseAddr(f[1])
	if err != nil {
		p.errorf("%v", err)
		return
	}
	n, ok := p.curBGP.Neighbors[ip]
	if !ok {
		n = &Neighbor{PeerIP: ip}
		p.curBGP.Neighbors[ip] = n
	}
	switch f[2] {
	case "remote-as":
		if len(f) != 4 {
			p.errorf("remote-as takes one AS number")
			return
		}
		asn, err := strconv.ParseUint(f[3], 10, 32)
		if err != nil {
			p.errorf("invalid AS number %q", f[3])
			return
		}
		n.RemoteAS = uint32(asn)
	case "route-map":
		if len(f) != 5 || (f[4] != "in" && f[4] != "out") {
			p.errorf("neighbor route-map takes NAME in|out")
			return
		}
		if f[4] == "in" {
			n.ImportPolicy = f[3]
		} else {
			n.ExportPolicy = f[3]
		}
	case "advertise-map":
		// neighbor IP advertise-map MAP exist-map|non-exist-map LIST
		if len(f) != 6 || (f[4] != "exist-map" && f[4] != "non-exist-map") {
			p.errorf("advertise-map syntax: neighbor IP advertise-map MAP exist-map|non-exist-map PREFIXLIST")
			return
		}
		n.AdvertiseMap = f[3]
		n.ConditionList = f[5]
		n.ConditionAbsence = f[4] == "non-exist-map"
	case "remove-private-as":
		n.RemovePrivateAS = true
	case "next-hop-self":
		n.NextHopSelf = true
	case "allowas-in":
		n.AllowASIn = true
	default:
		p.errorf("unsupported neighbor command %q", f[2])
	}
}

func (p *parser) parseOSPFLine(f []string) {
	o := p.curOSPF
	switch f[0] {
	case "router-id":
		if len(f) != 2 {
			p.errorf("router-id takes one address")
			return
		}
		id, err := route.ParseAddr(f[1])
		if err != nil {
			p.errorf("%v", err)
			return
		}
		o.RouterID = id
	case "maximum-paths":
		if len(f) != 2 {
			p.errorf("maximum-paths takes one number")
			return
		}
		n, err := strconv.Atoi(f[1])
		if err != nil || n < 1 {
			p.errorf("invalid maximum-paths %q", f[1])
			return
		}
		o.MaxPaths = n
	case "network":
		if len(f) != 4 || f[2] != "area" || f[3] != "0" {
			p.errorf("only 'network PREFIX area 0' is supported")
			return
		}
		pfx, err := route.ParsePrefix(f[1])
		if err != nil {
			p.errorf("%v", err)
			return
		}
		o.Networks = append(o.Networks, pfx)
	case "passive-interface":
		if len(f) != 2 {
			p.errorf("passive-interface takes one interface name")
			return
		}
		o.Passive[f[1]] = true
	default:
		p.errorf("unsupported ospf command %q", f[0])
	}
}

func (p *parser) parseTopLevelIP(f []string) {
	if len(f) < 2 {
		p.errorf("incomplete ip command")
		return
	}
	switch f[1] {
	case "route":
		p.parseStaticRoute(f)
	case "prefix-list":
		p.parsePrefixList(f)
	case "community-list":
		p.parseCommunityList(f)
	case "as-path":
		p.parseASPathList(f)
	case "access-list":
		if len(f) != 3 {
			p.errorf("ip access-list takes a name")
			return
		}
		acl, ok := p.dev.ACLs[f[2]]
		if !ok {
			acl = &ACL{Name: f[2]}
			p.dev.ACLs[f[2]] = acl
		}
		p.curACL = acl
	default:
		p.errorf("unsupported ip command %q", f[1])
	}
}

func (p *parser) parseStaticRoute(f []string) {
	if len(f) != 4 {
		p.errorf("ip route takes PREFIX NEXTHOP|null0")
		return
	}
	pfx, err := route.ParsePrefix(f[2])
	if err != nil {
		p.errorf("%v", err)
		return
	}
	sr := StaticRoute{Prefix: pfx}
	if strings.EqualFold(f[3], "null0") {
		sr.Drop = true
	} else {
		nh, err := route.ParseAddr(f[3])
		if err != nil {
			p.errorf("%v", err)
			return
		}
		sr.NextHop = nh
	}
	p.dev.StaticRoutes = append(p.dev.StaticRoutes, sr)
}

func (p *parser) parsePrefixList(f []string) {
	// ip prefix-list NAME seq N permit|deny PREFIX [ge N] [le N]
	if len(f) < 6 || f[3] != "seq" {
		p.errorf("prefix-list syntax: ip prefix-list NAME seq N permit|deny PREFIX [ge N] [le N]")
		return
	}
	name := f[2]
	seq, err := strconv.Atoi(f[4])
	if err != nil {
		p.errorf("invalid sequence number %q", f[4])
		return
	}
	action, ok := parseAction(f[5])
	if !ok || len(f) < 7 {
		p.errorf("prefix-list entry needs permit|deny and a prefix")
		return
	}
	pfx, err := route.ParsePrefix(f[6])
	if err != nil {
		p.errorf("%v", err)
		return
	}
	e := PrefixListEntry{Seq: seq, Action: action, Prefix: pfx}
	rest := f[7:]
	for len(rest) >= 2 {
		v, err := strconv.ParseUint(rest[1], 10, 8)
		if err != nil || v > 32 {
			p.errorf("invalid ge/le value %q", rest[1])
			return
		}
		switch rest[0] {
		case "ge":
			e.Ge = uint8(v)
		case "le":
			e.Le = uint8(v)
		default:
			p.errorf("unsupported prefix-list option %q", rest[0])
			return
		}
		rest = rest[2:]
	}
	if len(rest) != 0 {
		p.errorf("trailing tokens in prefix-list entry")
		return
	}
	pl, ok := p.dev.PrefixLists[name]
	if !ok {
		pl = &PrefixList{Name: name}
		p.dev.PrefixLists[name] = pl
	}
	pl.Entries = append(pl.Entries, e)
	sort.SliceStable(pl.Entries, func(i, j int) bool { return pl.Entries[i].Seq < pl.Entries[j].Seq })
}

func (p *parser) parseCommunityList(f []string) {
	// ip community-list standard NAME permit|deny COMM...
	if len(f) < 6 || f[2] != "standard" {
		p.errorf("community-list syntax: ip community-list standard NAME permit|deny ASN:VAL...")
		return
	}
	name := f[3]
	action, ok := parseAction(f[4])
	if !ok {
		p.errorf("community-list entry needs permit|deny")
		return
	}
	var comms []route.Community
	for _, s := range f[5:] {
		c, err := route.ParseCommunity(s)
		if err != nil {
			p.errorf("%v", err)
			return
		}
		comms = append(comms, c)
	}
	cl, ok := p.dev.CommunityLists[name]
	if !ok {
		cl = &CommunityList{Name: name}
		p.dev.CommunityLists[name] = cl
	}
	cl.Entries = append(cl.Entries, CommunityListEntry{Action: action, Communities: comms})
}

func (p *parser) parseASPathList(f []string) {
	// ip as-path access-list NAME permit|deny REGEX
	if len(f) < 6 || f[2] != "access-list" {
		p.errorf("as-path syntax: ip as-path access-list NAME permit|deny REGEX")
		return
	}
	name := f[3]
	action, ok := parseAction(f[4])
	if !ok {
		p.errorf("as-path entry needs permit|deny")
		return
	}
	re, err := CompileASPathRegex(strings.Join(f[5:], " "))
	if err != nil {
		p.errorf("invalid as-path regex: %v", err)
		return
	}
	al, ok := p.dev.ASPathLists[name]
	if !ok {
		al = &ASPathList{Name: name}
		p.dev.ASPathLists[name] = al
	}
	al.Entries = append(al.Entries, ASPathListEntry{Action: action, Regex: re})
}

func (p *parser) parseRouteMapHeader(f []string) {
	// route-map NAME permit|deny SEQ
	if len(f) != 4 {
		p.errorf("route-map syntax: route-map NAME permit|deny SEQ")
		return
	}
	action, ok := parseAction(f[2])
	if !ok {
		p.errorf("route-map action must be permit|deny")
		return
	}
	seq, err := strconv.Atoi(f[3])
	if err != nil {
		p.errorf("invalid route-map sequence %q", f[3])
		return
	}
	rm, ok := p.dev.RouteMaps[f[1]]
	if !ok {
		rm = &RouteMap{Name: f[1]}
		p.dev.RouteMaps[f[1]] = rm
	}
	clause := &RouteMapClause{Seq: seq, Action: action}
	rm.Clauses = append(rm.Clauses, clause)
	sort.SliceStable(rm.Clauses, func(i, j int) bool { return rm.Clauses[i].Seq < rm.Clauses[j].Seq })
	p.curClause = clause
}

func (p *parser) parseRouteMapLine(f []string) {
	c := p.curClause
	switch f[0] {
	case "match":
		switch {
		case len(f) == 5 && f[1] == "ip" && f[2] == "address" && f[3] == "prefix-list":
			c.Matches = append(c.Matches, Match{Kind: MatchPrefixList, Name: f[4]})
		case len(f) == 3 && f[1] == "community":
			c.Matches = append(c.Matches, Match{Kind: MatchCommunityList, Name: f[2]})
		case len(f) == 3 && f[1] == "as-path":
			c.Matches = append(c.Matches, Match{Kind: MatchASPathList, Name: f[2]})
		default:
			p.errorf("unsupported match %q", strings.Join(f[1:], " "))
		}
	case "set":
		p.parseSet(f)
	default:
		p.errorf("unsupported route-map command %q", f[0])
	}
}

func (p *parser) parseSet(f []string) {
	c := p.curClause
	if len(f) < 3 {
		p.errorf("incomplete set command")
		return
	}
	switch f[1] {
	case "local-preference":
		v, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			p.errorf("invalid local-preference %q", f[2])
			return
		}
		c.Sets = append(c.Sets, Set{Kind: SetLocalPref, Value: uint32(v)})
	case "metric":
		v, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			p.errorf("invalid metric %q", f[2])
			return
		}
		c.Sets = append(c.Sets, Set{Kind: SetMED, Value: uint32(v)})
	case "community":
		args := f[2:]
		additive := false
		if args[len(args)-1] == "additive" {
			additive = true
			args = args[:len(args)-1]
		}
		var comms []route.Community
		for _, s := range args {
			cm, err := route.ParseCommunity(s)
			if err != nil {
				p.errorf("%v", err)
				return
			}
			comms = append(comms, cm)
		}
		if len(comms) == 0 {
			p.errorf("set community needs at least one community")
			return
		}
		c.Sets = append(c.Sets, Set{Kind: SetCommunity, Communities: comms, Additive: additive})
	case "comm-list":
		if len(f) != 4 || f[3] != "delete" {
			p.errorf("set comm-list syntax: set comm-list NAME delete")
			return
		}
		c.Sets = append(c.Sets, Set{Kind: SetCommunityDelete, Name: f[2]})
	case "as-path":
		switch {
		case f[2] == "prepend" && len(f) > 3:
			var asns []uint32
			for _, s := range f[3:] {
				v, err := strconv.ParseUint(s, 10, 32)
				if err != nil {
					p.errorf("invalid prepend ASN %q", s)
					return
				}
				asns = append(asns, uint32(v))
			}
			c.Sets = append(c.Sets, Set{Kind: SetASPathPrepend, Prepend: asns})
		case f[2] == "overwrite" && len(f) == 4:
			v, err := strconv.ParseUint(f[3], 10, 32)
			if err != nil {
				p.errorf("invalid overwrite ASN %q", f[3])
				return
			}
			c.Sets = append(c.Sets, Set{Kind: SetASPathOverwrite, Value: uint32(v)})
		default:
			p.errorf("set as-path syntax: prepend ASN... | overwrite ASN")
		}
	case "origin":
		var o route.Origin
		switch f[2] {
		case "igp":
			o = route.OriginIGP
		case "egp":
			o = route.OriginEGP
		case "incomplete":
			o = route.OriginIncomplete
		default:
			p.errorf("invalid origin %q", f[2])
			return
		}
		c.Sets = append(c.Sets, Set{Kind: SetOrigin, Origin: o})
	default:
		p.errorf("unsupported set %q", f[1])
	}
}

func (p *parser) parseACLLine(f []string) {
	// permit|deny PROTO SRC [eq N | range A B] DST [eq N | range A B]
	action, ok := parseAction(f[0])
	if !ok {
		p.errorf("acl entry must start with permit|deny")
		return
	}
	if len(f) < 4 {
		p.errorf("acl entry needs protocol, source, and destination")
		return
	}
	e := ACLEntry{Action: action, SrcPortHi: 65535, DstPortHi: 65535}
	switch f[1] {
	case "ip":
		e.Proto = 0
	case "tcp":
		e.Proto = 6
	case "udp":
		e.Proto = 17
	case "icmp":
		e.Proto = 1
	default:
		v, err := strconv.ParseUint(f[1], 10, 8)
		if err != nil || v == 0 {
			p.errorf("invalid protocol %q", f[1])
			return
		}
		e.Proto = uint8(v)
	}
	rest := f[2:]
	var err error
	e.Src, rest, err = parseACLAddr(rest)
	if err != nil {
		p.errorf("%v", err)
		return
	}
	e.SrcPortLo, e.SrcPortHi, rest, err = parseACLPorts(rest)
	if err != nil {
		p.errorf("%v", err)
		return
	}
	if len(rest) == 0 {
		p.errorf("acl entry missing destination")
		return
	}
	e.Dst, rest, err = parseACLAddr(rest)
	if err != nil {
		p.errorf("%v", err)
		return
	}
	e.DstPortLo, e.DstPortHi, rest, err = parseACLPorts(rest)
	if err != nil {
		p.errorf("%v", err)
		return
	}
	if len(rest) != 0 {
		p.errorf("trailing tokens in acl entry: %v", rest)
		return
	}
	p.curACL.Entries = append(p.curACL.Entries, e)
}

func parseACLAddr(f []string) (route.Prefix, []string, error) {
	if len(f) == 0 {
		return route.Prefix{}, nil, fmt.Errorf("missing address")
	}
	if f[0] == "any" {
		return route.Prefix{}, f[1:], nil
	}
	if strings.Contains(f[0], "/") {
		p, err := route.ParsePrefix(f[0])
		return p, f[1:], err
	}
	a, err := route.ParseAddr(f[0])
	if err != nil {
		return route.Prefix{}, nil, err
	}
	return route.MakePrefix(a, 32), f[1:], nil
}

func parseACLPorts(f []string) (lo, hi uint16, rest []string, err error) {
	lo, hi = 0, 65535
	if len(f) == 0 {
		return lo, hi, f, nil
	}
	switch f[0] {
	case "eq":
		if len(f) < 2 {
			return 0, 0, nil, fmt.Errorf("eq needs a port")
		}
		v, perr := strconv.ParseUint(f[1], 10, 16)
		if perr != nil {
			return 0, 0, nil, fmt.Errorf("invalid port %q", f[1])
		}
		return uint16(v), uint16(v), f[2:], nil
	case "range":
		if len(f) < 3 {
			return 0, 0, nil, fmt.Errorf("range needs two ports")
		}
		a, aerr := strconv.ParseUint(f[1], 10, 16)
		b, berr := strconv.ParseUint(f[2], 10, 16)
		if aerr != nil || berr != nil || a > b {
			return 0, 0, nil, fmt.Errorf("invalid port range %q %q", f[1], f[2])
		}
		return uint16(a), uint16(b), f[3:], nil
	}
	return lo, hi, f, nil
}

func parseAction(s string) (Action, bool) {
	switch s {
	case "permit":
		return Permit, true
	case "deny":
		return Deny, true
	}
	return Deny, false
}
