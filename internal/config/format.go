package config

import (
	"fmt"
	"sort"
	"strings"

	"s2/internal/route"
)

// FormatACL renders an ACL back to configuration text, the inverse of the
// parser's "ip access-list" block. Used when deriving reduced networks
// (e.g. Bonsai's per-destination compression) that must preserve a real
// device's filtering behaviour.
func FormatACL(acl *ACL) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ip access-list %s\n", acl.Name)
	for _, e := range acl.Entries {
		b.WriteString(" ")
		b.WriteString(e.Action.String())
		switch e.Proto {
		case 0:
			b.WriteString(" ip")
		case 1:
			b.WriteString(" icmp")
		case 6:
			b.WriteString(" tcp")
		case 17:
			b.WriteString(" udp")
		default:
			fmt.Fprintf(&b, " %d", e.Proto)
		}
		writeACLAddr(&b, e.Src)
		writeACLPorts(&b, e.SrcPortLo, e.SrcPortHi)
		writeACLAddr(&b, e.Dst)
		writeACLPorts(&b, e.DstPortLo, e.DstPortHi)
		b.WriteString("\n")
	}
	return b.String()
}

func writeACLAddr(b *strings.Builder, p route.Prefix) {
	if p.Len == 0 {
		b.WriteString(" any")
		return
	}
	b.WriteString(" ")
	b.WriteString(p.String())
}

func writeACLPorts(b *strings.Builder, lo, hi uint16) {
	switch {
	case lo == 0 && hi == 65535:
		// any: nothing to write
	case lo == hi:
		fmt.Fprintf(b, " eq %d", lo)
	default:
		fmt.Fprintf(b, " range %d %d", lo, hi)
	}
}

// ACLNames returns a device's ACL names in sorted order.
func (d *Device) ACLNames() []string {
	names := make([]string, 0, len(d.ACLs))
	for n := range d.ACLs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
