package route

import "testing"

func ribRoute(pfx, nh string) *Route {
	return &Route{
		Prefix:      MustParsePrefix(pfx),
		Protocol:    BGP,
		NextHop:     MustParseAddr(nh),
		NextHopNode: "n-" + nh,
		ASPath:      []uint32{65000},
		LocalPref:   100,
	}
}

func TestRIBSetGetRemove(t *testing.T) {
	r := NewRIB()
	p := MustParsePrefix("10.0.0.0/24")
	if r.Len() != 0 || r.RouteCount() != 0 || r.ModelBytes() != 0 {
		t.Fatal("empty RIB should report zeros")
	}
	if !r.SetRoutes(p, []*Route{ribRoute("10.0.0.0/24", "1.1.1.1")}) {
		t.Fatal("first insert should report change")
	}
	if r.Len() != 1 || r.RouteCount() != 1 {
		t.Fatal("counts after insert")
	}
	if r.ModelBytes() <= 0 {
		t.Fatal("bytes should be charged")
	}
	// Idempotent set: no change.
	if r.SetRoutes(p, []*Route{ribRoute("10.0.0.0/24", "1.1.1.1")}) {
		t.Fatal("identical set should report no change")
	}
	v := r.Version()
	if r.SetRoutes(p, []*Route{ribRoute("10.0.0.0/24", "1.1.1.1")}); r.Version() != v {
		t.Fatal("no-op set must not bump version")
	}
	if !r.Remove(p) || r.Len() != 0 || r.ModelBytes() != 0 {
		t.Fatal("remove should clear entry and bytes")
	}
	if r.Remove(p) {
		t.Fatal("double remove should report no change")
	}
}

func TestRIBMultipath(t *testing.T) {
	r := NewRIB()
	p := MustParsePrefix("10.0.0.0/24")
	paths := []*Route{
		ribRoute("10.0.0.0/24", "1.1.1.2"),
		ribRoute("10.0.0.0/24", "1.1.1.1"),
	}
	r.SetRoutes(p, paths)
	got := r.Get(p)
	if len(got) != 2 {
		t.Fatalf("want 2 ECMP paths, got %d", len(got))
	}
	// Stored in canonical order regardless of insertion order.
	r2 := NewRIB()
	r2.SetRoutes(p, []*Route{paths[1], paths[0]})
	if !r.Equal(r2) {
		t.Fatal("route set order must not affect RIB equality")
	}
}

func TestRIBEqualDiff(t *testing.T) {
	a, b := NewRIB(), NewRIB()
	p1 := MustParsePrefix("10.0.0.0/24")
	p2 := MustParsePrefix("10.0.1.0/24")
	a.SetRoutes(p1, []*Route{ribRoute("10.0.0.0/24", "1.1.1.1")})
	b.SetRoutes(p1, []*Route{ribRoute("10.0.0.0/24", "1.1.1.1")})
	if !a.Equal(b) || len(a.Diff(b)) != 0 {
		t.Fatal("identical RIBs must be equal")
	}
	b.SetRoutes(p2, []*Route{ribRoute("10.0.1.0/24", "1.1.1.1")})
	if a.Equal(b) {
		t.Fatal("extra prefix must break equality")
	}
	if d := a.Diff(b); len(d) != 1 || d[0] != p2 {
		t.Fatalf("Diff = %v, want [%v]", d, p2)
	}
	a.SetRoutes(p2, []*Route{ribRoute("10.0.1.0/24", "2.2.2.2")})
	if d := a.Diff(b); len(d) != 1 || d[0] != p2 {
		t.Fatalf("Diff with differing attrs = %v", d)
	}
}

func TestRIBWalkSortedAndClear(t *testing.T) {
	r := NewRIB()
	for _, s := range []string{"10.0.2.0/24", "10.0.0.0/24", "10.0.1.0/24"} {
		r.SetRoutes(MustParsePrefix(s), []*Route{ribRoute(s, "1.1.1.1")})
	}
	var seen []Prefix
	r.Walk(func(p Prefix, rs []*Route) { seen = append(seen, p) })
	for i := 1; i < len(seen); i++ {
		if seen[i-1].Compare(seen[i]) >= 0 {
			t.Fatal("Walk must visit prefixes in sorted order")
		}
	}
	if len(r.All()) != 3 {
		t.Fatal("All should return all routes")
	}
	r.Clear()
	if r.Len() != 0 || r.ModelBytes() != 0 {
		t.Fatal("Clear should empty the RIB")
	}
}
