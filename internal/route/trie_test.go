package route

import (
	"math/rand"
	"testing"
)

func TestTrieInsertGetDelete(t *testing.T) {
	tr := NewTrie[string]()
	p := MustParsePrefix("10.0.0.0/8")
	if _, ok := tr.Get(p); ok {
		t.Fatal("empty trie should not contain anything")
	}
	tr.Insert(p, "a")
	if v, ok := tr.Get(p); !ok || v != "a" {
		t.Fatal("Get after Insert")
	}
	tr.Insert(p, "b")
	if v, _ := tr.Get(p); v != "b" || tr.Len() != 1 {
		t.Fatal("Insert should replace, not duplicate")
	}
	if !tr.Delete(p) || tr.Len() != 0 {
		t.Fatal("Delete")
	}
	if tr.Delete(p) {
		t.Fatal("double Delete should return false")
	}
}

func TestTrieLookupLPM(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "eight")
	tr.Insert(MustParsePrefix("10.1.0.0/16"), "sixteen")
	tr.Insert(MustParsePrefix("10.1.2.0/24"), "twentyfour")

	cases := []struct {
		addr string
		want string
		pfx  string
	}{
		{"10.1.2.3", "twentyfour", "10.1.2.0/24"},
		{"10.1.3.1", "sixteen", "10.1.0.0/16"},
		{"10.9.9.9", "eight", "10.0.0.0/8"},
		{"192.168.0.1", "default", "0.0.0.0/0"},
	}
	for _, c := range cases {
		v, pfx, ok := tr.Lookup(MustParseAddr(c.addr))
		if !ok || v != c.want || pfx.String() != c.pfx {
			t.Errorf("Lookup(%s) = %q %v %v, want %q %s", c.addr, v, pfx, ok, c.want, c.pfx)
		}
	}

	empty := NewTrie[string]()
	if _, _, ok := empty.Lookup(MustParseAddr("1.2.3.4")); ok {
		t.Error("lookup in empty trie must miss")
	}
}

func TestTrieCoveredBy(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParsePrefix("10.1.0.0/16"), 1)
	tr.Insert(MustParsePrefix("10.1.2.0/24"), 2)
	tr.Insert(MustParsePrefix("10.1.3.0/24"), 3)
	tr.Insert(MustParsePrefix("10.2.0.0/16"), 4)

	got := tr.CoveredBy(MustParsePrefix("10.1.0.0/16"))
	if len(got) != 3 {
		t.Fatalf("CoveredBy(/16) = %v, want 3 entries", got)
	}
	for _, e := range got {
		if !MustParsePrefix("10.1.0.0/16").Covers(e.Prefix) {
			t.Errorf("entry %v not covered", e.Prefix)
		}
	}
	if got := tr.CoveredBy(MustParsePrefix("11.0.0.0/8")); len(got) != 0 {
		t.Fatalf("CoveredBy miss = %v", got)
	}
}

func TestTrieWalkVisitsAll(t *testing.T) {
	tr := NewTrie[int]()
	prefixes := []string{"0.0.0.0/0", "10.0.0.0/8", "10.1.2.0/24", "192.168.0.0/16", "255.255.255.255/32"}
	for i, s := range prefixes {
		tr.Insert(MustParsePrefix(s), i)
	}
	seen := map[Prefix]int{}
	tr.Walk(func(p Prefix, v int) { seen[p] = v })
	if len(seen) != len(prefixes) {
		t.Fatalf("Walk visited %d, want %d", len(seen), len(prefixes))
	}
	for i, s := range prefixes {
		if seen[MustParsePrefix(s)] != i {
			t.Errorf("Walk value mismatch for %s", s)
		}
	}
}

// TestTrieAgainstLinearScan cross-checks trie LPM against a brute-force scan
// on random prefix sets — the property the FIB depends on.
func TestTrieAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		tr := NewTrie[Prefix]()
		var all []Prefix
		for i := 0; i < 60; i++ {
			p := MakePrefix(rng.Uint32(), uint8(rng.Intn(33)))
			tr.Insert(p, p)
			all = append(all, p)
		}
		for i := 0; i < 200; i++ {
			addr := rng.Uint32()
			// Brute force longest match.
			var best Prefix
			found := false
			for _, p := range all {
				if p.Contains(addr) && (!found || p.Len > best.Len) {
					best, found = p, true
				}
			}
			v, pfx, ok := tr.Lookup(addr)
			if ok != found {
				t.Fatalf("lookup(%s): ok=%v want %v", FormatAddr(addr), ok, found)
			}
			if found && (pfx != best || v != best) {
				t.Fatalf("lookup(%s) = %v, want %v", FormatAddr(addr), pfx, best)
			}
		}
	}
}
