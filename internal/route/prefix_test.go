package route

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"10.0.0.1", 0x0a000001, true},
		{"192.168.1.2", 0xc0a80102, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %08x, want %08x", c.in, got, c.want)
		}
	}
}

func TestFormatAddrRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		got, err := ParseAddr(FormatAddr(a))
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.1.2.3/24")
	if p.Addr != 0x0a010200 || p.Len != 24 {
		t.Fatalf("got %v, want 10.1.2.0/24 canonicalized", p)
	}
	if p.String() != "10.1.2.0/24" {
		t.Fatalf("String() = %q", p.String())
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/x", "nope/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", bad)
		}
	}
}

func TestMask(t *testing.T) {
	cases := map[uint8]uint32{
		0:  0,
		1:  0x80000000,
		8:  0xff000000,
		24: 0xffffff00,
		31: 0xfffffffe,
		32: 0xffffffff,
	}
	for l, want := range cases {
		if got := Mask(l); got != want {
			t.Errorf("Mask(%d) = %08x, want %08x", l, got, want)
		}
	}
}

func TestContainsCovers(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(MustParseAddr("10.1.255.254")) {
		t.Error("10.1.0.0/16 should contain 10.1.255.254")
	}
	if p.Contains(MustParseAddr("10.2.0.0")) {
		t.Error("10.1.0.0/16 should not contain 10.2.0.0")
	}
	if !p.Covers(MustParsePrefix("10.1.2.0/24")) {
		t.Error("/16 should cover /24 inside it")
	}
	if p.Covers(MustParsePrefix("10.2.2.0/24")) {
		t.Error("/16 should not cover /24 outside it")
	}
	if MustParsePrefix("10.1.2.0/24").Covers(p) {
		t.Error("more specific should not cover less specific")
	}
	if !p.Covers(p) {
		t.Error("prefix should cover itself")
	}
	def := Prefix{}
	if !def.Covers(p) || !def.Contains(0xffffffff) {
		t.Error("default route should cover everything")
	}
}

func TestOverlaps(t *testing.T) {
	a := MustParsePrefix("10.1.0.0/16")
	b := MustParsePrefix("10.1.2.0/24")
	c := MustParsePrefix("10.2.0.0/16")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes do not overlap")
	}
}

func TestFirstLastAddr(t *testing.T) {
	p := MustParsePrefix("10.1.2.0/24")
	if p.FirstAddr() != MustParseAddr("10.1.2.0") {
		t.Error("FirstAddr")
	}
	if p.LastAddr() != MustParseAddr("10.1.2.255") {
		t.Error("LastAddr")
	}
	host := MustParsePrefix("10.1.2.3/32")
	if host.FirstAddr() != host.LastAddr() {
		t.Error("host route should have a single address")
	}
}

func TestPrefixCompare(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.0.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 {
		t.Error("shorter length sorts first at equal address")
	}
	if a.Compare(c) >= 0 || c.Compare(a) <= 0 {
		t.Error("lower address sorts first")
	}
	if a.Compare(a) != 0 {
		t.Error("equal prefixes compare 0")
	}
}

func TestCoversQuick(t *testing.T) {
	// Property: p covers q iff every generated address of q is contained
	// in p, sampled randomly.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := MakePrefix(rng.Uint32(), uint8(rng.Intn(33)))
		q := MakePrefix(rng.Uint32(), uint8(rng.Intn(33)))
		addr := q.Addr | (rng.Uint32() &^ Mask(q.Len))
		if p.Covers(q) && !p.Contains(addr) {
			t.Fatalf("p=%v covers q=%v but does not contain %s", p, q, FormatAddr(addr))
		}
	}
}
