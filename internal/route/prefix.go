// Package route provides the IPv4 routing substrate shared by the control
// plane simulation and the data plane verification: prefixes, route types
// with protocol-specific attributes, multipath RIBs, and a longest-prefix
// match trie used for FIB construction.
//
// The paper's prototype reuses Batfish's route model; this package is the
// from-scratch Go equivalent. It is IPv4-only, matching the paper's current
// scope (§7, "S2 now only supports IPv4").
package route

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is an IPv4 prefix in canonical form: all bits beyond Len are zero.
// The zero value is 0.0.0.0/0, the default route.
type Prefix struct {
	Addr uint32 // network address, host byte order
	Len  uint8  // prefix length, 0..32
}

// Mask returns the netmask for a prefix length as a 32-bit word.
func Mask(length uint8) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << (32 - length)
}

// MakePrefix canonicalizes addr under the given length.
func MakePrefix(addr uint32, length uint8) Prefix {
	if length > 32 {
		length = 32
	}
	return Prefix{Addr: addr & Mask(length), Len: length}
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (uint32, error) {
	var parts [4]uint64
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("route: invalid IPv4 address %q", s)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		v, err := strconv.ParseUint(tok, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("route: invalid IPv4 address %q: %v", s, err)
		}
		parts[i] = v
	}
	return uint32(parts[0])<<24 | uint32(parts[1])<<16 | uint32(parts[2])<<8 | uint32(parts[3]), nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and synthesis.
func MustParseAddr(s string) uint32 {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// FormatAddr renders a 32-bit address as a dotted quad.
func FormatAddr(a uint32) string {
	var b strings.Builder
	b.Grow(15)
	for i := 3; i >= 0; i-- {
		b.WriteString(strconv.FormatUint(uint64(a>>(8*i))&0xff, 10))
		if i > 0 {
			b.WriteByte('.')
		}
	}
	return b.String()
}

// ParsePrefix parses "a.b.c.d/len". The address is canonicalized (host bits
// cleared), as routers do when installing routes.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("route: prefix %q missing /length", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	l, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || l > 32 {
		return Prefix{}, fmt.Errorf("route: invalid prefix length in %q", s)
	}
	return MakePrefix(addr, uint8(l)), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the prefix as "a.b.c.d/len".
func (p Prefix) String() string {
	return FormatAddr(p.Addr) + "/" + strconv.FormatUint(uint64(p.Len), 10)
}

// Contains reports whether p covers the address a.
func (p Prefix) Contains(a uint32) bool {
	return a&Mask(p.Len) == p.Addr
}

// Covers reports whether p covers the entire prefix q (p is equal to or less
// specific than q).
func (p Prefix) Covers(q Prefix) bool {
	return p.Len <= q.Len && q.Addr&Mask(p.Len) == p.Addr
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Covers(q) || q.Covers(p)
}

// FirstAddr returns the lowest address in p.
func (p Prefix) FirstAddr() uint32 { return p.Addr }

// LastAddr returns the highest address in p.
func (p Prefix) LastAddr() uint32 { return p.Addr | ^Mask(p.Len) }

// Compare orders prefixes by address then by length, suitable for sorting.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.Addr < q.Addr:
		return -1
	case p.Addr > q.Addr:
		return 1
	case p.Len < q.Len:
		return -1
	case p.Len > q.Len:
		return 1
	}
	return 0
}
