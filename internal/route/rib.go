package route

import "sort"

// RIB is a multipath routing information base: for each prefix it holds the
// set of equally-best installed routes (ECMP). The RIB itself is
// protocol-agnostic; protocol decision processes (BGP best path, OSPF SPF)
// decide what gets installed.
//
// A RIB is not safe for concurrent mutation; in S2 each node's RIBs are only
// touched by the worker goroutine executing that node's round.
type RIB struct {
	entries map[Prefix][]*Route
	// bytes is the modelled memory footprint of all held routes.
	bytes int64
	// version increments on every mutation, supporting cheap convergence
	// and delta-export checks.
	version uint64
}

// NewRIB returns an empty RIB.
func NewRIB() *RIB {
	return &RIB{entries: make(map[Prefix][]*Route)}
}

// Version returns the mutation counter.
func (r *RIB) Version() uint64 { return r.version }

// ModelBytes returns the modelled memory footprint of the RIB contents.
func (r *RIB) ModelBytes() int64 { return r.bytes }

// Len returns the number of prefixes with at least one route.
func (r *RIB) Len() int { return len(r.entries) }

// RouteCount returns the total number of installed routes across prefixes
// (each ECMP path counts once).
func (r *RIB) RouteCount() int {
	n := 0
	for _, rs := range r.entries {
		n += len(rs)
	}
	return n
}

// Get returns the installed routes for a prefix. The returned slice is owned
// by the RIB and must not be modified.
func (r *RIB) Get(p Prefix) []*Route { return r.entries[p] }

// Prefixes returns all prefixes in sorted order.
func (r *RIB) Prefixes() []Prefix {
	ps := make([]Prefix, 0, len(r.entries))
	for p := range r.entries {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })
	return ps
}

// SetRoutes replaces the route set for a prefix and reports whether anything
// changed. Passing an empty set removes the prefix. The routes are stored in
// deterministic (sorted) order so RIB dumps are canonical.
func (r *RIB) SetRoutes(p Prefix, routes []*Route) bool {
	old := r.entries[p]
	if len(routes) == 0 {
		if len(old) == 0 {
			return false
		}
		for _, o := range old {
			r.bytes -= o.ModelBytes()
		}
		delete(r.entries, p)
		r.version++
		return true
	}
	rs := append([]*Route(nil), routes...)
	SortRoutes(rs)
	if routeSetsEqual(old, rs) {
		return false
	}
	for _, o := range old {
		r.bytes -= o.ModelBytes()
	}
	for _, n := range rs {
		r.bytes += n.ModelBytes()
	}
	r.entries[p] = rs
	r.version++
	return true
}

// Remove deletes the route set for a prefix, reporting whether it existed.
func (r *RIB) Remove(p Prefix) bool { return r.SetRoutes(p, nil) }

// All returns every installed route in deterministic order.
func (r *RIB) All() []*Route {
	out := make([]*Route, 0, r.RouteCount())
	for _, p := range r.Prefixes() {
		out = append(out, r.entries[p]...)
	}
	return out
}

// Walk calls fn for each prefix in sorted order with its installed routes.
func (r *RIB) Walk(fn func(Prefix, []*Route)) {
	for _, p := range r.Prefixes() {
		fn(p, r.entries[p])
	}
}

// Clear removes all entries.
func (r *RIB) Clear() {
	if len(r.entries) == 0 {
		return
	}
	r.entries = make(map[Prefix][]*Route)
	r.bytes = 0
	r.version++
}

func routeSetsEqual(a, b []*Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// Equal reports whether two RIBs hold exactly the same route sets. Used by
// the equivalence tests between S2 and the monolithic baseline (§5.3: "they
// output the same set of RIBs").
func (r *RIB) Equal(o *RIB) bool {
	if len(r.entries) != len(o.entries) {
		return false
	}
	for p, rs := range r.entries {
		if !routeSetsEqual(rs, o.entries[p]) {
			return false
		}
	}
	return true
}

// Diff returns prefixes whose route sets differ between r and o, sorted.
// Used for debugging equivalence failures.
func (r *RIB) Diff(o *RIB) []Prefix {
	seen := map[Prefix]bool{}
	var out []Prefix
	for p, rs := range r.entries {
		if !routeSetsEqual(rs, o.entries[p]) {
			out = append(out, p)
		}
		seen[p] = true
	}
	for p := range o.entries {
		if !seen[p] {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
