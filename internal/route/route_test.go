package route

import (
	"strings"
	"testing"
)

func TestProtocolAdminDistance(t *testing.T) {
	order := []Protocol{Connected, Static, BGP, OSPF, IBGP}
	for i := 1; i < len(order); i++ {
		if order[i-1].AdminDistance() >= order[i].AdminDistance() {
			t.Errorf("admin distance %v (%d) should be < %v (%d)",
				order[i-1], order[i-1].AdminDistance(), order[i], order[i].AdminDistance())
		}
	}
}

func TestProtocolString(t *testing.T) {
	for p, want := range map[Protocol]string{
		Connected: "connected", Static: "static", OSPF: "ospf",
		BGP: "bgp", IBGP: "ibgp", Aggregate: "aggregate",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestCommunity(t *testing.T) {
	c := MakeCommunity(65000, 100)
	if c.String() != "65000:100" {
		t.Fatalf("String = %q", c.String())
	}
	parsed, err := ParseCommunity("65000:100")
	if err != nil || parsed != c {
		t.Fatalf("ParseCommunity: %v %v", parsed, err)
	}
	for _, bad := range []string{"65000", "70000:1", "1:70000", "a:b"} {
		if _, err := ParseCommunity(bad); err == nil {
			t.Errorf("ParseCommunity(%q) succeeded", bad)
		}
	}
}

func testRoute() *Route {
	return &Route{
		Prefix:       MustParsePrefix("10.8.0.0/24"),
		Protocol:     BGP,
		NextHop:      MustParseAddr("10.0.0.1"),
		NextHopNode:  "agg-0-0",
		ASPath:       []uint32{65100, 65001},
		LocalPref:    100,
		Origin:       OriginIGP,
		Communities:  []Community{MakeCommunity(65000, 100)},
		OriginatorID: 42,
		PeerAS:       65100,
	}
}

func TestRouteCloneIndependence(t *testing.T) {
	r := testRoute()
	c := r.Clone()
	if !r.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.ASPath[0] = 1
	c.Communities[0] = 0
	if r.ASPath[0] != 65100 || r.Communities[0] != MakeCommunity(65000, 100) {
		t.Fatal("mutating clone changed original")
	}
}

func TestRouteEqualAndKey(t *testing.T) {
	a, b := testRoute(), testRoute()
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Fatal("identical routes must be Equal with equal Keys")
	}
	b.ASPath = []uint32{65100, 65002}
	if a.Equal(b) || a.Key() == b.Key() {
		t.Fatal("differing AS path must break equality and key")
	}
	c := testRoute()
	c.LocalPref = 200
	if a.Equal(c) || a.Key() == c.Key() {
		t.Fatal("differing local-pref must break equality and key")
	}
}

func TestRouteHelpers(t *testing.T) {
	r := testRoute()
	if !r.HasCommunity(MakeCommunity(65000, 100)) || r.HasCommunity(MakeCommunity(1, 1)) {
		t.Error("HasCommunity")
	}
	if !r.ASPathContains(65001) || r.ASPathContains(9) {
		t.Error("ASPathContains")
	}
	if r.ModelBytes() <= 96 {
		t.Error("ModelBytes should charge for attributes")
	}
	s := r.String()
	for _, want := range []string{"10.8.0.0/24", "bgp", "agg-0-0", "65100", "lp=100"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestSortRoutesDeterministic(t *testing.T) {
	a := testRoute()
	b := testRoute()
	b.Prefix = MustParsePrefix("10.7.0.0/24")
	c := testRoute()
	c.LocalPref = 300
	rs := []*Route{a, c, b}
	SortRoutes(rs)
	if rs[0] != b {
		t.Fatal("lower prefix should sort first")
	}
	rs2 := []*Route{c, b, a}
	SortRoutes(rs2)
	for i := range rs {
		if rs[i] != rs2[i] {
			t.Fatal("sorting is not deterministic across input orders")
		}
	}
}
