package route

// Trie is a binary (uncompressed path, per-bit) trie over IPv4 prefixes used
// for longest-prefix-match during FIB construction and for finding
// more-specific routes during aggregate activation. Values are arbitrary;
// the data plane stores per-prefix forwarding entries, the BGP model stores
// contributing routes.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] {
	return &Trie[V]{root: &trieNode[V]{}}
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

func bitAt(addr uint32, i uint8) int {
	return int(addr>>(31-i)) & 1
}

// Insert stores v under p, replacing any existing value.
func (t *Trie[V]) Insert(p Prefix, v V) {
	n := t.root
	for i := uint8(0); i < p.Len; i++ {
		b := bitAt(p.Addr, i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = v, true
}

// Get returns the value stored exactly at p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	n := t.root
	for i := uint8(0); i < p.Len; i++ {
		b := bitAt(p.Addr, i)
		if n.child[b] == nil {
			var zero V
			return zero, false
		}
		n = n.child[b]
	}
	if !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Delete removes the value stored exactly at p, reporting whether it existed.
// Emptied nodes are left in place; tries in S2 are rebuilt per shard round so
// structural pruning is unnecessary.
func (t *Trie[V]) Delete(p Prefix) bool {
	n := t.root
	for i := uint8(0); i < p.Len; i++ {
		b := bitAt(p.Addr, i)
		if n.child[b] == nil {
			return false
		}
		n = n.child[b]
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Lookup performs longest-prefix match for addr, returning the value and the
// matching prefix.
func (t *Trie[V]) Lookup(addr uint32) (V, Prefix, bool) {
	var (
		best    V
		bestPfx Prefix
		found   bool
	)
	n := t.root
	if n.set {
		best, bestPfx, found = n.val, Prefix{}, true
	}
	for i := uint8(0); i < 32; i++ {
		b := bitAt(addr, i)
		if n.child[b] == nil {
			break
		}
		n = n.child[b]
		if n.set {
			best, bestPfx, found = n.val, MakePrefix(addr, i+1), true
		}
	}
	return best, bestPfx, found
}

// CoveredBy returns, for every stored prefix strictly more specific than or
// equal to p, its (prefix, value) pair. Used to find an aggregate's
// contributing routes.
func (t *Trie[V]) CoveredBy(p Prefix) []TrieEntry[V] {
	n := t.root
	for i := uint8(0); i < p.Len; i++ {
		b := bitAt(p.Addr, i)
		if n.child[b] == nil {
			return nil
		}
		n = n.child[b]
	}
	var out []TrieEntry[V]
	collect(n, p, &out)
	return out
}

// TrieEntry pairs a stored prefix with its value.
type TrieEntry[V any] struct {
	Prefix Prefix
	Value  V
}

func collect[V any](n *trieNode[V], p Prefix, out *[]TrieEntry[V]) {
	if n.set {
		*out = append(*out, TrieEntry[V]{p, n.val})
	}
	for b, c := range n.child {
		if c == nil {
			continue
		}
		cp := p
		cp.Len++
		if b == 1 {
			cp.Addr |= 1 << (31 - p.Len)
		}
		collect(c, cp, out)
	}
}

// Walk visits every stored (prefix, value) pair in trie (address) order.
func (t *Trie[V]) Walk(fn func(Prefix, V)) {
	var rec func(n *trieNode[V], p Prefix)
	rec = func(n *trieNode[V], p Prefix) {
		if n.set {
			fn(p, n.val)
		}
		for b, c := range n.child {
			if c == nil {
				continue
			}
			cp := p
			cp.Len++
			if b == 1 {
				cp.Addr |= 1 << (31 - p.Len)
			}
			rec(c, cp)
		}
	}
	rec(t.root, Prefix{})
}
