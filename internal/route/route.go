package route

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Protocol identifies the origin protocol of a route. Administrative
// distances follow common vendor defaults.
type Protocol uint8

const (
	Connected Protocol = iota
	Static
	OSPF
	BGP       // learned over eBGP
	IBGP      // learned over iBGP
	Aggregate // locally generated BGP aggregate
)

// String returns the conventional protocol name.
func (p Protocol) String() string {
	switch p {
	case Connected:
		return "connected"
	case Static:
		return "static"
	case OSPF:
		return "ospf"
	case BGP:
		return "bgp"
	case IBGP:
		return "ibgp"
	case Aggregate:
		return "aggregate"
	}
	return "unknown(" + strconv.Itoa(int(p)) + ")"
}

// AdminDistance returns the administrative distance used when routes of
// different protocols compete for the same prefix in the main RIB.
func (p Protocol) AdminDistance() uint8 {
	switch p {
	case Connected:
		return 0
	case Static:
		return 1
	case BGP:
		return 20
	case OSPF:
		return 110
	case IBGP:
		return 200
	case Aggregate:
		return 200
	}
	return 255
}

// Origin is the BGP ORIGIN attribute. Lower is preferred.
type Origin uint8

const (
	OriginIGP Origin = iota
	OriginEGP
	OriginIncomplete
)

func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "igp"
	case OriginEGP:
		return "egp"
	}
	return "incomplete"
}

// Community is a standard BGP community encoded as asn<<16|value.
type Community uint32

// MakeCommunity builds a community from its two 16-bit halves.
func MakeCommunity(asn, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// ParseCommunity parses "asn:value".
func ParseCommunity(s string) (Community, error) {
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return 0, fmt.Errorf("route: community %q missing colon", s)
	}
	hi, err := strconv.ParseUint(s[:colon], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("route: invalid community %q: %v", s, err)
	}
	lo, err := strconv.ParseUint(s[colon+1:], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("route: invalid community %q: %v", s, err)
	}
	return MakeCommunity(uint16(hi), uint16(lo)), nil
}

// String renders the community as "asn:value".
func (c Community) String() string {
	return strconv.FormatUint(uint64(c>>16), 10) + ":" + strconv.FormatUint(uint64(c&0xffff), 10)
}

// Route is a single RIB entry. It is treated as immutable once installed:
// policy application always copies before modifying, so routes can be shared
// across Adj-RIBs, serialized, and hashed without synchronization.
type Route struct {
	Prefix   Prefix
	Protocol Protocol

	// NextHop is the IP of the next-hop interface; 0 for locally
	// originated routes (connected, network statements, aggregates).
	NextHop uint32
	// NextHopNode names the neighbouring device this route was learned
	// from; empty for local routes. It is carried so FIB construction can
	// resolve egress ports without re-deriving adjacency from NextHop.
	NextHopNode string

	// Metric is the IGP cost for OSPF routes and the MED for BGP routes.
	Metric uint32

	// BGP path attributes; zero-valued for non-BGP routes.
	ASPath      []uint32
	LocalPref   uint32
	Origin      Origin
	Communities []Community
	// OriginatorID is the BGP router ID of the route's originator and the
	// final tiebreaker in the decision process.
	OriginatorID uint32
	// PeerAS is the AS of the neighbour the route was learned from (used
	// for MED comparability).
	PeerAS uint32
}

// Clone returns a deep copy whose attribute slices are safe to modify.
func (r *Route) Clone() *Route {
	c := *r
	if len(r.ASPath) > 0 {
		c.ASPath = append([]uint32(nil), r.ASPath...)
	}
	if len(r.Communities) > 0 {
		c.Communities = append([]Community(nil), r.Communities...)
	}
	return &c
}

// HasCommunity reports whether the route carries community c.
func (r *Route) HasCommunity(c Community) bool {
	for _, x := range r.Communities {
		if x == c {
			return true
		}
	}
	return false
}

// ASPathContains reports whether asn appears anywhere in the AS path. BGP
// speakers use this for loop detection on receipt.
func (r *Route) ASPathContains(asn uint32) bool {
	for _, a := range r.ASPath {
		if a == asn {
			return true
		}
	}
	return false
}

// ModelBytes is the modelled in-memory footprint of the route, charged to
// the owning worker's memory budget by the metrics package. The base cost
// approximates the paper prototype's immutable Java route objects (object
// headers, boxed attributes, per-entry map overhead — several hundred
// bytes each), plus per-element costs for variable-length attributes.
func (r *Route) ModelBytes() int64 {
	return 256 + int64(len(r.ASPath))*8 + int64(len(r.Communities))*8 + int64(len(r.NextHopNode))
}

// LiteModelBytes is the modelled footprint of an attribute-stripped route
// retained only for FIB construction (prefix + next hop), far cheaper than
// a full route — the saving prefix sharding banks between rounds.
const LiteModelBytes = 48

// String renders the route in a show-ip-route-like single line form.
func (r *Route) String() string {
	var b strings.Builder
	b.WriteString(r.Prefix.String())
	b.WriteString(" [")
	b.WriteString(r.Protocol.String())
	b.WriteString("] via ")
	if r.NextHopNode != "" {
		b.WriteString(r.NextHopNode)
		b.WriteByte('(')
		b.WriteString(FormatAddr(r.NextHop))
		b.WriteByte(')')
	} else {
		b.WriteString("local")
	}
	if r.Protocol == BGP || r.Protocol == IBGP || r.Protocol == Aggregate {
		b.WriteString(" as-path=")
		for i, a := range r.ASPath {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatUint(uint64(a), 10))
		}
		b.WriteString(" lp=")
		b.WriteString(strconv.FormatUint(uint64(r.LocalPref), 10))
		b.WriteString(" med=")
		b.WriteString(strconv.FormatUint(uint64(r.Metric), 10))
		if len(r.Communities) > 0 {
			b.WriteString(" comm=")
			for i, c := range r.Communities {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(c.String())
			}
		}
	}
	return b.String()
}

// Key is a canonical identity for a route used for change detection and for
// deduplication in Adj-RIBs: two routes with equal keys are interchangeable
// for the simulation. The encoding is binary, not human-readable: fixed-width
// big-endian scalars, length-prefixed attribute lists, and the next-hop node
// name as the tail, built in a single allocation. Keys sort prefix-major
// because the leading five bytes are Prefix.Addr and Prefix.Len in big-endian
// order, matching Prefix.Compare.
func (r *Route) Key() string {
	var b strings.Builder
	b.Grow(25 + 4*len(r.ASPath) + 2 + 4*len(r.Communities) + len(r.NextHopNode))
	put32 := func(v uint32) {
		b.WriteByte(byte(v >> 24))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v))
	}
	put32(r.Prefix.Addr)
	b.WriteByte(r.Prefix.Len)
	b.WriteByte(byte(r.Protocol))
	put32(r.NextHop)
	put32(r.Metric)
	put32(r.LocalPref)
	b.WriteByte(byte(r.Origin))
	put32(r.OriginatorID)
	b.WriteByte(byte(len(r.ASPath) >> 8))
	b.WriteByte(byte(len(r.ASPath)))
	for _, a := range r.ASPath {
		put32(a)
	}
	b.WriteByte(byte(len(r.Communities) >> 8))
	b.WriteByte(byte(len(r.Communities)))
	for _, c := range r.Communities {
		put32(uint32(c))
	}
	b.WriteString(r.NextHopNode)
	return b.String()
}

// Equal reports attribute-level equality.
func (r *Route) Equal(o *Route) bool {
	if r.Prefix != o.Prefix || r.Protocol != o.Protocol || r.NextHop != o.NextHop ||
		r.NextHopNode != o.NextHopNode || r.Metric != o.Metric ||
		r.LocalPref != o.LocalPref || r.Origin != o.Origin ||
		r.OriginatorID != o.OriginatorID || r.PeerAS != o.PeerAS ||
		len(r.ASPath) != len(o.ASPath) || len(r.Communities) != len(o.Communities) {
		return false
	}
	for i := range r.ASPath {
		if r.ASPath[i] != o.ASPath[i] {
			return false
		}
	}
	for i := range r.Communities {
		if r.Communities[i] != o.Communities[i] {
			return false
		}
	}
	return true
}

// SortRoutes orders routes deterministically (prefix, then key). Used to
// canonicalize RIB dumps for comparison between S2 and the baselines, and by
// the BGP decision process to fix its iteration order — which makes this a
// hot path, so keys are computed once per route up front instead of inside
// the comparator. Key order alone is prefix-major (see Key), so a plain key
// sort yields the documented (prefix, then key) order.
func SortRoutes(rs []*Route) {
	if len(rs) < 2 {
		return
	}
	keys := make([]string, len(rs))
	for i, r := range rs {
		keys[i] = r.Key()
	}
	sort.Sort(&routeSorter{rs: rs, keys: keys})
}

type routeSorter struct {
	rs   []*Route
	keys []string
}

func (s *routeSorter) Len() int           { return len(s.rs) }
func (s *routeSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *routeSorter) Swap(i, j int) {
	s.rs[i], s.rs[j] = s.rs[j], s.rs[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
