package dataplane

import (
	"testing"

	"s2/internal/bdd"
	"s2/internal/config"
	"s2/internal/route"
	"s2/internal/topology"
)

// chainSetup builds a 3-node chain r1-r2-r3 where r3 owns 10.8.0.0/24 and
// every node has a (manually constructed) BGP RIB pointing toward r3.
// Returns the compiled per-node data planes on a single engine.
func chainSetup(t *testing.T, mutate func(name string, rib *route.RIB), cfgMutate func(map[string]string)) (
	*bdd.Engine, map[string]*NodeDP, AdjacencyIndex) {
	t.Helper()
	texts := map[string]string{
		"r1.cfg": `hostname r1
interface eth0
 ip address 10.0.0.0/31
`,
		"r2.cfg": `hostname r2
interface eth0
 ip address 10.0.0.1/31
interface eth1
 ip address 10.0.1.0/31
`,
		"r3.cfg": `hostname r3
interface eth0
 ip address 10.0.1.1/31
interface vlan10
 ip address 10.8.0.1/24
`,
	}
	if cfgMutate != nil {
		cfgMutate(texts)
	}
	snap, err := config.ParseTexts(texts)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := topology.Build(snap)
	if err != nil {
		t.Fatal(err)
	}

	ribs := map[string]*route.RIB{
		"r1": route.NewRIB(), "r2": route.NewRIB(), "r3": route.NewRIB(),
	}
	dst := route.MustParsePrefix("10.8.0.0/24")
	ribs["r1"].SetRoutes(dst, []*route.Route{bgpRoute("10.8.0.0/24", "10.0.0.1", "r2")})
	ribs["r2"].SetRoutes(dst, []*route.Route{bgpRoute("10.8.0.0/24", "10.0.1.1", "r3")})
	if mutate != nil {
		for name, rib := range ribs {
			mutate(name, rib)
		}
	}

	e := Layout{MetaBits: 4}.NewEngine(0)
	nodes := map[string]*NodeDP{}
	for name, dev := range snap.Devices {
		fib, errs := BuildFIB(dev, ribs[name])
		if len(errs) != 0 {
			t.Fatalf("%s fib errors: %v", name, errs)
		}
		n, err := CompileNode(e, dev, fib)
		if err != nil {
			t.Fatal(err)
		}
		nodes[name] = n
	}
	return e, nodes, BuildAdjacencyIndex(net)
}

func collectOutcomes(t *testing.T, e *bdd.Engine, nodes map[string]*NodeDP, adj AdjacencyIndex,
	source string, pkt bdd.Ref, q *Query) *Collector {
	t.Helper()
	col := NewCollector(e, q)
	isDest := destPredicate(q)
	if err := Traverse(e, nodes, adj, source, pkt, q.EffectiveMaxHops(), isDest, col.Add); err != nil {
		t.Fatal(err)
	}
	return col
}

func destPredicate(q *Query) func(string) bool {
	if len(q.Dests) == 0 {
		return nil
	}
	set := map[string]bool{}
	for _, d := range q.Dests {
		set[d] = true
	}
	return func(n string) bool { return set[n] }
}

func TestTraverseReachability(t *testing.T) {
	e, nodes, adj := chainSetup(t, nil, nil)
	dst := route.MustParsePrefix("10.8.0.0/24")
	q := &Query{Header: &HeaderSpace{DstPrefix: &dst}, Sources: []string{"r1"}, Dests: []string{"r3"}}
	pkt, err := q.Header.Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	col := collectOutcomes(t, e, nodes, adj, "r1", pkt, q)
	arrived := col.Arrived("r3")
	if arrived == bdd.False {
		t.Fatal("packets must arrive at r3")
	}
	// Everything injected arrives (no filters on the path).
	if arrived != pkt {
		t.Fatalf("entire set should arrive: satcount %g vs %g",
			e.SatCount(arrived), e.SatCount(pkt))
	}
	vios, err := col.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(vios) != 0 {
		t.Fatalf("violations: %v", vios)
	}
}

func TestTraverseBlackholeNoRoute(t *testing.T) {
	e, nodes, adj := chainSetup(t, nil, nil)
	// Destination outside everyone's FIB.
	other := route.MustParsePrefix("172.16.0.0/16")
	q := &Query{Header: &HeaderSpace{DstPrefix: &other}, Sources: []string{"r1"}}
	pkt, _ := q.Header.Compile(e)
	col := collectOutcomes(t, e, nodes, adj, "r1", pkt, q)
	if col.StateSet(Blackhole) == bdd.False {
		t.Fatal("unrouted traffic must blackhole")
	}
	vios, _ := col.Report()
	found := false
	for _, v := range vios {
		if v.Kind == "blackhole" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected blackhole violation: %v", vios)
	}
}

func TestTraverseLoopDetection(t *testing.T) {
	// Create a forwarding loop: r2 routes 10.9/24 to r3 and r3 routes it
	// back to r2.
	loopPfx := route.MustParsePrefix("10.9.0.0/24")
	e, nodes, adj := chainSetup(t, func(name string, rib *route.RIB) {
		switch name {
		case "r1":
			rib.SetRoutes(loopPfx, []*route.Route{bgpRoute("10.9.0.0/24", "10.0.0.1", "r2")})
		case "r2":
			rib.SetRoutes(loopPfx, []*route.Route{bgpRoute("10.9.0.0/24", "10.0.1.1", "r3")})
		case "r3":
			rib.SetRoutes(loopPfx, []*route.Route{bgpRoute("10.9.0.0/24", "10.0.1.0", "r2")})
		}
	}, nil)
	q := &Query{Header: &HeaderSpace{DstPrefix: &loopPfx}, Sources: []string{"r1"}, MaxHops: 16}
	pkt, _ := q.Header.Compile(e)
	col := collectOutcomes(t, e, nodes, adj, "r1", pkt, q)
	if col.StateSet(Loop) == bdd.False {
		t.Fatal("looping traffic must be detected")
	}
	vios, _ := col.Report()
	if len(vios) == 0 || vios[0].Kind != "loop" {
		t.Fatalf("expected loop violation: %v", vios)
	}
}

func TestTraverseACLBlackhole(t *testing.T) {
	// r2 denies dst 10.8.0.0/25 inbound on eth0: half the /24 blackholes,
	// half arrives — and multipath consistency is NOT violated (the sets
	// do not overlap).
	e, nodes, adj := chainSetup(t, nil, func(texts map[string]string) {
		texts["r2.cfg"] = `hostname r2
interface eth0
 ip address 10.0.0.1/31
 ip access-group FILTER in
interface eth1
 ip address 10.0.1.0/31
ip access-list FILTER
 deny ip any 10.8.0.0/25
 permit ip any any
`
	})
	dst := route.MustParsePrefix("10.8.0.0/24")
	q := &Query{Header: &HeaderSpace{DstPrefix: &dst}, Sources: []string{"r1"}, Dests: []string{"r3"}}
	pkt, _ := q.Header.Compile(e)
	col := collectOutcomes(t, e, nodes, adj, "r1", pkt, q)

	arrived := col.Arrived("r3")
	dropped := col.StateSet(Blackhole)
	if arrived == bdd.False || dropped == bdd.False {
		t.Fatal("both halves expected")
	}
	if e.SatCount(arrived) != e.SatCount(dropped) {
		t.Fatalf("halves should be equal: %g vs %g", e.SatCount(arrived), e.SatCount(dropped))
	}
	if overlap, _ := e.And(arrived, dropped); overlap != bdd.False {
		t.Fatal("halves must be disjoint")
	}
	vios, _ := col.Report()
	for _, v := range vios {
		if v.Kind == "multipath-consistency" {
			t.Fatalf("disjoint outcomes are consistent: %v", v)
		}
	}
}

func TestTraverseWaypoint(t *testing.T) {
	e, nodes, adj := chainSetup(t, nil, nil)
	dst := route.MustParsePrefix("10.8.0.0/24")
	q := &Query{
		Header:   &HeaderSpace{DstPrefix: &dst},
		Sources:  []string{"r1"},
		Dests:    []string{"r3"},
		Transits: []string{"r2"},
	}
	if err := q.Validate(Layout{MetaBits: 4}); err != nil {
		t.Fatal(err)
	}
	// Wire the write rule: r2 sets bit 0.
	nodes["r2"].MetaBit = q.MetaBitFor("r2")
	pkt, _ := q.Header.Compile(e)
	// Inject with the waypoint bit cleared.
	nbit, _ := e.NVar(OffMeta + 0)
	pkt, _ = e.And(pkt, nbit)
	col := collectOutcomes(t, e, nodes, adj, "r1", pkt, q)
	vios, err := col.Report()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vios {
		if v.Kind == "waypoint" {
			t.Fatalf("path goes through r2; no violation expected: %v", v)
		}
	}

	// Now require an off-path node as transit: nothing sets the bit, so
	// arrivals must be flagged. Unwire r2's write rule first.
	nodes["r2"].MetaBit = -1
	q2 := &Query{
		Header:   &HeaderSpace{DstPrefix: &dst},
		Sources:  []string{"r1"},
		Dests:    []string{"r3"},
		Transits: []string{"offpath"},
	}
	pkt2, _ := q.Header.Compile(e)
	pkt2, _ = e.And(pkt2, nbit)
	col2 := collectOutcomes(t, e, nodes, adj, "r1", pkt2, q2)
	vios2, _ := col2.Report()
	found := false
	for _, v := range vios2 {
		if v.Kind == "waypoint" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bypassed waypoint must be flagged: %v", vios2)
	}
}

func TestTraverseMultipathInconsistency(t *testing.T) {
	// r2 has two ECMP paths for the /24: one to r3 (arrives) and one
	// back to r1 (loops). The same packets both arrive and loop →
	// multipath-consistency violation.
	dst := route.MustParsePrefix("10.8.0.0/24")
	e, nodes, adj := chainSetup(t, func(name string, rib *route.RIB) {
		if name == "r2" {
			rib.SetRoutes(dst, []*route.Route{
				bgpRoute("10.8.0.0/24", "10.0.1.1", "r3"),
				bgpRoute("10.8.0.0/24", "10.0.0.0", "r1"),
			})
		}
	}, nil)
	q := &Query{Header: &HeaderSpace{DstPrefix: &dst}, Sources: []string{"r1"}, Dests: []string{"r3"}, MaxHops: 8}
	pkt, _ := q.Header.Compile(e)
	col := collectOutcomes(t, e, nodes, adj, "r1", pkt, q)
	vios, _ := col.Report()
	found := false
	for _, v := range vios {
		if v.Kind == "multipath-consistency" && v.Source == "r1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected multipath violation: %v", vios)
	}
}

func TestTraverseUnknownSource(t *testing.T) {
	e, nodes, adj := chainSetup(t, nil, nil)
	err := Traverse(e, nodes, adj, "ghost", bdd.True, 8, nil, func(Outcome) error { return nil })
	if err == nil {
		t.Fatal("unknown source must error")
	}
}

func TestCollectorRawRoundTrip(t *testing.T) {
	// Worker engine produces an outcome; controller engine absorbs it via
	// the serialized path.
	layout := Layout{MetaBits: 2}
	worker := layout.NewEngine(0)
	controller := layout.NewEngine(0)
	dst := route.MustParsePrefix("10.8.0.0/24")
	pkt, err := PrefixMatch(worker, OffDstIP, dst)
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{Dests: []string{"r3"}}
	col := NewCollector(controller, q)
	raw := RawOutcome{Source: "r1", Node: "r3", State: Arrive, Packet: worker.Serialize(pkt)}
	if err := col.AddRaw(raw); err != nil {
		t.Fatal(err)
	}
	if col.Count() != 1 {
		t.Fatal("count")
	}
	if controller.SatCount(col.Arrived("r3")) != worker.SatCount(pkt) {
		t.Fatal("cross-engine transfer must preserve the packet set")
	}
	// Garbage packet fails.
	if err := col.AddRaw(RawOutcome{Source: "x", Node: "y", Packet: []byte{1, 2}}); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestReachabilityUnreachableViolation(t *testing.T) {
	e, nodes, adj := chainSetup(t, nil, nil)
	// Query a dest that can never receive: r1 sends to 172.16/16 but
	// dest r3 holds 10.8/24.
	other := route.MustParsePrefix("172.16.0.0/16")
	q := &Query{Header: &HeaderSpace{DstPrefix: &other}, Sources: []string{"r1"}, Dests: []string{"r3"}}
	pkt, _ := q.Header.Compile(e)
	col := collectOutcomes(t, e, nodes, adj, "r1", pkt, q)
	vios, _ := col.Report()
	found := false
	for _, v := range vios {
		if v.Kind == "unreachable" && v.Node == "r3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected unreachable violation: %v", vios)
	}
}

// TestTraverseConservation: every injected packet reaches exactly the
// final states that cover it — the union of all outcome sets equals the
// injected set. (ECMP may assign one packet several outcomes, so outcomes
// can overlap, but nothing may be lost or invented beyond the injection.)
func TestTraverseConservation(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		e, nodes, adj := chainSetup(t, func(name string, rib *route.RIB) {
			// Add per-trial variation: extra prefixes with drops/loops.
			switch trial {
			case 1:
				if name == "r1" {
					rib.SetRoutes(route.MustParsePrefix("10.50.0.0/16"), []*route.Route{
						bgpRoute("10.50.0.0/16", "10.0.0.1", "r2"),
					})
				}
			case 2:
				if name == "r2" {
					rib.SetRoutes(route.MustParsePrefix("10.60.0.0/16"), []*route.Route{
						bgpRoute("10.60.0.0/16", "10.0.0.0", "r1"),
					})
				}
				if name == "r1" {
					rib.SetRoutes(route.MustParsePrefix("10.60.0.0/16"), []*route.Route{
						bgpRoute("10.60.0.0/16", "10.0.0.1", "r2"),
					})
				}
			}
		}, nil)
		pkt := bdd.True // the full header space
		union := bdd.False
		err := Traverse(e, nodes, adj, "r1", pkt, 12, nil, func(o Outcome) error {
			var err error
			union, err = e.Or(union, o.Packet)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if union != pkt {
			t.Fatalf("trial %d: outcomes cover %g of %g assignments", trial,
				e.SatCount(union), e.SatCount(pkt))
		}
	}
}

// TestTraverseDisjointStatesWithoutECMP: on a single-path topology each
// packet has exactly one fate — outcome sets are pairwise disjoint.
func TestTraverseDisjointStatesWithoutECMP(t *testing.T) {
	e, nodes, adj := chainSetup(t, nil, nil)
	var outs []Outcome
	if err := Traverse(e, nodes, adj, "r1", bdd.True, 12, nil, func(o Outcome) error {
		outs = append(outs, o)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(outs); i++ {
		for j := i + 1; j < len(outs); j++ {
			overlap, err := e.And(outs[i].Packet, outs[j].Packet)
			if err != nil {
				t.Fatal(err)
			}
			if overlap != bdd.False {
				t.Fatalf("outcomes %d (%s@%s) and %d (%s@%s) overlap on a single-path topology",
					i, outs[i].State, outs[i].Node, j, outs[j].State, outs[j].Node)
			}
		}
	}
}
