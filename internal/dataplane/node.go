package dataplane

import (
	"fmt"
	"sort"

	"s2/internal/bdd"
	"s2/internal/config"
)

// PortPred holds the three per-port predicates of §4.3: the forwarding
// predicate p^fwd and the two ACL predicates p^in / p^out.
type PortPred struct {
	Fwd bdd.Ref
	In  bdd.Ref
	Out bdd.Ref
}

// NodeDP is one node's compiled data plane: everything needed to execute
// the symbolic forwarding step of equation (1). All refs live in the
// compiling engine.
type NodeDP struct {
	Name  string
	Ports map[string]*PortPred
	// Local is the set of packets delivered at this node (destination in
	// a connected prefix).
	Local bdd.Ref
	// Drop is the set of packets matching an explicit discard route.
	Drop bdd.Ref
	// MetaBit, when >= 0, is the waypoint metadata bit this node sets on
	// every packet it processes (§4.4's "write rule").
	MetaBit int
}

// CompileNode builds the node's predicates from its FIB and ACLs. The
// engine must be sized by the run's shared Layout.
func CompileNode(e *bdd.Engine, dev *config.Device, fib *FIB) (*NodeDP, error) {
	n := &NodeDP{
		Name:    dev.Hostname,
		Ports:   map[string]*PortPred{},
		Local:   bdd.False,
		Drop:    bdd.False,
		MetaBit: -1,
	}
	port := func(name string) *PortPred {
		p, ok := n.Ports[name]
		if !ok {
			p = &PortPred{Fwd: bdd.False, In: bdd.True, Out: bdd.True}
			n.Ports[name] = p
		}
		return p
	}

	// ACL predicates from interface configuration.
	names := make([]string, 0, len(dev.Interfaces))
	for name := range dev.Interfaces {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ifc := dev.Interfaces[name]
		if ifc.Shutdown {
			continue
		}
		p := port(name)
		if ifc.InACL != "" {
			acl, ok := dev.ACLs[ifc.InACL]
			if !ok {
				return nil, fmt.Errorf("dataplane: %s: undefined ACL %q", dev.Hostname, ifc.InACL)
			}
			r, err := ACLMatch(e, acl)
			if err != nil {
				return nil, err
			}
			p.In = r
		}
		if ifc.OutACL != "" {
			acl, ok := dev.ACLs[ifc.OutACL]
			if !ok {
				return nil, fmt.Errorf("dataplane: %s: undefined ACL %q", dev.Hostname, ifc.OutACL)
			}
			r, err := ACLMatch(e, acl)
			if err != nil {
				return nil, err
			}
			p.Out = r
		}
	}

	// Forwarding predicates with longest-prefix-match semantics: walk
	// entries from most to least specific, masking already-covered
	// destinations.
	entries := append([]FIBEntry(nil), fib.Entries...)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Prefix.Len != entries[j].Prefix.Len {
			return entries[i].Prefix.Len > entries[j].Prefix.Len
		}
		return entries[i].Prefix.Compare(entries[j].Prefix) < 0
	})
	seen := bdd.False
	for _, entry := range entries {
		match, err := PrefixMatch(e, OffDstIP, entry.Prefix)
		if err != nil {
			return nil, err
		}
		eff, err := e.Diff(match, seen)
		if err != nil {
			return nil, err
		}
		if eff != bdd.False {
			switch {
			case entry.Local:
				// Delivery leaves through the connected interface: its
				// egress ACL gates local delivery; denied packets drop.
				delivered := eff
				if len(entry.OutPorts) > 0 {
					outPerm := bdd.False
					for _, out := range entry.OutPorts {
						outPerm, err = e.Or(outPerm, port(out).Out)
						if err != nil {
							return nil, err
						}
					}
					delivered, err = e.And(eff, outPerm)
					if err != nil {
						return nil, err
					}
					var denied bdd.Ref
					denied, err = e.Diff(eff, outPerm)
					if err != nil {
						return nil, err
					}
					n.Drop, err = e.Or(n.Drop, denied)
					if err != nil {
						return nil, err
					}
				}
				n.Local, err = e.Or(n.Local, delivered)
			case entry.Drop:
				n.Drop, err = e.Or(n.Drop, eff)
			default:
				for _, out := range entry.OutPorts {
					p := port(out)
					p.Fwd, err = e.Or(p.Fwd, eff)
					if err != nil {
						return nil, err
					}
				}
			}
			if err != nil {
				return nil, err
			}
		}
		seen, err = e.Or(seen, match)
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// StepResult is the outcome of one symbolic forwarding step at a node.
type StepResult struct {
	// Local packets were delivered at this node.
	Local bdd.Ref
	// Dropped packets hit an explicit discard, an ACL deny, or had no
	// matching route (all Blackhole final states).
	Dropped bdd.Ref
	// Out maps egress port → the transformed packet of equation (1):
	// pkt ∧ p1^in ∧ p2^fwd ∧ p2^out.
	Out map[string]bdd.Ref
}

// Forward executes one step of symbolic forwarding: the packet pkt arrives
// at port inPort ("" when injected at this node as a source). The engine
// must be the one the node was compiled into.
func (n *NodeDP) Forward(e *bdd.Engine, pkt bdd.Ref, inPort string) (*StepResult, error) {
	res := &StepResult{Local: bdd.False, Dropped: bdd.False, Out: map[string]bdd.Ref{}}

	// Input ACL.
	in := pkt
	if inPort != "" {
		if p, ok := n.Ports[inPort]; ok && p.In != bdd.True {
			var err error
			in, err = e.And(pkt, p.In)
			if err != nil {
				return nil, err
			}
			denied, err := e.Diff(pkt, p.In)
			if err != nil {
				return nil, err
			}
			res.Dropped, err = e.Or(res.Dropped, denied)
			if err != nil {
				return nil, err
			}
		}
	}
	if in == bdd.False {
		return res, nil
	}

	// Waypoint write rule.
	if n.MetaBit >= 0 {
		var err error
		in, err = e.SetVar(in, OffMeta+n.MetaBit, true)
		if err != nil {
			return nil, err
		}
	}

	var err error
	// Local delivery.
	res.Local, err = e.And(in, n.Local)
	if err != nil {
		return nil, err
	}
	// Explicit discards.
	discard, err := e.And(in, n.Drop)
	if err != nil {
		return nil, err
	}
	res.Dropped, err = e.Or(res.Dropped, discard)
	if err != nil {
		return nil, err
	}

	// Forwarding per port: pkt ∧ p^fwd ∧ p^out; the p^fwd∧¬p^out
	// remainder is an ACL blackhole.
	routed := bdd.False
	ports := make([]string, 0, len(n.Ports))
	for name := range n.Ports {
		ports = append(ports, name)
	}
	sort.Strings(ports)
	for _, name := range ports {
		p := n.Ports[name]
		if p.Fwd == bdd.False {
			continue
		}
		fwd, err := e.And(in, p.Fwd)
		if err != nil {
			return nil, err
		}
		if fwd == bdd.False {
			continue
		}
		routed, err = e.Or(routed, fwd)
		if err != nil {
			return nil, err
		}
		out, err := e.And(fwd, p.Out)
		if err != nil {
			return nil, err
		}
		if out != bdd.False {
			res.Out[name] = out
		}
		aclDrop, err := e.Diff(fwd, p.Out)
		if err != nil {
			return nil, err
		}
		res.Dropped, err = e.Or(res.Dropped, aclDrop)
		if err != nil {
			return nil, err
		}
	}

	// No matching route at all: blackhole.
	matched, err := e.OrAll(res.Local, n.Drop, routed)
	if err != nil {
		return nil, err
	}
	unrouted, err := e.Diff(in, matched)
	if err != nil {
		return nil, err
	}
	res.Dropped, err = e.Or(res.Dropped, unrouted)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ModelBytes charges the node's predicate count; per-engine node growth is
// charged separately via the engine's grow observer.
func (n *NodeDP) ModelBytes() int64 {
	return int64(len(n.Ports))*48 + 64
}

// RootRefs returns every BDD ref the node holds, for use as GC roots.
func (n *NodeDP) RootRefs() []bdd.Ref {
	out := []bdd.Ref{n.Local, n.Drop}
	for _, p := range n.Ports {
		out = append(out, p.Fwd, p.In, p.Out)
	}
	return out
}

// Remap rewrites the node's refs after an engine GC.
func (n *NodeDP) Remap(f func(bdd.Ref) bdd.Ref) {
	n.Local, n.Drop = f(n.Local), f(n.Drop)
	for _, p := range n.Ports {
		p.Fwd, p.In, p.Out = f(p.Fwd), f(p.In), f(p.Out)
	}
}
