package dataplane

import (
	"fmt"
	"sort"

	"s2/internal/config"
	"s2/internal/route"
)

// FIBEntry is one forwarding table entry after RIB resolution.
type FIBEntry struct {
	Prefix route.Prefix
	// OutPorts are the egress interface names (multiple under ECMP).
	OutPorts []string
	// Local marks connected prefixes: matching packets are delivered at
	// this node.
	Local bool
	// Drop marks discard routes (static null0).
	Drop bool
}

// FIB is one node's forwarding table.
type FIB struct {
	Node    string
	Entries []FIBEntry
}

// ModelBytes is the modelled memory footprint of the FIB.
func (f *FIB) ModelBytes() int64 {
	var b int64
	for _, e := range f.Entries {
		b += 48
		for _, p := range e.OutPorts {
			b += int64(len(p)) + 16
		}
	}
	return b
}

// BuildFIB resolves a node's RIBs into a FIB. ribs are the protocol RIBs in
// any order (e.g. the BGP Loc-RIB and the OSPF RIB); connected and static
// routes come from the device config. For each prefix the
// lowest-administrative-distance protocol wins; ties within the winning
// protocol keep the full ECMP set. Next hops resolve to egress interfaces
// through the device's connected subnets; unresolvable next hops drop the
// route (and are reported).
func BuildFIB(dev *config.Device, ribs ...*route.RIB) (*FIB, []error) {
	var errs []error
	type cand struct {
		ad    uint8
		entry FIBEntry
	}
	best := map[route.Prefix]*cand{}

	consider := func(p route.Prefix, ad uint8, e FIBEntry) {
		cur, ok := best[p]
		if !ok || ad < cur.ad {
			e.Prefix = p
			best[p] = &cand{ad: ad, entry: e}
			return
		}
		if ad == cur.ad && len(e.OutPorts) > 0 {
			// Same protocol tier: merge ECMP ports.
			cur.entry.OutPorts = append(cur.entry.OutPorts, e.OutPorts...)
		}
	}

	// Connected: local delivery happens THROUGH the owning interface, so
	// the entry records it and the compiler applies its egress ACL.
	connected := map[route.Prefix][]string{}
	for _, ifc := range dev.Interfaces {
		if ifc.Shutdown || ifc.IP == 0 {
			continue
		}
		connected[ifc.Subnet] = append(connected[ifc.Subnet], ifc.Name)
	}
	for pfx, ports := range connected {
		consider(pfx, route.Connected.AdminDistance(), FIBEntry{Local: true, OutPorts: dedupeSorted(ports)})
	}
	// Static.
	for _, sr := range dev.StaticRoutes {
		if sr.Drop {
			consider(sr.Prefix, route.Static.AdminDistance(), FIBEntry{Drop: true})
			continue
		}
		ifc := dev.InterfaceForAddr(sr.NextHop)
		if ifc == nil {
			errs = append(errs, fmt.Errorf("%s: static route %v next hop %s unresolvable",
				dev.Hostname, sr.Prefix, route.FormatAddr(sr.NextHop)))
			continue
		}
		consider(sr.Prefix, route.Static.AdminDistance(), FIBEntry{OutPorts: []string{ifc.Name}})
	}
	// Protocol RIBs.
	for _, rib := range ribs {
		if rib == nil {
			continue
		}
		rib.Walk(func(pfx route.Prefix, rs []*route.Route) {
			var ports []string
			ad := uint8(255)
			for _, r := range rs {
				if r.Protocol.AdminDistance() < ad {
					ad = r.Protocol.AdminDistance()
				}
				if r.NextHopNode == "" {
					// Locally originated (network statement or
					// aggregate): delivery is governed by the
					// connected route; aggregates without a
					// specific match are blackholes by design.
					continue
				}
				ifc := dev.InterfaceForAddr(r.NextHop)
				if ifc == nil {
					errs = append(errs, fmt.Errorf("%s: route %v next hop %s unresolvable",
						dev.Hostname, pfx, route.FormatAddr(r.NextHop)))
					continue
				}
				ports = append(ports, ifc.Name)
			}
			if len(ports) == 0 {
				// Only locally originated candidates: an active
				// aggregate installs a discard route for unmatched
				// traffic (standard aggregate behaviour).
				for _, r := range rs {
					if r.Protocol == route.Aggregate {
						consider(pfx, route.Aggregate.AdminDistance(), FIBEntry{Drop: true})
					}
				}
				return
			}
			consider(pfx, ad, FIBEntry{OutPorts: dedupeSorted(ports)})
		})
	}

	fib := &FIB{Node: dev.Hostname}
	prefixes := make([]route.Prefix, 0, len(best))
	for p := range best {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Compare(prefixes[j]) < 0 })
	for _, p := range prefixes {
		e := best[p].entry
		e.OutPorts = dedupeSorted(e.OutPorts)
		fib.Entries = append(fib.Entries, e)
	}
	return fib, errs
}

func dedupeSorted(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	sort.Strings(in)
	out := in[:1]
	for _, s := range in[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}
