package dataplane

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"s2/internal/bdd"
	"s2/internal/route"
)

// FinalState classifies where a symbolic packet's journey ended (§4.3).
type FinalState uint8

const (
	// Arrive: delivered at a destination node or the node holding the
	// destination prefix.
	Arrive FinalState = iota
	// Exit: left the network through an edge port that is not a
	// destination.
	Exit
	// Blackhole: dropped by a discard route, an ACL, or a missing route.
	Blackhole
	// Loop: still circulating after MaxHops (TTL exceeded).
	Loop
)

// String names the final state.
func (s FinalState) String() string {
	switch s {
	case Arrive:
		return "arrive"
	case Exit:
		return "exit"
	case Blackhole:
		return "blackhole"
	case Loop:
		return "loop"
	}
	return "unknown"
}

// Query is the paper's 4-tuple (H, Vs, Vd, Vt) plus a TTL (§4.4). Empty
// Sources means "all nodes that originate traffic" (driver-defined); empty
// Dests means any local delivery counts as Arrive.
type Query struct {
	Header   *HeaderSpace
	Sources  []string
	Dests    []string
	Transits []string
	// MaxHops is the TTL for loop detection (default 32).
	MaxHops int
}

// EffectiveMaxHops applies the default TTL.
func (q *Query) EffectiveMaxHops() int {
	if q.MaxHops <= 0 {
		return 32
	}
	return q.MaxHops
}

// MetaBitFor returns the metadata bit index assigned to transit node name,
// or -1. Bits are assigned in Transits order.
func (q *Query) MetaBitFor(name string) int {
	for i, t := range q.Transits {
		if t == name {
			return i
		}
	}
	return -1
}

// queryTagSep separates a multi-query pass tag from the real source name.
// The unit separator cannot appear in device hostnames, so tagged sources
// ("q3\x1fedge-0-0") never collide with untagged ones and survive every
// delivery path (wire codec, per-packet, outcome harvest) untouched.
const queryTagSep = "\x1f"

// QueryTag returns the source prefix that marks packets of query i within
// a multi-query pass. Query packets with different tags occupy different
// wavefront slots, so they propagate independently through one shared pass.
func QueryTag(i int) string {
	return "q" + strconv.Itoa(i) + queryTagSep
}

// SplitQueryTag splits a possibly tagged source into its query index and
// the real source name. Untagged sources report ok=false.
func SplitQueryTag(source string) (idx int, rest string, ok bool) {
	sep := strings.Index(source, queryTagSep)
	if sep < 2 || source[0] != 'q' {
		return 0, source, false
	}
	n, err := strconv.Atoi(source[1:sep])
	if err != nil || n < 0 {
		return 0, source, false
	}
	return n, source[sep+len(queryTagSep):], true
}

// BatchCompatible reports whether two queries can share one symbolic pass.
// The pass-wide state a batch shares is exactly the transit metadata-bit
// assignment (BeginQuery stamps MetaBitFor onto every node) and the hop
// loop's TTL; header spaces, sources, and dests stay per-query via tagged
// injection.
func BatchCompatible(a, b *Query) bool {
	if a.EffectiveMaxHops() != b.EffectiveMaxHops() {
		return false
	}
	if len(a.Transits) != len(b.Transits) {
		return false
	}
	for i := range a.Transits {
		if a.Transits[i] != b.Transits[i] {
			return false
		}
	}
	return true
}

// fpHasher is a small FNV-64a wrapper with length-prefixed fields, so
// adjacent variable-length fields cannot alias (the internal/config
// fingerprint idiom).
type fpHasher struct {
	h interface{ Write([]byte) (int, error) }
}

func (f fpHasher) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	f.h.Write(b[:])
}

func (f fpHasher) str(s string) {
	f.u32(uint32(len(s)))
	f.h.Write([]byte(s))
}

func (f fpHasher) strs(ss []string) {
	f.u32(uint32(len(ss)))
	for _, s := range ss {
		f.str(s)
	}
}

func (f fpHasher) prefix(p route.Prefix) {
	f.u32(p.Addr)
	f.u32(uint32(p.Len))
}

// Fingerprint computes the canonical identity of a query for caching:
// every field that affects the answer is hashed with length prefixes, in a
// fixed order. constrainSrc is part of the identity because it changes the
// injected predicates. Deterministic across processes (FNV-64a, no map
// iteration).
func (q *Query) Fingerprint(constrainSrc bool) uint64 {
	h := fnv.New64a()
	f := fpHasher{h: h}
	if q.Header != nil {
		f.u32(uint32(q.Header.Proto))
		f.u32(uint32(q.Header.DstPortLo))
		f.u32(uint32(q.Header.DstPortHi))
		if q.Header.SrcPrefix != nil {
			f.u32(1)
			f.prefix(*q.Header.SrcPrefix)
		} else {
			f.u32(0)
		}
		if q.Header.DstPrefix != nil {
			f.u32(1)
			f.prefix(*q.Header.DstPrefix)
		} else {
			f.u32(0)
		}
		f.u32(uint32(len(q.Header.DstIn)))
		for _, p := range q.Header.DstIn {
			f.prefix(p)
		}
	} else {
		f.u32(0)
	}
	f.strs(q.Sources)
	f.strs(q.Dests)
	f.strs(q.Transits)
	f.u32(uint32(q.EffectiveMaxHops()))
	if constrainSrc {
		f.u32(1)
	} else {
		f.u32(0)
	}
	return h.Sum64()
}

// Validate checks the query against a layout.
func (q *Query) Validate(l Layout) error {
	if len(q.Transits) > l.MetaBits {
		return fmt.Errorf("dataplane: query needs %d metadata bits, layout has %d",
			len(q.Transits), l.MetaBits)
	}
	return nil
}

// Outcome is one finalized symbolic packet, local to some engine.
type Outcome struct {
	Source string
	Node   string // node where the final state was reached
	State  FinalState
	Packet bdd.Ref
}

// RawOutcome is the engine-independent wire form of an Outcome: the packet
// is a serialized BDD. Workers ship RawOutcomes to the controller.
type RawOutcome struct {
	Source string
	Node   string
	State  FinalState
	Packet []byte
}

// Violation describes one property violation found by a check.
type Violation struct {
	// Kind is "loop", "blackhole", "multipath-consistency", "waypoint",
	// or "unreachable".
	Kind   string
	Source string
	Node   string
	Detail string
	// ExampleDst is a concrete destination IP drawn from the violating
	// packet set, for operator-actionable reports.
	ExampleDst uint32
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: source=%s node=%s dst=%s %s",
		v.Kind, v.Source, v.Node, route.FormatAddr(v.ExampleDst), v.Detail)
}

// Collector aggregates outcomes on one engine (the controller's, in the
// distributed case) and evaluates the five §4.4 property types.
type Collector struct {
	e     *bdd.Engine
	query *Query
	// arrived[dest] is P_{v_d}: packets that reached dest with Arrive.
	arrived map[string]bdd.Ref
	// perSourceState[source][state] accumulates per-source final sets for
	// multipath-consistency checking.
	perSourceState map[string]map[FinalState]bdd.Ref
	// perState aggregates across sources.
	perState map[FinalState]bdd.Ref
	count    int
}

// NewCollector builds a collector for query on engine e.
func NewCollector(e *bdd.Engine, query *Query) *Collector {
	return &Collector{
		e:              e,
		query:          query,
		arrived:        map[string]bdd.Ref{},
		perSourceState: map[string]map[FinalState]bdd.Ref{},
		perState: map[FinalState]bdd.Ref{
			Arrive: bdd.False, Exit: bdd.False, Blackhole: bdd.False, Loop: bdd.False,
		},
	}
}

// Count returns the number of outcomes absorbed.
func (c *Collector) Count() int { return c.count }

// Add absorbs one engine-local outcome.
func (c *Collector) Add(o Outcome) error {
	if o.Packet == bdd.False {
		return nil
	}
	c.count++
	var err error
	c.perState[o.State], err = c.e.Or(c.perState[o.State], o.Packet)
	if err != nil {
		return err
	}
	ss := c.perSourceState[o.Source]
	if ss == nil {
		ss = map[FinalState]bdd.Ref{Arrive: bdd.False, Exit: bdd.False, Blackhole: bdd.False, Loop: bdd.False}
		c.perSourceState[o.Source] = ss
	}
	ss[o.State], err = c.e.Or(ss[o.State], o.Packet)
	if err != nil {
		return err
	}
	if o.State == Arrive {
		prev, ok := c.arrived[o.Node]
		if !ok {
			prev = bdd.False
		}
		c.arrived[o.Node], err = c.e.Or(prev, o.Packet)
		if err != nil {
			return err
		}
	}
	return nil
}

// AddRaw deserializes and absorbs a worker-reported outcome.
func (c *Collector) AddRaw(o RawOutcome) error {
	pkt, err := c.e.Deserialize(o.Packet)
	if err != nil {
		return fmt.Errorf("dataplane: outcome from %s@%s: %w", o.Source, o.Node, err)
	}
	return c.Add(Outcome{Source: o.Source, Node: o.Node, State: o.State, Packet: pkt})
}

// DecodeOutcomes materializes a set-encoded outcome harvest into engine e:
// wire is a bdd.SerializeSet substrate whose root i is the packet of
// metas[i] (the metas carry no per-outcome payload in this mode).
func DecodeOutcomes(e *bdd.Engine, wire []byte, metas []RawOutcome) ([]Outcome, error) {
	roots, err := e.DeserializeSet(wire)
	if err != nil {
		return nil, fmt.Errorf("dataplane: outcome batch: %w", err)
	}
	if len(roots) != len(metas) {
		return nil, fmt.Errorf("dataplane: outcome batch has %d roots for %d outcomes", len(roots), len(metas))
	}
	out := make([]Outcome, len(metas))
	for i, m := range metas {
		out[i] = Outcome{Source: m.Source, Node: m.Node, State: m.State, Packet: roots[i]}
	}
	return out, nil
}

// Arrived returns P_{v_d} for a destination node (bdd.False when nothing
// arrived).
func (c *Collector) Arrived(dest string) bdd.Ref {
	if r, ok := c.arrived[dest]; ok {
		return r
	}
	return bdd.False
}

// StateSet returns the aggregate packet set for a final state.
func (c *Collector) StateSet(s FinalState) bdd.Ref { return c.perState[s] }

// Report runs all property checks and returns the violations.
// The checks follow §4.4:
//
//   - loop-free / blackhole-free: any non-empty Loop/Blackhole set;
//   - reachability: every node in Dests must receive a non-empty Arrive
//     set (skipped when Dests is empty);
//   - waypoint: every packet arriving at a Dest must carry every transit
//     node's metadata bit;
//   - multipath consistency: per source, overlapping packets with
//     different final states.
func (c *Collector) Report() ([]Violation, error) {
	var out []Violation

	example := func(r bdd.Ref) uint32 {
		asg, ok := c.e.AnySat(r)
		if !ok {
			return 0
		}
		return dstIPOf(asg)
	}

	if r := c.perState[Loop]; r != bdd.False {
		out = append(out, Violation{Kind: "loop", Detail: "packets exceed TTL", ExampleDst: example(r)})
	}
	if r := c.perState[Blackhole]; r != bdd.False {
		out = append(out, Violation{Kind: "blackhole", Detail: "packets dropped", ExampleDst: example(r)})
	}

	// Reachability.
	for _, d := range c.query.Dests {
		if c.Arrived(d) == bdd.False {
			out = append(out, Violation{Kind: "unreachable", Node: d,
				Detail: "no packet from any source arrives"})
		}
	}

	// Waypoints.
	for _, transit := range c.query.Transits {
		bit := OffMeta + c.query.MetaBitFor(transit)
		want, err := c.e.Var(bit)
		if err != nil {
			return nil, err
		}
		for _, d := range c.destsOrArrivedNodes() {
			arrived := c.Arrived(d)
			if arrived == bdd.False {
				continue
			}
			missed, err := c.e.Diff(arrived, want)
			if err != nil {
				return nil, err
			}
			if missed != bdd.False {
				out = append(out, Violation{Kind: "waypoint", Node: d,
					Detail:     fmt.Sprintf("packets bypass transit %s", transit),
					ExampleDst: example(missed)})
			}
		}
	}

	// Multipath consistency (§4.4): per source, packets that overlap but
	// reached different final states.
	sources := make([]string, 0, len(c.perSourceState))
	for s := range c.perSourceState {
		sources = append(sources, s)
	}
	sort.Strings(sources)
	states := []FinalState{Arrive, Exit, Blackhole, Loop}
	for _, src := range sources {
		ss := c.perSourceState[src]
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				overlap, err := c.e.And(ss[states[i]], ss[states[j]])
				if err != nil {
					return nil, err
				}
				if overlap != bdd.False {
					out = append(out, Violation{
						Kind: "multipath-consistency", Source: src,
						Detail: fmt.Sprintf("same packets end in %s and %s",
							states[i], states[j]),
						ExampleDst: example(overlap),
					})
				}
			}
		}
	}
	return out, nil
}

// RootRefs returns every BDD ref the collector holds, for use as GC roots.
func (c *Collector) RootRefs() []bdd.Ref {
	var out []bdd.Ref
	for _, r := range c.arrived {
		out = append(out, r)
	}
	for _, r := range c.perState {
		out = append(out, r)
	}
	for _, ss := range c.perSourceState {
		for _, r := range ss {
			out = append(out, r)
		}
	}
	return out
}

// Remap rewrites the collector's refs after an engine GC.
func (c *Collector) Remap(f func(bdd.Ref) bdd.Ref) {
	for k, r := range c.arrived {
		c.arrived[k] = f(r)
	}
	for k, r := range c.perState {
		c.perState[k] = f(r)
	}
	for _, ss := range c.perSourceState {
		for k, r := range ss {
			ss[k] = f(r)
		}
	}
}

func (c *Collector) destsOrArrivedNodes() []string {
	if len(c.query.Dests) > 0 {
		return c.query.Dests
	}
	var out []string
	for d := range c.arrived {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
