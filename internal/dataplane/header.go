// Package dataplane implements data plane verification: converting RIBs to
// FIBs, compiling per-port forwarding and ACL predicates into BDDs (§4.3),
// the per-node symbolic forwarding step of equation (1), and the five
// property-query types of §4.4. The distributed driver (internal/core) and
// the centralized baseline (internal/baseline) both build on this package;
// they differ only in who owns the BDD engine and how packets travel
// between nodes.
package dataplane

import (
	"s2/internal/bdd"
	"s2/internal/config"
	"s2/internal/route"
)

// Header bit layout: 104 bits of 5-tuple plus MetaBits of path metadata
// (§4.3, "a bit vector of length 104 + m").
const (
	OffSrcIP   = 0
	OffDstIP   = 32
	OffSrcPort = 64
	OffDstPort = 80
	OffProto   = 96
	OffMeta    = 104
)

// Layout fixes the variable count of all engines participating in one
// verification run. Every worker must use the same layout for serialized
// packets to re-encode correctly.
type Layout struct {
	// MetaBits is m, the number of waypoint-tracking bits.
	MetaBits int
}

// NumVars returns the BDD variable count.
func (l Layout) NumVars() int { return OffMeta + l.MetaBits }

// NewEngine builds a BDD engine sized for this layout.
func (l Layout) NewEngine(maxNodes int) *bdd.Engine {
	return bdd.New(l.NumVars(), maxNodes)
}

// valueBits builds the cube literals for an integer field.
func valueBits(offset, width int, value uint32, into map[int]bool) {
	for i := 0; i < width; i++ {
		into[offset+i] = value>>(width-1-i)&1 == 1
	}
}

// PrefixMatch returns the BDD for "field at offset matches prefix".
func PrefixMatch(e *bdd.Engine, offset int, p route.Prefix) (bdd.Ref, error) {
	lits := map[int]bool{}
	for i := 0; i < int(p.Len); i++ {
		lits[offset+i] = p.Addr>>(31-i)&1 == 1
	}
	return e.Cube(lits)
}

// AddrMatch returns the BDD for an exact 32-bit address.
func AddrMatch(e *bdd.Engine, offset int, addr uint32) (bdd.Ref, error) {
	lits := map[int]bool{}
	valueBits(offset, 32, addr, lits)
	return e.Cube(lits)
}

// RangeMatch returns the BDD for "width-bit field in [lo, hi]" using the
// standard decomposition of an integer range into O(width) prefix cubes.
func RangeMatch(e *bdd.Engine, offset, width int, lo, hi uint32) (bdd.Ref, error) {
	if lo > hi {
		return bdd.False, nil
	}
	max := uint32(1)<<width - 1
	if hi > max {
		hi = max
	}
	if lo == 0 && hi == max {
		return bdd.True, nil
	}
	acc := bdd.False
	// Decompose [lo, hi] into maximal aligned blocks.
	for lo <= hi {
		// Largest block size starting at lo that stays within [lo, hi].
		size := uint32(1)
		for {
			next := size << 1
			if next == 0 || lo&(next-1) != 0 || lo+next-1 > hi {
				break
			}
			size = next
		}
		bits := 0
		for s := size; s > 1; s >>= 1 {
			bits++
		}
		lits := map[int]bool{}
		for i := 0; i < width-bits; i++ {
			lits[offset+i] = lo>>(width-1-i)&1 == 1
		}
		cube, err := e.Cube(lits)
		if err != nil {
			return bdd.False, err
		}
		acc, err = e.Or(acc, cube)
		if err != nil {
			return bdd.False, err
		}
		if lo+size-1 == ^uint32(0) {
			break
		}
		lo += size
	}
	return acc, nil
}

// ProtoMatch returns the BDD for an exact IP protocol number (0 = any).
func ProtoMatch(e *bdd.Engine, proto uint8) (bdd.Ref, error) {
	if proto == 0 {
		return bdd.True, nil
	}
	lits := map[int]bool{}
	valueBits(OffProto, 8, uint32(proto), lits)
	return e.Cube(lits)
}

// HeaderSpace is the user-facing H of a query (§4.4): optional constraints
// on the 5-tuple. Nil fields are unconstrained.
type HeaderSpace struct {
	SrcPrefix *route.Prefix
	DstPrefix *route.Prefix
	// DstIn, when non-empty, constrains the destination to the UNION of
	// these prefixes (used by all-pair checks to scope traffic to owned
	// destinations). Combines conjunctively with DstPrefix.
	DstIn     []route.Prefix
	Proto     uint8 // 0 = any
	DstPortLo uint16
	DstPortHi uint16 // 0,0 = any (normalized to 0,65535)
}

// Compile converts the header space into a symbolic packet.
func (h *HeaderSpace) Compile(e *bdd.Engine) (bdd.Ref, error) {
	acc := bdd.True
	var err error
	and := func(r bdd.Ref) {
		if err == nil {
			acc, err = e.And(acc, r)
		}
	}
	if h == nil {
		return acc, nil
	}
	if h.SrcPrefix != nil {
		r, e2 := PrefixMatch(e, OffSrcIP, *h.SrcPrefix)
		if e2 != nil {
			return bdd.False, e2
		}
		and(r)
	}
	if h.DstPrefix != nil {
		r, e2 := PrefixMatch(e, OffDstIP, *h.DstPrefix)
		if e2 != nil {
			return bdd.False, e2
		}
		and(r)
	}
	if len(h.DstIn) > 0 {
		union := bdd.False
		for _, p := range h.DstIn {
			r, e2 := PrefixMatch(e, OffDstIP, p)
			if e2 != nil {
				return bdd.False, e2
			}
			union, e2 = e.Or(union, r)
			if e2 != nil {
				return bdd.False, e2
			}
		}
		and(union)
	}
	if h.Proto != 0 {
		r, e2 := ProtoMatch(e, h.Proto)
		if e2 != nil {
			return bdd.False, e2
		}
		and(r)
	}
	if !(h.DstPortLo == 0 && (h.DstPortHi == 0 || h.DstPortHi == 65535)) {
		hi := h.DstPortHi
		if hi == 0 {
			hi = h.DstPortLo
		}
		r, e2 := RangeMatch(e, OffDstPort, 16, uint32(h.DstPortLo), uint32(hi))
		if e2 != nil {
			return bdd.False, e2
		}
		and(r)
	}
	return acc, err
}

// ACLMatch compiles one ACL into a permit predicate with first-match
// semantics: a packet is permitted iff the first matching entry permits it;
// the implicit tail entry denies.
func ACLMatch(e *bdd.Engine, acl *config.ACL) (bdd.Ref, error) {
	permitted := bdd.False
	unmatched := bdd.True // packets not matched by any earlier entry
	for _, entry := range acl.Entries {
		m, err := aclEntryMatch(e, entry)
		if err != nil {
			return bdd.False, err
		}
		hit, err := e.And(unmatched, m)
		if err != nil {
			return bdd.False, err
		}
		if entry.Action == config.Permit {
			permitted, err = e.Or(permitted, hit)
			if err != nil {
				return bdd.False, err
			}
		}
		unmatched, err = e.Diff(unmatched, m)
		if err != nil {
			return bdd.False, err
		}
		if unmatched == bdd.False {
			break
		}
	}
	return permitted, nil
}

func aclEntryMatch(e *bdd.Engine, entry config.ACLEntry) (bdd.Ref, error) {
	if entry.MatchesAny() {
		return bdd.True, nil
	}
	src, err := PrefixMatch(e, OffSrcIP, entry.Src)
	if err != nil {
		return bdd.False, err
	}
	dst, err := PrefixMatch(e, OffDstIP, entry.Dst)
	if err != nil {
		return bdd.False, err
	}
	proto, err := ProtoMatch(e, entry.Proto)
	if err != nil {
		return bdd.False, err
	}
	sport, err := RangeMatch(e, OffSrcPort, 16, uint32(entry.SrcPortLo), uint32(entry.SrcPortHi))
	if err != nil {
		return bdd.False, err
	}
	dport, err := RangeMatch(e, OffDstPort, 16, uint32(entry.DstPortLo), uint32(entry.DstPortHi))
	if err != nil {
		return bdd.False, err
	}
	return e.AndAll(src, dst, proto, sport, dport)
}

// dstIPOf extracts a concrete destination IP from a satisfying assignment;
// testing helper shared with property checks.
func dstIPOf(asg map[int]bool) uint32 {
	var v uint32
	for i := 0; i < 32; i++ {
		if asg[OffDstIP+i] {
			v |= 1 << (31 - i)
		}
	}
	return v
}
