package dataplane

import (
	"strings"
	"testing"

	"s2/internal/config"
	"s2/internal/route"
)

func deviceFrom(t *testing.T, cfg string) *config.Device {
	t.Helper()
	dev, err := config.Parse("d.cfg", cfg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return dev
}

const fibDeviceCfg = `hostname d
interface eth0
 ip address 10.0.0.0/31
interface eth1
 ip address 10.0.0.2/31
interface vlan10
 ip address 10.8.0.1/24
ip route 172.16.0.0/16 10.0.0.1
ip route 10.99.0.0/24 null0
`

func bgpRoute(pfx, nh, nhNode string) *route.Route {
	return &route.Route{
		Prefix:      route.MustParsePrefix(pfx),
		Protocol:    route.BGP,
		NextHop:     route.MustParseAddr(nh),
		NextHopNode: nhNode,
	}
}

func entryFor(f *FIB, pfx string) *FIBEntry {
	p := route.MustParsePrefix(pfx)
	for i := range f.Entries {
		if f.Entries[i].Prefix == p {
			return &f.Entries[i]
		}
	}
	return nil
}

func TestBuildFIBBasics(t *testing.T) {
	dev := deviceFrom(t, fibDeviceCfg)
	rib := route.NewRIB()
	rib.SetRoutes(route.MustParsePrefix("10.20.0.0/16"), []*route.Route{
		bgpRoute("10.20.0.0/16", "10.0.0.1", "peerA"),
		bgpRoute("10.20.0.0/16", "10.0.0.3", "peerB"),
	})
	fib, errs := BuildFIB(dev, rib)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	// Connected prefixes are local.
	if e := entryFor(fib, "10.8.0.0/24"); e == nil || !e.Local {
		t.Fatalf("connected entry: %+v", e)
	}
	// Static with next hop resolves to eth0.
	if e := entryFor(fib, "172.16.0.0/16"); e == nil || len(e.OutPorts) != 1 || e.OutPorts[0] != "eth0" {
		t.Fatalf("static entry: %+v", e)
	}
	// Null route is a drop.
	if e := entryFor(fib, "10.99.0.0/24"); e == nil || !e.Drop {
		t.Fatalf("null entry: %+v", e)
	}
	// BGP ECMP resolves both ports.
	if e := entryFor(fib, "10.20.0.0/16"); e == nil || len(e.OutPorts) != 2 {
		t.Fatalf("ecmp entry: %+v", e)
	} else if e.OutPorts[0] != "eth0" || e.OutPorts[1] != "eth1" {
		t.Fatalf("ecmp ports: %v", e.OutPorts)
	}
	if fib.ModelBytes() <= 0 {
		t.Error("ModelBytes")
	}
}

func TestBuildFIBAdminDistance(t *testing.T) {
	dev := deviceFrom(t, fibDeviceCfg)
	// BGP and OSPF both offer the connected prefix 10.8.0.0/24 — the
	// connected route must win; and both offer 10.30/16 — BGP (AD 20)
	// beats OSPF (AD 110).
	bgpRIB := route.NewRIB()
	bgpRIB.SetRoutes(route.MustParsePrefix("10.8.0.0/24"), []*route.Route{
		bgpRoute("10.8.0.0/24", "10.0.0.1", "peerA"),
	})
	bgpRIB.SetRoutes(route.MustParsePrefix("10.30.0.0/16"), []*route.Route{
		bgpRoute("10.30.0.0/16", "10.0.0.1", "peerA"),
	})
	ospfRIB := route.NewRIB()
	ospfRIB.SetRoutes(route.MustParsePrefix("10.30.0.0/16"), []*route.Route{{
		Prefix:      route.MustParsePrefix("10.30.0.0/16"),
		Protocol:    route.OSPF,
		NextHop:     route.MustParseAddr("10.0.0.3"),
		NextHopNode: "peerB",
	}})
	fib, errs := BuildFIB(dev, bgpRIB, ospfRIB)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if e := entryFor(fib, "10.8.0.0/24"); !e.Local {
		t.Fatal("connected must beat BGP")
	}
	e := entryFor(fib, "10.30.0.0/16")
	if len(e.OutPorts) != 1 || e.OutPorts[0] != "eth0" {
		t.Fatalf("BGP must beat OSPF: %+v", e)
	}
}

func TestBuildFIBUnresolvableNextHop(t *testing.T) {
	dev := deviceFrom(t, fibDeviceCfg)
	rib := route.NewRIB()
	rib.SetRoutes(route.MustParsePrefix("10.40.0.0/16"), []*route.Route{
		bgpRoute("10.40.0.0/16", "99.99.99.99", "ghost"),
	})
	fib, errs := BuildFIB(dev, rib)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "unresolvable") {
		t.Fatalf("errors = %v", errs)
	}
	if entryFor(fib, "10.40.0.0/16") != nil {
		t.Fatal("unresolvable route must not enter the FIB")
	}
}

func TestBuildFIBAggregateDiscard(t *testing.T) {
	dev := deviceFrom(t, fibDeviceCfg)
	rib := route.NewRIB()
	rib.SetRoutes(route.MustParsePrefix("10.8.0.0/21"), []*route.Route{{
		Prefix:   route.MustParsePrefix("10.8.0.0/21"),
		Protocol: route.Aggregate,
	}})
	fib, errs := BuildFIB(dev, rib)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if e := entryFor(fib, "10.8.0.0/21"); e == nil || !e.Drop {
		t.Fatalf("aggregate should install a discard entry: %+v", e)
	}
}
