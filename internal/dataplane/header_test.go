package dataplane

import (
	"math/rand"
	"testing"

	"s2/internal/bdd"
	"s2/internal/config"
	"s2/internal/route"
)

func TestLayout(t *testing.T) {
	l := Layout{MetaBits: 4}
	if l.NumVars() != 108 {
		t.Fatalf("NumVars = %d", l.NumVars())
	}
	e := l.NewEngine(0)
	if e.NumVars() != 108 {
		t.Fatal("engine sizing")
	}
}

func TestPrefixMatchSatCount(t *testing.T) {
	e := Layout{}.NewEngine(0)
	p, err := PrefixMatch(e, OffDstIP, route.MustParsePrefix("10.0.0.0/8"))
	if err != nil {
		t.Fatal(err)
	}
	// 24 free dst bits + 72 other header bits.
	want := pow2f(24 + 72)
	if got := e.SatCount(p); got != want {
		t.Fatalf("satcount = %g, want %g", got, want)
	}
	// Default route matches everything.
	all, _ := PrefixMatch(e, OffDstIP, route.Prefix{})
	if all != bdd.True {
		t.Fatal("0/0 must be ⊤")
	}
}

func pow2f(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	return v
}

func TestAddrMatch(t *testing.T) {
	e := Layout{}.NewEngine(0)
	r, err := AddrMatch(e, OffSrcIP, route.MustParseAddr("1.2.3.4"))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.SatCount(r); got != pow2f(72) {
		t.Fatalf("satcount = %g", got)
	}
}

func TestRangeMatchAgainstBruteForce(t *testing.T) {
	// Use a tiny 6-bit field standalone to brute-force.
	e := bdd.New(6, 0)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		lo := uint32(rng.Intn(64))
		hi := uint32(rng.Intn(64))
		r, err := RangeMatch(e, 0, 6, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		if lo <= hi {
			want = float64(hi - lo + 1)
		}
		if got := e.SatCount(r); got != want {
			t.Fatalf("[%d,%d]: satcount %g want %g", lo, hi, got, want)
		}
		// Point checks.
		for v := uint32(0); v < 64; v++ {
			asg := make([]bool, 6)
			for i := 0; i < 6; i++ {
				asg[i] = v>>(5-i)&1 == 1
			}
			inRange := lo <= v && v <= hi
			if e.Eval(r, asg) != inRange {
				t.Fatalf("[%d,%d] value %d misclassified", lo, hi, v)
			}
		}
	}
	// Full range is ⊤.
	full, _ := RangeMatch(e, 0, 6, 0, 63)
	if full != bdd.True {
		t.Fatal("full range must be ⊤")
	}
	// Clamping beyond width.
	clamped, _ := RangeMatch(e, 0, 6, 0, 9999)
	if clamped != bdd.True {
		t.Fatal("over-wide range clamps to ⊤")
	}
}

func TestProtoMatch(t *testing.T) {
	e := Layout{}.NewEngine(0)
	tcp, err := ProtoMatch(e, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.SatCount(tcp); got != pow2f(96) {
		t.Fatalf("satcount = %g", got)
	}
	any, _ := ProtoMatch(e, 0)
	if any != bdd.True {
		t.Fatal("proto 0 = any")
	}
}

func TestHeaderSpaceCompile(t *testing.T) {
	e := Layout{}.NewEngine(0)
	dst := route.MustParsePrefix("10.8.0.0/24")
	h := &HeaderSpace{DstPrefix: &dst, Proto: 6, DstPortLo: 80, DstPortHi: 80}
	r, err := h.Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	// Free bits: 32 src + 8 dst host + 16 sport = 56.
	if got := e.SatCount(r); got != pow2f(56) {
		t.Fatalf("satcount = %g want 2^56", got)
	}
	// Nil header space is everything.
	var nilH *HeaderSpace
	all, err := nilH.Compile(e)
	if err != nil || all != bdd.True {
		t.Fatal("nil header space must be ⊤")
	}
}

func TestACLMatchFirstMatchSemantics(t *testing.T) {
	e := Layout{}.NewEngine(0)
	acl := &config.ACL{Name: "T", Entries: []config.ACLEntry{
		// deny tcp any 10.0.0.0/8 eq 22
		{Action: config.Deny, Proto: 6, Dst: route.MustParsePrefix("10.0.0.0/8"),
			SrcPortHi: 65535, DstPortLo: 22, DstPortHi: 22},
		// permit ip any 10.0.0.0/8
		{Action: config.Permit, Dst: route.MustParsePrefix("10.0.0.0/8"),
			SrcPortHi: 65535, DstPortHi: 65535},
		// implicit deny everything else
	}}
	perm, err := ACLMatch(e, acl)
	if err != nil {
		t.Fatal(err)
	}
	// tcp/22 into 10/8 is denied even though entry 2 would permit.
	dst10 := route.MustParsePrefix("10.1.2.0/24")
	ssh := &HeaderSpace{DstPrefix: &dst10, Proto: 6, DstPortLo: 22, DstPortHi: 22}
	sshPkt, _ := ssh.Compile(e)
	if overlap, _ := e.And(perm, sshPkt); overlap != bdd.False {
		t.Fatal("first-match deny must win")
	}
	// tcp/80 into 10/8 is permitted.
	web := &HeaderSpace{DstPrefix: &dst10, Proto: 6, DstPortLo: 80, DstPortHi: 80}
	webPkt, _ := web.Compile(e)
	if ok, _ := e.Implies(webPkt, perm); !ok {
		t.Fatal("permitted traffic must imply the ACL predicate")
	}
	// Traffic to 192.168/16 hits the implicit deny.
	other := route.MustParsePrefix("192.168.0.0/16")
	otherPkt, _ := (&HeaderSpace{DstPrefix: &other}).Compile(e)
	if overlap, _ := e.And(perm, otherPkt); overlap != bdd.False {
		t.Fatal("implicit deny")
	}
}

func TestACLPermitAnyShortCircuits(t *testing.T) {
	e := Layout{}.NewEngine(0)
	acl := &config.ACL{Name: "ANY", Entries: []config.ACLEntry{
		{Action: config.Permit, SrcPortHi: 65535, DstPortHi: 65535},
		{Action: config.Deny, SrcPortHi: 65535, DstPortHi: 65535},
	}}
	perm, err := ACLMatch(e, acl)
	if err != nil {
		t.Fatal(err)
	}
	if perm != bdd.True {
		t.Fatal("permit ip any any first → ⊤")
	}
	// Empty ACL denies everything.
	empty, _ := ACLMatch(e, &config.ACL{Name: "E"})
	if empty != bdd.False {
		t.Fatal("empty ACL → ⊥")
	}
}
