package dataplane

import (
	"fmt"
	"sort"

	"s2/internal/bdd"
	"s2/internal/topology"
)

// PortDest resolves where a node's egress port leads.
type PortDest struct {
	Node string
	Port string
}

// AdjacencyIndex maps (node, port) → peer for traversal.
type AdjacencyIndex map[string]map[string]PortDest

// BuildAdjacencyIndex derives the traversal adjacency from the topology.
func BuildAdjacencyIndex(net *topology.Network) AdjacencyIndex {
	idx := AdjacencyIndex{}
	for dev, adjs := range net.Adjacencies {
		m := map[string]PortDest{}
		for _, a := range adjs {
			m[a.LocalIfc] = PortDest{Node: a.Neighbor, Port: a.RemoteIfc}
		}
		idx[dev] = m
	}
	return idx
}

// Traverse runs single-engine wavefront forwarding for one source: the
// packet set is injected at source and flooded until every part reaches a
// final state or the TTL expires. Items are merged per (node, inPort) per
// round, so the work per round is bounded by the port count — the same
// wavefront structure the distributed DPO orchestrates across workers.
//
// isDest tells whether local delivery at a node counts as Arrive (true) or
// Exit (false); nil means every delivery is an Arrive (empty V_d, §4.4).
func Traverse(
	e *bdd.Engine,
	nodes map[string]*NodeDP,
	adj AdjacencyIndex,
	source string,
	pkt bdd.Ref,
	maxHops int,
	isDest func(string) bool,
	emit func(Outcome) error,
) error {
	src, ok := nodes[source]
	if !ok {
		return fmt.Errorf("dataplane: unknown source node %q", source)
	}
	if pkt == bdd.False {
		return nil
	}
	type slot struct {
		node   string
		inPort string
	}
	wave := map[slot]bdd.Ref{{node: src.Name}: pkt}

	classify := func(node string, state FinalState, r bdd.Ref) error {
		if r == bdd.False {
			return nil
		}
		if state == Arrive && isDest != nil && !isDest(node) {
			state = Exit
		}
		return emit(Outcome{Source: source, Node: node, State: state, Packet: r})
	}

	for hop := 0; hop <= maxHops && len(wave) > 0; hop++ {
		// Deterministic iteration.
		slots := make([]slot, 0, len(wave))
		for s := range wave {
			slots = append(slots, s)
		}
		sort.Slice(slots, func(i, j int) bool {
			if slots[i].node != slots[j].node {
				return slots[i].node < slots[j].node
			}
			return slots[i].inPort < slots[j].inPort
		})

		next := map[slot]bdd.Ref{}
		for _, s := range slots {
			n := nodes[s.node]
			if n == nil {
				return fmt.Errorf("dataplane: packet reached unknown node %q", s.node)
			}
			res, err := n.Forward(e, wave[s], s.inPort)
			if err != nil {
				return err
			}
			if err := classify(s.node, Arrive, res.Local); err != nil {
				return err
			}
			if err := classify(s.node, Blackhole, res.Dropped); err != nil {
				return err
			}
			for port, out := range res.Out {
				dest, ok := adj[s.node][port]
				if !ok {
					// Edge port: the packet leaves the network.
					state := Exit
					if isDest != nil && isDest(s.node) {
						state = Arrive
					}
					if err := classify(s.node, state, out); err != nil {
						return err
					}
					continue
				}
				key := slot{node: dest.Node, inPort: dest.Port}
				if prev, ok := next[key]; ok {
					merged, err := e.Or(prev, out)
					if err != nil {
						return err
					}
					next[key] = merged
				} else {
					next[key] = out
				}
			}
		}
		wave = next
	}

	// TTL exceeded: whatever still circulates is looping.
	for s, r := range wave {
		if err := emit(Outcome{Source: source, Node: s.node, State: Loop, Packet: r}); err != nil {
			return err
		}
	}
	return nil
}
