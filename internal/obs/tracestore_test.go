package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func fastTrace(id string, dur time.Duration) *RequestTrace {
	return &RequestTrace{ID: id, Name: "GET /v1/queries", Duration: dur, Status: 200}
}

// TestTraceStoreTailRetention is the retention guarantee: under a churn of
// fast healthy requests, the error trace and the slowest-N survive while
// the store stays bounded.
func TestTraceStoreTailRetention(t *testing.T) {
	s := NewTraceStore(8, 2)
	s.Add(&RequestTrace{ID: "err-1", Duration: 5 * time.Millisecond, Status: 422, Err: true})
	s.Add(fastTrace("slow-1", 10*time.Second))
	s.Add(fastTrace("slow-2", 9*time.Second))
	for i := 0; i < 50; i++ {
		s.Add(fastTrace(fmt.Sprintf("fast-%d", i), time.Duration(i)*time.Microsecond))
	}
	if got := s.Len(); got != 8 {
		t.Fatalf("store size %d, want cap 8", got)
	}
	for _, id := range []string{"err-1", "slow-1", "slow-2"} {
		if s.Get(id) == nil {
			t.Fatalf("protected trace %s was evicted", id)
		}
	}
	added, evicted := s.Stats()
	if added != 53 || evicted != 45 {
		t.Fatalf("stats = (%d, %d), want (53, 45)", added, evicted)
	}

	// Newest-first listing.
	list := s.Traces()
	if list[0].ID != "fast-49" {
		t.Fatalf("Traces()[0] = %s, want fast-49", list[0].ID)
	}

	// Errors lose protection only when everything resident is protected:
	// fill with errors and check the store still honors its bound.
	for i := 0; i < 20; i++ {
		s.Add(&RequestTrace{ID: fmt.Sprintf("err-flood-%d", i), Status: 500, Err: true})
	}
	if got := s.Len(); got != 8 {
		t.Fatalf("store size %d after error flood, want 8", got)
	}
}

func TestTraceStoreSpansAndIDs(t *testing.T) {
	s := NewTraceStore(4, 0)
	if id := s.NextID(); id != "r000001" {
		t.Fatalf("first id %q", id)
	}
	if id := s.NextID(); id != "r000002" {
		t.Fatalf("second id %q", id)
	}
	s.Add(&RequestTrace{ID: "a", Events: []TraceEvent{
		{Name: "root", Ph: "X"}, {Name: "child", Ph: "X"}, {Name: "meta", Ph: "M"},
	}})
	if got := s.Get("a").Spans; got != 2 {
		t.Fatalf("span count %d, want 2 (metadata events excluded)", got)
	}
}

func TestTraceStoreDisabled(t *testing.T) {
	if NewTraceStore(0, 4) != nil {
		t.Fatal("capacity 0 must return a nil store")
	}
	var s *TraceStore
	if id := s.NextID(); id != "" {
		t.Fatalf("nil store id %q", id)
	}
	tr := fastTrace("x", time.Second)
	if n := testing.AllocsPerRun(100, func() {
		s.Add(tr)
		if s.Len() != 0 || s.Get("x") != nil || s.Traces() != nil {
			t.Fatal("nil store retained something")
		}
	}); n != 0 {
		t.Fatalf("nil store allocates %v per operation", n)
	}
}

// TestTraceStoreConcurrent hammers the store from many goroutines (run
// under -race in CI) and checks the bound holds throughout.
func TestTraceStoreConcurrent(t *testing.T) {
	s := NewTraceStore(16, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Add(&RequestTrace{
					ID:       s.NextID(),
					Duration: time.Duration(g*200+i) * time.Microsecond,
					Status:   200,
					Err:      i%17 == 0,
				})
				if i%10 == 0 {
					s.Traces()
					s.Len()
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Len(); got != 16 {
		t.Fatalf("store size %d after hammer, want 16", got)
	}
	added, evicted := s.Stats()
	if added != 1600 || evicted != 1584 {
		t.Fatalf("stats = (%d, %d), want (1600, 1584)", added, evicted)
	}
}
