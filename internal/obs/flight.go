package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// FlightEvent is one entry in the flight recorder: a timestamped,
// structured "something happened" record (phase transition, GC, wire
// session reset, RPC error, eviction…).
type FlightEvent struct {
	UnixMicro int64  `json:"ts_unix_micro"`
	Kind      string `json:"kind"`
	Msg       string `json:"msg"`
}

// Time returns the event's wall-clock time.
func (e FlightEvent) Time() time.Time { return time.UnixMicro(e.UnixMicro) }

// DefaultFlightSize is the ring capacity used by NewFlightRecorder(0).
const DefaultFlightSize = 256

// FlightRecorder is a fixed-size, always-on ring buffer of recent events,
// cheap enough to leave enabled in production: recording is one short
// critical section and never allocates beyond the formatted message. It is
// the black box consulted after a panic, SIGQUIT, or worker eviction —
// dumped to stderr/file and served at /debug/flightrecorder. A nil
// *FlightRecorder is a no-op sink.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []FlightEvent
	head, n int
	total   uint64
}

// NewFlightRecorder returns a recorder holding the last size events
// (DefaultFlightSize if size <= 0).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	return &FlightRecorder{buf: make([]FlightEvent, size)}
}

// Record appends an event, evicting the oldest when the ring is full.
func (r *FlightRecorder) Record(kind, format string, args ...any) {
	if r == nil {
		return
	}
	e := FlightEvent{
		UnixMicro: time.Now().UnixMicro(),
		Kind:      kind,
		Msg:       fmt.Sprintf(format, args...),
	}
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.head = (r.head + 1) % len(r.buf)
		r.n--
	}
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
	r.total++
	r.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (r *FlightRecorder) Events() []FlightEvent {
	return r.Page(0)
}

// Page returns the most recent max events (all buffered events when
// max <= 0), oldest first.
func (r *FlightRecorder) Page(max int) []FlightEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if max > 0 && n > max {
		n = max
	}
	out := make([]FlightEvent, 0, n)
	for i := r.n - n; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// Total returns how many events have ever been recorded (including ones
// the ring has since evicted).
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// WriteTo dumps the buffered events as human-readable lines, oldest first
// — the format used for panic/SIGQUIT dumps.
func (r *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	var total int64
	events := r.Events()
	n, err := fmt.Fprintf(w, "=== flight recorder (%d events, %d total) ===\n", len(events), r.Total())
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, e := range events {
		n, err := fmt.Fprintf(w, "%s %-12s %s\n", e.Time().UTC().Format("15:04:05.000000"), e.Kind, e.Msg)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// MarshalPage renders the most recent max events as JSON — the form the
// controller stores in a trace attr when it captures an evicted worker's
// last flight page.
func (r *FlightRecorder) MarshalPage(max int) string {
	b, err := json.Marshal(r.Page(max))
	if err != nil {
		return "[]"
	}
	return string(b)
}
