package obs

import (
	"time"
)

// Standard RPC metric names. role distinguishes the controller's calls
// into workers ("client"), a worker's sidecar serving calls ("server"),
// and a worker's own calls into peer sidecars ("peer").
const (
	MetricRPCCalls   = "s2_rpc_calls_total"
	MetricRPCLatency = "s2_rpc_latency_seconds"
	MetricRPCBytes   = "s2_rpc_bytes_total"
)

// RPCInstrument builds a begin-hook for one RPC role: calling it with a
// method name records the in-flight RPC and returns the completion func
// that commits count, latency, and an optional trace span. parent, when
// non-nil, names the span each RPC should nest under (sampled at call
// start, so RPCs land inside the stage that issued them). Returns nil when
// there is nothing to record — callers skip wrapping entirely.
func RPCInstrument(reg *Registry, role string, parent func() *Span) func(method string) func(error) {
	if reg == nil && parent == nil {
		return nil
	}
	calls := reg.Counter(MetricRPCCalls,
		"RPCs issued or served, by role, method, and outcome.",
		"role", "method", "code")
	latency := reg.Histogram(MetricRPCLatency,
		"RPC wall-clock latency in seconds, by role and method.",
		nil, "role", "method")
	return func(method string) func(error) {
		start := time.Now()
		var span *Span
		if parent != nil {
			span = parent().Child("rpc:"+method, String("role", role))
		}
		return func(err error) {
			d := time.Since(start)
			code := "ok"
			if err != nil {
				code = "error"
				span.SetAttr("error", err.Error())
			}
			calls.Inc(role, method, code)
			latency.Observe(d.Seconds(), role, method)
			span.End()
		}
	}
}

// RPCInstrumentTraced is RPCInstrument plus cross-process propagation: the
// begin-hook also returns the rpc span's TraceContext so the transport can
// stamp it onto the outgoing request, parenting the server-side span under
// this exact call. extra attrs (e.g. the target worker id) are stamped on
// every rpc span, which is what lets the attribution report pivot client
// RPC cost per worker. Returns nil when there is nothing to record.
func RPCInstrumentTraced(reg *Registry, role string, parent func() *Span, extra ...Attr) func(method string) (TraceContext, func(error)) {
	if reg == nil && parent == nil {
		return nil
	}
	calls := reg.Counter(MetricRPCCalls,
		"RPCs issued or served, by role, method, and outcome.",
		"role", "method", "code")
	latency := reg.Histogram(MetricRPCLatency,
		"RPC wall-clock latency in seconds, by role and method.",
		nil, "role", "method")
	return func(method string) (TraceContext, func(error)) {
		start := time.Now()
		var span *Span
		if parent != nil {
			attrs := append([]Attr{String("role", role)}, extra...)
			span = parent().Child("rpc:"+method, attrs...)
		}
		return span.TC(), func(err error) {
			d := time.Since(start)
			code := "ok"
			if err != nil {
				code = "error"
				span.SetAttr("error", err.Error())
			}
			calls.Inc(role, method, code)
			latency.Observe(d.Seconds(), role, method)
			span.End()
		}
	}
}
