package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHistoryRing(t *testing.T) {
	h := NewHistory(4)
	base := time.Unix(1000, 0)
	for i := 0; i < 6; i++ {
		h.Record(base.Add(time.Duration(i)*time.Second), map[string]float64{
			"a": float64(i),
			"b": float64(i * 10),
		})
	}
	if h.Rounds() != 6 {
		t.Errorf("rounds = %d, want 6", h.Rounds())
	}
	pts := h.Series("a", 0)
	if len(pts) != 4 {
		t.Fatalf("len(series a) = %d, want 4 (capacity)", len(pts))
	}
	// Oldest-first after wrap: samples 2,3,4,5.
	for i, p := range pts {
		if p.Value != float64(i+2) {
			t.Errorf("pts[%d].Value = %v, want %d", i, p.Value, i+2)
		}
	}
	if pts[0].UnixMilli >= pts[3].UnixMilli {
		t.Error("points not in ascending time order")
	}
	// max trims to the newest points, still oldest-first.
	last2 := h.Series("b", 2)
	if len(last2) != 2 || last2[0].Value != 40 || last2[1].Value != 50 {
		t.Errorf("Series(b, 2) = %v, want [40 50]", last2)
	}
	if latest, ok := h.Latest("a"); !ok || latest.Value != 5 {
		t.Errorf("Latest(a) = %v %v, want 5 true", latest, ok)
	}
	if names := h.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names() = %v, want [a b]", names)
	}
	dump := h.Dump(3)
	if len(dump["a"]) != 3 || dump["a"][2].Value != 5 {
		t.Errorf("Dump(3)[a] = %v, want newest 3 ending at 5", dump["a"])
	}
	if h.Series("missing", 0) != nil {
		t.Error("unknown series must return nil")
	}
}

func TestHistoryNilAndDisabled(t *testing.T) {
	if NewHistory(0) != nil || NewHistory(-1) != nil {
		t.Fatal("capacity <= 0 must disable the history")
	}
	var h *History
	h.Record(time.Now(), map[string]float64{"a": 1})
	if h.Series("a", 0) != nil || h.Names() != nil || h.Rounds() != 0 || h.Dump(1) != nil {
		t.Error("nil history must be inert")
	}
	if _, ok := h.Latest("a"); ok {
		t.Error("nil history Latest must report absence")
	}
	stop := h.Start(time.Millisecond, func() map[string]float64 { return nil })
	stop() // must not panic
}

func TestHistoryStart(t *testing.T) {
	h := NewHistory(16)
	stop := h.Start(time.Millisecond, func() map[string]float64 {
		return map[string]float64{"x": 1}
	})
	deadline := time.Now().Add(2 * time.Second)
	for h.Rounds() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	rounds := h.Rounds()
	if rounds < 3 {
		t.Fatalf("sampler recorded %d rounds, want >= 3", rounds)
	}
	time.Sleep(5 * time.Millisecond)
	if h.Rounds() != rounds {
		t.Error("sampler kept recording after stop")
	}
}

func TestProfileStoreRing(t *testing.T) {
	if NewProfileStore(0) != nil {
		t.Fatal("capacity <= 0 must disable the store")
	}
	var nilStore *ProfileStore
	if id := nilStore.Add(&Profile{}); id != "" {
		t.Error("nil store Add must return empty id")
	}
	if nilStore.Get("p000001") != nil || nilStore.Profiles() != nil || nilStore.Len() != 0 {
		t.Error("nil store must be inert")
	}

	s := NewProfileStore(2)
	id1 := s.Add(&Profile{Worker: 0, Kind: "cpu", Data: []byte{1}})
	id2 := s.Add(&Profile{Worker: 1, Kind: "heap", Data: []byte{2, 2}})
	id3 := s.Add(&Profile{Worker: 2, Kind: "cpu", Data: []byte{3, 3, 3}})
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if s.Get(id1) != nil {
		t.Error("oldest profile must be evicted FIFO")
	}
	if p := s.Get(id3); p == nil || p.Bytes != 3 || p.Worker != 2 {
		t.Errorf("Get(%s) = %+v, want worker 2 with 3 bytes", id3, s.Get(id3))
	}
	list := s.Profiles()
	if len(list) != 2 || list[0].ID != id3 || list[1].ID != id2 {
		t.Errorf("Profiles() order = %v, want newest-first [%s %s]", list, id3, id2)
	}
	if added, evicted := s.Stats(); added != 3 || evicted != 1 {
		t.Errorf("stats = %d added %d evicted, want 3/1", added, evicted)
	}
}

// readSSEFrames collects n "data:" frames from a live SSE stream.
func readSSEFrames(t *testing.T, body *bufio.Scanner, n int) []dashFrame {
	t.Helper()
	var out []dashFrame
	for body.Scan() && len(out) < n {
		line := body.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var f dashFrame
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		out = append(out, f)
	}
	return out
}

func TestDashboardSSEAndHTML(t *testing.T) {
	h := NewHistory(32)
	for i := 0; i < 6; i++ {
		h.Record(time.Now(), map[string]float64{"s2_queries_total": float64(i)})
	}
	d := &Dashboard{
		Health:  func() any { return map[string]any{"epoch": 7} },
		History: h,
	}
	srv := httptest.NewServer(d)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	page, _ := func() ([]byte, error) {
		defer resp.Body.Close()
		buf := make([]byte, 1<<16)
		n, _ := resp.Body.Read(buf)
		return buf[:n], nil
	}()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content-type = %q, want text/html", ct)
	}
	if !strings.Contains(string(page), "fleet dashboard") {
		t.Error("HTML page missing dashboard markup")
	}

	stream, err := http.Get(srv.URL + "?stream=1&interval=250")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type = %q", ct)
	}
	frames := readSSEFrames(t, bufio.NewScanner(stream.Body), 2)
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}
	if frames[1].Seq <= frames[0].Seq {
		t.Errorf("seq must advance: %d then %d", frames[0].Seq, frames[1].Seq)
	}
	if frames[0].Rounds < 5 {
		t.Errorf("frame rounds = %d, want the 6 recorded samples", frames[0].Rounds)
	}
	pts := frames[0].Series["s2_queries_total"]
	if len(pts) < 5 {
		t.Errorf("sparkline series has %d points, want >= 5", len(pts))
	}
}

func TestDashboardNilDisabled(t *testing.T) {
	mux := http.NewServeMux()
	RegisterFleetHandlers(mux, nil, nil, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("nil dashboard: status = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/debug/profile?worker=0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("nil pull: status = %d, want 501", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/debug/profiles")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Profiles []*Profile `json:"profiles"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || len(list.Profiles) != 0 {
		t.Errorf("nil store listing: err=%v profiles=%v, want empty list", err, list.Profiles)
	}
}

func TestFleetProfileEndpoints(t *testing.T) {
	store := NewProfileStore(4)
	pull := func(worker int, kind string, seconds int) (*Profile, error) {
		if kind != "cpu" && kind != "heap" {
			return nil, fmt.Errorf("unknown kind %q", kind)
		}
		p := &Profile{Worker: worker, Kind: kind, Taken: time.Now(), Data: []byte{0x1f, 0x8b, 9}}
		store.Add(p)
		return p, nil
	}
	mux := http.NewServeMux()
	RegisterFleetHandlers(mux, nil, store, pull)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// GET is rejected; POST triggers a pull.
	resp, _ := http.Get(srv.URL + "/debug/profile?worker=1")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /debug/profile: status = %d, want 405", resp.StatusCode)
	}
	resp, err := http.Post(srv.URL+"/debug/profile?worker=1&kind=heap", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Profile
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil || got.Worker != 1 || got.Kind != "heap" || got.ID == "" {
		t.Fatalf("pull reply = %+v (err %v), want stored worker-1 heap profile", got, err)
	}
	resp, _ = http.Post(srv.URL+"/debug/profile?worker=0&kind=bogus", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("bad kind: status = %d, want 502", resp.StatusCode)
	}
	resp, _ = http.Post(srv.URL+"/debug/profile?worker=-2", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative worker: status = %d, want 400", resp.StatusCode)
	}

	// The stored profile downloads as raw bytes.
	resp, err = http.Get(srv.URL + "/debug/profiles/" + got.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 16)
	n, _ := resp.Body.Read(raw)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || n != 3 || raw[0] != 0x1f {
		t.Errorf("download = status %d, %d bytes % x", resp.StatusCode, n, raw[:n])
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, got.ID) {
		t.Errorf("Content-Disposition %q missing profile id", cd)
	}
	resp, _ = http.Get(srv.URL + "/debug/profiles/nope")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status = %d, want 404", resp.StatusCode)
	}
}

func TestRegisterProcessVitals(t *testing.T) {
	RegisterProcessVitals(nil) // must not panic

	reg := NewRegistry()
	RegisterProcessVitals(reg)
	RegisterProcessVitals(reg) // idempotent
	snap := reg.Snapshot()
	if snap[MetricGoroutines] < 1 {
		t.Errorf("%s = %v, want >= 1", MetricGoroutines, snap[MetricGoroutines])
	}
	if v, ok := snap[MetricGCCPUFraction]; !ok || v < 0 || v > 1 {
		t.Errorf("%s = %v ok=%v, want [0,1]", MetricGCCPUFraction, v, ok)
	}
	// /proc is linux-only; accept the -1 fallback but require the gauge.
	if v, ok := snap[MetricOpenFDs]; !ok || (v < 1 && v != -1) {
		t.Errorf("%s = %v ok=%v", MetricOpenFDs, v, ok)
	}
}

// Satellite coverage for the clock-offset estimator's edges: the first
// sample always sets the offset, remote-ahead clocks yield negative
// offsets, and an equal-RTT later sample must NOT displace the first
// (strict < wins, so ties keep the established estimate).
func TestSkewEstimatorEdgeCases(t *testing.T) {
	base := time.Unix(2000, 0)

	t.Run("single sample", func(t *testing.T) {
		est := &SkewEstimator{}
		sent := base
		rtt := 4 * time.Millisecond
		remote := base.Add(-1 * time.Second).Add(2 * time.Millisecond).UnixMicro()
		est.Observe(sent, sent.Add(rtt), remote)
		if est.Samples() != 1 {
			t.Fatalf("samples = %d, want 1", est.Samples())
		}
		if got := est.Offset(); got != time.Second {
			t.Errorf("offset = %v, want 1s", got)
		}
	})

	t.Run("negative offset when remote runs ahead", func(t *testing.T) {
		est := &SkewEstimator{}
		sent := base
		// Remote clock 3s ahead of the local midpoint.
		remote := base.Add(3 * time.Second).Add(5 * time.Millisecond).UnixMicro()
		est.Observe(sent, sent.Add(10*time.Millisecond), remote)
		if got := est.Offset(); got != -3*time.Second {
			t.Errorf("offset = %v, want -3s", got)
		}
	})

	t.Run("min-RTT tie keeps first sample", func(t *testing.T) {
		est := &SkewEstimator{}
		rtt := 6 * time.Millisecond
		remote1 := base.Add(-2 * time.Second).Add(3 * time.Millisecond).UnixMicro()
		est.Observe(base, base.Add(rtt), remote1)
		// Same RTT, wildly different implied offset: must not win.
		sent2 := base.Add(time.Second)
		remote2 := sent2.Add(40 * time.Second).UnixMicro()
		est.Observe(sent2, sent2.Add(rtt), remote2)
		if got := est.Offset(); got != 2*time.Second {
			t.Errorf("offset after tie = %v, want first sample's 2s", got)
		}
		if est.Samples() != 2 {
			t.Errorf("samples = %d, want 2 (tie still counted)", est.Samples())
		}
	})

	t.Run("rejects zero remote stamp and negative rtt", func(t *testing.T) {
		est := &SkewEstimator{}
		est.Observe(base, base.Add(time.Millisecond), 0)
		est.Observe(base, base.Add(-time.Millisecond), base.UnixMicro())
		if est.Samples() != 0 {
			t.Errorf("samples = %d, want 0 (both samples invalid)", est.Samples())
		}
	})
}
