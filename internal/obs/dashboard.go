package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// Dashboard is the dependency-free live fleet view. GET /debug/dashboard
// serves a self-contained HTML page; the page's script re-requests the
// same path with ?stream=1 and renders the server-sent event frames: a
// fleet table heat-mapped by straggler score, epoch age, query QPS
// (derived client-side from the request-counter series), and history
// sparklines. One type serves both the controller (-obs-addr) and
// s2serve, so the two debug surfaces stay identical.
type Dashboard struct {
	// Health supplies the current fleet snapshot; any JSON-serializable
	// value works, but the page knows the FleetHealth shape (workers,
	// epoch, round_skew). Nil renders an empty fleet.
	Health func() any
	// History backs the sparklines; nil disables them.
	History *History
	// Interval paces SSE frames (default 2s; ?interval=ms overrides,
	// clamped to ≥ 250ms).
	Interval time.Duration
	// SparkPoints caps points per sparkline series (default 90).
	SparkPoints int
}

// dashFrame is one SSE frame.
type dashFrame struct {
	Seq        uint64                 `json:"seq"`
	NowMs      int64                  `json:"now_ms"`
	Rounds     uint64                 `json:"rounds"` // history sample rounds
	Health     any                    `json:"health,omitempty"`
	Series     map[string][]HistPoint `json:"series,omitempty"`
	SeriesSkip int                    `json:"series_skipped,omitempty"`
}

// maxDashSeries bounds the per-frame sparkline payload; the rest is
// reported as series_skipped so truncation is visible, not silent.
const maxDashSeries = 256

func (d *Dashboard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d == nil {
		http.Error(w, "dashboard disabled", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("stream") != "" || r.Header.Get("Accept") == "text/event-stream" {
		d.stream(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashboardHTML))
}

func (d *Dashboard) frame(seq uint64) dashFrame {
	f := dashFrame{Seq: seq, NowMs: time.Now().UnixMilli(), Rounds: d.History.Rounds()}
	if d.Health != nil {
		f.Health = d.Health()
	}
	points := d.SparkPoints
	if points <= 0 {
		points = 90
	}
	if dump := d.History.Dump(points); len(dump) > 0 {
		if len(dump) > maxDashSeries {
			names := d.History.Names()
			f.SeriesSkip = len(names) - maxDashSeries
			trimmed := make(map[string][]HistPoint, maxDashSeries)
			for _, name := range names[:maxDashSeries] {
				if pts := dump[name]; len(pts) > 0 {
					trimmed[name] = pts
				}
			}
			dump = trimmed
		}
		f.Series = dump
	}
	return f
}

func (d *Dashboard) stream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	interval := d.Interval
	if ms, err := strconv.Atoi(r.URL.Query().Get("interval")); err == nil && ms > 0 {
		interval = time.Duration(ms) * time.Millisecond
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if interval < 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	t := time.NewTicker(interval)
	defer t.Stop()
	var seq uint64
	for {
		seq++
		payload, err := json.Marshal(d.frame(seq))
		if err != nil {
			return
		}
		if _, err := w.Write([]byte("data: ")); err != nil {
			return
		}
		if _, err := w.Write(payload); err != nil {
			return
		}
		if _, err := w.Write([]byte("\n\n")); err != nil {
			return
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
		}
	}
}

const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>s2 fleet dashboard</title>
<style>
body{font:13px/1.45 -apple-system,Segoe UI,Roboto,sans-serif;margin:1.5em;background:#0f1419;color:#d6dde6}
h1{font-size:1.2em;margin:0 0 .25em}
.muted{color:#7a8796}
table{border-collapse:collapse;margin:.75em 0}
th,td{padding:.3em .7em;border-bottom:1px solid #253041;text-align:right;font-variant-numeric:tabular-nums}
th{color:#9fb0c3;font-weight:600;text-align:right}
td:first-child,th:first-child{text-align:left}
#cards{display:flex;gap:1.5em;flex-wrap:wrap;margin:.5em 0 1em}
.card b{display:block;font-size:1.25em}
#sparks{display:grid;grid-template-columns:repeat(auto-fill,minmax(260px,1fr));gap:.75em}
.spark{background:#141b24;border:1px solid #253041;border-radius:6px;padding:.5em .6em}
.spark .name{font-size:11px;color:#9fb0c3;overflow:hidden;text-overflow:ellipsis;white-space:nowrap}
.spark .val{font-size:12px;color:#e6edf5}
canvas{width:100%;height:42px;display:block;margin-top:.25em}
input{background:#141b24;color:#d6dde6;border:1px solid #253041;border-radius:4px;padding:.35em .6em;width:22em}
</style>
</head>
<body>
<h1>s2 fleet dashboard</h1>
<div class="muted" id="status">connecting…</div>
<div id="cards">
<div class="card"><span class="muted">epoch</span><b id="epoch">–</b></div>
<div class="card"><span class="muted">epoch age</span><b id="epochage">–</b></div>
<div class="card"><span class="muted">query qps</span><b id="qps">–</b></div>
<div class="card"><span class="muted">history rounds</span><b id="rounds">–</b></div>
</div>
<div id="fleet"></div>
<p><input id="filter" placeholder="filter sparkline series (e.g. s2_worker, gc_pause)" value=""></p>
<div id="sparks"></div>
<script>
"use strict";
var lastReq=null,lastReqAt=0,qps=0;
var es=new EventSource(location.pathname+"?stream=1");
es.onopen=function(){document.getElementById("status").textContent="live";};
es.onerror=function(){document.getElementById("status").textContent="disconnected — retrying";};
es.onmessage=function(ev){
  var f=JSON.parse(ev.data);
  document.getElementById("rounds").textContent=f.rounds;
  renderHealth(f.health||{});
  renderQPS(f);
  renderSparks(f.series||{});
};
function fmt(v){
  if(v==null)return"–";
  if(Math.abs(v)>=1e9)return(v/1e9).toFixed(1)+"G";
  if(Math.abs(v)>=1e6)return(v/1e6).toFixed(1)+"M";
  if(Math.abs(v)>=1e4)return(v/1e3).toFixed(1)+"k";
  return Math.abs(v%1)>0?v.toFixed(3):String(v);
}
function renderHealth(h){
  if(h.epoch!==undefined)document.getElementById("epoch").textContent=h.epoch;
  if(h.epoch_age_seconds!==undefined)document.getElementById("epochage").textContent=h.epoch_age_seconds.toFixed(1)+"s";
  var ws=h.workers||[];
  var cols=["worker","shard","round","queue","bdd_nodes","gc_pause_p99_us","rss_bytes","heap_bytes","goroutines","straggler_score","age_ms"];
  var html="<table><tr>";
  cols.forEach(function(c){html+="<th>"+c.replace(/_/g," ")+"</th>";});
  html+="</tr>";
  ws.forEach(function(w){
    var s=w.straggler_score||0;
    var heat=Math.min(1,s);
    var bg="rgba(214,80,60,"+(heat*0.55).toFixed(2)+")";
    html+="<tr style='background:"+(s>0.05?bg:"transparent")+"'>";
    cols.forEach(function(c){html+="<td>"+fmt(w[c])+"</td>";});
    html+="</tr>";
  });
  html+="</table>";
  document.getElementById("fleet").innerHTML=ws.length?html:"<p class='muted'>no worker vitals yet</p>";
}
function renderQPS(f){
  var total=0,found=false;
  for(var k in f.series||{}){
    if(k.indexOf("s2_http_requests_total")===0||k.indexOf("s2_queries_total")===0){
      var pts=f.series[k];total+=pts[pts.length-1].v;found=true;
    }
  }
  if(!found)return;
  if(lastReq!==null&&f.now_ms>lastReqAt){
    qps=Math.max(0,(total-lastReq)/((f.now_ms-lastReqAt)/1000));
    document.getElementById("qps").textContent=qps.toFixed(1);
  }
  lastReq=total;lastReqAt=f.now_ms;
}
function renderSparks(series){
  var filter=document.getElementById("filter").value.trim();
  var names=Object.keys(series).filter(function(n){return !filter||n.indexOf(filter)>=0;}).sort();
  names=names.slice(0,48);
  var root=document.getElementById("sparks");
  root.innerHTML="";
  names.forEach(function(n){
    var pts=series[n];
    var div=document.createElement("div");div.className="spark";
    div.innerHTML="<div class='name' title='"+n+"'>"+n+"</div><div class='val'>"+fmt(pts[pts.length-1].v)+" · "+pts.length+" pts</div>";
    var cv=document.createElement("canvas");div.appendChild(cv);root.appendChild(div);
    cv.width=cv.clientWidth*2;cv.height=84;
    var ctx=cv.getContext("2d");
    var min=Infinity,max=-Infinity;
    pts.forEach(function(p){if(p.v<min)min=p.v;if(p.v>max)max=p.v;});
    if(min===max){min-=1;max+=1;}
    ctx.strokeStyle="#4da3ff";ctx.lineWidth=2;ctx.beginPath();
    pts.forEach(function(p,i){
      var x=i/(Math.max(1,pts.length-1))*cv.width;
      var y=cv.height-4-((p.v-min)/(max-min))*(cv.height-8);
      if(i===0)ctx.moveTo(x,y);else ctx.lineTo(x,y);
    });
    ctx.stroke();
  });
}
</script>
</body>
</html>
`
