package obs

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Process vitals gauge names, registered by RegisterProcessVitals wherever
// a registry is live (controller, workers, s2serve).
const (
	MetricGoroutines    = "s2_goroutines"
	MetricGCCPUFraction = "s2_gc_cpu_fraction"
	MetricOpenFDs       = "s2_open_fds"
)

// RegisterProcessVitals wires scrape-time gauges for the hosting process:
// goroutine count, the runtime's GC CPU fraction, and (best-effort, linux)
// the open file-descriptor count. Safe on a nil registry and idempotent —
// re-registering just refreshes the sampling funcs.
func RegisterProcessVitals(r *Registry) {
	if r == nil {
		return
	}
	r.Gauge(MetricGoroutines, "live goroutines in this process").
		SetFunc(func() float64 { return float64(runtime.NumGoroutine()) })
	r.Gauge(MetricGCCPUFraction, "fraction of CPU time spent in the Go GC since process start").
		SetFunc(func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return ms.GCCPUFraction
		})
	r.Gauge(MetricOpenFDs, "open file descriptors (best-effort via /proc; -1 when unavailable)").
		SetFunc(func() float64 { return float64(OpenFDs()) })
}

// OpenFDs counts the process' open file descriptors via /proc/self/fd,
// returning -1 where that isn't available (non-linux).
func OpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	// The ReadDir itself holds one fd open; don't count it.
	return len(ents) - 1
}

// ProcessRSSBytes reads the resident set size from /proc/self/statm
// (best-effort; 0 when unavailable).
func ProcessRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}

// HeapBytes samples the Go heap in use.
func HeapBytes() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapInuse)
}
