package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPrometheusLabelEscaping(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // exact escaped form between the quotes
	}{
		{"plain", "GatherBGP", "GatherBGP"},
		{"backslash", `C:\temp`, `C:\\temp`},
		{"quote", `say "hi"`, `say \"hi\"`},
		{"newline", "line1\nline2", `line1\nline2`},
		{"mixed", "a\\\"b\nc", `a\\\"b\nc`},
		{"tab passes raw", "a\tb", "a\tb"},
		{"unicode passes raw", "héllo", "héllo"},
		{"trailing backslash", `dir\`, `dir\\`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			writeEscapedLabelValue(&b, tc.in)
			if b.String() != tc.want {
				t.Errorf("escape(%q) = %q, want %q", tc.in, b.String(), tc.want)
			}
			// The escaped value must round-trip through the full exposition.
			reg := NewRegistry()
			reg.Counter("s2_escape_test_total", "h", "method").Inc(tc.in)
			var buf strings.Builder
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf(`s2_escape_test_total{method="%s"} 1`, tc.want)
			if !strings.Contains(buf.String(), want) {
				t.Errorf("exposition missing %q:\n%s", want, buf.String())
			}
			// A raw newline in a label value would split the series line.
			for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
				if line == "" || strings.HasPrefix(line, "#") {
					continue
				}
				if !strings.HasPrefix(line, "s2_escape_test_total") {
					t.Errorf("stray exposition line %q (unescaped newline?)", line)
				}
			}
		})
	}
}

// TestSpanAttrRace hammers SetAttr against End and Events under -race: attrs
// commit under the tracer lock, and the exporter snapshots them under the
// same lock, so none of these interleavings may trip the race detector.
func TestSpanAttrRace(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		s := tr.Start(fmt.Sprintf("span%d", i))
		wg.Add(3)
		go func(s *Span) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.SetAttr("k", "v")
			}
		}(s)
		go func(s *Span) {
			defer wg.Done()
			s.End()
		}(s)
		go func() {
			defer wg.Done()
			tr.Events()
			tr.WriteChromeTrace(io.Discard)
		}()
	}
	wg.Wait()
	// Same hammer in export mode, where End serializes attrs into the ring.
	tr.SetExportLimit(64)
	for i := 0; i < 8; i++ {
		s := tr.Start(fmt.Sprintf("export%d", i))
		wg.Add(3)
		go func(s *Span) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.SetAttr("k", "v")
			}
		}(s)
		go func(s *Span) {
			defer wg.Done()
			s.End()
		}(s)
		go func() {
			defer wg.Done()
			tr.DrainExport(16)
		}()
	}
	wg.Wait()
}

func TestIntrospectionContentTypes(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record("test", "hello %d", 1)
	srv, err := ServeIntrospection("127.0.0.1:0", ServerOptions{
		Registry: NewRegistry(),
		Progress: func() any { return map[string]int{"round": 3} },
		Flight:   fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	for path, wantCT := range map[string]string{
		"/metrics":              "text/plain; version=0.0.4; charset=utf-8",
		"/healthz":              "application/json; charset=utf-8",
		"/progress":             "application/json; charset=utf-8",
		"/debug/flightrecorder": "application/json; charset=utf-8",
	} {
		resp, body := get(path)
		if resp.StatusCode != 200 {
			t.Errorf("%s = %d", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != wantCT {
			t.Errorf("%s Content-Type = %q, want %q", path, got, wantCT)
		}
		if strings.HasPrefix(wantCT, "application/json") {
			var v any
			if err := json.Unmarshal(body, &v); err != nil {
				t.Errorf("%s body not valid JSON: %v\n%s", path, err, body)
			}
		}
	}

	_, body := get("/progress")
	var prog map[string]int
	if err := json.Unmarshal(body, &prog); err != nil || prog["round"] != 3 {
		t.Errorf("/progress = %q (%v)", body, err)
	}
	_, body = get("/debug/flightrecorder")
	var dump struct {
		Total  uint64        `json:"total"`
		Events []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(body, &dump); err != nil || len(dump.Events) != 1 || dump.Events[0].Kind != "test" {
		t.Errorf("/debug/flightrecorder = %q (%v)", body, err)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	var nilFR *FlightRecorder
	nilFR.Record("x", "never")
	if nilFR.Events() != nil || nilFR.Total() != 0 {
		t.Fatal("nil recorder must be inert")
	}

	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Record("phase", "event %d", i)
	}
	if fr.Total() != 10 {
		t.Errorf("total = %d, want 10", fr.Total())
	}
	ev := fr.Events()
	if len(ev) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(ev))
	}
	for i, e := range ev {
		want := fmt.Sprintf("event %d", 6+i) // oldest-first, last 4 of 10
		if e.Msg != want || e.Kind != "phase" {
			t.Errorf("event[%d] = %q/%q, want msg %q", i, e.Kind, e.Msg, want)
		}
		if e.UnixMicro == 0 {
			t.Errorf("event[%d] missing timestamp", i)
		}
	}
	if page := fr.Page(2); len(page) != 2 || page[1].Msg != "event 9" {
		t.Errorf("Page(2) = %v", page)
	}
	var sb strings.Builder
	fr.WriteTo(&sb)
	if !strings.Contains(sb.String(), "event 9") {
		t.Errorf("WriteTo missing newest event:\n%s", sb.String())
	}
	var page []FlightEvent
	if err := json.Unmarshal([]byte(fr.MarshalPage(0)), &page); err != nil || len(page) != 4 {
		t.Errorf("MarshalPage: %v (%d events)", err, len(page))
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				fr.Record("k", "g%d i%d", g, i)
			}
		}(g)
		go func() {
			defer wg.Done()
			fr.Events()
			fr.Page(4)
		}()
	}
	wg.Wait()
	if fr.Total() != 400 {
		t.Errorf("total = %d, want 400", fr.Total())
	}
}

func TestSkewEstimator(t *testing.T) {
	var nilEst *SkewEstimator
	nilEst.Observe(time.Now(), time.Now(), 1)
	if nilEst.Offset() != 0 || nilEst.Samples() != 0 {
		t.Fatal("nil estimator must be inert")
	}

	est := &SkewEstimator{}
	base := time.Unix(1000, 0)
	// Remote clock runs 2s behind: at local midpoint base+5ms the remote
	// reads base-2s+5ms.
	sent, recv := base, base.Add(10*time.Millisecond)
	remote := base.Add(-2 * time.Second).Add(5 * time.Millisecond).UnixMicro()
	est.Observe(sent, recv, remote)
	if got := est.Offset(); got != 2*time.Second {
		t.Errorf("offset = %v, want 2s", got)
	}
	// A noisier (bigger-RTT) sample with a wildly different implied offset
	// must not displace the min-RTT estimate.
	est.Observe(base, base.Add(500*time.Millisecond), base.UnixMicro())
	if got := est.Offset(); got != 2*time.Second {
		t.Errorf("offset after noisy sample = %v, want 2s", got)
	}
	// A quieter sample wins.
	sent2 := base.Add(time.Second)
	remote2 := sent2.Add(-3 * time.Second).Add(time.Millisecond).UnixMicro()
	est.Observe(sent2, sent2.Add(2*time.Millisecond), remote2)
	if got := est.Offset(); got != 3*time.Second {
		t.Errorf("offset after better sample = %v, want 3s", got)
	}
	if est.Samples() != 3 {
		t.Errorf("samples = %d, want 3", est.Samples())
	}
}

func TestExportRingAndIngest(t *testing.T) {
	remote := NewTracer()
	remote.SetExportLimit(4)
	remote.EnsureIDBase(1 << 40)

	// Six spans through a ring of four: the two oldest drop.
	for i := 0; i < 6; i++ {
		s := remote.Start(fmt.Sprintf("phase%d", i)).SetWorker(2)
		s.End()
	}
	spans, dropped, more := remote.DrainExport(3)
	if len(spans) != 3 || dropped != 2 || !more {
		t.Fatalf("drain = %d spans, %d dropped, more=%v; want 3, 2, true", len(spans), dropped, more)
	}
	rest, dropped, more := remote.DrainExport(10)
	if len(rest) != 1 || dropped != 0 || more {
		t.Fatalf("second drain = %d spans, %d dropped, more=%v; want 1, 0, false", len(rest), dropped, more)
	}
	for _, d := range append(spans, rest...) {
		if d.ID <= 1<<40 {
			t.Errorf("span id %d not in the claimed range", d.ID)
		}
		if d.PID != 3 {
			t.Errorf("span pid = %d, want worker lane 3", d.PID)
		}
	}

	// Ingest onto a local tracer with a known offset; the merged events
	// surface via Events like native spans.
	local := NewTracer()
	root := local.Start("rpc:EndShard")
	time.Sleep(time.Millisecond)
	root.End()
	local.Ingest(append(spans, rest...), 250*time.Millisecond)
	events := local.Events()
	if len(events) != 5 {
		t.Fatalf("merged trace has %d events, want 5", len(events))
	}
	names := map[string]bool{}
	for _, e := range events {
		names[e.Name] = true
	}
	for _, want := range []string{"rpc:EndShard", "phase2", "phase5"} {
		if !names[want] {
			t.Errorf("merged trace missing %q: %v", want, names)
		}
	}
}

// TestRemoteParenting verifies the cross-process span tree: a remote span
// started from a propagated TraceContext parents under the originating span
// and shares its lane after ingestion, and the clamp keeps the child inside
// the parent's interval no matter the offset error.
func TestRemoteParenting(t *testing.T) {
	ctrl := NewTracer()
	rpcSpan := ctrl.Start("rpc:GatherBGP")

	worker := NewTracer()
	worker.SetExportLimit(16)
	worker.EnsureIDBase(1 << 40)
	remote := worker.StartRemote("gather-bgp", rpcSpan.TC()).SetWorker(0)
	time.Sleep(2 * time.Millisecond)
	remote.End()
	time.Sleep(time.Millisecond)
	rpcSpan.End()

	spans, _, _ := worker.DrainExport(16)
	// A deliberately bad offset: the clamp must still contain the child.
	ctrl.Ingest(spans, 5*time.Second)

	events := ctrl.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	byName := map[string]TraceEvent{}
	for _, e := range events {
		byName[e.Name] = e
	}
	parent, child := byName["rpc:GatherBGP"], byName["gather-bgp"]
	if child.Args["parent"] != parent.Args["span"] {
		t.Errorf("child parent=%q, want %q", child.Args["parent"], parent.Args["span"])
	}
	if child.TID != parent.TID {
		t.Errorf("child tid=%d, parent tid=%d; remote span must join the caller's lane", child.TID, parent.TID)
	}
	if child.TS < parent.TS || child.TS+child.Dur > parent.TS+parent.Dur {
		t.Errorf("child [%d,%d] overshoots parent [%d,%d] despite clamp",
			child.TS, child.TS+child.Dur, parent.TS, parent.TS+parent.Dur)
	}
	if child.PID != 1 {
		t.Errorf("child pid = %d, want 1 (worker 0 lane)", child.PID)
	}
}
