package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1}, "phase")

	// 10 samples in (0.01, 0.1], 10 in (0.1, 1] under phase=total.
	for i := 0; i < 10; i++ {
		h.Observe(0.05, "total")
		h.Observe(0.5, "total")
	}
	// Pollution under another label value: must be excluded by the filter.
	for i := 0; i < 100; i++ {
		h.Observe(0.001, "mark")
	}

	// Filtered: median sits at the boundary of the two populated buckets.
	p50 := r.HistogramQuantile("lat_seconds", 0.5, "phase", "total")
	if math.Abs(p50-0.1) > 1e-9 {
		t.Fatalf("filtered p50 = %v, want 0.1 (upper bound of the first populated bucket)", p50)
	}
	// p99 interpolates inside the (0.1, 1] bucket.
	p99 := r.HistogramQuantile("lat_seconds", 0.99, "phase", "total")
	if p99 <= 0.1 || p99 > 1 {
		t.Fatalf("filtered p99 = %v, want in (0.1, 1]", p99)
	}
	// Unfiltered: the 100 tiny mark samples dominate, dragging p50 down.
	if un := r.HistogramQuantile("lat_seconds", 0.5); un >= p50 {
		t.Fatalf("unfiltered p50 %v should be below filtered %v", un, p50)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var nilReg *Registry
	if got := nilReg.HistogramQuantile("x", 0.5); got != 0 {
		t.Fatalf("nil registry: %v", got)
	}
	r := NewRegistry()
	if got := r.HistogramQuantile("missing", 0.5); got != 0 {
		t.Fatalf("unknown family: %v", got)
	}
	r.Counter("a_counter", "not a histogram")
	if got := r.HistogramQuantile("a_counter", 0.5); got != 0 {
		t.Fatalf("non-histogram: %v", got)
	}
	h := r.Histogram("h", "", []float64{1, 2})
	if got := r.HistogramQuantile("h", 0.5); got != 0 {
		t.Fatalf("empty histogram: %v", got)
	}
	// Samples beyond the last finite bucket land in +Inf and report the
	// highest finite bound rather than infinity.
	h.Observe(100)
	if got := r.HistogramQuantile("h", 0.99); got != 2 {
		t.Fatalf("+Inf samples: %v, want 2", got)
	}
	// Quantile clamping.
	h.Observe(0.5)
	if lo, hi := r.HistogramQuantile("h", -3), r.HistogramQuantile("h", 7); lo <= 0 || hi != 2 {
		t.Fatalf("clamping: q=-3 -> %v, q=7 -> %v", lo, hi)
	}
	// A filter naming an unknown label matches nothing.
	if got := r.HistogramQuantile("h", 0.5, "nope", "x"); got != 0 {
		t.Fatalf("unknown label filter: %v", got)
	}
}
