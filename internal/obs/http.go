package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// ServerOptions wires the introspection endpoints. Nil fields disable the
// corresponding endpoint body (the route still answers, with a minimal
// payload, so probes never 404 on a healthy process).
type ServerOptions struct {
	// Registry backs GET /metrics (Prometheus text exposition format).
	Registry *Registry
	// Health backs GET /healthz: any JSON-serializable snapshot (worker
	// liveness, heartbeat view). Nil reports {"status":"ok"} only.
	Health func() any
	// Progress backs GET /progress: a JSON run-status snapshot (current
	// stage, shard, iteration, routes settled).
	Progress func() any
	// Flight backs GET /debug/flightrecorder: the process's always-on
	// event ring, newest last. Nil serves an empty list.
	Flight *FlightRecorder
	// Dashboard backs GET /debug/dashboard (live HTML + SSE fleet view).
	Dashboard *Dashboard
	// Profiles backs GET /debug/profiles and /debug/profiles/<id>: the
	// bounded ring of harvested pprof protos.
	Profiles *ProfileStore
	// ProfilePull backs POST /debug/profile?worker=N&kind=cpu|heap — the
	// on-demand harvest trigger. Nil answers 501.
	ProfilePull ProfilePullFunc
}

// ProfilePullFunc harvests one profile from worker and stores it,
// returning the stored record.
type ProfilePullFunc func(worker int, kind string, seconds int) (*Profile, error)

// HTTPServer is a live introspection listener.
type HTTPServer struct {
	srv *http.Server
	lis net.Listener
}

// Addr returns the bound listen address (useful with ":0").
func (s *HTTPServer) Addr() string { return s.lis.Addr().String() }

// Close shuts the listener down immediately.
func (s *HTTPServer) Close() error { return s.srv.Close() }

// ServeIntrospection binds addr and serves /metrics, /healthz, /progress,
// and /debug/pprof/* in a background goroutine until Close. This is the
// body of the -obs-addr flag on cmd/s2 and cmd/s2worker.
func ServeIntrospection(addr string, opts ServerOptions) (*HTTPServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		opts.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		body := map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(start).Seconds(),
		}
		if opts.Health != nil {
			body["detail"] = opts.Health()
		}
		writeJSON(w, body)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		if opts.Progress == nil {
			writeJSON(w, map[string]any{})
			return
		}
		writeJSON(w, opts.Progress())
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, _ *http.Request) {
		events := opts.Flight.Events()
		if events == nil {
			events = []FlightEvent{}
		}
		writeJSON(w, map[string]any{
			"total":  opts.Flight.Total(),
			"events": events,
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	RegisterFleetHandlers(mux, opts.Dashboard, opts.Profiles, opts.ProfilePull)

	s := &HTTPServer{srv: &http.Server{Handler: mux}, lis: lis}
	go s.srv.Serve(lis)
	return s, nil
}

// RegisterFleetHandlers wires the fleet-health debug routes — the live
// dashboard, the on-demand profile harvest trigger, and the stored-profile
// ring — onto mux. Shared by the -obs-addr introspection server and
// s2serve's API mux so both debug surfaces behave identically. All
// arguments may be nil; disabled routes answer 404/501, never panic.
func RegisterFleetHandlers(mux *http.ServeMux, dash *Dashboard, store *ProfileStore, pull ProfilePullFunc) {
	mux.Handle("/debug/dashboard", dash)
	mux.HandleFunc("/debug/profile", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST /debug/profile?worker=N&kind=cpu|heap&seconds=S", http.StatusMethodNotAllowed)
			return
		}
		if pull == nil {
			http.Error(w, "profile harvest disabled", http.StatusNotImplemented)
			return
		}
		q := r.URL.Query()
		worker, err := strconv.Atoi(q.Get("worker"))
		if err != nil || worker < 0 {
			http.Error(w, "worker: non-negative integer required", http.StatusBadRequest)
			return
		}
		kind := q.Get("kind")
		if kind == "" {
			kind = "cpu"
		}
		seconds, _ := strconv.Atoi(q.Get("seconds"))
		p, err := pull(worker, kind, seconds)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		writeJSON(w, p)
	})
	mux.HandleFunc("/debug/profiles", func(w http.ResponseWriter, _ *http.Request) {
		list := store.Profiles()
		if list == nil {
			list = []*Profile{}
		}
		writeJSON(w, map[string]any{"profiles": list})
	})
	mux.HandleFunc("/debug/profiles/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/debug/profiles/")
		p := store.Get(id)
		if p == nil {
			http.Error(w, "no such profile", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%s-worker%d-%s.pb.gz", p.ID, p.Worker, p.Kind))
		_, _ = w.Write(p.Data)
	})
}

func writeJSON(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(body)
}
