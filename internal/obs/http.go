package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServerOptions wires the introspection endpoints. Nil fields disable the
// corresponding endpoint body (the route still answers, with a minimal
// payload, so probes never 404 on a healthy process).
type ServerOptions struct {
	// Registry backs GET /metrics (Prometheus text exposition format).
	Registry *Registry
	// Health backs GET /healthz: any JSON-serializable snapshot (worker
	// liveness, heartbeat view). Nil reports {"status":"ok"} only.
	Health func() any
	// Progress backs GET /progress: a JSON run-status snapshot (current
	// stage, shard, iteration, routes settled).
	Progress func() any
	// Flight backs GET /debug/flightrecorder: the process's always-on
	// event ring, newest last. Nil serves an empty list.
	Flight *FlightRecorder
}

// HTTPServer is a live introspection listener.
type HTTPServer struct {
	srv *http.Server
	lis net.Listener
}

// Addr returns the bound listen address (useful with ":0").
func (s *HTTPServer) Addr() string { return s.lis.Addr().String() }

// Close shuts the listener down immediately.
func (s *HTTPServer) Close() error { return s.srv.Close() }

// ServeIntrospection binds addr and serves /metrics, /healthz, /progress,
// and /debug/pprof/* in a background goroutine until Close. This is the
// body of the -obs-addr flag on cmd/s2 and cmd/s2worker.
func ServeIntrospection(addr string, opts ServerOptions) (*HTTPServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		opts.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		body := map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(start).Seconds(),
		}
		if opts.Health != nil {
			body["detail"] = opts.Health()
		}
		writeJSON(w, body)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		if opts.Progress == nil {
			writeJSON(w, map[string]any{})
			return
		}
		writeJSON(w, opts.Progress())
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, _ *http.Request) {
		events := opts.Flight.Events()
		if events == nil {
			events = []FlightEvent{}
		}
		writeJSON(w, map[string]any{
			"total":  opts.Flight.Total(),
			"events": events,
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &HTTPServer{srv: &http.Server{Handler: mux}, lis: lis}
	go s.srv.Serve(lis)
	return s, nil
}

func writeJSON(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(body)
}
