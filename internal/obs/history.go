package obs

import (
	"sort"
	"sync"
	"time"
)

// HistPoint is one sample of one series: a wall-clock stamp (milliseconds
// since the epoch, coarse enough for sparklines) and the sampled value.
type HistPoint struct {
	UnixMilli int64   `json:"t"`
	Value     float64 `json:"v"`
}

// History is a fixed-capacity time-series ring: the fleet health plane's
// memory. Each named series (typically a registry Snapshot key such as
// "s2_bdd_nodes{worker=\"2\"}") keeps its last capacity points; Record
// appends one sample round across many series at once. A nil *History is
// a valid no-op, so callers wire it unconditionally and the disabled path
// costs nothing (PR 7 contract).
type History struct {
	mu     sync.Mutex
	cap    int
	series map[string]*histRing
	rounds uint64
}

type histRing struct {
	pts   []HistPoint // ring storage, len == cap once full
	next  int         // insertion index
	count int         // points stored, ≤ cap
}

// NewHistory returns a ring keeping the last capacity points per series,
// or nil (disabled) when capacity ≤ 0.
func NewHistory(capacity int) *History {
	if capacity <= 0 {
		return nil
	}
	return &History{cap: capacity, series: make(map[string]*histRing)}
}

// Record appends one sample round: every entry in sample becomes a point
// stamped at. Series appear on first use.
func (h *History) Record(at time.Time, sample map[string]float64) {
	if h == nil || len(sample) == 0 {
		return
	}
	ms := at.UnixMilli()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rounds++
	for name, v := range sample {
		r := h.series[name]
		if r == nil {
			r = &histRing{pts: make([]HistPoint, h.cap)}
			h.series[name] = r
		}
		r.pts[r.next] = HistPoint{UnixMilli: ms, Value: v}
		r.next = (r.next + 1) % h.cap
		if r.count < h.cap {
			r.count++
		}
	}
}

// Series returns the series' points oldest-first (a copy), or nil when the
// series is unknown. max > 0 limits the result to the newest max points.
func (h *History) Series(name string, max int) []HistPoint {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.series[name]
	if r == nil || r.count == 0 {
		return nil
	}
	n := r.count
	if max > 0 && max < n {
		n = max
	}
	out := make([]HistPoint, n)
	// Newest point sits at next-1; walk back n points and emit oldest-first.
	start := r.next - n
	for i := 0; i < n; i++ {
		out[i] = r.pts[((start+i)%len(r.pts)+len(r.pts))%len(r.pts)]
	}
	return out
}

// Names returns every recorded series name, sorted.
func (h *History) Names() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.series))
	for name := range h.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Latest returns the series' newest point.
func (h *History) Latest(name string) (HistPoint, bool) {
	if h == nil {
		return HistPoint{}, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.series[name]
	if r == nil || r.count == 0 {
		return HistPoint{}, false
	}
	idx := ((r.next-1)%len(r.pts) + len(r.pts)) % len(r.pts)
	return r.pts[idx], true
}

// Rounds counts Record calls — the dashboard's "is sampling alive" signal.
func (h *History) Rounds() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rounds
}

// Dump returns the newest max points of every series (oldest-first per
// series) — the dashboard's sparkline payload.
func (h *History) Dump(max int) map[string][]HistPoint {
	if h == nil {
		return nil
	}
	names := h.Names()
	out := make(map[string][]HistPoint, len(names))
	for _, name := range names {
		if pts := h.Series(name, max); len(pts) > 0 {
			out[name] = pts
		}
	}
	return out
}

// Start samples fn into the history every interval until the returned stop
// function runs — the convenience loop for processes (s2worker) that have
// no controller-side sampler driving them. Nil-safe: a nil history starts
// nothing and returns a no-op stop.
func (h *History) Start(interval time.Duration, fn func() map[string]float64) (stop func()) {
	if h == nil || fn == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		h.Record(time.Now(), fn())
		for {
			select {
			case <-done:
				return
			case <-t.C:
				h.Record(time.Now(), fn())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
