// Package obs is S2's observability layer: a span-based tracer exportable
// as Chrome trace_event JSON, a registry of typed Prometheus-text-format
// metrics, and an HTTP introspection server (/metrics, /healthz, /progress,
// pprof). Everything is nil-safe in the style of metrics.FaultCounters — a
// nil *Tracer or *Registry turns every instrumentation site into a cheap
// no-op, so the hot paths pay nothing when observability is off.
//
// The paper's evaluation (§5) attributes cost per phase, per worker, and
// per RPC; this package defines the stable telemetry schema the benchmark
// harness regresses against. See README "Observability" for metric names.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key=value span attribute (worker id, shard index, phase…).
type Attr struct {
	Key, Value string
}

// String builds an Attr from any stringable value.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer-valued Attr.
func Int(key string, value int) Attr { return Attr{Key: key, Value: fmt.Sprint(value)} }

// Tracer records hierarchical spans. It is safe for concurrent use: the
// controller and every in-process worker append spans to one shared tracer
// so a whole distributed run lands in a single trace. A nil *Tracer is a
// no-op sink.
type Tracer struct {
	mu    sync.Mutex
	done  []*Span
	start time.Time
	next  atomic.Uint64
}

// NewTracer returns an empty tracer; its epoch is the creation time.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Span is one timed operation. Spans form trees: children created with
// Child nest under their parent in the exported trace. A nil *Span is a
// no-op (returned by a nil Tracer and safe to End or re-parent from).
type Span struct {
	tracer  *Tracer
	id      uint64
	parent  uint64 // 0 = root
	tid     uint64 // trace-viewer lane: the root span's id
	pid     int    // trace-viewer process: worker id + 1, 0 = controller
	name    string
	start   time.Time
	endTime time.Time // set under the tracer lock at End
	attrs   []Attr
	ended   atomic.Bool
}

// Start opens a root span. Use SetWorker to place the span on a worker's
// timeline in the exported trace.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		tracer: t,
		id:     t.next.Add(1),
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	s.tid = s.id
	return s
}

// Child opens a span nested under s. A nil receiver returns nil, so call
// sites can chain through disabled tracing without checks.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := s.tracer.Start(name, attrs...)
	c.parent = s.id
	c.tid = s.tid
	c.pid = s.pid
	return c
}

// SetWorker places the span (and its future children) on worker id's
// process track in the exported trace.
func (s *Span) SetWorker(id int) *Span {
	if s != nil {
		s.pid = id + 1
	}
	return s
}

// SetAttr appends an attribute after creation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span and commits it to the tracer. Idempotent; ending a
// nil span is a no-op.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	end := time.Now()
	s.tracer.mu.Lock()
	s.endTime = end
	s.tracer.done = append(s.tracer.done, s)
	s.tracer.mu.Unlock()
}

// TraceEvent is one Chrome trace_event entry ("X" complete event). The
// format is the catapult trace-viewer JSON array; load the exported file at
// chrome://tracing or https://ui.perfetto.dev.
type TraceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`  // µs since trace epoch
	Dur  int64             `json:"dur"` // µs
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the outer trace_event JSON object.
type traceFile struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
	Meta        string       `json:"otherData,omitempty"`
}

// Events returns the completed spans as Chrome trace events, ordered by
// start time. Span ids and parent ids ride in args ("span", "parent") so
// consumers can rebuild the tree exactly instead of inferring nesting from
// timestamps.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.done...)
	epoch := t.start
	t.mu.Unlock()
	events := make([]TraceEvent, 0, len(spans))
	for _, s := range spans {
		args := map[string]string{"span": fmt.Sprint(s.id)}
		if s.parent != 0 {
			args["parent"] = fmt.Sprint(s.parent)
		}
		for _, a := range s.attrs {
			args[a.Key] = a.Value
		}
		// Derive Dur from the two truncated epoch offsets rather than
		// truncating the duration independently: that keeps ts+dur
		// monotone with real end times, so a child that ended before its
		// parent in real time can never overshoot it by a rounding tick.
		ts := s.start.Sub(epoch).Microseconds()
		events = append(events, TraceEvent{
			Name: s.name,
			Ph:   "X",
			TS:   ts,
			Dur:  s.endTime.Sub(epoch).Microseconds() - ts,
			PID:  s.pid,
			TID:  s.tid,
			Args: args,
		})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		return events[i].Args["span"] < events[j].Args["span"]
	})
	return events
}

// WriteChromeTrace serializes every completed span as Chrome trace_event
// JSON. Writing a nil tracer emits an empty (still valid) trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: t.Events(), Meta: "s2 trace"})
}
