// Package obs is S2's observability layer: a span-based tracer exportable
// as Chrome trace_event JSON, a registry of typed Prometheus-text-format
// metrics, an always-on flight recorder, and an HTTP introspection server
// (/metrics, /healthz, /progress, /debug/flightrecorder, pprof). Everything
// is nil-safe in the style of metrics.FaultCounters — a nil *Tracer or
// *Registry turns every instrumentation site into a cheap no-op, so the hot
// paths pay nothing when observability is off.
//
// The paper's evaluation (§5) attributes cost per phase, per worker, and
// per RPC; this package defines the stable telemetry schema the benchmark
// harness regresses against. See README "Observability" for metric names.
//
// In distributed mode the tracer also crosses processes: spans carry a
// TraceContext over the sidecar wire so server-side spans parent under the
// remote caller, worker tracers buffer completed spans in a bounded export
// ring (SetExportLimit/DrainExport), and the controller merges them into
// its own timeline with Ingest after estimating per-worker clock offset
// (SkewEstimator).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key=value span attribute (worker id, shard index, phase…).
type Attr struct {
	Key, Value string
}

// String builds an Attr from any stringable value.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer-valued Attr.
func Int(key string, value int) Attr { return Attr{Key: key, Value: fmt.Sprint(value)} }

// Tracer records hierarchical spans. It is safe for concurrent use: the
// controller and every in-process worker append spans to one shared tracer
// so a whole distributed run lands in a single trace. A nil *Tracer is a
// no-op sink.
type Tracer struct {
	mu    sync.Mutex
	done  []*Span
	start time.Time
	next  atomic.Uint64

	// Export mode (remote workers): completed spans go into a bounded
	// drop-oldest ring of SpanData instead of accumulating in done, and the
	// controller drains them over RPC. Guarded by mu.
	exportLimit   int
	export        []SpanData
	exportHead    int
	exportLen     int
	exportDropped uint64
}

// NewTracer returns an empty tracer; its epoch is the creation time.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// EnsureIDBase raises the tracer's span-id counter to at least base, so
// span ids minted by different processes (each worker claims a disjoint
// high range) never collide when merged into one trace.
func (t *Tracer) EnsureIDBase(base uint64) {
	if t == nil {
		return
	}
	for {
		cur := t.next.Load()
		if cur >= base || t.next.CompareAndSwap(cur, base) {
			return
		}
	}
}

// SetExportLimit switches the tracer into export mode: completed spans are
// queued as SpanData in a ring of at most limit entries (oldest dropped on
// overflow, the drop count reported by DrainExport) instead of being held
// for local Events/WriteChromeTrace. limit <= 0 disables export mode.
func (t *Tracer) SetExportLimit(limit int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.exportLimit = limit
	if limit > 0 {
		t.export = make([]SpanData, limit)
		t.exportHead, t.exportLen = 0, 0
	} else {
		t.export = nil
	}
}

// Exporting reports whether the tracer is in export mode (a positive
// SetExportLimit is in effect).
func (t *Tracer) Exporting() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exportLimit > 0
}

// DrainExport pops up to max queued SpanData (oldest first). dropped is the
// number of spans lost to ring overflow since the previous drain; more
// reports whether the ring still holds spans after this drain.
func (t *Tracer) DrainExport(max int) (spans []SpanData, dropped uint64, more bool) {
	if t == nil || max <= 0 {
		return nil, 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.exportLen
	if n > max {
		n = max
	}
	if n > 0 {
		spans = make([]SpanData, 0, n)
		for i := 0; i < n; i++ {
			spans = append(spans, t.export[(t.exportHead+i)%t.exportLimit])
		}
		t.exportHead = (t.exportHead + n) % t.exportLimit
		t.exportLen -= n
	}
	dropped = t.exportDropped
	t.exportDropped = 0
	return spans, dropped, t.exportLen > 0
}

// Ingest merges remotely harvested spans into this tracer's timeline,
// shifting every timestamp by offset (the remote clock's estimated skew
// relative to this process, from a SkewEstimator). Span ids are taken as-is
// — remote tracers must have claimed a disjoint id range via EnsureIDBase.
func (t *Tracer) Ingest(spans []SpanData, offset time.Duration) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, d := range spans {
		s := &Span{
			tracer:  t,
			id:      d.ID,
			parent:  d.Parent,
			tid:     d.TID,
			pid:     d.PID,
			name:    d.Name,
			start:   time.UnixMicro(d.Start).Add(offset),
			endTime: time.UnixMicro(d.End).Add(offset),
			attrs:   d.Attrs,
		}
		if s.endTime.Before(s.start) {
			s.endTime = s.start
		}
		s.ended.Store(true)
		t.done = append(t.done, s)
	}
}

// Span is one timed operation. Spans form trees: children created with
// Child nest under their parent in the exported trace. A nil *Span is a
// no-op (returned by a nil Tracer and safe to End or re-parent from).
type Span struct {
	tracer  *Tracer
	id      uint64
	parent  uint64 // 0 = root
	tid     uint64 // trace-viewer lane: the root span's id
	pid     int    // trace-viewer process: worker id + 1, 0 = controller
	name    string
	start   time.Time
	endTime time.Time // set under the tracer lock at End
	attrs   []Attr    // guarded by tracer.mu after creation (SetAttr/export)
	ended   atomic.Bool
}

// Start opens a root span. Use SetWorker to place the span on a worker's
// timeline in the exported trace.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		tracer: t,
		id:     t.next.Add(1),
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	s.tid = s.id
	return s
}

// StartRemote opens a span parented under a TraceContext propagated from
// another process: the span records tc.SpanID as its parent and joins
// tc.TraceID's lane, so after harvesting it nests under the remote caller's
// span in the merged trace. A zero tc degrades to a plain root span.
func (t *Tracer) StartRemote(name string, tc TraceContext, attrs ...Attr) *Span {
	s := t.Start(name, attrs...)
	if s == nil || tc.SpanID == 0 {
		return s
	}
	s.parent = tc.SpanID
	if tc.TraceID != 0 {
		s.tid = tc.TraceID
	}
	return s
}

// Child opens a span nested under s. A nil receiver returns nil, so call
// sites can chain through disabled tracing without checks.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := s.tracer.Start(name, attrs...)
	c.parent = s.id
	c.tid = s.tid
	c.pid = s.pid
	return c
}

// SetWorker places the span (and its future children) on worker id's
// process track in the exported trace.
func (s *Span) SetWorker(id int) *Span {
	if s != nil {
		s.pid = id + 1
	}
	return s
}

// TC returns the span's TraceContext for propagation across a process
// boundary. A nil span yields the zero context (no parent).
func (s *Span) TC() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.tid, SpanID: s.id}
}

// SetAttr appends an attribute after creation. Attrs are committed under
// the tracer lock so a SetAttr racing End/Events (the exporter snapshots
// attrs under the same lock) is safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tracer.mu.Unlock()
}

// End closes the span and commits it to the tracer. Idempotent; ending a
// nil span is a no-op.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	end := time.Now()
	t := s.tracer
	t.mu.Lock()
	s.endTime = end
	if t.exportLimit > 0 {
		d := SpanData{
			ID: s.id, Parent: s.parent, TID: s.tid, PID: s.pid,
			Name:  s.name,
			Start: s.start.UnixMicro(),
			End:   s.endTime.UnixMicro(),
			Attrs: append([]Attr(nil), s.attrs...),
		}
		if t.exportLen == t.exportLimit {
			t.exportHead = (t.exportHead + 1) % t.exportLimit
			t.exportLen--
			t.exportDropped++
		}
		t.export[(t.exportHead+t.exportLen)%t.exportLimit] = d
		t.exportLen++
	} else {
		t.done = append(t.done, s)
	}
	t.mu.Unlock()
}

// TraceEvent is one Chrome trace_event entry ("X" complete event). The
// format is the catapult trace-viewer JSON array; load the exported file at
// chrome://tracing or https://ui.perfetto.dev.
type TraceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`  // µs since trace epoch
	Dur  int64             `json:"dur"` // µs
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the outer trace_event JSON object.
type traceFile struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
	Meta        string       `json:"otherData,omitempty"`
}

// exportedSpan is the locked snapshot Events works from.
type exportedSpan struct {
	id, parent, tid uint64
	pid             int
	name            string
	ts, dur         int64
	attrs           []Attr
}

// Events returns the completed spans as Chrome trace events, ordered by
// start time. Span ids and parent ids ride in args ("span", "parent") so
// consumers can rebuild the tree exactly instead of inferring nesting from
// timestamps. Ingested remote spans are clamped into their parent's
// interval: clock-offset estimation is only accurate to half the RPC round
// trip, so without the clamp a child's ts+dur could overshoot its parent by
// the residual skew.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := t.snapshotLocked()
	t.mu.Unlock()
	return eventsFromSpans(spans)
}

// DrainEvents returns the completed spans as Chrome trace events (same
// contract as Events) and removes them from the tracer. This is the
// serving-mode primitive: each request ends its root span and drains the
// tracer into a per-request RequestTrace, so a long-running daemon never
// accumulates a process-lifetime span list.
func (t *Tracer) DrainEvents() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := t.snapshotLocked()
	t.done = t.done[:0]
	t.mu.Unlock()
	return eventsFromSpans(spans)
}

// snapshotLocked copies the completed spans into exportedSpan values;
// caller holds t.mu.
func (t *Tracer) snapshotLocked() []exportedSpan {
	spans := make([]exportedSpan, 0, len(t.done))
	for _, s := range t.done {
		ts := s.start.Sub(t.start).Microseconds()
		// Derive Dur from the two truncated epoch offsets rather than
		// truncating the duration independently: that keeps ts+dur
		// monotone with real end times, so a child that ended before its
		// parent in real time can never overshoot it by a rounding tick.
		spans = append(spans, exportedSpan{
			id: s.id, parent: s.parent, tid: s.tid, pid: s.pid,
			name:  s.name,
			ts:    ts,
			dur:   s.endTime.Sub(t.start).Microseconds() - ts,
			attrs: append([]Attr(nil), s.attrs...),
		})
	}
	return spans
}

func eventsFromSpans(spans []exportedSpan) []TraceEvent {
	// Clamp children into their parents, transitively (a parent may itself
	// move when clamped into the grandparent). Memoized DFS over parent
	// links; spans whose parent is absent from this trace are left alone.
	byID := make(map[uint64]int, len(spans))
	for i := range spans {
		byID[spans[i].id] = i
	}
	clamped := make([]bool, len(spans))
	var clamp func(i int, depth int)
	clamp = func(i, depth int) {
		if clamped[i] || depth > len(spans) {
			return
		}
		clamped[i] = true
		p, ok := byID[spans[i].parent]
		if !ok || p == i {
			return
		}
		clamp(p, depth+1)
		ps, pe := spans[p].ts, spans[p].ts+spans[p].dur
		s, e := spans[i].ts, spans[i].ts+spans[i].dur
		if s < ps {
			s = ps
		}
		if s > pe {
			s = pe
		}
		if e > pe {
			e = pe
		}
		if e < s {
			e = s
		}
		spans[i].ts, spans[i].dur = s, e-s
	}
	for i := range spans {
		clamp(i, 0)
	}

	events := make([]TraceEvent, 0, len(spans))
	for i := range spans {
		s := &spans[i]
		args := map[string]string{"span": fmt.Sprint(s.id)}
		if s.parent != 0 {
			args["parent"] = fmt.Sprint(s.parent)
		}
		for _, a := range s.attrs {
			args[a.Key] = a.Value
		}
		events = append(events, TraceEvent{
			Name: s.name,
			Ph:   "X",
			TS:   s.ts,
			Dur:  s.dur,
			PID:  s.pid,
			TID:  s.tid,
			Args: args,
		})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		return events[i].Args["span"] < events[j].Args["span"]
	})
	return events
}

// WriteChromeTrace serializes every completed span as Chrome trace_event
// JSON. Writing a nil tracer emits an empty (still valid) trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteTraceEvents(w, t.Events())
}

// WriteTraceEvents serializes pre-extracted events (from Events or
// DrainEvents) as a complete Chrome trace file — the single-request export
// behind /debug/traces/<id>.
func WriteTraceEvents(w io.Writer, events []TraceEvent) error {
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: events, Meta: "s2 trace"})
}
