package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("root", Int("worker", 1))
	if s != nil {
		t.Fatalf("nil tracer must hand out nil spans")
	}
	c := s.Child("child")
	c.SetAttr("k", "v")
	c.SetWorker(3)
	c.End()
	s.End()
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer events = %v", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil tracer must still write valid trace JSON: %v", err)
	}

	var reg *Registry
	reg.Counter("c", "h").Inc()
	reg.Gauge("g", "h").Set(1)
	reg.Histogram("h", "h", nil).Observe(1)
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if snap := reg.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %v", snap)
	}
	if hook := RPCInstrument(nil, "client", nil); hook != nil {
		t.Fatalf("RPCInstrument with nothing to record must return nil")
	}
}

func TestTracerHierarchy(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("stage:cp").SetWorker(-1)
	child := root.Child("shard", Int("shard", 0))
	grand := child.Child("rpc:GatherBGP")
	time.Sleep(2 * time.Millisecond)
	grand.End()
	child.End()
	root.End()
	// End before export; unended spans are not exported.
	tr.Start("dangling")

	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	byID := map[string]TraceEvent{}
	for _, e := range events {
		byID[e.Args["span"]] = e
	}
	for _, e := range events {
		p, ok := e.Args["parent"]
		if !ok {
			continue
		}
		pe, ok := byID[p]
		if !ok {
			t.Fatalf("span %s has unknown parent %s", e.Args["span"], p)
		}
		if e.TS < pe.TS || e.TS+e.Dur > pe.TS+pe.Dur {
			t.Errorf("span %q [%d,%d] not nested in parent %q [%d,%d]",
				e.Name, e.TS, e.TS+e.Dur, pe.Name, pe.TS, pe.TS+pe.Dur)
		}
		if e.TID != pe.TID {
			t.Errorf("span %q tid %d != parent tid %d (children must share the root lane)", e.Name, e.TID, pe.TID)
		}
	}
	if byID["2"].Args["shard"] != "0" {
		t.Errorf("attr shard missing: %v", byID["2"].Args)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(f.TraceEvents) != 3 {
		t.Fatalf("round-trip lost events: %d", len(f.TraceEvents))
	}
	if f.TraceEvents[0].Ph != "X" {
		t.Errorf("want complete events, got ph=%q", f.TraceEvents[0].Ph)
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := root.Child(fmt.Sprintf("w%d", i))
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Events()); got != 33 {
		t.Fatalf("got %d events, want 33", got)
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("s2_routes_exchanged_total", "Routes pulled.", "worker")
	c.Add(5, "0")
	c.Inc("1")
	g := reg.Gauge("s2_model_memory_bytes", "Modelled memory.", "worker", "kind")
	g.Set(1024, "0", "current")
	g.SetFunc(func() float64 { return 4096 }, "0", "peak")
	h := reg.Histogram("s2_rpc_latency_seconds", "Latency.", []float64{0.001, 1}, "method")
	h.Observe(0.0005, "Ping")
	h.Observe(0.5, "Ping")
	h.Observe(2.0, "Ping")

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE s2_routes_exchanged_total counter",
		`s2_routes_exchanged_total{worker="0"} 5`,
		`s2_routes_exchanged_total{worker="1"} 1`,
		"# TYPE s2_model_memory_bytes gauge",
		`s2_model_memory_bytes{worker="0",kind="current"} 1024`,
		`s2_model_memory_bytes{worker="0",kind="peak"} 4096`,
		"# TYPE s2_rpc_latency_seconds histogram",
		`s2_rpc_latency_seconds_bucket{method="Ping",le="0.001"} 1`,
		`s2_rpc_latency_seconds_bucket{method="Ping",le="1"} 2`,
		`s2_rpc_latency_seconds_bucket{method="Ping",le="+Inf"} 3`,
		`s2_rpc_latency_seconds_count{method="Ping"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in exposition:\n%s", want, text)
		}
	}
	if err := checkPrometheusText(text); err != nil {
		t.Fatalf("unparseable exposition: %v\n%s", err, text)
	}

	snap := reg.Snapshot()
	if snap[`s2_routes_exchanged_total{worker="0"}`] != 5 {
		t.Errorf("snapshot: %v", snap)
	}
	if snap[`s2_rpc_latency_seconds_count{method="Ping"}`] != 3 {
		t.Errorf("snapshot histogram count: %v", snap)
	}
}

// checkPrometheusText is a minimal validator of the text exposition format:
// every non-comment line must be `name{labels} value` with a parseable
// float value, and every series must be preceded by a TYPE comment.
func checkPrometheusText(text string) error {
	typed := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			return fmt.Errorf("line %d: empty", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("line %d: bad TYPE", ln+1)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(name, suffix); fam != name && typed[fam] {
				base = fam
			}
		}
		if !typed[base] {
			return fmt.Errorf("line %d: series %q lacks TYPE", ln+1, name)
		}
		fields := strings.Fields(line)
		var val string
		if len(fields) < 2 {
			return fmt.Errorf("line %d: no value", ln+1)
		}
		val = fields[len(fields)-1]
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err != nil {
			return fmt.Errorf("line %d: bad value %q", ln+1, val)
		}
	}
	return nil
}

func TestRPCInstrument(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer()
	stage := tr.Start("stage:cp")
	hook := RPCInstrument(reg, "client", func() *Span { return stage })
	if hook == nil {
		t.Fatal("hook must be non-nil with a registry")
	}
	hook("GatherBGP")(nil)
	hook("ApplyBGP")(errors.New("boom"))
	stage.End()

	if got := reg.Counter(MetricRPCCalls, "", "role", "method", "code").Get("client", "GatherBGP", "ok"); got != 1 {
		t.Errorf("ok count = %v", got)
	}
	if got := reg.Counter(MetricRPCCalls, "", "role", "method", "code").Get("client", "ApplyBGP", "error"); got != 1 {
		t.Errorf("error count = %v", got)
	}
	if got := reg.Histogram(MetricRPCLatency, "", nil, "role", "method").Count("client", "GatherBGP"); got != 1 {
		t.Errorf("latency count = %v", got)
	}
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want stage + 2 rpc spans", len(events))
	}
	var sawErr bool
	for _, e := range events {
		if e.Name == "rpc:ApplyBGP" && e.Args["error"] == "boom" {
			sawErr = true
		}
	}
	if !sawErr {
		t.Errorf("rpc error span missing: %v", events)
	}
}

func TestServeIntrospection(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("s2_test_total", "test").Inc()
	srv, err := ServeIntrospection("127.0.0.1:0", ServerOptions{
		Registry: reg,
		Health:   func() any { return map[string]string{"worker": "alive"} },
		Progress: func() any { return map[string]int{"round": 7} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "s2_test_total 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body := get("/healthz")
	if code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	var health struct {
		Status string         `json:"status"`
		Detail map[string]any `json:"detail"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil || health.Status != "ok" || health.Detail["worker"] != "alive" {
		t.Errorf("/healthz body = %q (%v)", body, err)
	}
	code, body = get("/progress")
	var prog map[string]int
	if code != 200 || json.Unmarshal([]byte(body), &prog) != nil || prog["round"] != 7 {
		t.Errorf("/progress = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("pprof = %d", code)
	}
}
