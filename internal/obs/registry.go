package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry holds typed metric families and renders them in Prometheus text
// exposition format. A nil *Registry hands out nil metrics whose methods
// are all no-ops, so instrumentation sites never branch on "is obs on".
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with a fixed label-name set and one child per
// label-value combination.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
}

// child is one labeled series: either an accumulated value, a callback
// sampled at scrape time, or histogram state.
type child struct {
	labelValues []string
	value       float64
	fn          func() float64
	counts      []uint64 // per bucket (histograms)
	sum         float64
	count       uint64
}

func (f *family) child(labelValues []string) *child {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), labelValues...)}
		if f.kind == kindHistogram {
			c.counts = make([]uint64, len(f.buckets)+1)
		}
		f.children[key] = c
	}
	return c
}

// register creates or fetches a family, enforcing consistent redefinition.
func (r *Registry) register(name, help string, kind metricKind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s redefined with different type or labels", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.fams[name] = f
	return f
}

// Counter is a monotonically increasing metric family.
type Counter struct{ f *family }

// Counter registers (or fetches) a counter family with the given label
// names. On a nil registry it returns a nil no-op counter.
func (r *Registry) Counter(name, help string, labelNames ...string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{f: r.register(name, help, kindCounter, nil, labelNames)}
}

// Inc adds 1 to the series identified by labelValues.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Add adds delta (must be ≥ 0) to the series identified by labelValues.
func (c *Counter) Add(delta float64, labelValues ...string) {
	if c == nil || delta < 0 {
		return
	}
	ch := c.f.child(labelValues)
	c.f.mu.Lock()
	ch.value += delta
	c.f.mu.Unlock()
}

// SetFunc samples the series from fn at scrape time (for monotonic sources
// accounted elsewhere, e.g. transport byte counters).
func (c *Counter) SetFunc(fn func() float64, labelValues ...string) {
	if c == nil {
		return
	}
	ch := c.f.child(labelValues)
	c.f.mu.Lock()
	ch.fn = fn
	c.f.mu.Unlock()
}

// Get returns the series' current value (sampling fn-backed series).
func (c *Counter) Get(labelValues ...string) float64 {
	if c == nil {
		return 0
	}
	return c.f.read(c.f.child(labelValues))
}

// Gauge is a set-to-current-value metric family.
type Gauge struct{ f *family }

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{f: r.register(name, help, kindGauge, nil, labelNames)}
}

// Set assigns the series' value.
func (g *Gauge) Set(v float64, labelValues ...string) {
	if g == nil {
		return
	}
	ch := g.f.child(labelValues)
	g.f.mu.Lock()
	ch.value = v
	g.f.mu.Unlock()
}

// Add adjusts the series' value.
func (g *Gauge) Add(delta float64, labelValues ...string) {
	if g == nil {
		return
	}
	ch := g.f.child(labelValues)
	g.f.mu.Lock()
	ch.value += delta
	g.f.mu.Unlock()
}

// SetFunc samples the series from fn at scrape time — the bridge that
// exposes modelled memory from metrics.Tracker without copying.
func (g *Gauge) SetFunc(fn func() float64, labelValues ...string) {
	if g == nil {
		return
	}
	ch := g.f.child(labelValues)
	g.f.mu.Lock()
	ch.fn = fn
	g.f.mu.Unlock()
}

// Get returns the series' current value (sampling fn-backed series).
func (g *Gauge) Get(labelValues ...string) float64 {
	if g == nil {
		return 0
	}
	return g.f.read(g.f.child(labelValues))
}

// DefLatencyBuckets are the default histogram buckets for RPC latency in
// seconds: 100µs .. ~100s in ×4 steps.
var DefLatencyBuckets = []float64{0.0001, 0.0004, 0.0016, 0.0064, 0.0256, 0.1024, 0.4096, 1.6384, 6.5536, 26.2144}

// Histogram is a cumulative-bucket distribution family.
type Histogram struct{ f *family }

// Histogram registers (or fetches) a histogram family. nil buckets use
// DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	return &Histogram{f: r.register(name, help, kindHistogram, buckets, labelNames)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	if h == nil {
		return
	}
	ch := h.f.child(labelValues)
	h.f.mu.Lock()
	for i, ub := range h.f.buckets {
		if v <= ub {
			ch.counts[i]++
		}
	}
	ch.counts[len(h.f.buckets)]++ // +Inf
	ch.sum += v
	ch.count++
	h.f.mu.Unlock()
}

// Count returns the series' sample count.
func (h *Histogram) Count(labelValues ...string) uint64 {
	if h == nil {
		return 0
	}
	ch := h.f.child(labelValues)
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return ch.count
}

// HistogramQuantile estimates the q-quantile (0 ≤ q ≤ 1) of a histogram
// family, aggregating bucket counts across every labeled series — the
// scrape-free way to pull a fleet-wide p50/p99 out of a per-worker
// histogram (benchmark rows, status pages). Optional trailing arguments
// are label name/value pairs restricting the aggregation (e.g. "phase",
// "total" sums only series whose phase label is "total"). Linear
// interpolation within the winning bucket, the standard Prometheus
// histogram_quantile estimate; samples in the +Inf bucket report the
// highest finite bound. Returns 0 for an unknown name, a non-histogram,
// or an empty selection. Nil-safe.
func (r *Registry) HistogramQuantile(name string, q float64, labelPairs ...string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	f, ok := r.fams[name]
	r.mu.Unlock()
	if !ok || f.kind != kindHistogram {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	match := func(c *child) bool {
		for i := 0; i+1 < len(labelPairs); i += 2 {
			found := false
			for j, ln := range f.labels {
				if ln == labelPairs[i] {
					found = c.labelValues[j] == labelPairs[i+1]
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	// Observe keeps per-child bucket counts cumulative, so the aggregate
	// is cumulative too.
	cum := make([]uint64, len(f.buckets)+1)
	var total uint64
	f.mu.Lock()
	for _, c := range f.children {
		if c.counts == nil || !match(c) {
			continue
		}
		for i, n := range c.counts {
			cum[i] += n
		}
		total += c.count
	}
	f.mu.Unlock()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var prevCum uint64
	lower := 0.0
	for i, ub := range f.buckets {
		if float64(cum[i]) >= rank {
			span := float64(cum[i] - prevCum)
			if span == 0 {
				return ub
			}
			return lower + (ub-lower)*(rank-float64(prevCum))/span
		}
		prevCum = cum[i]
		lower = ub
	}
	// Landed in +Inf: the best finite answer is the largest bound.
	if len(f.buckets) > 0 {
		return f.buckets[len(f.buckets)-1]
	}
	return 0
}

// read samples one child under the family lock.
func (f *family) read(c *child) float64 {
	f.mu.Lock()
	fn := c.fn
	v := c.value
	f.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return v
}

// labelString renders {a="x",b="y"} (with extras appended) or "".
func labelString(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		writeEscapedLabelValue(&b, values[i])
		b.WriteByte('"')
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		b.WriteString(extra[i])
		b.WriteString(`="`)
		writeEscapedLabelValue(&b, extra[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// writeEscapedLabelValue escapes a label value per the Prometheus text
// exposition format: exactly backslash, double quote, and newline are
// escaped (as \\, \", \n) and everything else — tabs, unicode — passes
// through raw. Go's %q is not a substitute: it emits escapes the
// exposition format does not define (\t for tabs, \xNN and \uNNNN for
// non-printables), which scrapers reproduce literally as corrupted label
// values.
func writeEscapedLabelValue(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in Prometheus text exposition
// format, families and series sorted for deterministic scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var lines []string
		for _, k := range keys {
			c := f.children[k]
			switch f.kind {
			case kindHistogram:
				// Observe already makes bucket counts cumulative.
				for i, ub := range f.buckets {
					lines = append(lines, fmt.Sprintf("%s_bucket%s %d", f.name,
						labelString(f.labels, c.labelValues, "le", formatValue(ub)), c.counts[i]))
				}
				lines = append(lines, fmt.Sprintf("%s_bucket%s %d", f.name,
					labelString(f.labels, c.labelValues, "le", "+Inf"), c.counts[len(f.buckets)]))
				lines = append(lines, fmt.Sprintf("%s_sum%s %s", f.name,
					labelString(f.labels, c.labelValues), formatValue(c.sum)))
				lines = append(lines, fmt.Sprintf("%s_count%s %d", f.name,
					labelString(f.labels, c.labelValues), c.count))
			default:
				v := c.value
				if c.fn != nil {
					v = c.fn()
				}
				lines = append(lines, fmt.Sprintf("%s%s %s", f.name,
					labelString(f.labels, c.labelValues), formatValue(v)))
			}
		}
		f.mu.Unlock()
		for _, l := range lines {
			if _, err := fmt.Fprintln(w, l); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot returns every counter and gauge series as name{labels} → value
// (histograms contribute _count and _sum entries). The benchmark harness
// embeds this in its JSON output.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	out := map[string]float64{}
	for _, f := range fams {
		f.mu.Lock()
		for _, c := range f.children {
			ls := labelString(f.labels, c.labelValues)
			switch f.kind {
			case kindHistogram:
				out[f.name+"_count"+ls] = float64(c.count)
				out[f.name+"_sum"+ls] = c.sum
			default:
				v := c.value
				if c.fn != nil {
					v = c.fn()
				}
				out[f.name+ls] = v
			}
		}
		f.mu.Unlock()
	}
	return out
}
