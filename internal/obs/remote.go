package obs

import (
	"sync"
	"time"
)

// TraceContext identifies a span for cross-process propagation: requests
// carry the caller's context so the server-side span parents under the RPC
// that triggered it instead of starting an orphan root. The zero value
// means "no parent" and is what legacy peers that never stamp a context
// effectively send.
type TraceContext struct {
	TraceID uint64 // lane (root span id) of the originating trace
	SpanID  uint64 // immediate parent span id
}

// Valid reports whether the context names a parent span.
func (tc TraceContext) Valid() bool { return tc.SpanID != 0 }

// SpanData is one completed span in wire form: absolute unix-microsecond
// timestamps instead of a process-local epoch, so the harvesting side can
// rebase it onto its own timeline after skew correction.
type SpanData struct {
	ID     uint64
	Parent uint64
	TID    uint64
	PID    int
	Name   string
	Start  int64 // µs since the unix epoch, remote clock
	End    int64
	Attrs  []Attr
}

// SkewEstimator estimates a remote clock's offset from the local clock
// using RPC send/receive timestamps, Dapper/NTP style: for each exchange
// the remote timestamp is assumed to have been taken at the midpoint of
// the local round trip, and the sample with the smallest round trip —
// the one with the least queueing noise — wins. The estimator is cheap
// enough to feed from every harvest RPC.
type SkewEstimator struct {
	mu      sync.Mutex
	bestRTT time.Duration
	offset  time.Duration
	samples int
}

// Observe feeds one RPC exchange: sent and received are local clock
// readings bracketing the call, remoteUnixMicro is the remote clock read
// while serving it.
func (e *SkewEstimator) Observe(sent, received time.Time, remoteUnixMicro int64) {
	if e == nil || remoteUnixMicro == 0 {
		return
	}
	rtt := received.Sub(sent)
	if rtt < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.samples > 0 && rtt >= e.bestRTT {
		e.samples++
		return
	}
	mid := sent.UnixMicro() + rtt.Microseconds()/2
	e.bestRTT = rtt
	e.offset = time.Duration(mid-remoteUnixMicro) * time.Microsecond
	e.samples++
}

// Offset returns the duration to add to remote timestamps to place them on
// the local timeline (zero until the first sample).
func (e *SkewEstimator) Offset() time.Duration {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.offset
}

// Samples returns how many exchanges have been observed.
func (e *SkewEstimator) Samples() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.samples
}
