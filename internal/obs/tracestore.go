package obs

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// RequestTrace is one request's completed span tree plus the summary the
// trace browser lists: who it was, how long it took, and how it ended.
type RequestTrace struct {
	ID       string
	Name     string
	Start    time.Time
	Duration time.Duration
	Status   int
	Err      bool
	Spans    int
	Events   []TraceEvent
}

// TraceStore keeps recent request traces in memory with tail-based
// retention: when over capacity it evicts the oldest trace that is neither
// an error nor among the keepSlowest slowest, so the interesting tail
// (failures, latency outliers) survives a churn of fast healthy requests.
// Errors become evictable only once every resident trace is protected.
//
// All methods are safe for concurrent use, and a nil *TraceStore is a
// valid disabled store: every method no-ops or returns zero values.
type TraceStore struct {
	mu      sync.Mutex
	cap     int
	slowN   int
	list    []*RequestTrace // insertion order: oldest first
	added   uint64
	evicted uint64
	seq     atomic.Uint64
}

// NewTraceStore returns a store holding at most capacity traces, always
// retaining the keepSlowest slowest seen among residents. capacity <= 0
// returns nil (tracing disabled).
func NewTraceStore(capacity, keepSlowest int) *TraceStore {
	if capacity <= 0 {
		return nil
	}
	if keepSlowest < 0 {
		keepSlowest = 0
	}
	return &TraceStore{cap: capacity, slowN: keepSlowest}
}

// NextID returns a fresh request id ("r000001", ...). Unique per store
// lifetime; ids are only meaningful within this process.
func (s *TraceStore) NextID() string {
	if s == nil {
		return ""
	}
	n := s.seq.Add(1)
	id := strconv.FormatUint(n, 10)
	for len(id) < 6 {
		id = "0" + id
	}
	return "r" + id
}

// Add inserts a completed trace, evicting per the retention policy.
func (s *TraceStore) Add(tr *RequestTrace) {
	if s == nil || tr == nil {
		return
	}
	tr.Spans = countSpans(tr.Events)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.list = append(s.list, tr)
	s.added++
	for len(s.list) > s.cap {
		s.evictLocked()
	}
}

// evictLocked removes one trace: the oldest unprotected one, falling back
// to the oldest non-slow, then the oldest outright.
func (s *TraceStore) evictLocked() {
	cut := s.slowCutLocked()
	victim := -1
	for i, tr := range s.list {
		if !tr.Err && tr.Duration < cut {
			victim = i
			break
		}
	}
	if victim < 0 {
		for i, tr := range s.list {
			if tr.Duration < cut {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		victim = 0
	}
	copy(s.list[victim:], s.list[victim+1:])
	s.list[len(s.list)-1] = nil
	s.list = s.list[:len(s.list)-1]
	s.evicted++
}

// slowCutLocked returns the duration at and above which a resident trace
// counts as one of the slowest-N. With slowN == 0 nothing qualifies.
func (s *TraceStore) slowCutLocked() time.Duration {
	if s.slowN <= 0 {
		return 1<<63 - 1
	}
	durs := make([]time.Duration, len(s.list))
	for i, tr := range s.list {
		durs[i] = tr.Duration
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] > durs[j] })
	if len(durs) <= s.slowN {
		if len(durs) == 0 {
			return 1<<63 - 1
		}
		return durs[len(durs)-1]
	}
	return durs[s.slowN-1]
}

// Get returns the trace with the given id, or nil.
func (s *TraceStore) Get(id string) *RequestTrace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tr := range s.list {
		if tr.ID == id {
			return tr
		}
	}
	return nil
}

// Traces returns a snapshot of resident traces, newest first.
func (s *TraceStore) Traces() []*RequestTrace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*RequestTrace, len(s.list))
	for i, tr := range s.list {
		out[len(s.list)-1-i] = tr
	}
	return out
}

// Len returns the number of resident traces.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.list)
}

// Stats returns the lifetime added and evicted counts.
func (s *TraceStore) Stats() (added, evicted uint64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.added, s.evicted
}

func countSpans(events []TraceEvent) int {
	n := 0
	for _, e := range events {
		if e.Ph == "X" {
			n++
		}
	}
	return n
}
