package obs

import (
	"fmt"
	"sync"
	"time"
)

// Profile is one harvested pprof proto (already gzip-framed by
// runtime/pprof on the worker), tagged with where and when it was taken.
type Profile struct {
	ID     string    `json:"id"`
	Worker int       `json:"worker"`
	Kind   string    `json:"kind"` // "cpu" or "heap"
	Taken  time.Time `json:"taken"`
	Bytes  int       `json:"bytes"`
	Data   []byte    `json:"-"`
}

// ProfileStore is the bounded ring of harvested profiles, with the same
// retention contract as the TraceStore: capacity ≤ 0 disables the store
// (NewProfileStore returns nil) and every method no-ops on a nil receiver.
// Eviction is FIFO — continuous harvest keeps the newest window.
type ProfileStore struct {
	mu      sync.Mutex
	cap     int
	seq     uint64
	list    []*Profile // insertion order, oldest first
	added   uint64
	evicted uint64
}

// NewProfileStore returns a store keeping the last capacity profiles, or
// nil (disabled) when capacity ≤ 0.
func NewProfileStore(capacity int) *ProfileStore {
	if capacity <= 0 {
		return nil
	}
	return &ProfileStore{cap: capacity}
}

// Add stores p, assigns it an ID ("p000001"-style), and returns the ID.
// The oldest profile is evicted once the store is full.
func (s *ProfileStore) Add(p *Profile) string {
	if s == nil || p == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	p.ID = fmt.Sprintf("p%06d", s.seq)
	p.Bytes = len(p.Data)
	s.list = append(s.list, p)
	s.added++
	if len(s.list) > s.cap {
		n := copy(s.list, s.list[1:])
		s.list[n] = nil
		s.list = s.list[:n]
		s.evicted++
	}
	return p.ID
}

// Get returns the profile with the given ID, or nil.
func (s *ProfileStore) Get(id string) *Profile {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.list {
		if p.ID == id {
			return p
		}
	}
	return nil
}

// Profiles lists stored profiles newest-first (the slice is a copy; the
// Profile values are shared).
func (s *ProfileStore) Profiles() []*Profile {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Profile, len(s.list))
	for i, p := range s.list {
		out[len(s.list)-1-i] = p
	}
	return out
}

// Len reports how many profiles are held.
func (s *ProfileStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.list)
}

// Stats reports lifetime added and evicted counts.
func (s *ProfileStore) Stats() (added, evicted uint64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.added, s.evicted
}
