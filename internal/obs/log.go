package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// LogLevel orders log severities. The zero value is LevelDebug.
type LogLevel int32

const (
	LevelDebug LogLevel = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff disables every record; ParseLogLevel accepts "off".
	LevelOff
)

// String returns the lowercase level name.
func (l LogLevel) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "off"
	}
}

// padded is the fixed-width uppercase form used by the text format.
func (l LogLevel) padded() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO "
	case LevelWarn:
		return "WARN "
	default:
		return "ERROR"
	}
}

// ParseLogLevel parses the -log-level flag vocabulary: debug, info, warn,
// error, off.
func ParseLogLevel(s string) (LogLevel, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error|off)", s)
}

// Field is one typed key/value pair on a log record. Values are stored in
// concrete slots — never boxed in an interface — so building fields for a
// call that the level gate then drops allocates nothing.
type Field struct {
	Key  string
	str  string
	num  int64
	kind uint8
}

const (
	fieldString uint8 = iota
	fieldInt
	fieldBool
	fieldDuration
)

// FStr builds a string field.
func FStr(key, value string) Field { return Field{Key: key, str: value, kind: fieldString} }

// FInt builds an integer field.
func FInt(key string, value int) Field { return Field{Key: key, num: int64(value), kind: fieldInt} }

// FInt64 builds an int64 field.
func FInt64(key string, value int64) Field { return Field{Key: key, num: value, kind: fieldInt} }

// FUint64 builds a field from an unsigned counter (epochs, sequence
// numbers); values beyond int64 range are not expected.
func FUint64(key string, value uint64) Field {
	return Field{Key: key, num: int64(value), kind: fieldInt}
}

// FBool builds a boolean field.
func FBool(key string, value bool) Field {
	var n int64
	if value {
		n = 1
	}
	return Field{Key: key, num: n, kind: fieldBool}
}

// FDur builds a duration field, rendered in Go duration syntax ("153ms").
func FDur(key string, d time.Duration) Field {
	return Field{Key: key, num: int64(d), kind: fieldDuration}
}

// FErr builds the conventional "error" field ("" for a nil error).
func FErr(err error) Field {
	if err == nil {
		return Field{Key: "error", kind: fieldString}
	}
	return Field{Key: "error", str: err.Error(), kind: fieldString}
}

// Logger is a leveled structured logger with no dependencies, emitting one
// line per record in either JSON or logfmt-style text. It follows the
// package's nil-safety convention: a nil *Logger drops every record after
// a nil check, and a record below the level gate costs one atomic load —
// in both cases zero allocations, so logging can thread through hot paths
// unconditionally.
//
// With returns a derived logger with fields bound to every record (request
// id, worker id, epoch); derived loggers share the parent's sink and level
// gate, so SetLevel on any of them applies to all.
type Logger struct {
	sink   *logSink
	fields []Field
}

// logSink is the shared output state behind a family of With-derived
// loggers: one writer, one level gate, one serialization lock, one reused
// format buffer.
type logSink struct {
	min  atomic.Int32
	mu   sync.Mutex
	w    io.Writer
	json bool
	buf  []byte
}

// NewLogger returns a logger writing one record per line to w. jsonOut
// selects JSON objects over logfmt-style text.
func NewLogger(w io.Writer, min LogLevel, jsonOut bool) *Logger {
	s := &logSink{w: w, json: jsonOut}
	s.min.Store(int32(min))
	return &Logger{sink: s}
}

// With returns a logger that stamps fields on every record. A nil receiver
// stays nil, so binding context through disabled logging is free.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil {
		return nil
	}
	bound := make([]Field, 0, len(l.fields)+len(fields))
	bound = append(bound, l.fields...)
	bound = append(bound, fields...)
	return &Logger{sink: l.sink, fields: bound}
}

// SetLevel moves the level gate for this logger and everything sharing its
// sink. Safe to call concurrently with logging.
func (l *Logger) SetLevel(min LogLevel) {
	if l != nil {
		l.sink.min.Store(int32(min))
	}
}

// Enabled reports whether a record at level would be emitted.
func (l *Logger) Enabled(level LogLevel) bool {
	return l != nil && int32(level) >= l.sink.min.Load()
}

// Debug emits a debug record.
func (l *Logger) Debug(msg string, fields ...Field) { l.emit(LevelDebug, msg, fields) }

// Info emits an info record.
func (l *Logger) Info(msg string, fields ...Field) { l.emit(LevelInfo, msg, fields) }

// Warn emits a warning record.
func (l *Logger) Warn(msg string, fields ...Field) { l.emit(LevelWarn, msg, fields) }

// Error emits an error record.
func (l *Logger) Error(msg string, fields ...Field) { l.emit(LevelError, msg, fields) }

func (l *Logger) emit(level LogLevel, msg string, fields []Field) {
	if l == nil || int32(level) < l.sink.min.Load() {
		return
	}
	s := l.sink
	now := time.Now().UTC()
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := s.buf[:0]
	if s.json {
		buf = append(buf, `{"ts":"`...)
		buf = now.AppendFormat(buf, "2006-01-02T15:04:05.000000Z")
		buf = append(buf, `","level":"`...)
		buf = append(buf, level.String()...)
		buf = append(buf, `","msg":`...)
		buf = appendJSONString(buf, msg)
		for _, f := range l.fields {
			buf = appendJSONField(buf, f)
		}
		for _, f := range fields {
			buf = appendJSONField(buf, f)
		}
		buf = append(buf, '}', '\n')
	} else {
		buf = now.AppendFormat(buf, "2006-01-02T15:04:05.000")
		buf = append(buf, ' ')
		buf = append(buf, level.padded()...)
		buf = append(buf, ' ')
		buf = append(buf, msg...)
		for _, f := range l.fields {
			buf = appendTextField(buf, f)
		}
		for _, f := range fields {
			buf = appendTextField(buf, f)
		}
		buf = append(buf, '\n')
	}
	s.w.Write(buf)
	s.buf = buf[:0]
}

func appendJSONField(buf []byte, f Field) []byte {
	buf = append(buf, ',')
	buf = appendJSONString(buf, f.Key)
	buf = append(buf, ':')
	switch f.kind {
	case fieldInt:
		buf = strconv.AppendInt(buf, f.num, 10)
	case fieldBool:
		buf = strconv.AppendBool(buf, f.num != 0)
	case fieldDuration:
		buf = append(buf, '"')
		buf = append(buf, time.Duration(f.num).String()...)
		buf = append(buf, '"')
	default:
		buf = appendJSONString(buf, f.str)
	}
	return buf
}

func appendTextField(buf []byte, f Field) []byte {
	buf = append(buf, ' ')
	buf = append(buf, f.Key...)
	buf = append(buf, '=')
	switch f.kind {
	case fieldInt:
		buf = strconv.AppendInt(buf, f.num, 10)
	case fieldBool:
		buf = strconv.AppendBool(buf, f.num != 0)
	case fieldDuration:
		buf = append(buf, time.Duration(f.num).String()...)
	default:
		if needsQuoting(f.str) {
			buf = appendJSONString(buf, f.str)
		} else {
			buf = append(buf, f.str...)
		}
	}
	return buf
}

func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] == '"' || s[i] == '=' {
			return true
		}
	}
	return false
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes, and control characters (the full set JSON requires).
func appendJSONString(buf []byte, s string) []byte {
	const hex = "0123456789abcdef"
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			buf = append(buf, '\\', '"')
		case c == '\\':
			buf = append(buf, '\\', '\\')
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			// Multi-byte UTF-8 passes through raw; JSON allows it.
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}
