package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLoggerJSONRecords(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug, true)
	l.Info("hello \"world\"\n",
		FStr("device", "edge-0-0"),
		FInt("shard", 3),
		FInt64("bytes", -7),
		FUint64("epoch", 12),
		FBool("ok", true),
		FDur("took", 1500*time.Millisecond),
		FErr(errors.New("boom")),
		FErr(nil))

	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one line, got %q", line)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v\n%s", err, line)
	}
	if rec["level"] != "info" || rec["msg"] != "hello \"world\"\n" {
		t.Fatalf("level/msg: %v", rec)
	}
	if rec["device"] != "edge-0-0" || rec["shard"].(float64) != 3 ||
		rec["bytes"].(float64) != -7 || rec["epoch"].(float64) != 12 {
		t.Fatalf("fields: %v", rec)
	}
	if rec["ok"] != true || rec["took"] != "1.5s" {
		t.Fatalf("bool/duration fields: %v", rec)
	}
	// Duplicate keys: encoding/json keeps the last one, which is FErr(nil).
	if rec["error"] != "" {
		t.Fatalf("error field: %v", rec)
	}
	if _, err := time.Parse("2006-01-02T15:04:05.000000Z", rec["ts"].(string)); err != nil {
		t.Fatalf("timestamp: %v", err)
	}
}

func TestLoggerTextRecords(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug, false)
	l.Warn("watch out", FStr("plain", "abc"), FStr("quoted", "a b"), FInt("n", 5))
	line := strings.TrimSuffix(buf.String(), "\n")
	for _, want := range []string{"WARN", "watch out", " plain=abc", ` quoted="a b"`, " n=5"} {
		if !strings.Contains(line, want) {
			t.Fatalf("text record missing %q: %q", want, line)
		}
	}
}

func TestLoggerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn, true)
	l.Debug("dropped")
	l.Info("dropped")
	if buf.Len() != 0 {
		t.Fatalf("below-gate records emitted: %q", buf.String())
	}
	l.Warn("kept")
	l.Error("kept")
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("want 2 records, got %d: %q", got, buf.String())
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Fatal("Enabled disagrees with the gate")
	}

	// SetLevel applies to With-derived loggers too (shared sink).
	child := l.With(FStr("req", "r1"))
	child.SetLevel(LevelOff)
	l.Error("dropped")
	child.Error("dropped")
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("LevelOff still emitted: %q", buf.String())
	}
}

func TestLoggerWithBindsFields(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug, true).With(FInt("worker", 2)).With(FStr("req", "r9"))
	l.Info("bound")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["worker"].(float64) != 2 || rec["req"] != "r9" {
		t.Fatalf("bound fields missing: %v", rec)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Debug("no-op")
	l.Error("no-op", FStr("k", "v"))
	if derived := l.With(FInt("a", 1)); derived != nil {
		t.Fatal("With on nil logger must stay nil")
	}
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Fatal("nil logger must report disabled")
	}
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]LogLevel{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "off": LevelOff, "none": LevelOff,
	} {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLogLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Fatal("ParseLogLevel must reject unknown levels")
	}
}

// TestLoggerDisabledZeroAllocs is the benchmark guard the serving layer
// relies on: with logging off — nil logger or below the gate — a log call
// in a hot path must not allocate.
func TestLoggerDisabledZeroAllocs(t *testing.T) {
	var nilLogger *Logger
	gated := NewLogger(&bytes.Buffer{}, LevelError, true)
	err := errors.New("x")
	if n := testing.AllocsPerRun(200, func() {
		nilLogger.Info("dropped", FStr("a", "b"), FInt("n", 1), FDur("d", time.Second))
	}); n != 0 {
		t.Fatalf("nil logger allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		gated.Debug("dropped", FStr("a", "b"), FBool("ok", true), FErr(err))
	}); n != 0 {
		t.Fatalf("gated logger allocates %v per call", n)
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug, true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			child := l.With(FInt("goroutine", g))
			for i := 0; i < 50; i++ {
				child.Info("tick", FInt("i", i))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("want 400 records, got %d", len(lines))
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("interleaved write corrupted a record: %v\n%q", err, line)
		}
	}
}
