package bgp

import (
	"math/rand"
	"testing"

	"s2/internal/config"
	"s2/internal/route"
)

func randRoute(rng *rand.Rand, pfx route.Prefix) *route.Route {
	pathLen := rng.Intn(4) + 1
	path := make([]uint32, pathLen)
	for i := range path {
		path[i] = uint32(65000 + rng.Intn(20))
	}
	return &route.Route{
		Prefix:       pfx,
		Protocol:     route.BGP,
		NextHop:      rng.Uint32(),
		NextHopNode:  "n",
		Metric:       uint32(rng.Intn(3)),
		ASPath:       path,
		LocalPref:    uint32(100 + 10*rng.Intn(3)),
		Origin:       route.Origin(rng.Intn(3)),
		OriginatorID: rng.Uint32(),
		PeerAS:       uint32(65000 + rng.Intn(4)),
	}
}

// TestSelectBestInvariants checks the decision process properties that the
// rest of the system depends on, over random candidate sets:
//
//  1. the result is a non-empty subset of the candidates (for non-empty
//     input) and respects maxPaths;
//  2. the result is insensitive to candidate order (determinism under
//     permutation — crucial for S2/baseline RIB equality);
//  3. every selected route ties the winner on the pre-tiebreak attributes;
//  4. no candidate is strictly better than the winner.
func TestSelectBestInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pfx := route.MustParsePrefix("10.0.0.0/24")
	vsbs := []config.VSB{
		{},
		{MissingMEDWorst: true},
		{ECMPRequiresSameNeighborAS: true},
	}
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(8) + 1
		cands := make([]*route.Route, n)
		for i := range cands {
			cands[i] = randRoute(rng, pfx)
		}
		maxPaths := rng.Intn(4) + 1
		vsb := vsbs[trial%len(vsbs)]

		got := selectBest(cands, maxPaths, vsb)
		if len(got) == 0 || len(got) > maxPaths {
			t.Fatalf("trial %d: %d selected with maxPaths %d", trial, len(got), maxPaths)
		}
		inCands := func(r *route.Route) bool {
			for _, c := range cands {
				if c == r {
					return true
				}
			}
			return false
		}
		for _, r := range got {
			if !inCands(r) {
				t.Fatalf("trial %d: selected route not among candidates", trial)
			}
		}

		// Permutation invariance (compare by Key multiset).
		perm := append([]*route.Route(nil), cands...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got2 := selectBest(perm, maxPaths, vsb)
		if len(got) != len(got2) {
			t.Fatalf("trial %d: permutation changed ECMP size %d→%d", trial, len(got), len(got2))
		}
		keys := map[string]int{}
		for _, r := range got {
			keys[r.Key()]++
		}
		for _, r := range got2 {
			keys[r.Key()]--
		}
		for k, v := range keys {
			if v != 0 {
				t.Fatalf("trial %d: permutation changed selection (%s)", trial, k)
			}
		}

		// The first selected route is the best: nothing beats it.
		best := got[0]
		for _, c := range cands {
			if better(c, best, vsb.MissingMEDWorst) && !better(best, c, vsb.MissingMEDWorst) {
				// c strictly preferred over best — selection broke.
				t.Fatalf("trial %d: candidate strictly better than winner\n c=%v\n w=%v", trial, c, best)
			}
		}
		// ECMP companions tie on the preference class.
		for _, r := range got[1:] {
			if classOf(r) != classOf(best) {
				t.Fatalf("trial %d: ECMP companion differs in preference class", trial)
			}
			if vsb.ECMPRequiresSameNeighborAS && r.PeerAS != best.PeerAS {
				t.Fatalf("trial %d: VSB same-AS multipath violated", trial)
			}
		}
	}
}

func TestSelectBestEmpty(t *testing.T) {
	if got := selectBest(nil, 4, config.VSB{}); got != nil {
		t.Fatalf("empty candidates: %v", got)
	}
}

func TestBetterPrefersLocalPrefThenPathLen(t *testing.T) {
	a := &route.Route{LocalPref: 200, ASPath: []uint32{1, 2, 3}}
	b := &route.Route{LocalPref: 100, ASPath: []uint32{1}}
	if !better(a, b, false) || better(b, a, false) {
		t.Fatal("higher local-pref wins regardless of path length")
	}
	c := &route.Route{LocalPref: 100, ASPath: []uint32{1, 2}}
	if !better(b, c, false) {
		t.Fatal("shorter path wins at equal local-pref")
	}
}

func TestBetterMEDSemantics(t *testing.T) {
	// Same neighbor AS: lower MED wins.
	a := &route.Route{LocalPref: 100, ASPath: []uint32{1}, PeerAS: 7, Metric: 10}
	b := &route.Route{LocalPref: 100, ASPath: []uint32{2}, PeerAS: 7, Metric: 20}
	if !better(a, b, false) {
		t.Fatal("lower MED should win within one neighbor AS")
	}
	// Different neighbor AS: MED skipped, falls to router-id.
	c := &route.Route{LocalPref: 100, ASPath: []uint32{3}, PeerAS: 8, Metric: 999, OriginatorID: 1}
	d := &route.Route{LocalPref: 100, ASPath: []uint32{4}, PeerAS: 9, Metric: 0, OriginatorID: 2}
	if !better(c, d, false) {
		t.Fatal("cross-AS MED must be ignored; lower originator wins")
	}
	// MissingMEDWorst: MED 0 loses to MED 5 within one AS.
	e := &route.Route{LocalPref: 100, ASPath: []uint32{5}, PeerAS: 7, Metric: 0}
	f := &route.Route{LocalPref: 100, ASPath: []uint32{6}, PeerAS: 7, Metric: 5}
	if !better(f, e, true) {
		t.Fatal("missing-MED-worst vendor treats MED 0 as worst")
	}
	if !better(e, f, false) {
		t.Fatal("default vendor treats MED 0 as best")
	}
}
