package bgp

import (
	"fmt"
	"testing"

	"s2/internal/config"
	"s2/internal/metrics"
	"s2/internal/route"
	"s2/internal/topology"
)

// buildProcs parses configs, derives the topology, and builds one Process
// per BGP-speaking device.
func buildProcs(t *testing.T, texts map[string]string) (map[string]*Process, *topology.Network) {
	t.Helper()
	snap, err := config.ParseTexts(texts)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := topology.Build(snap)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	procs := map[string]*Process{}
	for name, dev := range snap.Devices {
		if dev.BGP != nil {
			procs[name] = NewProcess(dev, net.Sessions[name], nil)
		}
	}
	return procs, net
}

// runFixpoint executes the paper's Algorithm 1 in-process: rounds of
// pull-exchange-decide until no node changes.
func runFixpoint(t *testing.T, procs map[string]*Process) int {
	t.Helper()
	type pullState struct {
		version uint64
		seen    bool
	}
	pulls := map[[2]string]*pullState{}
	names := make([]string, 0, len(procs))
	for n := range procs {
		names = append(names, n)
	}
	for round := 1; round <= 64; round++ {
		changed := false
		for _, name := range names {
			p := procs[name]
			for _, nb := range p.NeighborNames() {
				exp, ok := procs[nb]
				if !ok {
					continue
				}
				key := [2]string{name, nb}
				st := pulls[key]
				if st == nil {
					st = &pullState{}
					pulls[key] = st
				}
				advs, ver, fresh := exp.ExportsTo(name, st.version, st.seen)
				if fresh {
					st.version, st.seen = ver, true
					if p.ImportFrom(nb, advs) {
						changed = true
					}
				}
			}
			if p.RunDecision() {
				changed = true
			}
		}
		if !changed {
			return round
		}
	}
	t.Fatal("fixpoint did not converge in 64 rounds")
	return 0
}

// chainConfig builds a linear chain r1-r2-...-rn; r1 announces 10.8.0.0/24.
func chainConfig(n int) map[string]string {
	texts := map[string]string{}
	for i := 1; i <= n; i++ {
		cfg := fmt.Sprintf("hostname r%d\n", i)
		if i > 1 {
			cfg += fmt.Sprintf("interface left\n ip address 10.0.%d.1/31\n", i-1)
		}
		if i < n {
			cfg += fmt.Sprintf("interface right\n ip address 10.0.%d.0/31\n", i)
		}
		cfg += fmt.Sprintf("router bgp %d\n router-id 0.0.0.%d\n", 65000+i, i)
		if i == 1 {
			cfg += "interface vlan10\n ip address 10.8.0.1/24\nrouter bgp 65001\n network 10.8.0.0/24\n"
		}
		if i > 1 {
			cfg += fmt.Sprintf("router bgp %d\n neighbor 10.0.%d.0 remote-as %d\n", 65000+i, i-1, 65000+i-1)
		}
		if i < n {
			cfg += fmt.Sprintf("router bgp %d\n neighbor 10.0.%d.1 remote-as %d\n", 65000+i, i, 65000+i+1)
		}
		texts[fmt.Sprintf("r%d.cfg", i)] = cfg
	}
	return texts
}

func TestChainPropagation(t *testing.T) {
	procs, _ := buildProcs(t, chainConfig(4))
	runFixpoint(t, procs)
	pfx := route.MustParsePrefix("10.8.0.0/24")

	r1 := procs["r1"].LocRIB().Get(pfx)
	if len(r1) != 1 || r1[0].NextHopNode != "" {
		t.Fatalf("r1 should originate locally: %v", r1)
	}
	r4 := procs["r4"].LocRIB().Get(pfx)
	if len(r4) != 1 {
		t.Fatalf("r4 routes = %v", r4)
	}
	got := r4[0]
	if got.NextHopNode != "r3" {
		t.Errorf("r4 next hop node = %q", got.NextHopNode)
	}
	want := []uint32{65003, 65002, 65001}
	if len(got.ASPath) != 3 {
		t.Fatalf("AS path = %v, want %v", got.ASPath, want)
	}
	for i := range want {
		if got.ASPath[i] != want[i] {
			t.Fatalf("AS path = %v, want %v", got.ASPath, want)
		}
	}
	if got.LocalPref != 100 || got.Protocol != route.BGP {
		t.Errorf("attrs: %+v", got)
	}
}

func TestNetworkStatementRequiresLocalRoute(t *testing.T) {
	// r1 announces a network with no matching connected/static route:
	// nothing should be originated.
	procs, _ := buildProcs(t, map[string]string{"r1.cfg": `hostname r1
interface eth0
 ip address 10.0.0.0/31
router bgp 65001
 network 99.99.0.0/16
`})
	runFixpoint(t, procs)
	if procs["r1"].LocRIB().Len() != 0 {
		t.Fatal("network statement without a local route must not originate")
	}
	// With a matching static route it originates.
	procs2, _ := buildProcs(t, map[string]string{"r1.cfg": `hostname r1
interface eth0
 ip address 10.0.0.0/31
ip route 99.99.0.0/16 null0
router bgp 65001
 network 99.99.0.0/16
`})
	runFixpoint(t, procs2)
	if procs2["r1"].LocRIB().Len() != 1 {
		t.Fatal("network statement with matching static route should originate")
	}
}

// diamond builds r1-(r2,r3)-r4; r4 announces 10.8.0.0/24. maxPaths applies
// to r1.
func diamond(maxPaths int, importMap string) map[string]string {
	r1 := fmt.Sprintf(`hostname r1
interface up0
 ip address 10.0.1.0/31
interface up1
 ip address 10.0.2.0/31
router bgp 65001
 router-id 0.0.0.1
 maximum-paths %d
 neighbor 10.0.1.1 remote-as 65002
 neighbor 10.0.2.1 remote-as 65003
`, maxPaths)
	r1 += importMap
	return map[string]string{
		"r1.cfg": r1,
		"r2.cfg": `hostname r2
interface down0
 ip address 10.0.1.1/31
interface up0
 ip address 10.0.3.0/31
router bgp 65002
 router-id 0.0.0.2
 neighbor 10.0.1.0 remote-as 65001
 neighbor 10.0.3.1 remote-as 65004
`,
		"r3.cfg": `hostname r3
interface down0
 ip address 10.0.2.1/31
interface up0
 ip address 10.0.4.0/31
router bgp 65003
 router-id 0.0.0.3
 neighbor 10.0.2.0 remote-as 65001
 neighbor 10.0.4.1 remote-as 65004
`,
		"r4.cfg": `hostname r4
interface down0
 ip address 10.0.3.1/31
interface down1
 ip address 10.0.4.1/31
interface vlan10
 ip address 10.8.0.1/24
router bgp 65004
 router-id 0.0.0.4
 network 10.8.0.0/24
 neighbor 10.0.3.0 remote-as 65002
 neighbor 10.0.4.0 remote-as 65003
`,
	}
}

func TestECMPMultipath(t *testing.T) {
	procs, _ := buildProcs(t, diamond(4, ""))
	runFixpoint(t, procs)
	pfx := route.MustParsePrefix("10.8.0.0/24")
	paths := procs["r1"].LocRIB().Get(pfx)
	if len(paths) != 2 {
		t.Fatalf("r1 should hold 2 ECMP paths, got %v", paths)
	}
	nhs := map[string]bool{}
	for _, p := range paths {
		nhs[p.NextHopNode] = true
	}
	if !nhs["r2"] || !nhs["r3"] {
		t.Fatalf("ECMP next hops = %v", nhs)
	}
}

func TestECMPDisabled(t *testing.T) {
	procs, _ := buildProcs(t, diamond(1, ""))
	runFixpoint(t, procs)
	paths := procs["r1"].LocRIB().Get(route.MustParsePrefix("10.8.0.0/24"))
	if len(paths) != 1 {
		t.Fatalf("maximum-paths 1 should install a single best path, got %v", paths)
	}
	// Deterministic winner: lowest originator router-id (r2).
	if paths[0].NextHopNode != "r2" {
		t.Errorf("best path via %q, want r2 (lower router-id)", paths[0].NextHopNode)
	}
}

func TestLocalPrefOverridesPathLength(t *testing.T) {
	// r1 prefers r3 via import policy local-pref 200, despite equal paths.
	im := `ip prefix-list ALL seq 10 permit 0.0.0.0/0 le 32
route-map PREF3 permit 10
 set local-preference 200
router bgp 65001
 neighbor 10.0.2.1 route-map PREF3 in
`
	procs, _ := buildProcs(t, diamond(4, im))
	runFixpoint(t, procs)
	paths := procs["r1"].LocRIB().Get(route.MustParsePrefix("10.8.0.0/24"))
	if len(paths) != 1 || paths[0].NextHopNode != "r3" {
		t.Fatalf("local-pref should pin r3: %v", paths)
	}
	if paths[0].LocalPref != 200 {
		t.Errorf("local pref = %d", paths[0].LocalPref)
	}
}

func TestASPathPrependShiftsBestPath(t *testing.T) {
	// r2 prepends twice on export to r1 → r1 prefers r3 only.
	texts := diamond(4, "")
	texts["r2.cfg"] = `hostname r2
interface down0
 ip address 10.0.1.1/31
interface up0
 ip address 10.0.3.0/31
route-map LONG permit 10
 set as-path prepend 65002 65002
router bgp 65002
 router-id 0.0.0.2
 neighbor 10.0.1.0 remote-as 65001
 neighbor 10.0.1.0 route-map LONG out
 neighbor 10.0.3.1 remote-as 65004
`
	procs, _ := buildProcs(t, texts)
	runFixpoint(t, procs)
	paths := procs["r1"].LocRIB().Get(route.MustParsePrefix("10.8.0.0/24"))
	if len(paths) != 1 || paths[0].NextHopNode != "r3" {
		t.Fatalf("prepend should deflect to r3: %v", paths)
	}
}

func TestLoopRejection(t *testing.T) {
	procs, _ := buildProcs(t, chainConfig(3))
	runFixpoint(t, procs)
	// r2 re-advertises r1's prefix back to r1; r1 must reject it (its own
	// ASN is in the path) and keep only its locally originated route.
	r1 := procs["r1"].LocRIB().Get(route.MustParsePrefix("10.8.0.0/24"))
	if len(r1) != 1 || r1[0].NextHopNode != "" {
		t.Fatalf("r1 must keep only its local route: %v", r1)
	}
}

func TestAggregateActivationAndSuppression(t *testing.T) {
	texts := chainConfig(3)
	texts["r1.cfg"] = `hostname r1
interface right
 ip address 10.0.1.0/31
interface vlan10
 ip address 10.8.0.1/24
interface vlan11
 ip address 10.8.1.1/24
router bgp 65001
 router-id 0.0.0.1
 network 10.8.0.0/24
 network 10.8.1.0/24
 aggregate-address 10.8.0.0/21 summary-only
 neighbor 10.0.1.1 remote-as 65002
`
	procs, _ := buildProcs(t, texts)
	runFixpoint(t, procs)

	agg := route.MustParsePrefix("10.8.0.0/21")
	spec := route.MustParsePrefix("10.8.0.0/24")

	// The aggregate is active in r1's RIB alongside the contributors.
	if got := procs["r1"].LocRIB().Get(agg); len(got) != 1 || got[0].Protocol != route.Aggregate {
		t.Fatalf("r1 aggregate = %v", got)
	}
	if got := procs["r1"].LocRIB().Get(spec); len(got) != 1 {
		t.Fatal("contributors stay in the local RIB")
	}
	// r2 sees only the aggregate (summary-only suppression).
	if got := procs["r2"].LocRIB().Get(agg); len(got) != 1 {
		t.Fatalf("r2 should learn the aggregate: %v", got)
	}
	if got := procs["r2"].LocRIB().Get(spec); len(got) != 0 {
		t.Fatalf("r2 must not learn suppressed contributor: %v", got)
	}
	// And propagates it on.
	if got := procs["r3"].LocRIB().Get(agg); len(got) != 1 {
		t.Fatal("r3 should learn the aggregate transitively")
	}
}

func TestAggregateInactiveWithoutContributors(t *testing.T) {
	procs, _ := buildProcs(t, map[string]string{"r1.cfg": `hostname r1
interface eth0
 ip address 10.0.0.0/31
router bgp 65001
 aggregate-address 10.8.0.0/21 summary-only
`})
	runFixpoint(t, procs)
	if procs["r1"].LocRIB().Len() != 0 {
		t.Fatal("aggregate without contributors must stay inactive")
	}
}

func TestAggregateAttributeMapTagsCommunity(t *testing.T) {
	texts := chainConfig(2)
	texts["r1.cfg"] = `hostname r1
interface right
 ip address 10.0.1.0/31
interface vlan10
 ip address 10.8.0.1/24
route-map AGGTAG permit 10
 set community 65000:100
router bgp 65001
 router-id 0.0.0.1
 network 10.8.0.0/24
 aggregate-address 10.8.0.0/21 summary-only attribute-map AGGTAG
 neighbor 10.0.1.1 remote-as 65002
`
	procs, _ := buildProcs(t, texts)
	runFixpoint(t, procs)
	got := procs["r2"].LocRIB().Get(route.MustParsePrefix("10.8.0.0/21"))
	if len(got) != 1 || !got[0].HasCommunity(route.MakeCommunity(65000, 100)) {
		t.Fatalf("aggregate should carry the attribute-map community: %v", got)
	}
}

func TestRemovePrivateASVendorBehaviours(t *testing.T) {
	build := func(vendor string) []uint32 {
		// r2 exports to r3 with remove-private-as; the path at r2 is
		// [65002(private ASN of r2 is prepended AFTER stripping), 100, 65001...].
		// Use a mix: r1 (AS 65001 private) -> r2 (AS 100 public) -> r3 (AS 200).
		texts := map[string]string{
			"r1.cfg": `hostname r1
interface eth0
 ip address 10.0.0.0/31
interface vlan10
 ip address 10.8.0.1/24
router bgp 65001
 network 10.8.0.0/24
 neighbor 10.0.0.1 remote-as 100
`,
			"r2.cfg": fmt.Sprintf(`! vendor: %s
hostname r2
interface eth0
 ip address 10.0.0.1/31
interface eth1
 ip address 10.0.1.0/31
router bgp 100
 neighbor 10.0.0.0 remote-as 65001
 neighbor 10.0.1.1 remote-as 200
 neighbor 10.0.1.1 remove-private-as
`, vendor),
			"r3.cfg": `hostname r3
interface eth0
 ip address 10.0.1.1/31
router bgp 200
 neighbor 10.0.1.0 remote-as 100
`,
		}
		procs, _ := buildProcs(t, texts)
		runFixpoint(t, procs)
		got := procs["r3"].LocRIB().Get(route.MustParsePrefix("10.8.0.0/24"))
		if len(got) != 1 {
			t.Fatalf("r3 routes = %v", got)
		}
		return got[0].ASPath
	}
	// Path at r2 before export: [65001]; leading private. Both vendors
	// strip it here, so craft a case where they differ: private AFTER a
	// public ASN requires a longer chain; instead verify the simple case
	// agrees, then test StripPrivateASNs divergence directly (covered in
	// config tests). Here: both vendors yield [100].
	alpha := build("alpha")
	bravo := build("bravo")
	if len(alpha) != 1 || alpha[0] != 100 {
		t.Errorf("alpha path = %v, want [100]", alpha)
	}
	if len(bravo) != 1 || bravo[0] != 100 {
		t.Errorf("bravo path = %v, want [100]", bravo)
	}
}

func TestASPathOverwriteWithAllowASIn(t *testing.T) {
	// Two same-AS switches peered via a middle AS. Without overwrite, s2
	// rejects s1's route (own ASN in path). With AS_PATH overwrite on the
	// middle box and allowas-in, the route is accepted (§2.3).
	base := map[string]string{
		"s1.cfg": `hostname s1
interface eth0
 ip address 10.0.0.0/31
interface vlan10
 ip address 10.8.0.1/24
router bgp 65100
 network 10.8.0.0/24
 neighbor 10.0.0.1 remote-as 65200
`,
		"mid.cfg": `hostname mid
interface eth0
 ip address 10.0.0.1/31
interface eth1
 ip address 10.0.1.0/31
router bgp 65200
 neighbor 10.0.0.0 remote-as 65100
 neighbor 10.0.1.1 remote-as 65100
`,
		"s2.cfg": `hostname s2
interface eth0
 ip address 10.0.1.1/31
router bgp 65100
 neighbor 10.0.1.0 remote-as 65200
`,
	}
	procs, _ := buildProcs(t, base)
	runFixpoint(t, procs)
	pfx := route.MustParsePrefix("10.8.0.0/24")
	if got := procs["s2"].LocRIB().Get(pfx); len(got) != 0 {
		t.Fatalf("without overwrite s2 must reject the looped path: %v", got)
	}

	over := map[string]string{}
	for k, v := range base {
		over[k] = v
	}
	over["mid.cfg"] = `hostname mid
interface eth0
 ip address 10.0.0.1/31
interface eth1
 ip address 10.0.1.0/31
route-map OW permit 10
 set as-path overwrite 65200
router bgp 65200
 neighbor 10.0.0.0 remote-as 65100
 neighbor 10.0.1.1 remote-as 65100
 neighbor 10.0.1.1 route-map OW out
`
	procs2, _ := buildProcs(t, over)
	runFixpoint(t, procs2)
	got := procs2["s2"].LocRIB().Get(pfx)
	if len(got) != 1 {
		t.Fatalf("with overwrite s2 should accept: %v", got)
	}
	// Path: overwrite set [65200], then mid prepends its ASN 65200.
	if len(got[0].ASPath) != 2 || got[0].ASPath[0] != 65200 || got[0].ASPath[1] != 65200 {
		t.Errorf("overwritten path = %v", got[0].ASPath)
	}
}

func TestMEDComparedOnlySameNeighborAS(t *testing.T) {
	// r1 hears the same prefix from r2 (AS 65002, MED 50) and r3
	// (AS 65003, MED 10): different neighbor AS → MED skipped → tie
	// through step 6 → ECMP keeps both.
	texts := diamond(4, "")
	texts["r2.cfg"] = `hostname r2
interface down0
 ip address 10.0.1.1/31
interface up0
 ip address 10.0.3.0/31
route-map MED permit 10
 set metric 50
router bgp 65002
 router-id 0.0.0.2
 neighbor 10.0.1.0 remote-as 65001
 neighbor 10.0.1.0 route-map MED out
 neighbor 10.0.3.1 remote-as 65004
`
	texts["r3.cfg"] = `hostname r3
interface down0
 ip address 10.0.2.1/31
interface up0
 ip address 10.0.4.0/31
route-map MED permit 10
 set metric 10
router bgp 65003
 router-id 0.0.0.3
 neighbor 10.0.2.0 remote-as 65001
 neighbor 10.0.2.0 route-map MED out
 neighbor 10.0.4.1 remote-as 65004
`
	procs, _ := buildProcs(t, texts)
	runFixpoint(t, procs)
	paths := procs["r1"].LocRIB().Get(route.MustParsePrefix("10.8.0.0/24"))
	if len(paths) != 2 {
		t.Fatalf("cross-AS MED must not break the tie: %v", paths)
	}
}

func TestExportPolicyFilters(t *testing.T) {
	texts := chainConfig(3)
	texts["r2.cfg"] = `hostname r2
interface left
 ip address 10.0.1.1/31
interface right
 ip address 10.0.2.0/31
ip prefix-list NONE seq 10 deny 0.0.0.0/0 le 32
route-map BLOCK permit 10
 match ip address prefix-list NONE
router bgp 65002
 router-id 0.0.0.2
 neighbor 10.0.1.0 remote-as 65001
 neighbor 10.0.2.1 remote-as 65003
 neighbor 10.0.2.1 route-map BLOCK out
`
	procs, _ := buildProcs(t, texts)
	runFixpoint(t, procs)
	if procs["r3"].LocRIB().Len() != 0 {
		t.Fatal("export filter must block propagation to r3")
	}
	if procs["r2"].LocRIB().Len() != 1 {
		t.Fatal("r2 itself still learns the route")
	}
}

func TestRedistributeConnected(t *testing.T) {
	texts := chainConfig(2)
	texts["r1.cfg"] = `hostname r1
interface right
 ip address 10.0.1.0/31
interface lo0
 ip address 192.168.0.1/32
router bgp 65001
 router-id 0.0.0.1
 redistribute connected
 neighbor 10.0.1.1 remote-as 65002
`
	procs, _ := buildProcs(t, texts)
	runFixpoint(t, procs)
	// r2 learns both the loopback /32 and the link /31.
	rib := procs["r2"].LocRIB()
	if got := rib.Get(route.MustParsePrefix("192.168.0.1/32")); len(got) != 1 {
		t.Fatalf("r2 should learn redistributed loopback: %v", rib.All())
	}
	// Vendor alpha marks redistributed routes incomplete.
	if got := rib.Get(route.MustParsePrefix("192.168.0.1/32")); got[0].Origin != route.OriginIncomplete {
		t.Errorf("origin = %v, want incomplete", got[0].Origin)
	}
}

func TestPrefixFilterRestrictsOrigination(t *testing.T) {
	texts := chainConfig(2)
	texts["r1.cfg"] = `hostname r1
interface right
 ip address 10.0.1.0/31
interface vlan10
 ip address 10.8.0.1/24
interface vlan11
 ip address 10.9.0.1/24
router bgp 65001
 router-id 0.0.0.1
 network 10.8.0.0/24
 network 10.9.0.0/24
 neighbor 10.0.1.1 remote-as 65002
`
	procs, _ := buildProcs(t, texts)
	only8 := route.MustParsePrefix("10.8.0.0/24")
	procs["r1"].ResetForShard(func(p route.Prefix) bool { return p == only8 })
	procs["r2"].ResetForShard(func(p route.Prefix) bool { return p == only8 })
	runFixpoint(t, procs)
	rib := procs["r2"].LocRIB()
	if rib.Len() != 1 || len(rib.Get(only8)) != 1 {
		t.Fatalf("shard filter should admit only 10.8/24: %v", rib.All())
	}
}

func TestExportVersioning(t *testing.T) {
	procs, _ := buildProcs(t, chainConfig(2))
	runFixpoint(t, procs)
	p1 := procs["r1"]
	advs, ver, fresh := p1.ExportsTo("r2", 0, false)
	if !fresh || len(advs) != 1 {
		t.Fatalf("initial pull: advs=%v fresh=%v", advs, fresh)
	}
	// Same version again: no change.
	if _, _, fresh := p1.ExportsTo("r2", ver, true); fresh {
		t.Fatal("unchanged state must report not-fresh")
	}
	// Unknown neighbor.
	if _, _, fresh := p1.ExportsTo("ghost", 0, false); fresh {
		t.Fatal("unknown neighbor should never be fresh")
	}
}

func TestMemoryGauges(t *testing.T) {
	snap, err := config.ParseTexts(chainConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	net, err := topology.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	tr := metrics.NewTracker("w0", 0)
	procs := map[string]*Process{}
	for name, dev := range snap.Devices {
		procs[name] = NewProcess(dev, net.Sessions[name], tr)
	}
	runFixpoint(t, procs)
	if tr.Current() <= 0 || tr.Peak() <= 0 {
		t.Fatalf("tracker should observe RIB memory: %s", tr.Snapshot())
	}
}
