package bgp

import (
	"sort"
	"sync"

	"s2/internal/config"
	"s2/internal/metrics"
	"s2/internal/policy"
	"s2/internal/route"
	"s2/internal/topology"
)

// defaultLocalPref is the local preference assigned to routes received over
// eBGP and to locally originated routes.
const defaultLocalPref = 100

// PrefixFilter restricts which prefixes a process may originate during a
// prefix-shard round (§4.5). A nil filter admits everything.
type PrefixFilter func(route.Prefix) bool

// Process is the BGP speaker for one device. It follows the pull model of
// the paper's Algorithm 1: neighbors call ExportsTo to obtain advertisements
// and feed what they learn into their own ImportFrom/RunDecision cycle.
//
// A Process is confined to its worker, but within a worker many node
// goroutines may touch it at once: parallel gather tasks pull from the same
// exporter concurrently (and ExportsTo records used conditions, a write),
// while apply tasks mutate only their own process. The per-process mutex
// serializes those entry points; no method calls another locked method and
// no task holds two process locks, so the locking is cycle-free.
type Process struct {
	mu       sync.Mutex
	dev      *config.Device
	cfg      *config.BGPConfig
	vsb      config.VSB
	eval     *policy.Evaluator
	sessions map[string]topology.BGPSession // by remote device name

	filter PrefixFilter

	// adjIn holds accepted post-import routes per neighbor, keyed by
	// neighbor device name then prefix.
	adjIn map[string]map[route.Prefix]*route.Route

	// locRIB is the BGP RIB: best (plus ECMP) routes per prefix.
	locRIB *route.RIB
	// suppressed marks prefixes covered by an active summary-only
	// aggregate; they stay in the RIB/FIB but are not exported.
	suppressed map[route.Prefix]bool

	// external carries routes available for redistribution, by source
	// ("connected", "static", "ospf").
	external map[string][]*route.Route

	// version increments whenever the exportable state changes; neighbors
	// pull with their last-seen version to skip unchanged state.
	version uint64

	// usedConditions records the prefix-lists consulted by conditional
	// advertisement during the current shard round — the raw material for
	// runtime dependency detection (§7, "collect prefix dependencies when
	// computing routes").
	usedConditions map[string]bool

	tracker *metrics.Tracker
}

// NewProcess builds the speaker for dev. sessions are the device's resolved
// BGP sessions; tracker (optional) receives modelled memory gauges.
func NewProcess(dev *config.Device, sessions []topology.BGPSession, tracker *metrics.Tracker) *Process {
	p := &Process{
		dev:        dev,
		cfg:        dev.BGP,
		vsb:        dev.Vendor.Behaviours(),
		eval:       policy.NewEvaluator(dev),
		sessions:   make(map[string]topology.BGPSession, len(sessions)),
		adjIn:      make(map[string]map[route.Prefix]*route.Route),
		locRIB:     route.NewRIB(),
		suppressed: make(map[route.Prefix]bool),
		external:   make(map[string][]*route.Route),
		tracker:    tracker,

		usedConditions: make(map[string]bool),
	}
	for _, s := range sessions {
		p.sessions[s.Remote] = s
	}
	return p
}

// Device returns the underlying device model.
func (p *Process) Device() *config.Device { return p.dev }

// NeighborNames returns the devices this speaker has sessions with, sorted.
func (p *Process) NeighborNames() []string {
	out := make([]string, 0, len(p.sessions))
	for n := range p.sessions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Version returns the current export version.
func (p *Process) Version() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.version
}

// LocRIB exposes the computed BGP RIB.
func (p *Process) LocRIB() *route.RIB { return p.locRIB }

// SetExternalRoutes provides routes from another protocol for
// redistribution ("connected" and "static" are derived internally; use this
// for "ospf").
func (p *Process) SetExternalRoutes(source string, routes []*route.Route) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.external[source] = routes
}

// ResetForShard clears all learned and computed state and installs the
// prefix filter for the next shard round. Peak memory gauges on the tracker
// survive, mirroring how freeing a shard lowers live usage but not the
// observed peak.
func (p *Process) ResetForShard(filter PrefixFilter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.filter = filter
	p.adjIn = make(map[string]map[route.Prefix]*route.Route)
	p.locRIB = route.NewRIB()
	p.suppressed = make(map[route.Prefix]bool)
	p.version = 0
	p.usedConditions = make(map[string]bool)
	p.updateGauges()
}

// UsedConditions returns the prefix-list names consulted by conditional
// advertisement since the last shard reset, sorted.
func (p *Process) UsedConditions() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.usedConditions))
	for name := range p.usedConditions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// conditionHolds evaluates a conditional-advertisement condition against
// the current Loc-RIB: exist-map requires some matching route; the
// non-exist variant requires none.
func (p *Process) conditionHolds(nb *config.Neighbor) bool {
	pl, ok := p.dev.PrefixLists[nb.ConditionList]
	exists := false
	if ok {
		for _, pfx := range p.locRIB.Prefixes() {
			if pl.Permits(pfx) {
				exists = true
				break
			}
		}
	}
	if nb.ConditionAbsence {
		return !exists
	}
	return exists
}

func (p *Process) admits(pfx route.Prefix) bool {
	return p.filter == nil || p.filter(pfx)
}

// originated computes the locally originated candidates: network statements
// (validated against local non-BGP routes) and redistributions, restricted
// by the shard filter.
func (p *Process) originated() []*route.Route {
	var out []*route.Route

	localPrefixes := map[route.Prefix]bool{}
	for _, pfx := range p.dev.ConnectedPrefixes() {
		localPrefixes[pfx] = true
	}
	for _, sr := range p.dev.StaticRoutes {
		localPrefixes[sr.Prefix] = true
	}
	for _, r := range p.external["ospf"] {
		localPrefixes[r.Prefix] = true
	}

	for _, pfx := range p.cfg.Networks {
		if !p.admits(pfx) || !localPrefixes[pfx] {
			continue
		}
		out = append(out, &route.Route{
			Prefix:       pfx,
			Protocol:     route.BGP,
			Origin:       route.OriginIGP,
			LocalPref:    defaultLocalPref,
			OriginatorID: p.cfg.RouterID,
		})
	}

	origin := route.OriginIGP
	if p.vsb.DefaultOriginIncomplete {
		origin = route.OriginIncomplete
	}
	for _, rd := range p.cfg.Redistribute {
		var sources []route.Prefix
		switch rd.Source {
		case "connected":
			sources = p.dev.ConnectedPrefixes()
		case "static":
			for _, sr := range p.dev.StaticRoutes {
				sources = append(sources, sr.Prefix)
			}
		case "ospf":
			for _, r := range p.external["ospf"] {
				sources = append(sources, r.Prefix)
			}
		}
		for _, pfx := range sources {
			if !p.admits(pfx) {
				continue
			}
			cand := &route.Route{
				Prefix:       pfx,
				Protocol:     route.BGP,
				Origin:       origin,
				LocalPref:    defaultLocalPref,
				OriginatorID: p.cfg.RouterID,
			}
			if rd.RouteMap != "" {
				transformed, res := p.eval.Apply(rd.RouteMap, cand)
				if res != policy.PermitRoute {
					continue
				}
				cand = transformed
			}
			out = append(out, cand)
		}
	}
	return out
}

// Advertisement is the wire form of one exported route.
type Advertisement struct {
	Route *route.Route
}

// ExportsTo returns the advertisements for neighbor (a device name) if the
// exportable state changed since sinceVersion. When unchanged it returns
// (nil, version, false), letting remote pulls skip serialization.
func (p *Process) ExportsTo(neighbor string, sinceVersion uint64, haveSeen bool) ([]Advertisement, uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if haveSeen && sinceVersion == p.version {
		return nil, p.version, false
	}
	s, ok := p.sessions[neighbor]
	if !ok {
		return nil, p.version, false
	}
	nb := p.cfg.Neighbors[s.RemoteIP]
	if nb == nil {
		return nil, p.version, false
	}

	// Conditional advertisement: evaluate the condition once per export.
	conditional := nb.AdvertiseMap != "" && nb.ConditionList != ""
	condHolds := false
	if conditional {
		condHolds = p.conditionHolds(nb)
	}

	var advs []Advertisement
	for _, pfx := range p.locRIB.Prefixes() {
		if p.suppressed[pfx] {
			continue
		}
		installed := p.locRIB.Get(pfx)
		best := installed[0] // canonical representative of the ECMP set

		// iBGP learned routes are not re-advertised to iBGP peers
		// (no route reflection).
		if !s.EBGP() && best.Protocol == route.IBGP {
			continue
		}
		out := best.Clone()
		if s.EBGP() {
			// MED is not propagated for transit routes.
			if out.NextHopNode != "" {
				out.Metric = 0
			}
			out.LocalPref = defaultLocalPref
		}
		// Conditional advertisement: routes matched by the advertise-map
		// are sent only while the condition holds; unmatched routes are
		// unaffected.
		if conditional {
			transformed, res := p.eval.Apply(nb.AdvertiseMap, out)
			if res == policy.PermitRoute {
				// The condition gated a route this shard actually
				// computes: record the dependency for §7 runtime
				// detection.
				p.usedConditions[nb.ConditionList] = true
				if !condHolds {
					continue
				}
				out = transformed.Clone()
			}
		}
		// Export policy sees the route before AS-path manipulation.
		if nb.ExportPolicy != "" {
			transformed, res := p.eval.Apply(nb.ExportPolicy, out)
			if res != policy.PermitRoute {
				continue
			}
			out = transformed.Clone()
		}
		if s.EBGP() {
			if nb.RemovePrivateAS {
				out.ASPath = config.StripPrivateASNs(out.ASPath, p.vsb.RemovePrivateASAll)
			}
			out.ASPath = append([]uint32{p.cfg.ASN}, out.ASPath...)
			out.NextHop = s.LocalIP
		} else if nb.NextHopSelf {
			out.NextHop = s.LocalIP
		}
		out.NextHopNode = p.dev.Hostname
		out.Protocol = route.BGP
		advs = append(advs, Advertisement{Route: out})
	}
	return advs, p.version, true
}

// ImportFrom applies import processing to a neighbor's advertisements,
// replacing the Adj-RIB-In for that neighbor. It reports whether the
// Adj-RIB-In changed (requiring a decision run).
func (p *Process) ImportFrom(neighbor string, advs []Advertisement) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.sessions[neighbor]
	if !ok {
		return false
	}
	nb := p.cfg.Neighbors[s.RemoteIP]
	if nb == nil {
		return false
	}

	fresh := make(map[route.Prefix]*route.Route, len(advs))
	for _, adv := range advs {
		r := adv.Route.Clone()
		// Receiver-side loop prevention.
		if s.EBGP() && !nb.AllowASIn && r.ASPathContains(p.cfg.ASN) {
			continue
		}
		if s.EBGP() {
			r.Protocol = route.BGP
			r.LocalPref = defaultLocalPref
		} else {
			r.Protocol = route.IBGP
		}
		r.PeerAS = s.RemoteAS
		r.NextHopNode = neighbor
		if r.NextHop == 0 {
			r.NextHop = s.RemoteIP
		}
		if nb.ImportPolicy != "" {
			transformed, res := p.eval.Apply(nb.ImportPolicy, r)
			if res != policy.PermitRoute {
				continue
			}
			r = transformed
		}
		// First advertisement per prefix wins within one batch
		// (exporters send one route per prefix).
		if _, dup := fresh[r.Prefix]; !dup {
			fresh[r.Prefix] = r
		}
	}

	old := p.adjIn[neighbor]
	if adjInEqual(old, fresh) {
		return false
	}
	p.adjIn[neighbor] = fresh
	p.updateGauges()
	return true
}

func adjInEqual(a, b map[route.Prefix]*route.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for pfx, ra := range a {
		rb, ok := b[pfx]
		if !ok || !ra.Equal(rb) {
			return false
		}
	}
	return true
}

// RunDecision recomputes the Loc-RIB from local origination, Adj-RIB-Ins,
// and aggregate activation. It reports whether the exportable state changed
// and bumps the export version accordingly.
func (p *Process) RunDecision() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	cands := map[route.Prefix][]*route.Route{}
	add := func(r *route.Route) { cands[r.Prefix] = append(cands[r.Prefix], r) }

	for _, r := range p.originated() {
		add(r)
	}
	neighbors := make([]string, 0, len(p.adjIn))
	for n := range p.adjIn {
		neighbors = append(neighbors, n)
	}
	sort.Strings(neighbors)
	for _, n := range neighbors {
		for _, r := range p.adjIn[n] {
			add(r)
		}
	}

	next := route.NewRIB()
	for pfx, cs := range cands {
		next.SetRoutes(pfx, selectBest(cs, p.cfg.MaxPaths, p.vsb))
	}

	suppressed := p.applyAggregates(next)

	changed := !next.Equal(p.locRIB) || !prefixSetEqual(suppressed, p.suppressed)
	p.locRIB = next
	p.suppressed = suppressed
	p.updateGauges()
	if changed {
		p.version++
	}
	return changed
}

// applyAggregates activates configured aggregates against the computed RIB,
// most specific first so an activated aggregate can contribute to a broader
// one, and returns the suppressed prefix set.
func (p *Process) applyAggregates(rib *route.RIB) map[route.Prefix]bool {
	suppressed := map[route.Prefix]bool{}
	if len(p.cfg.Aggregates) == 0 {
		return suppressed
	}
	aggs := append([]config.Aggregate(nil), p.cfg.Aggregates...)
	sort.Slice(aggs, func(i, j int) bool {
		if aggs[i].Prefix.Len != aggs[j].Prefix.Len {
			return aggs[i].Prefix.Len > aggs[j].Prefix.Len
		}
		return aggs[i].Prefix.Compare(aggs[j].Prefix) < 0
	})
	for _, agg := range aggs {
		if !p.admits(agg.Prefix) {
			continue
		}
		var contributors []route.Prefix
		for _, pfx := range rib.Prefixes() {
			if pfx != agg.Prefix && agg.Prefix.Covers(pfx) {
				contributors = append(contributors, pfx)
			}
		}
		if len(contributors) == 0 {
			continue
		}
		ar := &route.Route{
			Prefix:       agg.Prefix,
			Protocol:     route.Aggregate,
			Origin:       route.OriginIGP,
			LocalPref:    defaultLocalPref,
			OriginatorID: p.cfg.RouterID,
		}
		if agg.AttributeMap != "" {
			transformed, res := p.eval.Apply(agg.AttributeMap, ar)
			if res != policy.PermitRoute {
				continue
			}
			ar = transformed
		}
		existing := rib.Get(agg.Prefix)
		rib.SetRoutes(agg.Prefix, selectBest(append([]*route.Route{ar}, existing...), p.cfg.MaxPaths, p.vsb))
		if agg.SummaryOnly {
			for _, c := range contributors {
				suppressed[c] = true
			}
		}
	}
	return suppressed
}

func prefixSetEqual(a, b map[route.Prefix]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		if !b[p] {
			return false
		}
	}
	return true
}

// updateGauges refreshes the tracker's modelled memory for this node.
func (p *Process) updateGauges() {
	if p.tracker == nil {
		return
	}
	var adjBytes int64
	for _, m := range p.adjIn {
		for _, r := range m {
			adjBytes += r.ModelBytes()
		}
	}
	p.tracker.Set("bgp.rib."+p.dev.Hostname, p.locRIB.ModelBytes())
	p.tracker.Set("bgp.adjin."+p.dev.Hostname, adjBytes)
}
