// Package bgp implements the BGP speaker model: per-neighbor import/export
// processing with routing policy, the best-path decision process with ECMP,
// route aggregation with activation and suppression, and redistribution.
// This is the Go substitute for the Batfish BGP classes the paper extends
// via sub-classing (§5.1).
package bgp

import (
	"sort"

	"s2/internal/config"
	"s2/internal/route"
)

// preferenceClass captures the attributes that must tie for two routes to be
// ECMP candidates: everything the decision process compares before the
// router-id tiebreak.
type preferenceClass struct {
	localPref uint32
	asPathLen int
	origin    route.Origin
	ebgp      bool
}

func classOf(r *route.Route) preferenceClass {
	return preferenceClass{
		localPref: r.LocalPref,
		asPathLen: len(r.ASPath),
		origin:    r.Origin,
		ebgp:      r.Protocol == route.BGP || r.Protocol == route.Aggregate,
	}
}

// better reports whether a is strictly preferred over b by the BGP decision
// process. The MED step follows standard semantics: MEDs are compared only
// between routes learned from the same neighbouring AS; the vendor-specific
// missingMEDWorst flag treats MED 0 as the worst value instead of the best.
func better(a, b *route.Route, missingMEDWorst bool) bool {
	// 1. Higher local preference.
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	// 2. Locally originated (aggregate/network, empty AS path from self)
	// is covered by the AS-path length comparison in practice.
	// 3. Shorter AS path.
	if len(a.ASPath) != len(b.ASPath) {
		return len(a.ASPath) < len(b.ASPath)
	}
	// 4. Lower origin.
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	// 5. Lower MED, only among routes from the same neighbouring AS.
	if a.PeerAS == b.PeerAS {
		am, bm := effectiveMED(a, missingMEDWorst), effectiveMED(b, missingMEDWorst)
		if am != bm {
			return am < bm
		}
	}
	// 6. eBGP over iBGP (aggregates and local routes sort as eBGP-class).
	ae, be := classOf(a).ebgp, classOf(b).ebgp
	if ae != be {
		return ae
	}
	// 7. Lowest originator router ID.
	if a.OriginatorID != b.OriginatorID {
		return a.OriginatorID < b.OriginatorID
	}
	// 8. Lowest neighbor address.
	return a.NextHop < b.NextHop
}

func effectiveMED(r *route.Route, missingWorst bool) uint64 {
	if missingWorst && r.Metric == 0 {
		return 1 << 40 // worse than any real MED
	}
	return uint64(r.Metric)
}

// selectBest runs the decision process over the candidates for one prefix
// and returns the installed route set: the single best route plus any ECMP
// companions permitted by maxPaths and the vendor behaviour. Candidates must
// all target the same prefix. The returned slice is newly allocated.
func selectBest(cands []*route.Route, maxPaths int, vsb config.VSB) []*route.Route {
	if len(cands) == 0 {
		return nil
	}
	// Deterministic iteration order independent of map/slice history.
	sorted := append([]*route.Route(nil), cands...)
	route.SortRoutes(sorted)

	best := sorted[0]
	for _, c := range sorted[1:] {
		if better(c, best, vsb.MissingMEDWorst) {
			best = c
		}
	}
	if maxPaths <= 1 {
		return []*route.Route{best}
	}

	// Multipath: candidates tying with the best through step 6.
	bestClass := classOf(best)
	var multi []*route.Route
	for _, c := range sorted {
		if classOf(c) != bestClass {
			continue
		}
		// Same-AS MED comparability: a candidate from the same
		// neighbouring AS as the best must also tie on MED.
		if c.PeerAS == best.PeerAS &&
			effectiveMED(c, vsb.MissingMEDWorst) != effectiveMED(best, vsb.MissingMEDWorst) {
			continue
		}
		if vsb.ECMPRequiresSameNeighborAS && c.PeerAS != best.PeerAS {
			continue
		}
		multi = append(multi, c)
	}
	// Deterministic ECMP truncation: prefer the best, then lowest
	// originator/next hop.
	sort.Slice(multi, func(i, j int) bool {
		if multi[i] == best {
			return true
		}
		if multi[j] == best {
			return false
		}
		if multi[i].OriginatorID != multi[j].OriginatorID {
			return multi[i].OriginatorID < multi[j].OriginatorID
		}
		return multi[i].NextHop < multi[j].NextHop
	})
	if len(multi) > maxPaths {
		multi = multi[:maxPaths]
	}
	return multi
}
