package baseline

import (
	"strings"
	"testing"
	"time"

	"s2/internal/config"
	"s2/internal/dataplane"
	"s2/internal/metrics"
	"s2/internal/route"
	"s2/internal/synth"
)

func fatTreeSnap(t *testing.T, opts synth.FatTreeOptions) *config.Snapshot {
	t.Helper()
	texts, err := synth.FatTree(opts)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]string{}
	for k, v := range texts {
		m[k+".cfg"] = v
	}
	snap, err := config.ParseTexts(m)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestBatfishFatTreeAllPairs(t *testing.T) {
	snap := fatTreeSnap(t, synth.FatTreeOptions{K: 4})
	bf, err := NewBatfish(snap, BatfishOptions{KeepRIBs: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := bf.RunControlPlane(); err != nil {
		t.Fatal(err)
	}
	if bf.CPRounds() == 0 || bf.PeakBytes() <= 0 {
		t.Fatal("accounting not recorded")
	}
	ribs, err := bf.RIBs()
	if err != nil {
		t.Fatal(err)
	}
	// Every switch learns all 8 edge prefixes.
	for name, rib := range ribs {
		count := 0
		for _, p := range rib.Prefixes() {
			if p.Len == 24 {
				count++
			}
		}
		if count != 8 {
			t.Fatalf("%s sees %d /24s, want 8", name, count)
		}
	}
	warnings, err := bf.ComputeDataPlane()
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("warnings: %v", warnings)
	}
	res, err := bf.CheckAllPairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unreached) != 0 || len(res.Violations) != 0 {
		t.Fatalf("healthy FatTree: unreached=%v violations=%v", res.Unreached, res.Violations)
	}
}

func TestBatfishShardingEquivalence(t *testing.T) {
	plain := fatTreeSnap(t, synth.FatTreeOptions{K: 4})
	sharded := fatTreeSnap(t, synth.FatTreeOptions{K: 4})

	a, err := NewBatfish(plain, BatfishOptions{KeepRIBs: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RunControlPlane(); err != nil {
		t.Fatal(err)
	}
	b, err := NewBatfish(sharded, BatfishOptions{KeepRIBs: true, Shards: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RunControlPlane(); err != nil {
		t.Fatal(err)
	}
	aRIBs, _ := a.RIBs()
	bRIBs, _ := b.RIBs()
	for node, rib := range aRIBs {
		if !rib.Equal(bRIBs[node]) {
			t.Fatalf("sharding changes %s: %v", node, rib.Diff(bRIBs[node]))
		}
	}
}

func TestBatfishOOM(t *testing.T) {
	snap := fatTreeSnap(t, synth.FatTreeOptions{K: 4})
	bf, err := NewBatfish(snap, BatfishOptions{MemoryBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	err = bf.RunControlPlane()
	if err == nil || !strings.Contains(err.Error(), "memory budget") {
		t.Fatalf("expected OOM, got %v", err)
	}
	_ = metrics.ErrOutOfMemory
}

func TestBatfishQueryBeforeDPFails(t *testing.T) {
	snap := fatTreeSnap(t, synth.FatTreeOptions{K: 4})
	bf, err := NewBatfish(snap, BatfishOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bf.RunQuery(&dataplane.Query{}, false); err == nil {
		t.Fatal("query before ComputeDataPlane must fail")
	}
	if _, err := bf.RIBs(); err == nil {
		t.Fatal("RIBs without KeepRIBs must fail")
	}
}

func TestBatfishSinglePairQuery(t *testing.T) {
	snap := fatTreeSnap(t, synth.FatTreeOptions{K: 4})
	bf, err := NewBatfish(snap, BatfishOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bf.RunControlPlane(); err != nil {
		t.Fatal(err)
	}
	if _, err := bf.ComputeDataPlane(); err != nil {
		t.Fatal(err)
	}
	dst := bf.OwnedPrefixes("edge-1-0")[0]
	q := &dataplane.Query{
		Header:  &dataplane.HeaderSpace{DstPrefix: &dst},
		Sources: []string{"edge-0-0"},
		Dests:   []string{"edge-1-0"},
	}
	col, err := bf.RunQuery(q, false)
	if err != nil {
		t.Fatal(err)
	}
	if col.Arrived("edge-1-0") == 0 {
		t.Fatal("single-pair reachability failed")
	}
	vios, err := col.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(vios) != 0 {
		t.Fatalf("violations: %v", vios)
	}
}

func TestBonsaiFatTree(t *testing.T) {
	snap := fatTreeSnap(t, synth.FatTreeOptions{K: 4})
	res, err := RunBonsai(snap, BonsaiOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefixes != 8 {
		t.Fatalf("prefixes = %d, want 8", res.Prefixes)
	}
	if res.Reachable != 8 || len(res.Unreached) != 0 {
		t.Fatalf("reachable=%d unreached=%v", res.Reachable, res.Unreached)
	}
	if res.CompressTime < 0 || res.SimTime <= 0 || res.PeakBytes <= 0 {
		t.Fatalf("accounting: %+v", res)
	}
}

func TestBonsaiRejectsNonFatTree(t *testing.T) {
	// A DCN-like Clos is not a three-tier FatTree: every fabric layer
	// would need to classify cleanly, and it does not.
	texts, err := synth.DCN(synth.DCNOptions{
		Clusters: 2, TORsPerCluster: 2, FabricWidth: 2, CoreWidth: 2,
		DeepClusters: true, WithAggregation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]string{}
	for k, v := range texts {
		m[k+".cfg"] = v
	}
	snap, err := config.ParseTexts(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBonsai(snap, BonsaiOptions{}); err == nil {
		t.Fatal("bonsai must reject non-FatTree topologies")
	}
}

func TestBonsaiTimeout(t *testing.T) {
	snap := fatTreeSnap(t, synth.FatTreeOptions{K: 6})
	_, err := RunBonsai(snap, BonsaiOptions{Parallelism: 1, Timeout: time.Nanosecond})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("expected timeout, got %v", err)
	}
}

func TestBonsaiDetectsUnreachability(t *testing.T) {
	// Bonsai's compressed check must catch a destination whose host port
	// drops traffic (the WithACL blackhole)... but the ACL lives on the
	// host port of edge 0 only, which IS part of the compressed network
	// when edge 0 is the destination.
	snap := fatTreeSnap(t, synth.FatTreeOptions{K: 4, WithACL: true})
	res, err := RunBonsai(snap, BonsaiOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unreached) != 1 {
		t.Fatalf("unreached = %v, want the ACL'd prefix", res.Unreached)
	}
}

func TestCompressedTextsParse(t *testing.T) {
	comp := &compressed{
		dest: "edge-0-0", aggSame: "agg-0-0", edgeSame: "edge-0-1",
		core: "core-0", aggOther: "agg-1-0", edgeOther: "edge-1-0",
	}
	texts := buildCompressedTexts(comp, route.MustParsePrefix("10.128.0.0/24"), nil)
	if len(texts) != 6 {
		t.Fatalf("compressed net must have 6 nodes, got %d", len(texts))
	}
	m := map[string]string{}
	for k, v := range texts {
		m[k+".cfg"] = v
	}
	if _, err := config.ParseTexts(m); err != nil {
		t.Fatalf("compressed configs must parse: %v", err)
	}
}
